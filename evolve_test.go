package evolve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNewDefaults(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Now() != 0 {
		t.Error("fresh cluster should be at t=0")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{NodeShape: "cpu"}); err == nil {
		t.Error("bad node shape should fail")
	}
	if _, err := New(Options{Policy: "magic"}); err == nil {
		t.Error("unknown policy should fail")
	}
	for _, p := range []string{"evolve", "hpa", "vpa", "static", "pid-cpu-only"} {
		if _, err := New(Options{Policy: p}); err != nil {
			t.Errorf("policy %s rejected: %v", p, err)
		}
	}
}

func TestAddServiceValidation(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []ServiceOptions{
		{},
		{Name: "x"},
		{Name: "x", BaseRate: 100, Archetype: "mainframe"},
		{Name: "x", BaseRate: 100, LatencyObjective: time.Second, ThroughputObjective: 5},
	}
	for i, o := range cases {
		if err := c.AddService(o); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if err := c.AddService(ServiceOptions{Name: "ok", BaseRate: 100}); err != nil {
		t.Errorf("valid service rejected: %v", err)
	}
}

func TestEndToEndQuickstart(t *testing.T) {
	c, err := New(Options{Seed: 3, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{
		Name: "web", Archetype: "web", BaseRate: 300,
		LatencyObjective: 100 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("web", Diurnal(150, 900, time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(90 * time.Minute); err != nil {
		t.Fatal(err)
	}
	v, err := c.Violations("web")
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.05 {
		t.Errorf("violations = %.3f, want < 5%% with the evolve policy", v)
	}
	rep := c.Report()
	if rep.Elapsed != 90*time.Minute || len(rep.Services) != 1 {
		t.Errorf("report: %+v", rep)
	}
	if !strings.Contains(rep.String(), "web") {
		t.Error("report string missing service")
	}
	if rep.ClusterCPUUsed <= 0 || rep.ClusterCPUAllocated < rep.ClusterCPUUsed {
		t.Errorf("cluster fractions: %+v", rep)
	}
}

func TestRunInStages(t *testing.T) {
	c, err := New(Options{Seed: 4, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("svc", Constant(100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 20*time.Minute {
		t.Errorf("Now = %v", c.Now())
	}
	if err := c.Run(0); err == nil {
		t.Error("zero duration should fail")
	}
	if err := c.AddService(ServiceOptions{Name: "late", BaseRate: 10}); err == nil {
		t.Error("adding services after Run should fail")
	}
}

func TestBatchAndHPCJobs(t *testing.T) {
	c, err := New(Options{Seed: 5, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("svc", Constant(100)); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatchJob(BatchJobOptions{Name: "sort", Scale: 0.5, SubmitAt: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitHPCJob(HPCJobOptions{Name: "mpi", Ranks: 2, SubmitAt: 2 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitHPCJob(HPCJobOptions{Ranks: 2}); err == nil {
		t.Error("nameless hpc job should fail")
	}
	if err := c.SubmitHPCJob(HPCJobOptions{Name: "x"}); err == nil {
		t.Error("rankless hpc job should fail")
	}
	if err := c.SubmitBatchJob(BatchJobOptions{}); err == nil {
		t.Error("nameless batch job should fail")
	}
	if err := c.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, done := c.BatchDone("sort"); !done {
		t.Error("batch job did not finish")
	}
	if s, err := c.HPCStatus("mpi"); err != nil || s != "done" {
		t.Errorf("hpc status = %q, %v", s, err)
	}
	rep := c.Report()
	if rep.BatchJobsCompleted != 1 || rep.HPCJobsCompleted != 1 {
		t.Errorf("report jobs: %+v", rep)
	}
}

func TestLoadHelpers(t *testing.T) {
	if Constant(5)(time.Hour) != 5 {
		t.Error("Constant wrong")
	}
	d := Diurnal(10, 30, time.Hour)
	if d(0) != 10 || d(30*time.Minute) != 30 {
		t.Error("Diurnal wrong")
	}
	s := Step(1, 2, time.Minute)
	if s(0) != 1 || s(2*time.Minute) != 2 {
		t.Error("Step wrong")
	}
	fc := FlashCrowd(1, 10, time.Minute, time.Minute)
	if fc(90*time.Second) != 10 || fc(3*time.Minute) != 1 {
		t.Error("FlashCrowd wrong")
	}
	n := Noisy(Constant(100), 0.1, 3)
	v := n(time.Minute)
	if v < 90 || v > 110 {
		t.Errorf("Noisy out of bounds: %v", v)
	}
}

func TestFromTraceCSV(t *testing.T) {
	csv := "seconds,rate\n0,100\n60,200\n120,300\n"
	fn, err := FromTraceCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if fn(30*time.Second) != 100 {
		t.Errorf("step replay at 30s = %v", fn(30*time.Second))
	}
	if fn(90*time.Second) != 200 {
		t.Errorf("step replay at 90s = %v", fn(90*time.Second))
	}
	if _, err := FromTraceCSV(strings.NewReader("garbage")); err == nil {
		t.Error("bad trace should fail")
	}
	// End-to-end: drive a service with the trace.
	c, err := New(Options{Seed: 8, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("svc", fn); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if last, ok := mustSeriesLast(c, "app/svc/offered"); !ok || last != 300 {
		t.Errorf("offered at end = %v", last)
	}
}

// mustSeriesLast fetches the last sample of a series via the CSV export
// (keeping the test on the public API surface).
func mustSeriesLast(c *Cluster, name string) (float64, bool) {
	var buf bytes.Buffer
	if err := c.WriteSeriesCSV(name, &buf); err != nil {
		return 0, false
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		return 0, false
	}
	fields := strings.Split(lines[len(lines)-1], ",")
	var v float64
	if _, err := fmt.Sscanf(fields[1], "%g", &v); err != nil {
		return 0, false
	}
	return v, true
}

func TestSeriesCSVExport(t *testing.T) {
	c, err := New(Options{Seed: 6, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("svc", Constant(100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	names := c.SeriesNames()
	if len(names) == 0 {
		t.Fatal("no series recorded")
	}
	var buf bytes.Buffer
	if err := c.WriteSeriesCSV("app/svc/latency-mean", &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "seconds,value" || len(lines) < 10 {
		t.Errorf("csv:\n%s", buf.String())
	}
	if err := c.WriteSeriesCSV("nope", &buf); err == nil {
		t.Error("unknown series should fail")
	}
}

func TestDeterministicReplayAcrossClusters(t *testing.T) {
	run := func() float64 {
		c, err := New(Options{Seed: 11, Nodes: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 200}); err != nil {
			t.Fatal(err)
		}
		if err := c.SetLoad("svc", Noisy(Diurnal(100, 500, time.Hour), 0.1, 9)); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		v, _ := c.Violations("svc")
		rep := c.Report()
		return v + rep.ClusterCPUUsed
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay diverged: %v vs %v", a, b)
	}
}

// TestShardsOptionByteIdentical pins the public contract of
// Options.Shards: the sharded kernel produces exactly the results of
// the single-engine one.
func TestShardsOptionByteIdentical(t *testing.T) {
	run := func(shards int) (float64, string) {
		c, err := New(Options{Seed: 11, Nodes: 6, Shards: shards, ShardWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 200}); err != nil {
			t.Fatal(err)
		}
		if err := c.SetLoad("svc", Noisy(Diurnal(100, 500, time.Hour), 0.1, 9)); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		v, _ := c.Violations("svc")
		return v, fmt.Sprintf("%+v", c.Report())
	}
	v1, rep1 := run(0)
	for _, shards := range []int{2, 5} {
		v, rep := run(shards)
		if v != v1 || rep != rep1 {
			t.Errorf("shards=%d diverged: violations %v vs %v, report %s vs %s",
				shards, v, v1, rep, rep1)
		}
	}
}

func TestStaticPolicyViolatesUnderPeak(t *testing.T) {
	mk := func(policy string) float64 {
		c, err := New(Options{Seed: 12, Nodes: 4, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 200}); err != nil {
			t.Fatal(err)
		}
		if err := c.SetLoad("svc", Diurnal(100, 600, time.Hour)); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		v, _ := c.Violations("svc")
		return v
	}
	static := mk("static")
	adaptive := mk("evolve")
	if static < adaptive*5 {
		t.Errorf("static %.3f vs evolve %.3f: expected static to violate far more under a 3x peak", static, adaptive)
	}
}

func TestChaosOptionValidation(t *testing.T) {
	if _, err := New(Options{Chaos: "meteor-strike@0"}); err == nil {
		t.Error("unknown chaos kind should fail New")
	}
	for _, plan := range []string{"node-kill", "sensor-dropout", "actuation-flake", "mixed", "metric-drop@10m:p=0.5"} {
		if _, err := New(Options{Chaos: plan}); err != nil {
			t.Errorf("chaos plan %q rejected: %v", plan, err)
		}
	}
}

// TestChaosDegradedModeSurfaces: a total sensor blackout pushes the
// hardened loop into degraded mode, and both the controller state view
// and the report show it.
func TestChaosDegradedModeSurfaces(t *testing.T) {
	c, err := New(Options{Seed: 1, Nodes: 3, Chaos: "metric-drop@10m:p=1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{Name: "web", BaseRate: 300}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("web", Constant(300)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	states := c.ControllerStates()
	if len(states) != 1 {
		t.Fatalf("controller states: %+v", states)
	}
	if !states[0].Degraded || !strings.Contains(states[0].Health, "degraded") {
		t.Errorf("blackout did not surface as degraded: %+v", states[0])
	}
	rep := c.Report()
	if rep.DegradedPeriods == 0 {
		t.Error("report shows no degraded periods under a 20-minute blackout")
	}
	if !strings.Contains(rep.String(), "degraded periods") {
		t.Error("report text omits the robustness line")
	}
}

// TestChaosReplayDeterministic: the same seed and chaos plan replay to
// identical reports.
func TestChaosReplayDeterministic(t *testing.T) {
	run := func() string {
		c, err := New(Options{Seed: 7, Nodes: 3, Chaos: "mixed"})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddService(ServiceOptions{Name: "web", BaseRate: 300}); err != nil {
			t.Fatal(err)
		}
		if err := c.SetLoad("web", Diurnal(150, 900, time.Hour)); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		return c.Report().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("chaos replay diverged:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
