module evolve

go 1.22
