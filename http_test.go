package evolve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newServedCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Options{Seed: 17, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("svc", Constant(100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return c
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestHTTPHealthz(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz = %d %q", code, body)
	}
}

func TestHTTPReport(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	code, body, ctype := get(t, srv, "/report")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("report = %d %s", code, ctype)
	}
	var rep Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad json: %v\n%s", err, body)
	}
	if len(rep.Services) != 1 || rep.Services[0].Name != "svc" {
		t.Errorf("report: %+v", rep)
	}
}

func TestHTTPSeriesListAndFetch(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/series")
	if code != http.StatusOK {
		t.Fatalf("series list = %d", code)
	}
	var names []string
	if err := json.Unmarshal([]byte(body), &names); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no series")
	}
	code, csv, ctype := get(t, srv, "/series/app/svc/latency-mean")
	if code != http.StatusOK || !strings.Contains(ctype, "text/csv") {
		t.Fatalf("series fetch = %d %s", code, ctype)
	}
	if !strings.HasPrefix(csv, "seconds,value\n") {
		t.Errorf("csv body:\n%s", csv[:60])
	}
}

func TestHTTPEvents(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	code, body, ctype := get(t, srv, "/events")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("events = %d %s", code, ctype)
	}
	var evs []EventRecord
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no events over a 10-minute run")
	}
	seen := false
	for _, e := range evs {
		if e.Kind == "pod-scheduled" {
			seen = true
		}
	}
	if !seen {
		t.Error("missing pod-scheduled events")
	}
}

// newTracedServer builds a served cluster with tracing enabled before
// the run, so every debug route has data behind it.
func newTracedServer(t *testing.T) *httptest.Server {
	t.Helper()
	c, err := New(Options{Seed: 17, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTracing(4096)
	if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("svc", Constant(100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestHTTPRoutes sweeps every route the Handler doc comment advertises
// against a tracing-enabled cluster: status, content type and a content
// probe per route.
func TestHTTPRoutes(t *testing.T) {
	srv := newTracedServer(t)
	cases := []struct {
		path     string
		code     int
		ctype    string // substring of Content-Type
		contains string // substring of the body
	}{
		{"/healthz", http.StatusOK, "text/plain", "ok\n"},
		{"/report", http.StatusOK, "application/json", `"Services"`},
		{"/series", http.StatusOK, "application/json", "app/svc/latency-mean"},
		{"/series/app/svc/latency-mean", http.StatusOK, "text/csv", "seconds,value\n"},
		{"/series/", http.StatusBadRequest, "", "series name required"},
		{"/series/not/a/series", http.StatusNotFound, "", "unknown series"},
		{"/events", http.StatusOK, "application/json", "pod-scheduled"},
		{"/metrics", http.StatusOK, "text/plain; version=0.0.4", "# TYPE evolve_"},
		{"/metrics", http.StatusOK, "", "evolve_trace_events_total"},
		{"/debug/trace", http.StatusOK, "application/jsonl", `"kind":"control"`},
		{"/debug/trace?kind=sched&verb=bind", http.StatusOK, "application/jsonl", `"verb":"bind"`},
		{"/debug/trace?app=svc&limit=1", http.StatusOK, "application/jsonl", `"app":"svc"`},
		{"/debug/trace?kind=bogus", http.StatusBadRequest, "", "bad kind"},
		{"/debug/trace?kind=bogus", http.StatusBadRequest, "", "fault"},
		{"/debug/trace?from=xyz", http.StatusBadRequest, "", "bad from"},
		{"/debug/trace?limit=-1", http.StatusBadRequest, "", "bad limit"},
		{"/debug/trace?verbs=bind", http.StatusBadRequest, "", "unknown parameter(s): verbs"},
		{"/metrics", http.StatusOK, "", "evolve_trace_spans_total"},
		{"/metrics", http.StatusOK, "", "evolve_latency_time_to_ready_seconds_bucket"},
		{"/metrics", http.StatusOK, "", "evolve_plo_burn_rate"},
		{"/debug/spans", http.StatusOK, "application/jsonl", `"kind":"lifecycle"`},
		{"/debug/spans?kind=pending&app=svc", http.StatusOK, "application/jsonl", `"kind":"pending"`},
		{"/debug/spans?kind=bogus", http.StatusBadRequest, "", "bad kind: want lifecycle"},
		{"/debug/spans?limit=x", http.StatusBadRequest, "", "bad limit"},
		{"/debug/spans?pod=svc-1", http.StatusBadRequest, "", "unknown parameter(s): pod"},
		{"/debug/timeline", http.StatusOK, "text/plain", "timeline"},
		{"/debug/timeline?pod=svc-1", http.StatusOK, "text/plain", "pod svc-1 (app svc)"},
		{"/debug/timeline?pod=nope", http.StatusNotFound, "", "no lifecycle span"},
		{"/debug/timeline?from=xyz", http.StatusBadRequest, "", "bad from"},
		{"/debug/timeline?kind=pending", http.StatusBadRequest, "", "unknown parameter(s): kind"},
		{"/debug/controllers", http.StatusOK, "application/json", `"trace"`},
	}
	for _, c := range cases {
		code, body, ctype := get(t, srv, c.path)
		if code != c.code {
			t.Errorf("%s: status %d, want %d (body %q)", c.path, code, c.code, body)
			continue
		}
		if c.ctype != "" && !strings.Contains(ctype, c.ctype) {
			t.Errorf("%s: content type %q, want it to contain %q", c.path, ctype, c.ctype)
		}
		if !strings.Contains(body, c.contains) {
			t.Errorf("%s: body does not contain %q:\n%.300s", c.path, c.contains, body)
		}
	}
}

// TestHTTPTraceFilterNarrows checks filters actually subset: a bind-only
// query must return fewer lines than the unfiltered trace, a limit query
// exactly that many.
func TestHTTPTraceFilterNarrows(t *testing.T) {
	srv := newTracedServer(t)
	lines := func(path string) int {
		code, body, _ := get(t, srv, path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", path, code)
		}
		return len(strings.Split(strings.TrimSpace(body), "\n"))
	}
	all := lines("/debug/trace")
	binds := lines("/debug/trace?verb=bind")
	if binds == 0 || binds >= all {
		t.Errorf("bind filter returned %d of %d lines", binds, all)
	}
	if n := lines("/debug/trace?limit=3"); n != 3 {
		t.Errorf("limit=3 returned %d lines", n)
	}
}

func TestHTTPTraceDisabled(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	for _, path := range []string{"/debug/trace", "/debug/spans", "/debug/timeline"} {
		code, body, _ := get(t, srv, path)
		if code != http.StatusNotFound || !strings.Contains(body, "tracing disabled") {
			t.Errorf("disabled %s = %d %q", path, code, body)
		}
	}
	// /metrics and /debug/controllers still work without a tracer.
	if code, _, _ := get(t, srv, "/metrics"); code != http.StatusOK {
		t.Errorf("metrics without tracer = %d", code)
	}
	code, body, _ := get(t, srv, "/debug/controllers")
	if code != http.StatusOK {
		t.Errorf("controllers without tracer = %d", code)
	}
	if !strings.Contains(body, `"app": "svc"`) {
		t.Errorf("controllers body:\n%.300s", body)
	}
}

func TestHTTPSeriesErrors(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	if code, _, _ := get(t, srv, "/series/"); code != http.StatusBadRequest {
		t.Errorf("empty name = %d", code)
	}
	if code, _, _ := get(t, srv, "/series/not/a/series"); code != http.StatusNotFound {
		t.Errorf("unknown series = %d", code)
	}
}
