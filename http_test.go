package evolve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newServedCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Options{Seed: 17, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("svc", Constant(100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return c
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestHTTPHealthz(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz = %d %q", code, body)
	}
}

func TestHTTPReport(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	code, body, ctype := get(t, srv, "/report")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("report = %d %s", code, ctype)
	}
	var rep Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad json: %v\n%s", err, body)
	}
	if len(rep.Services) != 1 || rep.Services[0].Name != "svc" {
		t.Errorf("report: %+v", rep)
	}
}

func TestHTTPSeriesListAndFetch(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/series")
	if code != http.StatusOK {
		t.Fatalf("series list = %d", code)
	}
	var names []string
	if err := json.Unmarshal([]byte(body), &names); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no series")
	}
	code, csv, ctype := get(t, srv, "/series/app/svc/latency-mean")
	if code != http.StatusOK || !strings.Contains(ctype, "text/csv") {
		t.Fatalf("series fetch = %d %s", code, ctype)
	}
	if !strings.HasPrefix(csv, "seconds,value\n") {
		t.Errorf("csv body:\n%s", csv[:60])
	}
}

func TestHTTPEvents(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	code, body, ctype := get(t, srv, "/events")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("events = %d %s", code, ctype)
	}
	var evs []EventRecord
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no events over a 10-minute run")
	}
	seen := false
	for _, e := range evs {
		if e.Kind == "pod-scheduled" {
			seen = true
		}
	}
	if !seen {
		t.Error("missing pod-scheduled events")
	}
}

func TestHTTPSeriesErrors(t *testing.T) {
	srv := httptest.NewServer(newServedCluster(t).Handler())
	defer srv.Close()
	if code, _, _ := get(t, srv, "/series/"); code != http.StatusBadRequest {
		t.Errorf("empty name = %d", code)
	}
	if code, _, _ := get(t, srv, "/series/not/a/series"); code != http.StatusNotFound {
		t.Errorf("unknown series = %d", code)
	}
}
