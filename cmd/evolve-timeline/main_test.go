package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"evolve"
	"evolve/internal/obs"
)

// runSimWithSpans executes a small simulation with a span sink attached
// — the same wiring `evolve-sim -spans` performs — and returns the span
// file path.
func runSimWithSpans(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	c, err := evolve.New(evolve.Options{Seed: 11, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTracing(1 << 14).SetSpanSink(w)
	if err := c.AddService(evolve.ServiceOptions{Name: "web", BaseRate: 200}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("web", evolve.Diurnal(150, 900, 30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(45 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Tracer().SpanSinkErr(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEndToEndPodExplanation is the acceptance gate for the span layer:
// run a simulation, persist its span stream, and have evolve-timeline
// reconstruct one pod's created→ready chain with correct parent links.
func TestEndToEndPodExplanation(t *testing.T) {
	path := runSimWithSpans(t)

	// Pick a pod the controller caused: a lifecycle span with a parent.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ReadSpans(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("simulation produced no spans")
	}
	var caused string
	for i := range spans {
		if spans[i].Kind == obs.SpanLifecycle && spans[i].Parent != 0 {
			caused = spans[i].Object
			break
		}
	}
	if caused == "" {
		t.Fatal("no decision-caused pod over a 45m diurnal run")
	}

	// The chain itself: cause → lifecycle root → children, parents wired.
	chain := obs.PodChain(spans, caused)
	if len(chain) < 3 {
		t.Fatalf("chain for %s has %d spans, want cause+root+children", caused, len(chain))
	}
	if chain[0].Kind != obs.SpanDecision && chain[0].Kind != obs.SpanGang {
		t.Fatalf("chain[0] is %s, want the causing decision/gang span", chain[0].Kind)
	}
	root := chain[1]
	if root.Kind != obs.SpanLifecycle || root.Parent != chain[0].ID {
		t.Fatalf("chain[1] = %+v, want lifecycle parented to %d", root, chain[0].ID)
	}
	sawPending := false
	for _, sp := range chain[2:] {
		if sp.Parent != root.ID {
			t.Errorf("child %s span %d parents to %d, want root %d", sp.Kind, sp.ID, sp.Parent, root.ID)
		}
		if sp.Kind == obs.SpanPending {
			sawPending = true
			if sp.Start != root.Start {
				t.Errorf("pending starts at %v, root at %v", sp.Start, root.Start)
			}
		}
	}
	if !sawPending {
		t.Error("chain has no pending span: the created→bound leg is missing")
	}

	// The CLI answers the question from the file alone.
	var out bytes.Buffer
	if err := run([]string{"-spans", path, "-pod", caused}, &out); err != nil {
		t.Fatalf("evolve-timeline -pod %s: %v", caused, err)
	}
	text := out.String()
	for _, want := range []string{"pod " + caused, "to ready", "caused by", "pending"} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q:\n%s", want, text)
		}
	}
}

func TestTimelineAndSummaryModes(t *testing.T) {
	path := runSimWithSpans(t)
	var out bytes.Buffer
	if err := run([]string{"-spans", path}, &out); err != nil {
		t.Fatalf("timeline mode: %v", err)
	}
	if !strings.Contains(out.String(), "timeline") || !strings.Contains(out.String(), "lifecycle") {
		t.Errorf("timeline output:\n%.300s", out.String())
	}
	out.Reset()
	if err := run([]string{"-spans", path, "-summary"}, &out); err != nil {
		t.Fatalf("summary mode: %v", err)
	}
	if !strings.Contains(out.String(), "kind") || !strings.Contains(out.String(), "pending") {
		t.Errorf("summary output:\n%.300s", out.String())
	}
	out.Reset()
	if err := run([]string{"-spans", path, "-from", "10m", "-to", "20m"}, &out); err != nil {
		t.Fatalf("window mode: %v", err)
	}

	// Error paths: missing flag, missing file, unknown pod.
	if err := run(nil, &out); err == nil {
		t.Error("missing -spans accepted")
	}
	if err := run([]string{"-spans", filepath.Join(t.TempDir(), "nope.jsonl")}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-spans", path, "-pod", "no-such-pod"}, &out); err == nil {
		t.Error("unknown pod accepted")
	}
}
