// Command evolve-timeline renders the causal span stream of a run as a
// text timeline, a per-kind flamegraph summary, or a single pod's
// explanation — the offline answer to "why was this pod slow to become
// ready?". It consumes the JSONL span files that `evolve-sim -spans`
// (or any obs.Tracer span sink) produces.
//
// Examples:
//
//	evolve-sim -spans spans.jsonl -duration 2h
//	evolve-timeline -spans spans.jsonl                  # full timeline
//	evolve-timeline -spans spans.jsonl -from 30m -to 45m
//	evolve-timeline -spans spans.jsonl -summary         # per-kind flamegraph
//	evolve-timeline -spans spans.jsonl -pod web-7       # one pod's path to ready
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"evolve/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evolve-timeline:", err)
		os.Exit(1)
	}
}

// run is the testable body: parse flags, load the span stream, render.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("evolve-timeline", flag.ContinueOnError)
	var (
		spansPath = fs.String("spans", "", "span JSONL file (from evolve-sim -spans); required")
		pod       = fs.String("pod", "", "explain this pod's path to readiness instead of the timeline")
		summary   = fs.Bool("summary", false, "print the per-kind duration aggregate instead of the timeline")
		from      = fs.Duration("from", 0, "timeline window start (virtual time)")
		to        = fs.Duration("to", 0, "timeline window end (0 = no bound)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spansPath == "" {
		return fmt.Errorf("-spans is required (produce one with: evolve-sim -spans spans.jsonl)")
	}
	f, err := os.Open(*spansPath)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s holds no spans", *spansPath)
	}
	switch {
	case *pod != "":
		return obs.ExplainPodReady(stdout, spans, *pod)
	case *summary:
		obs.SummariseSpans(stdout, spans)
		return nil
	default:
		return obs.WriteTimeline(stdout, spans, *from, *to)
	}
}
