// Command bench-compare diffs the scale rows of two committed bench
// trajectory records (BENCH_*.json): kernel rows are matched on
// (nodes, pods, shards) and control-plane rows on (apps, pods,
// ctrl_workers), and the run fails — exit 1 — when the new record
// regresses ms_per_tick, ms_per_period or speedup by more than the
// tolerance. CI runs it after regenerating the quick ladders so a
// scaling regression fails the PR instead of silently landing in the
// record.
//
// Usage:
//
//	bench-compare -old BENCH_6.json -new BENCH_7.json [-tolerance 0.15]
//
// Rows present on only one side are reported but never fail the run:
// ladders legitimately grow and shrink between PRs, old records predate
// whole row families (kernel rows arrived with figure6, control-plane
// rows with figure12), and absolute wall times only compare within one
// machine anyway.
//
// Serial rows (1 shard / 1 worker) fail on the absolute ms check
// alone. Parallel rows fail only when BOTH the absolute ms check and
// the within-record speedup check regress: speedup is a ratio against
// the same record's serial baseline, so the two checks disagreeing is
// exactly the signature of the shared baseline having moved between
// records (machine drift, or a serial-path change) — dividing the two
// speedups then compares different denominators and would misattribute
// the baseline shift to the parallel row. A genuine parallel-path
// regression slows the row both absolutely and relative to its own
// baseline, failing both checks; a genuine serial-path regression
// fails the serial row directly.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"sort"
)

// scaleRow mirrors the fields of harness.ScaleRow that both record
// generations carry; unknown fields are ignored so old records parse.
type scaleRow struct {
	Nodes     int     `json:"nodes"`
	Pods      int     `json:"pods"`
	Shards    int     `json:"shards"`
	MSPerTick float64 `json:"ms_per_tick"`
	Speedup   float64 `json:"speedup"`
	// Latency-tail fields (records from PR 8 on; zero in older records).
	TickMaxMS     float64 `json:"tick_max_ms"`
	RoundsPerTick float64 `json:"rounds_per_tick"`
}

// ctrlRow mirrors harness.CtrlScaleRow (records from PR 10 on).
type ctrlRow struct {
	Apps        int     `json:"apps"`
	Pods        int     `json:"pods"`
	Workers     int     `json:"ctrl_workers"`
	MSPerPeriod float64 `json:"ms_per_period"`
	EvalMS      float64 `json:"eval_ms"`
	ApplyMS     float64 `json:"apply_ms"`
	Speedup     float64 `json:"speedup"`
}

type pointKey struct{ Nodes, Pods, Shards int }

type ctrlKey struct{ Apps, Pods, Workers int }

// readRecord extracts the kernel and control-plane scale rows from a
// bench record: a JSONL stream whose summary line carries them under
// "scale" and "ctrl_scale".
func readRecord(path string) (map[pointKey]scaleRow, map[ctrlKey]ctrlRow, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, fmt.Errorf("baseline record %s does not exist — generate it on the base revision with `make bench-json` (or point -old at the last committed BENCH_*.json)", path)
		}
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	rows := map[pointKey]scaleRow{}
	ctrl := map[ctrlKey]ctrlRow{}
	found := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec struct {
			ID        string     `json:"id"`
			Scale     []scaleRow `json:"scale"`
			CtrlScale []ctrlRow  `json:"ctrl_scale"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		if rec.ID != "summary" {
			continue
		}
		found = true
		for _, row := range rec.Scale {
			rows[pointKey{row.Nodes, row.Pods, row.Shards}] = row
		}
		for _, row := range rec.CtrlScale {
			ctrl[ctrlKey{row.Apps, row.Pods, row.Workers}] = row
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if !found {
		return nil, nil, fmt.Errorf("%s: no summary line — was it written with `evolve-bench -json`?", path)
	}
	return rows, ctrl, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline bench record (e.g. BENCH_6.json)")
	newPath := flag.String("new", "", "candidate bench record (e.g. BENCH_7.json)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression in ms_per_tick, ms_per_period and speedup")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "bench-compare: -old and -new are required")
		os.Exit(2)
	}

	oldRows, oldCtrl, err := readRecord(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRows, newCtrl, err := readRecord(*newPath)
	if err != nil {
		fatal(err)
	}
	if len(newRows) == 0 && len(newCtrl) == 0 {
		fatal(fmt.Errorf("%s carries no scale rows — run evolve-bench with figure6 and/or figure12 selected", *newPath))
	}

	failures := 0
	compared := 0
	if len(newRows) > 0 && len(oldRows) == 0 {
		fmt.Printf("note: %s carries no kernel scale rows (pre-figure6 record?); skipping the kernel comparison\n", *oldPath)
	}
	if len(newRows) > 0 {
		f, c := compareKernel(oldRows, newRows, *newPath, *tolerance)
		failures += f
		compared += c
	}
	if len(newCtrl) > 0 && len(oldCtrl) == 0 {
		fmt.Printf("note: %s carries no control-plane scale rows (pre-figure12 record?); skipping the control-plane comparison\n", *oldPath)
	}
	if len(newCtrl) > 0 {
		f, c := compareCtrl(oldCtrl, newCtrl, *tolerance)
		failures += f
		compared += c
	}
	if compared == 0 {
		fatal(fmt.Errorf("no comparable rows between %s and %s (ladders share no points)", *oldPath, *newPath))
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d row(s) regressed beyond %.0f%%\n", failures, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("bench-compare: %d row(s) within %.0f%% tolerance\n", compared, *tolerance*100)
}

// compareKernel diffs the figure6 kernel rows; returns (failures,
// compared).
func compareKernel(oldRows, newRows map[pointKey]scaleRow, newPath string, tolerance float64) (int, int) {
	keys := make([]pointKey, 0, len(newRows))
	for key := range newRows {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pods != b.Pods {
			return a.Pods < b.Pods
		}
		if a.Nodes != b.Nodes {
			return a.Nodes < b.Nodes
		}
		return a.Shards < b.Shards
	})
	failures, compared := 0, 0
	for _, key := range keys {
		nw := newRows[key]
		old, ok := oldRows[key]
		if !ok {
			fmt.Printf("NEW   %6d nodes %8d pods %2d shards: %.3f ms/tick (no baseline row)\n",
				key.Nodes, key.Pods, key.Shards, nw.MSPerTick)
			continue
		}
		compared++
		msBad := old.MSPerTick > 0 && nw.MSPerTick > old.MSPerTick*(1+tolerance)
		spBad := old.Speedup > 0 && nw.Speedup < old.Speedup/(1+tolerance)
		status, note := verdict(key.Shards > 1, msBad, spBad, "1-shard")
		if status == "FAIL" {
			failures++
		}
		fmt.Printf("%s  %6d nodes %8d pods %2d shards: %8.3f -> %8.3f ms/tick (%+.1f%%), speedup %.2fx -> %.2fx%s\n",
			status, key.Nodes, key.Pods, key.Shards,
			old.MSPerTick, nw.MSPerTick, 100*(nw.MSPerTick-old.MSPerTick)/old.MSPerTick,
			old.Speedup, nw.Speedup, note)
	}
	for key := range oldRows {
		if _, ok := newRows[key]; !ok {
			fmt.Printf("GONE  %6d nodes %8d pods %2d shards: row absent from %s\n",
				key.Nodes, key.Pods, key.Shards, newPath)
		}
	}
	printLatencySummary(keys, newRows)
	return failures, compared
}

// compareCtrl diffs the figure12 control-plane rows on ms_per_period
// and speedup; returns (failures, compared).
func compareCtrl(oldCtrl, newCtrl map[ctrlKey]ctrlRow, tolerance float64) (int, int) {
	keys := make([]ctrlKey, 0, len(newCtrl))
	for key := range newCtrl {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Apps != b.Apps {
			return a.Apps < b.Apps
		}
		if a.Pods != b.Pods {
			return a.Pods < b.Pods
		}
		return a.Workers < b.Workers
	})
	failures, compared := 0, 0
	fmt.Printf("\ncontrol plane (figure12):\n")
	for _, key := range keys {
		nw := newCtrl[key]
		old, ok := oldCtrl[key]
		if !ok {
			fmt.Printf("NEW   %5d apps %8d pods %2d workers: %.3f ms/period (eval %.3f, apply %.3f; no baseline row)\n",
				key.Apps, key.Pods, key.Workers, nw.MSPerPeriod, nw.EvalMS, nw.ApplyMS)
			continue
		}
		compared++
		msBad := old.MSPerPeriod > 0 && nw.MSPerPeriod > old.MSPerPeriod*(1+tolerance)
		spBad := old.Speedup > 0 && nw.Speedup < old.Speedup/(1+tolerance)
		status, note := verdict(key.Workers > 1, msBad, spBad, "1-worker")
		if status == "FAIL" {
			failures++
		}
		fmt.Printf("%s  %5d apps %8d pods %2d workers: %8.3f -> %8.3f ms/period (%+.1f%%), speedup %.2fx -> %.2fx%s\n",
			status, key.Apps, key.Pods, key.Workers,
			old.MSPerPeriod, nw.MSPerPeriod, 100*(nw.MSPerPeriod-old.MSPerPeriod)/old.MSPerPeriod,
			old.Speedup, nw.Speedup, note)
	}
	return failures, compared
}

// verdict decides a row's status from its two checks. Serial rows are
// judged on absolute ms alone (their speedup is identically 1). A
// parallel row fails only when ms and speedup agree it regressed: the
// speedup ratio factors as baselineDrift × msImprovement, so when the
// two checks disagree the discrepancy lives in the serial baseline the
// speedups share, not in this row — the note says which way.
func verdict(parallel, msBad, spBad bool, baseName string) (string, string) {
	switch {
	case !parallel:
		if msBad {
			return "FAIL", ""
		}
	case msBad && spBad:
		return "FAIL", ""
	case spBad:
		return "ok  ", fmt.Sprintf("  (speedup shift tracks the %s baseline; ms within tolerance)", baseName)
	case msBad:
		return "ok  ", fmt.Sprintf("  (ms shift tracks the %s baseline; speedup within tolerance)", baseName)
	}
	return "ok  ", ""
}

// printLatencySummary renders the candidate record's tick-latency tail:
// mean vs worst tick and barrier rounds per tick, for rows that carry
// the histogram-derived fields (older records simply skip the block).
// The tail/mean ratio is the number to watch — a flat ratio across
// shard counts means the barrier is not stretching the worst tick.
func printLatencySummary(keys []pointKey, rows map[pointKey]scaleRow) {
	header := false
	for _, key := range keys {
		row := rows[key]
		if row.TickMaxMS <= 0 {
			continue
		}
		if !header {
			fmt.Printf("\ntick latency (candidate record):\n")
			header = true
		}
		ratio := 0.0
		if row.MSPerTick > 0 {
			ratio = row.TickMaxMS / row.MSPerTick
		}
		fmt.Printf("      %6d nodes %8d pods %2d shards: mean %8.3f ms, worst %8.3f ms (%4.1fx), %.1f rounds/tick\n",
			key.Nodes, key.Pods, key.Shards, row.MSPerTick, row.TickMaxMS, ratio, row.RoundsPerTick)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-compare:", err)
	os.Exit(1)
}
