// Command bench-compare diffs the kernel scale rows of two committed
// bench trajectory records (BENCH_*.json): it matches rows on
// (nodes, pods, shards) and fails — exit 1 — when the new record
// regresses ms_per_tick or shard speedup by more than the tolerance.
// CI runs it after regenerating the quick ladder so a shard-scaling
// regression fails the PR instead of silently landing in the record.
//
// Usage:
//
//	bench-compare -old BENCH_6.json -new BENCH_7.json [-tolerance 0.15]
//
// Rows present on only one side are reported but never fail the run:
// ladders legitimately grow and shrink between PRs, and absolute wall
// times only compare within one machine anyway.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// scaleRow mirrors the fields of harness.ScaleRow that both record
// generations carry; unknown fields are ignored so old records parse.
type scaleRow struct {
	Nodes     int     `json:"nodes"`
	Pods      int     `json:"pods"`
	Shards    int     `json:"shards"`
	MSPerTick float64 `json:"ms_per_tick"`
	Speedup   float64 `json:"speedup"`
	// Latency-tail fields (records from PR 8 on; zero in older records).
	TickMaxMS     float64 `json:"tick_max_ms"`
	RoundsPerTick float64 `json:"rounds_per_tick"`
}

type pointKey struct{ Nodes, Pods, Shards int }

// readScale extracts the scale rows from a bench record: a JSONL stream
// whose summary line carries them under "scale".
func readScale(path string) (map[pointKey]scaleRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	rows := map[pointKey]scaleRow{}
	found := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec struct {
			ID    string     `json:"id"`
			Scale []scaleRow `json:"scale"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if rec.ID != "summary" {
			continue
		}
		found = true
		for _, row := range rec.Scale {
			rows[pointKey{row.Nodes, row.Pods, row.Shards}] = row
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !found {
		return nil, fmt.Errorf("%s: no summary line", path)
	}
	return rows, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline bench record (e.g. BENCH_6.json)")
	newPath := flag.String("new", "", "candidate bench record (e.g. BENCH_7.json)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression in ms_per_tick and speedup")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "bench-compare: -old and -new are required")
		os.Exit(2)
	}

	oldRows, err := readScale(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRows, err := readScale(*newPath)
	if err != nil {
		fatal(err)
	}
	if len(newRows) == 0 {
		fatal(fmt.Errorf("%s carries no scale rows", *newPath))
	}

	keys := make([]pointKey, 0, len(newRows))
	for key := range newRows {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pods != b.Pods {
			return a.Pods < b.Pods
		}
		if a.Nodes != b.Nodes {
			return a.Nodes < b.Nodes
		}
		return a.Shards < b.Shards
	})
	failures := 0
	compared := 0
	for _, key := range keys {
		nw := newRows[key]
		old, ok := oldRows[key]
		if !ok {
			fmt.Printf("NEW   %6d nodes %8d pods %2d shards: %.3f ms/tick (no baseline row)\n",
				key.Nodes, key.Pods, key.Shards, nw.MSPerTick)
			continue
		}
		compared++
		status := "ok  "
		if old.MSPerTick > 0 && nw.MSPerTick > old.MSPerTick*(1+*tolerance) {
			status = "FAIL"
			failures++
		} else if old.Speedup > 0 && nw.Speedup < old.Speedup/(1+*tolerance) {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s  %6d nodes %8d pods %2d shards: %8.3f -> %8.3f ms/tick (%+.1f%%), speedup %.2fx -> %.2fx\n",
			status, key.Nodes, key.Pods, key.Shards,
			old.MSPerTick, nw.MSPerTick, 100*(nw.MSPerTick-old.MSPerTick)/old.MSPerTick,
			old.Speedup, nw.Speedup)
	}
	for key := range oldRows {
		if _, ok := newRows[key]; !ok {
			fmt.Printf("GONE  %6d nodes %8d pods %2d shards: row absent from %s\n",
				key.Nodes, key.Pods, key.Shards, *newPath)
		}
	}
	printLatencySummary(keys, newRows)
	if compared == 0 {
		fatal(fmt.Errorf("no comparable rows between %s and %s", *oldPath, *newPath))
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d row(s) regressed beyond %.0f%%\n", failures, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("bench-compare: %d row(s) within %.0f%% tolerance\n", compared, *tolerance*100)
}

// printLatencySummary renders the candidate record's tick-latency tail:
// mean vs worst tick and barrier rounds per tick, for rows that carry
// the histogram-derived fields (older records simply skip the block).
// The tail/mean ratio is the number to watch — a flat ratio across
// shard counts means the barrier is not stretching the worst tick.
func printLatencySummary(keys []pointKey, rows map[pointKey]scaleRow) {
	header := false
	for _, key := range keys {
		row := rows[key]
		if row.TickMaxMS <= 0 {
			continue
		}
		if !header {
			fmt.Printf("\ntick latency (candidate record):\n")
			header = true
		}
		ratio := 0.0
		if row.MSPerTick > 0 {
			ratio = row.TickMaxMS / row.MSPerTick
		}
		fmt.Printf("      %6d nodes %8d pods %2d shards: mean %8.3f ms, worst %8.3f ms (%4.1fx), %.1f rounds/tick\n",
			key.Nodes, key.Pods, key.Shards, row.MSPerTick, row.TickMaxMS, ratio, row.RoundsPerTick)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-compare:", err)
	os.Exit(1)
}
