// Command evolve-sim runs one converged-cluster scenario from flags and
// prints the outcome report, optionally dumping telemetry series as CSV.
//
// Examples:
//
//	evolve-sim -policy evolve -nodes 5 -duration 2h
//	evolve-sim -policy hpa -services web:300,kvstore:200 -hpc 4 -batch 3
//	evolve-sim -config scenario.json -events
//	evolve-sim -dump app/web/latency-mean -duration 1h > lat.csv
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"evolve"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "simulation seed")
		nodes    = flag.Int("nodes", 5, "number of nodes")
		policy   = flag.String("policy", "evolve", "resource policy: evolve, hpa, vpa, static, pid-cpu-only")
		duration = flag.Duration("duration", 2*time.Hour, "virtual run time")
		services = flag.String("services", "web:400,gateway:300,kvstore:200,inference:30",
			"comma-separated archetype:baseRate service list (names default to the archetype)")
		diurnal = flag.Bool("diurnal", true, "drive services with a diurnal cycle (0.5x..3x base); constant base rate otherwise")
		batchN  = flag.Int("batch", 0, "number of TeraSort-like DAG jobs to stream in")
		hpcN    = flag.Int("hpc", 0, "number of 4-rank HPC gang jobs to stream in")
		dump    = flag.String("dump", "", "telemetry series to print as CSV after the run (e.g. app/web/latency-mean)")
		list    = flag.Bool("list-series", false, "list telemetry series after the run")
		events  = flag.Bool("events", false, "print the operational event journal after the run")
		serve   = flag.String("serve", "", "after the run, serve /report, /series and /healthz on this address (e.g. :8080)")
		config  = flag.String("config", "", "JSON scenario file (see evolve.FileConfig); overrides the workload flags")
	)
	flag.Parse()

	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fatal(err)
		}
		c, dur, err := evolve.NewFromConfig(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if dur == 0 {
			dur = *duration
		}
		finish(c, dur, *list, *events, *dump, *serve)
		return
	}

	c, err := evolve.New(evolve.Options{Seed: *seed, Nodes: *nodes, Policy: *policy})
	if err != nil {
		fatal(err)
	}

	idx := int64(0)
	for _, item := range strings.Split(*services, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.SplitN(item, ":", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad service %q (want archetype:baseRate)", item))
		}
		base, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			fatal(fmt.Errorf("bad base rate in %q: %v", item, err))
		}
		name := parts[0]
		if err := c.AddService(evolve.ServiceOptions{Name: name, Archetype: parts[0], BaseRate: base}); err != nil {
			fatal(err)
		}
		load := evolve.Constant(base)
		if *diurnal {
			load = evolve.Noisy(evolve.Diurnal(base*0.5, base*3, 2*time.Hour), 0.08, *seed+idx)
		}
		if err := c.SetLoad(name, load); err != nil {
			fatal(err)
		}
		idx++
	}
	for i := 0; i < *batchN; i++ {
		if err := c.SubmitBatchJob(evolve.BatchJobOptions{
			Name: fmt.Sprintf("tsort-%d", i), Scale: 1.5,
			SubmitAt: time.Duration(i+1) * 15 * time.Minute,
		}); err != nil {
			fatal(err)
		}
	}
	for i := 0; i < *hpcN; i++ {
		if err := c.SubmitHPCJob(evolve.HPCJobOptions{
			Name: fmt.Sprintf("mpi-%d", i), Ranks: 4,
			SubmitAt: time.Duration(i+1) * 10 * time.Minute,
		}); err != nil {
			fatal(err)
		}
	}

	finish(c, *duration, *list, *events, *dump, *serve)
}

// finish runs the cluster for dur and emits the requested outputs.
func finish(c *evolve.Cluster, dur time.Duration, list, events bool, dump, serve string) {
	if err := c.Run(dur); err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, c.Report())

	if list {
		for _, n := range c.SeriesNames() {
			fmt.Println(n)
		}
	}
	if events {
		for _, e := range c.Events() {
			fmt.Printf("%8.1fs %-16s %-24s %s\n", e.At.Seconds(), e.Kind, e.Object, e.Message)
		}
	}
	if dump != "" {
		if err := c.WriteSeriesCSV(dump, os.Stdout); err != nil {
			fatal(err)
		}
	}
	if serve != "" {
		fmt.Fprintf(os.Stderr, "evolve-sim: serving results on %s\n", serve)
		fatal(http.ListenAndServe(serve, c.Handler()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evolve-sim:", err)
	os.Exit(1)
}
