// Command evolve-sim runs one converged-cluster scenario from flags and
// prints the outcome report, optionally dumping telemetry series as CSV.
//
// Examples:
//
//	evolve-sim -policy evolve -nodes 5 -duration 2h
//	evolve-sim -policy hpa -services web:300,kvstore:200 -hpc 4 -batch 3
//	evolve-sim -chaos node-kill -events           # inject a node crash, watch the recovery
//	evolve-sim -chaos "metric-drop@30m:p=1" -duration 1h
//	evolve-sim -config scenario.json -events
//	evolve-sim -dump app/web/latency-mean -duration 1h > lat.csv
//	evolve-sim -trace run.jsonl -duration 2h   # then: evolve-explain -trace run.jsonl -app web
//	evolve-sim -spans spans.jsonl -duration 2h # then: evolve-timeline -spans spans.jsonl -pod web-7
//	evolve-sim -metrics-addr :9090             # Prometheus text on /metrics after the run
//	evolve-sim -ckpt-dir ck -ckpt-every 5m     # periodic world checkpoints in ck/
//	evolve-sim -ckpt-dir ck -ckpt-every 5m -resume  # continue from the latest one
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"evolve"
	"evolve/internal/chaos"
	"evolve/internal/obs"
)

// outputs collects everything finish should emit after the run.
type outputs struct {
	list, events bool
	dump         string
	serve        string
	metricsAddr  string
	trace        string
	spans        string
	traceBuf     int
	ckptDir      string
	ckptEvery    time.Duration
	resume       bool
}

func main() {
	var (
		seed     = flag.Int64("seed", 1, "simulation seed")
		nodes    = flag.Int("nodes", 5, "number of nodes")
		policy   = flag.String("policy", "evolve", "resource policy: evolve, hpa, vpa, static, pid-cpu-only")
		duration = flag.Duration("duration", 2*time.Hour, "virtual run time")
		services = flag.String("services", "web:400,gateway:300,kvstore:200,inference:30",
			"comma-separated archetype:baseRate service list (names default to the archetype)")
		diurnal   = flag.Bool("diurnal", true, "drive services with a diurnal cycle (0.5x..3x base); constant base rate otherwise")
		batchN    = flag.Int("batch", 0, "number of TeraSort-like DAG jobs to stream in")
		hpcN      = flag.Int("hpc", 0, "number of 4-rank HPC gang jobs to stream in")
		dump      = flag.String("dump", "", "telemetry series to print as CSV after the run (e.g. app/web/latency-mean)")
		list      = flag.Bool("list-series", false, "list telemetry series after the run")
		events    = flag.Bool("events", false, "print the operational event journal after the run")
		serve     = flag.String("serve", "", "after the run, serve /report, /series, /metrics, /debug/trace and friends on this address (e.g. :8080)")
		metrics   = flag.String("metrics-addr", "", "after the run, serve Prometheus /metrics on this address (e.g. :9090)")
		trace     = flag.String("trace", "", "record the decision trace as JSONL to this file (consumed by evolve-explain)")
		spans     = flag.String("spans", "", "record causal spans as JSONL to this file (consumed by evolve-timeline)")
		buf       = flag.Int("trace-buf", obs.DefaultCapacity, "decision-trace ring capacity (events kept for /debug/trace)")
		config    = flag.String("config", "", "JSON scenario file (see evolve.FileConfig); overrides the workload flags")
		chaosPlan = flag.String("chaos", "", "fault-injection plan: a profile ("+strings.Join(chaos.Profiles(), ", ")+") or a chaos-DSL string")
		ckptDir   = flag.String("ckpt-dir", "", "directory for periodic ckpt-*.evck checkpoint files (requires -ckpt-every)")
		ckptEvery = flag.Duration("ckpt-every", 0, "take a world checkpoint at this virtual-time interval (e.g. 30s, 5m); 0 disables")
		resume    = flag.Bool("resume", false, "restore the latest checkpoint in -ckpt-dir before running; the run continues to -duration")
		ctrlW     = flag.Int("ctrl-workers", 0, "shard the control plane across this many workers (byte-identical results; 0/1 = serial)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -serve and -metrics-addr handlers")
	)
	flag.Parse()

	out := outputs{
		list: *list, events: *events, dump: *dump,
		serve: *serve, metricsAddr: *metrics,
		trace: *trace, spans: *spans, traceBuf: *buf,
		ckptDir: *ckptDir, ckptEvery: *ckptEvery, resume: *resume,
	}

	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fatal(err)
		}
		c, dur, err := evolve.NewFromConfig(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if dur == 0 {
			dur = *duration
		}
		if *pprofOn {
			c.EnablePprof()
		}
		finish(c, dur, out)
		return
	}

	c, err := evolve.New(evolve.Options{
		Seed: *seed, Nodes: *nodes, Policy: *policy, Chaos: *chaosPlan,
		CtrlWorkers: *ctrlW, DebugPprof: *pprofOn,
	})
	if err != nil {
		fatal(err)
	}

	idx := int64(0)
	for _, item := range strings.Split(*services, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.SplitN(item, ":", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad service %q (want archetype:baseRate)", item))
		}
		base, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			fatal(fmt.Errorf("bad base rate in %q: %v", item, err))
		}
		name := parts[0]
		if err := c.AddService(evolve.ServiceOptions{Name: name, Archetype: parts[0], BaseRate: base}); err != nil {
			fatal(err)
		}
		load := evolve.Constant(base)
		if *diurnal {
			load = evolve.Noisy(evolve.Diurnal(base*0.5, base*3, 2*time.Hour), 0.08, *seed+idx)
		}
		if err := c.SetLoad(name, load); err != nil {
			fatal(err)
		}
		idx++
	}
	for i := 0; i < *batchN; i++ {
		if err := c.SubmitBatchJob(evolve.BatchJobOptions{
			Name: fmt.Sprintf("tsort-%d", i), Scale: 1.5,
			SubmitAt: time.Duration(i+1) * 15 * time.Minute,
		}); err != nil {
			fatal(err)
		}
	}
	for i := 0; i < *hpcN; i++ {
		if err := c.SubmitHPCJob(evolve.HPCJobOptions{
			Name: fmt.Sprintf("mpi-%d", i), Ranks: 4,
			SubmitAt: time.Duration(i+1) * 10 * time.Minute,
		}); err != nil {
			fatal(err)
		}
	}

	finish(c, *duration, out)
}

// finish runs the cluster for dur and emits the requested outputs.
func finish(c *evolve.Cluster, dur time.Duration, out outputs) {
	var traceFile, spanFile *os.File
	var traceW, spanW *bufio.Writer
	if out.trace != "" {
		f, err := os.Create(out.trace)
		if err != nil {
			fatal(err)
		}
		traceFile, traceW = f, bufio.NewWriter(f)
		c.EnableTracing(out.traceBuf).SetSink(traceW)
	}
	if out.spans != "" {
		f, err := os.Create(out.spans)
		if err != nil {
			fatal(err)
		}
		spanFile, spanW = f, bufio.NewWriter(f)
		c.EnableTracing(out.traceBuf).SetSpanSink(spanW)
	}
	if out.trace == "" && out.spans == "" && (out.serve != "" || out.metricsAddr != "") {
		// Serving without a sink still wants /debug/trace to answer.
		c.EnableTracing(out.traceBuf)
	}

	if out.ckptEvery > 0 {
		if err := c.EnableCheckpoints(out.ckptDir, out.ckptEvery); err != nil {
			fatal(err)
		}
	} else if out.ckptDir != "" {
		fatal(errors.New("-ckpt-dir needs -ckpt-every to schedule checkpoints"))
	}
	if out.resume {
		// Restore the latest checkpoint, then run only the remaining
		// virtual time so the resumed run ends at the same horizon —
		// and, by determinism, with the same report — as a run that
		// never crashed. A missing or empty directory starts fresh so
		// the same command line works on the first launch too.
		if out.ckptDir == "" {
			fatal(errors.New("-resume needs -ckpt-dir"))
		}
		if path, err := evolve.LatestCheckpoint(out.ckptDir); err == nil {
			if err := c.RestoreFile(path); err != nil {
				fatal(fmt.Errorf("resume: %w", err))
			}
			fmt.Fprintf(os.Stderr, "evolve-sim: resumed from %s at t=%s\n", path, c.Now())
		} else {
			fmt.Fprintf(os.Stderr, "evolve-sim: no checkpoint in %s, starting fresh\n", out.ckptDir)
		}
	}

	if rem := dur - c.Now(); rem > 0 {
		if err := c.Run(rem); err != nil {
			fatal(err)
		}
	}
	fmt.Fprint(os.Stderr, c.Report())

	if traceW != nil {
		if err := c.Tracer().SinkErr(); err != nil {
			fatal(fmt.Errorf("trace sink: %w", err))
		}
		if err := traceW.Flush(); err != nil {
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "evolve-sim: decision trace written to %s\n", out.trace)
	}
	if spanW != nil {
		if err := c.Tracer().SpanSinkErr(); err != nil {
			fatal(fmt.Errorf("span sink: %w", err))
		}
		if err := spanW.Flush(); err != nil {
			fatal(err)
		}
		if err := spanFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "evolve-sim: span stream written to %s\n", out.spans)
	}

	if out.list {
		for _, n := range c.SeriesNames() {
			fmt.Println(n)
		}
	}
	if out.events {
		for _, e := range c.Events() {
			fmt.Printf("%8.1fs %-16s %-24s %s\n", e.At.Seconds(), e.Kind, e.Object, e.Message)
		}
	}
	if out.dump != "" {
		if err := c.WriteSeriesCSV(out.dump, os.Stdout); err != nil {
			fatal(err)
		}
	}
	// The simulation is paused now, so serving its state is safe. When
	// both addresses are requested the metrics listener runs aside.
	// Servers block until SIGINT/SIGTERM, then drain in-flight requests.
	var servers []*http.Server
	srvErr := make(chan error, 2)
	start := func(addr string, h http.Handler, what string) {
		s := &http.Server{Addr: addr, Handler: h, ReadHeaderTimeout: 5 * time.Second}
		servers = append(servers, s)
		fmt.Fprintf(os.Stderr, "evolve-sim: serving %s on %s\n", what, addr)
		go func() {
			if err := s.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				srvErr <- err
			}
		}()
	}
	if out.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", c.Handler())
		start(out.metricsAddr, mux, "/metrics")
	}
	if out.serve != "" {
		start(out.serve, c.Handler(), "results")
	}
	if len(servers) > 0 {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case err := <-srvErr:
			fatal(err)
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "evolve-sim: %v, shutting down\n", s)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			for _, srv := range servers {
				if err := srv.Shutdown(ctx); err != nil {
					fmt.Fprintln(os.Stderr, "evolve-sim: shutdown:", err)
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evolve-sim:", err)
	os.Exit(1)
}
