// Command evolve-trace generates, inspects and converts offered-load
// traces. Traces are seconds,rate CSVs that evolve-sim-style runs can
// replay; generating them standalone makes workload shapes inspectable
// and shareable.
//
// Examples:
//
//	evolve-trace -pattern diurnal -base 300 -horizon 2h > web.csv
//	evolve-trace -pattern flash -base 200 -horizon 1h -noise 0.1 > crowd.csv
//	evolve-trace -inspect web.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"evolve/internal/workload"
)

func main() {
	var (
		pattern = flag.String("pattern", "diurnal", "shape: constant, diurnal, step, ramp, flash, mmpp")
		base    = flag.Float64("base", 300, "base rate (ops/second)")
		peakX   = flag.Float64("peak", 3, "peak multiplier for diurnal/step/ramp/flash")
		horizon = flag.Duration("horizon", 2*time.Hour, "trace length")
		step    = flag.Duration("step", 15*time.Second, "sampling interval")
		noise   = flag.Float64("noise", 0, "multiplicative noise fraction (deterministic)")
		seed    = flag.Int64("seed", 1, "noise/mmpp seed")
		inspect = flag.String("inspect", "", "read a trace CSV and print summary instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := workload.ReadCSV(f)
		if err != nil {
			fatal(err)
		}
		last := tr.Points[len(tr.Points)-1]
		fmt.Printf("%s: %d points over %v, mean %.1f op/s, peak %.1f op/s\n",
			*inspect, len(tr.Points), last.At, tr.Mean(), tr.Peak())
		return
	}

	var p workload.Pattern
	switch *pattern {
	case "constant":
		p = workload.Constant(*base)
	case "diurnal":
		p = workload.Diurnal{Trough: *base * 0.5, Peak: *base * *peakX, Period: *horizon}
	case "step":
		p = workload.Step{Before: *base, After: *base * *peakX, At: *horizon / 4}
	case "ramp":
		p = workload.Ramp{From: *base, To: *base * *peakX, Start: *horizon / 4, Length: *horizon / 2}
	case "flash":
		p = workload.FlashCrowd{Base: *base, Spike: *base * *peakX, Start: *horizon / 3, Length: *horizon / 10}
	case "mmpp":
		p = workload.NewMMPP(*base, *base**peakX, 10*time.Minute, 3*time.Minute, *seed)
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}
	if *noise > 0 {
		p = workload.Noisy{Inner: p, Frac: *noise, Seed: *seed}
	}
	if err := workload.Validate(p, *horizon); err != nil {
		fatal(err)
	}
	tr := workload.Sample(p, *horizon, *step)
	if err := tr.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "evolve-trace: %d points, mean %.1f, peak %.1f\n", len(tr.Points), tr.Mean(), tr.Peak())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evolve-trace:", err)
	os.Exit(1)
}
