// Command evolve-bench regenerates every table and figure of the
// reconstructed evaluation (see EXPERIMENTS.md): it runs the scenario
// mixes under all policies, renders the ASCII tables and figure summaries
// to stdout, and optionally writes the raw CSV data for plotting.
//
// All (scenario, policy) simulations flow through one harness.Runner:
// independent runs fan out across -parallel workers, and the run cache
// deduplicates the (mix, seed, policy) combinations that several tables
// and figures share — even at -parallel 1.
//
// Usage:
//
//	evolve-bench [-seed N] [-out DIR] [-only table1,figure3,...]
//	             [-parallel N] [-json] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"evolve/internal/harness"
)

// renderable is the surface Table and Figure share.
type renderable interface {
	Render(w io.Writer) error
	RenderCSV(w io.Writer) error
}

// item is one table or figure of the evaluation.
type item struct {
	id   string
	kind string // "table" | "figure"
	run  func(r *harness.Runner, seed int64) (renderable, error)
}

// benchOpts carries the flags that shape individual items.
type benchOpts struct {
	shards      int  // shard counts to sweep in figure6: 0 = {1,4,8}, N = {1,N}
	quick       bool // reduced figure6 ladder (the CI scale)
	scalePoints int  // truncate the figure6 ladder to its first N points (0 = all)

	ctrlWorkers int // worker counts to sweep in figure12: 0 = {1,2,4,8}, N = {1,N}

	// scaleRows collects figure6's raw per-run rows for the -json
	// summary and BENCH_7.json; ctrlRows the same for figure12.
	scaleRows []harness.ScaleRow
	ctrlRows  []harness.CtrlScaleRow
}

// scaleConfig resolves the figure6 sweep from the flags.
func (o *benchOpts) scaleConfig(seed int64) harness.ScaleConfig {
	cfg := harness.DefaultScaleConfig(seed, o.quick)
	if o.shards > 0 {
		cfg.Shards = []int{1, o.shards}
	}
	if o.scalePoints > 0 && o.scalePoints < len(cfg.Points) {
		cfg.Points = cfg.Points[:o.scalePoints]
	}
	return cfg
}

// ctrlScaleConfig resolves the figure12 sweep from the flags.
func (o *benchOpts) ctrlScaleConfig(seed int64) harness.CtrlScaleConfig {
	cfg := harness.DefaultCtrlScaleConfig(seed, o.quick)
	if o.ctrlWorkers > 0 {
		cfg.Workers = []int{1, o.ctrlWorkers}
	}
	if o.scalePoints > 0 && o.scalePoints < len(cfg.Points) {
		cfg.Points = cfg.Points[:o.scalePoints]
	}
	return cfg
}

func items(opts *benchOpts) []item {
	tbl := func(id string, f func(r *harness.Runner, seed int64) (*harness.Table, error)) item {
		return item{id, "table", func(r *harness.Runner, seed int64) (renderable, error) { return f(r, seed) }}
	}
	fig := func(id string, f func(r *harness.Runner, seed int64) (*harness.Figure, error)) item {
		return item{id, "figure", func(r *harness.Runner, seed int64) (renderable, error) { return f(r, seed) }}
	}
	return []item{
		tbl("table1", func(r *harness.Runner, seed int64) (*harness.Table, error) {
			t, _, err := harness.Table1(r, seed)
			return t, err
		}),
		tbl("table2", harness.Table2),
		tbl("table3", harness.Table3),
		tbl("table4", func(*harness.Runner, int64) (*harness.Table, error) { return harness.Table4(), nil }),
		tbl("table5", harness.Table5),
		tbl("table6", harness.Table6),
		tbl("table7", harness.Table7),
		tbl("table8", harness.Table8),
		fig("figure1", harness.Figure1),
		fig("figure2", harness.Figure2),
		fig("figure3", func(r *harness.Runner, seed int64) (*harness.Figure, error) {
			f, _, err := harness.Figure3(r, seed)
			return f, err
		}),
		fig("figure4", func(_ *harness.Runner, seed int64) (*harness.Figure, error) { return harness.Figure4(seed) }),
		fig("figure5", harness.Figure5),
		fig("figure6", func(r *harness.Runner, seed int64) (*harness.Figure, error) {
			f, rows, err := harness.Figure6(r, opts.scaleConfig(seed))
			opts.scaleRows = rows
			return f, err
		}),
		fig("figure7", harness.Figure7),
		fig("figure8", harness.Figure8),
		fig("figure9", harness.Figure9),
		fig("figure10", harness.Figure10),
		fig("figure11", harness.Figure11),
		fig("figure12", func(r *harness.Runner, seed int64) (*harness.Figure, error) {
			f, rows, err := harness.Figure12(r, opts.ctrlScaleConfig(seed))
			opts.ctrlRows = rows
			return f, err
		}),
	}
}

// report is the machine-readable record of one generated item (-json).
type report struct {
	ID       string             `json:"id"`
	Kind     string             `json:"kind"`
	WallMS   float64            `json:"wall_ms"`
	Rows     int                `json:"rows,omitempty"`
	Points   int                `json:"points,omitempty"`
	Headline map[string]float64 `json:"headline,omitempty"`
}

// summary closes a -json stream: total wall-clock plus runner counters,
// the bench trajectory future PRs compare against.
type summary struct {
	ID          string     `json:"id"`
	TotalWallMS float64    `json:"total_wall_ms"`
	Workers     int        `json:"workers"`
	Runs        uint64     `json:"runs"`
	CacheHits   uint64     `json:"cache_hits"`
	Uncacheable uint64     `json:"uncacheable"`
	SchedIndex  schedIndex `json:"sched_index"`
	// Shards echoes the -shards flag (0 = default {1,4,8} sweep); Scale
	// holds figure6's raw rows — wall-clock, ns/op and per-shard event
	// counts per (topology, shard count) run — when figure6 was selected.
	Shards int                `json:"shards"`
	Scale  []harness.ScaleRow `json:"scale,omitempty"`
	// CtrlScale holds figure12's raw rows — ms per control period split
	// into eval/apply per (fleet, worker count) run — when figure12 was
	// selected.
	CtrlScale []harness.CtrlScaleRow `json:"ctrl_scale,omitempty"`
	// ScaleHits counts figure6 rows served from the -scale-cache
	// directory instead of being re-run.
	ScaleHits uint64 `json:"scale_hits,omitempty"`
	// EffectiveWorkers is the largest resolved shard parallelism across
	// the scale rows — what ShardWorkers=0 actually ran with on this
	// machine (min(shards, GOMAXPROCS)).
	EffectiveWorkers int `json:"effective_workers,omitempty"`
}

// schedIndex records the scheduler feasibility index's effectiveness on
// a fixed mixed workload (see harness.SchedIndexStats): how many node
// probes the per-resource prefixes saved, and whether the parallel score
// fan-out engaged on this machine.
type schedIndex struct {
	Nodes         int     `json:"nodes"`
	Pods          int     `json:"pods"`
	Probed        uint64  `json:"probed"`
	Pruned        uint64  `json:"pruned"`
	PrunedFrac    float64 `json:"pruned_frac"`
	ParallelCalls uint64  `json:"parallel_calls"`
}

// measureSchedIndex runs the fixed index-effectiveness workload.
func measureSchedIndex() schedIndex {
	const nodes, pods = 512, 5000
	st := harness.SchedIndexStats(nodes, pods)
	si := schedIndex{
		Nodes: nodes, Pods: pods,
		Probed: st.Probed, Pruned: st.Pruned,
		ParallelCalls: st.ParallelCalls,
	}
	if total := st.Probed + st.Pruned; total > 0 {
		si.PrunedFrac = float64(st.Pruned) / float64(total)
	}
	return si
}

func main() {
	seed := flag.Int64("seed", 42, "scenario seed (every run is deterministic in it)")
	out := flag.String("out", "", "directory for CSV dumps (omit to skip)")
	only := flag.String("only", "", "comma-separated subset, e.g. table1,figure3")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max simultaneous simulations (results are identical at any value)")
	jsonOut := flag.Bool("json", false, "emit JSON lines (one per item + summary) instead of ASCII rendering")
	traceDir := flag.String("trace-dir", "", "directory for per-run decision traces (<scenario>__<policy>.jsonl; omit to skip)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	shards := flag.Int("shards", 0, "figure6: sweep shard counts {1,N} instead of the default {1,4,8}")
	ctrlWorkers := flag.Int("ctrl-workers", 0, "figure12: sweep control-plane worker counts {1,N} instead of the default {1,2,4,8}")
	quick := flag.Bool("quick", false, "figure6: reduced topology ladder (the CI scale)")
	scalePoints := flag.Int("scale-points", 0, "figure6: truncate the ladder to its first N points (0 = full ladder)")
	scaleCache := flag.String("scale-cache", "", "directory for the content-addressed figure6 row cache (keyed on binary hash + run parameters; omit to always re-run)")
	flag.Parse()

	opts := &benchOpts{shards: *shards, quick: *quick, scalePoints: *scalePoints, ctrlWorkers: *ctrlWorkers}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	all := items(opts)
	known := make(map[string]bool, len(all))
	for _, it := range all {
		known[it.id] = true
	}
	want := map[string]bool{}
	if *only != "" {
		var unknown []string
		for _, f := range strings.Split(*only, ",") {
			id := strings.ToLower(strings.TrimSpace(f))
			if id == "" {
				continue
			}
			if !known[id] {
				unknown = append(unknown, id)
				continue
			}
			want[id] = true
		}
		if len(unknown) > 0 {
			valid := make([]string, 0, len(known))
			for id := range known {
				valid = append(valid, id)
			}
			sort.Strings(valid)
			fmt.Fprintf(os.Stderr, "evolve-bench: unknown -only id(s): %s\nvalid ids: %s\n",
				strings.Join(unknown, ", "), strings.Join(valid, ", "))
			os.Exit(2)
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	runner := harness.NewRunner(*parallel)
	if *scaleCache != "" {
		runner.SetScaleCacheDir(*scaleCache)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(err)
		}
		runner.SetTraceDir(*traceDir)
	}
	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	for _, it := range all {
		if !selected(it.id) {
			continue
		}
		itemStart := time.Now()
		res, err := it.run(runner, *seed)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(itemStart)
		if *jsonOut {
			if err := enc.Encode(describe(it, res, wall)); err != nil {
				fatal(err)
			}
		} else {
			if err := res.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		dumpCSV(*out, it.id, res.RenderCSV)
	}
	st := runner.Stats()
	if *jsonOut {
		effWorkers := 0
		for _, row := range opts.scaleRows {
			if row.EffectiveWorkers > effWorkers {
				effWorkers = row.EffectiveWorkers
			}
		}
		if err := enc.Encode(summary{
			ID:               "summary",
			TotalWallMS:      float64(time.Since(start).Microseconds()) / 1000,
			Workers:          runner.Workers(),
			Runs:             st.Runs,
			CacheHits:        st.CacheHits,
			Uncacheable:      st.Uncacheable,
			SchedIndex:       measureSchedIndex(),
			Shards:           *shards,
			Scale:            opts.scaleRows,
			CtrlScale:        opts.ctrlRows,
			ScaleHits:        st.ScaleHits,
			EffectiveWorkers: effWorkers,
		}); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "evolve-bench: done in %v (%d simulations, %d cache hits, %d workers)\n",
		time.Since(start).Round(time.Millisecond), st.Runs, st.CacheHits, runner.Workers())
}

// describe extracts the headline numbers of one rendered item: row count
// for tables, per-column series means for figures.
func describe(it item, res renderable, wall time.Duration) report {
	rep := report{ID: it.id, Kind: it.kind, WallMS: float64(wall.Microseconds()) / 1000}
	switch v := res.(type) {
	case *harness.Table:
		rep.Rows = len(v.Rows)
	case *harness.Figure:
		rep.Points = len(v.X)
		rep.Headline = make(map[string]float64, len(v.Columns))
		for i, col := range v.Columns {
			if i >= len(v.Series) || len(v.Series[i]) == 0 {
				continue
			}
			sum := 0.0
			for _, y := range v.Series[i] {
				sum += y
			}
			rep.Headline["mean:"+col] = sum / float64(len(v.Series[i]))
		}
	}
	return rep
}

func dumpCSV(dir, id string, render func(w io.Writer) error) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := render(f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "evolve-bench: wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evolve-bench:", err)
	os.Exit(1)
}
