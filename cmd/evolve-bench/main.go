// Command evolve-bench regenerates every table and figure of the
// reconstructed evaluation (see EXPERIMENTS.md): it runs the scenario
// mixes under all policies, renders the ASCII tables and figure summaries
// to stdout, and optionally writes the raw CSV data for plotting.
//
// Usage:
//
//	evolve-bench [-seed N] [-out DIR] [-only table1,figure3,...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"evolve/internal/harness"
)

func main() {
	seed := flag.Int64("seed", 42, "scenario seed (every run is deterministic in it)")
	out := flag.String("out", "", "directory for CSV dumps (omit to skip)")
	only := flag.String("only", "", "comma-separated subset, e.g. table1,figure3")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(f))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	type tableFn struct {
		id  string
		run func() (*harness.Table, error)
	}
	tables := []tableFn{
		{"table1", func() (*harness.Table, error) { t, _, err := harness.Table1(*seed); return t, err }},
		{"table2", func() (*harness.Table, error) { return harness.Table2(*seed) }},
		{"table3", func() (*harness.Table, error) { return harness.Table3(*seed) }},
		{"table4", func() (*harness.Table, error) { return harness.Table4(), nil }},
		{"table5", func() (*harness.Table, error) { return harness.Table5(*seed) }},
		{"table6", func() (*harness.Table, error) { return harness.Table6(*seed) }},
	}
	for _, tf := range tables {
		if !selected(tf.id) {
			continue
		}
		tab, err := tf.run()
		if err != nil {
			fatal(err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		dumpCSV(*out, tf.id, tab.RenderCSV)
	}

	type figFn struct {
		id  string
		run func() (*harness.Figure, error)
	}
	figures := []figFn{
		{"figure1", func() (*harness.Figure, error) { return harness.Figure1(*seed) }},
		{"figure2", func() (*harness.Figure, error) { return harness.Figure2(*seed) }},
		{"figure3", func() (*harness.Figure, error) { f, _, err := harness.Figure3(*seed); return f, err }},
		{"figure4", func() (*harness.Figure, error) { return harness.Figure4(*seed) }},
		{"figure5", func() (*harness.Figure, error) { return harness.Figure5(*seed) }},
		{"figure6", func() (*harness.Figure, error) { return harness.Figure6(), nil }},
		{"figure7", func() (*harness.Figure, error) { return harness.Figure7(*seed) }},
		{"figure8", func() (*harness.Figure, error) { return harness.Figure8(*seed) }},
		{"figure9", func() (*harness.Figure, error) { return harness.Figure9(*seed) }},
		{"figure10", func() (*harness.Figure, error) { return harness.Figure10(*seed) }},
		{"figure11", func() (*harness.Figure, error) { return harness.Figure11(*seed) }},
	}
	for _, ff := range figures {
		if !selected(ff.id) {
			continue
		}
		fig, err := ff.run()
		if err != nil {
			fatal(err)
		}
		if err := fig.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		dumpCSV(*out, ff.id, fig.RenderCSV)
	}
	fmt.Fprintf(os.Stderr, "evolve-bench: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func dumpCSV(dir, id string, render func(w io.Writer) error) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := render(f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "evolve-bench: wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evolve-bench:", err)
	os.Exit(1)
}
