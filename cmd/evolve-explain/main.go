// Command evolve-explain answers "why did the autoscaler do that?" from
// a decision trace recorded by evolve-sim -trace (or a harness run with
// a trace directory). Given an application and a virtual time it
// reconstructs the full decision chain: the observation the controller
// saw, the per-resource PID term decomposition (with clamping and
// anti-windup state), the gains and their adaptations, the stage that
// drove the decision, and the scheduler outcomes and PLO transitions
// around it.
//
// Examples:
//
//	evolve-sim -trace run.jsonl -duration 2h
//	evolve-explain -trace run.jsonl -summary          # find interesting moments
//	evolve-explain -trace run.jsonl -app web -at 43m  # why 7 replicas at t=43m?
//	evolve-explain -trace run.jsonl -app web -at 43m -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"evolve/internal/obs"
)

func main() {
	var (
		trace   = flag.String("trace", "", "decision-trace JSONL file (from evolve-sim -trace)")
		app     = flag.String("app", "", "application to explain")
		at      = flag.Duration("at", 0, "virtual time of interest (e.g. 43m)")
		window  = flag.Duration("window", 5*time.Minute, "how far around the decision to gather evidence")
		summary = flag.Bool("summary", false, "list replica changes and PLO onsets instead of explaining one decision")
		jsonOut = flag.Bool("json", false, "emit the chain as JSON instead of text")
	)
	flag.Parse()

	if *trace == "" {
		fmt.Fprintln(os.Stderr, "evolve-explain: -trace is required (record one with evolve-sim -trace)")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*trace)
	if err != nil {
		fatal(err)
	}
	events, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("trace %s holds no events", *trace))
	}

	if *summary {
		for _, s := range obs.Summarise(events) {
			ev := s.Event
			switch ev.Kind {
			case obs.KindControl:
				fmt.Printf("%10v %-12s replicas %d→%d  (%s)\n", ev.At, s.App, ev.Replicas, ev.NewReplicas, ev.Detail)
			case obs.KindPLO:
				fmt.Printf("%10v %-12s PLO violation onset: sli=%.4g objective=%.4g\n", ev.At, s.App, ev.SLI, ev.Objective)
			}
		}
		return
	}

	if *app == "" {
		fmt.Fprintln(os.Stderr, "evolve-explain: -app is required (or use -summary to find one)")
		flag.Usage()
		os.Exit(2)
	}
	chain, err := obs.Explain(events, *app, *at, *window)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(chain); err != nil {
			fatal(err)
		}
		return
	}
	chain.Format(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evolve-explain:", err)
	os.Exit(1)
}
