// Command evolve-plan is a capacity planner: it answers "how many nodes
// does this workload need" by bisecting the cluster size and running the
// full deterministic simulation at each candidate, under a chosen
// resource-management policy. Because a 2-hour virtual scenario simulates
// in milliseconds, exhaustive what-if planning is interactive.
//
// Examples:
//
//	evolve-plan -services web:400,kvstore:200
//	evolve-plan -policy static -overprovision 3 -services web:400
//	evolve-plan -hpc 12 -batch 6 -services web:400,gateway:300
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"evolve/internal/baseline"
	"evolve/internal/control"
	"evolve/internal/core"
	"evolve/internal/harness"
	"evolve/internal/hpc"
	"evolve/internal/workload"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "scenario seed")
		policy   = flag.String("policy", "evolve", "resource policy: evolve, hpa, vpa, static")
		overprov = flag.Float64("overprovision", 1, "initial-allocation factor (static users set 2-3)")
		services = flag.String("services", "web:400,gateway:300,kvstore:200",
			"comma-separated archetype:baseRate list, driven by 0.5x..3x diurnals")
		batchN   = flag.Int("batch", 0, "TeraSort-like DAG jobs streamed in")
		hpcN     = flag.Int("hpc", 0, "rigid gang jobs streamed in")
		maxViol  = flag.Float64("max-violations", 0.02, "acceptable PLO violation fraction")
		maxNodes = flag.Int("max-nodes", 64, "upper bound of the search")
		duration = flag.Duration("duration", 2*time.Hour, "virtual horizon per probe")
	)
	flag.Parse()

	apps, err := parseServices(*services, *seed)
	if err != nil {
		fatal(err)
	}
	mkScenario := func(nodes int) harness.Scenario {
		sc := harness.Scenario{
			Name:            "plan",
			Seed:            *seed,
			Nodes:           nodes,
			NodeCapacity:    harness.StandardNode(),
			Duration:        *duration,
			Warmup:          *duration / 12,
			ControlInterval: 15 * time.Second,
			Apps:            apps,
			HPCPolicy:       hpc.Backfill,
		}
		if *batchN > 0 {
			sc.BatchJobs = harness.BatchStream(*batchN, *duration/time.Duration(*batchN+1), 2)
		}
		if *hpcN > 0 {
			sc.HPCJobs = harness.HPCStream(*hpcN, *duration/time.Duration(*hpcN+1), 6)
		}
		return sc
	}
	pol, err := policyByName(*policy, *overprov)
	if err != nil {
		fatal(err)
	}

	// A candidate is feasible when violations stay under the budget and
	// all streamed jobs complete.
	probe := func(nodes int) (bool, *harness.Result) {
		res, err := harness.Run(mkScenario(nodes), pol)
		if err != nil {
			// Too small to even place the initial replicas ⇒ infeasible.
			return false, nil
		}
		ok := res.OverallViolation() <= *maxViol &&
			res.BatchCompleted >= *batchN &&
			res.HPCCompleted >= *hpcN
		return ok, res
	}

	lo, hi := 1, *maxNodes
	if ok, res := probe(hi); !ok {
		if res != nil {
			fatal(fmt.Errorf("even %d nodes cannot meet the objectives (violations %.2f%% > budget %.2f%%, batch %d/%d, hpc %d/%d); capacity is not the binding constraint — relax -max-violations or change the policy",
				hi, res.OverallViolation()*100, *maxViol*100, res.BatchCompleted, *batchN, res.HPCCompleted, *hpcN))
		}
		fatal(fmt.Errorf("even %d nodes cannot place the workload; raise -max-nodes", hi))
	}
	for lo < hi {
		mid := (lo + hi) / 2
		ok, res := probe(mid)
		status := "infeasible"
		if ok {
			status = "ok"
			hi = mid
		} else {
			lo = mid + 1
		}
		if res != nil {
			fmt.Fprintf(os.Stderr, "evolve-plan: %2d nodes → violations %.2f%%, cpu alloc %.0f%%, $%.2f  [%s]\n",
				mid, res.OverallViolation()*100, res.AllocFraction.Get(0)*100, res.Dollars, status)
		} else {
			fmt.Fprintf(os.Stderr, "evolve-plan: %2d nodes → unplaceable  [infeasible]\n", mid)
		}
	}
	_, res := probe(lo)
	fmt.Printf("minimum nodes: %d\n", lo)
	if res != nil {
		fmt.Printf("at that size:  violations %.2f%%, cpu allocated %.0f%%, used %.0f%%, bill $%.2f per %v, energy %.0f Wh\n",
			res.OverallViolation()*100,
			res.AllocFraction.Get(0)*100, res.UsageFraction.Get(0)*100,
			res.Dollars, *duration, res.WattHour)
	}
}

func parseServices(spec string, seed int64) ([]harness.AppLoad, error) {
	var apps []harness.AppLoad
	idx := int64(0)
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.SplitN(item, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad service %q (want archetype:baseRate)", item)
		}
		base, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || base <= 0 {
			return nil, fmt.Errorf("bad base rate in %q", item)
		}
		var arch workload.Archetype
		switch parts[0] {
		case "web":
			arch = workload.Web
		case "gateway":
			arch = workload.Gateway
		case "kvstore":
			arch = workload.KVStore
		case "inference":
			arch = workload.Inference
		default:
			return nil, fmt.Errorf("unknown archetype %q", parts[0])
		}
		apps = append(apps, harness.AppLoad{
			Spec: workload.Service(arch, fmt.Sprintf("%s-%d", parts[0], idx), base, 2),
			Pattern: workload.Noisy{
				Inner: workload.Diurnal{Trough: base * 0.5, Peak: base * 3, Period: 2 * time.Hour},
				Frac:  0.08, Seed: seed + idx,
			},
		})
		idx++
	}
	if len(apps) == 0 {
		return nil, fmt.Errorf("no services given")
	}
	return apps, nil
}

func policyByName(name string, overprov float64) (harness.Policy, error) {
	var f control.Factory
	switch name {
	case "evolve":
		f = core.Factory(core.DefaultConfig())
	case "hpa":
		f = baseline.HPAFactory(baseline.DefaultHPAConfig())
	case "vpa":
		f = baseline.VPAFactory(baseline.DefaultVPAConfig())
	case "static":
		f = baseline.StaticFactory()
	default:
		return harness.Policy{}, fmt.Errorf("unknown policy %q", name)
	}
	return harness.Policy{Name: name, Factory: f, Overprovision: overprov}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evolve-plan:", err)
	os.Exit(1)
}
