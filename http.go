package evolve

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler returns an http.Handler exposing the cluster's state — the
// observability surface an operator points a dashboard at:
//
//	GET /healthz            liveness probe
//	GET /report             the Report as JSON
//	GET /series             recorded telemetry series names as JSON
//	GET /series/<name>      one series as seconds,value CSV
//
// The handler reads the simulation's state; serve it between Run calls
// (the Cluster is not safe for concurrent mutation while serving).
func (cl *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte("ok\n")); err != nil {
			return
		}
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cl.Report()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(cl.SeriesNames()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(cl.Events()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/series/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/series/")
		if name == "" {
			http.Error(w, "series name required", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := cl.WriteSeriesCSV(name, w); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
		}
	})
	return mux
}
