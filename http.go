package evolve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"evolve/internal/obs"
)

// Handler returns an http.Handler exposing the cluster's state — the
// observability surface an operator points a dashboard at:
//
//	GET /healthz            liveness probe
//	GET /report             the Report as JSON
//	GET /series             recorded telemetry series names as JSON
//	GET /series/<name>      one series as seconds,value CSV
//	GET /events             the operational journal as JSON
//	GET /metrics            telemetry in Prometheus text format (0.0.4)
//	GET /debug/trace        decision-trace events as JSONL; filter with
//	                        ?app= &kind= &verb= &from=10m &to=1h &limit=100
//	                        (404 until EnableTracing is called)
//	GET /debug/spans        causal spans as JSONL; filter with ?app=
//	                        &object= &kind= &from=10m &to=1h &limit=100
//	                        (404 until EnableTracing is called)
//	GET /debug/timeline     text timeline of recorded spans; ?from= &to=
//	                        bound the window, ?pod=<name> explains one
//	                        pod's path to readiness instead
//	GET /debug/controllers  per-app controller state as JSON: policy,
//	                        rationale, last decision, PID decomposition
//	GET /debug/pprof/       net/http/pprof profiling endpoints; mounted
//	                        only when Options.DebugPprof is set (or
//	                        evolve-sim -pprof), 404 otherwise
//
// Unknown or malformed query parameters on the /debug routes return 400
// with a usage message rather than an empty 200.
//
// The handler reads the simulation's state; serve it between Run calls
// (the Cluster is not safe for concurrent mutation while serving).
func (cl *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte("ok\n")); err != nil {
			return
		}
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cl.Report()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(cl.SeriesNames()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(cl.Events()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/series/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/series/")
		if name == "" {
			http.Error(w, "series name required", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := cl.WriteSeriesCSV(name, w); err != nil {
			// An unknown name is the client's mistake; anything else is a
			// write or encoding failure on our side.
			if errors.Is(err, ErrUnknownSeries) {
				http.Error(w, err.Error(), http.StatusNotFound)
			} else {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cl.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if !cl.tracer.Enabled() {
			http.Error(w, "tracing disabled (call EnableTracing or pass -trace)", http.StatusNotFound)
			return
		}
		f, err := traceFilter(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		if err := obs.WriteJSONL(w, cl.tracer.Snapshot(f)); err != nil {
			return // client went away mid-stream; headers already sent
		}
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		if !cl.tracer.Enabled() {
			http.Error(w, "tracing disabled (call EnableTracing or pass -trace)", http.StatusNotFound)
			return
		}
		f, err := spanFilter(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		if err := obs.WriteSpansJSONL(w, cl.tracer.SpanSnapshot(f)); err != nil {
			return // client went away mid-stream; headers already sent
		}
	})
	mux.HandleFunc("/debug/timeline", func(w http.ResponseWriter, r *http.Request) {
		if !cl.tracer.Enabled() {
			http.Error(w, "tracing disabled (call EnableTracing or pass -trace)", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		if err := checkParams(q, "pod", "from", "to"); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var from, to time.Duration
		if v := q.Get("from"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
				return
			}
			from = d
		}
		if v := q.Get("to"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
				return
			}
			to = d
		}
		spans := cl.tracer.SpanSnapshot(obs.SpanFilter{})
		if pod := q.Get("pod"); pod != "" {
			if obs.PodChain(spans, pod) == nil {
				http.Error(w, "no lifecycle span for pod "+pod+" (never bound, or rotated out of the ring)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = obs.ExplainPodReady(w, spans, pod)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = obs.WriteTimeline(w, spans, from, to)
	})
	mux.HandleFunc("/debug/controllers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cl.ControllerStates()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if cl.opts.DebugPprof {
		// Mount the pprof handlers explicitly instead of importing the
		// package for its DefaultServeMux side effect: the endpoints stay
		// off this mux — and off any process embedding the library —
		// unless the option asks for them.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// EnablePprof opts subsequently built Handlers into the net/http/pprof
// mounts (the same switch as Options.DebugPprof, for callers — like
// `evolve-sim -pprof -config` — that build the cluster from a source
// without the option).
func (cl *Cluster) EnablePprof() { cl.opts.DebugPprof = true }

// traceFilter parses /debug/trace query parameters into an obs.Filter.
func traceFilter(r *http.Request) (obs.Filter, error) {
	q := r.URL.Query()
	if err := checkParams(q, "app", "verb", "kind", "from", "to", "limit"); err != nil {
		return obs.Filter{}, err
	}
	f := obs.Filter{App: q.Get("app"), Verb: q.Get("verb")}
	if k := q.Get("kind"); k != "" {
		if _, ok := obs.ParseEventKind(k); !ok {
			return f, errors.New("bad kind: want " + strings.Join(obs.EventKindNames(), ", "))
		}
		f.Kind = k
	}
	var err error
	if f.From, f.To, f.Lim, err = windowParams(q); err != nil {
		return f, err
	}
	return f, nil
}

// spanFilter parses /debug/spans query parameters into an obs.SpanFilter.
func spanFilter(r *http.Request) (obs.SpanFilter, error) {
	q := r.URL.Query()
	if err := checkParams(q, "app", "object", "kind", "from", "to", "limit"); err != nil {
		return obs.SpanFilter{}, err
	}
	f := obs.SpanFilter{App: q.Get("app"), Object: q.Get("object")}
	if k := q.Get("kind"); k != "" {
		if _, ok := obs.ParseSpanKind(k); !ok {
			return f, errors.New("bad kind: want " + strings.Join(obs.SpanKindNames(), ", "))
		}
		f.Kind = k
	}
	var err error
	if f.From, f.To, f.Lim, err = windowParams(q); err != nil {
		return f, err
	}
	return f, nil
}

// windowParams parses the shared from/to/limit filter parameters.
func windowParams(q url.Values) (from, to time.Duration, lim int, err error) {
	if v := q.Get("from"); v != "" {
		if from, err = time.ParseDuration(v); err != nil {
			return from, to, lim, errors.New("bad from: " + err.Error())
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = time.ParseDuration(v); err != nil {
			return from, to, lim, errors.New("bad to: " + err.Error())
		}
	}
	if v := q.Get("limit"); v != "" {
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 0 {
			return from, to, lim, errors.New("bad limit: want a non-negative integer")
		}
		lim = n
	}
	return from, to, lim, nil
}

// checkParams rejects query parameters outside the allowed set, so a
// typo ("?verbs=bind") fails with a usage message instead of silently
// matching everything.
func checkParams(q url.Values, allowed ...string) error {
	var unknown []string
	for k := range q {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return errors.New("unknown parameter(s): " + strings.Join(unknown, ", ") +
		" (want " + strings.Join(allowed, ", ") + ")")
}
