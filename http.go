package evolve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"evolve/internal/obs"
)

// Handler returns an http.Handler exposing the cluster's state — the
// observability surface an operator points a dashboard at:
//
//	GET /healthz            liveness probe
//	GET /report             the Report as JSON
//	GET /series             recorded telemetry series names as JSON
//	GET /series/<name>      one series as seconds,value CSV
//	GET /events             the operational journal as JSON
//	GET /metrics            telemetry in Prometheus text format (0.0.4)
//	GET /debug/trace        decision-trace events as JSONL; filter with
//	                        ?app= &kind= &verb= &from=10m &to=1h &limit=100
//	                        (404 until EnableTracing is called)
//	GET /debug/controllers  per-app controller state as JSON: policy,
//	                        rationale, last decision, PID decomposition
//
// The handler reads the simulation's state; serve it between Run calls
// (the Cluster is not safe for concurrent mutation while serving).
func (cl *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte("ok\n")); err != nil {
			return
		}
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cl.Report()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(cl.SeriesNames()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(cl.Events()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/series/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/series/")
		if name == "" {
			http.Error(w, "series name required", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := cl.WriteSeriesCSV(name, w); err != nil {
			// An unknown name is the client's mistake; anything else is a
			// write or encoding failure on our side.
			if errors.Is(err, ErrUnknownSeries) {
				http.Error(w, err.Error(), http.StatusNotFound)
			} else {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cl.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if !cl.tracer.Enabled() {
			http.Error(w, "tracing disabled (call EnableTracing or pass -trace)", http.StatusNotFound)
			return
		}
		f, err := traceFilter(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		if err := obs.WriteJSONL(w, cl.tracer.Snapshot(f)); err != nil {
			return // client went away mid-stream; headers already sent
		}
	})
	mux.HandleFunc("/debug/controllers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cl.ControllerStates()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// traceFilter parses /debug/trace query parameters into an obs.Filter.
func traceFilter(r *http.Request) (obs.Filter, error) {
	q := r.URL.Query()
	f := obs.Filter{App: q.Get("app"), Verb: q.Get("verb")}
	if k := q.Get("kind"); k != "" {
		if _, ok := obs.ParseEventKind(k); !ok {
			return f, errors.New("bad kind: want control, gain, sched, registry or plo")
		}
		f.Kind = k
	}
	if v := q.Get("from"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return f, errors.New("bad from: " + err.Error())
		}
		f.From = d
	}
	if v := q.Get("to"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return f, errors.New("bad to: " + err.Error())
		}
		f.To = d
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, errors.New("bad limit: want a non-negative integer")
		}
		f.Lim = n
	}
	return f, nil
}
