// Package evolve is the public API of the EVOLVE resource-management
// library: a converged big-data / HPC / cloud cluster substrate with a
// multi-resource, adaptive, PID-based autoscaler that maps user-level
// performance objectives (PLOs) to CPU, memory, disk-I/O and network
// allocations.
//
// A Cluster is a deterministic discrete-event simulation of a Kubernetes-
// style cluster. Deploy replicated services with performance objectives,
// drive them with load patterns, submit big-data DAG jobs and rigid HPC
// gangs, pick a resource-management policy, run virtual time forward and
// read the outcome:
//
//	c, _ := evolve.New(evolve.Options{Seed: 1, Nodes: 5})
//	_ = c.AddService(evolve.ServiceOptions{
//	    Name: "web", Archetype: "web", BaseRate: 300,
//	    LatencyObjective: 100 * time.Millisecond,
//	})
//	_ = c.SetLoad("web", evolve.Diurnal(150, 900, 2*time.Hour))
//	_ = c.Run(2 * time.Hour)
//	fmt.Println(c.Report())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reconstructed evaluation.
package evolve

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"evolve/internal/baseline"
	"evolve/internal/batch"
	"evolve/internal/chaos"
	"evolve/internal/cluster"
	"evolve/internal/control"
	"evolve/internal/core"
	"evolve/internal/hpc"
	"evolve/internal/obs"
	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/resource"
	"evolve/internal/sim"
	"evolve/internal/workload"
)

// Options configures a Cluster.
type Options struct {
	// Seed drives all randomness; runs with the same seed and workload
	// replay identically. Defaults to 1.
	Seed int64
	// Nodes is the cluster size (default 5).
	Nodes int
	// NodeShape is the per-node capacity as a resource string, e.g.
	// "cpu=16 memory=64Gi diskio=1G netio=2G". Defaults to that shape.
	NodeShape string
	// ControlInterval is how often the policy runs (default 15s).
	ControlInterval time.Duration
	// Policy selects the resource manager: "evolve" (default), "hpa",
	// "vpa", "static", or "pid-cpu-only".
	Policy string
	// Overprovision scales every service's initial allocation (static
	// deployments usually carry a safety factor). Default 1.
	Overprovision float64
	// MeasurementNoise is the SLI jitter fraction (default 0.03).
	MeasurementNoise float64
	// HPCQueue selects the gang queue discipline: "backfill" (default),
	// "easy" (backfill with head reservation) or "fcfs".
	HPCQueue string
	// Pools, when set, replaces the flat Nodes topology with labeled
	// pools; workloads carrying a matching Pool option are confined to
	// them. Nodes is ignored when Pools is non-empty.
	Pools []PoolOptions
	// Chaos installs a fault-injection plan: a named profile
	// ("node-kill", "sensor-dropout", "actuation-flake", "mixed") or a
	// plan in the chaos DSL, e.g.
	// "node-crash@30m-45m:node=node-0;metric-drop@10m:p=0.2". The
	// injector is seeded from Seed, so a (seed, plan) pair replays
	// bit-for-bit. Empty means fault-free.
	Chaos string
	// ScoreWorkers opts scheduler scoring into the parallel fan-out:
	// placements probing at least sched.DefaultParallelThreshold
	// candidate nodes score across this many concurrent shards.
	// Placements are byte-identical at any value; 0 or 1 stays
	// sequential. Only worth enabling on multi-core machines with
	// clusters of hundreds of nodes.
	ScoreWorkers int
	// Shards runs the simulation kernel sharded: the tick's per-node and
	// per-app phases split across this many shard engines under a shared
	// clock, with batched barrier commits. Results are byte-identical at
	// any shard count; 0 or 1 keeps the single-engine kernel. Worth
	// enabling for large topologies (thousands of nodes and up).
	Shards int
	// ShardWorkers bounds how many same-timestamp shard events run
	// concurrently (0 = GOMAXPROCS, 1 = serial rounds). Identical
	// results at any value.
	ShardWorkers int
	// CtrlWorkers shards the control plane: each control period's
	// read-only evaluate phase (observe → decide per app) fans out over
	// this many workers, and the pending-backlog drain batches
	// independent placements. Decisions are applied serially in
	// canonical app order, so runs are byte-identical at any value; 0 or
	// 1 keeps the exact serial control step. Worth enabling at hundreds
	// of services and up.
	CtrlWorkers int
	// DebugPprof mounts net/http/pprof under /debug/pprof/ on the
	// Handler mux so control-period profiles can be captured from a live
	// process. Off by default: the profiling endpoints expose stacks and
	// binary internals, which not every deployment wants on its debug
	// port.
	DebugPprof bool
}

// PoolOptions declares one labeled node pool; its nodes carry the label
// pool=<Name>.
type PoolOptions struct {
	Name  string
	Nodes int
}

// ServiceOptions declares a replicated service.
type ServiceOptions struct {
	Name string
	// Archetype picks the performance profile: "web" (CPU-bound),
	// "gateway" (network-bound), "kvstore" (disk-bound, tail-latency
	// objective) or "inference" (memory-heavy). Default "web".
	Archetype string
	// BaseRate is the sizing-point load in operations/second.
	BaseRate float64
	// Replicas is the initial replica count (default 2).
	Replicas int
	// LatencyObjective overrides the archetype's PLO with a mean-latency
	// bound; ThroughputObjective with an ops/second floor. At most one.
	LatencyObjective    time.Duration
	ThroughputObjective float64
	// StartupDelay is how long a new replica takes before serving
	// (image pull + init + warmup). In-place vertical resizes are never
	// delayed. Zero means instant.
	StartupDelay time.Duration
	// Pool, when set, confines replicas to nodes of that pool (see
	// Options.Pools). Empty means any node.
	Pool string
}

// BatchJobOptions declares a TeraSort-like DAG job (map → sort → reduce).
type BatchJobOptions struct {
	Name string
	// Scale multiplies task counts (default 1 ⇒ 8 map + 4 sort + 4
	// reduce tasks).
	Scale float64
	// SubmitAt is the virtual submission time.
	SubmitAt time.Duration
	// Pool, when set, confines the job's tasks to that pool.
	Pool string
}

// HPCJobOptions declares a rigid gang job.
type HPCJobOptions struct {
	Name  string
	Ranks int
	// CPUSecondsPerRank is the per-rank work (default 420000 mc·s ≈ one
	// minute at 7 cores).
	CPUSecondsPerRank float64
	// SubmitAt is the virtual submission time.
	SubmitAt time.Duration
	// Pool, when set, confines the ranks to that pool.
	Pool string
}

// LoadFunc is an offered-load function over virtual time (ops/second).
type LoadFunc func(at time.Duration) float64

// Constant returns a flat load.
func Constant(rate float64) LoadFunc {
	return workload.Constant(rate).Rate
}

// Diurnal returns a day/night sinusoid between trough and peak.
func Diurnal(trough, peak float64, period time.Duration) LoadFunc {
	return workload.Diurnal{Trough: trough, Peak: peak, Period: period}.Rate
}

// Step jumps from before to after at the given time.
func Step(before, after float64, at time.Duration) LoadFunc {
	return workload.Step{Before: before, After: after, At: at}.Rate
}

// FlashCrowd spikes from base to spike during [start, start+length).
func FlashCrowd(base, spike float64, start, length time.Duration) LoadFunc {
	return workload.FlashCrowd{Base: base, Spike: spike, Start: start, Length: length}.Rate
}

// Noisy wraps a load function with deterministic multiplicative noise.
func Noisy(inner LoadFunc, frac float64, seed int64) LoadFunc {
	return workload.Noisy{Inner: workload.Func(inner), Frac: frac, Seed: seed}.Rate
}

// FromTraceCSV replays a seconds,rate trace (as written by evolve-trace
// or WriteSeriesCSV-compatible tooling) as a load function with step
// interpolation. The whole trace is read up front.
func FromTraceCSV(r io.Reader) (LoadFunc, error) {
	tr, err := workload.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return tr.Rate, nil
}

// Cluster is a simulated converged cluster plus its resource-management
// control loop. Not safe for concurrent use.
type Cluster struct {
	opts    Options
	eng     *sim.Engine
	c       *cluster.Cluster
	runner  *batch.Runner
	queue   *hpc.Queue
	ctrl    map[string]control.Controller
	factory control.Factory
	loop    *control.Loop
	started bool
	runErr  error

	tracer *obs.Tracer

	// Checkpoint plumbing (ckpt.go): ckptEvery/ckptDir configure the
	// periodic snapshot timer, lastCkpt retains the latest encoded
	// checkpoint, and lastLoopState is the controller-process blob the
	// ctrl-crash restore path hands back to the restarted loop.
	ckptEvery     time.Duration
	ckptDir       string
	ckptCount     int
	ckptBytes     int64
	lastCkpt      []byte
	lastLoopState []byte
}

// start performs the one-time arming of the periodic processes: tracer
// installation, the cluster tick, the control loop, any ctrl-crash
// windows from the chaos plan, and the checkpoint timer. Run and
// Restore both funnel through it, in this order, so a restored world
// arms the same timers in the same sequence as the original.
func (cl *Cluster) start() {
	if cl.started {
		return
	}
	cl.started = true
	if cl.tracer.Enabled() {
		cl.c.SetTracer(cl.tracer)
	}
	cl.loop.SetTracer(cl.tracer)
	cl.c.Start()
	cl.loop.Start()
	cl.armCtrlCrash()
	cl.armCheckpoints()
}

// New builds a cluster from options.
func New(opts Options) (*Cluster, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 5
	}
	if opts.NodeShape == "" {
		opts.NodeShape = "cpu=16 memory=64Gi diskio=1G netio=2G"
	}
	if opts.ControlInterval <= 0 {
		opts.ControlInterval = 15 * time.Second
	}
	if opts.Overprovision <= 0 {
		opts.Overprovision = 1
	}
	shape, err := resource.ParseVector(opts.NodeShape)
	if err != nil {
		return nil, fmt.Errorf("evolve: node shape: %w", err)
	}
	factory, err := policyFactory(opts.Policy)
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine(opts.Seed)
	ccfg := cluster.DefaultConfig()
	if opts.MeasurementNoise > 0 {
		ccfg.MeasurementNoise = opts.MeasurementNoise
	}
	ccfg.ScoreWorkers = opts.ScoreWorkers
	ccfg.Shards = opts.Shards
	ccfg.ShardWorkers = opts.ShardWorkers
	ccfg.DrainWorkers = opts.CtrlWorkers
	c := cluster.New(eng, ccfg)
	if len(opts.Pools) > 0 {
		for _, pool := range opts.Pools {
			if pool.Name == "" || pool.Nodes <= 0 {
				return nil, fmt.Errorf("evolve: invalid pool %+v", pool)
			}
			for i := 0; i < pool.Nodes; i++ {
				name := fmt.Sprintf("%s-%d", pool.Name, i)
				if err := c.AddLabeledNode(name, shape, map[string]string{"pool": pool.Name}); err != nil {
					return nil, err
				}
			}
		}
	} else if err := c.AddNodes("node", opts.Nodes, shape); err != nil {
		return nil, err
	}
	if opts.Chaos != "" {
		plan, err := chaos.Parse(opts.Chaos)
		if err != nil {
			return nil, fmt.Errorf("evolve: chaos: %w", err)
		}
		inj := chaos.NewInjector(plan, opts.Seed)
		c.SetChaos(inj)
		inj.Arm(eng, c)
	}
	cl := &Cluster{
		opts:    opts,
		eng:     eng,
		c:       c,
		runner:  batch.NewRunner(c),
		ctrl:    make(map[string]control.Controller),
		factory: factory,
		loop:    control.NewLoop(eng, c, control.LoopConfig{Interval: opts.ControlInterval, Seed: opts.Seed, Workers: opts.CtrlWorkers}),

		tracer: obs.Nop(),
	}
	cl.loop.OnFatal(func(err error) {
		if cl.runErr == nil {
			cl.runErr = fmt.Errorf("evolve: %w", err)
		}
	})
	qp := hpc.Backfill
	switch strings.ToLower(opts.HPCQueue) {
	case "fcfs":
		qp = hpc.FCFS
	case "easy":
		qp = hpc.EASY
	}
	cl.queue = hpc.NewQueue(c, qp)
	return cl, nil
}

func policyFactory(name string) (control.Factory, error) {
	switch strings.ToLower(name) {
	case "", "evolve":
		return core.Factory(core.DefaultConfig()), nil
	case "hpa":
		return baseline.HPAFactory(baseline.DefaultHPAConfig()), nil
	case "vpa":
		return baseline.VPAFactory(baseline.DefaultVPAConfig()), nil
	case "static":
		return baseline.StaticFactory(), nil
	case "pid-cpu-only":
		return core.SingleResourceFactory(), nil
	default:
		return nil, fmt.Errorf("evolve: unknown policy %q (want evolve, hpa, vpa, static or pid-cpu-only)", name)
	}
}

// AddService deploys a replicated service sized for its base rate.
func (cl *Cluster) AddService(o ServiceOptions) error {
	if cl.started {
		return fmt.Errorf("evolve: cannot add services after Run")
	}
	if o.Name == "" {
		return fmt.Errorf("evolve: service needs a name")
	}
	if o.BaseRate <= 0 {
		return fmt.Errorf("evolve: service %s needs a positive BaseRate", o.Name)
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	var arch workload.Archetype
	switch strings.ToLower(o.Archetype) {
	case "", "web":
		arch = workload.Web
	case "gateway":
		arch = workload.Gateway
	case "kvstore":
		arch = workload.KVStore
	case "inference":
		arch = workload.Inference
	default:
		return fmt.Errorf("evolve: unknown archetype %q", o.Archetype)
	}
	spec := workload.Service(arch, o.Name, o.BaseRate, o.Replicas)
	if o.LatencyObjective > 0 && o.ThroughputObjective > 0 {
		return fmt.Errorf("evolve: service %s: set at most one objective", o.Name)
	}
	if o.LatencyObjective > 0 {
		spec.PLO = plo.Latency(o.LatencyObjective)
	}
	if o.ThroughputObjective > 0 {
		spec.PLO = plo.MinThroughput(o.ThroughputObjective)
	}
	if o.StartupDelay < 0 {
		return fmt.Errorf("evolve: service %s: negative startup delay", o.Name)
	}
	spec.StartupDelay = o.StartupDelay
	if o.Pool != "" {
		spec.NodeSelector = map[string]string{"pool": o.Pool}
	}
	if cl.opts.Overprovision != 1 {
		spec.InitialAlloc = spec.InitialAlloc.Scale(cl.opts.Overprovision).Min(spec.MaxAlloc)
	}
	if err := cl.c.CreateService(spec); err != nil {
		return err
	}
	ctrl := cl.factory(o.Name)
	cl.ctrl[o.Name] = ctrl
	cl.loop.Add(o.Name, ctrl)
	return nil
}

// SetLoad installs the offered-load function for a service.
func (cl *Cluster) SetLoad(service string, fn LoadFunc) error {
	if fn == nil {
		return fmt.Errorf("evolve: nil load function")
	}
	return cl.c.SetLoadFunc(service, fn)
}

// SubmitBatchJob schedules a DAG job for submission at SubmitAt.
func (cl *Cluster) SubmitBatchJob(o BatchJobOptions) error {
	if o.Name == "" {
		return fmt.Errorf("evolve: batch job needs a name")
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	job := batch.TeraSortLike(o.Name, o.Scale, 0)
	if o.Pool != "" {
		for i := range job.Stages {
			job.Stages[i].NodeSelector = map[string]string{"pool": o.Pool}
		}
	}
	cl.eng.TagNext("batch-submit", o.Name)
	cl.eng.At(o.SubmitAt, func() {
		if err := cl.runner.Submit(job); err != nil {
			panic(fmt.Sprintf("evolve: batch submit %s: %v", o.Name, err))
		}
	})
	return nil
}

// SubmitHPCJob schedules a rigid gang job for submission at SubmitAt.
func (cl *Cluster) SubmitHPCJob(o HPCJobOptions) error {
	if o.Name == "" {
		return fmt.Errorf("evolve: hpc job needs a name")
	}
	if o.Ranks <= 0 {
		return fmt.Errorf("evolve: hpc job %s needs ranks", o.Name)
	}
	work := o.CPUSecondsPerRank
	if work <= 0 {
		work = 420000
	}
	job := hpc.JobSpec{
		Name:    o.Name,
		Ranks:   o.Ranks,
		PerRank: resource.New(7000, 16<<30, 50e6, 200e6),
		Model:   perf.TaskModel{Work: resource.New(work, 0, 5e9, 2e9), MemSet: 8 << 30},
	}
	if o.Pool != "" {
		job.NodeSelector = map[string]string{"pool": o.Pool}
	}
	cl.eng.TagNext("hpc-submit", o.Name)
	cl.eng.At(o.SubmitAt, func() {
		if err := cl.queue.Submit(job); err != nil {
			panic(fmt.Sprintf("evolve: hpc submit %s: %v", o.Name, err))
		}
	})
	return nil
}

// Run advances virtual time by d, driving telemetry and the hardened
// control loop (see internal/control.Loop: integral freeze while the
// sensor path is blind, hold-last-safe past the staleness budget, and
// bounded retry of transiently failed actuations). It may be called
// repeatedly to run in stages. A non-transient control-plane error stops
// being absorbed and is returned; it is sticky across calls.
func (cl *Cluster) Run(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("evolve: non-positive run duration")
	}
	cl.start()
	cl.c.Run(cl.eng.Now() + d)
	return cl.runErr
}

// Now returns the current virtual time.
func (cl *Cluster) Now() time.Duration { return cl.eng.Now() }

// ServiceReport summarises one service's outcome so far.
type ServiceReport struct {
	Name              string
	Objective         string
	ViolationFraction float64
	MeanSLI           float64
	Replicas          int
	AllocPerReplica   string
	// BurnRate is violation-seconds consumed per error-budget second
	// earned (SRE burn rate; 1.0 is the sustainable ceiling, see
	// internal/plo.BurnTracker).
	BurnRate float64
}

// Report summarises the run so far.
type Report struct {
	Elapsed  time.Duration
	Services []ServiceReport
	// ClusterCPUAllocated/Used are fractions of allocatable capacity.
	ClusterCPUAllocated float64
	ClusterCPUUsed      float64
	BatchJobsCompleted  uint64
	HPCJobsCompleted    uint64
	// HPCMeanWait is the mean queue time of completed rigid jobs.
	HPCMeanWait time.Duration
	Preemptions uint64
	// Robustness counters; all zero in fault-free runs.
	DegradedPeriods  uint64 // control periods spent holding the last safe point
	ActuationRetries uint64 // transiently failed actuations retried with backoff
	Abandoned        uint64 // decisions given up after the retry budget
	// Tracer health (zero/empty when tracing is off): ring totals, ring
	// drops (capacity exhausted between snapshots) and the first latched
	// JSONL sink error, so silent trace loss is visible in the report.
	TraceEvents       uint64
	TraceDropped      uint64
	TraceSpans        uint64
	TraceSpansDropped uint64
	TraceSinkError    string
}

// String renders the report for terminals.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "after %v: cluster cpu allocated %.1f%%, used %.1f%%\n",
		r.Elapsed, r.ClusterCPUAllocated*100, r.ClusterCPUUsed*100)
	for _, s := range r.Services {
		fmt.Fprintf(&b, "  service %-12s %-24s violations %.2f%%  mean SLI %.4f  replicas %d  alloc/replica %s\n",
			s.Name, s.Objective, s.ViolationFraction*100, s.MeanSLI, s.Replicas, s.AllocPerReplica)
	}
	if r.BatchJobsCompleted > 0 || r.HPCJobsCompleted > 0 {
		fmt.Fprintf(&b, "  batch jobs done %d, hpc jobs done %d, preemptions %d\n",
			r.BatchJobsCompleted, r.HPCJobsCompleted, r.Preemptions)
	}
	if r.DegradedPeriods > 0 || r.ActuationRetries > 0 || r.Abandoned > 0 {
		fmt.Fprintf(&b, "  degraded periods %d, actuation retries %d, abandoned %d\n",
			r.DegradedPeriods, r.ActuationRetries, r.Abandoned)
	}
	if r.TraceDropped > 0 || r.TraceSpansDropped > 0 || r.TraceSinkError != "" {
		fmt.Fprintf(&b, "  trace health: %d events dropped, %d spans dropped, sink error %q\n",
			r.TraceDropped, r.TraceSpansDropped, r.TraceSinkError)
	}
	return b.String()
}

// Report computes the summary over everything run so far.
func (cl *Cluster) Report() Report {
	met := cl.c.Metrics()
	now := cl.eng.Now()
	r := Report{Elapsed: now}
	names := cl.c.Apps()
	sort.Strings(names)
	for _, name := range names {
		tr, err := cl.c.Tracker(name)
		if err != nil {
			continue
		}
		app, err := cl.c.App(name)
		if err != nil {
			continue
		}
		sli := met.Series("app/" + name + "/sli").AllStats().Mean
		r.Services = append(r.Services, ServiceReport{
			Name:              name,
			Objective:         tr.PLO().String(),
			ViolationFraction: tr.ViolationFraction(),
			MeanSLI:           sli,
			Replicas:          app.DesiredReplicas,
			AllocPerReplica:   app.Alloc.String(),
			BurnRate:          tr.Burn().BurnRate(),
		})
	}
	r.ClusterCPUAllocated = met.Series("cluster/allocated/cpu").TimeWeightedMean(0, now)
	r.ClusterCPUUsed = met.Series("cluster/usage/cpu").TimeWeightedMean(0, now)
	r.BatchJobsCompleted = met.Counter("batch/jobs-completed").Value()
	r.HPCJobsCompleted = met.Counter("hpc/jobs-completed").Value()
	if cl.queue != nil {
		r.HPCMeanWait, _, _ = cl.queue.Stats()
	}
	r.Preemptions = met.Counter("sched/preemptions").Value()
	ls := cl.loop.Stats()
	r.DegradedPeriods = ls.DegradedPeriods
	r.ActuationRetries = ls.Retries
	r.Abandoned = ls.Abandoned
	if cl.tracer.Enabled() {
		r.TraceEvents = cl.tracer.Events()
		r.TraceDropped = cl.tracer.Dropped()
		r.TraceSpans = cl.tracer.Spans()
		r.TraceSpansDropped = cl.tracer.SpansDropped()
		if err := cl.tracer.SinkErr(); err != nil {
			r.TraceSinkError = err.Error()
		} else if err := cl.tracer.SpanSinkErr(); err != nil {
			r.TraceSinkError = err.Error()
		}
	}
	return r
}

// Violations returns the PLO violation fraction for one service.
func (cl *Cluster) Violations(service string) (float64, error) {
	tr, err := cl.c.Tracker(service)
	if err != nil {
		return 0, err
	}
	return tr.ViolationFraction(), nil
}

// HPCStatus returns "queued", "running", "done" or "failed" for a
// submitted HPC job.
func (cl *Cluster) HPCStatus(job string) (string, error) { return cl.queue.Status(job) }

// BatchDone reports whether a DAG job finished and its makespan.
func (cl *Cluster) BatchDone(job string) (time.Duration, bool) { return cl.runner.Done(job) }

// EventRecord is one entry of the cluster's operational journal.
type EventRecord struct {
	At      time.Duration
	Kind    string
	Object  string
	Message string
}

// Events returns the operational journal oldest-first: placements,
// evictions, preemptions, migrations, task completions, node failures.
// The journal is bounded to the most recent ~2k events.
func (cl *Cluster) Events() []EventRecord {
	evs := cl.c.Events()
	out := make([]EventRecord, len(evs))
	for i, e := range evs {
		out[i] = EventRecord{At: e.At, Kind: e.Kind, Object: e.Object, Message: e.Message}
	}
	return out
}

// EnableTracing installs a decision tracer with the given ring capacity
// (obs.DefaultCapacity when <= 0) and returns it. Every control decision
// (with its PID term decomposition), scheduler outcome, registry delta
// and PLO violation transition is recorded onto the ring; attach a sink
// with Tracer().SetSink to also stream events as JSONL. Idempotent:
// repeated calls return the existing tracer.
func (cl *Cluster) EnableTracing(capacity int) *obs.Tracer {
	if cl.tracer.Enabled() {
		return cl.tracer
	}
	cl.tracer = obs.New(capacity)
	// Before the first Run the cluster installation is deferred (Run does
	// it) so callers can attach a sink before the registry replays its
	// existing objects as trace events.
	if cl.started {
		cl.c.SetTracer(cl.tracer)
		cl.loop.SetTracer(cl.tracer)
	}
	return cl.tracer
}

// Tracer returns the cluster's decision tracer (the shared no-op tracer
// until EnableTracing is called).
func (cl *Cluster) Tracer() *obs.Tracer { return cl.tracer }

// WriteMetrics writes the cluster's telemetry in Prometheus text
// exposition format (version 0.0.4): gauges for the latest sample of
// every series, counters, and the SLI histograms with cumulative
// buckets.
func (cl *Cluster) WriteMetrics(w io.Writer) error {
	return obs.WriteMetrics(w, cl.c.Metrics(), cl.tracer)
}

// ControllerState is one entry of the /debug/controllers view: what a
// policy most recently decided for its application and why.
type ControllerState struct {
	App       string             `json:"app"`
	Policy    string             `json:"policy"`
	Rationale string             `json:"rationale,omitempty"`
	Replicas  int                `json:"replicas"`
	Alloc     map[string]float64 `json:"alloc,omitempty"`
	// Degraded reports whether the hardened loop is holding the last
	// safe operating point for this app because its observations went
	// blind past the staleness budget; Health is the wrapper's one-line
	// state ("healthy", "integral frozen (...)", "degraded (...)").
	Degraded bool   `json:"degraded,omitempty"`
	Health   string `json:"health,omitempty"`
	// Trace is the controller's latest decision decomposition; nil for
	// policies that do not implement control.Traceable.
	Trace *obs.ControlTrace `json:"trace,omitempty"`
}

// ControllerStates reports the current state of every per-app
// controller, sorted by application name.
func (cl *Cluster) ControllerStates() []ControllerState {
	names := make([]string, 0, len(cl.ctrl))
	for name := range cl.ctrl {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ControllerState, 0, len(names))
	for _, name := range names {
		ctrl := cl.ctrl[name]
		st := ControllerState{App: name, Policy: ctrl.Name()}
		if ex, ok := ctrl.(control.Explainer); ok {
			st.Rationale = ex.Rationale()
		}
		if h, ok := cl.loop.Hardened(name); ok {
			st.Degraded = h.Degraded()
			st.Health = h.Status()
		}
		if d, ok := cl.loop.LastDecision(name); ok {
			st.Replicas = d.Replicas
			st.Alloc = make(map[string]float64, resource.NumKinds)
			for _, k := range resource.Kinds() {
				st.Alloc[k.String()] = d.Alloc[k]
			}
		}
		if t, ok := ctrl.(control.Traceable); ok {
			tr := t.DecisionTrace()
			st.Trace = &tr
		}
		out = append(out, st)
	}
	return out
}

// SeriesNames lists the recorded telemetry series.
func (cl *Cluster) SeriesNames() []string { return cl.c.Metrics().SeriesNames() }

// SeriesSample is one recorded point of a telemetry series.
type SeriesSample struct {
	At    time.Duration
	Value float64
}

// SeriesSamples returns the recorded points of one telemetry series
// ("app/web/violation", "cluster/usage/cpu", …) oldest-first, for
// programmatic post-processing (the harness's recovery analysis);
// WriteSeriesCSV is the textual equivalent.
func (cl *Cluster) SeriesSamples(name string) ([]SeriesSample, error) {
	if !cl.c.Metrics().HasSeries(name) {
		return nil, fmt.Errorf("%w: %q (see SeriesNames)", ErrUnknownSeries, name)
	}
	samples := cl.c.Metrics().Series(name).Samples()
	out := make([]SeriesSample, len(samples))
	for i, p := range samples {
		out[i] = SeriesSample{At: p.At, Value: p.Value}
	}
	return out, nil
}

// ErrUnknownSeries is returned (wrapped) by WriteSeriesCSV when the
// named series does not exist; other errors indicate write failures.
var ErrUnknownSeries = errors.New("evolve: unknown series")

// WriteSeriesCSV dumps one telemetry series ("app/web/latency-mean",
// "cluster/usage/cpu", …) as seconds,value CSV.
func (cl *Cluster) WriteSeriesCSV(name string, w io.Writer) error {
	if !cl.c.Metrics().HasSeries(name) {
		return fmt.Errorf("%w: %q (see SeriesNames)", ErrUnknownSeries, name)
	}
	s := cl.c.Metrics().Series(name)
	if _, err := fmt.Fprintln(w, "seconds,value"); err != nil {
		return err
	}
	for _, p := range s.Samples() {
		v := p.Value
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		if _, err := fmt.Fprintf(w, "%.3f,%g\n", p.At.Seconds(), v); err != nil {
			return err
		}
	}
	return nil
}
