GO ?= go

.PHONY: build test race vet bench bench-json bench-sched bench-shard bench-control bench-compare bench-obs check fuzz-smoke chaos-soak ckpt-soak

build:
	$(GO) build ./...

# -shuffle=on randomises test order so accidental inter-test state
# (shared globals, leftover files) cannot hide behind a lucky ordering.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench is a smoke run: every benchmark executes once, which catches
# compile rot and setup panics without CI paying for stable timings.
bench:
	$(GO) test -bench . -benchtime 1x -count 1 -run '^$$' ./...

# bench-json regenerates the committed BENCH_*.json trajectory record
# from the full evaluation run (see cmd/evolve-bench). Figure 6 — the
# kernel scale sweep to 100k nodes / 1M pods — dominates the wall time;
# the trailing summary line carries its raw rows (with per-phase
# breakdown) plus Figure 12's control-plane rows.
bench-json:
	$(GO) run ./cmd/evolve-bench -json > BENCH_10.json

# bench-shard is the sharded-kernel regression smoke at CI scale: the
# first three points of the Figure 6 ladder under shard counts {1, 4},
# plus the determinism suite that pins byte-identical replay across
# shard, worker and batching modes (the -race variant of the suite runs
# in the race job).
bench-shard:
	$(GO) run ./cmd/evolve-bench -json -quick -scale-points 3 -shards 4 -only figure6
	$(GO) test ./internal/harness -run 'TestSharded' -count 1 -v
	$(GO) test ./internal/sim -run 'TestCoordinator|TestBatched|TestProcessEventsAt' -count 1

# bench-control is the control-plane scaling regression smoke at CI
# scale: the quick Figure 12 ladder under worker counts {1, 4}, plus
# the suites that pin byte-identical replay across control-plane worker
# counts and the serial path's allocation budget (the -race variant of
# the determinism suite runs in the race job).
bench-control:
	$(GO) run ./cmd/evolve-bench -json -quick -ctrl-workers 4 -only figure12
	$(GO) test ./internal/harness -run 'TestCtrlWorkers|TestFigure12' -count 1 -v
	$(GO) test ./internal/control -run 'TestLoopWorkersDeterministic|TestControlEvalAllocs' -count 1
	$(GO) test ./internal/sched -run 'TestScheduleBatch|TestDisjointCandidates' -count 1
	$(GO) test ./internal/cluster -run 'TestDrainBatched' -count 1

# bench-compare guards the committed scale trajectory: the current
# record's kernel rows must not regress ms_per_tick or shard speedup —
# nor its control-plane rows ms_per_period or worker speedup — by more
# than 15% against the previous PR's record on matching points. Serial
# rows fail on absolute ms; parallel rows fail when both ms and
# within-record speedup regress (the checks disagreeing means the
# shared serial baseline moved, not the row — see cmd/bench-compare).
bench-compare:
	$(GO) run ./cmd/bench-compare -old BENCH_7.json -new BENCH_10.json

# bench-sched is the scheduler hot-path regression smoke: the sched
# benchmarks at a fixed iteration count (so -benchtime noise cannot mask
# a panic or a blow-up) plus the steady-state allocation gates — a
# regression in either fails the job.
bench-sched:
	$(GO) test ./internal/sched -run 'SteadyStateAllocs' -bench . -benchtime 100x -count 1 -v
	$(GO) test ./internal/cluster -run 'TestTickSteadyStateAllocs' -bench 'BenchmarkScheduleGang|BenchmarkSchedulePending/pods-500$$' -benchtime 20x -count 1

# bench-obs is the observability overhead job: the span-off vs span-on
# tick pair (BenchmarkTick vs BenchmarkTickTraced — installing a tracer
# enables the span layer with it), the traced and untraced steady-state
# allocation gates, and the span/latency emission tests. A traced tick
# that starts allocating per pod, or a steady tick that records spans,
# fails here.
bench-obs:
	$(GO) test ./internal/cluster -run 'TestTickSteadyStateAllocs|TestTickTracedAllocsBudget|TestPodSpansEmitted' \
		-bench 'BenchmarkTick/|BenchmarkTickTraced/' -benchtime 20x -count 1 -v
	$(GO) test ./internal/obs -run 'TestSpan|TestLatency' -bench 'BenchmarkObserveLatency' -benchtime 100x -count 1

# fuzz-smoke gives the chaos-plan parser a short fuzzing budget: long
# enough to catch parse/round-trip regressions, short enough for CI.
fuzz-smoke:
	$(GO) test -fuzz FuzzParsePlan -fuzztime 15s -run '^$$' ./internal/chaos

# chaos-soak runs the everything-at-once fault profile end to end (the
# TestChaosSoak harness test plus the mixed-profile CLI path).
chaos-soak:
	$(GO) test -run 'TestChaosSoak|TestTable7' -v ./internal/harness
	$(GO) run ./cmd/evolve-sim -chaos mixed -duration 2h > /dev/null

# ckpt-soak is the crash-consistency gauntlet: the full shard matrix of
# the headline byte-identity invariant, the chained crash/restore soak
# at every shard count, the Table 8 sweep, and the CLI resume path —
# a run killed at 40m and resumed must print the same report as one
# that never died.
ckpt-soak:
	EVOLVE_CKPT_SOAK=1 $(GO) test -run 'TestCheckpoint|TestResumeFromPeriodic|TestCtrlCrash' -count 1 -v .
	$(GO) test ./internal/harness -run 'TestTable8' -count 1
	rm -rf /tmp/evolve-ckpt-soak && mkdir -p /tmp/evolve-ckpt-soak
	$(GO) run ./cmd/evolve-sim -seed 7 -duration 40m -ckpt-dir /tmp/evolve-ckpt-soak -ckpt-every 10m 2>/dev/null >/dev/null
	$(GO) run ./cmd/evolve-sim -seed 7 -duration 2h -ckpt-dir /tmp/evolve-ckpt-soak -ckpt-every 10m -resume 2>/tmp/evolve-ckpt-soak/resumed.txt >/dev/null
	$(GO) run ./cmd/evolve-sim -seed 7 -duration 2h -ckpt-every 10m 2>/tmp/evolve-ckpt-soak/whole.txt >/dev/null
	grep -v '^evolve-sim:' /tmp/evolve-ckpt-soak/resumed.txt > /tmp/evolve-ckpt-soak/resumed.report
	grep -v '^evolve-sim:' /tmp/evolve-ckpt-soak/whole.txt > /tmp/evolve-ckpt-soak/whole.report
	diff /tmp/evolve-ckpt-soak/resumed.report /tmp/evolve-ckpt-soak/whole.report
	@echo "ckpt-soak: resumed report is byte-identical to the uninterrupted run"

# check is the CI gate: static analysis plus the full suite under the
# race detector (the parallel runner must be race-clean, not just fast).
check: vet race
