GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# check is the CI gate: static analysis plus the full suite under the
# race detector (the parallel runner must be race-clean, not just fast).
check: vet race
