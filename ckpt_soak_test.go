package evolve

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"
)

// TestCheckpointSoak chains crash/restore cycles inside one lineage:
// the world crashes repeatedly mid-run, each time restoring from its
// last periodic checkpoint (so a restore of a restore of a restore…),
// and the surviving lineage must still finish byte-identical to the
// run that never crashed. This is the long-haul version of the
// headline invariant — any state the snapshot forgets to carry, or
// carries inexactly, compounds across cycles and surfaces here.
//
// The default run keeps the matrix small; `make ckpt-soak` sets
// EVOLVE_CKPT_SOAK=1 to sweep every shard count and twice the crash
// points.
func TestCheckpointSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run")
	}
	shardCounts := []int{0, 2}
	crashPoints := []time.Duration{12 * time.Minute, 33 * time.Minute, 48 * time.Minute}
	if os.Getenv("EVOLVE_CKPT_SOAK") != "" {
		shardCounts = []int{0, 1, 2, 4, 7, 16}
		crashPoints = []time.Duration{
			11 * time.Minute, 17 * time.Minute, 24 * time.Minute,
			33 * time.Minute, 41 * time.Minute, 48 * time.Minute,
		}
	}
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			whole := ckptWorld(t, shards, "mixed")
			if err := whole.Run(time.Hour); err != nil {
				t.Fatal(err)
			}
			want := ckptFingerprint(whole)

			c := ckptWorld(t, shards, "mixed")
			for _, crashAt := range crashPoints {
				if err := c.Run(crashAt - c.Now()); err != nil {
					t.Fatal(err)
				}
				snap := c.LastCheckpoint()
				if snap == nil {
					t.Fatalf("no checkpoint before crash at %v", crashAt)
				}
				c = ckptWorld(t, shards, "mixed")
				if err := c.Restore(bytes.NewReader(snap)); err != nil {
					t.Fatalf("restore after crash at %v: %v", crashAt, err)
				}
			}
			if err := c.Run(time.Hour - c.Now()); err != nil {
				t.Fatal(err)
			}
			if got := ckptFingerprint(c); got != want {
				i := 0
				for i < len(got) && i < len(want) && got[i] == want[i] {
					i++
				}
				lo := max(0, i-200)
				t.Errorf("soak lineage diverged from uninterrupted run at byte %d:\n--- uninterrupted\n…%s\n--- soak\n…%s",
					i, want[lo:min(len(want), i+200)], got[lo:min(len(got), i+200)])
			}
		})
	}
}
