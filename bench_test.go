// Benchmarks regenerating every table and figure of the reconstructed
// evaluation (EXPERIMENTS.md). Each BenchmarkTableN / BenchmarkFigureN
// runs the full deterministic experiment once per iteration and reports
// its headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both regenerates the results and tracks the cost of producing them.
// cmd/evolve-bench renders the same tables and figures for reading.
package evolve_test

import (
	"io"
	"testing"
	"time"

	"evolve/internal/harness"
)

const benchSeed = 42

func BenchmarkTable1Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		tab, results, err := harness.Table1(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ev := results["cloud/evolve"]
			st := results["cloud/static-2x"]
			b.ReportMetric(ev.OverallViolation()*100, "evolve-viol-%")
			b.ReportMetric(st.OverallViolation()*100, "static2x-viol-%")
			b.ReportMetric(ev.UsageOfAlloc, "evolve-usage/alloc")
		}
	}
}

func BenchmarkTable2MultiResource(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		tab, err := harness.Table2(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Scheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		tab, err := harness.Table3(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.Table4()
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1Diurnal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		fig, err := harness.Figure1(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2Tracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		fig, err := harness.Figure2(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3Step(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		fig, stats, err := harness.Figure3(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range stats {
				if s.Policy == "evolve" {
					b.ReportMetric(s.SettleAfter.Seconds(), "evolve-settle-s")
				}
			}
		}
	}
}

func BenchmarkFigure4Adaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure4(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5Converged(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		fig, err := harness.Figure5(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6Scalability(b *testing.B) {
	// One small point per shard count: the benchmark tracks kernel tick
	// cost without paying the full 1M-pod ladder per iteration.
	cfg := harness.ScaleConfig{
		Seed:   benchSeed,
		Shards: []int{1, 4},
		Points: []harness.ScalePoint{{Nodes: 500, Pods: 5000}},
		Ticks:  4,
	}
	for i := 0; i < b.N; i++ {
		fig, _, err := harness.Figure6(nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7Frontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		fig, err := harness.Figure7(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5CostEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		tab, err := harness.Table5(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Failure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		fig, err := harness.Figure8(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9StartupDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		fig, err := harness.Figure9(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		fig, err := harness.Figure10(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		tab, err := harness.Table6(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11Bursts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fresh runner per iteration: the benchmark measures real
		// simulation cost, not cache hits; fan-out still applies.
		r := harness.NewRunner(0)
		fig, err := harness.Figure11(r, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the two hot control-plane paths.

func BenchmarkControllerDecision(b *testing.B) {
	// One Decide on a realistic observation; the Table 4 scale sweep
	// lives in harness.MeasureDecisionLatency.
	d := harness.MeasureDecisionLatency(1, b.N)
	b.ReportMetric(float64(d.Nanoseconds()), "ns/decision")
}

func BenchmarkSimulatedClusterHour(b *testing.B) {
	// Cost of simulating one virtual hour of the cloud mix under the
	// full EVOLVE control loop.
	sc := harness.BuildScenario(harness.MixCloud, benchSeed)
	sc.Duration = time.Hour
	pol := harness.StandardPolicies()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(sc, pol); err != nil {
			b.Fatal(err)
		}
	}
}
