package hpc

import (
	"testing"
	"time"

	"evolve/internal/cluster"
	"evolve/internal/perf"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

func newCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := cluster.DefaultConfig()
	cfg.MeasurementNoise = 0
	c := cluster.New(eng, cfg)
	if err := c.AddNodes("n", nodes, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
		t.Fatal(err)
	}
	c.Start()
	return c
}

// job with ranks x 8000m, each running 20s.
func testJob(name string, ranks int) JobSpec {
	return JobSpec{
		Name:    name,
		Ranks:   ranks,
		PerRank: resource.New(7000, 8<<30, 10e6, 50e6),
		Model:   perf.TaskModel{Work: resource.New(140000, 0, 0, 0), MemSet: 4 << 30},
	}
}

func TestValidate(t *testing.T) {
	if err := (JobSpec{}).Validate(); err == nil {
		t.Error("empty spec should fail")
	}
	if err := (JobSpec{Name: "x"}).Validate(); err == nil {
		t.Error("zero ranks should fail")
	}
	if err := (JobSpec{Name: "x", Ranks: 2}).Validate(); err == nil {
		t.Error("zero requests should fail")
	}
	if err := testJob("ok", 2).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestGangJobRunsAndCompletes(t *testing.T) {
	c := newCluster(t, 2)
	q := NewQueue(c, FCFS)
	var gotWait, gotRun time.Duration
	doneJob := ""
	q.OnJobDone(func(job string, wait, runtime time.Duration) {
		doneJob, gotWait, gotRun = job, wait, runtime
	})
	if err := q.Submit(testJob("mpi-1", 4)); err != nil { // 4 ranks x 7000m fit 2x15040m
		t.Fatal(err)
	}
	if err := q.Submit(testJob("mpi-1", 1)); err == nil {
		t.Error("duplicate job should fail")
	}
	if s, _ := q.Status("mpi-1"); s != "queued" && s != "running" {
		t.Errorf("status = %s", s)
	}
	c.Engine().Run(2 * time.Minute)
	if doneJob != "mpi-1" {
		t.Fatal("job did not complete")
	}
	if gotRun < 19*time.Second {
		t.Errorf("runtime = %v, want ≈20s+", gotRun)
	}
	if gotWait < 0 {
		t.Errorf("wait = %v", gotWait)
	}
	if s, _ := q.Status("mpi-1"); s != "done" {
		t.Errorf("status = %s", s)
	}
	if _, err := q.Status("nope"); err == nil {
		t.Error("unknown job status should fail")
	}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	c := newCluster(t, 2)
	q := NewQueue(c, FCFS)
	// Each node fits two 7000m ranks, so the cluster holds 4 ranks; the
	// 5-rank head cannot start. The 1-rank job behind it fits, but FCFS
	// must not start it while the head waits.
	if err := q.Submit(testJob("big", 5)); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(testJob("small", 1)); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(time.Minute)
	if s, _ := q.Status("big"); s != "queued" {
		t.Errorf("big = %s, want queued (does not fit)", s)
	}
	if s, _ := q.Status("small"); s != "queued" {
		t.Errorf("small = %s; FCFS must block behind the head", s)
	}
	if q.QueueLength() != 2 {
		t.Errorf("queue length = %d", q.QueueLength())
	}
}

func TestBackfillSkipsBlockedHead(t *testing.T) {
	c := newCluster(t, 2)
	q := NewQueue(c, Backfill)
	if err := q.Submit(testJob("big", 5)); err != nil { // cannot fit: 5 ranks > 4 slots
		t.Fatal(err)
	}
	if err := q.Submit(testJob("small", 1)); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(time.Minute)
	if s, _ := q.Status("small"); s != "done" && s != "running" {
		t.Errorf("small = %s; backfill should have started it", s)
	}
	if s, _ := q.Status("big"); s != "queued" {
		t.Errorf("big = %s", s)
	}
}

func TestTwoNodeGangSpansNodes(t *testing.T) {
	c := newCluster(t, 2)
	q := NewQueue(c, FCFS)
	// 2 ranks of 7000m: spread policy puts one per node.
	if err := q.Submit(testJob("span", 2)); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(10 * time.Second)
	nodes := map[string]bool{}
	for _, p := range c.Pods() {
		if p.Phase == cluster.Running {
			nodes[p.Node] = true
		}
	}
	if len(nodes) != 2 {
		t.Errorf("gang spans %d nodes, want 2", len(nodes))
	}
}

func TestRigidJobRestartsAfterRankFailure(t *testing.T) {
	c := newCluster(t, 2)
	q := NewQueue(c, FCFS)
	if err := q.Submit(testJob("frag", 2)); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(10 * time.Second) // running
	if s, _ := q.Status("frag"); s != "running" {
		t.Fatalf("status = %s", s)
	}
	// Fail one node: the rank dies, the sibling must be torn down and the
	// job restarted from the queue.
	if err := c.FailNode("n-0"); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreNode("n-0"); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(3 * time.Minute)
	if s, _ := q.Status("frag"); s != "done" {
		t.Errorf("status = %s, want done after restart", s)
	}
	if c.Metrics().Counter("hpc/rank-failures").Value() == 0 {
		t.Error("rank failure not counted")
	}
	if c.Metrics().Counter("hpc/jobs-completed").Value() != 1 {
		t.Error("exactly one completion expected")
	}
}

func TestJobFailsAfterMaxRestarts(t *testing.T) {
	c := newCluster(t, 1)
	q := NewQueue(c, FCFS)
	spec := testJob("doomed", 1)
	spec.MaxRestarts = 1
	if err := q.Submit(spec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.Engine().Run(c.Engine().Now() + 7*time.Second)
		if err := c.FailNode("n-0"); err != nil {
			t.Fatal(err)
		}
		if err := c.RestoreNode("n-0"); err != nil {
			t.Fatal(err)
		}
	}
	c.Engine().Run(c.Engine().Now() + time.Minute)
	if s, _ := q.Status("doomed"); s != "failed" {
		t.Errorf("status = %s, want failed", s)
	}
	if c.Metrics().Counter("hpc/jobs-failed").Value() != 1 {
		t.Error("failure not counted")
	}
}

// longJob is a 1-rank job running for runtime seconds at 7000m.
func longJob(name string, ranks int, runtime float64) JobSpec {
	return JobSpec{
		Name:    name,
		Ranks:   ranks,
		PerRank: resource.New(7000, 8<<30, 10e6, 50e6),
		Model:   perf.TaskModel{Work: resource.New(7000*runtime, 0, 0, 0), MemSet: 4 << 30},
	}
}

// TestEASYReservationPreventsHeadStarvation: a blocked wide head must not
// be pushed back by a long narrow job that plain backfill would happily
// start.
func TestEASYReservationPreventsHeadStarvation(t *testing.T) {
	run := func(policy Policy) (headStart time.Duration, smallStarted bool) {
		c := newCluster(t, 2)
		q := NewQueue(c, policy)
		// Fillers: one 7000m rank per node, finishing at t≈60s; they
		// leave ~8040m free per node.
		if err := q.Submit(longJob("filler", 2, 60)); err != nil {
			t.Fatal(err)
		}
		c.Engine().Run(time.Second)
		// Wide head: 4 ranks of 7000m — needs both nodes empty.
		if err := q.Submit(longJob("head", 4, 60)); err != nil {
			t.Fatal(err)
		}
		// Narrow long job: fits right now, but runs 600s.
		if err := q.Submit(longJob("narrow", 1, 600)); err != nil {
			t.Fatal(err)
		}
		var started time.Duration = -1
		q.OnJobDone(func(job string, wait, runtime time.Duration) {
			if job == "head" && started < 0 {
				started = c.Engine().Now() - runtime
			}
		})
		c.Engine().Run(30 * time.Minute)
		s, err := q.Status("narrow")
		if err != nil {
			t.Fatal(err)
		}
		if started < 0 {
			t.Fatalf("%v: head never finished", policy)
		}
		return started, s == "done" || s == "running"
	}

	easyStart, _ := run(EASY)
	backfillStart, backfillSmall := run(Backfill)

	// EASY: head starts right after the fillers drain (~60-70s).
	if easyStart > 2*time.Minute {
		t.Errorf("EASY head started at %v, want ≈1min (reservation)", easyStart)
	}
	// Plain backfill starts the narrow job and delays the head behind it.
	if !backfillSmall {
		t.Error("plain backfill should have started the narrow job")
	}
	if backfillStart <= easyStart {
		t.Errorf("backfill head at %v should start later than EASY head at %v", backfillStart, easyStart)
	}
	if EASY.String() != "easy" {
		t.Error("policy string")
	}
}

// TestEASYStillBackfillsShortJobs: jobs that finish before the shadow
// time must be allowed through.
func TestEASYStillBackfillsShortJobs(t *testing.T) {
	c := newCluster(t, 2)
	q := NewQueue(c, EASY)
	if err := q.Submit(longJob("filler", 2, 300)); err != nil { // drains at t≈300s
		t.Fatal(err)
	}
	c.Engine().Run(time.Second)
	if err := q.Submit(longJob("head", 4, 60)); err != nil { // blocked until 300s
		t.Fatal(err)
	}
	if err := q.Submit(longJob("quick", 1, 30)); err != nil { // done by 40s < shadow
		t.Fatal(err)
	}
	c.Engine().Run(2 * time.Minute)
	if s, _ := q.Status("quick"); s != "done" {
		t.Errorf("quick job should have backfilled under the reservation: %s", s)
	}
	if s, _ := q.Status("head"); s != "queued" {
		t.Errorf("head should still be waiting on the fillers: %s", s)
	}
}

func TestStats(t *testing.T) {
	c := newCluster(t, 2)
	q := NewQueue(c, FCFS)
	if err := q.Submit(testJob("a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(testJob("b", 2)); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(5 * time.Minute)
	wait, run, completed := q.Stats()
	if completed != 2 {
		t.Fatalf("completed = %d", completed)
	}
	if run < 19*time.Second {
		t.Errorf("mean runtime = %v", run)
	}
	if wait < 0 {
		t.Errorf("mean wait = %v", wait)
	}
	if p := FCFS.String(); p != "fcfs" {
		t.Errorf("policy string = %s", p)
	}
	if p := Backfill.String(); p != "backfill" {
		t.Errorf("policy string = %s", p)
	}
}
