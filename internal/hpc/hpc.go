// Package hpc is the high-performance-computing substrate: rigid,
// gang-scheduled jobs (all ranks start together or not at all) dispatched
// from a Slurm-like queue with FCFS or backfill ordering. Rank pods run
// on the shared cluster at batch priority, so the converged experiments
// capture the interplay between HPC gangs, analytics DAGs and
// latency-sensitive services on one substrate.
package hpc

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"evolve/internal/cluster"
	"evolve/internal/perf"
	"evolve/internal/resource"
	"evolve/internal/sched"
)

// JobSpec declares one rigid job of identical ranks.
type JobSpec struct {
	Name     string
	Ranks    int
	PerRank  resource.Vector
	Model    perf.TaskModel // per-rank work
	Priority int
	// MaxRestarts bounds whole-job restarts after a rank is killed
	// (rigid jobs cannot survive a lost rank). Default 2.
	MaxRestarts int
	// NodeSelector restricts ranks to labeled nodes.
	NodeSelector map[string]string
}

// Validate checks the spec.
func (j JobSpec) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("hpc: job needs a name")
	}
	if j.Ranks <= 0 {
		return fmt.Errorf("hpc: job %s needs at least one rank", j.Name)
	}
	if j.PerRank.IsZero() {
		return fmt.Errorf("hpc: job %s has zero per-rank requests", j.Name)
	}
	return nil
}

// Policy orders the dispatch queue.
type Policy int

const (
	// FCFS dispatches strictly in arrival order; the queue head blocks
	// everything behind it.
	FCFS Policy = iota
	// Backfill lets later jobs jump ahead when the head does not fit,
	// trading strict fairness for utilisation (reservation-less, with a
	// bounded look-ahead). Long backfilled jobs can push the head back.
	Backfill
	// EASY is backfill with a head reservation: the blocked head gets a
	// shadow start time (when enough running ranks will have finished),
	// and only jobs expected to complete before that time may jump ahead.
	// Utilisation without head starvation — the Slurm default.
	EASY
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Backfill:
		return "backfill"
	case EASY:
		return "easy"
	default:
		return "fcfs"
	}
}

type jobState struct {
	spec        JobSpec
	submittedAt time.Duration
	startedAt   time.Duration
	finishedAt  time.Duration
	started     bool
	done        bool
	failed      bool
	restarts    int
	remaining   int
	attempt     int
	aborted     int // attempt number torn down after a rank failure
}

// Queue is the HPC dispatch queue.
type Queue struct {
	c      *cluster.Cluster
	policy Policy
	// lookahead bounds how deep backfill searches past the head.
	lookahead int
	pending   []*jobState
	all       map[string]*jobState
	onDone    func(job string, wait, runtime time.Duration)
}

// NewQueue returns a queue on the cluster with the given policy. The
// queue retries dispatch on every cluster tick.
func NewQueue(c *cluster.Cluster, policy Policy) *Queue {
	q := &Queue{c: c, policy: policy, lookahead: 8, all: make(map[string]*jobState)}
	c.Engine().TagNext("hpc-dispatch", "")
	c.Engine().Every(c.Config().MetricsInterval, q.Dispatch)
	return q
}

// ReattachRank returns the completion callback for a restored rank pod.
// The attempt number is recovered from the pod name's suffix (the job
// name itself is supplied by the cluster's task record, so the parse is
// unambiguous); callbacks from superseded attempts stay inert exactly as
// they would have in the original run.
func (q *Queue) ReattachRank(pod, job string) (func(string, bool), error) {
	js, ok := q.all[job]
	if !ok {
		return nil, fmt.Errorf("hpc: rank pod %s references unknown job %s", pod, job)
	}
	suffix := strings.TrimPrefix(pod, job)
	var attempt, rank int
	if _, err := fmt.Sscanf(suffix, "-a%d-rank%d", &attempt, &rank); err != nil {
		return nil, fmt.Errorf("hpc: rank pod %s has unparseable suffix %q: %v", pod, suffix, err)
	}
	return func(_ string, failed bool) {
		q.rankDone(js, attempt, failed)
	}, nil
}

// OnJobDone installs a completion callback (wait = queue time,
// runtime = start to finish).
func (q *Queue) OnJobDone(fn func(job string, wait, runtime time.Duration)) { q.onDone = fn }

// Submit enqueues a job and attempts immediate dispatch.
func (q *Queue) Submit(spec JobSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, ok := q.all[spec.Name]; ok {
		return fmt.Errorf("hpc: job %s already submitted", spec.Name)
	}
	if spec.MaxRestarts <= 0 {
		spec.MaxRestarts = 2
	}
	js := &jobState{spec: spec, submittedAt: q.c.Engine().Now()}
	q.all[spec.Name] = js
	q.pending = append(q.pending, js)
	q.Dispatch()
	return nil
}

// Dispatch tries to start queued jobs according to the policy: FCFS only
// ever attempts the head; backfill scans up to the look-ahead depth and
// starts any job that fits; EASY additionally requires a backfilled job
// to finish before the blocked head's shadow start time.
func (q *Queue) Dispatch() {
	for {
		depth := 1
		if q.policy == Backfill || q.policy == EASY {
			depth = q.lookahead
		}
		if depth > len(q.pending) {
			depth = len(q.pending)
		}
		started := -1
		var shadow time.Duration = -1
		for i := 0; i < depth; i++ {
			js := q.pending[i]
			if i > 0 && q.policy == EASY {
				if shadow < 0 {
					shadow = q.shadowTime(q.pending[0])
				}
				est := js.spec.Model.Duration(js.spec.PerRank, 1)
				if shadow >= 0 && q.c.Engine().Now()+est > shadow {
					continue // would delay the reserved head
				}
			}
			if q.tryStart(js) {
				started = i
				break
			}
		}
		if started < 0 {
			return
		}
		q.pending = append(q.pending[:started], q.pending[started+1:]...)
	}
}

// shadowTime estimates when the blocked head could start: walk the
// currently running task pods in completion order, hypothetically
// releasing their allocations, until the head's gang fits. Returns -1
// when even a drained cluster cannot host the gang (the head is then not
// reservable and EASY degenerates to plain backfill for safety).
func (q *Queue) shadowTime(head *jobState) time.Duration {
	infos := q.c.NodeInfos()
	byName := make(map[string]int, len(infos))
	for i, n := range infos {
		byName[n.Name] = i
	}
	gang := make([]sched.PodInfo, head.spec.Ranks)
	for r := range gang {
		gang[r] = sched.PodInfo{
			Name:         fmt.Sprintf("shadow-%s-%d", head.spec.Name, r),
			App:          head.spec.Name,
			Requests:     head.spec.PerRank,
			Priority:     head.spec.Priority,
			NodeSelector: head.spec.NodeSelector,
		}
	}
	// Releases in completion order.
	type release struct {
		at   time.Duration
		node string
		req  resource.Vector
	}
	var rel []release
	for _, p := range q.c.Pods() {
		if p.IsTask() && p.Phase == cluster.Running {
			rel = append(rel, release{p.FinishAt, p.Node, p.Requests})
		}
	}
	sort.Slice(rel, func(i, j int) bool { return rel[i].at < rel[j].at })
	if _, err := q.c.Scheduler().ScheduleGang(gang, infos); err == nil {
		return q.c.Engine().Now()
	}
	for _, r := range rel {
		if i, ok := byName[r.node]; ok {
			infos[i].Allocated = infos[i].Allocated.Sub(r.req).ClampMin(0)
		}
		if _, err := q.c.Scheduler().ScheduleGang(gang, infos); err == nil {
			return r.at
		}
	}
	return -1
}

// tryStart attempts to gang-place all ranks of the job.
func (q *Queue) tryStart(js *jobState) bool {
	js.attempt++
	attempt := js.attempt
	specs := make([]cluster.TaskSpec, js.spec.Ranks)
	for rank := 0; rank < js.spec.Ranks; rank++ {
		specs[rank] = cluster.TaskSpec{
			Name:         rankPodName(js.spec.Name, attempt, rank),
			Job:          js.spec.Name,
			Model:        js.spec.Model,
			Requests:     js.spec.PerRank,
			Priority:     js.spec.Priority,
			NodeSelector: js.spec.NodeSelector,
			OnDone: func(_ string, failed bool) {
				q.rankDone(js, attempt, failed)
			},
		}
	}
	if err := q.c.SubmitGang(specs); err != nil {
		js.attempt-- // attempt never materialised
		return false
	}
	now := q.c.Engine().Now()
	if !js.started {
		js.started = true
		js.startedAt = now
		q.c.Metrics().Series("hpc/wait").Add(now, (now - js.submittedAt).Seconds())
	}
	js.remaining = js.spec.Ranks
	q.c.Metrics().Counter("hpc/jobs-started").Inc()
	return true
}

// rankDone handles one rank finishing or being killed. Events from
// attempts that were torn down or superseded are ignored.
func (q *Queue) rankDone(js *jobState, attempt int, failed bool) {
	if js.done || attempt != js.attempt || attempt == js.aborted {
		return
	}
	if failed {
		// Rigid job: a lost rank aborts the whole attempt. Tear down the
		// surviving ranks (their OnDone callbacks are ignored via the
		// aborted marker) and restart from the queue head.
		js.aborted = attempt
		for rank := 0; rank < js.spec.Ranks; rank++ {
			_ = q.c.KillTask(rankPodName(js.spec.Name, attempt, rank))
		}
		js.restarts++
		q.c.Metrics().Counter("hpc/rank-failures").Inc()
		if js.restarts > js.spec.MaxRestarts {
			js.done, js.failed = true, true
			q.c.Metrics().Counter("hpc/jobs-failed").Inc()
			return
		}
		// Re-enqueue at the head (it has seniority).
		q.pending = append([]*jobState{js}, q.pending...)
		return
	}
	js.remaining--
	if js.remaining > 0 {
		return
	}
	js.done = true
	js.finishedAt = q.c.Engine().Now()
	q.c.Metrics().Counter("hpc/jobs-completed").Inc()
	q.c.Metrics().Series("hpc/runtime").Add(js.finishedAt, (js.finishedAt - js.startedAt).Seconds())
	if q.onDone != nil {
		q.onDone(js.spec.Name, js.startedAt-js.submittedAt, js.finishedAt-js.startedAt)
	}
	q.Dispatch()
}

func rankPodName(job string, attempt, rank int) string {
	return fmt.Sprintf("%s-a%d-rank%d", job, attempt, rank)
}

// QueueLength returns the number of jobs waiting for dispatch.
func (q *Queue) QueueLength() int { return len(q.pending) }

// Status reports a job's lifecycle: queued/running/done/failed.
func (q *Queue) Status(job string) (string, error) {
	js, ok := q.all[job]
	if !ok {
		return "", fmt.Errorf("hpc: unknown job %s", job)
	}
	switch {
	case js.failed:
		return "failed", nil
	case js.done:
		return "done", nil
	case js.started && js.remaining > 0:
		return "running", nil
	default:
		return "queued", nil
	}
}

// Stats summarises completed jobs: mean wait and mean runtime.
func (q *Queue) Stats() (meanWait, meanRuntime time.Duration, completed int) {
	var wait, run time.Duration
	names := make([]string, 0, len(q.all))
	for n := range q.all {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		js := q.all[n]
		if !js.done || js.failed {
			continue
		}
		completed++
		wait += js.startedAt - js.submittedAt
		run += js.finishedAt - js.startedAt
	}
	if completed > 0 {
		meanWait = wait / time.Duration(completed)
		meanRuntime = run / time.Duration(completed)
	}
	return meanWait, meanRuntime, completed
}
