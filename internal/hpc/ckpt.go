package hpc

import (
	"fmt"
	"sort"

	"evolve/internal/ckpt"
	"evolve/internal/perf"
	"evolve/internal/resource"
)

const maxCkptItems = 1 << 20

func saveSpec(w *ckpt.Writer, spec *JobSpec) {
	w.Str(spec.Name)
	w.Int(spec.Ranks)
	spec.PerRank.CkptSave(w)
	spec.Model.Work.CkptSave(w)
	w.F64(spec.Model.MemSet)
	w.Int(spec.Priority)
	w.Int(spec.MaxRestarts)
	keys := make([]string, 0, len(spec.NodeSelector))
	for k := range spec.NodeSelector {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Str(k)
		w.Str(spec.NodeSelector[k])
	}
}

func loadSpec(r *ckpt.Reader) (JobSpec, error) {
	var spec JobSpec
	spec.Name = r.Str()
	spec.Ranks = r.Int()
	spec.PerRank = resource.LoadVector(r)
	spec.Model = perf.TaskModel{Work: resource.LoadVector(r), MemSet: r.F64()}
	spec.Priority = r.Int()
	spec.MaxRestarts = r.Int()
	nl := r.Int()
	if r.Err() != nil {
		return spec, r.Err()
	}
	if nl < 0 || nl > maxCkptItems {
		return spec, fmt.Errorf("hpc: ckpt: selector count %d out of range", nl)
	}
	if nl > 0 {
		spec.NodeSelector = make(map[string]string, nl)
		for i := 0; i < nl; i++ {
			k := r.Str()
			spec.NodeSelector[k] = r.Str()
		}
	}
	return spec, r.Err()
}

// CkptSave writes the queue's full state: every submitted job's spec and
// lifecycle, plus the pending order (dispatch order is part of the
// deterministic replay contract — FCFS head blocking depends on it).
func (q *Queue) CkptSave(w *ckpt.Writer) {
	w.Begin("hpc")
	names := make([]string, 0, len(q.all))
	for n := range q.all {
		names = append(names, n)
	}
	sort.Strings(names)
	w.Int(len(names))
	for _, n := range names {
		js := q.all[n]
		saveSpec(w, &js.spec)
		w.Dur(js.submittedAt)
		w.Dur(js.startedAt)
		w.Dur(js.finishedAt)
		w.Bool(js.started)
		w.Bool(js.done)
		w.Bool(js.failed)
		w.Int(js.restarts)
		w.Int(js.remaining)
		w.Int(js.attempt)
		w.Int(js.aborted)
	}
	w.Int(len(q.pending))
	for _, js := range q.pending {
		w.Str(js.spec.Name)
	}
}

// CkptLoad restores state written by CkptSave into a fresh queue on the
// restored cluster. Rank completion callbacks are reattached separately
// (ReattachRank), driven by the cluster's live task pods.
func (q *Queue) CkptLoad(r *ckpt.Reader) error {
	r.Begin("hpc")
	nj := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if nj < 0 || nj > maxCkptItems {
		return fmt.Errorf("hpc: ckpt: job count %d out of range", nj)
	}
	q.all = make(map[string]*jobState, nj)
	for i := 0; i < nj; i++ {
		spec, err := loadSpec(r)
		if err != nil {
			return err
		}
		js := &jobState{spec: spec}
		js.submittedAt = r.Dur()
		js.startedAt = r.Dur()
		js.finishedAt = r.Dur()
		js.started = r.Bool()
		js.done = r.Bool()
		js.failed = r.Bool()
		js.restarts = r.Int()
		js.remaining = r.Int()
		js.attempt = r.Int()
		js.aborted = r.Int()
		q.all[spec.Name] = js
	}
	np := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if np < 0 || np > maxCkptItems {
		return fmt.Errorf("hpc: ckpt: pending count %d out of range", np)
	}
	q.pending = q.pending[:0]
	for i := 0; i < np; i++ {
		n := r.Str()
		if r.Err() != nil {
			return r.Err()
		}
		js, ok := q.all[n]
		if !ok {
			return fmt.Errorf("hpc: ckpt: pending job %q not in job set", n)
		}
		q.pending = append(q.pending, js)
	}
	return r.Err()
}
