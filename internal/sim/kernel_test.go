package sim

import (
	"fmt"
	"testing"
	"time"
)

// Regression: cancelling a periodic process must kill the pending
// re-arm event in the heap, not just flag future firings off. Before
// the fix, Pending/PeekNextEventTime reported phantom work after
// cancel, so a coordinator would wake an idle shard.
func TestEveryCancelKillsPendingEvent(t *testing.T) {
	e := NewEngine(1)
	n := 0
	cancel := e.Every(time.Second, func() { n++ })
	e.Run(3 * time.Second)
	if n != 3 {
		t.Fatalf("fired %d times, want 3", n)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d before cancel, want 1", e.Pending())
	}
	cancel()
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after cancel, want 0 (phantom re-arm left live)", e.Pending())
	}
	if _, ok := e.PeekNextEventTime(); ok {
		t.Error("PeekNextEventTime reports work after cancel")
	}
	if !t.Failed() {
		cancel() // double-cancel must be a safe no-op
		if e.Pending() != 0 {
			t.Errorf("Pending = %d after double cancel, want 0", e.Pending())
		}
	}
	e.Run(10 * time.Second)
	if n != 3 {
		t.Errorf("fired %d times after cancel, want 3", n)
	}
}

// Cancelling from inside the periodic callback itself must not corrupt
// the live count: step has already retired the firing event.
func TestEveryCancelFromInsideCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var cancel Canceler
	cancel = e.Every(time.Second, func() {
		n++
		if n == 2 {
			cancel()
		}
	})
	e.Run(10 * time.Second)
	if n != 2 {
		t.Fatalf("fired %d times, want 2", n)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

func TestPendingCountsLiveEventsOnly(t *testing.T) {
	e := NewEngine(1)
	c1 := e.At(time.Second, func() {})
	e.At(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	c1()
	if e.Pending() != 1 {
		t.Errorf("Pending = %d after cancel, want 1", e.Pending())
	}
	if at, ok := e.PeekNextEventTime(); !ok || at != 2*time.Second {
		t.Errorf("PeekNextEventTime = %v,%v; want 2s,true (dead head must be skipped)", at, ok)
	}
	c1() // idempotent
	if e.Pending() != 1 {
		t.Errorf("Pending = %d after double cancel, want 1", e.Pending())
	}
}

// The free list must drain to a high-water mark after a burst instead
// of pinning the burst's peak heap forever.
func TestFreeListCappedAfterBurst(t *testing.T) {
	e := NewEngine(1)
	const burst = 100000
	for i := 0; i < burst; i++ {
		e.At(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunAll()
	if got := len(e.free); got > freeSlack {
		t.Errorf("free list holds %d structs after burst, want <= %d", got, freeSlack)
	}
	if got := cap(e.free); got > 4*freeSlack {
		t.Errorf("free list capacity %d after burst, want <= %d", got, 4*freeSlack)
	}
	// Steady state afterwards still recycles: one periodic process must
	// not grow the heap or the free list.
	e.Every(time.Second, func() {})
	e.Run(e.Now() + 1000*time.Second)
	if got := len(e.free); got > freeSlack {
		t.Errorf("free list grew to %d in steady state", got)
	}
}

func TestProcessNextEventPrimitives(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Post(2*time.Second, func() { got = append(got, 2) })
	e.Post(1*time.Second, func() { got = append(got, 1) })
	if !e.HasPendingEvents() {
		t.Fatal("HasPendingEvents = false with queued work")
	}
	at, ok := e.PeekNextEventTime()
	if !ok || at != time.Second {
		t.Fatalf("PeekNextEventTime = %v,%v; want 1s,true", at, ok)
	}
	if e.Now() != 0 {
		t.Fatal("Peek must not advance the clock")
	}
	at, ok = e.ProcessNextEvent()
	if !ok || at != time.Second || e.Now() != time.Second {
		t.Fatalf("ProcessNextEvent = %v,%v now=%v", at, ok, e.Now())
	}
	at, ok = e.ProcessNextEvent()
	if !ok || at != 2*time.Second {
		t.Fatalf("second ProcessNextEvent = %v,%v", at, ok)
	}
	if _, ok := e.ProcessNextEvent(); ok {
		t.Error("ProcessNextEvent on empty queue reported ok")
	}
	if e.HasPendingEvents() {
		t.Error("HasPendingEvents = true on drained engine")
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("order = %v", got)
	}
	e.AdvanceTo(10 * time.Second)
	if e.Now() != 10*time.Second {
		t.Errorf("AdvanceTo: now = %v", e.Now())
	}
	e.AdvanceTo(5 * time.Second)
	if e.Now() != 10*time.Second {
		t.Error("AdvanceTo moved the clock backwards")
	}
}

func TestPartitionedRNGStableStreams(t *testing.T) {
	p := NewPartitionedRNG(42)
	// Same key, any call order: identical stream.
	a1 := p.Stream("app-7")
	_ = p.Stream("zeta") // interleaved creation must not perturb app-7
	a2 := p.Stream("app-7")
	for i := 0; i < 100; i++ {
		if v1, v2 := a1.Float64(), a2.Float64(); v1 != v2 {
			t.Fatalf("stream for same key diverged at draw %d: %v vs %v", i, v1, v2)
		}
	}
	// Distinct keys: distinct streams.
	b := p.Stream("app-8")
	same := 0
	c := p.Stream("app-7")
	for i := 0; i < 100; i++ {
		if b.Float64() == c.Float64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("streams for distinct keys collide on %d/100 draws", same)
	}
	// Distinct seeds: distinct streams for the same key.
	q := NewPartitionedRNG(43)
	if p.Stream("x").Float64() == q.Stream("x").Float64() {
		t.Error("different seeds produced the same stream")
	}
}

func TestShardOfStableAndInRange(t *testing.T) {
	for n := 1; n <= 17; n++ {
		counts := make([]int, n)
		for i := 0; i < 1000; i++ {
			k := fmt.Sprintf("node-%04d", i)
			s := ShardOf(k, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%q,%d) = %d out of range", k, n, s)
			}
			if s != ShardOf(k, n) {
				t.Fatalf("ShardOf unstable for %q", k)
			}
			counts[s]++
		}
		for s, got := range counts {
			if n > 1 && got == 0 {
				t.Errorf("n=%d: shard %d received no keys", n, s)
			}
			_ = s
		}
	}
}

// coordScenario runs a synthetic partitioned workload: the primary
// ticks periodically, fanning a phase event to every shard keyed by a
// PartitionedRNG stream; shards post cross-shard mail that mutates a
// shared journal at the barrier. The journal string must be identical
// for any (shard count kept fixed) worker count.
func coordScenario(workers int, batched bool) string {
	primary := NewEngine(7)
	co := NewCoordinator(primary, 4, workers)
	co.SetBatched(batched)
	prng := NewPartitionedRNG(7)
	journal := ""
	// Per-shard state: a counter advanced by the shard's own stream.
	vals := make([]float64, co.NumShards())
	streams := make([]*RNG, co.NumShards())
	for i := range streams {
		streams[i] = prng.Stream(fmt.Sprintf("shard-%d", i))
	}
	tick := func() {
		now := primary.Now()
		for i := 0; i < co.NumShards(); i++ {
			i := i
			co.Shard(i).Post(now, func() {
				vals[i] += streams[i].Float64()
				v := vals[i]
				co.Mail(i, func() {
					journal += fmt.Sprintf("t=%v s=%d v=%.6f\n", now, i, v)
				})
			})
		}
		co.DrainShards(now)
		journal += fmt.Sprintf("t=%v total=%.6f\n", now, vals[0]+vals[1]+vals[2]+vals[3])
	}
	primary.Every(time.Second, tick)
	co.Run(20 * time.Second)
	return journal
}

func TestCoordinatorDeterministicAcrossWorkers(t *testing.T) {
	for _, batched := range []bool{false, true} {
		base := coordScenario(1, batched)
		if base == "" {
			t.Fatal("scenario produced no journal")
		}
		for _, w := range []int{2, 4, 8} {
			if got := coordScenario(w, batched); got != base {
				t.Errorf("batched=%v workers=%d journal diverged from serial baseline", batched, w)
			}
		}
	}
	// This scenario posts exactly one event per shard per timestamp, so
	// the two round protocols interleave identically and must agree with
	// each other too.
	if coordScenario(1, false) != coordScenario(1, true) {
		t.Error("batched and unbatched journals diverged on a one-event-per-round workload")
	}
}

// Parallel same-timestamp ticking must actually engage the pool (race
// coverage: this test runs multi-goroutine kernel code under -race).
func TestCoordinatorParallelRoundsEngage(t *testing.T) {
	primary := NewEngine(7)
	co := NewCoordinator(primary, 4, 4)
	var sum [4]int
	for r := 0; r < 50; r++ {
		at := time.Duration(r+1) * time.Second
		for i := 0; i < 4; i++ {
			i := i
			co.Shard(i).Post(at, func() { sum[i]++ })
		}
	}
	co.Run(100 * time.Second)
	for i, v := range sum {
		if v != 50 {
			t.Errorf("shard %d ran %d events, want 50", i, v)
		}
	}
	_, parallel := co.Rounds()
	if parallel == 0 {
		t.Error("no parallel rounds engaged with workers=4 and 4 same-timestamp shards")
	}
	steps := co.ShardSteps(nil)
	for i, s := range steps {
		if s != 50 {
			t.Errorf("ShardSteps[%d] = %d, want 50", i, s)
		}
	}
}

// Shards must win ties with the primary: fan-out work at time t runs
// before the next primary event at t even when the primary event was
// scheduled first.
func TestCoordinatorShardsWinTies(t *testing.T) {
	primary := NewEngine(1)
	co := NewCoordinator(primary, 2, 1)
	var order []string
	primary.Post(time.Second, func() { order = append(order, "primary") })
	co.Shard(0).Post(time.Second, func() { order = append(order, "shard0") })
	co.Shard(1).Post(time.Second, func() { order = append(order, "shard1") })
	co.Run(2 * time.Second)
	want := "[shard0 shard1 primary]"
	if got := fmt.Sprintf("%v", order); got != want {
		t.Errorf("order = %v, want %v", got, want)
	}
	if co.Primary().Now() != 2*time.Second || co.Shard(0).Now() != 2*time.Second {
		t.Errorf("clocks not advanced to horizon: primary=%v shard0=%v",
			co.Primary().Now(), co.Shard(0).Now())
	}
}

func TestCoordinatorMailOrdering(t *testing.T) {
	primary := NewEngine(1)
	co := NewCoordinator(primary, 3, 1)
	var got []int
	// Post mail from shards in reverse shard order; the barrier must
	// apply it in shard-index order regardless.
	for i := 2; i >= 0; i-- {
		i := i
		co.Shard(i).Post(time.Second, func() {
			co.Mail(i, func() { got = append(got, i) })
		})
	}
	co.Run(time.Second)
	if fmt.Sprintf("%v", got) != "[0 1 2]" {
		t.Errorf("mail applied in order %v, want [0 1 2]", got)
	}
}

func TestProcessEventsAt(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Post(time.Second, func() { got = append(got, "a") })
	dead := e.At(time.Second, func() { got = append(got, "cancelled") })
	e.Post(time.Second, func() { got = append(got, "b") })
	e.Post(2*time.Second, func() { got = append(got, "later") })
	dead()

	if n := e.ProcessEventsAt(time.Second); n != 2 {
		t.Fatalf("ProcessEventsAt(1s) = %d executed, want 2", n)
	}
	if fmt.Sprintf("%v", got) != "[a b]" {
		t.Fatalf("executed %v, want [a b] (FIFO at t, dead skipped, later untouched)", got)
	}
	if e.Now() != time.Second {
		t.Errorf("clock = %v, want 1s", e.Now())
	}
	if at, ok := e.PeekNextEventTime(); !ok || at != 2*time.Second {
		t.Errorf("next event = %v,%v, want 2s,true", at, ok)
	}
	// Nothing at 1s anymore: a second call is a no-op.
	if n := e.ProcessEventsAt(time.Second); n != 0 {
		t.Errorf("second ProcessEventsAt(1s) = %d, want 0", n)
	}
	// An event that posts a same-timestamp follow-up drains in the same
	// call — that is what collapses a tick's fan-out to one round.
	e.Post(2*time.Second, func() {
		e.Post(2*time.Second, func() { got = append(got, "chained") })
	})
	if n := e.ProcessEventsAt(2 * time.Second); n != 3 {
		t.Errorf("ProcessEventsAt(2s) = %d executed, want 3 (incl. chained)", n)
	}
	if got[len(got)-1] != "chained" {
		t.Errorf("chained follow-up did not run: %v", got)
	}
}

// Batched rounds must collapse a k-events-per-shard tick from k rounds
// (k barriers) to one, without changing what each shard executes. The
// journals are per-shard: shard events only touch their own state, and
// cross-shard interleaving is exactly what the two protocols are free
// to order differently.
func TestBatchedRoundsCollapseBarriers(t *testing.T) {
	run := func(batched bool) (journals [2]string, rounds uint64) {
		primary := NewEngine(3)
		co := NewCoordinator(primary, 2, 1)
		co.SetBatched(batched)
		primary.Every(time.Second, func() {
			now := primary.Now()
			for i := 0; i < co.NumShards(); i++ {
				i := i
				for k := 0; k < 5; k++ {
					k := k
					co.Shard(i).Post(now, func() {
						journals[i] += fmt.Sprintf("%v/e%d ", now, k)
					})
				}
			}
			co.DrainShards(now)
		})
		co.Run(10 * time.Second)
		total, _ := co.Rounds()
		return journals, total
	}
	serialJournals, serialRounds := run(false)
	batchedJournals, batchedRounds := run(true)
	if serialJournals != batchedJournals {
		t.Error("batched rounds changed a shard's execution journal")
	}
	if serialRounds != 10*5 {
		t.Errorf("unbatched rounds = %d, want 50 (one per event per tick)", serialRounds)
	}
	if batchedRounds != 10 {
		t.Errorf("batched rounds = %d, want 10 (one per tick)", batchedRounds)
	}
}

// A steady-state batched round must not allocate: stepJob reuse, the
// engine free list and the active scratch slice make DrainShards
// allocation-free once warm.
func TestBatchedRoundAllocs(t *testing.T) {
	primary := NewEngine(1)
	co := NewCoordinator(primary, 1, 1)
	co.SetBatched(true)
	sink := 0
	fn := func() { sink++ }
	var at Time
	tick := func() {
		at += time.Second
		for k := 0; k < 8; k++ {
			co.Shard(0).Post(at, fn)
		}
		co.DrainShards(at)
	}
	tick() // warm the free list and scratch slices
	if avg := testing.AllocsPerRun(100, tick); avg != 0 {
		t.Errorf("steady-state batched round allocates %.1f times", avg)
	}
	if sink == 0 {
		t.Fatal("events did not run")
	}
}
