package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(3*time.Second, func() { got = append(got, 3) })
	e.At(1*time.Second, func() { got = append(got, 1) })
	e.At(2*time.Second, func() { got = append(got, 2) })
	e.Run(10 * time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events out of order: %v", got)
	}
	if e.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineRunStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(5*time.Second, func() { fired = true })
	n := e.Run(4 * time.Second)
	if n != 0 || fired {
		t.Error("event beyond horizon should not fire")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run(5 * time.Second)
	if !fired {
		t.Error("event at horizon should fire")
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	cancel := e.After(time.Second, func() { fired = true })
	cancel()
	e.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(5*time.Second, func() {})
	e.Run(5 * time.Second)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.At(time.Second, func() {})
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var cancel Canceler
	cancel = e.Every(time.Second, func() {
		count++
		if count == 5 {
			cancel()
		}
	})
	e.Run(100 * time.Second)
	if count != 5 {
		t.Errorf("periodic fired %d times, want 5", count)
	}
}

func TestEngineEveryInterval(t *testing.T) {
	e := NewEngine(1)
	var at []Time
	e.Every(2*time.Second, func() { at = append(at, e.Now()) })
	e.Run(7 * time.Second)
	want := []Time{2 * time.Second, 4 * time.Second, 6 * time.Second}
	if len(at) != len(want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestEngineEveryBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) should panic")
		}
	}()
	NewEngine(1).Every(0, func() {})
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(time.Millisecond, recurse)
		}
	}
	e.After(0, recurse)
	e.RunAll()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Steps() != 100 {
		t.Errorf("Steps = %d, want 100", e.Steps())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different streams")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	child1 := parent.Fork()
	child2 := parent.Fork()
	if child1.Float64() == child2.Float64() && child1.Float64() == child2.Float64() {
		t.Error("forked children should be independent")
	}
}

func TestRNGDistributionMoments(t *testing.T) {
	g := NewRNG(123)
	const n = 200000

	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := g.Exp(2.0)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Errorf("Exp mean = %v, want ≈2", mean)
	}

	sum = 0
	for i := 0; i < n; i++ {
		sum += float64(g.Poisson(4.5))
	}
	if m := sum / n; math.Abs(m-4.5) > 0.05 {
		t.Errorf("Poisson mean = %v, want ≈4.5", m)
	}

	sum = 0
	for i := 0; i < n; i++ {
		sum += g.LogNormal(10, 0.5)
	}
	if m := sum / n; math.Abs(m-10) > 0.3 {
		t.Errorf("LogNormal mean = %v, want ≈10", m)
	}

	sum = 0
	for i := 0; i < n; i++ {
		sum += g.Normal(5, 2)
	}
	if m := sum / n; math.Abs(m-5) > 0.05 {
		t.Errorf("Normal mean = %v, want ≈5", m)
	}
}

func TestRNGPoissonLargeMean(t *testing.T) {
	g := NewRNG(5)
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(g.Poisson(1000))
	}
	if m := sum / n; math.Abs(m-1000) > 5 {
		t.Errorf("large-mean Poisson mean = %v, want ≈1000", m)
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestRNGEdgeCases(t *testing.T) {
	g := NewRNG(9)
	if g.Exp(0) != 0 || g.Exp(-1) != 0 {
		t.Error("Exp with non-positive mean should be 0")
	}
	if g.LogNormal(0, 1) != 0 {
		t.Error("LogNormal with non-positive mean should be 0")
	}
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(3, 1.5); v < 3 {
			t.Fatalf("Pareto sample %v below minimum", v)
		}
	}
	for i := 0; i < 1000; i++ {
		if v := g.Uniform(2, 5); v < 2 || v >= 5 {
			t.Fatalf("Uniform sample %v outside [2,5)", v)
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(11)
	prop := func(raw uint32) bool {
		v := 1 + float64(raw%1000)
		j := g.Jitter(v, 0.2)
		return j >= v*0.8-1e-9 && j <= v*1.2+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGBernoulliFrequency(t *testing.T) {
	g := NewRNG(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	f := float64(hits) / n
	if math.Abs(f-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", f)
	}
}

// Property: events fire in non-decreasing time order regardless of the
// order they were scheduled in.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		e := NewEngine(1)
		for _, r := range raw {
			e.At(time.Duration(r)*time.Millisecond, func() {})
		}
		last := time.Duration(-1)
		ok := true
		e.At(0, func() {}) // ensure at least one event
		for e.Pending() > 0 {
			// Step one event at a time by running to the head's time.
			before := e.Steps()
			e.Run(e.Now())
			if e.Steps() == before {
				// Nothing due yet at Now; advance to drain everything.
				e.RunAll()
			}
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEngineDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := NewEngine(99)
		var fires []Time
		e.Every(time.Second, func() {
			if e.RNG().Bernoulli(0.5) {
				fires = append(fires, e.Now())
			}
		})
		e.Run(30 * time.Second)
		return fires
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	e.At(1*time.Second, func() { fired = append(fired, 1) })
	e.At(2*time.Second, func() {
		fired = append(fired, 2)
		e.Stop()
	})
	e.At(3*time.Second, func() { fired = append(fired, 3) })
	n := e.Run(10 * time.Second)
	if n != 2 || len(fired) != 2 {
		t.Errorf("ran %d events (%v), want exactly 2", n, fired)
	}
	if !e.Stopped() {
		t.Error("Stopped() should report true after Stop")
	}
	// The clock must not advance to the horizon after an abort: the
	// harness reports the failure at its virtual time of occurrence.
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", e.Now())
	}
	// A stopped engine stays stopped.
	if e.Run(20*time.Second) != 0 {
		t.Error("stopped engine must not process further events")
	}
	if e.RunAll() != 0 {
		t.Error("stopped engine must not process further events via RunAll")
	}
}

func TestRunSkipsDeadEventsUncounted(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.After(time.Second, func() { ran++ })
	cancel := e.After(2*time.Second, func() { ran++ })
	e.After(3*time.Second, func() { ran++ })
	cancel()
	if n := e.Run(time.Minute); n != 2 {
		t.Errorf("Run counted %d events, want 2 (dead events must not count)", n)
	}
	if ran != 2 {
		t.Errorf("ran %d callbacks, want 2", ran)
	}
}

func TestRunAllSkipsDeadEventsUncounted(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.After(time.Second, func() { ran++ })
	cancel := e.After(2*time.Second, func() { ran++ })
	e.After(3*time.Second, func() { ran++ })
	cancel()
	if n := e.RunAll(); n != 2 {
		t.Errorf("RunAll counted %d events, want 2 (dead events must not count)", n)
	}
	if ran != 2 {
		t.Errorf("ran %d callbacks, want 2", ran)
	}
}

// TestCancelAfterFireIsNoop guards the event pool: a Canceler invoked
// after its event already fired must not kill the recycled struct that a
// later schedule is now using.
func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine(1)
	cancelA := e.After(time.Second, func() {})
	e.RunAll() // A fires; its struct returns to the pool
	fired := false
	e.After(time.Second, func() { fired = true }) // reuses A's struct
	cancelA()                                     // stale cancel: must be a no-op
	e.RunAll()
	if !fired {
		t.Error("stale Canceler killed a recycled event")
	}
}

// TestEveryFiringAllocationFree pins down the event-pool win: once the
// pool is primed, each periodic firing reuses the same struct and
// allocates nothing.
func TestEveryFiringAllocationFree(t *testing.T) {
	e := NewEngine(1)
	e.Every(time.Second, func() {})
	e.Run(10 * time.Second) // prime the pool and the heap capacity
	allocs := testing.AllocsPerRun(100, func() {
		e.Run(e.Now() + time.Second)
	})
	if allocs > 0.5 {
		t.Errorf("periodic firing allocates %.1f objects, want 0", allocs)
	}
}
