package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Checkpoint support for the kernel. A deterministic snapshot needs three
// things from the engine: the clock counters (now, seq, nsteps), the RNG
// stream position (RNG.Draws/Burn), and the set of pending timers. Timers
// carry closures, which cannot be serialised — instead every long-lived
// timer is tagged with a TimerTag naming what it is, the checkpoint
// records (at, seq, tag) triples, and the restore re-attaches behaviour
// by matching tags against the freshly constructed world's own timers
// (or a rebuild callback for timers the fresh world does not re-arm).
// Preserving the original seq values is what makes the restored run
// byte-identical: heap order among same-timestamp events is (at, seq).

// TimerTag names a pending timer for checkpointing. Kind identifies the
// timer family ("tick", "loop", "retry", ...); Arg disambiguates within
// the family (an app name, a counter). The zero tag marks an untagged
// event, which PendingTimers rejects — every schedule site that can be
// live at a checkpoint barrier must tag itself via TagNext.
type TimerTag struct {
	Kind string
	Arg  string
}

// TagNext attaches tag to the next event scheduled on the engine (via
// At, After, Every or Post). For Every the tag is carried across every
// re-arm, so the periodic process keeps one identity for its lifetime.
func (e *Engine) TagNext(kind, arg string) {
	e.pendingTag = TimerTag{Kind: kind, Arg: arg}
}

// PendingTimer is one live timer in a checkpoint: its absolute firing
// time, its original sequence number (the same-timestamp tie-breaker)
// and its identity tag.
type PendingTimer struct {
	At  Time
	Seq uint64
	Tag TimerTag
}

// PendingTimers returns every live timer sorted in firing order. It
// errors on an untagged or duplicate-tagged live event: both mean a
// schedule site the checkpoint layer cannot account for, which would
// silently break restore.
func (e *Engine) PendingTimers() ([]PendingTimer, error) {
	out := make([]PendingTimer, 0, e.live)
	seen := make(map[TimerTag]bool, e.live)
	for _, ev := range e.events {
		if ev.dead {
			continue
		}
		if ev.tag == (TimerTag{}) {
			return nil, fmt.Errorf("sim: unaccounted (untagged) timer at %v seq %d", ev.at, ev.seq)
		}
		if seen[ev.tag] {
			return nil, fmt.Errorf("sim: duplicate timer tag %s/%s", ev.tag.Kind, ev.tag.Arg)
		}
		seen[ev.tag] = true
		out = append(out, PendingTimer{At: ev.at, Seq: ev.seq, Tag: ev.tag})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out, nil
}

// RestoreTimers rewinds a freshly constructed engine to a checkpoint:
// clock counters are set to (now, seq, nsteps) and the pending event set
// is replaced by timers, each restored with its original (at, seq) so
// heap order is exactly the checkpointed order. Behaviour re-attaches by
// tag: a checkpoint timer whose tag matches a live timer on the fresh
// engine reuses that timer's callback (the fresh world armed the same
// logical timer at construction); an unmatched checkpoint timer gets its
// callback from rebuild. Fresh timers with no checkpoint counterpart are
// dropped — they already fired in the checkpointed timeline. Dropped
// event structs have their generation bumped so stale Cancelers held by
// the fresh world are safe no-ops.
func (e *Engine) RestoreTimers(now Time, seq, nsteps uint64, timers []PendingTimer, rebuild func(TimerTag) (func(), error)) error {
	avail := make(map[TimerTag]func(), e.live)
	for _, ev := range e.events {
		if ev.dead || ev.tag == (TimerTag{}) {
			continue
		}
		if _, dup := avail[ev.tag]; dup {
			return fmt.Errorf("sim: restore: duplicate live tag %s/%s on fresh engine", ev.tag.Kind, ev.tag.Arg)
		}
		avail[ev.tag] = ev.fn
	}
	// Drop the fresh heap. Bumping gen invalidates any Canceler the fresh
	// world captured for these structs; the structs go back to the free
	// list for reuse below.
	for _, ev := range e.events {
		ev.dead = true
		e.recycle(ev)
	}
	e.events = e.events[:0]
	e.live = 0

	for _, pt := range timers {
		if pt.At < now {
			return fmt.Errorf("sim: restore: timer %s/%s at %v before checkpoint time %v", pt.Tag.Kind, pt.Tag.Arg, pt.At, now)
		}
		fn, ok := avail[pt.Tag]
		if !ok {
			if rebuild == nil {
				return fmt.Errorf("sim: restore: no rebuilder for timer %s/%s", pt.Tag.Kind, pt.Tag.Arg)
			}
			var err error
			fn, err = rebuild(pt.Tag)
			if err != nil {
				return fmt.Errorf("sim: restore: timer %s/%s: %w", pt.Tag.Kind, pt.Tag.Arg, err)
			}
		}
		var ev *event
		if n := len(e.free); n > 0 {
			ev = e.free[n-1]
			e.free[n-1] = nil
			e.free = e.free[:n-1]
		} else {
			ev = &event{}
		}
		ev.at, ev.seq, ev.fn, ev.dead, ev.tag = pt.At, pt.Seq, fn, false, pt.Tag
		e.events = append(e.events, ev)
		e.live++
	}
	heap.Init(&e.events)
	e.now, e.seq, e.nsteps = now, seq, nsteps
	return nil
}

// Seq returns the next event sequence number — part of the clock state a
// checkpoint records (same-timestamp ordering flows through it).
func (e *Engine) Seq() uint64 { return e.seq }

// RestoreClock sets the clock counters on an engine with no live events;
// coordinators use it for shard engines, which are always drained at a
// tick barrier. Restoring a clock over live events panics: it would
// desynchronise the heap order from the counters.
func (e *Engine) RestoreClock(now Time, seq, nsteps uint64) {
	if e.live > 0 {
		panic("sim: RestoreClock on an engine with live events")
	}
	e.now, e.seq, e.nsteps = now, seq, nsteps
}

// CoordinatorState is the coordinator's own checkpointable state: round
// counters plus per-shard engine clocks. Shard engines hold no pending
// events at a tick barrier (the barrier drains them), so their clocks
// are the whole of their state; shard RNGs are never drawn (model
// randomness flows through PartitionedRNG streams).
type CoordinatorState struct {
	Rounds, ParRounds   uint64
	RoundsMark, ParMark uint64
	Shards              []ShardClock
}

// ShardClock is one shard engine's clock counters.
type ShardClock struct {
	Now    Time
	Seq    uint64
	Nsteps uint64
}

// State captures the coordinator's checkpointable state. It errors if
// any shard engine still holds live events — checkpoints must be taken
// at tick barriers, where the fan-out has fully drained.
func (co *Coordinator) State() (CoordinatorState, error) {
	st := CoordinatorState{
		Rounds: co.rounds, ParRounds: co.parRounds,
		RoundsMark: co.roundsMark, ParMark: co.parMark,
		Shards: make([]ShardClock, len(co.shards)),
	}
	for i, sh := range co.shards {
		if sh.Pending() > 0 {
			return CoordinatorState{}, fmt.Errorf("sim: checkpoint: shard %d has %d live events (not at a barrier)", i, sh.Pending())
		}
		st.Shards[i] = ShardClock{Now: sh.Now(), Seq: sh.Seq(), Nsteps: sh.Steps()}
	}
	for i := range co.mail {
		if len(co.mail[i]) > 0 {
			return CoordinatorState{}, fmt.Errorf("sim: checkpoint: shard %d mailbox not empty", i)
		}
	}
	return st, nil
}

// RestoreState rewinds the coordinator (and its shard engine clocks) to
// a checkpointed state. The shard count must match the checkpoint.
func (co *Coordinator) RestoreState(st CoordinatorState) error {
	if len(st.Shards) != len(co.shards) {
		return fmt.Errorf("sim: restore: checkpoint has %d shards, coordinator has %d", len(st.Shards), len(co.shards))
	}
	co.rounds, co.parRounds = st.Rounds, st.ParRounds
	co.roundsMark, co.parMark = st.RoundsMark, st.ParMark
	for i, sh := range co.shards {
		sc := st.Shards[i]
		sh.RestoreClock(sc.Now, sc.Seq, sc.Nsteps)
	}
	return nil
}
