package sim

import (
	"sync"
	"time"

	"evolve/internal/par"
)

// Coordinator advances one primary engine and N shard engines under a
// shared clock. The primary carries the serial control plane (periodic
// ticks, controllers, chaos arming); shards carry partitioned model
// state whose events may execute in parallel when several shards share
// the minimum timestamp.
//
// The protocol keeps any shard count byte-identical to the 1-shard
// baseline:
//
//   - The kernel always advances the earliest-timestamp engine. When
//     one or more shards sit at the shared minimum, all of them step
//     exactly one event (a "round") before anything else runs; the
//     primary only steps when no shard shares the minimum, so shard
//     work scheduled by a primary event at time t completes before the
//     next primary event at t.
//   - Within a round, shard events touch only their own shard's state.
//     Cross-shard effects are not applied in place: they are posted to
//     a per-source-shard mailbox and applied at the round barrier in
//     (source shard index, FIFO) order — a strict total order that does
//     not depend on goroutine interleaving.
//   - With workers > 1 a round's events run on the shared par pool;
//     with workers <= 1 they run inline in ascending shard order. Both
//     produce the same state because rounds only ever run events from
//     distinct shards.
type Coordinator struct {
	primary *Engine
	shards  []*Engine
	workers int
	batched bool // drain all same-t events per shard per round

	mail [][]func() // mail[src] = messages posted by shard src this round

	jobs   []stepJob
	active []int // scratch: shard indexes at the minimum this round
	wg     sync.WaitGroup

	rounds    uint64 // shard rounds executed
	parRounds uint64 // rounds that fanned out to the pool
	mailed    int    // messages the last round's barrier applied
	// TakeRounds marks, for per-tick round deltas.
	roundsMark, parMark uint64

	timing    bool  // accumulate barrier/mailbox wall time
	barrierNs int64 // wg.Wait wall time in parallel rounds
	mailNs    int64 // drainMail wall time at round barriers
}

// stepJob runs one shard engine's share of a round; pointers into the
// coordinator's prealloc slice go to the pool, so a round allocates
// nothing. In batched mode it drains every event at t; otherwise it
// processes exactly one. steps is written before wg.Done and read only
// after wg.Wait, so the WaitGroup orders the accesses.
type stepJob struct {
	eng     *Engine
	wg      *sync.WaitGroup
	t       Time
	batched bool
	steps   int
}

func (j *stepJob) Run() {
	if j.batched {
		j.steps = j.eng.ProcessEventsAt(j.t)
	} else {
		j.eng.ProcessNextEvent()
		j.steps = 1
	}
	j.wg.Done()
}

// NewCoordinator builds a coordinator over primary plus nshards fresh
// shard engines. Shard engines share no RNG with the primary: model
// code is expected to key its randomness through a PartitionedRNG, not
// through engine sources, so shard engines are seeded only for
// completeness. workers <= 1 keeps rounds serial.
func NewCoordinator(primary *Engine, nshards, workers int) *Coordinator {
	if nshards < 1 {
		nshards = 1
	}
	if workers < 1 {
		workers = 1
	}
	co := &Coordinator{
		primary: primary,
		shards:  make([]*Engine, nshards),
		workers: workers,
		mail:    make([][]func(), nshards),
		jobs:    make([]stepJob, nshards),
		active:  make([]int, 0, nshards),
	}
	for i := range co.shards {
		co.shards[i] = NewEngine(int64(i) + 1)
	}
	return co
}

// Primary returns the control-plane engine.
func (co *Coordinator) Primary() *Engine { return co.primary }

// NumShards returns the shard count.
func (co *Coordinator) NumShards() int { return len(co.shards) }

// Shard returns shard engine i.
func (co *Coordinator) Shard(i int) *Engine { return co.shards[i] }

// Workers returns the configured round parallelism.
func (co *Coordinator) Workers() int { return co.workers }

// SetBatched switches the round protocol between one-event-per-round
// (false, the PR 6 baseline) and batched rounds (true): each active
// shard drains all its events at the shared timestamp before the
// barrier, collapsing barriers per tick from O(events) to O(1). Both
// modes are individually deterministic at any shard/worker count; they
// differ only in where the mailbox drain interleaves relative to
// same-timestamp shard events, so workloads that post cross-shard mail
// mid-timestamp may order work differently *between* modes (phase-
// disciplined users like the cluster substrate, which exchange no
// mid-phase mail, are byte-identical across both).
func (co *Coordinator) SetBatched(on bool) { co.batched = on }

// Batched reports whether batched rounds are enabled.
func (co *Coordinator) Batched() bool { return co.batched }

// SetTiming enables (or disables) accumulation of barrier-wait and
// mailbox-drain wall time; TakeTimings reads and resets the counters.
// Timing is off by default so the hot round path pays one branch.
func (co *Coordinator) SetTiming(on bool) { co.timing = on }

// TakeTimings returns the accumulated barrier-wait and mailbox-drain
// nanoseconds since the last call, then resets both counters.
func (co *Coordinator) TakeTimings() (barrierNs, mailNs int64) {
	barrierNs, mailNs = co.barrierNs, co.mailNs
	co.barrierNs, co.mailNs = 0, 0
	return barrierNs, mailNs
}

// Rounds returns how many shard rounds have executed, and how many of
// them fanned out to the worker pool.
func (co *Coordinator) Rounds() (total, parallel uint64) {
	return co.rounds, co.parRounds
}

// TakeRounds returns the shard rounds (total, parallel) executed since
// the previous TakeRounds call and re-marks — the per-tick delta the
// phase-span emitter stamps onto its barrier span. Independent of
// Rounds, which keeps reporting lifetime totals.
func (co *Coordinator) TakeRounds() (total, parallel uint64) {
	total = co.rounds - co.roundsMark
	parallel = co.parRounds - co.parMark
	co.roundsMark, co.parMark = co.rounds, co.parRounds
	return total, parallel
}

// ShardSteps appends each shard engine's executed-event count to dst
// and returns it; evolve-bench embeds this in its JSON summary.
func (co *Coordinator) ShardSteps(dst []uint64) []uint64 {
	for _, sh := range co.shards {
		dst = append(dst, sh.Steps())
	}
	return dst
}

// Mail posts a cross-shard message from source shard src. It must be
// called only from an event running on shard src (or from serial code
// between rounds); the message runs at the next round barrier, after
// every active shard has finished its event, in (source shard, FIFO)
// order. Concurrent calls are safe only across distinct src values —
// exactly the discipline shard events follow — because each source has
// its own mailbox and no shared counter.
func (co *Coordinator) Mail(src int, fn func()) {
	co.mail[src] = append(co.mail[src], fn)
}

// drainMail applies queued cross-shard messages in (source shard index,
// FIFO) order and returns how many ran. A message may post further
// mail; the drain loops until empty, restarting the scan from shard 0
// each pass so the order is a pure function of what was posted, never
// of goroutine timing.
func (co *Coordinator) drainMail() int {
	total := 0
	for {
		applied := 0
		for i := range co.mail {
			if len(co.mail[i]) == 0 {
				continue
			}
			box := co.mail[i]
			co.mail[i] = co.mail[i][:0]
			applied += len(box)
			for _, fn := range box {
				fn()
			}
		}
		total += applied
		if applied == 0 {
			return total
		}
	}
}

// stepRound executes one round: every shard whose next live event sits
// exactly at t processes one event (or, in batched mode, all its events
// at t), then the mailbox drains at the barrier. It returns the number
// of shard events executed.
func (co *Coordinator) stepRound(t Time) int {
	co.active = co.active[:0]
	for i, sh := range co.shards {
		if st, ok := sh.PeekNextEventTime(); ok && st == t {
			co.active = append(co.active, i)
		}
	}
	n := len(co.active)
	if n == 0 {
		return 0
	}
	co.rounds++
	var executed int
	if co.workers > 1 && n > 1 {
		co.parRounds++
		co.wg.Add(n - 1)
		for k := 1; k < n; k++ {
			j := &co.jobs[co.active[k]]
			j.eng = co.shards[co.active[k]]
			j.wg = &co.wg
			j.t = t
			j.batched = co.batched
			j.steps = 0
			par.Submit(j)
		}
		lead := co.shards[co.active[0]]
		if co.batched {
			executed = lead.ProcessEventsAt(t)
		} else {
			lead.ProcessNextEvent()
			executed = 1
		}
		var w0 time.Time
		if co.timing {
			w0 = time.Now()
		}
		co.wg.Wait()
		if co.timing {
			co.barrierNs += time.Since(w0).Nanoseconds()
		}
		for k := 1; k < n; k++ {
			executed += co.jobs[co.active[k]].steps
		}
	} else {
		for _, i := range co.active {
			if co.batched {
				executed += co.shards[i].ProcessEventsAt(t)
			} else {
				co.shards[i].ProcessNextEvent()
				executed++
			}
		}
	}
	var m0 time.Time
	if co.timing {
		m0 = time.Now()
	}
	co.mailed = co.drainMail()
	if co.timing {
		co.mailNs += time.Since(m0).Nanoseconds()
	}
	return executed
}

// DrainShards runs rounds until no shard has a live event at exactly t,
// then brings every shard clock up to t. Serial model code (a primary
// tick that has just fanned phase events out to the shards) calls this
// to complete the fan-out synchronously before it continues.
func (co *Coordinator) DrainShards(t Time) int {
	var n int
	for {
		stepped := co.stepRound(t)
		if stepped == 0 {
			break
		}
		n += stepped
		// In batched mode every active shard drained all its events at t
		// — including same-timestamp follow-ups it scheduled for itself —
		// so only a barrier message could have armed a new event at t. A
		// mail-free round is therefore the last one; skipping the
		// confirming peek round halves the per-phase round count for the
		// common fan-out (one phase event per shard, no mail).
		if co.batched && co.mailed == 0 {
			break
		}
	}
	for _, sh := range co.shards {
		sh.AdvanceTo(t)
	}
	return n
}

// Run advances the kernel — primary and shards together — until the
// shared clock reaches until, every queue drains, or the primary is
// stopped. It returns the number of events executed. Shards win ties
// with the primary so that fan-out work scheduled at t finishes before
// the next primary event at t; note that primary callbacks which drive
// their own fan-out via DrainShards leave nothing for Run's tie-break
// to find, which is the common case in the cluster substrate.
func (co *Coordinator) Run(until Time) uint64 {
	var n uint64
	for !co.primary.Stopped() {
		st, sok := co.minShardTime()
		pt, pok := co.primary.PeekNextEventTime()
		if !sok && !pok {
			break
		}
		t := st
		if !sok || (pok && pt < st) {
			t = pt
		}
		if t > until {
			break
		}
		if sok && st == t {
			n += uint64(co.DrainShards(t))
			continue
		}
		if _, ok := co.primary.ProcessNextEvent(); ok {
			n++
		}
	}
	if !co.primary.Stopped() {
		co.primary.AdvanceTo(until)
		for _, sh := range co.shards {
			sh.AdvanceTo(until)
		}
	}
	return n
}

// minShardTime returns the earliest next-event time across shards.
func (co *Coordinator) minShardTime() (Time, bool) {
	var min Time
	found := false
	for _, sh := range co.shards {
		if t, ok := sh.PeekNextEventTime(); ok && (!found || t < min) {
			min, found = t, true
		}
	}
	return min, found
}
