// Package sim provides the discrete-event simulation kernel underneath the
// EVOLVE cluster substrate: a virtual clock, an event heap, periodic
// processes and a deterministic random source. All randomness and all
// notion of time in the repository flow through this package, which makes
// every experiment exactly reproducible from its seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start
// of the simulation.
type Time = time.Duration

// Event is a scheduled callback. Event structs are pooled: once executed
// (or popped dead) they return to the engine's free list and are reused
// by later schedules, so a steady periodic process allocates nothing per
// firing. gen guards stale Cancelers against recycled structs.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	fn   func()
	dead bool
	gen  uint64   // bumped on recycle; a Canceler only acts on its own generation
	tag  TimerTag // checkpoint identity (see ckpt.go); zero for untagged events
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; model code runs inside event callbacks on the engine's
// goroutine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*event // recycled event structs (see type event)
	live    int      // queued events not yet executed or cancelled
	rng     *RNG
	nsteps  uint64
	stopped bool
	// pendingTag, when set via TagNext, is attached to the next scheduled
	// event and cleared. Checkpointing relies on every long-lived timer
	// carrying a tag; see ckpt.go.
	pendingTag TimerTag
}

// NewEngine returns an engine with virtual time 0 and a deterministic
// random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending returns the number of live events currently queued. Cancelled
// events still sitting in the heap are not counted: a coordinator
// polling Pending (or PeekNextEventTime) must never wake a shard for
// phantom work.
func (e *Engine) Pending() int { return e.live }

// Canceler cancels a scheduled event or periodic process.
type Canceler func()

// schedule enqueues fn at absolute time t on a pooled event struct. It
// is the cancel-free core of At/After/Every: callers that never cancel
// (periodic re-arms, task completions) pay no Canceler closure.
func (e *Engine) schedule(t Time, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.dead = t, e.seq, fn, false
	ev.tag = e.pendingTag
	e.pendingTag = TimerTag{}
	e.seq++
	e.live++
	heap.Push(&e.events, ev)
	return ev
}

// freeSlack is how many spare event structs the free list may hold
// beyond the current heap size. A steady simulation keeps a small
// working set; after a one-off burst drains, the excess is released so
// the burst does not pin its peak heap for the rest of a long run.
const freeSlack = 64

// recycle returns a popped event to the free list, trimming the list to
// a high-water mark relative to the live heap.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.tag = TimerTag{}
	ev.gen++
	e.free = append(e.free, ev)
	if max := len(e.events) + freeSlack; len(e.free) > max {
		for i := max; i < len(e.free); i++ {
			e.free[i] = nil
		}
		e.free = e.free[:max]
		if cap(e.free) > 4*max {
			// Shed the backing array too: trimming length alone would keep
			// the burst-sized allocation reachable forever.
			e.free = append(make([]*event, 0, 2*max), e.free...)
		}
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it indicates a model bug, not a recoverable condition.
func (e *Engine) At(t Time, fn func()) Canceler {
	ev := e.schedule(t, fn)
	gen := ev.gen
	return func() {
		// The generation check makes cancelling after the event has
		// fired (and its struct was recycled) a safe no-op; the dead
		// check makes double-cancel (and self-cancel from inside the
		// callback, which step has already marked dead) idempotent.
		if ev.gen == gen && !ev.dead {
			ev.dead = true
			e.live--
		}
	}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d time.Duration, fn func()) Canceler {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn to run every interval, first firing after one
// interval. The returned Canceler stops future firings.
func (e *Engine) Every(interval time.Duration, fn func()) Canceler {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	stopped := false
	// Capture the pending tag by value so every re-arm carries the same
	// identity: a periodic timer is one logical timer across firings.
	tag := e.pendingTag
	var cur *event // the in-flight re-arm event, so cancel can kill it
	var curGen uint64
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			// Re-arm through the cancel-free core: a periodic process
			// allocates nothing per firing.
			e.pendingTag = tag
			cur = e.schedule(e.now+interval, tick)
			curGen = cur.gen
		}
	}
	cur = e.schedule(e.now+interval, tick)
	curGen = cur.gen
	return func() {
		if stopped {
			return
		}
		stopped = true
		// Mark the pending re-arm dead in the heap: without this the
		// event stays live until its timestamp, so Pending and
		// PeekNextEventTime would report phantom work and a coordinator
		// would wake an idle shard. Guards mirror At's Canceler; cur is
		// already dead when cancel runs from inside fn itself.
		if cur.gen == curGen && !cur.dead {
			cur.dead = true
			e.live--
		}
	}
}

// Stop halts event processing: the Run or RunAll call in progress
// returns once the in-flight callback completes, and later calls process
// nothing. Model code calls it from inside a callback to abort a
// simulation on a fatal error instead of panicking.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// step pops and executes the next event. Dead (cancelled) events are
// skipped and not counted; executed reports whether a live callback ran.
// Run and RunAll share this so their step accounting cannot diverge.
func (e *Engine) step() (executed bool) {
	next := heap.Pop(&e.events).(*event)
	if next.dead {
		e.recycle(next)
		return false
	}
	e.now = next.at
	// Retire and count the event before running it: a callback that
	// cancels its own (already firing) event must not decrement live
	// twice, and a callback that checkpoints the clock (the periodic
	// snapshot timer) must see its own firing in the step count.
	next.dead = true
	e.live--
	e.nsteps++
	next.fn()
	e.recycle(next)
	return true
}

// HasPendingEvents reports whether any live event remains queued. It is
// one of the three coordinator primitives (with PeekNextEventTime and
// ProcessNextEvent) that let a sim.Coordinator drive several shard
// engines under a shared clock without altering Run's behaviour.
func (e *Engine) HasPendingEvents() bool { return e.live > 0 }

// PeekNextEventTime returns the timestamp of the earliest live event
// without executing it; ok is false when no live event is queued. Dead
// events at the head of the heap are drained eagerly so a coordinator
// never wakes a shard for cancelled work.
func (e *Engine) PeekNextEventTime() (t Time, ok bool) {
	for len(e.events) > 0 && e.events[0].dead {
		e.recycle(heap.Pop(&e.events).(*event))
	}
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// ProcessNextEvent executes exactly one live event, skipping over any
// cancelled ones, and returns its timestamp. ok is false when the queue
// held no live event or the engine is stopped.
func (e *Engine) ProcessNextEvent() (t Time, ok bool) {
	for len(e.events) > 0 && !e.stopped {
		at := e.events[0].at
		if e.step() {
			return at, true
		}
	}
	return 0, false
}

// ProcessEventsAt executes every live event whose timestamp is exactly
// t — including events that callbacks post back at t while the batch
// drains — and returns the number executed. It is the batch primitive
// behind the coordinator's batched rounds: one call empties a shard's
// work at the shared minimum, so the round barrier is paid once per
// timestamp instead of once per event. Events earlier than t must not
// be queued (the coordinator only calls this at the global minimum);
// events later than t are left in place.
func (e *Engine) ProcessEventsAt(t Time) int {
	n := 0
	for len(e.events) > 0 && !e.stopped {
		head := e.events[0]
		if head.dead {
			e.recycle(heap.Pop(&e.events).(*event))
			continue
		}
		if head.at != t {
			break
		}
		if e.step() {
			n++
		}
	}
	return n
}

// Post schedules fn at absolute time t with no Canceler, the
// allocation-free path for callers that never cancel (cross-shard
// messages, phase fan-out). Like At, scheduling in the past panics.
func (e *Engine) Post(t Time, fn func()) { e.schedule(t, fn) }

// AdvanceTo moves the clock forward to t without executing events; a
// coordinator uses it to keep idle shards' clocks in step with the
// shared minimum. Moving backwards is a no-op.
func (e *Engine) AdvanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// Run executes events until virtual time reaches until, the queue
// drains, or Stop is called. It returns the number of events executed by
// this call; cancelled events are skipped and never counted.
func (e *Engine) Run(until Time) uint64 {
	var n uint64
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > until {
			break
		}
		if e.step() {
			n++
		}
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return n
}

// RunAll executes events until the queue drains, counting exactly as Run
// does (cancelled events are skipped, not counted). It guards against
// runaway self-scheduling with a generous step limit on executed events.
func (e *Engine) RunAll() uint64 {
	const maxSteps = 1 << 30
	var n uint64
	for len(e.events) > 0 && !e.stopped {
		if n >= maxSteps {
			panic("sim: RunAll exceeded step limit; runaway event loop?")
		}
		if e.step() {
			n++
		}
	}
	return n
}

// RNG is a deterministic random source with the distribution helpers the
// workload generators need. It wraps math/rand with an explicit seed so
// simulations never touch global randomness.
type RNG struct {
	r    *rand.Rand
	src  *countSource
	seed int64
}

// countSource wraps math/rand's seeded source and counts state steps.
// Both Int63 and Uint64 advance the generator state exactly once, so the
// count is the stream position: re-seeding and burning Draws() steps
// reproduces the stream exactly (see Burn). rand.New takes the Source64
// path when offered, so values are bit-identical to an unwrapped source.
type countSource struct {
	src rand.Source64
	n   uint64
}

func (c *countSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countSource) Seed(seed int64) { c.src.Seed(seed) }

// NewRNG returns a source seeded with seed.
func NewRNG(seed int64) *RNG {
	src := &countSource{src: rand.NewSource(seed).(rand.Source64)}
	return &RNG{r: rand.New(src), src: src, seed: seed}
}

// Seed returns the seed this source was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Draws returns the number of state steps consumed so far — the stream
// position a checkpoint records.
func (g *RNG) Draws() uint64 { return g.src.n }

// Burn advances the source to stream position n (absolute, not
// relative): a restore seeds a fresh RNG and burns it to the
// checkpointed Draws. Burning behind the current position panics — it
// would mean the restored stream silently rewound.
func (g *RNG) Burn(n uint64) {
	if n < g.src.n {
		panic(fmt.Sprintf("sim: RNG Burn(%d) behind current position %d", n, g.src.n))
	}
	for g.src.n < n {
		g.src.n++
		g.src.src.Uint64()
	}
}

// Fork derives an independent child source; use one child per model
// component so adding a component does not perturb the streams of others.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normal sample with the given mean and stddev.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Exp returns an exponential sample with the given mean (not rate).
// A non-positive mean returns 0.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// LogNormal returns a log-normal sample parameterised by the mean and
// coefficient of variation of the resulting distribution.
func (g *RNG) LogNormal(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(g.Normal(mu, math.Sqrt(sigma2)))
}

// Pareto returns a bounded Pareto sample with shape alpha and minimum
// value xm; heavy-tailed service demands use this.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson sample with the given mean, using inversion
// for small means and normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := g.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Jitter returns v multiplied by a uniform factor in [1-frac, 1+frac].
func (g *RNG) Jitter(v, frac float64) float64 {
	return v * g.Uniform(1-frac, 1+frac)
}
