package sim

// PartitionedRNG derives one independent, stable random stream per
// string key. Unlike Fork — whose result depends on how many forks
// preceded it — Stream(key) depends only on (seed, key), so any shard
// layout, and any order of stream creation, observes byte-identical
// randomness for the same entity. This is what lets a sharded
// simulation replay exactly against the 1-shard baseline: per-entity
// noise and fault draws are keyed by entity name, not by the order in
// which shards happened to ask for them.
type PartitionedRNG struct {
	seed uint64
}

// NewPartitionedRNG returns a partitioned source rooted at seed.
func NewPartitionedRNG(seed int64) *PartitionedRNG {
	return &PartitionedRNG{seed: uint64(seed)}
}

// Stream returns a fresh generator positioned at the start of key's
// stream. Streams for distinct keys are statistically independent: the
// key is FNV-1a hashed, mixed with the seed, and finalised through
// splitmix64 so that related keys ("app-1", "app-2") and related seeds
// land in unrelated parts of the generator's state space.
func (p *PartitionedRNG) Stream(key string) *RNG {
	return NewRNG(int64(splitmix64(fnv64a(key) ^ p.seed)))
}

// ShardOf maps key stably onto one of n shards. The mapping depends
// only on (key, n), never on insertion order, so an entity lands on the
// same shard every run.
func ShardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnv64a(key) % uint64(n))
}

func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the finalising mixer from the SplitMix64 generator; it
// is bijective, so distinct hash inputs keep distinct seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
