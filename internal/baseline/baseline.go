// Package baseline implements the comparison policies the EVOLVE
// controller is evaluated against: the Kubernetes-style static allocation
// (user-overprovisioned requests, no autoscaling), a threshold horizontal
// pod autoscaler (HPA) on CPU utilisation, and a percentile-based vertical
// pod autoscaler (VPA). Each implements control.Controller so the harness
// can swap them freely.
package baseline

import (
	"math"
	"sort"

	"evolve/internal/control"
	"evolve/internal/resource"
)

// Static never changes anything: the user's initial requests stand, as in
// a stock Kubernetes deployment without autoscaling. The overprovision
// factor is applied by the harness when building the spec, not here.
type Static struct{}

// StaticFactory returns a control.Factory for the static policy.
func StaticFactory() control.Factory {
	return func(string) control.Controller { return Static{} }
}

// Name implements control.Controller.
func (Static) Name() string { return "k8s-static" }

// Decide implements control.Controller.
func (Static) Decide(obs control.Observation) control.Decision { return control.Hold(obs) }

// HPAConfig parameterises the threshold horizontal autoscaler.
type HPAConfig struct {
	// TargetUtil is the CPU utilisation setpoint (default 0.6, as a
	// typical HPA configuration).
	TargetUtil float64
	// Tolerance suppresses changes when the ratio is within ±Tolerance
	// of 1 (default 0.1, the Kubernetes default).
	Tolerance float64
	// StabilizationWindow is how many recent desired-counts the
	// scale-down path takes the maximum over (default 6 — with 15s
	// control periods this approximates the 5-minute k8s default
	// loosely at experiment time scales).
	StabilizationWindow int
}

// DefaultHPAConfig mirrors a stock HPA setup.
func DefaultHPAConfig() HPAConfig {
	return HPAConfig{TargetUtil: 0.6, Tolerance: 0.1, StabilizationWindow: 6}
}

// HPA is the Kubernetes horizontal pod autoscaler algorithm: desired =
// ceil(current * utilisation/target) on CPU, with tolerance and a
// scale-down stabilisation window. Allocation per replica never changes —
// exactly the single-resource, horizontal-only behaviour the paper's
// controller improves on.
type HPA struct {
	cfg    HPAConfig
	recent []int
}

// NewHPA builds an HPA controller.
func NewHPA(cfg HPAConfig) *HPA {
	if cfg.TargetUtil <= 0 || cfg.TargetUtil > 1 {
		cfg.TargetUtil = 0.6
	}
	if cfg.Tolerance < 0 {
		cfg.Tolerance = 0.1
	}
	if cfg.StabilizationWindow <= 0 {
		cfg.StabilizationWindow = 6
	}
	return &HPA{cfg: cfg}
}

// HPAFactory returns a control.Factory for the HPA policy.
func HPAFactory(cfg HPAConfig) control.Factory {
	return func(string) control.Controller { return NewHPA(cfg) }
}

// Name implements control.Controller.
func (h *HPA) Name() string { return "hpa" }

// Decide implements control.Controller.
func (h *HPA) Decide(obs control.Observation) control.Decision {
	d := control.Hold(obs)
	if obs.ReadyReplicas == 0 || obs.Interval <= 0 {
		return d
	}
	util := obs.Utilisation[resource.CPU]
	ratio := util / h.cfg.TargetUtil
	desired := obs.Replicas
	if math.Abs(ratio-1) > h.cfg.Tolerance {
		desired = int(math.Ceil(float64(obs.ReadyReplicas) * ratio))
		if desired < 1 {
			desired = 1
		}
	}
	// Scale-down stabilisation: never go below the max desired count
	// seen in the recent window.
	h.recent = append(h.recent, desired)
	if len(h.recent) > h.cfg.StabilizationWindow {
		h.recent = h.recent[1:]
	}
	if desired < obs.Replicas {
		for _, r := range h.recent {
			if r > desired {
				desired = r
			}
		}
		if desired > obs.Replicas {
			desired = obs.Replicas
		}
	}
	d.Replicas = desired
	return obs.Limits.Clamp(d)
}

// VPAConfig parameterises the percentile vertical autoscaler.
type VPAConfig struct {
	// Percentile of the usage history used as the recommendation base
	// (default 0.95).
	Percentile float64
	// Margin inflates the recommendation (default 1.15).
	Margin float64
	// History is the number of samples kept (default 48).
	History int
	// MinChange suppresses updates smaller than this fraction (default
	// 0.1): real VPAs avoid restart churn.
	MinChange float64
}

// DefaultVPAConfig mirrors a stock VPA recommender.
func DefaultVPAConfig() VPAConfig {
	return VPAConfig{Percentile: 0.95, Margin: 1.15, History: 48, MinChange: 0.1}
}

// VPA recommends per-replica allocations from a usage-history percentile,
// the strategy of the Kubernetes vertical pod autoscaler. Replica count
// never changes. Reactive by construction: it follows usage, so it only
// ever sees demand the current (possibly throttling) allocation admitted.
type VPA struct {
	cfg  VPAConfig
	hist [resource.NumKinds][]float64
}

// NewVPA builds a VPA controller.
func NewVPA(cfg VPAConfig) *VPA {
	if cfg.Percentile <= 0 || cfg.Percentile > 1 {
		cfg.Percentile = 0.95
	}
	if cfg.Margin < 1 {
		cfg.Margin = 1.15
	}
	if cfg.History <= 0 {
		cfg.History = 48
	}
	if cfg.MinChange < 0 {
		cfg.MinChange = 0.1
	}
	return &VPA{cfg: cfg}
}

// VPAFactory returns a control.Factory for the VPA policy.
func VPAFactory(cfg VPAConfig) control.Factory {
	return func(string) control.Controller { return NewVPA(cfg) }
}

// Name implements control.Controller.
func (v *VPA) Name() string { return "vpa" }

// Decide implements control.Controller.
func (v *VPA) Decide(obs control.Observation) control.Decision {
	d := control.Hold(obs)
	if obs.Interval <= 0 || obs.ReadyReplicas == 0 {
		return d
	}
	for _, k := range resource.Kinds() {
		v.hist[k] = append(v.hist[k], obs.Usage[k])
		if len(v.hist[k]) > v.cfg.History {
			v.hist[k] = v.hist[k][1:]
		}
	}
	if len(v.hist[resource.CPU]) < 3 {
		return d
	}
	var rec resource.Vector
	for _, k := range resource.Kinds() {
		rec[k] = percentile(v.hist[k], v.cfg.Percentile) * v.cfg.Margin
	}
	// Suppress small changes.
	change := 0.0
	for _, k := range resource.Kinds() {
		if obs.Alloc[k] > 0 {
			if c := math.Abs(rec[k]-obs.Alloc[k]) / obs.Alloc[k]; c > change {
				change = c
			}
		}
	}
	if change < v.cfg.MinChange {
		return d
	}
	d.Alloc = rec
	return obs.Limits.Clamp(d)
}

func percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	rank := p * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
