package baseline

import (
	"testing"
	"time"

	"evolve/internal/control"
	"evolve/internal/plo"
	"evolve/internal/resource"
)

func baseObs() control.Observation {
	return control.Observation{
		App:      "svc",
		Interval: 15 * time.Second,
		PLO:      plo.Latency(100 * time.Millisecond),
		SLI:      0.05,
		Replicas: 4, ReadyReplicas: 4,
		Alloc:       resource.New(1000, 1<<30, 50e6, 50e6),
		Usage:       resource.New(600, 700<<20, 10e6, 10e6),
		Utilisation: resource.New(0.6, 0.68, 0.2, 0.2),
		OfferedLoad: 240,
		Throughput:  240,
		Limits: control.Limits{
			MinReplicas: 1, MaxReplicas: 32,
			MinAlloc: resource.New(50, 64<<20, 1e6, 1e6),
			MaxAlloc: resource.New(16000, 64<<30, 1e9, 1e9),
		},
	}
}

func TestStaticNeverChanges(t *testing.T) {
	s := Static{}
	if s.Name() != "k8s-static" {
		t.Error("name wrong")
	}
	obs := baseObs()
	obs.SLI = 10 // catastrophic violation — static still does nothing
	d := s.Decide(obs)
	if d.Replicas != obs.Replicas || d.Alloc != obs.Alloc {
		t.Errorf("static changed something: %+v", d)
	}
	if StaticFactory()("x").Name() != "k8s-static" {
		t.Error("factory wrong")
	}
}

func TestHPAScalesOutOnHighCPU(t *testing.T) {
	h := NewHPA(DefaultHPAConfig())
	if h.Name() != "hpa" {
		t.Error("name wrong")
	}
	obs := baseObs()
	obs.Utilisation[resource.CPU] = 0.9 // ratio 1.5 vs target 0.6
	d := h.Decide(obs)
	if d.Replicas != 6 { // ceil(4 * 0.9/0.6) = 6
		t.Errorf("replicas = %d, want 6", d.Replicas)
	}
	// Allocation untouched.
	if d.Alloc != obs.Alloc {
		t.Error("HPA must not change per-replica allocation")
	}
}

func TestHPAToleranceBand(t *testing.T) {
	h := NewHPA(DefaultHPAConfig())
	obs := baseObs()
	obs.Utilisation[resource.CPU] = 0.63 // ratio 1.05, inside ±0.1
	d := h.Decide(obs)
	if d.Replicas != obs.Replicas {
		t.Errorf("tolerance band ignored: %d", d.Replicas)
	}
}

func TestHPAScaleDownStabilization(t *testing.T) {
	cfg := DefaultHPAConfig()
	cfg.StabilizationWindow = 3
	h := NewHPA(cfg)
	// First: high utilisation history keeps the window maximum high.
	obs := baseObs()
	obs.Utilisation[resource.CPU] = 0.9
	_ = h.Decide(obs)
	// Then load drops sharply: desired would be 1, but the window max
	// (6) holds the count at current.
	obs.Utilisation[resource.CPU] = 0.1
	d := h.Decide(obs)
	if d.Replicas != obs.Replicas {
		t.Errorf("stabilisation failed: %d, want hold at %d", d.Replicas, obs.Replicas)
	}
	// After the window ages out, scale-down proceeds.
	var last control.Decision
	for i := 0; i < 4; i++ {
		last = h.Decide(obs)
	}
	if last.Replicas >= obs.Replicas {
		t.Errorf("never scaled down: %d", last.Replicas)
	}
}

func TestHPAGuards(t *testing.T) {
	h := NewHPA(HPAConfig{}) // all defaults via validation
	obs := baseObs()
	obs.ReadyReplicas = 0
	d := h.Decide(obs)
	if d.Replicas != obs.Replicas {
		t.Error("zero ready replicas should hold")
	}
	obs = baseObs()
	obs.Interval = 0
	if got := h.Decide(obs); got.Replicas != obs.Replicas {
		t.Error("zero interval should hold")
	}
	if HPAFactory(DefaultHPAConfig())("x").Name() != "hpa" {
		t.Error("factory wrong")
	}
}

func TestVPAFollowsUsagePercentile(t *testing.T) {
	v := NewVPA(DefaultVPAConfig())
	if v.Name() != "vpa" {
		t.Error("name wrong")
	}
	obs := baseObs()
	var d control.Decision
	for i := 0; i < 10; i++ {
		d = v.Decide(obs)
	}
	// Recommendation ≈ usage * margin = 600 * 1.15 = 690.
	if d.Alloc[resource.CPU] < 600 || d.Alloc[resource.CPU] > 800 {
		t.Errorf("vpa cpu = %v, want ≈690", d.Alloc[resource.CPU])
	}
	// Replicas untouched.
	if d.Replicas != obs.Replicas {
		t.Error("VPA must not change replicas")
	}
}

func TestVPAMinChangeSuppression(t *testing.T) {
	v := NewVPA(DefaultVPAConfig())
	obs := baseObs()
	// Usage close to current allocation: recommendation within 10%.
	obs.Usage = resource.New(900, 950<<20, 45e6, 45e6)
	var d control.Decision
	for i := 0; i < 10; i++ {
		d = v.Decide(obs)
	}
	if d.Alloc != obs.Alloc {
		t.Errorf("small change should be suppressed: %v", d.Alloc)
	}
}

func TestVPANeedsHistory(t *testing.T) {
	v := NewVPA(DefaultVPAConfig())
	obs := baseObs()
	d := v.Decide(obs) // first sample only
	if d.Alloc != obs.Alloc {
		t.Error("VPA with <3 samples must hold")
	}
	if VPAFactory(DefaultVPAConfig())("x").Name() != "vpa" {
		t.Error("factory wrong")
	}
}

func TestVPAConfigValidationDefaults(t *testing.T) {
	v := NewVPA(VPAConfig{Percentile: -1, Margin: 0.5, History: -5, MinChange: -1})
	if v.cfg.Percentile != 0.95 || v.cfg.Margin != 1.15 || v.cfg.History != 48 || v.cfg.MinChange != 0.1 {
		t.Errorf("defaults not applied: %+v", v.cfg)
	}
	h := NewHPA(HPAConfig{TargetUtil: 7})
	if h.cfg.TargetUtil != 0.6 {
		t.Errorf("HPA default target: %v", h.cfg.TargetUtil)
	}
}

func TestPercentileHelper(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5}
	if p := percentile(vs, 0.5); p != 3 {
		t.Errorf("p50 = %v", p)
	}
	if p := percentile(vs, 1); p != 5 {
		t.Errorf("p100 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty = %v", p)
	}
}
