package baseline

import (
	"fmt"

	"evolve/internal/ckpt"
)

// Checkpoint serialisation for the stateful baselines (Static is
// stateless and needs none).

// CkptSave implements control.StateSaver.
func (h *HPA) CkptSave(w *ckpt.Writer) {
	w.Int(len(h.recent))
	for _, r := range h.recent {
		w.Int(r)
	}
}

// CkptLoad implements control.StateSaver.
func (h *HPA) CkptLoad(r *ckpt.Reader) error {
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n < 0 || n > 1<<20 {
		return fmt.Errorf("baseline: ckpt: HPA window length %d out of range", n)
	}
	h.recent = make([]int, n)
	for i := range h.recent {
		h.recent[i] = r.Int()
	}
	return r.Err()
}

// CkptSave implements control.StateSaver.
func (v *VPA) CkptSave(w *ckpt.Writer) {
	for _, hist := range v.hist {
		w.Int(len(hist))
		for _, x := range hist {
			w.F64(x)
		}
	}
}

// CkptLoad implements control.StateSaver.
func (v *VPA) CkptLoad(r *ckpt.Reader) error {
	for k := range v.hist {
		n := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if n < 0 || n > 1<<20 {
			return fmt.Errorf("baseline: ckpt: VPA history length %d out of range", n)
		}
		v.hist[k] = make([]float64, n)
		for i := range v.hist[k] {
			v.hist[k][i] = r.F64()
		}
	}
	return r.Err()
}
