// Package par provides the process-wide bounded worker pool shared by
// every parallel fan-out in the repository: the scheduler's score
// sharding (internal/sched) and the sharded simulation kernel's
// same-timestamp shard ticking (internal/sim). Centralising the pool
// keeps the goroutine count bounded by GOMAXPROCS no matter how many
// simulations or schedulers a process runs, and avoids an import cycle
// between sim and sched.
package par

import (
	"runtime"
	"sync"
)

// Job is one unit of work submitted to the shared pool. Implementations
// should be pointer types so the interface conversion at the Submit call
// site does not allocate; completion tracking (typically a
// sync.WaitGroup carried inside the job) is the caller's responsibility.
type Job interface{ Run() }

// pool is started lazily on first Submit and sized to GOMAXPROCS at
// that moment. Workers never exit; an idle pool costs only parked
// goroutines.
var pool struct {
	once sync.Once
	jobs chan Job
}

func start() {
	n := runtime.GOMAXPROCS(0)
	pool.jobs = make(chan Job, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for j := range pool.jobs {
				j.Run()
			}
		}()
	}
}

// Submit enqueues j on the shared pool, starting the workers on first
// use. Submit blocks only when the job channel is full, which bounds
// the queue depth of a runaway producer.
func Submit(j Job) {
	pool.once.Do(start)
	pool.jobs <- j
}
