// Package cost prices the cluster: what the allocated resources would
// bill at cloud on-demand rates, and what the nodes draw in energy. It
// turns the utilisation gap between policies into the currencies
// operators actually argue about — dollars and watts — and powers the
// cost/energy comparison experiment (Table 5).
//
// Pricing follows the usual cloud decomposition: a per-resource rate
// (core-hours, GiB-hours, bandwidth) applied to *allocations*, because
// that is what reservations bill for regardless of use. Energy follows
// the standard linear server model: idle floor plus a utilisation-
// proportional dynamic part, applied to *usage*, because that is what
// draws power.
package cost

import (
	"fmt"
	"time"

	"evolve/internal/metrics"
	"evolve/internal/resource"
)

// Pricing is the per-hour rate card for one resource unit.
type Pricing struct {
	// CPUCoreHour is the price of one core (1000 millicores) for an hour.
	CPUCoreHour float64
	// MemGiBHour is the price of one GiB-hour.
	MemGiBHour float64
	// DiskMBpsHour is the price of 1 MB/s of provisioned disk bandwidth
	// for an hour (IOPS-provisioned volumes bill like this).
	DiskMBpsHour float64
	// NetMBpsHour is the price of 1 MB/s of guaranteed network bandwidth
	// for an hour.
	NetMBpsHour float64
}

// DefaultPricing approximates public-cloud on-demand rates (USD).
func DefaultPricing() Pricing {
	return Pricing{
		CPUCoreHour:  0.040,
		MemGiBHour:   0.005,
		DiskMBpsHour: 0.0008,
		NetMBpsHour:  0.0005,
	}
}

// Validate reports rate-card errors.
func (p Pricing) Validate() error {
	if p.CPUCoreHour < 0 || p.MemGiBHour < 0 || p.DiskMBpsHour < 0 || p.NetMBpsHour < 0 {
		return fmt.Errorf("cost: negative rates %+v", p)
	}
	return nil
}

// HourlyRate prices an allocation vector per hour.
func (p Pricing) HourlyRate(alloc resource.Vector) float64 {
	return alloc[resource.CPU]/1000*p.CPUCoreHour +
		alloc[resource.Memory]/float64(1<<30)*p.MemGiBHour +
		alloc[resource.DiskIO]/1e6*p.DiskMBpsHour +
		alloc[resource.NetIO]/1e6*p.NetMBpsHour
}

// Cost integrates a step series of allocation vectors over a window into
// a bill. The series must be sampled at identical timestamps per kind, as
// the cluster's "cluster/allocated/<kind>" fraction series are; capacity
// converts fractions back to absolute vectors.
func (p Pricing) Cost(met *metrics.Registry, capacity resource.Vector, from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	var mean resource.Vector
	for _, k := range resource.Kinds() {
		frac := met.Series("cluster/allocated/"+k.String()).TimeWeightedMean(from, to)
		mean[k] = frac * capacity[k]
	}
	hours := (to - from).Hours()
	return p.HourlyRate(mean) * hours
}

// PowerModel is the standard linear server power model.
type PowerModel struct {
	// IdleWatts is drawn by a powered-on node regardless of load.
	IdleWatts float64
	// DynamicWatts is the additional draw at 100% CPU utilisation.
	DynamicWatts float64
	// SleepWatts is drawn by a node that could be suspended because it
	// hosts nothing (binpack consolidation enables this).
	SleepWatts float64
}

// DefaultPowerModel approximates a 2-socket 16-core server.
func DefaultPowerModel() PowerModel {
	return PowerModel{IdleWatts: 110, DynamicWatts: 160, SleepWatts: 8}
}

// NodePower returns the draw of one node at the given CPU utilisation
// (0..1); empty && consolidable nodes report the sleep draw.
func (m PowerModel) NodePower(cpuUtil float64, empty bool) float64 {
	if empty {
		return m.SleepWatts
	}
	if cpuUtil < 0 {
		cpuUtil = 0
	}
	if cpuUtil > 1 {
		cpuUtil = 1
	}
	return m.IdleWatts + m.DynamicWatts*cpuUtil
}

// Energy integrates cluster energy over a window into watt-hours, from
// the per-node usage series the cluster records. nodes is the node count;
// the cluster-level usage fraction spreads across them, and the
// emptiness fraction comes from the consolidation series when present.
//
// This is deliberately a coarse model: it answers "how much does packing
// or reclaiming change the power bill", not "what does this PDU read".
func (m PowerModel) Energy(met *metrics.Registry, nodes int, from, to time.Duration) float64 {
	if to <= from || nodes <= 0 {
		return 0
	}
	util := met.Series("cluster/usage/cpu").TimeWeightedMean(from, to)
	emptyFrac := 0.0
	if met.HasSeries("cluster/empty-nodes") {
		emptyFrac = met.Series("cluster/empty-nodes").TimeWeightedMean(from, to) / float64(nodes)
	}
	if emptyFrac < 0 {
		emptyFrac = 0
	}
	if emptyFrac > 1 {
		emptyFrac = 1
	}
	// Busy nodes share the whole cluster's used CPU.
	busyNodes := float64(nodes) * (1 - emptyFrac)
	var perNodeUtil float64
	if busyNodes > 0 {
		perNodeUtil = util * float64(nodes) / busyNodes
	}
	if perNodeUtil > 1 {
		perNodeUtil = 1
	}
	hours := (to - from).Hours()
	watts := busyNodes*m.NodePower(perNodeUtil, false) +
		float64(nodes)*emptyFrac*m.NodePower(0, true)
	return watts * hours
}

// Summary bundles the two bills for one run.
type Summary struct {
	Dollars  float64
	WattHour float64
}

// Summarise prices a run window with both models.
func Summarise(met *metrics.Registry, capacity resource.Vector, nodes int, from, to time.Duration, p Pricing, pm PowerModel) Summary {
	return Summary{
		Dollars:  p.Cost(met, capacity, from, to),
		WattHour: pm.Energy(met, nodes, from, to),
	}
}
