package cost

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"evolve/internal/metrics"
	"evolve/internal/resource"
)

func TestPricingValidate(t *testing.T) {
	if err := DefaultPricing().Validate(); err != nil {
		t.Errorf("default pricing invalid: %v", err)
	}
	bad := DefaultPricing()
	bad.CPUCoreHour = -1
	if bad.Validate() == nil {
		t.Error("negative rate should fail")
	}
}

func TestHourlyRate(t *testing.T) {
	p := Pricing{CPUCoreHour: 0.04, MemGiBHour: 0.005, DiskMBpsHour: 0.0008, NetMBpsHour: 0.0005}
	// 4 cores, 8 GiB, 100 MB/s disk, 200 MB/s net.
	alloc := resource.New(4000, 8<<30, 100e6, 200e6)
	want := 4*0.04 + 8*0.005 + 100*0.0008 + 200*0.0005
	if got := p.HourlyRate(alloc); math.Abs(got-want) > 1e-9 {
		t.Errorf("rate = %v, want %v", got, want)
	}
	if p.HourlyRate(resource.Vector{}) != 0 {
		t.Error("zero allocation should be free")
	}
}

func fillRegistry(nodes int, allocFrac, usageFrac, emptyNodes float64, span time.Duration) *metrics.Registry {
	met := metrics.NewRegistry()
	for _, k := range resource.Kinds() {
		met.Series("cluster/allocated/"+k.String()).Add(0, allocFrac)
		met.Series("cluster/usage/"+k.String()).Add(0, usageFrac)
	}
	met.Series("cluster/empty-nodes").Add(0, emptyNodes)
	// Close the step at the end of the span.
	for _, k := range resource.Kinds() {
		met.Series("cluster/allocated/"+k.String()).Add(span, allocFrac)
		met.Series("cluster/usage/"+k.String()).Add(span, usageFrac)
	}
	met.Series("cluster/empty-nodes").Add(span, emptyNodes)
	return met
}

func TestCostIntegratesAllocation(t *testing.T) {
	capacity := resource.New(16000, 64<<30, 1e9, 2e9)
	met := fillRegistry(1, 0.5, 0.3, 0, 2*time.Hour)
	p := DefaultPricing()
	got := p.Cost(met, capacity, 0, 2*time.Hour)
	want := p.HourlyRate(capacity.Scale(0.5)) * 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", got, want)
	}
	if p.Cost(met, capacity, time.Hour, time.Hour) != 0 {
		t.Error("empty window should be free")
	}
}

func TestCostScalesWithAllocation(t *testing.T) {
	capacity := resource.New(16000, 64<<30, 1e9, 2e9)
	p := DefaultPricing()
	lo := p.Cost(fillRegistry(1, 0.25, 0.2, 0, time.Hour), capacity, 0, time.Hour)
	hi := p.Cost(fillRegistry(1, 0.75, 0.2, 0, time.Hour), capacity, 0, time.Hour)
	if math.Abs(hi/lo-3) > 1e-9 {
		t.Errorf("cost ratio = %v, want 3", hi/lo)
	}
}

func TestNodePower(t *testing.T) {
	m := DefaultPowerModel()
	if got := m.NodePower(0, false); got != m.IdleWatts {
		t.Errorf("idle power = %v", got)
	}
	if got := m.NodePower(1, false); got != m.IdleWatts+m.DynamicWatts {
		t.Errorf("full power = %v", got)
	}
	if got := m.NodePower(0.5, false); got != m.IdleWatts+0.5*m.DynamicWatts {
		t.Errorf("half power = %v", got)
	}
	if got := m.NodePower(0, true); got != m.SleepWatts {
		t.Errorf("sleep power = %v", got)
	}
	// Clamping.
	if m.NodePower(-1, false) != m.IdleWatts || m.NodePower(5, false) != m.IdleWatts+m.DynamicWatts {
		t.Error("utilisation not clamped")
	}
}

func TestEnergyAccountsConsolidation(t *testing.T) {
	m := DefaultPowerModel()
	// Same total usage, but one cluster has 2 of 4 nodes empty
	// (consolidated): its energy must be lower.
	spreadOut := m.Energy(fillRegistry(4, 0.5, 0.2, 0, time.Hour), 4, 0, time.Hour)
	packed := m.Energy(fillRegistry(4, 0.5, 0.2, 2, time.Hour), 4, 0, time.Hour)
	if packed >= spreadOut {
		t.Errorf("consolidated energy %v >= spread %v", packed, spreadOut)
	}
	// Empty window and degenerate node count.
	if m.Energy(fillRegistry(1, 0.5, 0.2, 0, time.Hour), 0, 0, time.Hour) != 0 {
		t.Error("zero nodes should be zero energy")
	}
}

func TestEnergyMagnitude(t *testing.T) {
	m := DefaultPowerModel()
	// 4 busy nodes at 50% for one hour: 4 × (110 + 80) = 760 Wh.
	got := m.Energy(fillRegistry(4, 0.8, 0.5, 0, time.Hour), 4, 0, time.Hour)
	if math.Abs(got-760) > 1 {
		t.Errorf("energy = %v Wh, want ≈760", got)
	}
}

func TestSummarise(t *testing.T) {
	capacity := resource.New(16000, 64<<30, 1e9, 2e9)
	met := fillRegistry(4, 0.5, 0.3, 1, time.Hour)
	s := Summarise(met, capacity, 4, 0, time.Hour, DefaultPricing(), DefaultPowerModel())
	if s.Dollars <= 0 || s.WattHour <= 0 {
		t.Errorf("summary: %+v", s)
	}
}

// Property: cost is monotone in every rate and in the allocation.
func TestHourlyRateMonotoneProperty(t *testing.T) {
	p := DefaultPricing()
	prop := func(a, b uint16) bool {
		lo := resource.New(float64(a%1000), float64(a%1000)*1e6, float64(a%1000)*1e3, float64(a%1000)*1e3)
		hi := lo.Add(resource.New(float64(b%1000), float64(b%1000)*1e6, float64(b%1000)*1e3, float64(b%1000)*1e3))
		return p.HourlyRate(hi) >= p.HourlyRate(lo)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
