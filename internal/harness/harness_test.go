package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"evolve/internal/baseline"
	"evolve/internal/cluster"
	"evolve/internal/core"
	"evolve/internal/metrics"
	"evolve/internal/resource"
	"evolve/internal/workload"
)

// tinyScenario is a fast scenario for harness-mechanics tests.
func tinyScenario() Scenario {
	return Scenario{
		Name:            "tiny",
		Seed:            7,
		Nodes:           3,
		NodeCapacity:    StandardNode(),
		Duration:        20 * time.Minute,
		Warmup:          2 * time.Minute,
		ControlInterval: 15 * time.Second,
		Apps: []AppLoad{{
			Spec:    workload.Service(workload.Web, "web", 200, 2),
			Pattern: workload.Constant(200),
		}},
	}
}

func TestScenarioValidate(t *testing.T) {
	good := tinyScenario()
	if err := good.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	cases := []func(*Scenario){
		func(s *Scenario) { s.Nodes = 0 },
		func(s *Scenario) { s.NodeCapacity = resource.Vector{} },
		func(s *Scenario) { s.Duration = 0 },
		func(s *Scenario) { s.Warmup = s.Duration },
		func(s *Scenario) { s.Apps = nil },
		func(s *Scenario) { s.Apps[0].Spec.Name = "" },
		func(s *Scenario) {
			s.Apps[0].Pattern = workload.Func(func(time.Duration) float64 { return -1 })
		},
	}
	for i, mutate := range cases {
		sc := tinyScenario()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestRunProducesResult(t *testing.T) {
	res, err := Run(tinyScenario(), Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "evolve" || res.Scenario != "tiny" {
		t.Errorf("labels: %+v", res)
	}
	if len(res.Apps) != 1 || res.Apps[0].App != "web" {
		t.Fatalf("apps: %+v", res.Apps)
	}
	a := res.Apps[0]
	if a.MeanSLI <= 0 || a.MeanReplicas < 1 {
		t.Errorf("app result: %+v", a)
	}
	if a.MeanAlloc[resource.CPU] <= 0 {
		t.Errorf("mean alloc: %v", a.MeanAlloc)
	}
	if res.AllocFraction[resource.CPU] <= 0 || res.UsageOfAlloc <= 0 {
		t.Errorf("cluster fractions: %+v", res)
	}
	if res.Binds == 0 {
		t.Error("no binds counted")
	}
	if res.Cluster == nil {
		t.Error("cluster not attached")
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	p := Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())}
	a, err := Run(tinyScenario(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyScenario(), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Apps[0].MeanSLI != b.Apps[0].MeanSLI || a.AllocFraction != b.AllocFraction {
		t.Error("same seed must reproduce identical results")
	}
}

func TestRunOverprovisionScalesInitialAlloc(t *testing.T) {
	sc := tinyScenario()
	base, err := Run(sc, Policy{Name: "s1", Factory: baseline.StaticFactory(), Overprovision: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(sc, Policy{Name: "s2", Factory: baseline.StaticFactory(), Overprovision: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := big.Apps[0].MeanAlloc[resource.CPU] / base.Apps[0].MeanAlloc[resource.CPU]
	if r < 1.8 || r > 2.2 {
		t.Errorf("overprovision ratio = %v, want ≈2", r)
	}
}

func TestRunWithBatchAndHPC(t *testing.T) {
	sc := tinyScenario()
	sc.Duration = 40 * time.Minute
	sc.BatchJobs = BatchStream(2, 5*time.Minute, 0.5)
	sc.HPCJobs = HPCStream(2, 6*time.Minute, 2)
	res, err := Run(sc, Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchCompleted != 2 {
		t.Errorf("batch completed = %d, want 2", res.BatchCompleted)
	}
	if res.HPCCompleted != 2 {
		t.Errorf("hpc completed = %d, want 2", res.HPCCompleted)
	}
	if res.BatchMakespan <= 0 || res.HPCMeanRuntime <= 0 {
		t.Errorf("durations: batch=%v hpc=%v", res.BatchMakespan, res.HPCMeanRuntime)
	}
}

func TestCloudAppsValid(t *testing.T) {
	for _, a := range CloudApps(1) {
		if err := a.Spec.Validate(); err != nil {
			t.Errorf("app %s: %v", a.Spec.Name, err)
		}
		if err := workload.Validate(a.Pattern, 2*time.Hour); err != nil {
			t.Errorf("pattern %s: %v", a.Spec.Name, err)
		}
	}
	for _, mix := range Mixes() {
		if err := BuildScenario(mix, 1).Validate(); err != nil {
			t.Errorf("mix %s: %v", mix, err)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "Table X",
		Title:   "test",
		Headers: []string{"a", "b", "c"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", 1.23456, uint64(7))
	tab.AddRow("longer-cell", 12345.6, 0)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table X — test") || !strings.Contains(out, "note: a note") {
		t.Errorf("render output:\n%s", out)
	}
	if !strings.Contains(out, "1.235") || !strings.Contains(out, "12346") {
		t.Errorf("number formatting:\n%s", out)
	}
	buf.Reset()
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,b,c" {
		t.Errorf("csv output:\n%s", buf.String())
	}
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{ID: "Figure X", Title: "test", XLabel: "t", Columns: []string{"y1", "y2"}}
	for i := 0; i < 10; i++ {
		if err := f.AddPoint(float64(i), float64(i), float64(10-i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.AddPoint(11, 1); err == nil {
		t.Error("wrong arity should fail")
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "y1") || !strings.Contains(buf.String(), "min=") {
		t.Errorf("render:\n%s", buf.String())
	}
	buf.Reset()
	if err := f.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 11 || lines[0] != "t,y1,y2" {
		t.Errorf("csv:\n%s", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil, 10); s != "" {
		t.Errorf("empty sparkline = %q", s)
	}
	s := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Errorf("sparkline length = %d", len([]rune(s)))
	}
	// Constant series: all same rune, no panic on zero range.
	s = sparkline([]float64{5, 5, 5, 5}, 4)
	runes := []rune(s)
	for _, r := range runes {
		if r != runes[0] {
			t.Error("constant series should be flat")
		}
	}
}

func TestMeasureOverheadSmoke(t *testing.T) {
	d := MeasureDecisionLatency(5, 50)
	if d <= 0 || d > time.Millisecond {
		t.Errorf("decision latency = %v", d)
	}
	p := MeasureScheduleLatency(10, 100)
	if p <= 0 || p > time.Millisecond {
		t.Errorf("placement latency = %v", p)
	}
	if MeasureDecisionLatency(0, 0) != 0 {
		t.Error("zero work should be 0")
	}
}

// TestHeadlineShape asserts the qualitative reproduction targets of the
// Table 1 experiment on the cloud mix: the adaptive multi-resource
// controller must beat under-provisioned static requests on violations by
// a large factor while using its allocation more efficiently than both
// static variants and the HPA.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full mix run")
	}
	sc := BuildScenario(MixCloud, 7)
	results := make(map[string]*Result)
	for _, pol := range StandardPolicies() {
		res, err := Run(sc, pol)
		if err != nil {
			t.Fatal(err)
		}
		results[pol.Name] = res
	}
	ev, st2, st3 := results["evolve"], results["static-2x"], results["static-3x"]
	hpa := results["hpa"]

	if v := ev.OverallViolation(); v > 0.02 {
		t.Errorf("evolve violations = %.4f, want < 2%%", v)
	}
	if ratio := st2.OverallViolation() / maxFloat(ev.OverallViolation(), 1e-6); ratio < 7.4 {
		t.Errorf("violation improvement vs static-2x = %.1fx, want > 7.4x", ratio)
	}
	if ev.UsageOfAlloc <= st3.UsageOfAlloc*1.3 {
		t.Errorf("efficiency: evolve %.3f vs static-3x %.3f, want >1.3x", ev.UsageOfAlloc, st3.UsageOfAlloc)
	}
	if ev.UsageOfAlloc <= hpa.UsageOfAlloc {
		t.Errorf("efficiency: evolve %.3f vs hpa %.3f", ev.UsageOfAlloc, hpa.UsageOfAlloc)
	}
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestRunWithHooksInjectsFailure(t *testing.T) {
	sc := tinyScenario()
	sc.Duration = 30 * time.Minute
	failed := false
	res, err := RunWithHooks(sc, Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())},
		[]Hook{{At: 10 * time.Minute, Do: func(c *cluster.Cluster) {
			failed = true
			if err := c.FailNode("node-0"); err != nil {
				t.Error(err)
			}
		}}})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("hook did not run")
	}
	if res.Cluster.Metrics().Counter("nodes/failures").Value() != 1 {
		t.Error("failure not recorded")
	}
}

func TestResultCarriesEconomics(t *testing.T) {
	res, err := Run(tinyScenario(), Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dollars <= 0 || res.WattHour <= 0 {
		t.Errorf("economics: $%v %vWh", res.Dollars, res.WattHour)
	}
	// Double the static allocation must cost measurably more.
	cheap, err := Run(tinyScenario(), Policy{Name: "s1", Factory: baseline.StaticFactory(), Overprovision: 1})
	if err != nil {
		t.Fatal(err)
	}
	dear, err := Run(tinyScenario(), Policy{Name: "s2", Factory: baseline.StaticFactory(), Overprovision: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dear.Dollars <= cheap.Dollars {
		t.Errorf("bill not monotone in allocation: %v vs %v", dear.Dollars, cheap.Dollars)
	}
}

func TestRecoveryStats(t *testing.T) {
	mk := func(vals ...float64) []metrics.Sample {
		out := make([]metrics.Sample, len(vals))
		for i, v := range vals {
			out[i] = metrics.Sample{At: time.Duration(i) * time.Minute, Value: v}
		}
		return out
	}
	// Pre-failure level 3; dips at minute 5, back at minute 7.
	ready := mk(3, 3, 3, 3, 3, 2, 2, 3, 3)
	if d := recoveryStats(ready, 4*time.Minute+30*time.Second); d != 2*time.Minute+30*time.Second {
		t.Errorf("recovery = %v", d)
	}
	// Never recovers: reports span to the end.
	ready = mk(3, 3, 2, 2, 2)
	if d := recoveryStats(ready, time.Minute+30*time.Second); d != 2*time.Minute+30*time.Second {
		t.Errorf("no-recovery span = %v", d)
	}
	if recoveryStats(nil, time.Minute) != 0 {
		t.Error("empty series")
	}
}

func TestFigure9ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run")
	}
	fig, err := Figure9(NewRunner(0), 9)
	if err != nil {
		t.Fatal(err)
	}
	// At the largest startup delay, the horizontal-only policy must
	// violate several times more than the vertical-first controller.
	last := len(fig.X) - 1
	ev, hpa := fig.Series[0][last], fig.Series[1][last]
	if hpa < ev*2 {
		t.Errorf("at %vs delay: hpa %.2f%% vs evolve %.2f%%; expected hpa >= 2x", fig.X[last], hpa, ev)
	}
	// HPA must degrade with delay (last point worse than first).
	if fig.Series[1][last] <= fig.Series[1][0] {
		t.Errorf("hpa does not degrade with startup delay: %v", fig.Series[1])
	}
}

// TestTable6ConvergenceShape asserts the thesis claim on a fresh seed:
// sharing beats static silos on batch/HPC outcomes without hurting the
// services.
func TestTable6ConvergenceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full run")
	}
	tab, err := Table6(NewRunner(0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[col], err)
		}
		return v
	}
	part, shared := tab.Rows[0], tab.Rows[1]
	if parse(shared, 2) >= parse(part, 2) && parse(part, 2) > 1 {
		t.Errorf("shared hpc wait %s >= partitioned %s", shared[2], part[2])
	}
	if parse(shared, 4) >= parse(part, 4) {
		t.Errorf("shared batch makespan %s >= partitioned %s", shared[4], part[4])
	}
	// Service compliance must not be sacrificed (within 1.5 points).
	if parse(shared, 1) > parse(part, 1)+1.5 {
		t.Errorf("sharing hurt services: %s vs %s", shared[1], part[1])
	}
}

func TestFigure8RecoversWithinOneTickWindow(t *testing.T) {
	fig, err := Figure8(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) == 0 {
		t.Fatal("empty figure")
	}
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "recover") {
			found = true
		}
	}
	if !found {
		t.Error("missing recovery note")
	}
}
