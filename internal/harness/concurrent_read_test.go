package harness

import (
	"sync/atomic"
	"testing"
	"time"

	"evolve/internal/obs"
)

// TestConcurrentTraceReadersDuringShardedRun is the -race gate for the
// live-observer story: an HTTP dashboard polling /debug/trace, /debug/
// spans and the latency histograms is, at the tracer layer, concurrent
// Snapshot/SpanSnapshot/LatencySnapshot calls racing the RecordBatch
// flushes the sharded tick performs after every barrier. The run's
// results must also be unaffected by being observed: the fingerprints
// must match an unobserved run of the same scenario.
func TestConcurrentTraceReadersDuringShardedRun(t *testing.T) {
	sc := determinismScenario(77, chaosEverything)
	sc.Shards = 4
	sc.ShardWorkers = 4
	wantReport, wantTrace, wantSpans := runFingerprint(t, sc)

	tr := obs.New(1 << 15)
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			tr.Snapshot(obs.Filter{Kind: "sched"})
			tr.SpanSnapshot(obs.SpanFilter{Kind: "lifecycle"})
			tr.LatencySnapshot()
			_ = tr.Dropped() + tr.SpansDropped()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	// Same scenario, now with a reader attached. Sinks stay detached —
	// a sink would serialise writes anyway; the ring is the raced state.
	res, err := runScenario(sc, StandardPolicies()[0], nil, tr)
	stop.Store(true)
	<-done
	if err != nil {
		t.Fatalf("observed run: %v", err)
	}
	if res == nil || tr.Events() == 0 || tr.Spans() == 0 {
		t.Fatalf("observed run recorded %d events / %d spans", tr.Events(), tr.Spans())
	}

	// Observation must not perturb the run: re-fingerprint with sinks.
	gotReport, gotTrace, gotSpans := runFingerprint(t, sc)
	if gotReport != wantReport {
		t.Error("observed-run scenario no longer reproduces the baseline Report")
	}
	if gotTrace != wantTrace || gotSpans != wantSpans {
		t.Error("observed-run scenario no longer reproduces the baseline trace/span streams")
	}
}
