package harness

import (
	"fmt"
	"time"

	"evolve/internal/baseline"
	"evolve/internal/chaos"
	"evolve/internal/core"
	"evolve/internal/workload"
)

// chaosBase is the scenario under the chaos table: one web service on a
// small cluster, long enough to contain the node-kill window (30m–45m)
// plus a recovery tail. The load climbs and falls twice over the run,
// so the controller has to keep acting — which is what makes actuation
// and sensor faults consequential: a rejected scale-up on a rising
// flank costs violations, a frozen window at a falling one wastes
// allocation.
func chaosBase(seed int64) Scenario {
	return Scenario{
		Name:            "chaos",
		Seed:            seed,
		Nodes:           4,
		NodeCapacity:    StandardNode(),
		Duration:        75 * time.Minute,
		Warmup:          10 * time.Minute,
		ControlInterval: 15 * time.Second,
		Apps: []AppLoad{{
			Spec:    workload.Service(workload.Web, "web", 600, 3),
			Pattern: workload.Diurnal{Trough: 500, Peak: 1800, Period: 40 * time.Minute},
		}},
	}
}

// chaosVariants are the fault plans the table sweeps: the named chaos
// profiles, a total sensor blackout (the plan that forces the loop
// through its blind → degraded → recovered cycle), and the fault-free
// reference row each ratio is computed against.
var chaosVariants = []struct {
	name, plan string
}{
	{"fault-free", ""},
	{"node-kill", "node-kill"},
	{"sensor-dropout", "sensor-dropout"},
	{"sensor-blackout", "metric-drop@30m-45m:p=1"},
	{"actuation-flake", "actuation-flake"},
	{"mixed", "mixed"},
}

// chaosPolicies: EVOLVE against the two interesting baselines — HPA
// (reactive, no degraded mode) and static-3x (open loop; immune to
// sensor faults because it never looks at a sensor).
func chaosPolicies() []Policy {
	return []Policy{
		{Name: "evolve", Factory: core.Factory(core.DefaultConfig())},
		{Name: "hpa", Factory: hpaPolicy()},
		{Name: "static-3x", Factory: baseline.StaticFactory(), Overprovision: 3.0},
	}
}

// crashInstant returns the From of the plan's first node-crash clause,
// or -1 if the plan has none.
func crashInstant(plan string) time.Duration {
	if plan == "" {
		return -1
	}
	p, err := chaos.Parse(plan)
	if err != nil {
		return -1
	}
	for _, f := range p.Faults {
		if f.Kind == chaos.NodeCrash {
			return f.From
		}
	}
	return -1
}

// Table7 is the robustness table: each chaos profile crossed with the
// policies, reporting the violation rate (and its ratio to the same
// policy's fault-free run), how long the control loop spent degraded,
// the retry/abandon traffic on the actuation path, the sensor samples
// lost, and — for profiles that kill a node — the reconvergence time of
// the ready-replica count.
func Table7(r *Runner, seed int64) (*Table, error) {
	r = ensureRunner(r)
	t := &Table{
		ID:    "Table 7",
		Title: "Robustness under injected faults (75m diurnal web service; seeded chaos profiles)",
		Headers: []string{
			"chaos", "policy", "violations %", "vs fault-free",
			"degraded periods", "retries", "samples lost", "recovery (s)",
			"sched p95 (s)", "ready p95 (s)",
		},
		Notes: []string{
			"samples lost = sensor samples dropped + frozen substitutes; ground-truth statistics are unaffected",
			"recovery = time for ready replicas to regain their pre-crash level after the node kill",
			"static-3x never reads a sensor, so metric faults cannot touch it; it pays for that immunity in Table 5",
			"sched/ready p95 = bind-time latency histograms: pending-to-bound wait and created-to-ready time (faults re-queue replicas, stretching both)",
		},
	}
	pols := chaosPolicies()
	var jobs []RunJob
	for _, v := range chaosVariants {
		sc := chaosBase(seed)
		sc.Name = "chaos-" + v.name
		sc.Chaos = v.plan
		for _, pol := range pols {
			jobs = append(jobs, RunJob{Scenario: sc, Policy: pol})
		}
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("table7 %w", err)
	}
	faultFree := make(map[string]float64) // policy → fault-free violation
	idx := 0
	for _, v := range chaosVariants {
		failAt := crashInstant(v.plan)
		for _, pol := range pols {
			res := runs[idx]
			idx++
			viol := res.OverallViolation()
			rel := "-"
			if v.plan == "" {
				faultFree[pol.Name] = viol
			} else if base := faultFree[pol.Name]; base > 1e-9 {
				rel = fmt.Sprintf("%.2fx", viol/base)
			} else if viol <= 1e-9 {
				rel = "1.00x"
			}
			recovery := "-"
			if failAt >= 0 {
				d := recoveryStats(seriesPoints(res.Cluster, "app/web/ready"), failAt)
				recovery = fmt.Sprintf("%.0f", d.Seconds())
			}
			t.AddRow(v.name, pol.Name, viol*100, rel,
				res.DegradedPeriods, res.Retries,
				res.SamplesDropped+res.SamplesStale, recovery,
				res.SchedP95, res.ReadyP95)
		}
	}
	return t, nil
}
