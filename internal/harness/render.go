package harness

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a rendered experiment table.
type Table struct {
	ID      string // e.g. "Table 1"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are stringified with sensible precision.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		row[i] = formatCell(v)
	}
	t.Rows = append(t.Rows, row)
}

func formatCell(v interface{}) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		switch {
		case x == 0:
			return "0"
		case absf(x) >= 1000:
			return strconv.FormatFloat(x, 'f', 0, 64)
		case absf(x) >= 10:
			return strconv.FormatFloat(x, 'f', 1, 64)
		case absf(x) >= 0.01:
			return strconv.FormatFloat(x, 'f', 3, 64)
		default:
			return strconv.FormatFloat(x, 'g', 3, 64)
		}
	case int:
		return strconv.Itoa(x)
	case uint64:
		return strconv.FormatUint(x, 10)
	default:
		return fmt.Sprint(v)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render writes an aligned ASCII table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (headers + rows, no notes).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Figure is a rendered experiment figure: an x column plus one column per
// series, with summary statistics in the notes.
type Figure struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string // series names, excluding x
	X       []float64
	Series  [][]float64 // Series[i] parallel to X, one per column
	Notes   []string
}

// AddPoint appends one x value with its series values.
func (f *Figure) AddPoint(x float64, ys ...float64) error {
	if len(ys) != len(f.Columns) {
		return fmt.Errorf("harness: figure %s: %d values for %d columns", f.ID, len(ys), len(f.Columns))
	}
	f.X = append(f.X, x)
	for len(f.Series) < len(f.Columns) {
		f.Series = append(f.Series, nil)
	}
	for i, y := range ys {
		f.Series[i] = append(f.Series[i], y)
	}
	return nil
}

// RenderCSV writes the figure data as CSV.
func (f *Figure) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, c := range f.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for i, x := range f.X {
		b.WriteString(strconv.FormatFloat(x, 'g', 6, 64))
		for _, s := range f.Series {
			b.WriteByte(',')
			if i < len(s) {
				b.WriteString(strconv.FormatFloat(s[i], 'g', 6, 64))
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Render writes a compact ASCII view: per-series sparkline plus summary
// stats, enough to see the shape without a plotting stack.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (x: %s, %d points)\n", f.ID, f.Title, f.XLabel, len(f.X))
	for i, name := range f.Columns {
		if i >= len(f.Series) || len(f.Series[i]) == 0 {
			continue
		}
		s := f.Series[i]
		min, max, sum := s[0], s[0], 0.0
		for _, v := range s {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		fmt.Fprintf(&b, "  %-24s %s  min=%s mean=%s max=%s\n",
			name, sparkline(s, 48), formatCell(min), formatCell(sum/float64(len(s))), formatCell(max))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline downsamples values into width buckets of block characters.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if width > len(vals) {
		width = len(vals)
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		s := 0.0
		for _, v := range vals[lo:hi] {
			s += v
		}
		mean := s / float64(hi-lo)
		idx := 0
		if max > min {
			idx = int((mean - min) / (max - min) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}
