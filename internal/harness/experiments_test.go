package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestAllTablesGenerate runs every table experiment end-to-end on a
// non-default seed and sanity-checks the rendered output. This is the
// regression net for the full evaluation pipeline (the benches in
// bench_test.go time the same paths).
func TestAllTablesGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	// One shared parallel runner: exercises fan-out and the cross-table
	// run cache exactly the way cmd/evolve-bench does.
	r := NewRunner(0)
	t1, results, err := Table1(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 18 { // 3 mixes × (5 policies + oracle)
		t.Errorf("table1 rows = %d, want 18", len(t1.Rows))
	}
	if len(results) != 18 {
		t.Errorf("table1 results = %d", len(results))
	}
	t2, err := Table2(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 8 { // 4 archetypes × 2 policies
		t.Errorf("table2 rows = %d, want 8", len(t2.Rows))
	}
	t3, err := Table3(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 6 { // 2 scorings × 3 queue policies
		t.Errorf("table3 rows = %d, want 6", len(t3.Rows))
	}
	t5, err := Table5(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 7 { // 5 policies + 2 consolidation rows
		t.Errorf("table5 rows = %d, want 7", len(t5.Rows))
	}
	for _, tab := range []*Table{t1, t2, t3, t5} {
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", tab.ID, err)
		}
		if !strings.Contains(buf.String(), tab.ID) {
			t.Errorf("%s render missing ID", tab.ID)
		}
		buf.Reset()
		if err := tab.RenderCSV(&buf); err != nil {
			t.Fatalf("%s csv: %v", tab.ID, err)
		}
	}
}

// TestAllFiguresGenerate runs every figure experiment and checks the
// series are populated and renderable.
func TestAllFiguresGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	r := NewRunner(0)
	figs := []struct {
		name string
		run  func() (*Figure, error)
	}{
		{"figure1", func() (*Figure, error) { return Figure1(r, 3) }},
		{"figure2", func() (*Figure, error) { return Figure2(r, 3) }},
		{"figure3", func() (*Figure, error) { f, _, err := Figure3(r, 3); return f, err }},
		{"figure4", func() (*Figure, error) { return Figure4(3) }},
		{"figure5", func() (*Figure, error) { return Figure5(r, 3) }},
		{"figure7", func() (*Figure, error) { return Figure7(r, 3) }},
		{"figure8", func() (*Figure, error) { return Figure8(r, 3) }},
	}
	for _, fc := range figs {
		f, err := fc.run()
		if err != nil {
			t.Fatalf("%s: %v", fc.name, err)
		}
		if len(f.X) == 0 || len(f.Series) != len(f.Columns) {
			t.Fatalf("%s: empty or mismatched series", fc.name)
		}
		var buf bytes.Buffer
		if err := f.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", fc.name, err)
		}
		buf.Reset()
		if err := f.RenderCSV(&buf); err != nil {
			t.Fatalf("%s csv: %v", fc.name, err)
		}
		lines := strings.Count(buf.String(), "\n")
		if lines != len(f.X)+1 {
			t.Errorf("%s csv lines = %d, want %d", fc.name, lines, len(f.X)+1)
		}
	}
}

// TestFigure3FeedforwardAblation asserts the Figure 3 headline: the full
// controller settles a 3x flash crowd within roughly one control period,
// and removing the feedforward makes it much slower.
func TestFigure3FeedforwardAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full run")
	}
	_, stats, err := Figure3(nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StepStats{}
	for _, s := range stats {
		byName[s.Policy] = s
	}
	ev, ok := byName["evolve"]
	if !ok {
		t.Fatal("missing evolve stats")
	}
	if ev.SettleAfter.Seconds() > 60 {
		t.Errorf("evolve settles in %v, want <= 60s", ev.SettleAfter)
	}
	noFF, ok := byName["evolve-no-ff"]
	if !ok {
		t.Fatal("missing ablation stats")
	}
	if noFF.SettleAfter < 4*ev.SettleAfter {
		t.Errorf("feedforward ablation settles in %v vs %v; expected a large gap", noFF.SettleAfter, ev.SettleAfter)
	}
}

// TestTable2MultiResourceShape asserts the novelty claim on a fresh seed:
// the scalar PID collapses on non-CPU bottlenecks.
func TestTable2MultiResourceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full run")
	}
	tab, err := Table2(nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in pairs: evolve-multi then pid-cpu-only, per archetype.
	get := func(archetype, policy string) float64 {
		for _, row := range tab.Rows {
			if row[0] == archetype && row[2] == policy {
				v, err := strconv.ParseFloat(row[3], 64)
				if err != nil {
					t.Fatalf("parse %q: %v", row[3], err)
				}
				return v
			}
		}
		t.Fatalf("row %s/%s not found", archetype, policy)
		return 0
	}
	for _, a := range []string{"gateway", "kvstore"} {
		multi := get(a, "evolve-multi")
		scalar := get(a, "pid-cpu-only")
		if scalar < 10*multi {
			t.Errorf("%s: scalar %v%% vs multi %v%%: expected >= 10x gap", a, scalar, multi)
		}
	}
}
