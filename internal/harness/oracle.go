package harness

import (
	"math"

	"evolve/internal/cluster"
	"evolve/internal/control"
	"evolve/internal/resource"
)

// oracle is the clairvoyant upper-bound policy: it reads the true
// performance model of its application (which no real controller has) and
// computes the analytically right-sized allocation for the currently
// offered load each period. It cannot see the future, but it never has to
// learn, probe or converge — the gap between it and EVOLVE is the price
// of operating from observations alone.
type oracle struct {
	spec   cluster.ServiceSpec
	target float64
}

// OracleFactory builds clairvoyant controllers for the scenario's apps.
// Apps not found in the list hold their state (no oracle knowledge).
func OracleFactory(apps []AppLoad, utilTarget float64) control.Factory {
	if utilTarget <= 0 || utilTarget >= 1 {
		utilTarget = 0.7
	}
	specs := make(map[string]cluster.ServiceSpec, len(apps))
	for _, a := range apps {
		specs[a.Spec.Name] = a.Spec
	}
	return func(app string) control.Controller {
		spec, ok := specs[app]
		if !ok {
			return control.NoopController{}
		}
		return &oracle{spec: spec, target: utilTarget}
	}
}

// Name implements control.Controller.
func (o *oracle) Name() string { return "oracle" }

// Decide implements control.Controller: analytic right-sizing from the
// true model at the observed offered load, with a replica count chosen so
// the per-replica allocation fits the ceiling.
func (o *oracle) Decide(obs control.Observation) control.Decision {
	if obs.Interval <= 0 || obs.OfferedLoad <= 0 {
		return control.Hold(obs)
	}
	// Small safety margin over the instantaneous load: even clairvoyance
	// needs headroom against sampling noise within the control period.
	lambda := obs.OfferedLoad * 1.1

	replicas := obs.Replicas
	if replicas < 1 {
		replicas = 1
	}
	// Find the smallest replica count whose right-size fits MaxAlloc.
	max := obs.Limits.MaxAlloc
	for n := 1; ; n++ {
		alloc := o.spec.Model.DemandFor(lambda, n, o.target)
		if alloc.Fits(max) || (obs.Limits.MaxReplicas > 0 && n >= obs.Limits.MaxReplicas) {
			replicas = n
			break
		}
		if n > 1024 {
			replicas = n
			break
		}
	}
	alloc := o.spec.Model.DemandFor(lambda, replicas, o.target).Max(o.spec.MinAlloc)
	// Memory right-size can round below the fixed working set under very
	// low load; keep a floor at the model's zero-load working set.
	ws := o.spec.Model.MemFixed / o.target
	if alloc[resource.Memory] < ws {
		alloc[resource.Memory] = ws
	}
	if math.IsNaN(alloc.Sum()) {
		return control.Hold(obs)
	}
	return obs.Limits.Clamp(control.Decision{Replicas: replicas, Alloc: alloc})
}
