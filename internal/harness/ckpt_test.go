package harness

import (
	"strings"
	"testing"
)

// TestTable8Reproducible is the bit-for-bit acceptance check for the
// crash-consistency sweep: the same seed, executed twice, must render
// byte-identical tables (text and CSV).
func TestTable8Reproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	render := func() (string, string) {
		tbl, err := Table8(nil, 3)
		if err != nil {
			t.Fatal(err)
		}
		var txt, csv strings.Builder
		if err := tbl.Render(&txt); err != nil {
			t.Fatal(err)
		}
		if err := tbl.RenderCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return txt.String(), csv.String()
	}
	txt1, csv1 := render()
	txt2, csv2 := render()
	if txt1 != txt2 {
		t.Errorf("table 8 text differs between identical runs:\n--- first\n%s\n--- second\n%s", txt1, txt2)
	}
	if csv1 != csv2 {
		t.Error("table 8 CSV differs between identical runs")
	}
}

// TestTable8Shape pins the sweep dimensions (one no-crash baseline row
// plus intervals × crash windows) and that the crash rows actually went
// through an outage: the restarted controller needed at least one
// control period to rejoin the no-crash trajectory.
func TestTable8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	tbl, err := Table8(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 4*2; len(tbl.Rows) != want {
		t.Fatalf("table 8 has %d rows, want %d", len(tbl.Rows), want)
	}
	for i, row := range tbl.Rows[1:] {
		if row[5] == "0" || row[5] == "-" {
			t.Errorf("crash row %d (%s, %s) shows no recovery periods; the kill window never bit", i+1, row[0], row[1])
		}
	}
	var txt strings.Builder
	if err := tbl.Render(&txt); err != nil {
		t.Fatal(err)
	}
	if txt.Len() == 0 {
		t.Error("empty render")
	}
}
