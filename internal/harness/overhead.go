package harness

import (
	"fmt"
	"runtime"
	"time"

	"evolve/internal/control"
	"evolve/internal/core"
	"evolve/internal/plo"
	"evolve/internal/resource"
	"evolve/internal/sched"
	"evolve/internal/sim"
)

// syntheticObservation builds a plausible observation for overhead
// measurements; idx varies the values so nothing is constant-folded.
func syntheticObservation(idx int) control.Observation {
	f := float64(idx%17) + 1
	return control.Observation{
		App:      "svc",
		Now:      time.Duration(idx) * 15 * time.Second,
		Interval: 15 * time.Second,
		PLO:      plo.Latency(100 * time.Millisecond),
		SLI:      0.05 + 0.01*f,
		Replicas: 2 + idx%3, ReadyReplicas: 2 + idx%3,
		Alloc:       resource.New(1000+10*f, 1<<30, 50e6, 50e6),
		Usage:       resource.New(600+20*f, 700<<20, 10e6, 10e6),
		Utilisation: resource.New(0.6+0.01*f, 0.68, 0.2, 0.2),
		OfferedLoad: 240 + f,
		Throughput:  240 + f,
		Limits: control.Limits{
			MinReplicas: 1, MaxReplicas: 64,
			MinAlloc: resource.New(50, 64<<20, 1e6, 1e6),
			MaxAlloc: resource.New(16000, 64<<30, 1e9, 1e9),
		},
	}
}

// MeasureDecisionLatency times the full EVOLVE Decide path over n apps
// for iters control periods and returns the mean wall-clock time per
// decision. Wall-clock measurements vary by machine; the shape (linear in
// apps, sub-microsecond each) is what Table 4 and Figure 6 report.
func MeasureDecisionLatency(apps, iters int) time.Duration {
	ctrls := make([]control.Controller, apps)
	f := core.Factory(core.DefaultConfig())
	for i := range ctrls {
		ctrls[i] = f(fmt.Sprintf("svc-%d", i))
	}
	obs := make([]control.Observation, apps)
	for i := range obs {
		obs[i] = syntheticObservation(i)
	}
	start := time.Now()
	for it := 0; it < iters; it++ {
		for i, c := range ctrls {
			o := obs[i]
			o.Interval = 15 * time.Second
			o.SLI = 0.05 + float64((it+i)%13)*0.01
			_ = c.Decide(o)
		}
	}
	elapsed := time.Since(start)
	total := apps * iters
	if total == 0 {
		return 0
	}
	return elapsed / time.Duration(total)
}

// overheadSnapshot builds the scheduler and indexed snapshot the
// placement measurements run against: the same node distribution the
// brute-force measurement always used, loaded into the snapshot path the
// cluster's pending-pod loop takes, with the parallel score fan-out
// armed at GOMAXPROCS (a no-op below the engagement threshold and on
// single-core machines; placements are byte-identical either way).
func overheadSnapshot(nodes int) (*sched.Scheduler, *sched.Snapshot) {
	s := sched.New(sched.PolicySpread)
	s.SetParallel(runtime.GOMAXPROCS(0), 0)
	snap := sched.NewSnapshot()
	snap.Reset()
	rng := sim.NewRNG(7)
	for i := 0; i < nodes; i++ {
		snap.AddNode(sched.NodeInfo{
			Name:        fmt.Sprintf("node-%04d", i),
			Allocatable: StandardNode(),
			Allocated:   StandardNode().Scale(rng.Uniform(0.1, 0.8)),
		})
	}
	snap.Build()
	return s, snap
}

// MeasureScheduleLatency times one placement decision over a cluster of
// the given node count: a ScheduleOn call against a steady indexed
// snapshot, which is what the cluster pays per pending pod.
func MeasureScheduleLatency(nodes, iters int) time.Duration {
	s, snap := overheadSnapshot(nodes)
	pod := sched.PodInfo{Name: "p", App: "svc", Requests: resource.New(1000, 2<<30, 10e6, 10e6), Priority: 100}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := s.ScheduleOn(pod, snap); err != nil {
			panic(err)
		}
	}
	if iters == 0 {
		return 0
	}
	return time.Since(start) / time.Duration(iters)
}

// SchedIndexStats drives a mixed bind workload (varied pod sizes, so the
// feasibility index has real pruning to do) over a cluster of the given
// node count and returns the scheduler's probe counters — the
// index-effectiveness record evolve-bench embeds in its JSON summary.
func SchedIndexStats(nodes, pods int) sched.Stats {
	s, snap := overheadSnapshot(nodes)
	rng := sim.NewRNG(11)
	for i := 0; i < pods; i++ {
		// Mix small pods with near-node-sized ones: the latter only fit on
		// the emptiest nodes, which is where prefix pruning bites.
		cpu := rng.Uniform(200, 2000)
		if i%4 == 0 {
			cpu = rng.Uniform(8000, 15000)
		}
		pod := sched.PodInfo{
			Name:     fmt.Sprintf("p-%04d", i),
			App:      fmt.Sprintf("svc-%d", i%7),
			Requests: resource.New(cpu, cpu*(1<<30)/1000, 10e6, 10e6),
		}
		name, err := s.ScheduleOn(pod, snap)
		if err != nil {
			continue // cluster full for this size: still a counted probe
		}
		snap.Commit(name, pod)
	}
	return s.Stats()
}

// Table4 reports control-plane overhead: per-decision and per-placement
// wall-clock latency at several scales.
func Table4() *Table {
	t := &Table{
		ID:      "Table 4",
		Title:   "Control-plane overhead (wall-clock, this machine)",
		Headers: []string{"operation", "scale", "latency/op"},
		Notes: []string{
			"a 1000-app fleet at 15s control periods needs ~67 decisions/s; both paths are orders of magnitude faster",
		},
	}
	for _, apps := range []int{10, 100, 1000} {
		d := MeasureDecisionLatency(apps, 2000/maxIntH(apps/10, 1))
		t.AddRow("autoscaler decision", fmt.Sprintf("%d apps", apps), d.String())
	}
	for _, nodes := range []int{10, 100, 500, 5000} {
		d := MeasureScheduleLatency(nodes, 2000)
		t.AddRow("pod placement", fmt.Sprintf("%d nodes", nodes), d.String())
	}
	return t
}

func maxIntH(a, b int) int {
	if a > b {
		return a
	}
	return b
}
