package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"reflect"
	"sort"
	"strconv"
)

// Fingerprinter lets a configuration type supply its own canonical
// encoding for the run cache. Types with unexported or derived state
// (e.g. *workload.MMPP) implement it to expose exactly the fields that
// determine behaviour; the reflective encoder uses it in place of field
// walking whenever a value provides it.
type Fingerprinter interface {
	Fingerprint() string
}

// ScenarioFingerprint computes a content-addressed key for one
// (scenario, policy) run. Two runs with equal fingerprints produce
// byte-identical Results, because every run builds its own engine from
// Scenario.Seed and the encoder covers every behaviour-determining field.
//
// The policy side contributes Name and Overprovision only: control
// factories are functions and cannot be hashed, so the cache relies on
// the repo-wide convention that a policy name uniquely identifies its
// controller configuration (config variants get distinct names, e.g.
// "evolve-no-ff", "evolve-u0.8", "static-2.5x").
//
// Scenarios containing values the encoder cannot canonically represent —
// non-nil funcs (workload.Func patterns), channels, or structs with
// unexported fields that don't implement Fingerprinter — return an
// error; the runner then executes them uncached.
func ScenarioFingerprint(sc Scenario, pol Policy) (string, error) {
	h := sha256.New()
	enc := fpEncoder{h: h}
	if err := enc.encode(reflect.ValueOf(sc)); err != nil {
		return "", err
	}
	fmt.Fprintf(h, "|policy:%s|over:%s", pol.Name, strconv.FormatFloat(pol.Overprovision, 'g', -1, 64))
	return hex.EncodeToString(h.Sum(nil)), nil
}

type fpEncoder struct {
	h hash.Hash
}

func (e fpEncoder) write(parts ...string) {
	for _, p := range parts {
		e.h.Write([]byte(p))
		e.h.Write([]byte{0})
	}
}

func (e fpEncoder) encode(v reflect.Value) error {
	if !v.IsValid() {
		e.write("invalid")
		return nil
	}
	if v.CanInterface() {
		if f, ok := v.Interface().(Fingerprinter); ok {
			if v.Kind() != reflect.Ptr && v.Kind() != reflect.Interface || !v.IsNil() {
				e.write("fp", f.Fingerprint())
				return nil
			}
		}
	}
	t := v.Type()
	switch v.Kind() {
	case reflect.Bool:
		e.write(t.String(), strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.write(t.String(), strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		e.write(t.String(), strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		e.write(t.String(), strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		e.write(t.String(), v.String())
	case reflect.Slice, reflect.Array:
		e.write(t.String(), strconv.Itoa(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := e.encode(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		// Canonicalise by encoding each entry into a sub-hash and
		// sorting the digests; map iteration order must not leak in.
		e.write(t.String(), strconv.Itoa(v.Len()))
		entries := make([]string, 0, v.Len())
		for _, k := range v.MapKeys() {
			sub := fpEncoder{h: sha256.New()}
			if err := sub.encode(k); err != nil {
				return err
			}
			if err := sub.encode(v.MapIndex(k)); err != nil {
				return err
			}
			entries = append(entries, hex.EncodeToString(sub.h.Sum(nil)))
		}
		sort.Strings(entries)
		e.write(entries...)
	case reflect.Struct:
		e.write(t.String())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				return fmt.Errorf("harness: cannot fingerprint %s: unexported field %s (implement Fingerprinter)", t, f.Name)
			}
			e.write(f.Name)
			if err := e.encode(v.Field(i)); err != nil {
				return err
			}
		}
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			e.write(t.String(), "nil")
			return nil
		}
		e.write(t.String())
		return e.encode(v.Elem())
	case reflect.Func:
		if v.IsNil() {
			e.write(t.String(), "nil")
			return nil
		}
		return fmt.Errorf("harness: cannot fingerprint %s: function values have no canonical encoding", t)
	default:
		return fmt.Errorf("harness: cannot fingerprint kind %s (%s)", v.Kind(), t)
	}
	return nil
}
