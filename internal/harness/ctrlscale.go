package harness

import (
	"fmt"
	"time"

	"evolve/internal/cluster"
	"evolve/internal/control"
	"evolve/internal/core"
	"evolve/internal/sim"
)

// Figure 12 — control-plane scalability. Figure 6 made the telemetry
// tick scale; this sweep asks the follow-up question: how fast does one
// control period run — per-app observe → PID/feedforward eval → decide
// → actuate plus the backlog drain — as the service fleet grows, and
// what does sharding the control plane (control.LoopConfig.Workers +
// cluster.Config.DrainWorkers) buy at each size? The timer is the
// loop's own CtrlTiming, so the metric isolates the control step from
// the surrounding ticks; runs are byte-identical at every worker
// count, which is what licenses comparing their wall clocks at all.

// CtrlScalePoint is one fleet size of the control-plane sweep.
type CtrlScalePoint struct {
	Apps       int
	PodsPerApp int
	Nodes      int
}

// CtrlScaleRow is the measured outcome of one (point, worker count)
// run — the record evolve-bench embeds in BENCH_10.json.
type CtrlScaleRow struct {
	Apps    int `json:"apps"`
	Pods    int `json:"pods"`
	Nodes   int `json:"nodes"`
	Workers int `json:"ctrl_workers"`
	// Periods is how many control periods each timed rep drove; Reps how
	// many repetitions ran after the warmup period.
	Periods int `json:"periods"`
	Reps    int `json:"reps"`
	// MSPerPeriod is the fastest rep's wall milliseconds per control
	// period (min-of-reps de-noises the comparison); EvalMS/ApplyMS
	// split that rep into the evaluate fan-out and the serial apply
	// walk. Serial (1-worker) rows attribute the whole step to apply.
	MSPerPeriod float64 `json:"ms_per_period"`
	EvalMS      float64 `json:"eval_ms"`
	ApplyMS     float64 `json:"apply_ms"`
	// Speedup is ms/period(1 worker)/ms/period(this row) at the same
	// point; 1.0 for the baseline rows.
	Speedup float64 `json:"speedup"`
}

// CtrlScaleConfig parameterises the Figure 12 sweep.
type CtrlScaleConfig struct {
	Seed    int64
	Workers []int            // worker counts per point; first entry is the baseline
	Points  []CtrlScalePoint // fleet ladder
	Periods int              // control periods driven per timed rep
}

// DefaultCtrlScalePoints returns the fleet ladder; quick is the reduced
// ladder CI runs.
func DefaultCtrlScalePoints(quick bool) []CtrlScalePoint {
	if quick {
		return []CtrlScalePoint{
			{Apps: 64, PodsPerApp: 8, Nodes: 256},
			{Apps: 256, PodsPerApp: 8, Nodes: 1024},
			{Apps: 512, PodsPerApp: 8, Nodes: 2048},
		}
	}
	return []CtrlScalePoint{
		{Apps: 64, PodsPerApp: 8, Nodes: 256},
		{Apps: 128, PodsPerApp: 8, Nodes: 512},
		{Apps: 256, PodsPerApp: 8, Nodes: 1024},
		{Apps: 512, PodsPerApp: 8, Nodes: 2048},
		{Apps: 512, PodsPerApp: 16, Nodes: 4096},
	}
}

// DefaultCtrlScaleConfig is what evolve-bench runs for figure12: the
// ladder under control-plane worker counts {1, 2, 4, 8}.
func DefaultCtrlScaleConfig(seed int64, quick bool) CtrlScaleConfig {
	return CtrlScaleConfig{
		Seed:    seed,
		Workers: []int{1, 2, 4, 8},
		Points:  DefaultCtrlScalePoints(quick),
		Periods: 4,
	}
}

// Figure12 runs the control-plane scale sweep and returns both the
// rendered figure (X = apps, one ms/control-period column per worker
// count) and the raw per-run rows.
// Unlike Figure 6 the rows are not content-address cached: each row is
// seconds of wall clock, and the runner is accepted only for signature
// symmetry with the other sweeps.
func Figure12(_ *Runner, cfg CtrlScaleConfig) (*Figure, []CtrlScaleRow, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4, 8}
	}
	if len(cfg.Points) == 0 {
		cfg.Points = DefaultCtrlScalePoints(false)
	}
	if cfg.Periods <= 0 {
		cfg.Periods = 4
	}
	f := &Figure{
		ID:     "Figure 12",
		Title:  "Control-plane scalability (wall-clock per control period)",
		XLabel: "apps",
	}
	for _, w := range cfg.Workers {
		f.Columns = append(f.Columns, fmt.Sprintf("ms/period (%d worker)", w))
	}
	rows := make([]CtrlScaleRow, 0, len(cfg.Points)*len(cfg.Workers))
	for _, pt := range cfg.Points {
		ptRows, err := runCtrlScalePointSet(cfg, pt)
		if err != nil {
			return nil, nil, err
		}
		ys := make([]float64, 0, len(cfg.Workers))
		base := ptRows[0].MSPerPeriod
		for i := range ptRows {
			if ptRows[i].MSPerPeriod > 0 {
				ptRows[i].Speedup = base / ptRows[i].MSPerPeriod
			}
			rows = append(rows, ptRows[i])
			ys = append(ys, ptRows[i].MSPerPeriod)
		}
		if err := f.AddPoint(float64(pt.Apps), ys...); err != nil {
			return nil, nil, err
		}
	}
	f.Notes = append(f.Notes,
		"timed by control.CtrlTiming around the control step only; min over timed reps",
		"absolute values are machine-dependent; worker counts replay byte-identically")
	return f, rows, nil
}

// ctrlScaleRun is one provisioned (point, worker count) world mid-sweep:
// warm, loop-timed, accumulating its fastest rep.
type ctrlScaleRun struct {
	c       *cluster.Cluster
	loop    *control.Loop
	timing  *control.CtrlTiming
	prev    control.CtrlTiming
	horizon time.Duration
	period  time.Duration

	reps    int
	bestMS  float64
	evalMS  float64
	applyMS float64
	runErr  error
}

// newCtrlScaleRun stands up one fleet under the given control-plane
// worker count, arms the EVOLVE controllers, and runs one untimed
// warmup control period.
func newCtrlScaleRun(seed int64, pt CtrlScalePoint, workers int) (*ctrlScaleRun, error) {
	eng := sim.NewEngine(seed)
	ccfg := cluster.DefaultConfig()
	ccfg.DrainWorkers = workers
	c := cluster.New(eng, ccfg)
	pods := pt.Apps * pt.PodsPerApp
	density := (pods + pt.Nodes - 1) / pt.Nodes
	specs := make([]cluster.ServiceSpec, pt.Apps)
	for i := range specs {
		specs[i] = scaleService(fmt.Sprintf("svc-%04d", i), pt.PodsPerApp, density)
	}
	err := c.ProvisionBulk(cluster.Provision{
		NodePrefix:   "node",
		Nodes:        pt.Nodes,
		NodeCapacity: StandardNode(),
		Services:     specs,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: ctrl scale point %d apps: %w", pt.Apps, err)
	}
	if unplaced := c.Metrics().Counter("provision/unplaced").Value(); unplaced > 0 {
		return nil, fmt.Errorf("harness: ctrl scale point %d apps: %d replicas did not fit", pt.Apps, unplaced)
	}
	for _, spec := range specs {
		lambda := 20 * float64(spec.InitialReplicas)
		if err := c.SetLoadFunc(spec.Name, func(time.Duration) float64 { return lambda }); err != nil {
			return nil, err
		}
	}
	c.Start()
	loop := control.NewLoop(eng, c, control.LoopConfig{Seed: seed, Workers: workers})
	factory := core.Factory(core.DefaultConfig())
	for _, spec := range specs {
		loop.Add(spec.Name, factory(spec.Name))
	}
	run := &ctrlScaleRun{c: c, loop: loop, period: 15 * time.Second}
	loop.OnFatal(func(err error) {
		if run.runErr == nil {
			run.runErr = err
			eng.Stop()
		}
	})
	loop.Start()
	// One untimed warmup period populates observation windows, scratch
	// buffers and the allocator's steady state before the timer arms.
	run.horizon = run.period
	c.Run(run.horizon)
	run.timing = loop.EnableTiming()
	run.prev = *run.timing
	return run, run.runErr
}

// rep drives periods control periods and keeps the fastest rep.
func (cr *ctrlScaleRun) rep(periods int) {
	cr.horizon += time.Duration(periods) * cr.period
	cr.c.Run(cr.horizon)
	t := *cr.timing
	dp := t.Periods - cr.prev.Periods
	dEval := t.EvalNs - cr.prev.EvalNs
	dApply := t.ApplyNs - cr.prev.ApplyNs
	cr.prev = t
	if dp == 0 {
		return
	}
	ms := float64(dEval+dApply) / float64(dp) / 1e6
	if cr.reps == 0 || ms < cr.bestMS {
		cr.bestMS = ms
		cr.evalMS = float64(dEval) / float64(dp) / 1e6
		cr.applyMS = float64(dApply) / float64(dp) / 1e6
	}
	cr.reps++
}

// row freezes the run into its BENCH record row.
func (cr *ctrlScaleRun) row(pt CtrlScalePoint, workers, periods int) CtrlScaleRow {
	return CtrlScaleRow{
		Apps: pt.Apps, Pods: pt.Apps * pt.PodsPerApp, Nodes: pt.Nodes,
		Workers: workers, Periods: periods, Reps: cr.reps,
		MSPerPeriod: cr.bestMS, EvalMS: cr.evalMS, ApplyMS: cr.applyMS,
	}
}

// runCtrlScalePointSet measures every worker count of one fleet point
// with the timed reps interleaved across worker counts (rep 0 of each
// run, then rep 1 of each, ...), for the same reason Figure 6
// interleaves shard counts: the rows of one point exist to be compared
// against each other, and interleaving spreads any transient noise
// window across all of them so min-of-reps discards it equally.
func runCtrlScalePointSet(cfg CtrlScaleConfig, pt CtrlScalePoint) ([]CtrlScaleRow, error) {
	runs := make([]*ctrlScaleRun, len(cfg.Workers))
	for i, w := range cfg.Workers {
		run, err := newCtrlScaleRun(cfg.Seed, pt, w)
		if err != nil {
			return nil, err
		}
		runs[i] = run
	}
	for rep := 0; rep < scaleReps; rep++ {
		for _, run := range runs {
			run.rep(cfg.Periods)
		}
	}
	rows := make([]CtrlScaleRow, len(cfg.Workers))
	for i, run := range runs {
		if run.runErr != nil {
			return nil, fmt.Errorf("harness: ctrl scale point %d apps, %d workers: %w", pt.Apps, cfg.Workers[i], run.runErr)
		}
		rows[i] = run.row(pt, cfg.Workers[i], cfg.Periods)
		runs[i] = nil // release the topology before the next point provisions
	}
	return rows, nil
}
