package harness

import (
	"os"
	"path/filepath"
	"testing"

	"evolve/internal/obs"
)

// TestRunnerTraceDir: with a trace directory configured, each cache-miss
// run must leave a parseable JSONL decision trace named after the
// scenario/policy pair, containing the control decisions the run made.
func TestRunnerTraceDir(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner(1)
	r.SetTraceDir(dir)
	sc := tinyScenario()
	sc.Name = "tiny trace" // exercises name sanitisation
	if _, err := r.Run(sc, evolvePolicy()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "tiny-trace__evolve.jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	defer f.Close()
	events, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	var decides, binds int
	for _, ev := range events {
		switch {
		case ev.Kind == obs.KindControl && ev.Verb == obs.VerbDecide:
			decides++
			if ev.App != "web" {
				t.Fatalf("decision for unexpected app %q", ev.App)
			}
		case ev.Kind == obs.KindSched && ev.Verb == obs.VerbBind:
			binds++
		}
	}
	if decides == 0 || binds == 0 {
		t.Fatalf("trace has %d decisions and %d binds, want both > 0", decides, binds)
	}

	// A cache hit must not truncate or rewrite the existing trace.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(sc, evolvePolicy()); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want one cache hit", st)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("cache hit rewrote the trace file")
	}
}
