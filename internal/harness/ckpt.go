package harness

import (
	"fmt"
	"time"

	"evolve"
)

// Table 8 exercises the crash-consistency layer end to end, so unlike
// the other tables it runs on the public facade (the evolve package)
// where Checkpoint/Restore and the ctrl-crash chaos windows live, not
// on the harness's internal scenario runner.

const (
	// ckptTableWarmup is excluded from the violation statistics,
	// matching the chaos table's measurement discipline.
	ckptTableWarmup = 10 * time.Minute
	// ckptTableInterval is the control interval the recovery-period
	// column is denominated in (the facade default).
	ckptTableInterval = 15 * time.Second
	// rejoinWindow is how long the crashed run's control trajectory
	// must track the no-crash run's before it counts as rejoined.
	rejoinWindow = 5 * time.Minute
)

// ckptRun is one cell of the Table 8 sweep.
type ckptRun struct {
	every time.Duration // checkpoint interval; 0 = checkpoints off
	crash string        // ctrl-crash plan clause; "" = no crash
}

// window parses the crash clause back into its [from, to) window.
func (cr ckptRun) window() (from, to time.Duration) {
	if cr.crash == "" {
		return -1, -1
	}
	var fm, tm int
	if _, err := fmt.Sscanf(cr.crash, "ctrl-crash@%dm-%dm", &fm, &tm); err != nil {
		return -1, -1
	}
	return time.Duration(fm) * time.Minute, time.Duration(tm) * time.Minute
}

// ckptCell is the outcome of one Table 8 run.
type ckptCell struct {
	viol   []evolve.SeriesSample // app/web/violation, tick cadence
	alloc  []evolve.SeriesSample // app/web/alloc/cpu — the controller's output
	ckpts  int
	meanKB float64
}

// runCkptCell runs the 75-minute diurnal web world of the chaos table
// under one (interval, crash) combination.
func runCkptCell(seed int64, cr ckptRun) (ckptCell, error) {
	c, err := evolve.New(evolve.Options{Seed: seed, Nodes: 4, Chaos: cr.crash})
	if err != nil {
		return ckptCell{}, err
	}
	if err := c.AddService(evolve.ServiceOptions{
		Name: "web", Archetype: "web", BaseRate: 600,
		LatencyObjective: 100 * time.Millisecond,
	}); err != nil {
		return ckptCell{}, err
	}
	if err := c.SetLoad("web", evolve.Diurnal(500, 1800, 40*time.Minute)); err != nil {
		return ckptCell{}, err
	}
	if cr.every > 0 {
		if err := c.EnableCheckpoints("", cr.every); err != nil {
			return ckptCell{}, err
		}
	}
	if err := c.Run(75 * time.Minute); err != nil {
		return ckptCell{}, err
	}
	cell := ckptCell{}
	if cell.viol, err = c.SeriesSamples("app/web/violation"); err != nil {
		return ckptCell{}, err
	}
	if cell.alloc, err = c.SeriesSamples("app/web/alloc/cpu"); err != nil {
		return ckptCell{}, err
	}
	var bytes int64
	cell.ckpts, bytes = c.CheckpointStats()
	if cell.ckpts > 0 {
		cell.meanKB = float64(bytes) / float64(cell.ckpts) / 1024
	}
	return cell, nil
}

// violationFraction is the post-warmup mean of the violation indicator.
func (c ckptCell) violationFraction() float64 {
	sum, n := 0.0, 0
	for _, s := range c.viol {
		if s.At < ckptTableWarmup {
			continue
		}
		sum += s.Value
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// rejoinPeriods measures recovery as reconvergence: the number of
// control periods after the restart edge until the crashed run's
// CPU-allocation trajectory (the controller's output) tracks the no-crash
// baseline's for rejoinWindow straight. Both runs share the seed, so
// their series are sampled at identical tick timestamps and
// sample-wise comparison is exact. ok is false when the run never
// rejoins before the horizon — the residual divergence lasts to the
// end of the run.
func rejoinPeriods(got, base []evolve.SeriesSample, restartAt time.Duration) (periods float64, ok bool) {
	n := min(len(got), len(base))
	if n == 0 {
		return 0, false
	}
	start := 0
	for start < n && got[start].At < restartAt {
		start++
	}
	streakStart := -1
	for i := start; i < n; i++ {
		if got[i].Value != base[i].Value {
			streakStart = -1
			continue
		}
		if streakStart < 0 {
			streakStart = i
		}
		if got[i].At-got[streakStart].At >= rejoinWindow {
			return float64(got[streakStart].At-restartAt) / float64(ckptTableInterval), true
		}
	}
	// A trailing streak that runs to the horizon (just shorter than the
	// window) still marks the last divergence; no streak at all means
	// the runs were still diverged at the horizon.
	if streakStart >= 0 {
		return float64(got[streakStart].At-restartAt) / float64(ckptTableInterval), true
	}
	return float64(got[n-1].At-restartAt) / float64(ckptTableInterval), false
}

// Table8 is the crash-consistency table: checkpoint interval crossed
// with control-plane crash timing on the 75m diurnal web service. Each
// crash window kills the controller and restarts it from the last
// checkpoint (or cold, from its construction-time state, when
// checkpoints are off); the rows report what the outage cost — the SLO
// violation delta against the no-crash run and how many control
// periods the restarted controller needed to rejoin the no-crash
// trajectory — and what the checkpoints cost: how many were taken,
// their mean size, and the state window lost at the kill.
func Table8(r *Runner, seed int64) (*Table, error) {
	t := &Table{
		ID:    "Table 8",
		Title: "Crash-consistent recovery: checkpoint interval vs control-plane crash timing (75m diurnal web service)",
		Headers: []string{
			"ckpt every", "crash window", "ckpts", "mean ckpt KB",
			"lost window (s)", "recovery periods", "violations %",
			"Δ vs no-crash (pp)",
		},
		Notes: []string{
			"crash windows: 18m–23m spans the 20m diurnal peak (the controller dies holding a rising allocation); 38m–43m spans the 40m trough",
			"lost window = virtual time between the last controller checkpoint and the kill — the state the restart cannot recover",
			"recovery periods = 15s control periods after the restart until the per-replica CPU allocation tracks the no-crash run for 5m straight; '>' marks runs still diverged at the horizon",
			"ckpt every = off restarts the controller cold, from its construction-time state; PID integrals and safe-point history start over",
			"checkpoint cost is reported in deterministic units (count, bytes); wall-clock write/restore cost is machine-dependent (see make ckpt-soak)",
		},
	}
	intervals := []time.Duration{0, time.Minute, 5 * time.Minute, 15 * time.Minute}
	crashes := []string{"ctrl-crash@18m-23m", "ctrl-crash@38m-43m"}

	base, err := runCkptCell(seed, ckptRun{every: 5 * time.Minute})
	if err != nil {
		return nil, fmt.Errorf("table8 %w", err)
	}
	baseViolations := base.violationFraction()
	t.AddRow("5m", "none", base.ckpts, base.meanKB, "-", "-", baseViolations*100, "-")

	for _, every := range intervals {
		for _, crash := range crashes {
			cr := ckptRun{every: every, crash: crash}
			cell, err := runCkptCell(seed, cr)
			if err != nil {
				return nil, fmt.Errorf("table8 %w", err)
			}
			from, to := cr.window()
			lost := "-"
			if every > 0 {
				lost = fmt.Sprintf("%.0f", (from % every).Seconds())
			}
			label := "off"
			if every > 0 {
				label = fmt.Sprintf("%dm", int(every.Minutes()))
			}
			viol := cell.violationFraction()
			periods, rejoined := rejoinPeriods(cell.alloc, base.alloc, to)
			recovery := fmt.Sprintf("%.0f", periods)
			if !rejoined {
				recovery = fmt.Sprintf(">%.0f", periods)
			}
			t.AddRow(label, crash, cell.ckpts, cell.meanKB, lost,
				recovery, viol*100, (viol-baseViolations)*100)
		}
	}
	return t, nil
}
