package harness

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"evolve/internal/obs"
)

// The sharded kernel's headline guarantee: the same scenario replays
// byte-identically at every shard count — Reports and trace streams
// alike — chaos on or off, batched rounds on or off. These tests pin
// that guarantee; shard.go documents the phase/barrier discipline that
// earns it. Traced runs exercise the staging path (a live watch keeps
// the registry non-quiescent); untraced runs exercise the dense
// cache-backed path (hotstate.go), which must reproduce the same
// Report bytes.

// determinismScenario is a reduced-scale converged mix: interactive
// services, batch DAGs and rigid HPC gangs contending on five nodes,
// with measurement noise so the per-app random streams are exercised
// and staggered startup delays so the hot-state readiness horizons are.
func determinismScenario(seed int64, chaosPlan string) Scenario {
	sc := BuildScenario(MixConverged, seed)
	sc.Duration = 30 * time.Minute
	sc.Warmup = 5 * time.Minute
	sc.MeasurementNoise = 0.05
	sc.Chaos = chaosPlan
	// Staggered startup delays: scale-ups produce replicas that bind now
	// but serve later, so the dense path's cached readiness horizons
	// (rebuild-on-expiry) are load-bearing in this suite.
	for i := range sc.Apps {
		sc.Apps[i].Spec.StartupDelay = time.Duration(15*(1+i%3)) * time.Second
	}
	// Resubmit the background streams on a cadence that fits the short
	// run (the standard streams mostly land after the 30m horizon).
	sc.BatchJobs = BatchStream(3, 7*time.Minute, 1)
	sc.HPCJobs = HPCStream(4, 6*time.Minute, 6)
	return sc
}

// chaosEverything lands every fault kind inside the 30m horizon.
const chaosEverything = "node-crash@12m-18m:node=node-0;metric-drop@5m:p=0.2;" +
	"act-reject@6m:p=0.25;metric-spike@8m:p=0.05,mag=1.5;act-delay@7m:p=0.2,delay=10s"

// runFingerprint executes the scenario under the EVOLVE policy with
// trace and span sinks attached and returns three byte-exact
// artefacts: the rendered Report (minus the cluster pointer), the full
// JSONL trace stream, and the span stream with the Shard attribution
// masked. Shard is the one span field allowed to vary with the shard
// count (it names which shard owned the app); everything else —
// IDs, parent links, kinds, intervals, payloads — must be identical,
// so the masked re-serialisation is compared byte for byte. %+v
// formatting round-trips float64 (shortest representation is
// injective), so string equality is bit equality.
func runFingerprint(t *testing.T, sc Scenario) (report, trace, spans string) {
	t.Helper()
	var buf, spanBuf bytes.Buffer
	tr := obs.New(1 << 15)
	tr.SetSink(&buf)
	tr.SetSpanSink(&spanBuf)
	res, err := runScenario(sc, StandardPolicies()[0], nil, tr)
	if err != nil {
		t.Fatalf("runScenario(shards=%d): %v", sc.Shards, err)
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("trace sink: %v", err)
	}
	if err := tr.SpanSinkErr(); err != nil {
		t.Fatalf("span sink: %v", err)
	}
	res.Cluster = nil
	return fmt.Sprintf("%+v", *res), buf.String(), maskSpanShards(t, &spanBuf)
}

// maskSpanShards parses a span JSONL stream, zeroes the Shard field
// and re-serialises, yielding the shard-count-invariant fingerprint.
func maskSpanShards(t *testing.T, buf *bytes.Buffer) string {
	t.Helper()
	sps, err := obs.ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading span stream: %v", err)
	}
	for i := range sps {
		sps[i].Shard = 0
	}
	var out bytes.Buffer
	if err := obs.WriteSpansJSONL(&out, sps); err != nil {
		t.Fatalf("re-serialising span stream: %v", err)
	}
	return out.String()
}

// runReportOnly executes the scenario with no tracer attached — the
// registry stays quiescent, so a sharded run takes the dense hot-state
// path — and returns the byte-exact Report.
func runReportOnly(t *testing.T, sc Scenario) string {
	t.Helper()
	res, err := runScenario(sc, StandardPolicies()[0], nil, nil)
	if err != nil {
		t.Fatalf("runScenario(shards=%d, untraced): %v", sc.Shards, err)
	}
	res.Cluster = nil
	return fmt.Sprintf("%+v", *res)
}

var shardCounts = []int{2, 4, 7, 16}

// TestShardedRunsByteIdentical replays the converged scenario at shard
// counts {1, 2, 4, 7, 16}, chaos off and on, batched rounds on and off,
// and demands byte-identical Reports and trace streams against the
// single-engine baseline.
func TestShardedRunsByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan string
	}{
		{"fault-free", ""},
		{"chaos", chaosEverything},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := determinismScenario(101, tc.plan)
			base.Shards = 1
			wantReport, wantTrace, wantSpans := runFingerprint(t, base)
			if wantTrace == "" {
				t.Fatal("baseline produced an empty trace stream")
			}
			if wantSpans == "" {
				t.Fatal("baseline produced an empty span stream")
			}
			for _, batched := range []bool{true, false} {
				name := "batched"
				if !batched {
					name = "unbatched"
				}
				t.Run(name, func(t *testing.T) {
					for _, shards := range shardCounts {
						sc := determinismScenario(101, tc.plan)
						sc.Shards = shards
						sc.ShardWorkers = 1
						sc.UnbatchedRounds = !batched
						// The control plane shards along for the ride: its
						// evaluate/apply split must not move a byte either.
						sc.CtrlWorkers = shards
						gotReport, gotTrace, gotSpans := runFingerprint(t, sc)
						if gotReport != wantReport {
							t.Errorf("shards=%d: Report diverged from 1-shard baseline\n got: %s\nwant: %s",
								shards, gotReport, wantReport)
						}
						if gotTrace != wantTrace {
							t.Errorf("shards=%d: trace stream diverged from 1-shard baseline (%d vs %d bytes)",
								shards, len(gotTrace), len(wantTrace))
						}
						if gotSpans != wantSpans {
							t.Errorf("shards=%d: span stream diverged from 1-shard baseline (%d vs %d bytes)",
								shards, len(gotSpans), len(wantSpans))
						}
					}
				})
			}
		})
	}
}

// TestShardedUntracedByteIdentical is the dense-path gate: with no
// tracer the registry is quiescent and the sharded tick runs on the
// hot-state caches (deferred pod usage, counter-advance versioning).
// Every Report must still match the untraced single-engine baseline
// byte for byte, batched or not.
func TestShardedUntracedByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan string
	}{
		{"fault-free", ""},
		{"chaos", chaosEverything},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := determinismScenario(101, tc.plan)
			base.Shards = 1
			wantReport := runReportOnly(t, base)
			for _, batched := range []bool{true, false} {
				name := "batched"
				if !batched {
					name = "unbatched"
				}
				t.Run(name, func(t *testing.T) {
					for _, shards := range shardCounts {
						sc := determinismScenario(101, tc.plan)
						sc.Shards = shards
						sc.ShardWorkers = 1
						sc.UnbatchedRounds = !batched
						if got := runReportOnly(t, sc); got != wantReport {
							t.Errorf("shards=%d: untraced Report diverged from 1-shard baseline\n got: %s\nwant: %s",
								shards, got, wantReport)
						}
					}
				})
			}
		})
	}
}

// TestCtrlWorkersByteIdentical is the control-plane analogue of the
// kernel gate: the converged scenario replays byte-identically —
// Report, trace stream, masked span stream — at control-plane worker
// counts {2, 4, 7} against the serial baseline, on both the 1-shard and
// 4-shard kernels, chaos off and on. The worker counts cross the app
// count on purpose (7 workers over a handful of apps exercises the
// clamp); under `go test -race` this is also the race gate for the
// evaluate fan-out and the batched backlog drain.
func TestCtrlWorkersByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan string
	}{
		{"fault-free", ""},
		{"chaos", chaosEverything},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := determinismScenario(303, tc.plan)
			base.CtrlWorkers = 1 // pinned serial path
			wantReport, wantTrace, wantSpans := runFingerprint(t, base)
			if wantTrace == "" || wantSpans == "" {
				t.Fatal("baseline produced an empty trace or span stream")
			}
			for _, shards := range []int{1, 4} {
				for _, workers := range []int{2, 4, 7} {
					sc := determinismScenario(303, tc.plan)
					sc.Shards = shards
					sc.ShardWorkers = 1
					sc.CtrlWorkers = workers
					gotReport, gotTrace, gotSpans := runFingerprint(t, sc)
					if gotReport != wantReport {
						t.Errorf("shards=%d ctrl-workers=%d: Report diverged from serial baseline\n got: %s\nwant: %s",
							shards, workers, gotReport, wantReport)
					}
					if gotTrace != wantTrace {
						t.Errorf("shards=%d ctrl-workers=%d: trace stream diverged (%d vs %d bytes)",
							shards, workers, len(gotTrace), len(wantTrace))
					}
					if gotSpans != wantSpans {
						t.Errorf("shards=%d ctrl-workers=%d: span stream diverged (%d vs %d bytes)",
							shards, workers, len(gotSpans), len(wantSpans))
					}
				}
			}
		})
	}
}

// TestShardedParallelWorkersDeterministic pins worker-count invariance:
// with 4 shards, ticking same-timestamp shards in parallel (4 workers)
// must produce the same bytes as serial rounds (1 worker), batched
// rounds on or off. Under `go test -race` this is also the race gate
// for the parallel phase fan-out across the cluster, chaos and metrics
// layers.
func TestShardedParallelWorkersDeterministic(t *testing.T) {
	for _, batched := range []bool{true, false} {
		name := "batched"
		if !batched {
			name = "unbatched"
		}
		t.Run(name, func(t *testing.T) {
			base := determinismScenario(202, chaosEverything)
			base.Shards = 4
			base.ShardWorkers = 1
			base.UnbatchedRounds = !batched
			wantReport, wantTrace, wantSpans := runFingerprint(t, base)

			par := determinismScenario(202, chaosEverything)
			par.Shards = 4
			par.ShardWorkers = 4
			par.UnbatchedRounds = !batched
			gotReport, gotTrace, gotSpans := runFingerprint(t, par)

			if gotReport != wantReport {
				t.Errorf("parallel workers: Report diverged\n got: %s\nwant: %s", gotReport, wantReport)
			}
			if gotTrace != wantTrace {
				t.Errorf("parallel workers: trace stream diverged (%d vs %d bytes)", len(gotTrace), len(wantTrace))
			}
			if gotSpans != wantSpans {
				t.Errorf("parallel workers: span stream diverged (%d vs %d bytes)", len(gotSpans), len(wantSpans))
			}
		})
	}
}

// TestShardedParallelWorkersUntraced is the same worker-invariance gate
// on the dense path: no tracer, quiescent registry, hot-state caches
// live, 4 workers racing the phase fan-out.
func TestShardedParallelWorkersUntraced(t *testing.T) {
	base := determinismScenario(202, chaosEverything)
	base.Shards = 4
	base.ShardWorkers = 1
	wantReport := runReportOnly(t, base)

	par := determinismScenario(202, chaosEverything)
	par.Shards = 4
	par.ShardWorkers = 4
	gotReport := runReportOnly(t, par)

	if gotReport != wantReport {
		t.Errorf("parallel workers (untraced): Report diverged\n got: %s\nwant: %s", gotReport, wantReport)
	}
}
