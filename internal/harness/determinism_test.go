package harness

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"evolve/internal/obs"
)

// The sharded kernel's headline guarantee: the same scenario replays
// byte-identically at every shard count — Reports and trace streams
// alike — chaos on or off. These tests pin that guarantee; shard.go
// documents the phase/barrier discipline that earns it.

// determinismScenario is a reduced-scale converged mix: interactive
// services, batch DAGs and rigid HPC gangs contending on five nodes,
// with measurement noise so the per-app random streams are exercised.
func determinismScenario(seed int64, chaosPlan string) Scenario {
	sc := BuildScenario(MixConverged, seed)
	sc.Duration = 30 * time.Minute
	sc.Warmup = 5 * time.Minute
	sc.MeasurementNoise = 0.05
	sc.Chaos = chaosPlan
	// Resubmit the background streams on a cadence that fits the short
	// run (the standard streams mostly land after the 30m horizon).
	sc.BatchJobs = BatchStream(3, 7*time.Minute, 1)
	sc.HPCJobs = HPCStream(4, 6*time.Minute, 6)
	return sc
}

// chaosEverything lands every fault kind inside the 30m horizon.
const chaosEverything = "node-crash@12m-18m:node=node-0;metric-drop@5m:p=0.2;" +
	"act-reject@6m:p=0.25;metric-spike@8m:p=0.05,mag=1.5;act-delay@7m:p=0.2,delay=10s"

// runFingerprint executes the scenario under the EVOLVE policy with a
// trace sink attached and returns two byte-exact artefacts: the
// rendered Report (minus the cluster pointer) and the full JSONL trace
// stream. %+v formatting round-trips float64 (shortest representation
// is injective), so string equality is bit equality.
func runFingerprint(t *testing.T, sc Scenario) (report, trace string) {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.New(1 << 15)
	tr.SetSink(&buf)
	res, err := runScenario(sc, StandardPolicies()[0], nil, tr)
	if err != nil {
		t.Fatalf("runScenario(shards=%d): %v", sc.Shards, err)
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("trace sink: %v", err)
	}
	res.Cluster = nil
	return fmt.Sprintf("%+v", *res), buf.String()
}

// TestShardedRunsByteIdentical replays the converged scenario at shard
// counts {1, 2, 4, 7, 16}, chaos off and on, and demands byte-identical
// Reports and trace streams against the single-engine baseline.
func TestShardedRunsByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan string
	}{
		{"fault-free", ""},
		{"chaos", chaosEverything},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := determinismScenario(101, tc.plan)
			base.Shards = 1
			wantReport, wantTrace := runFingerprint(t, base)
			if wantTrace == "" {
				t.Fatal("baseline produced an empty trace stream")
			}
			for _, shards := range []int{2, 4, 7, 16} {
				sc := determinismScenario(101, tc.plan)
				sc.Shards = shards
				sc.ShardWorkers = 1
				gotReport, gotTrace := runFingerprint(t, sc)
				if gotReport != wantReport {
					t.Errorf("shards=%d: Report diverged from 1-shard baseline\n got: %s\nwant: %s",
						shards, gotReport, wantReport)
				}
				if gotTrace != wantTrace {
					t.Errorf("shards=%d: trace stream diverged from 1-shard baseline (%d vs %d bytes)",
						shards, len(gotTrace), len(wantTrace))
				}
			}
		})
	}
}

// TestShardedParallelWorkersDeterministic pins worker-count invariance:
// with 4 shards, ticking same-timestamp shards in parallel (4 workers)
// must produce the same bytes as serial rounds (1 worker). Under
// `go test -race` this is also the race gate for the parallel phase
// fan-out across the cluster, chaos and metrics layers.
func TestShardedParallelWorkersDeterministic(t *testing.T) {
	base := determinismScenario(202, chaosEverything)
	base.Shards = 4
	base.ShardWorkers = 1
	wantReport, wantTrace := runFingerprint(t, base)

	par := determinismScenario(202, chaosEverything)
	par.Shards = 4
	par.ShardWorkers = 4
	gotReport, gotTrace := runFingerprint(t, par)

	if gotReport != wantReport {
		t.Errorf("parallel workers: Report diverged\n got: %s\nwant: %s", gotReport, wantReport)
	}
	if gotTrace != wantTrace {
		t.Errorf("parallel workers: trace stream diverged (%d vs %d bytes)", len(gotTrace), len(wantTrace))
	}
}
