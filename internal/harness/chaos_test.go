package harness

import (
	"strings"
	"testing"
	"time"
)

// TestTable7Reproducible is the bit-for-bit acceptance check for chaos
// runs: the same seed and profiles, executed twice from cold runners,
// must render byte-identical tables (text and CSV).
func TestTable7Reproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	render := func() (string, string) {
		tbl, err := Table7(NewRunner(1), 3)
		if err != nil {
			t.Fatal(err)
		}
		var txt, csv strings.Builder
		if err := tbl.Render(&txt); err != nil {
			t.Fatal(err)
		}
		if err := tbl.RenderCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return txt.String(), csv.String()
	}
	txt1, csv1 := render()
	txt2, csv2 := render()
	if txt1 != txt2 {
		t.Errorf("table 7 text differs between identical runs:\n--- first\n%s\n--- second\n%s", txt1, txt2)
	}
	if csv1 != csv2 {
		t.Error("table 7 CSV differs between identical runs")
	}
}

func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	tbl, err := Table7(NewRunner(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := len(chaosVariants) * len(chaosPolicies())
	if len(tbl.Rows) != want {
		t.Fatalf("table 7 has %d rows, want %d", len(tbl.Rows), want)
	}
	var txt, csv strings.Builder
	if err := tbl.Render(&txt); err != nil {
		t.Fatal(err)
	}
	if err := tbl.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if txt.Len() == 0 || csv.Len() == 0 {
		t.Error("empty render")
	}
}

// TestSensorDropoutWithinBound: under the standard 20% sensor dropout
// profile, EVOLVE's violation rate must stay within 2× its fault-free
// rate (plus a small absolute floor for near-zero baselines) — the
// degraded-mode loop holds the last safe operating point instead of
// chasing a partial picture.
func TestSensorDropoutWithinBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	r := NewRunner(0)
	pol := chaosPolicies()[0] // evolve
	clean := chaosBase(11)
	clean.Name = "bound-clean"
	dropped := chaosBase(11)
	dropped.Name = "bound-dropout"
	dropped.Chaos = "sensor-dropout" // metric-drop p=0.2
	base, err := r.Run(clean, pol)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := r.Run(dropped, pol)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.SamplesDropped == 0 {
		t.Fatal("dropout profile dropped no samples; injection not active")
	}
	limit := 2*base.OverallViolation() + 0.01
	if v := faulty.OverallViolation(); v > limit {
		t.Errorf("violation under 20%% dropout = %.4f, want <= %.4f (fault-free %.4f)",
			v, limit, base.OverallViolation())
	}
}

// TestNodeKillReconverges: after the injected node crash the ready
// replica count must regain its pre-crash level within a bounded number
// of control periods — the crash evicts replicas, the scheduler
// re-places them, and the hardened loop absorbs the disturbance.
func TestNodeKillReconverges(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	r := NewRunner(0)
	sc := chaosBase(5)
	sc.Name = "reconverge"
	sc.Chaos = "node-kill" // node-crash@30m-45m:node=node-0
	res, err := r.Run(sc, chaosPolicies()[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCrashes == 0 {
		t.Fatal("node-kill profile crashed no node; injection not active")
	}
	recovery := recoveryStats(seriesPoints(res.Cluster, "app/web/ready"), 30*time.Minute)
	if bound := 8 * sc.ControlInterval; recovery > bound {
		t.Errorf("ready replicas took %v to reconverge after node kill, want <= %v (8 control periods)",
			recovery, bound)
	}
}

// TestChaosSoak runs the everything-at-once profile end to end and
// checks the run survives with every fault class actually exercised and
// the degraded-mode machinery engaged where expected.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	r := NewRunner(0)
	sc := chaosBase(9)
	sc.Name = "soak"
	sc.Duration = 2 * time.Hour
	sc.Chaos = "mixed"
	res, err := r.Run(sc, chaosPolicies()[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesDropped == 0 {
		t.Error("soak: no samples dropped")
	}
	if res.ActuationFaults == 0 {
		t.Error("soak: no actuation faults landed")
	}
	if res.NodeCrashes == 0 {
		t.Error("soak: node crash window never fired")
	}
	if res.Retries == 0 {
		t.Error("soak: retry ladder never engaged despite act-reject faults")
	}
	// The service must end the run alive and observable.
	if len(res.Apps) != 1 || res.Apps[0].MeanReplicas <= 0 {
		t.Errorf("soak: app results %+v", res.Apps)
	}
}
