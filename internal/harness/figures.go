package harness

import (
	"fmt"
	"time"

	"evolve/internal/baseline"
	"evolve/internal/cluster"
	"evolve/internal/core"
	"evolve/internal/metrics"
	"evolve/internal/pid"
	"evolve/internal/resource"
	"evolve/internal/sim"
	"evolve/internal/workload"
)

// seriesPoints extracts (t, value) pairs from a cluster metric series.
func seriesPoints(c *cluster.Cluster, name string) []metrics.Sample {
	return c.Metrics().Series(name).Samples()
}

// Figure1 renders the diurnal latency time series of the web service
// under three policies: the qualitative "EVOLVE holds the PLO flat while
// baselines spike at the peaks" picture.
func Figure1(r *Runner, seed int64) (*Figure, error) {
	r = ensureRunner(r)
	f := &Figure{
		ID:      "Figure 1",
		Title:   "Web-service mean latency under a diurnal cycle (PLO 100ms)",
		XLabel:  "minutes",
		Columns: []string{"offered load (op/s)", "evolve (ms)", "hpa (ms)", "static-2x (ms)"},
	}
	sc := BuildScenario(MixCloud, seed)
	var jobs []RunJob
	keep := map[string]bool{"evolve": true, "hpa": true, "static-2x": true}
	for _, pol := range StandardPolicies() {
		if !keep[pol.Name] {
			continue
		}
		jobs = append(jobs, RunJob{Scenario: sc, Policy: pol})
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("figure1 %w", err)
	}
	series := make(map[string][]metrics.Sample)
	var offered []metrics.Sample
	for _, res := range runs {
		series[res.Policy] = seriesPoints(res.Cluster, "app/web/latency-mean")
		if offered == nil {
			offered = seriesPoints(res.Cluster, "app/web/offered")
		}
	}
	n := len(offered)
	for _, s := range series {
		if len(s) < n {
			n = len(s)
		}
	}
	for i := 0; i < n; i++ {
		if err := f.AddPoint(offered[i].At.Minutes(),
			offered[i].Value,
			series["evolve"][i].Value*1000,
			series["hpa"][i].Value*1000,
			series["static-2x"][i].Value*1000,
		); err != nil {
			return nil, err
		}
	}
	f.Notes = append(f.Notes, "PLO bound: 100 ms mean latency; diurnal peak is 3x the sizing point")
	return f, nil
}

// Figure2 shows EVOLVE's allocation tracking: offered load against total
// CPU allocation and actual CPU usage for the web service.
func Figure2(r *Runner, seed int64) (*Figure, error) {
	r = ensureRunner(r)
	f := &Figure{
		ID:      "Figure 2",
		Title:   "Allocation tracks offered load (EVOLVE, web service)",
		XLabel:  "minutes",
		Columns: []string{"offered (op/s)", "total cpu alloc (cores)", "total cpu usage (cores)", "replicas"},
	}
	sc := BuildScenario(MixCloud, seed)
	res, err := r.Run(sc, Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())})
	if err != nil {
		return nil, err
	}
	c := res.Cluster
	offered := seriesPoints(c, "app/web/offered")
	alloc := seriesPoints(c, "app/web/alloc/cpu")
	usage := seriesPoints(c, "app/web/usage/cpu")
	reps := seriesPoints(c, "app/web/replicas")
	ready := seriesPoints(c, "app/web/ready")
	n := minLen(len(offered), len(alloc), len(usage), len(reps), len(ready))
	for i := 0; i < n; i++ {
		r := reps[i].Value
		if err := f.AddPoint(offered[i].At.Minutes(),
			offered[i].Value,
			alloc[i].Value*r/1000,
			usage[i].Value*ready[i].Value/1000,
			r,
		); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func minLen(ns ...int) int {
	m := ns[0]
	for _, n := range ns[1:] {
		if n < m {
			m = n
		}
	}
	return m
}

// StepStats summarises a step response: time to re-enter the PLO band
// and the worst normalised excursion.
type StepStats struct {
	Policy      string
	SettleAfter time.Duration // from the step until SLI stays in band
	WorstSLI    float64       // max SLI/target after the step
}

// Figure3 drives a flash-crowd step (3x) into the web service and records
// the latency trajectory for EVOLVE with and without the feedforward
// demand model, plus the HPA baseline; settling times go in the notes.
func Figure3(r *Runner, seed int64) (*Figure, []StepStats, error) {
	r = ensureRunner(r)
	f := &Figure{
		ID:      "Figure 3",
		Title:   "Step response: 3x flash crowd at t=10min (web, PLO 100ms)",
		XLabel:  "minutes",
		Columns: []string{"offered (op/s)", "evolve (ms)", "evolve-no-ff (ms)", "hpa (ms)"},
	}
	base := 300.0
	stepAt := 10 * time.Minute
	mkScenario := func() Scenario {
		return Scenario{
			Name: "step", Seed: seed, Nodes: 10, NodeCapacity: StandardNode(),
			Duration: 40 * time.Minute, Warmup: 5 * time.Minute,
			ControlInterval: 15 * time.Second,
			Apps: []AppLoad{{
				Spec:    workload.Service(workload.Web, "web", base, 2),
				Pattern: workload.Step{Before: base, After: base * 3, At: stepAt},
			}},
		}
	}
	noFF := core.DefaultConfig()
	noFF.Feedforward = false
	policies := []Policy{
		{Name: "evolve", Factory: core.Factory(core.DefaultConfig())},
		{Name: "evolve-no-ff", Factory: core.Factory(noFF)},
		{Name: "hpa", Factory: baseline.HPAFactory(baseline.DefaultHPAConfig())},
	}
	jobs := make([]RunJob, len(policies))
	for i, pol := range policies {
		jobs[i] = RunJob{Scenario: mkScenario(), Policy: pol}
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, nil, fmt.Errorf("figure3 %w", err)
	}
	var stats []StepStats
	var cols [][]metrics.Sample
	var offered []metrics.Sample
	target := 0.1 // 100ms
	for _, res := range runs {
		lat := seriesPoints(res.Cluster, "app/web/latency-mean")
		cols = append(cols, lat)
		if offered == nil {
			offered = seriesPoints(res.Cluster, "app/web/offered")
		}
		stats = append(stats, stepStatsFrom(res.Policy, lat, stepAt, target))
	}
	n := minLen(len(offered), len(cols[0]), len(cols[1]), len(cols[2]))
	for i := 0; i < n; i++ {
		if err := f.AddPoint(offered[i].At.Minutes(),
			offered[i].Value, cols[0][i].Value*1000, cols[1][i].Value*1000, cols[2][i].Value*1000); err != nil {
			return nil, nil, err
		}
	}
	for _, s := range stats {
		f.Notes = append(f.Notes, fmt.Sprintf("%s: settles %.0fs after the step, worst SLI %.1fx target",
			s.Policy, s.SettleAfter.Seconds(), s.WorstSLI))
	}
	return f, stats, nil
}

// stepStatsFrom computes settling time (SLI back within 1.2x target and
// staying there) and worst excursion after the step.
func stepStatsFrom(policy string, lat []metrics.Sample, stepAt time.Duration, target float64) StepStats {
	st := StepStats{Policy: policy}
	band := target * 1.2
	settled := time.Duration(-1)
	for i, s := range lat {
		if s.At < stepAt {
			continue
		}
		if s.Value/target > st.WorstSLI {
			st.WorstSLI = s.Value / target
		}
		if s.Value <= band {
			if settled < 0 {
				settled = s.At
			}
		} else {
			settled = -1
		}
		_ = i
	}
	if settled >= 0 {
		st.SettleAfter = settled - stepAt
	} else if len(lat) > 0 {
		st.SettleAfter = lat[len(lat)-1].At - stepAt // never settled
	}
	return st
}

// Figure4 contrasts adaptive and fixed PID gains at the controller level,
// on a first-order plant whose gain drifts 4x mid-run — the situation
// online tuning exists for: a loop tuned for yesterday's application
// behaviour meets today's. Setpoint steps land before and after the
// drift; the adaptive loop re-tunes, the fixed loops are either sluggish
// throughout or oscillate once the plant gain rises.
func Figure4(seed int64) (*Figure, error) {
	f := &Figure{
		ID:      "Figure 4",
		Title:   "Adaptive vs fixed PID gains under 4x plant-gain drift (controller level)",
		XLabel:  "minutes",
		Columns: []string{"setpoint", "adaptive", "fixed-sluggish", "fixed-aggressive"},
	}
	const (
		dt       = 5 * time.Second
		horizon  = 40 * time.Minute
		setLow   = 10.0
		setHigh  = 25.0
		driftAt  = 20 * time.Minute
		gainPre  = 1.0
		gainPost = 4.0
	)
	setpointAt := func(at time.Duration) float64 {
		// Steps at 5 and 25 minutes (one per plant regime).
		if (at >= 5*time.Minute && at < 15*time.Minute) || (at >= 25*time.Minute && at < 35*time.Minute) {
			return setHigh
		}
		return setLow
	}
	run := func(gains pid.Gains, adaptive bool) []float64 {
		cfg := pid.Config{Gains: gains, OutMin: 0, OutMax: 100, DerivativeTau: 10 * time.Second}
		ctrl := pid.MustController(cfg)
		var tuner *pid.Tuner
		if adaptive {
			tuner = pid.NewTuner(ctrl, pid.DefaultTunerConfig())
		}
		rng := sim.NewRNG(seed)
		y, tau := 0.0, 30.0 // first-order lag, 30s time constant
		var out []float64
		for at := time.Duration(0); at < horizon; at += dt {
			gain := gainPre
			if at >= driftAt {
				gain = gainPost
			}
			set := setpointAt(at)
			u := ctrl.Update(set, y, dt)
			if tuner != nil {
				tuner.Observe((set - y) / setHigh)
			}
			y += (u*gain - y) * dt.Seconds() / tau
			y += rng.Normal(0, 0.02)
			out = append(out, y)
		}
		return out
	}

	sluggish := pid.Gains{Kp: 0.3, Ki: 0.05, Kd: 0}
	aggressive := pid.Gains{Kp: 4, Ki: 1.0, Kd: 0}
	adaptive := run(sluggish, true) // starts equally mis-tuned, adapts
	fixedS := run(sluggish, false)
	fixedA := run(aggressive, false)
	n := minLen(len(adaptive), len(fixedS), len(fixedA))
	for i := 0; i < n; i++ {
		at := time.Duration(i) * dt
		if err := f.AddPoint(at.Minutes(), setpointAt(at), adaptive[i], fixedS[i], fixedA[i]); err != nil {
			return nil, err
		}
	}
	// Tracking-error summaries (mean |error| per plant regime).
	note := func(name string, ys []float64) string {
		var pre, post float64
		var npre, npost int
		for i, y := range ys {
			at := time.Duration(i) * dt
			e := absFloat(setpointAt(at) - y)
			if at < driftAt {
				pre += e
				npre++
			} else {
				post += e
				npost++
			}
		}
		return fmt.Sprintf("%s: mean |err| %.2f before drift, %.2f after", name, pre/float64(npre), post/float64(npost))
	}
	f.Notes = append(f.Notes,
		"plant gain quadruples at t=20min; the adaptive loop starts with the same gains as fixed-sluggish",
		note("adaptive", adaptive), note("fixed-sluggish", fixedS), note("fixed-aggressive", fixedA))
	return f, nil
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Figure5 shows the converged cluster in action: CPU usage fraction,
// allocation fraction, pending pods and the service SLI health over time
// under the EVOLVE controller.
func Figure5(r *Runner, seed int64) (*Figure, error) {
	r = ensureRunner(r)
	f := &Figure{
		ID:      "Figure 5",
		Title:   "Converged cluster timeline (cloud + big-data + HPC, EVOLVE)",
		XLabel:  "minutes",
		Columns: []string{"cpu allocated frac", "cpu used frac", "pending pods", "violating apps"},
	}
	sc := BuildScenario(MixConverged, seed)
	res, err := r.Run(sc, Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())})
	if err != nil {
		return nil, err
	}
	c := res.Cluster
	alloc := seriesPoints(c, "cluster/allocated/cpu")
	used := seriesPoints(c, "cluster/usage/cpu")
	pending := seriesPoints(c, "cluster/pending")
	viol := make(map[time.Duration]float64)
	for _, app := range c.Apps() {
		for _, s := range seriesPoints(c, "app/"+app+"/violation") {
			viol[s.At] += s.Value
		}
	}
	n := minLen(len(alloc), len(used), len(pending))
	for i := 0; i < n; i++ {
		if err := f.AddPoint(alloc[i].At.Minutes(),
			alloc[i].Value, used[i].Value, pending[i].Value, viol[alloc[i].At]); err != nil {
			return nil, err
		}
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("hpc: %d jobs completed, mean wait %.0fs; batch: %d DAGs completed, mean makespan %.0fs",
			res.HPCCompleted, res.HPCMeanWait.Seconds(), res.BatchCompleted, res.BatchMakespan.Seconds()),
		fmt.Sprintf("preemptions: %d, service violations overall: %.2f%%", res.Preemptions, res.OverallViolation()*100))
	return f, nil
}

// Figure7 sweeps the static overprovisioning factor and plots the
// violation-vs-allocation frontier, with the EVOLVE point for contrast:
// the "how much safety margin would static requests need to match the
// controller" picture.
func Figure7(r *Runner, seed int64) (*Figure, error) {
	r = ensureRunner(r)
	f := &Figure{
		ID:      "Figure 7",
		Title:   "Violations vs allocated capacity: static overprovisioning frontier",
		XLabel:  "mean cpu alloc fraction",
		Columns: []string{"violations % (static)", "violations % (evolve)"},
	}
	sc := BuildScenario(MixCloud, seed)
	jobs := []RunJob{{Scenario: sc, Policy: Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())}}}
	for _, factor := range []float64{1.0, 1.5, 2.0, 2.5, 3.0, 4.0} {
		jobs = append(jobs, RunJob{Scenario: sc, Policy: Policy{
			Name:          fmt.Sprintf("static-%.1fx", factor),
			Factory:       baseline.StaticFactory(),
			Overprovision: factor,
		}})
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("figure7 %w", err)
	}
	evRes := runs[0]
	evViol := evRes.OverallViolation() * 100
	evAlloc := evRes.AllocFraction[resource.CPU]
	for _, res := range runs[1:] {
		if err := f.AddPoint(res.AllocFraction[resource.CPU], res.OverallViolation()*100, -1); err != nil {
			return nil, err
		}
	}
	if err := f.AddPoint(evAlloc, -1, evViol); err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes,
		"-1 marks absent points (the two series occupy different x positions)",
		fmt.Sprintf("evolve: %.2f%% violations at %.3f alloc fraction", evViol, evAlloc))
	return f, nil
}

// Figure6 and Table4 measure control-plane overhead in wall-clock time;
// they live in overhead.go.
