package harness

import (
	"fmt"
	"time"

	"evolve/internal/baseline"
	"evolve/internal/cluster"
	"evolve/internal/control"
	"evolve/internal/core"
	"evolve/internal/hpc"
	"evolve/internal/metrics"
	"evolve/internal/resource"
	"evolve/internal/sched"
	"evolve/internal/workload"
)

// hpaPolicy is the standard HPA factory used in extension figures.
func hpaPolicy() control.Factory {
	return baseline.HPAFactory(baseline.DefaultHPAConfig())
}

// Table5 prices the headline comparison: what each policy's allocations
// would bill at cloud rates and draw in energy over the cloud mix, plus
// the consolidation effect of binpack scheduling on the converged mix.
// The point the numbers make: PLO compliance and a lower bill are not a
// trade-off once allocations track demand.
func Table5(r *Runner, seed int64) (*Table, error) {
	r = ensureRunner(r)
	t := &Table{
		ID:      "Table 5",
		Title:   "Cost and energy of the policies (2h cloud mix; cloud on-demand rates, linear server power)",
		Headers: []string{"policy", "violations %", "bill ($)", "energy (Wh)", "$ vs evolve"},
		Notes: []string{
			"bill prices *allocations* (reservations bill whether used or not); energy follows *usage* plus idle node floor",
			"static-3x buys compliance with a ~60% higher bill; evolve gets compliance at the lowest bill",
		},
	}
	sc := BuildScenario(MixCloud, seed)
	std := StandardPolicies()
	var jobs []RunJob
	for _, pol := range std {
		jobs = append(jobs, RunJob{Scenario: sc, Policy: pol})
	}
	// Consolidation coda: binpack vs spread energy on the converged mix.
	consolidation := []struct {
		name   string
		policy sched.Policy
	}{{"evolve+spread", sched.PolicySpread}, {"evolve+binpack", sched.PolicyBinPack}}
	for _, sp := range consolidation {
		scc := BuildScenario(MixConverged, seed)
		scc.SchedulerPolicy = sp.policy
		jobs = append(jobs, RunJob{Scenario: scc, Policy: Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())}})
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("table5 %w", err)
	}
	var evolveBill float64
	for i, res := range runs[:len(std)] {
		if std[i].Name == "evolve" {
			evolveBill = res.Dollars
		}
	}
	for _, res := range runs[:len(std)] {
		rel := "1.00x"
		if evolveBill > 0 {
			rel = fmt.Sprintf("%.2fx", res.Dollars/evolveBill)
		}
		t.AddRow(res.Policy, res.OverallViolation()*100, res.Dollars, res.WattHour, rel)
	}
	for i, res := range runs[len(std):] {
		t.AddRow(consolidation[i].name+" (converged)", res.OverallViolation()*100, res.Dollars, res.WattHour, "-")
	}
	return t, nil
}

// Figure8 injects a node failure at the diurnal peak and shows the
// recovery: ready replicas dip as the victim's pods return to the pending
// queue, the scheduler re-places them, and the controller absorbs the
// transient — the fault-tolerance picture a production autoscaler paper
// needs.
func Figure8(r *Runner, seed int64) (*Figure, error) {
	r = ensureRunner(r)
	f := &Figure{
		ID:      "Figure 8",
		Title:   "Node failure at peak load (t=30min, restored t=45min; EVOLVE)",
		XLabel:  "minutes",
		Columns: []string{"web latency (ms)", "web ready replicas", "cluster pending pods"},
	}
	sc := Scenario{
		Name: "failure", Seed: seed, Nodes: 4, NodeCapacity: StandardNode(),
		Duration: 70 * time.Minute, Warmup: 5 * time.Minute,
		ControlInterval: 15 * time.Second,
		Apps: []AppLoad{{
			Spec:    workload.Service(workload.Web, "web", 600, 3),
			Pattern: workload.Constant(1500), // steady peak-level load
		}},
	}
	pol := Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())}
	res, err := r.RunWithHooks(sc, pol, []Hook{
		{At: 30 * time.Minute, Do: func(c *cluster.Cluster) {
			if err := c.FailNode("node-0"); err != nil {
				panic(err)
			}
		}},
		{At: 45 * time.Minute, Do: func(c *cluster.Cluster) {
			if err := c.RestoreNode("node-0"); err != nil {
				panic(err)
			}
		}},
	})
	if err != nil {
		return nil, err
	}
	c := res.Cluster
	lat := seriesPoints(c, "app/web/latency-mean")
	ready := seriesPoints(c, "app/web/ready")
	pending := seriesPoints(c, "cluster/pending")
	n := minLen(len(lat), len(ready), len(pending))
	for i := 0; i < n; i++ {
		if err := f.AddPoint(lat[i].At.Minutes(),
			lat[i].Value*1000, ready[i].Value, pending[i].Value); err != nil {
			return nil, err
		}
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("evictions due to the failure: %d; violations overall: %.2f%%",
			c.Metrics().Counter("evictions/node-failure").Value(), res.OverallViolation()*100),
		fmt.Sprintf("ready replicas recover %.0fs after the failure (replicas re-placed at the next tick)",
			recoveryStats(ready, 30*time.Minute).Seconds()))
	return f, nil
}

// Figure9 sweeps the replica startup delay (image pull + init + warmup)
// and compares EVOLVE against the horizontal-only HPA on a 2.5x flash
// crowd. In-place vertical resizes take effect immediately; new replicas
// take the full startup delay — so a horizontal-only policy degrades
// linearly with the delay while the vertical-first controller barely
// notices it.
func Figure9(r *Runner, seed int64) (*Figure, error) {
	r = ensureRunner(r)
	f := &Figure{
		ID:      "Figure 9",
		Title:   "Startup-delay sensitivity under a 2.5x flash crowd (violations %)",
		XLabel:  "replica startup delay (s)",
		Columns: []string{"evolve", "hpa"},
	}
	base := 300.0
	delays := []time.Duration{0, 15 * time.Second, 30 * time.Second, 60 * time.Second, 120 * time.Second, 240 * time.Second}
	var jobs []RunJob
	for _, delay := range delays {
		spec := workload.Service(workload.Web, "web", base, 2)
		spec.StartupDelay = delay
		sc := Scenario{
			Name: "startup", Seed: seed, Nodes: 8, NodeCapacity: StandardNode(),
			Duration: 40 * time.Minute, Warmup: 5 * time.Minute,
			ControlInterval: 15 * time.Second,
			Apps: []AppLoad{{
				Spec:    spec,
				Pattern: workload.FlashCrowd{Base: base, Spike: base * 2.5, Start: 10 * time.Minute, Length: 15 * time.Minute},
			}},
		}
		jobs = append(jobs,
			RunJob{Scenario: sc, Policy: Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())}},
			RunJob{Scenario: sc, Policy: Policy{Name: "hpa", Factory: hpaPolicy()}})
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("figure9 %w", err)
	}
	for i, delay := range delays {
		ev, hpa := runs[2*i], runs[2*i+1]
		if err := f.AddPoint(delay.Seconds(), ev.OverallViolation()*100, hpa.OverallViolation()*100); err != nil {
			return nil, err
		}
	}
	f.Notes = append(f.Notes,
		"in-place vertical resizes are instant; each new replica waits out the startup delay",
		"the horizontal-only policy pays the delay on every flash crowd; the vertical-first controller does not")
	return f, nil
}

// Figure10 sweeps the controller's utilisation target — its single most
// consequential knob — over the cloud mix, tracing the violation-vs-
// efficiency curve. A robust design shows a wide flat region: anywhere
// between ~0.5 and ~0.8 works, with violations only exploding as the
// target approaches the saturation knee.
func Figure10(r *Runner, seed int64) (*Figure, error) {
	r = ensureRunner(r)
	f := &Figure{
		ID:      "Figure 10",
		Title:   "Controller sensitivity: utilisation target vs outcome (cloud mix)",
		XLabel:  "utilisation target",
		Columns: []string{"violations %", "usage/alloc"},
	}
	sc := BuildScenario(MixCloud, seed)
	targets := []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	jobs := make([]RunJob, len(targets))
	for i, target := range targets {
		cfg := core.DefaultConfig()
		cfg.UtilTarget = target
		jobs[i] = RunJob{Scenario: sc, Policy: Policy{Name: fmt.Sprintf("evolve-u%.1f", target), Factory: core.Factory(cfg)}}
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("figure10 %w", err)
	}
	for i, target := range targets {
		res := runs[i]
		if err := f.AddPoint(target, res.OverallViolation()*100, res.UsageOfAlloc); err != nil {
			return nil, err
		}
	}
	f.Notes = append(f.Notes,
		"usage/alloc rises with the target by construction; violations stay low until the target nears the service curve's knee",
		"the default (0.7) sits on the flat part of the violation curve")
	return f, nil
}

// Table6 is the thesis experiment: the same workload on the same 8 nodes,
// once partitioned into per-world silos (3 service + 2 batch + 3 HPC
// nodes, the pre-convergence status quo) and once fully shared with
// priorities and preemption keeping the services safe. Sharing should
// dominate on batch/HPC outcomes at equal or better service compliance —
// the "converging worlds" claim of the paper's title.
func Table6(r *Runner, seed int64) (*Table, error) {
	r = ensureRunner(r)
	t := &Table{
		ID:      "Table 6",
		Title:   "Partitioned silos vs converged sharing (same 8 nodes, same workload, EVOLVE)",
		Headers: []string{"topology", "svc violations %", "hpc wait (s)", "hpc done", "batch mean makespan (s)", "batch done", "cpu usage frac"},
		Notes: []string{
			"partitioned: services pinned to 3 nodes, batch to 2, HPC to 3 (static silos)",
			"shared: one pool; services protected by priority and preemption instead of fences",
		},
	}
	build := func(partitioned bool) Scenario {
		sc := Scenario{
			Name:            "silos",
			Seed:            seed,
			NodeCapacity:    StandardNode(),
			Duration:        2 * time.Hour,
			Warmup:          10 * time.Minute,
			ControlInterval: 15 * time.Second,
			Pools: []NodePool{
				{Name: "svc", Count: 3, Labels: map[string]string{"pool": "svc"}},
				{Name: "batch", Count: 2, Labels: map[string]string{"pool": "batch"}},
				{Name: "hpc", Count: 3, Labels: map[string]string{"pool": "hpc"}},
			},
			Apps:      CloudApps(seed),
			BatchJobs: BatchStream(7, 15*time.Minute, 2),
			HPCJobs:   HPCStream(24, 3*time.Minute, 6),
			HPCPolicy: hpc.Backfill,
		}
		if partitioned {
			for i := range sc.Apps {
				sc.Apps[i].Spec.NodeSelector = map[string]string{"pool": "svc"}
			}
			for i := range sc.BatchJobs {
				for j := range sc.BatchJobs[i].Job.Stages {
					sc.BatchJobs[i].Job.Stages[j].NodeSelector = map[string]string{"pool": "batch"}
				}
			}
			for i := range sc.HPCJobs {
				sc.HPCJobs[i].Job.NodeSelector = map[string]string{"pool": "hpc"}
			}
		}
		return sc
	}
	modes := []struct {
		name        string
		partitioned bool
	}{{"partitioned", true}, {"shared", false}}
	jobs := make([]RunJob, len(modes))
	for i, mode := range modes {
		jobs[i] = RunJob{Scenario: build(mode.partitioned), Policy: Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())}}
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("table6 %w", err)
	}
	for i, res := range runs {
		t.AddRow(modes[i].name,
			res.OverallViolation()*100,
			res.HPCMeanWait.Seconds(), res.HPCCompleted,
			res.BatchMakespan.Seconds(), res.BatchCompleted,
			res.UsageFraction[resource.CPU])
	}
	return t, nil
}

// Figure11 stresses burst robustness: a web service under a Markov-
// modulated load whose high state is swept from 2x to 8x the base rate
// (mean holding times 8 min low / 2 min high). Bursty arrivals are where
// reactive controllers bleed violations; the feedforward demand model
// keeps the re-provision to one control period per burst.
func Figure11(r *Runner, seed int64) (*Figure, error) {
	r = ensureRunner(r)
	f := &Figure{
		ID:      "Figure 11",
		Title:   "Burst robustness: violations vs MMPP burst ratio (web, PLO 100ms)",
		XLabel:  "burst ratio (high/low rate)",
		Columns: []string{"evolve %", "hpa %", "static-3x %"},
	}
	base := 250.0
	ratios := []float64{2, 4, 6, 8}
	var jobs []RunJob
	for _, ratio := range ratios {
		// The three policies share one stateful MMPP pattern; its lazy
		// switch schedule is mutex-guarded and call-order independent,
		// so parallel runs stay deterministic.
		pattern := workload.NewMMPP(base, base*ratio, 8*time.Minute, 2*time.Minute, seed+int64(ratio))
		sc := Scenario{
			Name: "burst", Seed: seed, Nodes: 8, NodeCapacity: StandardNode(),
			Duration: 2 * time.Hour, Warmup: 10 * time.Minute,
			ControlInterval: 15 * time.Second,
			Apps: []AppLoad{{
				Spec:    workload.Service(workload.Web, "web", base, 2),
				Pattern: pattern,
			}},
		}
		for _, pol := range []Policy{
			{Name: "evolve", Factory: core.Factory(core.DefaultConfig())},
			{Name: "hpa", Factory: hpaPolicy()},
			{Name: "static-3x", Factory: baseline.StaticFactory(), Overprovision: 3},
		} {
			jobs = append(jobs, RunJob{Scenario: sc, Policy: pol})
		}
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("figure11 %w", err)
	}
	for i, ratio := range ratios {
		if err := f.AddPoint(ratio,
			runs[3*i].OverallViolation()*100,
			runs[3*i+1].OverallViolation()*100,
			runs[3*i+2].OverallViolation()*100); err != nil {
			return nil, err
		}
	}
	f.Notes = append(f.Notes,
		"MMPP bursts: exponential holding times, 8min low / 2min high",
		"static-3x is provisioned for 3x base — it holds until the burst ratio exceeds its margin, then falls off a cliff")
	return f, nil
}

// recoveryStats extracts how long the service stayed degraded after an
// injection at the given time: the span until ready replicas return to
// their pre-failure level.
func recoveryStats(ready []metrics.Sample, failAt time.Duration) time.Duration {
	pre := 0.0
	for _, s := range ready {
		if s.At >= failAt {
			break
		}
		pre = s.Value
	}
	for _, s := range ready {
		if s.At <= failAt {
			continue
		}
		if s.Value >= pre {
			return s.At - failAt
		}
	}
	if len(ready) == 0 {
		return 0
	}
	return ready[len(ready)-1].At - failAt
}
