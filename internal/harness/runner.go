package harness

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"evolve/internal/obs"
)

// Runner executes (scenario, policy) simulations through a bounded worker
// pool with a content-addressed run cache. Independent runs fan out
// across up to Workers goroutines; runs with equal fingerprints execute
// exactly once and every other requester — concurrent or later — receives
// the same *Result. Results must therefore be treated as immutable by
// callers, which they already are: tables and figures only read them.
//
// Determinism: each run builds its own sim.Engine from the scenario
// seed and shares no mutable state with other runs, so parallel results
// are byte-identical to serial ones (TestRunnerDeterminism enforces
// this). The cache is safe even at Workers == 1, where it removes the
// duplicate (scenario, policy) simulations the evaluation suite shares
// between tables and figures.
type Runner struct {
	workers  int
	sem      chan struct{}
	traceDir string

	mu       sync.Mutex
	cache    map[string]*runEntry
	scaleDir string // on-disk scale-row cache root (scalecache.go); "" = off
	stats    RunnerStats
}

// RunnerStats counts what the runner actually did.
type RunnerStats struct {
	// Runs is the number of simulations executed.
	Runs uint64
	// CacheHits is the number of requests served from a prior or
	// in-flight identical run without simulating.
	CacheHits uint64
	// Uncacheable is the number of runs whose scenario could not be
	// fingerprinted (or carried hooks) and executed outside the cache.
	Uncacheable uint64
	// ScaleHits is the number of Figure 6 scale rows served from the
	// on-disk scale-row cache (scalecache.go) instead of being re-run.
	ScaleHits uint64
}

// RunJob is one unit of work for RunMany. Jobs with hooks bypass the
// cache: hooks are arbitrary functions and have no canonical encoding.
type RunJob struct {
	Scenario Scenario
	Policy   Policy
	Hooks    []Hook
}

// NewRunner returns a runner executing at most workers simulations at
// once; workers <= 0 means GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
		cache:   make(map[string]*runEntry),
	}
}

// Workers returns the concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// SetTraceDir makes every subsequent simulation record its decision
// trace to <dir>/<scenario>__<policy>.jsonl. The directory must exist.
// Cached results do not re-run, so only cache-miss runs produce traces;
// call this before the first Run to capture everything.
func (r *Runner) SetTraceDir(dir string) { r.traceDir = dir }

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

type runEntry struct {
	done chan struct{}
	res  *Result
	err  error
}

// Run executes the scenario under the policy, deduplicating against any
// identical run this runner has seen. Errors are memoised like results:
// a failing configuration fails every requester identically.
func (r *Runner) Run(sc Scenario, pol Policy) (*Result, error) {
	key, err := ScenarioFingerprint(sc, pol)
	if err != nil {
		r.mu.Lock()
		r.stats.Uncacheable++
		r.mu.Unlock()
		return r.execute(sc, pol, nil)
	}
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.stats.CacheHits++
		r.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &runEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()
	e.res, e.err = r.execute(sc, pol, nil)
	close(e.done)
	return e.res, e.err
}

// RunWithHooks executes an injection run through the worker pool. Hook
// functions cannot be fingerprinted, so these runs never touch the cache.
func (r *Runner) RunWithHooks(sc Scenario, pol Policy, hooks []Hook) (*Result, error) {
	r.mu.Lock()
	r.stats.Uncacheable++
	r.mu.Unlock()
	return r.execute(sc, pol, hooks)
}

func (r *Runner) execute(sc Scenario, pol Policy, hooks []Hook) (*Result, error) {
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	r.mu.Lock()
	r.stats.Runs++
	r.mu.Unlock()
	if r.traceDir == "" {
		return runScenario(sc, pol, hooks, nil)
	}
	path := filepath.Join(r.traceDir, sanitise(sc.Name)+"__"+sanitise(pol.Name)+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("harness: trace file: %w", err)
	}
	w := bufio.NewWriter(f)
	tr := obs.New(obs.DefaultCapacity)
	tr.SetSink(w)
	res, runErr := runScenario(sc, pol, hooks, tr)
	if err := w.Flush(); err == nil {
		err = f.Close()
		if runErr == nil && err != nil {
			runErr = fmt.Errorf("harness: trace file: %w", err)
		}
	} else {
		_ = f.Close()
		if runErr == nil {
			runErr = fmt.Errorf("harness: trace file: %w", err)
		}
	}
	if runErr == nil && tr.SinkErr() != nil {
		runErr = fmt.Errorf("harness: trace sink: %w", tr.SinkErr())
	}
	return res, runErr
}

// sanitise maps a scenario/policy name onto a filesystem-safe token.
func sanitise(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		default:
			return '-'
		}
	}, name)
}

// RunMany fans the jobs out across the pool and returns their results in
// job order. All jobs run to completion even when some fail; the first
// error in job order is returned alongside the partial results, with
// failed entries left nil.
func (r *Runner) RunMany(jobs []RunJob) ([]*Result, error) {
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := jobs[i]
			if len(j.Hooks) > 0 {
				results[i], errs[i] = r.RunWithHooks(j.Scenario, j.Policy, j.Hooks)
			} else {
				results[i], errs[i] = r.Run(j.Scenario, j.Policy)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("%s/%s: %w", jobs[i].Scenario.Name, jobs[i].Policy.Name, err)
		}
	}
	return results, nil
}

// ensureRunner substitutes a serial private runner when a table or
// figure is invoked without one; the cache still collapses duplicates
// within that single table or figure.
func ensureRunner(r *Runner) *Runner {
	if r != nil {
		return r
	}
	return NewRunner(1)
}
