package harness

import (
	"fmt"
	"time"

	"evolve/internal/cluster"
	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

// Figure 6 — simulation-kernel scalability. The old control-plane
// latency sweep moved into Table 4; Figure 6 now answers the question
// the sharded kernel exists for: how fast does one telemetry tick run
// as the substrate grows to 100k nodes / 1M pods, and what does
// sharding buy at each scale? Topologies are stood up with
// cluster.ProvisionBulk (replicas come up bound and serving, so the
// sweep measures the kernel, not setup), then driven for a fixed
// number of metric ticks per (point, shard count) with the wall clock
// around Run only.

// ScalePoint is one topology size of the sweep.
type ScalePoint struct {
	Nodes int
	Pods  int
}

// ScaleRow is the measured outcome of one (point, shard count) run —
// the record evolve-bench embeds in BENCH_6.json.
type ScaleRow struct {
	Nodes   int     `json:"nodes"`
	Pods    int     `json:"pods"`
	Shards  int     `json:"shards"`
	Workers int     `json:"workers"`
	Ticks   int     `json:"ticks"`
	WallMS  float64 `json:"wall_ms"`
	// MSPerTick is wall-clock per telemetry tick; NsPerPodTick the same
	// normalised per pod — the kernel's unit cost.
	MSPerTick    float64 `json:"ms_per_tick"`
	NsPerPodTick float64 `json:"ns_per_pod_tick"`
	// Events counts kernel events executed during the measured window;
	// ShardEvents breaks them down per shard engine (empty at 1 shard).
	Events      uint64   `json:"events"`
	ShardEvents []uint64 `json:"shard_events,omitempty"`
	// Speedup is wall(1 shard)/wall(this row) at the same point; 1.0 for
	// the baseline rows.
	Speedup float64 `json:"speedup"`
}

// ScaleConfig parameterises the Figure 6 sweep.
type ScaleConfig struct {
	Seed   int64
	Shards []int        // shard counts per point; first entry is the baseline
	Points []ScalePoint // topology ladder
	Ticks  int          // metric ticks driven per run
	// Workers bounds same-timestamp shard parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultScalePoints returns the topology ladder: the full Figure 6
// ladder tops out at 100k nodes / 1M pods; quick is the reduced ladder
// CI runs.
func DefaultScalePoints(quick bool) []ScalePoint {
	if quick {
		return []ScalePoint{
			{Nodes: 500, Pods: 5_000},
			{Nodes: 2_000, Pods: 20_000},
			{Nodes: 5_000, Pods: 50_000},
		}
	}
	return []ScalePoint{
		{Nodes: 1_000, Pods: 10_000},
		{Nodes: 5_000, Pods: 50_000},
		{Nodes: 10_000, Pods: 100_000},
		{Nodes: 25_000, Pods: 250_000},
		{Nodes: 50_000, Pods: 500_000},
		{Nodes: 100_000, Pods: 1_000_000},
	}
}

// DefaultScaleConfig is what evolve-bench runs when -shards is not
// given: the ladder under shard counts {1, 4, 8}.
func DefaultScaleConfig(seed int64, quick bool) ScaleConfig {
	return ScaleConfig{
		Seed:   seed,
		Shards: []int{1, 4, 8},
		Points: DefaultScalePoints(quick),
		Ticks:  6,
	}
}

// Figure6 runs the kernel scale sweep and returns both the rendered
// figure (X = pods, one ms/tick column per shard count) and the raw
// per-run rows.
func Figure6(cfg ScaleConfig) (*Figure, []ScaleRow, error) {
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 4, 8}
	}
	if len(cfg.Points) == 0 {
		cfg.Points = DefaultScalePoints(false)
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 6
	}
	f := &Figure{
		ID:     "Figure 6",
		Title:  "Simulation-kernel scalability (wall-clock per tick)",
		XLabel: "pods",
	}
	for _, s := range cfg.Shards {
		f.Columns = append(f.Columns, fmt.Sprintf("ms/tick (%d shard)", s))
	}
	rows := make([]ScaleRow, 0, len(cfg.Points)*len(cfg.Shards))
	for _, pt := range cfg.Points {
		ys := make([]float64, 0, len(cfg.Shards))
		var baseWall float64
		for i, shards := range cfg.Shards {
			row, err := runScalePoint(cfg.Seed, pt, shards, cfg.Workers, cfg.Ticks)
			if err != nil {
				return nil, nil, err
			}
			if i == 0 {
				baseWall = row.WallMS
			}
			if row.WallMS > 0 {
				row.Speedup = baseWall / row.WallMS
			}
			rows = append(rows, row)
			ys = append(ys, row.MSPerTick)
		}
		if err := f.AddPoint(float64(pt.Pods), ys...); err != nil {
			return nil, nil, err
		}
	}
	f.Notes = append(f.Notes,
		"provisioned via cluster.ProvisionBulk; wall clock measures Run only",
		"absolute values are machine-dependent; shard counts replay byte-identically")
	return f, rows, nil
}

// scaleService builds one service of the sweep topology; requests are
// sized so density pods per node fit a standard node with headroom.
func scaleService(name string, replicas, density int) cluster.ServiceSpec {
	if density < 1 {
		density = 1
	}
	node := StandardNode().Scale(0.94)
	req := resource.New(500, 1<<30, 1e6, 1e6)
	for _, k := range resource.Kinds() {
		if cap := node[k] / float64(density) * 0.9; req[k] > cap {
			req[k] = cap
		}
	}
	return cluster.ServiceSpec{
		Name: name,
		Model: perf.ServiceModel{
			BaseLatency:      2 * time.Millisecond,
			DemandPerOp:      resource.New(10, 0, 20e3, 50e3),
			MemFixed:         256 << 20,
			MemPerConcurrent: 4 << 20,
			MaxLatency:       30 * time.Second,
		},
		PLO:             plo.Latency(100 * time.Millisecond),
		InitialReplicas: replicas,
		InitialAlloc:    req,
		MaxReplicas:     replicas + 1,
		Priority:        100,
	}
}

// scaleServices splits the pod budget across a service fleet that grows
// with it (one service per ~2k pods, between 4 and 512 services).
func scaleServices(pods, density int) []cluster.ServiceSpec {
	apps := pods / 2048
	if apps < 4 {
		apps = 4
	}
	if apps > 512 {
		apps = 512
	}
	if apps > pods {
		apps = pods
	}
	per := pods / apps
	rem := pods - per*apps
	specs := make([]cluster.ServiceSpec, apps)
	for i := range specs {
		n := per
		if i < rem {
			n++
		}
		specs[i] = scaleService(fmt.Sprintf("svc-%03d", i), n, density)
	}
	return specs
}

// runScalePoint stands up one topology and drives it for ticks metric
// ticks under the given shard count.
func runScalePoint(seed int64, pt ScalePoint, shards, workers, ticks int) (ScaleRow, error) {
	eng := sim.NewEngine(seed)
	ccfg := cluster.DefaultConfig()
	if shards > 1 {
		ccfg.Shards = shards
		ccfg.ShardWorkers = workers
	}
	c := cluster.New(eng, ccfg)
	density := (pt.Pods + pt.Nodes - 1) / pt.Nodes
	specs := scaleServices(pt.Pods, density)
	err := c.ProvisionBulk(cluster.Provision{
		NodePrefix:   "node",
		Nodes:        pt.Nodes,
		NodeCapacity: StandardNode(),
		Services:     specs,
	})
	if err != nil {
		return ScaleRow{}, fmt.Errorf("harness: scale point %d/%d: %w", pt.Nodes, pt.Pods, err)
	}
	if unplaced := c.Metrics().Counter("provision/unplaced").Value(); unplaced > 0 {
		return ScaleRow{}, fmt.Errorf("harness: scale point %d/%d: %d replicas did not fit", pt.Nodes, pt.Pods, unplaced)
	}
	for _, spec := range specs {
		lambda := 20 * float64(spec.InitialReplicas)
		if err := c.SetLoadFunc(spec.Name, func(time.Duration) float64 { return lambda }); err != nil {
			return ScaleRow{}, err
		}
	}
	c.Start()
	start := time.Now()
	events := c.Run(time.Duration(ticks) * ccfg.MetricsInterval)
	wall := time.Since(start)

	row := ScaleRow{
		Nodes: pt.Nodes, Pods: pt.Pods, Shards: shards, Workers: workers, Ticks: ticks,
		WallMS:    float64(wall.Microseconds()) / 1000,
		MSPerTick: float64(wall.Microseconds()) / 1000 / float64(ticks),
		Events:    events,
	}
	if pt.Pods > 0 && ticks > 0 {
		row.NsPerPodTick = float64(wall.Nanoseconds()) / float64(ticks) / float64(pt.Pods)
	}
	if co := c.Coordinator(); co != nil {
		row.ShardEvents = co.ShardSteps(nil)
	}
	return row, nil
}
