package harness

import (
	"fmt"
	"time"

	"evolve/internal/cluster"
	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

// Figure 6 — simulation-kernel scalability. The old control-plane
// latency sweep moved into Table 4; Figure 6 now answers the question
// the sharded kernel exists for: how fast does one telemetry tick run
// as the substrate grows to 100k nodes / 1M pods, and what does
// sharding buy at each scale? Topologies are stood up with
// cluster.ProvisionBulk (replicas come up bound and serving, so the
// sweep measures the kernel, not setup), then driven for a fixed
// number of metric ticks per (point, shard count) with the wall clock
// around Run only.

// ScalePoint is one topology size of the sweep.
type ScalePoint struct {
	Nodes int
	Pods  int
}

// ScaleRow is the measured outcome of one (point, shard count) run —
// the record evolve-bench embeds in BENCH_7.json.
type ScaleRow struct {
	Nodes   int `json:"nodes"`
	Pods    int `json:"pods"`
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	// EffectiveWorkers is the coordinator's actual round parallelism
	// after the Workers<=0 default resolves to min(shards, GOMAXPROCS).
	EffectiveWorkers int `json:"effective_workers"`
	Ticks            int `json:"ticks"`
	// Reps is how many timed repetitions ran after the warmup tick;
	// WallMS is the fastest rep (min wall de-noises shard comparisons).
	Reps   int     `json:"reps"`
	WallMS float64 `json:"wall_ms"`
	// MSPerTick is wall-clock per telemetry tick; NsPerPodTick the same
	// normalised per pod — the kernel's unit cost.
	MSPerTick    float64 `json:"ms_per_tick"`
	NsPerPodTick float64 `json:"ns_per_pod_tick"`
	// Events counts kernel events executed during the fastest rep;
	// ShardEvents breaks down the whole run per shard engine (empty at
	// 1 shard).
	Events      uint64   `json:"events"`
	ShardEvents []uint64 `json:"shard_events,omitempty"`
	// Phases is the mean per-tick phase breakdown over the timed reps
	// (sharded runs only): where a tick's wall time actually goes.
	Phases []perf.PhaseMS `json:"phases,omitempty"`
	// TickMaxMS is the slowest single kernel tick across all timed reps
	// (sharded runs only) — the latency tail MSPerTick's mean hides.
	TickMaxMS float64 `json:"tick_max_ms,omitempty"`
	// RoundsPerTick is the mean coordinator shard rounds per tick over
	// the timed reps (sharded runs only): how many barrier crossings one
	// tick costs.
	RoundsPerTick float64 `json:"rounds_per_tick,omitempty"`
	// Speedup is wall(1 shard)/wall(this row) at the same point; 1.0 for
	// the baseline rows.
	Speedup float64 `json:"speedup"`
}

// ScaleConfig parameterises the Figure 6 sweep.
type ScaleConfig struct {
	Seed   int64
	Shards []int        // shard counts per point; first entry is the baseline
	Points []ScalePoint // topology ladder
	Ticks  int          // metric ticks driven per run
	// Workers bounds same-timestamp shard parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultScalePoints returns the topology ladder: the full Figure 6
// ladder tops out at 100k nodes / 1M pods; quick is the reduced ladder
// CI runs.
func DefaultScalePoints(quick bool) []ScalePoint {
	if quick {
		return []ScalePoint{
			{Nodes: 500, Pods: 5_000},
			{Nodes: 2_000, Pods: 20_000},
			{Nodes: 5_000, Pods: 50_000},
		}
	}
	return []ScalePoint{
		{Nodes: 1_000, Pods: 10_000},
		{Nodes: 5_000, Pods: 50_000},
		{Nodes: 10_000, Pods: 100_000},
		{Nodes: 25_000, Pods: 250_000},
		{Nodes: 50_000, Pods: 500_000},
		{Nodes: 100_000, Pods: 1_000_000},
	}
}

// DefaultScaleConfig is what evolve-bench runs when -shards is not
// given: the ladder under shard counts {1, 4, 8}.
func DefaultScaleConfig(seed int64, quick bool) ScaleConfig {
	return ScaleConfig{
		Seed:   seed,
		Shards: []int{1, 4, 8},
		Points: DefaultScalePoints(quick),
		Ticks:  6,
	}
}

// Figure6 runs the kernel scale sweep and returns both the rendered
// figure (X = pods, one ms/tick column per shard count) and the raw
// per-run rows. Rows are content-addressed through the runner's scale
// cache (scalecache.go) when one is configured: a re-run of the same
// binary with the same parameters serves the sweep from disk.
func Figure6(r *Runner, cfg ScaleConfig) (*Figure, []ScaleRow, error) {
	r = ensureRunner(r)
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 4, 8}
	}
	if len(cfg.Points) == 0 {
		cfg.Points = DefaultScalePoints(false)
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 6
	}
	f := &Figure{
		ID:     "Figure 6",
		Title:  "Simulation-kernel scalability (wall-clock per tick)",
		XLabel: "pods",
	}
	for _, s := range cfg.Shards {
		f.Columns = append(f.Columns, fmt.Sprintf("ms/tick (%d shard)", s))
	}
	rows := make([]ScaleRow, 0, len(cfg.Points)*len(cfg.Shards))
	for _, pt := range cfg.Points {
		ptRows, err := runScalePointSet(r, cfg, pt)
		if err != nil {
			return nil, nil, err
		}
		ys := make([]float64, 0, len(cfg.Shards))
		baseWall := ptRows[0].WallMS
		for i := range ptRows {
			if ptRows[i].WallMS > 0 {
				ptRows[i].Speedup = baseWall / ptRows[i].WallMS
			}
			rows = append(rows, ptRows[i])
			ys = append(ys, ptRows[i].MSPerTick)
		}
		if err := f.AddPoint(float64(pt.Pods), ys...); err != nil {
			return nil, nil, err
		}
	}
	f.Notes = append(f.Notes,
		"provisioned via cluster.ProvisionBulk; wall clock is min over timed reps of Run only",
		"absolute values are machine-dependent; shard counts replay byte-identically")
	return f, rows, nil
}

// scaleService builds one service of the sweep topology; requests are
// sized so density pods per node fit a standard node with headroom.
func scaleService(name string, replicas, density int) cluster.ServiceSpec {
	if density < 1 {
		density = 1
	}
	node := StandardNode().Scale(0.94)
	req := resource.New(500, 1<<30, 1e6, 1e6)
	for _, k := range resource.Kinds() {
		if cap := node[k] / float64(density) * 0.9; req[k] > cap {
			req[k] = cap
		}
	}
	return cluster.ServiceSpec{
		Name: name,
		Model: perf.ServiceModel{
			BaseLatency:      2 * time.Millisecond,
			DemandPerOp:      resource.New(10, 0, 20e3, 50e3),
			MemFixed:         256 << 20,
			MemPerConcurrent: 4 << 20,
			MaxLatency:       30 * time.Second,
		},
		PLO:             plo.Latency(100 * time.Millisecond),
		InitialReplicas: replicas,
		InitialAlloc:    req,
		MaxReplicas:     replicas + 1,
		Priority:        100,
	}
}

// scaleServices splits the pod budget across a service fleet that grows
// with it (one service per ~2k pods, between 4 and 512 services).
func scaleServices(pods, density int) []cluster.ServiceSpec {
	apps := pods / 2048
	if apps < 4 {
		apps = 4
	}
	if apps > 512 {
		apps = 512
	}
	if apps > pods {
		apps = pods
	}
	per := pods / apps
	rem := pods - per*apps
	specs := make([]cluster.ServiceSpec, apps)
	for i := range specs {
		n := per
		if i < rem {
			n++
		}
		specs[i] = scaleService(fmt.Sprintf("svc-%03d", i), n, density)
	}
	return specs
}

// scaleReps is how many timed repetitions each scale row runs after the
// warmup tick; the fastest rep is reported. One warmup tick populates
// the dense caches and the allocator's steady state, and min-of-5
// de-noises the 8-vs-4-shard comparison on shared CI machines — the
// small-ladder sharded rows finish in ~10 ms per rep, short enough
// that a single scheduler hiccup would otherwise move the min.
const scaleReps = 5

// scaleRun is one provisioned (point, shard count) cluster mid-sweep:
// warm, phase-timed, accumulating its fastest rep.
type scaleRun struct {
	shards  int
	c       *cluster.Cluster
	interva time.Duration
	horizon time.Duration
	pb      *perf.PhaseBreakdown
	wall    time.Duration
	events  uint64
	reps    int
	rounds0 uint64 // coordinator rounds after warmup, for rounds/tick
}

// newScaleRun stands up one topology under the given shard count and
// runs the untimed warmup tick (caches, free lists, branch predictors).
func newScaleRun(seed int64, pt ScalePoint, shards, workers int) (*scaleRun, error) {
	eng := sim.NewEngine(seed)
	ccfg := cluster.DefaultConfig()
	if shards > 1 {
		ccfg.Shards = shards
		ccfg.ShardWorkers = workers
	}
	c := cluster.New(eng, ccfg)
	density := (pt.Pods + pt.Nodes - 1) / pt.Nodes
	specs := scaleServices(pt.Pods, density)
	err := c.ProvisionBulk(cluster.Provision{
		NodePrefix:   "node",
		Nodes:        pt.Nodes,
		NodeCapacity: StandardNode(),
		Services:     specs,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: scale point %d/%d: %w", pt.Nodes, pt.Pods, err)
	}
	if unplaced := c.Metrics().Counter("provision/unplaced").Value(); unplaced > 0 {
		return nil, fmt.Errorf("harness: scale point %d/%d: %d replicas did not fit", pt.Nodes, pt.Pods, unplaced)
	}
	for _, spec := range specs {
		lambda := 20 * float64(spec.InitialReplicas)
		if err := c.SetLoadFunc(spec.Name, func(time.Duration) float64 { return lambda }); err != nil {
			return nil, err
		}
	}
	c.Start()
	run := &scaleRun{shards: shards, c: c, interva: ccfg.MetricsInterval}
	run.horizon = run.interva
	c.Run(run.horizon)
	if shards > 1 {
		run.pb = c.EnablePhaseTiming()
		run.rounds0, _ = c.Coordinator().Rounds()
	}
	return run, nil
}

// rep drives ticks metric ticks and keeps the fastest rep's wall time.
func (sr *scaleRun) rep(ticks int) {
	sr.horizon += time.Duration(ticks) * sr.interva
	start := time.Now()
	ev := sr.c.Run(sr.horizon)
	w := time.Since(start)
	if sr.reps == 0 || w < sr.wall {
		sr.wall, sr.events = w, ev
	}
	sr.reps++
}

// row freezes the run into its BENCH record row.
func (sr *scaleRun) row(pt ScalePoint, workers, ticks int) ScaleRow {
	row := ScaleRow{
		Nodes: pt.Nodes, Pods: pt.Pods, Shards: sr.shards, Workers: workers,
		EffectiveWorkers: 1, Ticks: ticks, Reps: sr.reps,
		WallMS:    float64(sr.wall.Microseconds()) / 1000,
		MSPerTick: float64(sr.wall.Microseconds()) / 1000 / float64(ticks),
		Events:    sr.events,
	}
	if pt.Pods > 0 && ticks > 0 {
		row.NsPerPodTick = float64(sr.wall.Nanoseconds()) / float64(ticks) / float64(pt.Pods)
	}
	if co := sr.c.Coordinator(); co != nil {
		row.ShardEvents = co.ShardSteps(nil)
		row.EffectiveWorkers = co.Workers()
	}
	if sr.pb != nil {
		row.Phases = sr.pb.PerTickMS()
		row.TickMaxMS = float64(sr.pb.TickMaxNs) / 1e6
		if total := sr.reps * ticks; total > 0 {
			rounds, _ := sr.c.Coordinator().Rounds()
			row.RoundsPerTick = float64(rounds-sr.rounds0) / float64(total)
		}
	}
	return row
}

// runScalePointSet measures every shard count of one topology point with
// the timed reps interleaved across shard counts (rep 0 of each run,
// then rep 1 of each, ...). The rows of one point exist to be compared
// against each other — speedup columns, the 8-vs-4 regression gate —
// and running each row's reps back-to-back lets a transient noise
// window on a shared machine land entirely inside one row, skewing
// exactly that comparison. Interleaving spreads any window across all
// shard counts; min-of-reps then discards it everywhere equally. All
// clusters of the point stay provisioned until its rows freeze, which
// peaks at shard-count × topology resident — fine even at the 1M-pod
// top of the ladder. Cached rows skip provisioning entirely.
func runScalePointSet(r *Runner, cfg ScaleConfig, pt ScalePoint) ([]ScaleRow, error) {
	rows := make([]ScaleRow, len(cfg.Shards))
	keys := make([]string, len(cfg.Shards))
	runs := make([]*scaleRun, len(cfg.Shards))
	live := false
	for i, shards := range cfg.Shards {
		keys[i] = scaleRowKey(cfg.Seed, pt, shards, cfg.Workers, cfg.Ticks)
		if row, hit := r.cachedScaleRow(keys[i]); hit {
			rows[i] = row
			continue
		}
		run, err := newScaleRun(cfg.Seed, pt, shards, cfg.Workers)
		if err != nil {
			return nil, err
		}
		runs[i] = run
		live = true
	}
	if !live {
		return rows, nil
	}
	for rep := 0; rep < scaleReps; rep++ {
		for _, run := range runs {
			if run != nil {
				run.rep(cfg.Ticks)
			}
		}
	}
	for i, run := range runs {
		if run == nil {
			continue
		}
		rows[i] = run.row(pt, cfg.Workers, cfg.Ticks)
		r.storeScaleRow(keys[i], rows[i])
		runs[i] = nil // release the topology before the next point provisions
	}
	return rows, nil
}
