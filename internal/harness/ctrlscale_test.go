package harness

import "testing"

// TestFigure12Smoke drives a miniature control-plane sweep end to end:
// every (point, workers) row must come back timed, and the figure must
// carry one ms/period column per worker count.
func TestFigure12Smoke(t *testing.T) {
	cfg := CtrlScaleConfig{
		Seed:    7,
		Workers: []int{1, 2},
		Points:  []CtrlScalePoint{{Apps: 8, PodsPerApp: 4, Nodes: 16}},
		Periods: 2,
	}
	fig, rows, err := Figure12(nil, cfg)
	if err != nil {
		t.Fatalf("Figure12: %v", err)
	}
	if got, want := len(rows), len(cfg.Points)*len(cfg.Workers); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	for _, row := range rows {
		if row.MSPerPeriod <= 0 {
			t.Errorf("row %+v: ms/period not measured", row)
		}
		if row.Reps != scaleReps {
			t.Errorf("row %+v: reps = %d, want %d", row, row.Reps, scaleReps)
		}
		if row.Pods != cfg.Points[0].Apps*cfg.Points[0].PodsPerApp {
			t.Errorf("row %+v: pods mismatch", row)
		}
	}
	if rows[0].Workers != 1 || rows[0].Speedup != 1.0 {
		t.Errorf("baseline row = %+v, want workers 1 speedup 1.0", rows[0])
	}
	if got, want := len(fig.Columns), len(cfg.Workers); got != want {
		t.Errorf("figure columns = %d, want %d", got, want)
	}
	if len(fig.X) != len(cfg.Points) {
		t.Errorf("figure points = %d, want %d", len(fig.X), len(cfg.Points))
	}
}
