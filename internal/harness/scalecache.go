package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Scale-row cache. The Figure 6 sweep dominates evolve-bench wall time
// (the 100k-node / 1M-pod ladder is tens of seconds of the roughly
// eighty the whole bench takes), yet its rows are a pure function of
// (binary, seed, topology, shard count, workers, ticks): the kernel is
// deterministic and the wall-clock numbers only change when the code
// does. Content-addressing the rows on exactly those inputs lets a
// re-run of the bench — or a CI job iterating on an unrelated table —
// skip the sweep entirely. Timing noise is the one thing re-running
// would change, which is why caching is opt-in (SetScaleCacheDir /
// evolve-bench -scale-cache) and keyed on the executable hash: any
// rebuild invalidates every row.

// buildFingerprint hashes the running executable, memoised for the
// process lifetime. It returns "" (uncacheable) when the binary cannot
// be identified — notably under `go run`, whose temporary binaries are
// still hashable and differ per build, which is exactly right.
var buildFingerprint = sync.OnceValue(func() string {
	exe, err := os.Executable()
	if err != nil {
		return ""
	}
	f, err := os.Open(exe)
	if err != nil {
		return ""
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return ""
	}
	return hex.EncodeToString(h.Sum(nil))
})

// scaleRowKey derives the content address of one scale run. Empty means
// uncacheable (no build fingerprint).
func scaleRowKey(seed int64, pt ScalePoint, shards, workers, ticks int) string {
	fp := buildFingerprint()
	if fp == "" {
		return ""
	}
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"%s|seed=%d|nodes=%d|pods=%d|shards=%d|workers=%d|ticks=%d",
		fp, seed, pt.Nodes, pt.Pods, shards, workers, ticks)))
	return hex.EncodeToString(h[:])
}

// SetScaleCacheDir enables the on-disk scale-row cache rooted at dir
// (created on first store). Rows are keyed on the executable hash plus
// every run parameter, so a stale hit is impossible without a hash
// collision; pass "" to disable.
func (r *Runner) SetScaleCacheDir(dir string) {
	r.mu.Lock()
	r.scaleDir = dir
	r.mu.Unlock()
}

// cachedScaleRow loads a previously stored row. The second result
// reports a usable hit.
func (r *Runner) cachedScaleRow(key string) (ScaleRow, bool) {
	r.mu.Lock()
	dir := r.scaleDir
	r.mu.Unlock()
	if dir == "" || key == "" {
		return ScaleRow{}, false
	}
	data, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return ScaleRow{}, false
	}
	var row ScaleRow
	if err := json.Unmarshal(data, &row); err != nil {
		return ScaleRow{}, false
	}
	r.mu.Lock()
	r.stats.ScaleHits++
	r.mu.Unlock()
	return row, true
}

// storeScaleRow persists a freshly measured row; cache errors are
// deliberately silent (a broken cache must never fail the sweep).
func (r *Runner) storeScaleRow(key string, row ScaleRow) {
	r.mu.Lock()
	dir := r.scaleDir
	r.mu.Unlock()
	if dir == "" || key == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(row)
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(dir, key+".json"))
}
