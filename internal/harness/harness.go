// Package harness wires the full stack together for the evaluation: it
// builds a scenario (cluster topology, service mix, load patterns, batch
// and HPC job streams), runs it once per resource-management policy, and
// summarises the outcomes into the tables and figures of EXPERIMENTS.md.
// Every run is deterministic in the scenario seed.
package harness

import (
	"fmt"
	"time"

	"evolve/internal/batch"
	"evolve/internal/chaos"
	"evolve/internal/cluster"
	"evolve/internal/control"
	"evolve/internal/cost"
	"evolve/internal/hpc"
	"evolve/internal/metrics"
	"evolve/internal/obs"
	"evolve/internal/resource"
	"evolve/internal/sched"
	"evolve/internal/sim"
	"evolve/internal/workload"
)

// AppLoad pairs a service spec with its offered-load pattern.
type AppLoad struct {
	Spec    cluster.ServiceSpec
	Pattern workload.Pattern
}

// TimedBatch schedules a DAG job submission at a virtual time.
type TimedBatch struct {
	At  time.Duration
	Job batch.JobSpec
}

// TimedHPC schedules an HPC job submission at a virtual time.
type TimedHPC struct {
	At  time.Duration
	Job hpc.JobSpec
}

// NodePool declares a labeled group of identical nodes.
type NodePool struct {
	Name   string
	Count  int
	Labels map[string]string
}

// Scenario describes one complete experiment environment.
type Scenario struct {
	Name         string
	Seed         int64
	Nodes        int
	NodeCapacity resource.Vector
	// Pools, when set, replaces the flat Nodes topology with labeled
	// pools (Nodes is then ignored except for validation and must equal
	// the pool total).
	Pools           []NodePool
	Duration        time.Duration
	Warmup          time.Duration // excluded from summary statistics
	ControlInterval time.Duration
	SchedulerPolicy sched.Policy
	Apps            []AppLoad
	BatchJobs       []TimedBatch
	HPCJobs         []TimedHPC
	HPCPolicy       hpc.Policy
	// MeasurementNoise overrides the cluster default when > 0.
	MeasurementNoise float64
	// Chaos is a fault-injection plan (a chaos.Parse spec or profile
	// name, e.g. "sensor-dropout" or "metric-drop@10m:p=0.2"); empty
	// means fault-free. The injector is seeded from Seed, so chaos runs
	// replay bit-for-bit.
	Chaos string
	// Shards runs the cluster on the sharded kernel (cluster.Config's
	// Shards); 0 or 1 keeps the single-engine path. Results are
	// byte-identical either way. ShardWorkers bounds same-timestamp
	// parallelism (0 = GOMAXPROCS).
	Shards       int
	ShardWorkers int
	// UnbatchedRounds disables same-timestamp event batching on the
	// sharded coordinator (cluster.Config.BatchedRounds), reproducing
	// the one-event-per-barrier protocol. The harness's phase-disciplined
	// workloads are byte-identical either way; the flag exists so the
	// determinism suite can pin that.
	UnbatchedRounds bool
	// CtrlWorkers shards the control plane: the control period's
	// evaluate phase fans out over this many workers (control.LoopConfig
	// Workers) and the scheduling drain batches disjoint placements
	// (cluster.Config.DrainWorkers). 0 or 1 keeps the exact serial
	// paths; results are byte-identical at any value.
	CtrlWorkers int
}

// Validate reports scenario construction errors.
func (s Scenario) Validate() error {
	if len(s.Pools) > 0 {
		total := 0
		for _, p := range s.Pools {
			if p.Count <= 0 || p.Name == "" {
				return fmt.Errorf("harness: scenario %s has an invalid pool", s.Name)
			}
			total += p.Count
		}
		if s.Nodes != 0 && s.Nodes != total {
			return fmt.Errorf("harness: scenario %s: Nodes (%d) disagrees with pool total (%d)", s.Name, s.Nodes, total)
		}
	} else if s.Nodes <= 0 {
		return fmt.Errorf("harness: scenario %s needs nodes", s.Name)
	}
	if s.NodeCapacity.IsZero() {
		return fmt.Errorf("harness: scenario %s needs node capacity", s.Name)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("harness: scenario %s needs a duration", s.Name)
	}
	if s.Warmup >= s.Duration {
		return fmt.Errorf("harness: scenario %s warmup >= duration", s.Name)
	}
	if len(s.Apps) == 0 && len(s.BatchJobs) == 0 && len(s.HPCJobs) == 0 {
		return fmt.Errorf("harness: scenario %s has no workload", s.Name)
	}
	for _, a := range s.Apps {
		if err := a.Spec.Validate(); err != nil {
			return err
		}
		if err := workload.Validate(a.Pattern, s.Duration); err != nil {
			return fmt.Errorf("harness: app %s: %w", a.Spec.Name, err)
		}
	}
	if s.Chaos != "" {
		if _, err := chaos.Parse(s.Chaos); err != nil {
			return fmt.Errorf("harness: scenario %s: %w", s.Name, err)
		}
	}
	return nil
}

// Policy names a controller family under evaluation.
type Policy struct {
	Name    string
	Factory control.Factory
	// Overprovision multiplies each app's initial allocation before
	// deployment — how a static-requests user buys safety margin.
	Overprovision float64
}

// AppResult summarises one application under one policy.
type AppResult struct {
	App               string
	ViolationFraction float64
	MeanSLI           float64
	P99SLI            float64
	MeanReplicas      float64
	// MeanAlloc is the time-weighted mean of total allocation
	// (per-replica alloc × desired replicas) for the app, per resource.
	MeanAlloc resource.Vector
}

// Result is one full scenario run under one policy.
type Result struct {
	Scenario string
	Policy   string
	Apps     []AppResult

	// Cluster-level time-weighted means over the measurement window.
	AllocFraction resource.Vector // allocated / allocatable
	UsageFraction resource.Vector // used / allocatable
	// UsageOfAlloc is usage/allocated on the CPU dimension — the
	// headline "utilisation of what you paid for".
	UsageOfAlloc float64

	// Counters of interest.
	Binds, Preemptions, Migrations, Unschedulable uint64
	Evictions                                     uint64

	// HPC/batch outcomes (zero when the scenario has none).
	HPCMeanWait    time.Duration
	HPCMeanRuntime time.Duration
	HPCCompleted   int
	BatchMakespan  time.Duration
	BatchCompleted int

	// Economics over the measurement window (internal/cost defaults):
	// the allocation bill in dollars and the energy draw in watt-hours.
	Dollars  float64
	WattHour float64

	// Robustness outcomes (all zero in fault-free runs): what the chaos
	// injector did to the run and how the hardened control loop coped.
	SamplesDropped  uint64 // sensor samples discarded before the controller
	SamplesStale    uint64 // frozen substitutes delivered instead
	ActuationFaults uint64 // injected actuation rejections/delays/partials
	NodeCrashes     uint64 // injected node-crash windows that landed
	Retries         uint64 // actuation retries the loop scheduled
	Abandoned       uint64 // decisions given up after the retry budget
	DegradedPeriods uint64 // control periods spent in degraded mode

	// Latency outcomes (seconds, p95 upper bounds from the cluster's
	// always-on bind-time histograms; pure virtual-time intervals, so
	// byte-identical at any shard/worker count): pending→bound wait,
	// created→first-ready time, decision-applied→first-caused-bind lag.
	SchedP95  float64
	ReadyP95  float64
	EffectP95 float64

	// The full cluster for figure extraction.
	Cluster *cluster.Cluster
}

// OverallViolation returns the mean violation fraction across apps.
func (r *Result) OverallViolation() float64 {
	if len(r.Apps) == 0 {
		return 0
	}
	s := 0.0
	for _, a := range r.Apps {
		s += a.ViolationFraction
	}
	return s / float64(len(r.Apps))
}

// Hook runs arbitrary cluster surgery (failure injection, topology
// changes) at a virtual time during a scenario run.
type Hook struct {
	At time.Duration
	Do func(*cluster.Cluster)
}

// Run executes the scenario under the policy and summarises it.
func Run(sc Scenario, pol Policy) (*Result, error) {
	return RunWithHooks(sc, pol, nil)
}

// RunWithHooks is Run with injection hooks scheduled into the timeline.
func RunWithHooks(sc Scenario, pol Policy, hooks []Hook) (*Result, error) {
	return runScenario(sc, pol, hooks, nil)
}

// runScenario is the single execution path behind Run, RunWithHooks and
// the Runner: build the cluster, schedule the workload, drive the
// control loop, summarise. A non-nil enabled tracer records every
// control decision and scheduler outcome of the run.
func runScenario(sc Scenario, pol Policy, hooks []Hook, tr *obs.Tracer) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.ControlInterval <= 0 {
		sc.ControlInterval = 15 * time.Second
	}
	eng := sim.NewEngine(sc.Seed)
	ccfg := cluster.DefaultConfig()
	ccfg.SchedulerPolicy = sc.SchedulerPolicy
	if sc.MeasurementNoise > 0 {
		ccfg.MeasurementNoise = sc.MeasurementNoise
	}
	ccfg.Shards = sc.Shards
	ccfg.ShardWorkers = sc.ShardWorkers
	ccfg.BatchedRounds = !sc.UnbatchedRounds
	ccfg.DrainWorkers = sc.CtrlWorkers
	c := cluster.New(eng, ccfg)
	c.SetTracer(tr)
	if len(sc.Pools) > 0 {
		for _, pool := range sc.Pools {
			for i := 0; i < pool.Count; i++ {
				name := fmt.Sprintf("%s-%d", pool.Name, i)
				if err := c.AddLabeledNode(name, sc.NodeCapacity, pool.Labels); err != nil {
					return nil, err
				}
			}
		}
	} else if err := c.AddNodes("node", sc.Nodes, sc.NodeCapacity); err != nil {
		return nil, err
	}

	controllers := make(map[string]control.Controller, len(sc.Apps))
	for _, a := range sc.Apps {
		spec := a.Spec
		if pol.Overprovision > 0 && pol.Overprovision != 1 {
			spec.InitialAlloc = spec.InitialAlloc.Scale(pol.Overprovision).Min(spec.MaxAlloc)
		}
		if err := c.CreateService(spec); err != nil {
			return nil, err
		}
		if err := c.SetLoadFunc(spec.Name, a.Pattern.Rate); err != nil {
			return nil, err
		}
		controllers[spec.Name] = pol.Factory(spec.Name)
	}

	// Any error raised inside an event callback stops the engine and
	// fails the run: a bad scenario fails its own result instead of
	// panicking a whole parallel sweep.
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
			eng.Stop()
		}
	}

	// Batch and HPC streams.
	runner := batch.NewRunner(c)
	for _, tb := range sc.BatchJobs {
		job := tb.Job
		eng.At(tb.At, func() {
			if err := runner.Submit(job); err != nil {
				fail(fmt.Errorf("harness: batch submit %s: %w", job.Name, err))
			}
		})
	}
	var queue *hpc.Queue
	if len(sc.HPCJobs) > 0 {
		queue = hpc.NewQueue(c, sc.HPCPolicy)
		for _, th := range sc.HPCJobs {
			job := th.Job
			eng.At(th.At, func() {
				if err := queue.Submit(job); err != nil {
					fail(fmt.Errorf("harness: hpc submit %s: %w", job.Name, err))
				}
			})
		}
	}

	for _, h := range hooks {
		do := h.Do
		eng.At(h.At, func() { do(c) })
	}

	// Chaos: compile and install the fault plan, seeded from the scenario
	// seed so (seed, plan) replays identically.
	if sc.Chaos != "" {
		plan, err := chaos.Parse(sc.Chaos)
		if err != nil {
			return nil, fmt.Errorf("harness: scenario %s: %w", sc.Name, err)
		}
		inj := chaos.NewInjector(plan, sc.Seed)
		c.SetChaos(inj)
		inj.Arm(eng, c)
	}

	c.Start()
	// Control loop: the shared hardened driver (degraded-mode wrapper,
	// retry ladder). On fault-free runs it traces and decides exactly as
	// the old inline loop did.
	loop := control.NewLoop(eng, c, control.LoopConfig{Interval: sc.ControlInterval, Seed: sc.Seed, Workers: sc.CtrlWorkers})
	loop.SetTracer(c.Tracer())
	loop.OnFatal(func(err error) { fail(fmt.Errorf("harness: control: %w", err)) })
	for name, ctrl := range controllers {
		loop.Add(name, ctrl)
	}
	loop.Start()

	c.Run(sc.Duration)
	if runErr != nil {
		return nil, fmt.Errorf("harness: scenario %s under %s: %w", sc.Name, pol.Name, runErr)
	}
	return summarise(sc, pol, c, runner, queue, loop), nil
}

func summarise(sc Scenario, pol Policy, c *cluster.Cluster, runner *batch.Runner, queue *hpc.Queue, loop *control.Loop) *Result {
	from, to := sc.Warmup, sc.Duration
	met := c.Metrics()
	res := &Result{Scenario: sc.Name, Policy: pol.Name, Cluster: c}

	for _, name := range c.Apps() {
		// One registry lookup per series, reused across the stats below;
		// the map lookups used to dominate this loop in profiles.
		pfx := "app/" + name + "/"
		sli := met.Series(pfx + "sli")
		replicas := met.Series(pfx + "replicas")
		ar := AppResult{App: name}
		ar.ViolationFraction = met.Series(pfx+"violation").TimeWeightedMean(from, to)
		ar.MeanSLI = sli.WindowStats(from, to).Mean
		ar.P99SLI = sli.Percentile(from, to, 99)
		ar.MeanReplicas = replicas.TimeWeightedMean(from, to)
		for _, k := range resource.Kinds() {
			// Total app allocation ≈ per-replica alloc × replicas; use
			// sample-wise product via the two step series.
			ar.MeanAlloc[k] = productMean(met.Series(pfx+"alloc/"+k.String()), replicas, from, to)
		}
		res.Apps = append(res.Apps, ar)
	}

	res.AllocFraction, res.UsageFraction = c.UtilisationSummary(from, to)
	if res.AllocFraction[resource.CPU] > 0 {
		res.UsageOfAlloc = res.UsageFraction[resource.CPU] / res.AllocFraction[resource.CPU]
	}
	res.Binds = met.Counter("sched/binds").Value()
	res.Preemptions = met.Counter("sched/preemptions").Value()
	res.Migrations = met.Counter("resize/migrations").Value()
	res.Unschedulable = met.Counter("sched/unschedulable").Value()
	res.Evictions = met.Counter("evictions/preempted").Value() + met.Counter("evictions/node-failure").Value() + met.Counter("evictions/killed").Value()

	if queue != nil {
		res.HPCMeanWait, res.HPCMeanRuntime, res.HPCCompleted = queue.Stats()
	}
	if runner != nil {
		st := met.Series("batch/makespan").AllStats()
		res.BatchCompleted = st.Count
		res.BatchMakespan = time.Duration(st.Mean * float64(time.Second))
	}
	bill := cost.Summarise(met, sc.NodeCapacity.Scale(0.94), sc.Nodes, from, to,
		cost.DefaultPricing(), cost.DefaultPowerModel())
	res.Dollars, res.WattHour = bill.Dollars, bill.WattHour

	if inj := c.Chaos(); inj != nil {
		st := inj.Stats()
		res.SamplesDropped = st.SamplesDropped
		res.SamplesStale = st.SamplesFrozen
		res.ActuationFaults = st.Rejected + st.Delayed + st.Partial
		res.NodeCrashes = st.NodeCrashes
	}
	ls := loop.Stats()
	res.Retries = ls.Retries
	res.Abandoned = ls.Abandoned
	res.DegradedPeriods = ls.DegradedPeriods
	res.SchedP95, res.ReadyP95, res.EffectP95 = c.LatencySummary()
	return res
}

// productMean computes the mean of the product of two series that are
// sampled at identical tick timestamps (as all cluster app series are).
// Both windows are zero-copy sub-slices fused in a single pass.
func productMean(sa, sb *metrics.Series, from, to time.Duration) float64 {
	wa := sa.Window(from, to)
	wb := sb.Window(from, to)
	n := len(wa)
	if len(wb) < n {
		n = len(wb)
	}
	if n == 0 {
		return 0
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += wa[i].Value * wb[i].Value
	}
	return s / float64(n)
}
