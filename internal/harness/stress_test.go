package harness

import (
	"fmt"
	"testing"
	"time"

	"evolve/internal/cluster"
	"evolve/internal/core"
	"evolve/internal/resource"
	"evolve/internal/workload"
)

// TestStressConvergedAtScale runs a 40-node cluster with 16 diurnal
// services, a dense batch stream, a dense HPC stream and three node
// failures over four virtual hours — the "leave it running" robustness
// check. It asserts global health, not exact numbers: no runaway
// allocation, bounded violations, all jobs eventually done, and the
// whole thing simulating in sane wall-clock time.
func TestStressConvergedAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("stress run")
	}
	var apps []AppLoad
	archs := workload.Archetypes()
	for i := 0; i < 16; i++ {
		a := archs[i%len(archs)]
		base := 150.0 + 50*float64(i%4)
		if a == workload.Inference {
			base = 20
		}
		name := fmt.Sprintf("%s-%d", a.String(), i)
		apps = append(apps, AppLoad{
			Spec: workload.Service(a, name, base, 2),
			Pattern: workload.Noisy{
				Inner: workload.Diurnal{Trough: base * 0.4, Peak: base * 2.8, Period: time.Duration(90+7*i) * time.Minute},
				Frac:  0.1,
				Seed:  int64(1000 + i),
			},
		})
	}
	sc := Scenario{
		Name:            "stress",
		Seed:            99,
		Nodes:           40,
		NodeCapacity:    StandardNode(),
		Duration:        4 * time.Hour,
		Warmup:          15 * time.Minute,
		ControlInterval: 15 * time.Second,
		Apps:            apps,
		BatchJobs:       BatchStream(12, 18*time.Minute, 2),
		HPCJobs:         HPCStream(30, 7*time.Minute, 6),
	}
	start := time.Now()
	res, err := RunWithHooks(sc, Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())},
		[]Hook{
			{At: 50 * time.Minute, Do: func(c *cluster.Cluster) { _ = c.FailNode("node-3") }},
			{At: 70 * time.Minute, Do: func(c *cluster.Cluster) { _ = c.RestoreNode("node-3") }},
			{At: 2 * time.Hour, Do: func(c *cluster.Cluster) { _ = c.FailNode("node-17") }},
			{At: 2*time.Hour + 20*time.Minute, Do: func(c *cluster.Cluster) { _ = c.RestoreNode("node-17") }},
			{At: 3 * time.Hour, Do: func(c *cluster.Cluster) { _ = c.FailNode("node-31") }},
			{At: 3*time.Hour + 15*time.Minute, Do: func(c *cluster.Cluster) { _ = c.RestoreNode("node-31") }},
		})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("4 virtual hours at 40 nodes / 16 apps simulated in %v", elapsed)
	if elapsed > 30*time.Second {
		t.Errorf("stress run too slow: %v", elapsed)
	}

	// Global health.
	if v := res.OverallViolation(); v > 0.05 {
		t.Errorf("overall violations = %.3f, want < 5%% despite failures", v)
	}
	for _, a := range res.Apps {
		if a.ViolationFraction > 0.15 {
			t.Errorf("app %s violations = %.3f", a.App, a.ViolationFraction)
		}
	}
	if res.AllocFraction[resource.CPU] > 0.95 {
		t.Errorf("allocation ran away: %v", res.AllocFraction)
	}
	if res.HPCCompleted < 28 { // a couple may be mid-flight at the horizon
		t.Errorf("hpc completed = %d of 30", res.HPCCompleted)
	}
	if res.BatchCompleted < 11 {
		t.Errorf("batch completed = %d of 12", res.BatchCompleted)
	}
	// The failures really happened.
	if res.Cluster.Metrics().Counter("nodes/failures").Value() != 3 {
		t.Errorf("failures = %d, want 3", res.Cluster.Metrics().Counter("nodes/failures").Value())
	}
}
