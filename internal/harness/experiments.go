package harness

import (
	"fmt"
	"time"

	"evolve/internal/baseline"
	"evolve/internal/batch"
	"evolve/internal/core"
	"evolve/internal/hpc"
	"evolve/internal/perf"
	"evolve/internal/resource"
	"evolve/internal/sched"
	"evolve/internal/workload"
)

// StandardNode is the node shape used across the evaluation: 16 cores,
// 64 GiB, 1 GB/s disk, 2 GB/s network.
func StandardNode() resource.Vector { return resource.New(16000, 64<<30, 1e9, 2e9) }

// StandardPolicies returns the five policies of the headline comparison.
// Static requests appear twice because a user who never adjusts them must
// choose between under-provisioning (2x the sizing point, cheaper, misses
// the 3x diurnal peak) and peak-provisioning (3x, safe, wasteful) — the
// two ends of the frontier Figure 7 sweeps.
func StandardPolicies() []Policy {
	return []Policy{
		{Name: "evolve", Factory: core.Factory(core.DefaultConfig())},
		{Name: "static-2x", Factory: baseline.StaticFactory(), Overprovision: 2.0},
		{Name: "static-3x", Factory: baseline.StaticFactory(), Overprovision: 3.0},
		{Name: "hpa", Factory: baseline.HPAFactory(baseline.DefaultHPAConfig())},
		{Name: "vpa", Factory: baseline.VPAFactory(baseline.DefaultVPAConfig())},
	}
}

// CloudApps builds the latency-sensitive service mix: one of each
// archetype, each under a diurnal cycle (trough ½×, peak 3× base) with
// deterministic noise, phase-shifted via different periods.
func CloudApps(seed int64) []AppLoad {
	mk := func(a workload.Archetype, name string, base float64, period time.Duration, idx int64) AppLoad {
		return AppLoad{
			Spec: workload.Service(a, name, base, 2),
			Pattern: workload.Noisy{
				Inner: workload.Diurnal{Trough: base * 0.5, Peak: base * 3, Period: period},
				Frac:  0.08,
				Seed:  seed + idx,
			},
		}
	}
	return []AppLoad{
		mk(workload.Web, "web", 400, 2*time.Hour, 1),
		mk(workload.Gateway, "gateway", 300, 100*time.Minute, 2),
		mk(workload.KVStore, "kvstore", 200, 140*time.Minute, 3),
		mk(workload.Inference, "inference", 30, 2*time.Hour, 4),
	}
}

// BatchStream submits a TeraSort-like DAG every interval.
func BatchStream(n int, every time.Duration, scale float64) []TimedBatch {
	out := make([]TimedBatch, n)
	for i := 0; i < n; i++ {
		out[i] = TimedBatch{
			At:  time.Duration(i+1) * every,
			Job: batch.TeraSortLike(fmt.Sprintf("tsort-%d", i), scale, 0),
		}
	}
	return out
}

// HPCStream submits rigid gang jobs every interval with alternating gang
// sizes (2, 4, …, maxRanks ranks); each rank runs about four minutes at
// its full CPU grant, so consecutive jobs overlap and the queue policy
// matters.
func HPCStream(n int, every time.Duration, maxRanks int) []TimedHPC {
	if maxRanks < 2 {
		maxRanks = 2
	}
	out := make([]TimedHPC, n)
	for i := 0; i < n; i++ {
		ranks := 2 + 2*(i%(maxRanks/2))
		out[i] = TimedHPC{
			At: time.Duration(i+1) * every,
			Job: hpc.JobSpec{
				Name:    fmt.Sprintf("mpi-%d", i),
				Ranks:   ranks,
				PerRank: resource.New(7000, 16<<30, 50e6, 200e6),
				Model:   perf.TaskModel{Work: resource.New(1680000, 0, 5e9, 2e9), MemSet: 8 << 30},
			},
		}
	}
	return out
}

// Mix identifies one of the Table 1 workload mixes.
type Mix string

// The three mixes of the headline comparison.
const (
	MixCloud      Mix = "cloud"
	MixCloudBatch Mix = "cloud+batch"
	MixConverged  Mix = "converged"
)

// Mixes lists the Table 1 mixes in order.
func Mixes() []Mix { return []Mix{MixCloud, MixCloudBatch, MixConverged} }

// BuildScenario assembles a named mix at the standard scale.
func BuildScenario(mix Mix, seed int64) Scenario {
	// Five standard nodes (~75 cores): enough for the service peaks,
	// tight enough that the batch and HPC streams genuinely contend with
	// the services in the richer mixes.
	sc := Scenario{
		Name:            string(mix),
		Seed:            seed,
		Nodes:           5,
		NodeCapacity:    StandardNode(),
		Duration:        2 * time.Hour,
		Warmup:          10 * time.Minute,
		ControlInterval: 15 * time.Second,
		SchedulerPolicy: sched.PolicySpread,
		Apps:            CloudApps(seed),
	}
	switch mix {
	case MixCloudBatch:
		sc.BatchJobs = BatchStream(8, 14*time.Minute, 2)
	case MixConverged:
		sc.BatchJobs = BatchStream(7, 15*time.Minute, 2)
		sc.HPCJobs = HPCStream(12, 8*time.Minute, 6)
		sc.HPCPolicy = hpc.Backfill
	}
	return sc
}

// Table1 runs the headline comparison: PLO violations and utilisation
// per policy across the three mixes. All (mix, policy) runs are
// independent and fan out through the runner.
func Table1(r *Runner, seed int64) (*Table, map[string]*Result, error) {
	r = ensureRunner(r)
	t := &Table{
		ID:    "Table 1",
		Title: "PLO violations and cluster utilisation: EVOLVE vs Kubernetes-style baselines",
		Headers: []string{
			"mix", "policy", "violations %", "p99 SLI (norm)",
			"cpu alloc frac", "cpu usage frac", "usage/alloc",
		},
		Notes: []string{
			"violations % = time-weighted fraction of samples breaching the PLO beyond its margin, warmup excluded",
			"p99 SLI (norm) = 99th percentile of the SLI normalised by the PLO target, mean across apps",
			"usage/alloc = cluster CPU actually used over CPU allocated (how much of what was reserved did work)",
			"oracle = clairvoyant upper bound: right-sizes from the true performance model every period",
		},
	}
	var jobs []RunJob
	for _, mix := range Mixes() {
		sc := BuildScenario(mix, seed)
		policies := append(StandardPolicies(),
			Policy{Name: "oracle", Factory: OracleFactory(sc.Apps, 0.7)})
		for _, pol := range policies {
			jobs = append(jobs, RunJob{Scenario: sc, Policy: pol})
		}
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, nil, fmt.Errorf("table1 %w", err)
	}
	results := make(map[string]*Result, len(runs))
	for i, res := range runs {
		sc := jobs[i].Scenario
		results[sc.Name+"/"+res.Policy] = res
		normP99 := 0.0
		for _, a := range res.Apps {
			target := targetFor(sc, a.App)
			if target > 0 {
				normP99 += a.P99SLI / target
			}
		}
		normP99 /= float64(len(res.Apps))
		t.AddRow(sc.Name, res.Policy,
			res.OverallViolation()*100, normP99,
			res.AllocFraction[resource.CPU], res.UsageFraction[resource.CPU],
			res.UsageOfAlloc)
	}
	return t, results, nil
}

func targetFor(sc Scenario, app string) float64 {
	for _, a := range sc.Apps {
		if a.Spec.Name == app {
			return a.Spec.PLO.Target
		}
	}
	return 0
}

// Table2 is the multi-resource ablation: each archetype (whose bottleneck
// resource differs) under a 2.5x step load, controlled by the full
// multi-resource controller vs the CPU-only scalar PID.
func Table2(r *Runner, seed int64) (*Table, error) {
	r = ensureRunner(r)
	t := &Table{
		ID:      "Table 2",
		Title:   "Multi-resource vs CPU-only PID across bottleneck types (2.5x load step)",
		Headers: []string{"archetype", "bottleneck", "policy", "violations %", "mean SLI (norm)"},
		Notes: []string{
			"the CPU-only PID can only buy CPU; on disk-, net- and memory-bound services it must fail",
		},
	}
	bottleneck := map[workload.Archetype][]resource.Kind{
		workload.Web:       {resource.CPU},
		workload.Gateway:   {resource.NetIO},
		workload.KVStore:   {resource.DiskIO},
		workload.Inference: {resource.Memory, resource.CPU},
	}
	bottleneckLabel := map[workload.Archetype]string{
		workload.Web:       "cpu",
		workload.Gateway:   "netio",
		workload.KVStore:   "diskio",
		workload.Inference: "memory+cpu",
	}
	policies := []Policy{
		{Name: "evolve-multi", Factory: core.Factory(core.DefaultConfig())},
		{Name: "pid-cpu-only", Factory: core.SingleResourceFactory()},
	}
	var jobs []RunJob
	type rowMeta struct {
		archetype workload.Archetype
		target    float64
	}
	var meta []rowMeta
	for _, a := range workload.Archetypes() {
		base := 200.0
		if a == workload.Inference {
			base = 30
		}
		// Isolate the bottleneck: non-bottleneck dimensions start sized
		// for 4x the base rate (they never bind), the bottleneck for 1x.
		// The CPU-only PID then succeeds exactly when CPU is the
		// bottleneck — the contrast the ablation is after.
		spec := workload.Service(a, "svc", base, 2)
		generous := spec.Model.DemandFor(base*4, 2, 0.7).Max(spec.MinAlloc)
		tight := spec.InitialAlloc
		alloc := generous
		for _, k := range bottleneck[a] {
			alloc = alloc.With(k, tight.Get(k))
		}
		spec.InitialAlloc = alloc.Min(spec.MaxAlloc)
		sc := Scenario{
			Name:            "ablation-" + a.String(),
			Seed:            seed,
			Nodes:           5,
			NodeCapacity:    StandardNode(),
			Duration:        50 * time.Minute,
			Warmup:          5 * time.Minute,
			ControlInterval: 15 * time.Second,
			Apps: []AppLoad{{
				Spec:    spec,
				Pattern: workload.Step{Before: base, After: base * 2.5, At: 10 * time.Minute},
			}},
		}
		for _, pol := range policies {
			jobs = append(jobs, RunJob{Scenario: sc, Policy: pol})
			meta = append(meta, rowMeta{a, sc.Apps[0].Spec.PLO.Target})
		}
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("table2 %w", err)
	}
	for i, res := range runs {
		ar := res.Apps[0]
		a := meta[i].archetype
		t.AddRow(a.String(), bottleneckLabel[a], res.Policy,
			ar.ViolationFraction*100, ar.MeanSLI/meta[i].target)
	}
	return t, nil
}

// Table3 compares scheduler policies and HPC queue disciplines on the
// converged mix: packing quality, queueing and disruption metrics.
func Table3(r *Runner, seed int64) (*Table, error) {
	r = ensureRunner(r)
	t := &Table{
		ID:      "Table 3",
		Title:   "Placement & queueing on the converged mix (EVOLVE controller throughout)",
		Headers: []string{"sched policy", "hpc queue", "cpu alloc frac", "hpc wait (s)", "hpc done", "batch done", "preemptions", "migrations"},
		Notes: []string{
			"spread = Kubernetes-like least-allocated scoring; binpack = most-allocated",
			"hpc wait = mean queue time of completed rigid jobs",
			"easy = backfill with a head reservation (no starvation of wide jobs)",
		},
	}
	type combo struct {
		name  string
		queue hpc.Policy
	}
	var jobs []RunJob
	var combos []combo
	for _, sp := range []struct {
		name   string
		policy sched.Policy
	}{{"spread", sched.PolicySpread}, {"binpack", sched.PolicyBinPack}} {
		for _, qp := range []hpc.Policy{hpc.FCFS, hpc.Backfill, hpc.EASY} {
			sc := BuildScenario(MixConverged, seed)
			sc.SchedulerPolicy = sp.policy
			sc.HPCPolicy = qp
			jobs = append(jobs, RunJob{Scenario: sc, Policy: Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())}})
			combos = append(combos, combo{sp.name, qp})
		}
	}
	runs, err := r.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("table3 %w", err)
	}
	for i, res := range runs {
		t.AddRow(combos[i].name, combos[i].queue.String(),
			res.AllocFraction[resource.CPU],
			res.HPCMeanWait.Seconds(), res.HPCCompleted,
			res.BatchCompleted, res.Preemptions, res.Migrations)
	}
	return t, nil
}
