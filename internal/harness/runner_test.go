package harness

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"evolve/internal/baseline"
	"evolve/internal/batch"
	"evolve/internal/core"
	"evolve/internal/workload"
)

// snapshotResult serialises everything observable about a run: the
// summary fields, every metric series sample and every counter. Two
// snapshots are equal iff the runs were byte-identical.
func snapshotResult(res *Result) string {
	cp := *res
	cp.Cluster = nil
	var b strings.Builder
	fmt.Fprintf(&b, "%+v\n", cp)
	met := res.Cluster.Metrics()
	for _, name := range met.SeriesNames() {
		fmt.Fprintf(&b, "series %s:", name)
		for _, s := range met.Series(name).Samples() {
			fmt.Fprintf(&b, " %d=%g", int64(s.At), s.Value)
		}
		b.WriteByte('\n')
	}
	for _, name := range met.CounterNames() {
		fmt.Fprintf(&b, "counter %s=%d\n", name, met.Counter(name).Value())
	}
	return b.String()
}

func evolvePolicy() Policy {
	return Policy{Name: "evolve", Factory: core.Factory(core.DefaultConfig())}
}

// determinismJobs is a small job matrix covering services, batch, HPC
// and a shared stateful MMPP pattern — the shapes that could diverge
// under concurrency. It includes one exact duplicate to exercise
// in-flight deduplication.
func determinismJobs() []RunJob {
	mk := func() Scenario {
		sc := tinyScenario()
		sc.Duration = 30 * time.Minute
		sc.BatchJobs = BatchStream(2, 5*time.Minute, 0.5)
		sc.HPCJobs = HPCStream(2, 6*time.Minute, 2)
		return sc
	}
	burst := tinyScenario()
	burst.Name = "burst-tiny"
	burst.Apps = []AppLoad{{
		Spec:    workload.Service(workload.Web, "web", 200, 2),
		Pattern: workload.NewMMPP(150, 500, 4*time.Minute, time.Minute, 11),
	}}
	return []RunJob{
		{Scenario: mk(), Policy: evolvePolicy()},
		{Scenario: mk(), Policy: Policy{Name: "hpa", Factory: baseline.HPAFactory(baseline.DefaultHPAConfig())}},
		{Scenario: mk(), Policy: Policy{Name: "static-2x", Factory: baseline.StaticFactory(), Overprovision: 2}},
		{Scenario: burst, Policy: evolvePolicy()},
		{Scenario: burst, Policy: Policy{Name: "hpa", Factory: baseline.HPAFactory(baseline.DefaultHPAConfig())}},
		{Scenario: mk(), Policy: evolvePolicy()}, // duplicate of job 0
	}
}

// TestRunnerDeterminism is the core guarantee of the runner subsystem:
// for a fixed seed, serial, parallel and cache-hit execution produce
// identical Results down to every sample and counter.
func TestRunnerDeterminism(t *testing.T) {
	jobs := determinismJobs()

	serial := NewRunner(1)
	serialRes, err := serial.RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	par := NewRunner(8)
	parRes, err := par.RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	cachedRes, err := par.RunMany(jobs) // second pass: pure cache hits
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		want := snapshotResult(serialRes[i])
		if got := snapshotResult(parRes[i]); got != want {
			t.Errorf("job %d: parallel result differs from serial", i)
		}
		if got := snapshotResult(cachedRes[i]); got != want {
			t.Errorf("job %d: cached result differs from serial", i)
		}
	}
	// The duplicate job must not have simulated twice.
	if st := par.Stats(); st.Runs != uint64(len(jobs)-1) {
		t.Errorf("parallel runs = %d, want %d (duplicate deduplicated)", st.Runs, len(jobs)-1)
	}
	st := par.Stats()
	if st.CacheHits != uint64(1+len(jobs)) { // 1 in-flight dup + full second pass
		t.Errorf("cache hits = %d, want %d", st.CacheHits, 1+len(jobs))
	}
}

func TestRunnerCacheSharesResultAcrossCalls(t *testing.T) {
	r := NewRunner(1)
	a, err := r.Run(tinyScenario(), evolvePolicy())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(tinyScenario(), evolvePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs should return the same cached *Result")
	}
	if st := r.Stats(); st.Runs != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 1 run / 1 hit", st)
	}
}

func TestRunnerUncacheablePattern(t *testing.T) {
	sc := tinyScenario()
	sc.Apps[0].Pattern = workload.Func(func(time.Duration) float64 { return 200 })
	r := NewRunner(1)
	for i := 0; i < 2; i++ {
		if _, err := r.Run(sc, evolvePolicy()); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st.Runs != 2 || st.Uncacheable != 2 || st.CacheHits != 0 {
		t.Errorf("stats = %+v, want 2 uncached runs", r.Stats())
	}
}

func TestRunnerMemoisesErrors(t *testing.T) {
	sc := tinyScenario()
	sc.Nodes = 0 // invalid
	r := NewRunner(2)
	if _, err := r.Run(sc, evolvePolicy()); err == nil {
		t.Fatal("invalid scenario must fail")
	}
	if _, err := r.Run(sc, evolvePolicy()); err == nil {
		t.Fatal("cached error must fail too")
	}
	if st := r.Stats(); st.Runs != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want the error memoised", r.Stats())
	}
}

// TestRunErrorInsteadOfPanic: a scenario whose batch stream is invalid at
// submit time (duplicate job name) must fail its run with an error — not
// panic the process, which under a parallel sweep would kill every
// sibling run.
func TestRunErrorInsteadOfPanic(t *testing.T) {
	sc := tinyScenario()
	sc.Duration = 30 * time.Minute
	job := batch.TeraSortLike("dup", 0.5, 0)
	sc.BatchJobs = []TimedBatch{
		{At: 2 * time.Minute, Job: job},
		{At: 4 * time.Minute, Job: batch.TeraSortLike("dup", 0.5, 0)},
	}
	res, err := Run(sc, evolvePolicy())
	if err == nil {
		t.Fatal("duplicate batch submission must error")
	}
	if res != nil {
		t.Error("failed run should not return a result")
	}
	if !strings.Contains(err.Error(), "dup") {
		t.Errorf("error should name the offending job: %v", err)
	}
}

func TestRunnerConcurrentCallers(t *testing.T) {
	// Many goroutines racing on the same key must trigger exactly one
	// simulation; -race validates the locking.
	r := NewRunner(4)
	const callers = 16
	var wg sync.WaitGroup
	results := make([]*Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(tinyScenario(), evolvePolicy())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *Result", i)
		}
	}
	if st := r.Stats(); st.Runs != 1 {
		t.Errorf("runs = %d, want 1", st.Runs)
	}
}

func TestScenarioFingerprint(t *testing.T) {
	base, err := ScenarioFingerprint(tinyScenario(), evolvePolicy())
	if err != nil {
		t.Fatal(err)
	}
	same, err := ScenarioFingerprint(tinyScenario(), evolvePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if base != same {
		t.Error("identical inputs must fingerprint identically")
	}
	mutations := []struct {
		name string
		sc   func(*Scenario)
		pol  func(*Policy)
	}{
		{"seed", func(s *Scenario) { s.Seed++ }, nil},
		{"nodes", func(s *Scenario) { s.Nodes++ }, nil},
		{"duration", func(s *Scenario) { s.Duration += time.Minute }, nil},
		{"pattern", func(s *Scenario) { s.Apps[0].Pattern = workload.Constant(201) }, nil},
		{"noise", func(s *Scenario) { s.MeasurementNoise = 0.31 }, nil},
		{"policy name", nil, func(p *Policy) { p.Name = "evolve-no-ff" }},
		{"overprovision", nil, func(p *Policy) { p.Overprovision = 2 }},
	}
	for _, m := range mutations {
		sc, pol := tinyScenario(), evolvePolicy()
		if m.sc != nil {
			m.sc(&sc)
		}
		if m.pol != nil {
			m.pol(&pol)
		}
		got, err := ScenarioFingerprint(sc, pol)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if got == base {
			t.Errorf("%s: mutation not reflected in fingerprint", m.name)
		}
	}
}

func TestScenarioFingerprintMMPPSeed(t *testing.T) {
	mk := func(seed int64) Scenario {
		sc := tinyScenario()
		sc.Apps[0].Pattern = workload.NewMMPP(100, 400, 4*time.Minute, time.Minute, seed)
		return sc
	}
	a, err := ScenarioFingerprint(mk(1), evolvePolicy())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScenarioFingerprint(mk(2), evolvePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("MMPP seed must be part of the fingerprint")
	}
	c, err := ScenarioFingerprint(mk(1), evolvePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Error("equal MMPP patterns must fingerprint identically")
	}
}

func TestScenarioFingerprintRejectsFuncs(t *testing.T) {
	sc := tinyScenario()
	sc.Apps[0].Pattern = workload.Func(func(time.Duration) float64 { return 1 })
	if _, err := ScenarioFingerprint(sc, evolvePolicy()); err == nil {
		t.Error("func-backed patterns have no canonical encoding and must be rejected")
	}
}

func TestScenarioFingerprintMapOrderIndependent(t *testing.T) {
	mk := func() Scenario {
		sc := tinyScenario()
		sc.Pools = []NodePool{{Name: "a", Count: 3, Labels: map[string]string{
			"x": "1", "y": "2", "z": "3", "w": "4",
		}}}
		sc.Nodes = 0
		return sc
	}
	a, err := ScenarioFingerprint(mk(), evolvePolicy())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		b, err := ScenarioFingerprint(mk(), evolvePolicy())
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatal("fingerprint depends on map iteration order")
		}
	}
}
