// Package perf provides the application performance models that close the
// loop between resource allocations and the service-level indicators the
// autoscaler observes. The models are deliberately queueing-theoretic
// rather than trace-driven: an M/G/1-PS latency curve over a multi-resource
// bottleneck service rate, a working-set memory penalty, and a colocation
// interference factor. Together they give the controller a realistic,
// nonlinear plant — latency explodes near saturation and the binding
// resource shifts as allocations change — which is exactly the dynamics a
// PID autoscaler must cope with on a real cluster.
package perf

import (
	"fmt"
	"math"
	"time"

	"evolve/internal/resource"
)

// ServiceModel describes how one replicated service transforms an offered
// load and a per-replica allocation into latency and throughput.
type ServiceModel struct {
	// BaseLatency is the load-independent floor (network RTT, fixed
	// per-request work).
	BaseLatency time.Duration

	// DemandPerOp is the work one operation consumes from each rate
	// resource: CPU in millicore·seconds/op, DiskIO and NetIO in
	// bytes/op. The Memory component is ignored here (see MemFixed and
	// MemPerConcurrent): memory is a space resource, not a rate.
	DemandPerOp resource.Vector

	// MemFixed is the resident working set in bytes independent of load.
	MemFixed float64
	// MemPerConcurrent is additional working set per in-flight operation.
	MemPerConcurrent float64

	// MaxLatency caps the modelled latency in overload; queues in real
	// systems are bounded by timeouts, and an unbounded model value
	// would swamp the controller's error clamp anyway.
	MaxLatency time.Duration

	// MaxConcurrency bounds the in-flight operations per replica when
	// estimating the working set (servers bound their connection pools);
	// zero means the default of 64.
	MaxConcurrency float64
}

// Validate reports model configuration errors.
func (m ServiceModel) Validate() error {
	if m.DemandPerOp[resource.CPU] <= 0 {
		return fmt.Errorf("perf: DemandPerOp CPU must be positive, got %v", m.DemandPerOp[resource.CPU])
	}
	if !m.DemandPerOp.NonNegative() {
		return fmt.Errorf("perf: negative per-op demand %v", m.DemandPerOp)
	}
	if m.MemFixed < 0 || m.MemPerConcurrent < 0 {
		return fmt.Errorf("perf: negative memory parameters")
	}
	if m.MaxLatency <= 0 {
		return fmt.Errorf("perf: MaxLatency must be positive")
	}
	return nil
}

// Result is the modelled steady-state behaviour of a service over one
// control interval.
type Result struct {
	MeanLatency time.Duration
	P99Latency  time.Duration
	// Throughput is delivered operations/second (≤ offered load).
	Throughput float64
	// Utilisation is the per-resource usage fraction of the per-replica
	// allocation (memory: working set over allocation). May exceed 1 in
	// overload.
	Utilisation resource.Vector
	// Usage is the absolute per-replica resource usage.
	Usage resource.Vector
	// Saturated reports whether offered load exceeded capacity.
	Saturated bool
	// BottleneckKind is the resource limiting the service rate.
	Bottleneck resource.Kind
}

// maxRho is the utilisation beyond which the queueing formulas are
// replaced by the overload branch.
const maxRho = 0.995

// Evaluate models the service under offered load lambda (ops/second)
// spread over replicas, each holding alloc. slowdown is an external
// multiplicative service-time inflation (≥1) from node-level interference;
// pass 1 when isolated.
func (m ServiceModel) Evaluate(lambda float64, replicas int, alloc resource.Vector, slowdown float64) Result {
	if replicas < 1 {
		replicas = 1
	}
	if slowdown < 1 {
		slowdown = 1
	}
	lr := lambda / float64(replicas) // per-replica offered load

	// Service rate from each rate resource: alloc_k / demand_k op/s.
	mu := math.Inf(1)
	bottleneck := resource.CPU
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO, resource.NetIO} {
		d := m.DemandPerOp[k]
		if d <= 0 {
			continue
		}
		rate := alloc[k] / d
		if rate < mu {
			mu, bottleneck = rate, k
		}
	}
	mu /= slowdown

	// Memory: estimate concurrency via Little's law with one fixed-point
	// refinement, derive the working set, and penalise the service rate
	// quadratically when the allocation cannot hold it (paging).
	maxConc := m.MaxConcurrency
	if maxConc <= 0 {
		maxConc = 64
	}
	var ws float64
	latencyGuess := m.BaseLatency.Seconds() + safeInv(mu)
	for i := 0; i < 2; i++ {
		concurrency := math.Min(lr*latencyGuess, maxConc)
		ws = m.MemFixed + m.MemPerConcurrent*concurrency
		if alloc[resource.Memory] > 0 && ws > alloc[resource.Memory] {
			over := ws / alloc[resource.Memory]
			mu2 := mu / (over * over)
			if mu2 < mu {
				mu = mu2
				bottleneck = resource.Memory
			}
		}
		latencyGuess = m.BaseLatency.Seconds() + queueLatency(safeInv(mu), lr/mu)
	}

	res := Result{Bottleneck: bottleneck}
	if mu <= 0 || math.IsInf(mu, 1) {
		mu = math.Max(mu, 1e-9)
	}
	rho := lr / mu
	s := safeInv(mu) // mean service time at this allocation

	switch {
	case rho >= maxRho:
		res.Saturated = true
		res.MeanLatency = m.MaxLatency
		res.P99Latency = m.MaxLatency
		res.Throughput = mu * float64(replicas) * maxRho
	default:
		mean := m.BaseLatency.Seconds() + queueLatency(s, rho)
		// M/M/1 tail: p99 ≈ base + S·ln(100)/(1-ρ).
		p99 := m.BaseLatency.Seconds() + s*math.Log(100)/(1-rho)
		res.MeanLatency = capDuration(mean, m.MaxLatency)
		res.P99Latency = capDuration(p99, m.MaxLatency)
		res.Throughput = lambda
	}

	// Absolute usage: delivered per-replica rate times per-op demand.
	delivered := res.Throughput / float64(replicas)
	res.Usage = resource.New(
		delivered*m.DemandPerOp[resource.CPU]*slowdown,
		ws,
		delivered*m.DemandPerOp[resource.DiskIO]*slowdown,
		delivered*m.DemandPerOp[resource.NetIO]*slowdown,
	)
	// A replica saturated on CPU or thrashing on memory burns its whole
	// CPU grant (busy loops, GC, paging system time); without this, an
	// overloaded server would paradoxically look idle to utilisation-
	// based controllers.
	if res.Saturated && (bottleneck == resource.CPU || bottleneck == resource.Memory) {
		if pegged := 0.98 * alloc[resource.CPU]; pegged > res.Usage[resource.CPU] {
			res.Usage[resource.CPU] = pegged
		}
	}
	res.Utilisation = res.Usage.Div(alloc)
	return res
}

// queueLatency is the M/G/1-PS sojourn time S/(1-ρ) for ρ<1.
func queueLatency(s, rho float64) float64 {
	if rho >= maxRho {
		rho = maxRho
	}
	if rho < 0 {
		rho = 0
	}
	return s / (1 - rho)
}

func safeInv(v float64) float64 {
	if v <= 0 {
		return math.Inf(1)
	}
	return 1 / v
}

func capDuration(seconds float64, max time.Duration) time.Duration {
	d := time.Duration(seconds * float64(time.Second))
	if d > max || d < 0 {
		return max
	}
	return d
}

// DemandFor returns the steady-state per-replica resource usage needed to
// serve lambda ops/second over the given replica count at target
// utilisation targetUtil — the analytic "right-size" answer, used by
// oracle baselines and tests.
func (m ServiceModel) DemandFor(lambda float64, replicas int, targetUtil float64) resource.Vector {
	if replicas < 1 {
		replicas = 1
	}
	if targetUtil <= 0 || targetUtil > 1 {
		targetUtil = 0.7
	}
	lr := lambda / float64(replicas)
	v := resource.New(
		lr*m.DemandPerOp[resource.CPU]/targetUtil,
		0,
		lr*m.DemandPerOp[resource.DiskIO]/targetUtil,
		lr*m.DemandPerOp[resource.NetIO]/targetUtil,
	)
	// Memory: working set at the latency implied by the target
	// utilisation, plus the same headroom factor.
	s := m.DemandPerOp[resource.CPU] / v[resource.CPU] // ≈ targetUtil/lr
	lat := m.BaseLatency.Seconds() + queueLatency(s, targetUtil)
	ws := m.MemFixed + m.MemPerConcurrent*lr*lat
	return v.With(resource.Memory, ws/targetUtil)
}

// TaskModel describes a batch/HPC task as a fixed amount of work per
// resource: CPU in millicore·seconds, DiskIO/NetIO in bytes, Memory as a
// required resident set.
type TaskModel struct {
	Work   resource.Vector // total work (Memory component ignored)
	MemSet float64         // bytes that must be resident while running
}

// Duration returns how long the task runs with the given allocation and
// interference slowdown: the bottleneck resource dictates progress, and an
// allocation below the resident set inflates it further (paging).
func (t TaskModel) Duration(alloc resource.Vector, slowdown float64) time.Duration {
	if slowdown < 1 {
		slowdown = 1
	}
	longest := 0.0
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO, resource.NetIO} {
		w := t.Work[k]
		if w <= 0 {
			continue
		}
		if alloc[k] <= 0 {
			return time.Duration(math.MaxInt64)
		}
		if d := w / alloc[k]; d > longest {
			longest = d
		}
	}
	if t.MemSet > 0 && alloc[resource.Memory] > 0 && t.MemSet > alloc[resource.Memory] {
		over := t.MemSet / alloc[resource.Memory]
		longest *= over * over
	}
	return time.Duration(longest * slowdown * float64(time.Second))
}

// InterferenceSlowdown models node-level contention: when the sum of
// colocated usage exceeds a node capacity fraction, every tenant's service
// time inflates. pressure is total usage over capacity for the node's
// dominant resource; the curve is flat below the knee and quadratic above
// it, a standard shape for shared-cache/membw contention.
func InterferenceSlowdown(pressure float64) float64 {
	const knee = 0.75
	if pressure <= knee {
		return 1
	}
	over := (pressure - knee) / (1 - knee)
	return 1 + 0.5*over*over
}
