package perf

// Phase breakdown for the sharded tick. The cluster substrate times each
// tick phase — the per-shard parallel walks (P1 slowdown, P2 app eval,
// P3 node usage), the serial barrier flushes, and the coordinator's
// mailbox/barrier-wait overhead — into a PhaseBreakdown so the bench
// harness can attribute wall time instead of reporting one opaque
// ms/tick number. Recording is plain int64 adds behind a nil check on
// the cluster side, cheap enough to leave compiled into the hot path.

// Tick phases, in execution order. Mailbox and BarrierWait are
// kernel-side overhead measured by the sim coordinator; the rest are
// model-side sections of the cluster tick.
const (
	PhaseP1         = iota // per-node interference slowdown
	PhaseP2                // per-app evaluation
	PhaseFlushApps         // app-side barrier commit (serial, appList order)
	PhaseP3                // per-node usage aggregation
	PhaseFlushNodes        // node-side barrier commit + cluster totals
	PhaseMailbox           // coordinator cross-shard mailbox drains
	PhaseBarrier           // coordinator wg.Wait in parallel rounds
	// Control-plane phases (appended so older records' indices hold):
	// the control period's read-only evaluate fan-out, its serial apply
	// walk, and the tick-time pending-backlog scheduling drain.
	PhaseCtrlEval
	PhaseCtrlApply
	PhaseSchedDrain
	NumPhases
)

// PhaseNames maps phase index to the stable JSON/summary label.
var PhaseNames = [NumPhases]string{
	"p1", "p2", "flush_apps", "p3", "flush_nodes", "mailbox", "barrier_wait",
	"ctrl_eval", "ctrl_apply", "sched_drain",
}

// parallelPhase reports whether a phase runs sharded (its time lives in
// the per-shard rows) rather than serially at the barrier.
func parallelPhase(p int) bool {
	return p == PhaseP1 || p == PhaseP2 || p == PhaseP3
}

// PhaseBreakdown accumulates per-phase wall nanoseconds across ticks.
// Serial phases (flushes, mailbox, barrier wait) land in TotalNs; the
// parallel phases (P1, P2, P3) land in their shard's row and are summed
// on read, so the per-shard attribution survives to the summary. Each
// shard row is written only by the goroutine running that shard's phase
// event, and rows are read only from serial sections after the round
// barrier, so no locking is needed.
type PhaseBreakdown struct {
	Ticks   uint64
	TotalNs [NumPhases]int64
	ShardNs [][NumPhases]int64 // [shard][phase], parallel phases only
	// TickMaxNs is the slowest single tick observed (whole-tick wall
	// time, recorded via ObserveTick) — the tail the per-phase means
	// hide. Zero when the caller never times whole ticks.
	TickMaxNs int64
}

// NewPhaseBreakdown returns a breakdown with shard rows for nshards.
func NewPhaseBreakdown(nshards int) *PhaseBreakdown {
	if nshards < 1 {
		nshards = 1
	}
	return &PhaseBreakdown{ShardNs: make([][NumPhases]int64, nshards)}
}

// Reset zeroes every counter, keeping the shard rows.
func (b *PhaseBreakdown) Reset() {
	b.Ticks = 0
	b.TotalNs = [NumPhases]int64{}
	b.TickMaxNs = 0
	for i := range b.ShardNs {
		b.ShardNs[i] = [NumPhases]int64{}
	}
}

// ObserveTick records one whole tick's wall time, keeping the maximum.
func (b *PhaseBreakdown) ObserveTick(ns int64) {
	if ns > b.TickMaxNs {
		b.TickMaxNs = ns
	}
}

// Add accumulates ns into a serial phase's total.
func (b *PhaseBreakdown) Add(phase int, ns int64) { b.TotalNs[phase] += ns }

// AddShard accumulates ns into shard's row for a parallel phase.
func (b *PhaseBreakdown) AddShard(shard, phase int, ns int64) {
	b.ShardNs[shard][phase] += ns
}

// PhaseTotalNs returns a phase's accumulated nanoseconds: the serial
// total, plus the summed shard rows for parallel phases (summed CPU
// time across shards, not wall time).
func (b *PhaseBreakdown) PhaseTotalNs(phase int) int64 {
	ns := b.TotalNs[phase]
	if parallelPhase(phase) {
		for i := range b.ShardNs {
			ns += b.ShardNs[i][phase]
		}
	}
	return ns
}

// PhaseMS is one phase's mean milliseconds per tick, as exported in
// bench rows.
type PhaseMS struct {
	Phase string  `json:"phase"`
	MS    float64 `json:"ms_per_tick"`
}

// PerTickMS summarises the breakdown as mean milliseconds per tick per
// phase, in execution order. Zero ticks yields totals over one tick.
func (b *PhaseBreakdown) PerTickMS() []PhaseMS {
	out := make([]PhaseMS, NumPhases)
	ticks := float64(b.Ticks)
	if ticks == 0 {
		ticks = 1
	}
	for p := 0; p < NumPhases; p++ {
		out[p] = PhaseMS{Phase: PhaseNames[p], MS: float64(b.PhaseTotalNs(p)) / ticks / 1e6}
	}
	return out
}
