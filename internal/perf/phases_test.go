package perf

import "testing"

func TestPhaseBreakdownAccumulation(t *testing.T) {
	b := NewPhaseBreakdown(3)
	// Serial phases accumulate in TotalNs.
	b.Add(PhaseFlushApps, 100)
	b.Add(PhaseFlushApps, 50)
	b.Add(PhaseBarrier, 30)
	// Parallel phases accumulate per shard and sum on read.
	b.AddShard(0, PhaseP2, 10)
	b.AddShard(1, PhaseP2, 20)
	b.AddShard(2, PhaseP2, 30)
	b.AddShard(1, PhaseP1, 7)

	if got := b.PhaseTotalNs(PhaseFlushApps); got != 150 {
		t.Errorf("flush_apps = %d, want 150", got)
	}
	if got := b.PhaseTotalNs(PhaseBarrier); got != 30 {
		t.Errorf("barrier_wait = %d, want 30", got)
	}
	if got := b.PhaseTotalNs(PhaseP2); got != 60 {
		t.Errorf("p2 = %d, want 60 (summed shard rows)", got)
	}
	if got := b.PhaseTotalNs(PhaseP1); got != 7 {
		t.Errorf("p1 = %d, want 7", got)
	}
	if got := b.PhaseTotalNs(PhaseP3); got != 0 {
		t.Errorf("p3 = %d, want 0", got)
	}

	b.Ticks = 2
	ms := b.PerTickMS()
	if len(ms) != NumPhases {
		t.Fatalf("PerTickMS has %d rows, want %d", len(ms), NumPhases)
	}
	if ms[PhaseP2].Phase != "p2" || ms[PhaseP2].MS != 60.0/2/1e6 {
		t.Errorf("p2 row = %+v", ms[PhaseP2])
	}
	if ms[PhaseFlushApps].MS != 150.0/2/1e6 {
		t.Errorf("flush_apps ms = %v", ms[PhaseFlushApps].MS)
	}

	b.Reset()
	if b.Ticks != 0 || b.PhaseTotalNs(PhaseP2) != 0 || b.PhaseTotalNs(PhaseFlushApps) != 0 {
		t.Error("Reset left residue")
	}
	if len(b.ShardNs) != 3 {
		t.Errorf("Reset dropped shard rows: %d", len(b.ShardNs))
	}
}

func TestPhaseBreakdownZeroTicks(t *testing.T) {
	b := NewPhaseBreakdown(0) // clamps to one shard row
	if len(b.ShardNs) != 1 {
		t.Fatalf("shard rows = %d, want 1", len(b.ShardNs))
	}
	b.Add(PhaseMailbox, 2e6)
	ms := b.PerTickMS() // zero ticks divides by one, not zero
	if ms[PhaseMailbox].MS != 2 {
		t.Errorf("mailbox ms = %v, want 2", ms[PhaseMailbox].MS)
	}
}
