package perf

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"evolve/internal/resource"
)

// webModel is a CPU-bound service: 10ms of CPU per op at 1000m, small I/O.
func webModel() ServiceModel {
	return ServiceModel{
		BaseLatency:      2 * time.Millisecond,
		DemandPerOp:      resource.New(10, 0, 20e3, 50e3), // 10 mc·s, 20kB disk, 50kB net
		MemFixed:         256 << 20,
		MemPerConcurrent: 4 << 20,
		MaxLatency:       30 * time.Second,
	}
}

func ampleAlloc() resource.Vector {
	return resource.New(2000, 2<<30, 50e6, 100e6)
}

func TestValidate(t *testing.T) {
	m := webModel()
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := m
	bad.DemandPerOp[resource.CPU] = 0
	if bad.Validate() == nil {
		t.Error("zero CPU demand should fail")
	}
	bad = m
	bad.MemFixed = -1
	if bad.Validate() == nil {
		t.Error("negative memory should fail")
	}
	bad = m
	bad.MaxLatency = 0
	if bad.Validate() == nil {
		t.Error("zero MaxLatency should fail")
	}
	bad = m
	bad.DemandPerOp[resource.NetIO] = -5
	if bad.Validate() == nil {
		t.Error("negative demand should fail")
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	m := webModel()
	alloc := ampleAlloc()
	var prev time.Duration
	// CPU capacity: 2000m / 10 mc·s = 200 op/s per replica.
	for _, lambda := range []float64{10, 50, 100, 150, 180, 195} {
		r := m.Evaluate(lambda, 1, alloc, 1)
		if r.MeanLatency <= prev {
			t.Errorf("latency %v at λ=%v not increasing (prev %v)", r.MeanLatency, lambda, prev)
		}
		if r.Saturated {
			t.Errorf("λ=%v should not saturate", lambda)
		}
		if r.Throughput != lambda {
			t.Errorf("unsaturated throughput %v != offered %v", r.Throughput, lambda)
		}
		prev = r.MeanLatency
	}
}

func TestSaturation(t *testing.T) {
	m := webModel()
	r := m.Evaluate(500, 1, ampleAlloc(), 1) // far beyond 200 op/s capacity
	if !r.Saturated {
		t.Fatal("overload should saturate")
	}
	if r.MeanLatency != m.MaxLatency {
		t.Errorf("saturated latency = %v, want cap %v", r.MeanLatency, m.MaxLatency)
	}
	if r.Throughput >= 500 || r.Throughput < 150 {
		t.Errorf("saturated throughput = %v, want ≈ capacity 200", r.Throughput)
	}
}

func TestMoreReplicasLowerLatency(t *testing.T) {
	m := webModel()
	alloc := ampleAlloc()
	one := m.Evaluate(180, 1, alloc, 1)
	four := m.Evaluate(180, 4, alloc, 1)
	if four.MeanLatency >= one.MeanLatency {
		t.Errorf("4 replicas latency %v >= 1 replica %v", four.MeanLatency, one.MeanLatency)
	}
}

func TestMoreCPULowerLatencyForCPUBound(t *testing.T) {
	m := webModel()
	small := m.Evaluate(150, 1, ampleAlloc(), 1)
	big := m.Evaluate(150, 1, ampleAlloc().With(resource.CPU, 8000), 1)
	if big.MeanLatency >= small.MeanLatency {
		t.Errorf("more CPU latency %v >= less CPU %v", big.MeanLatency, small.MeanLatency)
	}
}

func TestBottleneckIdentification(t *testing.T) {
	m := webModel()
	// Starve the network: 50kB/op at 100 op/s = 5MB/s needed.
	alloc := ampleAlloc().With(resource.NetIO, 1e6)
	r := m.Evaluate(100, 1, alloc, 1)
	if r.Bottleneck != resource.NetIO {
		t.Errorf("bottleneck = %v, want netio", r.Bottleneck)
	}
	if !r.Saturated {
		t.Error("starved network should saturate at 20 op/s")
	}
}

func TestMemoryPressurePenalty(t *testing.T) {
	m := webModel()
	ample := m.Evaluate(100, 1, ampleAlloc(), 1)
	starved := m.Evaluate(100, 1, ampleAlloc().With(resource.Memory, 64<<20), 1)
	if starved.MeanLatency <= ample.MeanLatency {
		t.Errorf("memory starvation latency %v <= ample %v", starved.MeanLatency, ample.MeanLatency)
	}
	if starved.Bottleneck != resource.Memory {
		t.Errorf("bottleneck = %v, want memory", starved.Bottleneck)
	}
}

func TestInterferenceSlowdownRaisesLatency(t *testing.T) {
	m := webModel()
	clean := m.Evaluate(150, 1, ampleAlloc(), 1)
	noisy := m.Evaluate(150, 1, ampleAlloc(), 1.4)
	if noisy.MeanLatency <= clean.MeanLatency {
		t.Errorf("interference latency %v <= clean %v", noisy.MeanLatency, clean.MeanLatency)
	}
}

func TestUtilisationReflectsLoad(t *testing.T) {
	m := webModel()
	r := m.Evaluate(100, 1, ampleAlloc(), 1)
	// CPU usage = 100 op/s * 10 mc·s/op = 1000m of 2000m = 0.5.
	if math.Abs(r.Utilisation[resource.CPU]-0.5) > 0.02 {
		t.Errorf("cpu utilisation = %v, want ≈0.5", r.Utilisation[resource.CPU])
	}
	if math.Abs(r.Usage[resource.CPU]-1000) > 20 {
		t.Errorf("cpu usage = %v, want ≈1000", r.Usage[resource.CPU])
	}
	// Memory usage ≈ working set.
	if r.Usage[resource.Memory] < float64(256<<20) {
		t.Errorf("memory usage %v below fixed working set", r.Usage[resource.Memory])
	}
	// Net usage = 100 * 50e3 = 5e6 of 100e6.
	if math.Abs(r.Utilisation[resource.NetIO]-0.05) > 0.01 {
		t.Errorf("net utilisation = %v, want ≈0.05", r.Utilisation[resource.NetIO])
	}
}

func TestP99AboveMean(t *testing.T) {
	m := webModel()
	for _, lambda := range []float64{10, 100, 190} {
		r := m.Evaluate(lambda, 1, ampleAlloc(), 1)
		if r.P99Latency < r.MeanLatency {
			t.Errorf("p99 %v < mean %v at λ=%v", r.P99Latency, r.MeanLatency, lambda)
		}
	}
}

func TestZeroReplicasClamped(t *testing.T) {
	m := webModel()
	r := m.Evaluate(50, 0, ampleAlloc(), 1)
	if r.Throughput != 50 {
		t.Errorf("0 replicas should clamp to 1: %+v", r)
	}
}

func TestDemandForMeetsLoad(t *testing.T) {
	m := webModel()
	lambda := 300.0
	alloc := m.DemandFor(lambda, 2, 0.7)
	r := m.Evaluate(lambda, 2, alloc, 1)
	if r.Saturated {
		t.Fatalf("DemandFor allocation saturates: %+v alloc=%v", r, alloc)
	}
	// Should run near the target utilisation on CPU.
	if r.Utilisation[resource.CPU] < 0.5 || r.Utilisation[resource.CPU] > 0.85 {
		t.Errorf("cpu utilisation %v not near 0.7", r.Utilisation[resource.CPU])
	}
	// Bad targetUtil inputs fall back to 0.7.
	alloc2 := m.DemandFor(lambda, 2, -1)
	if alloc2[resource.CPU] != alloc[resource.CPU] {
		t.Error("invalid targetUtil should default to 0.7")
	}
}

func TestTaskDurationBottleneck(t *testing.T) {
	task := TaskModel{
		Work:   resource.New(60000, 0, 600e6, 0), // 60000 mc·s CPU, 600MB disk
		MemSet: 1 << 30,
	}
	// 2000m CPU -> 30s; 100MB/s disk -> 6s. CPU binds.
	alloc := resource.New(2000, 2<<30, 100e6, 10e6)
	d := task.Duration(alloc, 1)
	if math.Abs(d.Seconds()-30) > 0.01 {
		t.Errorf("duration = %v, want 30s", d)
	}
	// Starve disk to 10MB/s -> 60s > CPU's 30s.
	d = task.Duration(alloc.With(resource.DiskIO, 10e6), 1)
	if math.Abs(d.Seconds()-60) > 0.01 {
		t.Errorf("disk-bound duration = %v, want 60s", d)
	}
}

func TestTaskDurationMemoryPenaltyAndSlowdown(t *testing.T) {
	task := TaskModel{Work: resource.New(10000, 0, 0, 0), MemSet: 2 << 30}
	alloc := resource.New(1000, 1<<30, 0, 0) // half the resident set
	d := task.Duration(alloc, 1)
	if math.Abs(d.Seconds()-40) > 0.01 { // 10s * (2)^2
		t.Errorf("paging duration = %v, want 40s", d)
	}
	d2 := task.Duration(alloc, 1.5)
	if math.Abs(d2.Seconds()-60) > 0.01 {
		t.Errorf("slowdown duration = %v, want 60s", d2)
	}
}

func TestTaskDurationZeroAlloc(t *testing.T) {
	task := TaskModel{Work: resource.New(1000, 0, 0, 0)}
	d := task.Duration(resource.Vector{}, 1)
	if d != time.Duration(math.MaxInt64) {
		t.Errorf("zero alloc should be effectively infinite, got %v", d)
	}
}

func TestInterferenceSlowdownShape(t *testing.T) {
	if s := InterferenceSlowdown(0.5); s != 1 {
		t.Errorf("below knee slowdown = %v, want 1", s)
	}
	if s := InterferenceSlowdown(0.75); s != 1 {
		t.Errorf("at knee slowdown = %v, want 1", s)
	}
	s1 := InterferenceSlowdown(0.85)
	s2 := InterferenceSlowdown(1.0)
	if !(s1 > 1 && s2 > s1) {
		t.Errorf("slowdown not increasing above knee: %v, %v", s1, s2)
	}
	if s2 != 1.5 {
		t.Errorf("full-pressure slowdown = %v, want 1.5", s2)
	}
}

// Property: latency is monotone non-decreasing in offered load below
// saturation.
func TestLatencyMonotoneProperty(t *testing.T) {
	m := webModel()
	alloc := ampleAlloc()
	prop := func(a, b uint8) bool {
		l1, l2 := float64(a%190)+1, float64(b%190)+1
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		r1 := m.Evaluate(l1, 1, alloc, 1)
		r2 := m.Evaluate(l2, 1, alloc, 1)
		return r1.MeanLatency <= r2.MeanLatency
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: throughput never exceeds offered load.
func TestThroughputBoundedProperty(t *testing.T) {
	m := webModel()
	alloc := ampleAlloc()
	prop := func(raw uint16) bool {
		lambda := float64(raw%1000) + 1
		r := m.Evaluate(lambda, 2, alloc, 1)
		return r.Throughput <= lambda+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
