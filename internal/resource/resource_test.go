package resource

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{CPU: "cpu", Memory: "memory", DiskIO: "diskio", NetIO: "netio"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if got, err := ParseKind(" CPU "); err != nil || got != CPU {
		t.Errorf("ParseKind with spaces/case = %v, %v", got, err)
	}
	if _, err := ParseKind("gpu"); err == nil {
		t.Error("ParseKind(gpu) should fail")
	}
}

func TestVectorArithmetic(t *testing.T) {
	a := New(1000, 1<<30, 100e6, 50e6)
	b := New(500, 1<<29, 50e6, 25e6)

	sum := a.Add(b)
	if sum[CPU] != 1500 || sum[Memory] != 3<<29 {
		t.Errorf("Add wrong: %v", sum)
	}
	diff := a.Sub(b)
	if diff[CPU] != 500 || diff[DiskIO] != 50e6 {
		t.Errorf("Sub wrong: %v", diff)
	}
	if s := a.Scale(2); s[NetIO] != 100e6 {
		t.Errorf("Scale wrong: %v", s)
	}
	// Value semantics: a must be unchanged.
	if a[CPU] != 1000 {
		t.Errorf("receiver mutated: %v", a)
	}
}

func TestVectorMinMaxClamp(t *testing.T) {
	a := New(1000, 100, 10, 1)
	b := New(500, 200, 10, 2)
	mx := a.Max(b)
	mn := a.Min(b)
	want := New(1000, 200, 10, 2)
	if mx != want {
		t.Errorf("Max = %v, want %v", mx, want)
	}
	want = New(500, 100, 10, 1)
	if mn != want {
		t.Errorf("Min = %v, want %v", mn, want)
	}
	c := New(-5, 50, 5, 0).ClampMin(0)
	if c[CPU] != 0 || c[Memory] != 50 {
		t.Errorf("ClampMin = %v", c)
	}
	lo, hi := New(100, 100, 100, 100), New(200, 200, 200, 200)
	cl := New(50, 150, 500, 200).Clamp(lo, hi)
	if cl != New(100, 150, 200, 200) {
		t.Errorf("Clamp = %v", cl)
	}
}

func TestFitsAndDominates(t *testing.T) {
	cap := New(4000, 8<<30, 500e6, 1e9)
	small := New(1000, 1<<30, 100e6, 100e6)
	if !small.Fits(cap) {
		t.Error("small should fit cap")
	}
	if small.Fits(New(500, 8<<30, 500e6, 1e9)) {
		t.Error("should not fit when one dim exceeds")
	}
	if !cap.Dominates(small) {
		t.Error("cap should dominate small")
	}
	if small.Dominates(cap) {
		t.Error("small should not dominate cap")
	}
}

func TestDivAndDominantShare(t *testing.T) {
	cap := New(1000, 1000, 1000, 1000)
	use := New(500, 900, 100, 0)
	r := use.Div(cap)
	if !almostEqual(r[Memory], 0.9) {
		t.Errorf("Div memory = %v", r[Memory])
	}
	share, kind := use.DominantShare(cap)
	if !almostEqual(share, 0.9) || kind != Memory {
		t.Errorf("DominantShare = %v, %v", share, kind)
	}
	// Zero capacity with zero use is 0, with non-zero use is +Inf.
	r = New(0, 5, 0, 0).Div(New(0, 0, 1, 1))
	if r[CPU] != 0 {
		t.Errorf("0/0 = %v, want 0", r[CPU])
	}
	if !math.IsInf(r[Memory], 1) {
		t.Errorf("5/0 = %v, want +Inf", r[Memory])
	}
}

func TestZeroAndNegative(t *testing.T) {
	var z Vector
	if !z.IsZero() {
		t.Error("zero vector should be IsZero")
	}
	if New(0, 1, 0, 0).IsZero() {
		t.Error("non-zero vector reported zero")
	}
	if !New(1, 2, 3, 4).NonNegative() {
		t.Error("positive vector should be NonNegative")
	}
	if New(1, -2, 3, 4).NonNegative() {
		t.Error("negative component should fail NonNegative")
	}
}

func TestSumMeanMaxComponent(t *testing.T) {
	v := New(1, 2, 3, 4)
	if v.Sum() != 10 {
		t.Errorf("Sum = %v", v.Sum())
	}
	if v.Mean() != 2.5 {
		t.Errorf("Mean = %v", v.Mean())
	}
	val, k := v.MaxComponent()
	if val != 4 || k != NetIO {
		t.Errorf("MaxComponent = %v, %v", val, k)
	}
}

func TestParseQuantityCPU(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"250m", 250},
		{"1500m", 1500},
		{"2", 2000},
		{"0.5", 500},
		{" 1 ", 1000},
	}
	for _, c := range cases {
		got, err := ParseQuantity(CPU, c.in)
		if err != nil || !almostEqual(got, c.want) {
			t.Errorf("ParseQuantity(CPU, %q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "-1", "-100m"} {
		if _, err := ParseQuantity(CPU, bad); err == nil {
			t.Errorf("ParseQuantity(CPU, %q) should fail", bad)
		}
	}
}

func TestParseQuantityBytes(t *testing.T) {
	cases := []struct {
		k    Kind
		in   string
		want float64
	}{
		{Memory, "1Ki", 1024},
		{Memory, "2Gi", 2 << 30},
		{Memory, "100M", 100e6},
		{Memory, "1048576", 1048576},
		{DiskIO, "100Mi/s", 100 << 20},
		{NetIO, "1G", 1e9},
		{NetIO, "10M/s", 10e6},
	}
	for _, c := range cases {
		got, err := ParseQuantity(c.k, c.in)
		if err != nil || !almostEqual(got, c.want) {
			t.Errorf("ParseQuantity(%v, %q) = %v, %v; want %v", c.k, c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "1Qi", "x", "-5Mi"} {
		if _, err := ParseQuantity(Memory, bad); err == nil {
			t.Errorf("ParseQuantity(Memory, %q) should fail", bad)
		}
	}
}

func TestFormatQuantityRoundTrip(t *testing.T) {
	if got := FormatQuantity(CPU, 1500); got != "1500m" {
		t.Errorf("cpu format = %q", got)
	}
	if got := FormatQuantity(Memory, 2<<30); got != "2.0Gi" {
		t.Errorf("mem format = %q", got)
	}
	if got := FormatQuantity(NetIO, 50e6); !strings.HasSuffix(got, "/s") {
		t.Errorf("netio format %q should have /s suffix", got)
	}
}

func TestParseVector(t *testing.T) {
	v, err := ParseVector("cpu=500m, memory=1Gi diskio=50M netio=20M/s")
	if err != nil {
		t.Fatalf("ParseVector error: %v", err)
	}
	want := New(500, 1<<30, 50e6, 20e6)
	for _, k := range Kinds() {
		if !almostEqual(v[k], want[k]) {
			t.Errorf("component %v = %v, want %v", k, v[k], want[k])
		}
	}
	if _, err := ParseVector("cpu"); err == nil {
		t.Error("missing = should fail")
	}
	if _, err := ParseVector("gpu=1"); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := ParseVector("cpu=zz"); err == nil {
		t.Error("bad quantity should fail")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse(CPU, "not-a-quantity")
}

func TestMustParseVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseVector should panic on bad input")
		}
	}()
	MustParseVector("cpu")
}

// Property: Add is commutative and associative; Sub inverts Add.
func TestVectorAddProperties(t *testing.T) {
	comm := func(a, b Vector) bool { return a.Add(b) == b.Add(a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	inv := func(a, b Vector) bool {
		got := a.Add(b).Sub(b)
		for i := range got {
			if !almostEqual(got[i], a[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(inv, nil); err != nil {
		t.Error(err)
	}
}

// Property: Max dominates both inputs; Min is dominated by both inputs.
func TestVectorMinMaxProperties(t *testing.T) {
	prop := func(a, b Vector) bool {
		mx, mn := a.Max(b), a.Min(b)
		return mx.Dominates(a) && mx.Dominates(b) && a.Dominates(mn) && b.Dominates(mn)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clamp output is always within [lo, hi] when lo <= hi.
func TestVectorClampProperty(t *testing.T) {
	prop := func(v, a, b Vector) bool {
		lo, hi := a.Min(b), a.Max(b)
		c := v.Clamp(lo, hi)
		return c.Dominates(lo) && hi.Dominates(c)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
