package resource

import "evolve/internal/ckpt"

// CkptSave writes the vector's components in kind order.
func (v Vector) CkptSave(w *ckpt.Writer) {
	for _, x := range v {
		w.F64(x)
	}
}

// LoadVector reads a vector written by CkptSave.
func LoadVector(r *ckpt.Reader) Vector {
	var v Vector
	for k := range v {
		v[k] = r.F64()
	}
	return v
}
