// Package resource models the multi-dimensional resource vectors that the
// EVOLVE stack allocates and accounts: CPU, memory, disk-I/O bandwidth and
// network bandwidth. It provides a compact value type (Vector) with the
// arithmetic, comparison and fairness helpers the scheduler and autoscaler
// need, plus Kubernetes-style quantity parsing ("500m", "2Gi", "120M").
package resource

import (
	"fmt"
	"math"
	"strings"
)

// Kind identifies one resource dimension.
type Kind int

// The resource dimensions managed by the system. CPU is measured in
// millicores, Memory in bytes, DiskIO and NetIO in bytes per second.
const (
	CPU Kind = iota
	Memory
	DiskIO
	NetIO
	NumKinds // number of dimensions; keep last
)

var kindNames = [NumKinds]string{"cpu", "memory", "diskio", "netio"}

// String returns the lower-case canonical name of the kind.
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind maps a canonical name back to a Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == strings.ToLower(strings.TrimSpace(s)) {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("resource: unknown kind %q", s)
}

// Kinds returns all resource kinds in canonical order. The slice is
// shared; callers must not modify it.
func Kinds() []Kind { return kinds }

// kinds backs Kinds(); sharing one slice keeps the per-tick loops over
// the dimensions allocation-free. Callers must not modify it.
var kinds = []Kind{CPU, Memory, DiskIO, NetIO}

// Vector is an allocation or capacity across all resource dimensions.
// The zero value is the empty allocation. Vector is a value type: all
// methods return new vectors and never mutate the receiver.
type Vector [NumKinds]float64

// New builds a vector from explicit components: cpu in millicores, mem in
// bytes, diskio and netio in bytes/second.
func New(cpuMilli, memBytes, diskBps, netBps float64) Vector {
	return Vector{cpuMilli, memBytes, diskBps, netBps}
}

// Get returns the component for kind k.
func (v Vector) Get(k Kind) float64 { return v[k] }

// With returns a copy of v with component k replaced by val.
func (v Vector) With(k Kind, val float64) Vector {
	v[k] = val
	return v
}

// Add returns v + o component-wise.
func (v Vector) Add(o Vector) Vector {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Sub returns v - o component-wise. Components may go negative; callers
// that need non-negative headroom should use ClampMin(0).
func (v Vector) Sub(o Vector) Vector {
	for i := range v {
		v[i] -= o[i]
	}
	return v
}

// Scale returns v scaled by f in every dimension.
func (v Vector) Scale(f float64) Vector {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Mul returns the component-wise product of v and o.
func (v Vector) Mul(o Vector) Vector {
	for i := range v {
		v[i] *= o[i]
	}
	return v
}

// Max returns the component-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// Min returns the component-wise minimum of v and o.
func (v Vector) Min(o Vector) Vector {
	for i := range v {
		if o[i] < v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// ClampMin returns v with every component raised to at least lo.
func (v Vector) ClampMin(lo float64) Vector {
	for i := range v {
		if v[i] < lo {
			v[i] = lo
		}
	}
	return v
}

// Clamp returns v restricted component-wise to [lo, hi].
func (v Vector) Clamp(lo, hi Vector) Vector {
	for i := range v {
		if v[i] < lo[i] {
			v[i] = lo[i]
		}
		if v[i] > hi[i] {
			v[i] = hi[i]
		}
	}
	return v
}

// Fits reports whether v fits inside capacity c in every dimension.
func (v Vector) Fits(c Vector) bool {
	for i := range v {
		if v[i] > c[i] {
			return false
		}
	}
	return true
}

// Dominates reports whether every component of v is >= the matching
// component of o.
func (v Vector) Dominates(o Vector) bool {
	for i := range v {
		if v[i] < o[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every component is exactly zero.
func (v Vector) IsZero() bool {
	for i := range v {
		if v[i] != 0 {
			return false
		}
	}
	return true
}

// NonNegative reports whether no component is negative.
func (v Vector) NonNegative() bool {
	for i := range v {
		if v[i] < 0 {
			return false
		}
	}
	return true
}

// Div returns the component-wise ratio v/o. Dimensions where o is zero
// yield 0 if v is also zero in that dimension, +Inf otherwise; this makes
// utilisation computations against partial capacities well defined.
func (v Vector) Div(o Vector) Vector {
	for i := range v {
		switch {
		case o[i] != 0:
			v[i] /= o[i]
		case v[i] == 0:
			// 0/0: no demand against no capacity is zero utilisation.
		default:
			v[i] = math.Inf(1)
		}
	}
	return v
}

// DominantShare returns the maximum utilisation ratio of v against
// capacity c (the DRF dominant share), and the kind where it occurs.
func (v Vector) DominantShare(c Vector) (float64, Kind) {
	r := v.Div(c)
	best, kind := r[0], Kind(0)
	for i := 1; i < int(NumKinds); i++ {
		if r[i] > best {
			best, kind = r[i], Kind(i)
		}
	}
	return best, kind
}

// MaxComponent returns the largest component value and its kind.
func (v Vector) MaxComponent() (float64, Kind) {
	best, kind := v[0], Kind(0)
	for i := 1; i < int(NumKinds); i++ {
		if v[i] > best {
			best, kind = v[i], Kind(i)
		}
	}
	return best, kind
}

// Sum returns the sum of all components. Only meaningful for vectors in
// homogeneous units (e.g. utilisation ratios).
func (v Vector) Sum() float64 {
	s := 0.0
	for i := range v {
		s += v[i]
	}
	return s
}

// Mean returns the arithmetic mean of all components.
func (v Vector) Mean() float64 { return v.Sum() / float64(NumKinds) }

// String renders the vector in human units, e.g.
// "cpu=1500m memory=2.0Gi diskio=100.0M/s netio=50.0M/s".
func (v Vector) String() string {
	var b strings.Builder
	for i := 0; i < int(NumKinds); i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		k := Kind(i)
		fmt.Fprintf(&b, "%s=%s", k, FormatQuantity(k, v[i]))
	}
	return b.String()
}

// binary and decimal byte multipliers for quantity parsing.
var suffixes = map[string]float64{
	"":   1,
	"k":  1e3,
	"M":  1e6,
	"G":  1e9,
	"T":  1e12,
	"Ki": 1 << 10,
	"Mi": 1 << 20,
	"Gi": 1 << 30,
	"Ti": 1 << 40,
}

// ParseQuantity parses a Kubernetes-style quantity for kind k.
//
//	CPU:      "250m" (millicores), "2" (cores ⇒ 2000 millicores)
//	Memory:   "512Mi", "2Gi", "100M", plain bytes "1048576"
//	Disk/Net: same byte suffixes, interpreted as bytes per second; an
//	          optional "/s" suffix is accepted ("100Mi/s").
func ParseQuantity(k Kind, s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("resource: empty quantity for %s", k)
	}
	if k == DiskIO || k == NetIO {
		s = strings.TrimSuffix(s, "/s")
	}
	if k == CPU {
		if strings.HasSuffix(s, "m") {
			var milli float64
			if _, err := fmt.Sscanf(strings.TrimSuffix(s, "m"), "%g", &milli); err != nil {
				return 0, fmt.Errorf("resource: bad cpu quantity %q: %v", s, err)
			}
			if milli < 0 {
				return 0, fmt.Errorf("resource: negative cpu quantity %q", s)
			}
			return milli, nil
		}
		var cores float64
		if _, err := fmt.Sscanf(s, "%g", &cores); err != nil {
			return 0, fmt.Errorf("resource: bad cpu quantity %q: %v", s, err)
		}
		if cores < 0 {
			return 0, fmt.Errorf("resource: negative cpu quantity %q", s)
		}
		return cores * 1000, nil
	}
	// Byte-denominated kinds: split numeric prefix from suffix.
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	num, suf := s[:i], s[i:]
	mult, ok := suffixes[suf]
	if !ok {
		return 0, fmt.Errorf("resource: unknown suffix %q in %q", suf, s)
	}
	var val float64
	if _, err := fmt.Sscanf(num, "%g", &val); err != nil {
		return 0, fmt.Errorf("resource: bad quantity %q: %v", s, err)
	}
	if val < 0 {
		return 0, fmt.Errorf("resource: negative quantity %q", s)
	}
	return val * mult, nil
}

// MustParse is ParseQuantity that panics on error; intended for
// package-level literals in examples and tests.
func MustParse(k Kind, s string) float64 {
	v, err := ParseQuantity(k, s)
	if err != nil {
		panic(err)
	}
	return v
}

// FormatQuantity renders a raw component value in the idiomatic unit for
// its kind: millicores for CPU, binary bytes for memory, decimal
// bytes-per-second for I/O and network.
func FormatQuantity(k Kind, v float64) string {
	switch k {
	case CPU:
		return fmt.Sprintf("%.0fm", v)
	case Memory:
		return formatBytes(v, true) // binary units: Ki/Mi/Gi
	default:
		return formatBytes(v, false) + "/s"
	}
}

func formatBytes(v float64, binary bool) string {
	type unit struct {
		mult float64
		name string
	}
	var units []unit
	if binary {
		units = []unit{{1 << 40, "Ti"}, {1 << 30, "Gi"}, {1 << 20, "Mi"}, {1 << 10, "Ki"}}
	} else {
		units = []unit{{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}}
	}
	for _, u := range units {
		if math.Abs(v) >= u.mult {
			return fmt.Sprintf("%.1f%s", v/u.mult, u.name)
		}
	}
	return fmt.Sprintf("%.0f", v)
}

// ParseVector parses a space- or comma-separated list of key=value
// quantities, e.g. "cpu=500m memory=1Gi diskio=50M netio=20M". Missing
// kinds default to zero.
func ParseVector(s string) (Vector, error) {
	var v Vector
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == ',' })
	for _, f := range fields {
		if f == "" {
			continue
		}
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return Vector{}, fmt.Errorf("resource: bad component %q (want key=value)", f)
		}
		k, err := ParseKind(kv[0])
		if err != nil {
			return Vector{}, err
		}
		q, err := ParseQuantity(k, kv[1])
		if err != nil {
			return Vector{}, err
		}
		v[k] = q
	}
	return v, nil
}

// MustParseVector is ParseVector that panics on error.
func MustParseVector(s string) Vector {
	v, err := ParseVector(s)
	if err != nil {
		panic(err)
	}
	return v
}
