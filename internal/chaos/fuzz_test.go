package chaos

import (
	"reflect"
	"testing"
	"time"

	"evolve/internal/sim"
)

// FuzzParsePlan holds the parser to three properties on arbitrary input:
// it never panics, every accepted plan validates, and the canonical form
// round-trips (Parse(plan.String()) == plan). Accepted plans are also
// compiled and driven briefly so the injector's scheduling path sees
// fuzzer-shaped windows and probabilities.
func FuzzParsePlan(f *testing.F) {
	f.Add("node-crash@30m-45m:node=node-0")
	f.Add("metric-drop@10m:p=0.2;metric-freeze@20m-40m:app=web")
	f.Add("act-reject@0:p=0.3;act-delay@15m:delay=10s;act-partial@0:mag=0.5")
	f.Add("metric-spike@90-120:mag=1.5,node=n-1")
	f.Add("sensor-dropout")
	f.Add("node-crash@-1s:node=a")
	f.Add("metric-drop@1e308")
	f.Add("metric-drop@10m:p=NaN")
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := Parse(spec)
		if err != nil {
			return
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned an invalid plan: %v", spec, err)
		}
		again, err := Parse(plan.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", plan.String(), spec, err)
		}
		if !reflect.DeepEqual(plan, again) {
			t.Fatalf("round trip of %q: %+v != %+v", spec, plan, again)
		}
		// Scheduling smoke: compile, arm, and query a few instants.
		inj := NewInjector(plan, 1)
		eng := sim.NewEngine(1)
		inj.Arm(eng, nopTarget{})
		for _, at := range []time.Duration{0, time.Minute, time.Hour} {
			inj.Sample("web", at, hostAlways{})
			inj.Actuation("web", at)
		}
		eng.Run(2 * time.Hour)
	})
}

// nopTarget absorbs crash/restore calls during fuzzing.
type nopTarget struct{}

func (nopTarget) FailNode(string) error    { return nil }
func (nopTarget) RestoreNode(string) error { return nil }
