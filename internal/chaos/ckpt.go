package chaos

import "evolve/internal/ckpt"

// CkptSave writes the injector's mutable state: the Bernoulli stream
// position and the injection counters. The compiled plan is
// configuration — the restorer reconstructs it from the same spec.
func (inj *Injector) CkptSave(w *ckpt.Writer) {
	w.Begin("chaos")
	w.U64(inj.rng.Draws())
	w.U64(inj.stats.SamplesDropped)
	w.U64(inj.stats.SamplesFrozen)
	w.U64(inj.stats.SamplesSpiked)
	w.U64(inj.stats.Rejected)
	w.U64(inj.stats.Delayed)
	w.U64(inj.stats.Partial)
	w.U64(inj.stats.NodeCrashes)
	w.U64(inj.stats.NodeRestores)
	w.U64(inj.stats.CtrlCrashes)
	w.U64(inj.stats.CtrlRestarts)
}

// CkptLoad restores state written by CkptSave into an injector compiled
// from the same plan and seed.
func (inj *Injector) CkptLoad(r *ckpt.Reader) error {
	r.Begin("chaos")
	inj.rng.Burn(r.U64())
	inj.stats.SamplesDropped = r.U64()
	inj.stats.SamplesFrozen = r.U64()
	inj.stats.SamplesSpiked = r.U64()
	inj.stats.Rejected = r.U64()
	inj.stats.Delayed = r.U64()
	inj.stats.Partial = r.U64()
	inj.stats.NodeCrashes = r.U64()
	inj.stats.NodeRestores = r.U64()
	inj.stats.CtrlCrashes = r.U64()
	inj.stats.CtrlRestarts = r.U64()
	return r.Err()
}
