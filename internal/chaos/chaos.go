// Package chaos is the seeded fault-injection subsystem of the EVOLVE
// reproduction: a Plan schedules typed faults against the simulation
// clock — node crash/restore windows, metric-path faults (dropped,
// frozen or spiked sensor samples) and actuation faults (scale decisions
// rejected, delayed or partially applied) — and an Injector compiled
// from the plan answers the cluster's interposer hooks deterministically.
//
// Plans have a compact text form so profiles travel through flags,
// scenario fingerprints and config files:
//
//	node-crash@30m-45m:node=node-0; metric-drop@10m:p=0.2,app=web
//
// Every clause is kind@window[:params]. The window is from[-to] (an
// absent "to" leaves the fault active forever; for node-crash it means
// the node is never restored). Parse accepts either that DSL or one of
// the named profiles (see Profiles), and Plan.String renders the
// canonical form — Parse(plan.String()) round-trips (the fuzz target
// holds the parser to this).
//
// Determinism: an Injector draws from its own RNG, seeded independently
// of the simulation engine, so enabling chaos never perturbs the base
// random streams (load noise, measurement jitter) and a (seed, plan)
// pair replays bit-for-bit.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind classifies a fault.
type Kind uint8

// The fault taxonomy. Node faults target the topology, metric faults the
// sensor path (what controllers observe — never the ground truth the
// experiment statistics measure), actuation faults the path from a
// controller decision to the cluster state change.
const (
	// NodeCrash marks a node unready at From (evicting its pods) and
	// restores it at To; without To the node stays down.
	NodeCrash Kind = iota
	// MetricDrop discards a sensor sample with probability P.
	MetricDrop
	// MetricFreeze replaces a sensor sample with the last delivered one
	// (stale telemetry) with probability P.
	MetricFreeze
	// MetricSpike multiplies a sensor sample by Mag with probability P.
	MetricSpike
	// ActReject rejects a scale decision with probability P; the error is
	// transient and the control loop may retry.
	ActReject
	// ActDelay applies a scale decision Delay late with probability P.
	ActDelay
	// ActPartial applies only a Mag fraction of a decision's delta with
	// probability P.
	ActPartial
	// CtrlCrash kills the control plane at From and restarts it at To
	// from its last checkpoint; without To the controller stays down.
	// The embedder (facade or harness) arms these windows — they need
	// access to the control loop and the checkpoint store, which the
	// injector deliberately does not have.
	CtrlCrash
	numKinds
)

var kindNames = [numKinds]string{
	"node-crash", "metric-drop", "metric-freeze", "metric-spike",
	"act-reject", "act-delay", "act-partial", "ctrl-crash",
}

// String returns the canonical kind name.
func (k Kind) String() string {
	if k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// ParseKind maps a canonical name back to a Kind.
func ParseKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Fault is one scheduled fault. Zero targets match everything: a
// MetricDrop with empty App and Node drops samples of every service.
type Fault struct {
	Kind Kind
	// From and To bound the active window [From, To); To == 0 leaves the
	// fault active forever. For NodeCrash they are the crash and restore
	// instants.
	From, To time.Duration
	// Node targets one node: the victim of a NodeCrash, or a host filter
	// for metric faults (the fault applies to apps with a replica there).
	Node string
	// App targets one service by name.
	App string
	// P is the per-sample / per-decision probability (defaults per kind).
	P float64
	// Mag is the spike factor (MetricSpike) or applied fraction
	// (ActPartial).
	Mag float64
	// Delay is the actuation latency injected by ActDelay.
	Delay time.Duration
}

// active reports whether the fault's window covers now.
func (f Fault) active(now time.Duration) bool {
	return now >= f.From && (f.To <= 0 || now < f.To)
}

// String renders the canonical clause form, Parse's inverse.
func (f Fault) String() string {
	var b strings.Builder
	b.WriteString(f.Kind.String())
	b.WriteByte('@')
	b.WriteString(f.From.String())
	if f.To > 0 {
		b.WriteByte('-')
		b.WriteString(f.To.String())
	}
	var params []string
	if f.Node != "" {
		params = append(params, "node="+f.Node)
	}
	if f.App != "" {
		params = append(params, "app="+f.App)
	}
	if f.P != 1 {
		params = append(params, "p="+strconv.FormatFloat(f.P, 'g', -1, 64))
	}
	if f.Mag != 0 {
		params = append(params, "mag="+strconv.FormatFloat(f.Mag, 'g', -1, 64))
	}
	if f.Delay > 0 {
		params = append(params, "delay="+f.Delay.String())
	}
	if len(params) > 0 {
		b.WriteByte(':')
		b.WriteString(strings.Join(params, ","))
	}
	return b.String()
}

// Plan is an ordered set of scheduled faults. Order matters: the first
// matching metric/actuation fault wins a verdict, and the injector draws
// its Bernoulli samples in plan order (part of the deterministic replay
// contract).
type Plan struct {
	Faults []Fault
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Faults) == 0 }

// String renders the canonical DSL form; Parse(p.String()) reproduces p.
func (p Plan) String() string {
	clauses := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		clauses[i] = f.String()
	}
	return strings.Join(clauses, ";")
}

// Validate reports plan construction errors.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if f.Kind >= numKinds {
			return fmt.Errorf("chaos: fault %d: unknown kind %d", i, f.Kind)
		}
		if f.From < 0 || f.To < 0 {
			return fmt.Errorf("chaos: fault %d (%s): negative window", i, f.Kind)
		}
		if f.To > 0 && f.To <= f.From {
			return fmt.Errorf("chaos: fault %d (%s): window ends (%v) before it starts (%v)", i, f.Kind, f.To, f.From)
		}
		if !(f.P >= 0 && f.P <= 1) { // NaN fails too
			return fmt.Errorf("chaos: fault %d (%s): probability %v outside [0,1]", i, f.Kind, f.P)
		}
		if math.IsNaN(f.Mag) || math.IsInf(f.Mag, 0) {
			return fmt.Errorf("chaos: fault %d (%s): non-finite magnitude", i, f.Kind)
		}
		switch f.Kind {
		case NodeCrash:
			if f.Node == "" {
				return fmt.Errorf("chaos: fault %d: node-crash needs node=<name>", i)
			}
		case MetricSpike:
			if f.Mag <= 0 {
				return fmt.Errorf("chaos: fault %d: metric-spike needs mag > 0", i)
			}
		case ActPartial:
			if f.Mag <= 0 || f.Mag >= 1 {
				return fmt.Errorf("chaos: fault %d: act-partial needs mag in (0,1)", i)
			}
		case ActDelay:
			if f.Delay <= 0 {
				return fmt.Errorf("chaos: fault %d: act-delay needs delay > 0", i)
			}
		}
	}
	return nil
}

// Profiles returns the named fault profiles accepted by Parse (and the
// evolve-sim -chaos flag), sorted by name. Each expands to a plan in the
// DSL, so `-chaos node-kill` and the expansion behave identically.
func Profiles() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// profiles are the standard robustness scenarios of the chaos table
// (harness.Table7): one clean node loss, steady 20% sensor dropout, a
// flaky actuation path, and everything at once.
var profiles = map[string]string{
	"node-kill":       "node-crash@30m-45m:node=node-0",
	"sensor-dropout":  "metric-drop@10m:p=0.2",
	"actuation-flake": "act-reject@10m:p=0.3",
	"mixed": "node-crash@30m-45m:node=node-0;metric-drop@10m:p=0.2;" +
		"act-reject@10m:p=0.25;metric-spike@20m:p=0.05,mag=1.5;act-delay@15m:p=0.2,delay=10s",
}

// Profile returns the DSL expansion of a named profile.
func Profile(name string) (string, bool) {
	spec, ok := profiles[strings.ToLower(strings.TrimSpace(name))]
	return spec, ok
}

// Parse reads a plan from its text form: either a named profile or a
// semicolon-separated clause list (see the package comment for the
// grammar). The returned plan is validated.
func Parse(spec string) (Plan, error) {
	spec = strings.TrimSpace(spec)
	if expanded, ok := Profile(spec); ok {
		spec = expanded
	}
	var p Plan
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		f, err := parseClause(clause)
		if err != nil {
			return Plan{}, err
		}
		p.Faults = append(p.Faults, f)
	}
	if p.Empty() {
		return Plan{}, fmt.Errorf("chaos: empty plan %q", spec)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// parseClause reads one kind@window[:params] clause.
func parseClause(clause string) (Fault, error) {
	head, params, hasParams := strings.Cut(clause, ":")
	kindStr, window, ok := strings.Cut(head, "@")
	if !ok {
		return Fault{}, fmt.Errorf("chaos: clause %q: want kind@window[:params]", clause)
	}
	kind, ok := ParseKind(strings.TrimSpace(kindStr))
	if !ok {
		return Fault{}, fmt.Errorf("chaos: clause %q: unknown fault kind %q (want one of %s)",
			clause, kindStr, strings.Join(kindNames[:], ", "))
	}
	f := Fault{Kind: kind, P: 1}
	// Per-kind parameter defaults; explicit params override below.
	switch kind {
	case MetricSpike:
		f.Mag = 2
	case ActPartial:
		f.Mag = 0.5
	case ActDelay:
		f.Delay = 10 * time.Second
	}
	from, to, hasTo := strings.Cut(strings.TrimSpace(window), "-")
	var err error
	if f.From, err = parseDur(from); err != nil {
		return Fault{}, fmt.Errorf("chaos: clause %q: bad window start: %v", clause, err)
	}
	if hasTo && strings.TrimSpace(to) != "" {
		if f.To, err = parseDur(to); err != nil {
			return Fault{}, fmt.Errorf("chaos: clause %q: bad window end: %v", clause, err)
		}
	}
	if !hasParams {
		return f, nil
	}
	for _, param := range strings.Split(params, ",") {
		param = strings.TrimSpace(param)
		if param == "" {
			continue
		}
		key, val, ok := strings.Cut(param, "=")
		if !ok {
			return Fault{}, fmt.Errorf("chaos: clause %q: parameter %q is not key=value", clause, param)
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "node":
			f.Node = val
		case "app":
			f.App = val
		case "p":
			if f.P, err = strconv.ParseFloat(val, 64); err != nil {
				return Fault{}, fmt.Errorf("chaos: clause %q: bad p: %v", clause, err)
			}
		case "mag":
			if f.Mag, err = strconv.ParseFloat(val, 64); err != nil {
				return Fault{}, fmt.Errorf("chaos: clause %q: bad mag: %v", clause, err)
			}
		case "delay":
			if f.Delay, err = parseDur(val); err != nil {
				return Fault{}, fmt.Errorf("chaos: clause %q: bad delay: %v", clause, err)
			}
		default:
			return Fault{}, fmt.Errorf("chaos: clause %q: unknown parameter %q", clause, key)
		}
	}
	return f, nil
}

// parseDur parses a duration, additionally accepting bare numbers as
// seconds ("90" == "90s") since scenario tooling often works in seconds.
func parseDur(s string) (time.Duration, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty duration")
	}
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		if math.IsNaN(secs) || math.Abs(secs) > 1e9 {
			return 0, fmt.Errorf("duration %q out of range", s)
		}
		return time.Duration(secs * float64(time.Second)), nil
	}
	return time.ParseDuration(s)
}
