package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"evolve/internal/sim"
)

func TestParseClause(t *testing.T) {
	p, err := Parse("node-crash@30m-45m:node=node-0")
	if err != nil {
		t.Fatal(err)
	}
	want := Fault{Kind: NodeCrash, From: 30 * time.Minute, To: 45 * time.Minute, Node: "node-0", P: 1}
	if len(p.Faults) != 1 || p.Faults[0] != want {
		t.Fatalf("got %+v, want %+v", p.Faults, want)
	}
}

func TestParseMultiClauseAndDefaults(t *testing.T) {
	p, err := Parse(" metric-drop@10m:p=0.2,app=web ; act-delay@0- ; metric-spike@5m-1h:mag=3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 3 {
		t.Fatalf("want 3 faults, got %d", len(p.Faults))
	}
	if f := p.Faults[0]; f.Kind != MetricDrop || f.P != 0.2 || f.App != "web" || f.From != 10*time.Minute || f.To != 0 {
		t.Fatalf("drop clause parsed as %+v", f)
	}
	if f := p.Faults[1]; f.Kind != ActDelay || f.Delay != 10*time.Second || f.P != 1 {
		t.Fatalf("delay defaults wrong: %+v", f)
	}
	if f := p.Faults[2]; f.Mag != 3 || f.To != time.Hour {
		t.Fatalf("spike clause parsed as %+v", f)
	}
}

func TestParseBareSecondsWindow(t *testing.T) {
	p, err := Parse("metric-freeze@90-120")
	if err != nil {
		t.Fatal(err)
	}
	if f := p.Faults[0]; f.From != 90*time.Second || f.To != 120*time.Second {
		t.Fatalf("bare-seconds window parsed as %+v", f)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		";",
		"frobnicate@10m",
		"node-crash@10m",            // missing node
		"node-crash@45m-30m:node=a", // window ends before start
		"metric-drop@10m:p=1.5",
		"metric-drop@10m:p=nope",
		"act-partial@0:mag=1.2",
		"metric-spike@0:mag=-1",
		"metric-drop@10m:wat=1",
		"metric-drop:p=0.2", // no window
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestProfilesParse(t *testing.T) {
	for _, name := range Profiles() {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("profile %s: %v", name, err)
		}
		if p.Empty() {
			t.Fatalf("profile %s expands to an empty plan", name)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	specs := []string{
		"node-crash@30m-45m:node=node-0",
		"metric-drop@10m:p=0.2;metric-freeze@20m-40m:app=web;act-reject@0-1h:p=0.3",
		"mixed",
	}
	for _, spec := range specs {
		p1, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p1.String(), err)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("round trip of %q: %+v != %+v", spec, p1, p2)
		}
	}
}

// hostAlways says every app runs on every node.
type hostAlways struct{}

func (hostAlways) AppOnNode(string, string) bool { return true }

func TestInjectorDeterminism(t *testing.T) {
	plan, err := Parse("metric-drop@0:p=0.3;act-reject@0:p=0.4")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []int {
		inj := NewInjector(plan, 7)
		var out []int
		for i := 0; i < 500; i++ {
			now := time.Duration(i) * 5 * time.Second
			v, _ := inj.Sample("web", now, hostAlways{})
			out = append(out, int(v))
			if inj.Actuation("web", now).Reject {
				out = append(out, 99)
			}
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (plan, seed) produced different verdict sequences")
	}
	if c := run(); !reflect.DeepEqual(a, c) {
		t.Fatal("third run diverged")
	}
	// A different seed must give a different stream (overwhelmingly).
	inj := NewInjector(plan, 8)
	var d []int
	for i := 0; i < 500; i++ {
		now := time.Duration(i) * 5 * time.Second
		v, _ := inj.Sample("web", now, hostAlways{})
		d = append(d, int(v))
		if inj.Actuation("web", now).Reject {
			d = append(d, 99)
		}
	}
	if reflect.DeepEqual(a, d) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestInjectorWindowsAndTargets(t *testing.T) {
	plan, err := Parse("metric-drop@10m-20m:app=web;metric-spike@30m:mag=2,node=n-1")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan, 1)
	if v, _ := inj.Sample("web", 5*time.Minute, hostAlways{}); v != SampleOK {
		t.Fatal("fault fired before its window")
	}
	if v, _ := inj.Sample("web", 15*time.Minute, hostAlways{}); v != SampleDrop {
		t.Fatal("drop fault inactive inside its window")
	}
	if v, _ := inj.Sample("db", 15*time.Minute, hostAlways{}); v != SampleOK {
		t.Fatal("app-scoped fault hit the wrong app")
	}
	if v, _ := inj.Sample("web", 25*time.Minute, hostAlways{}); v != SampleOK {
		t.Fatal("fault fired after its window closed")
	}
	// Node-scoped spike: only when the host checker matches.
	if _, f := inj.Sample("web", 35*time.Minute, hostAlways{}); f != 2 {
		t.Fatalf("spike factor = %v, want 2", f)
	}
	if _, f := inj.Sample("web", 35*time.Minute, nil); f != 1 {
		t.Fatalf("node-scoped fault fired with no host checker (factor %v)", f)
	}
	st := inj.Stats()
	if st.SamplesDropped != 1 || st.SamplesSpiked != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// crashRecorder records FailNode/RestoreNode calls.
type crashRecorder struct{ log []string }

func (r *crashRecorder) FailNode(n string) error    { r.log = append(r.log, "fail:"+n); return nil }
func (r *crashRecorder) RestoreNode(n string) error { r.log = append(r.log, "restore:"+n); return nil }

func TestArmSchedulesCrashWindows(t *testing.T) {
	plan, err := Parse("node-crash@10m-20m:node=n-0;node-crash@30m:node=n-1")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	rec := &crashRecorder{}
	inj := NewInjector(plan, 1)
	inj.Arm(eng, rec)
	eng.Run(time.Hour)
	want := []string{"fail:n-0", "restore:n-0", "fail:n-1"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("crash schedule %v, want %v", rec.log, want)
	}
	st := inj.Stats()
	if st.NodeCrashes != 2 || st.NodeRestores != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInjectedErrorIsTransient(t *testing.T) {
	err := Rejected("ApplyDecision", "web")
	var tr interface{ Transient() bool }
	if ok := errorsAs(err, &tr); !ok || !tr.Transient() {
		t.Fatalf("injected error not transient: %v", err)
	}
	if !strings.Contains(err.Error(), "web") {
		t.Fatalf("error message lost the app: %v", err)
	}
}

// errorsAs is a minimal errors.As for the single-level case, avoiding an
// import cycle with test helpers elsewhere.
func errorsAs(err error, target *interface{ Transient() bool }) bool {
	t, ok := err.(interface{ Transient() bool })
	if ok {
		*target = t
	}
	return ok
}
