package chaos

import (
	"strconv"
	"time"

	"evolve/internal/sim"
)

// SampleVerdict is what happened to one telemetry sample on its way to
// the controller.
type SampleVerdict uint8

const (
	// SampleOK delivers the sample (possibly distorted by the returned
	// factor).
	SampleOK SampleVerdict = iota
	// SampleDrop discards the sample: the controller's window gets
	// nothing this tick.
	SampleDrop
	// SampleFreeze substitutes the last delivered sample (stale
	// telemetry).
	SampleFreeze
)

// ActVerdict is the injector's ruling on one actuation attempt. The zero
// value lets the decision through untouched.
type ActVerdict struct {
	// Reject fails the actuation with a transient InjectedError.
	Reject bool
	// Delay postpones the actuation by this much.
	Delay time.Duration
	// Partial, when in (0,1), applies only that fraction of the
	// decision's delta.
	Partial float64
}

// NodeTarget is the topology surface Arm drives; *cluster.Cluster
// satisfies it.
type NodeTarget interface {
	FailNode(name string) error
	RestoreNode(name string) error
}

// HostChecker answers whether an app currently has a replica on a node —
// the host test behind node-scoped metric faults. *cluster.Cluster
// satisfies it.
type HostChecker interface {
	AppOnNode(app, node string) bool
}

// Stats counts what the injector actually did.
type Stats struct {
	SamplesDropped, SamplesFrozen, SamplesSpiked uint64
	Rejected, Delayed, Partial                   uint64
	NodeCrashes, NodeRestores                    uint64
	CtrlCrashes, CtrlRestarts                    uint64
}

// Injections returns the total number of injected faults.
func (s Stats) Injections() uint64 {
	return s.SamplesDropped + s.SamplesFrozen + s.SamplesSpiked +
		s.Rejected + s.Delayed + s.Partial + s.NodeCrashes + s.CtrlCrashes
}

// Injector answers the cluster's interposer hooks for one compiled plan.
// It is not safe for concurrent use (the simulation is single-threaded).
// The hot-path queries (Sample, Actuation) never allocate.
type Injector struct {
	rng    *sim.RNG
	metric []Fault // MetricDrop / MetricFreeze / MetricSpike, plan order
	act    []Fault // ActReject / ActDelay / ActPartial, plan order
	nodes  []Fault // NodeCrash, plan order
	ctrl   []Fault // CtrlCrash, plan order
	stats  Stats
}

// NewInjector compiles a plan. The injector seeds its own RNG from seed,
// independent of the simulation engine, so chaos-on never perturbs the
// base random streams and (seed, plan) replays identically.
func NewInjector(plan Plan, seed int64) *Injector {
	inj := &Injector{rng: sim.NewRNG(seed ^ 0x63686165)} // "chao"
	for _, f := range plan.Faults {
		switch f.Kind {
		case NodeCrash:
			inj.nodes = append(inj.nodes, f)
		case MetricDrop, MetricFreeze, MetricSpike:
			inj.metric = append(inj.metric, f)
		case ActReject, ActDelay, ActPartial:
			inj.act = append(inj.act, f)
		case CtrlCrash:
			inj.ctrl = append(inj.ctrl, f)
		}
	}
	return inj
}

// CtrlCrashes returns the plan's control-plane crash windows in plan
// order. Arm does not schedule them: killing and restarting the
// controller needs the control loop and the checkpoint store, which only
// the embedder has.
func (inj *Injector) CtrlCrashes() []Fault { return inj.ctrl }

// CountCtrlRestart folds a controller kill/restart pair into the stats
// (the embedder drives the windows, see CtrlCrashes).
func (inj *Injector) CountCtrlCrash()   { inj.stats.CtrlCrashes++ }
func (inj *Injector) CountCtrlRestart() { inj.stats.CtrlRestarts++ }

// Stats returns a snapshot of the injection counters.
func (inj *Injector) Stats() Stats { return inj.stats }

// Absorb folds externally accumulated counters into the injector's
// stats. The sharded cluster evaluates SampleWith against per-app
// sinks during parallel tick phases and folds them back at the barrier;
// the sums are order-independent, so totals match the serial path.
func (inj *Injector) Absorb(s Stats) {
	inj.stats.SamplesDropped += s.SamplesDropped
	inj.stats.SamplesFrozen += s.SamplesFrozen
	inj.stats.SamplesSpiked += s.SamplesSpiked
	inj.stats.Rejected += s.Rejected
	inj.stats.Delayed += s.Delayed
	inj.stats.Partial += s.Partial
	inj.stats.NodeCrashes += s.NodeCrashes
	inj.stats.NodeRestores += s.NodeRestores
	inj.stats.CtrlCrashes += s.CtrlCrashes
	inj.stats.CtrlRestarts += s.CtrlRestarts
}

// Arm schedules the plan's node crash/restore windows onto the engine.
// Call once at setup (before running the simulation). Unknown node names
// make the corresponding fault a no-op — a plan may name nodes a smaller
// scenario does not have.
func (inj *Injector) Arm(eng *sim.Engine, target NodeTarget) {
	for i, f := range inj.nodes {
		node := f.Node
		eng.TagNext("chaos", strconv.Itoa(i)+"/fail")
		eng.At(f.From, func() {
			if target.FailNode(node) == nil {
				inj.stats.NodeCrashes++
			}
		})
		if f.To > 0 {
			eng.TagNext("chaos", strconv.Itoa(i)+"/restore")
			eng.At(f.To, func() {
				if target.RestoreNode(node) == nil {
					inj.stats.NodeRestores++
				}
			})
		}
	}
}

// matches reports whether the fault applies to the app at now, using
// hosts for node-scoped faults and rng for the probability draw. Faults
// are evaluated in plan order, so for a fixed rng stream the draw
// sequence is deterministic.
func (inj *Injector) matches(rng *sim.RNG, f *Fault, app string, now time.Duration, hosts HostChecker) bool {
	if !f.active(now) {
		return false
	}
	if f.App != "" && f.App != app {
		return false
	}
	if f.Node != "" && (hosts == nil || !hosts.AppOnNode(app, f.Node)) {
		return false
	}
	return f.P >= 1 || rng.Bernoulli(f.P)
}

// Sample rules on one sensor sample for app at now. The first matching
// drop/freeze fault wins; spike factors from matching spike faults
// multiply into factor (1 when clean). Allocation-free. It draws from
// the injector's own shared stream, making the verdicts depend on the
// order apps are sampled in; callers that need order-independent
// replay (the sharded cluster tick) use SampleWith with per-app
// streams instead.
func (inj *Injector) Sample(app string, now time.Duration, hosts HostChecker) (v SampleVerdict, factor float64) {
	return inj.SampleWith(inj.rng, &inj.stats, app, now, hosts)
}

// SampleWith is Sample with the caller supplying the Bernoulli stream
// and the stats sink. Keying the stream per app (via sim.PartitionedRNG)
// makes each app's fault draws a pure function of (seed, app, sample
// sequence) — independent of how apps are interleaved, and therefore
// identical across any shard layout. A private sink lets shards
// evaluate faults in parallel; fold sinks back with Absorb at the
// barrier.
func (inj *Injector) SampleWith(rng *sim.RNG, sink *Stats, app string, now time.Duration, hosts HostChecker) (v SampleVerdict, factor float64) {
	factor = 1
	for i := range inj.metric {
		f := &inj.metric[i]
		if !inj.matches(rng, f, app, now, hosts) {
			continue
		}
		switch f.Kind {
		case MetricDrop:
			sink.SamplesDropped++
			return SampleDrop, 1
		case MetricFreeze:
			sink.SamplesFrozen++
			return SampleFreeze, 1
		case MetricSpike:
			sink.SamplesSpiked++
			factor *= f.Mag
		}
	}
	return SampleOK, factor
}

// Actuation rules on one actuation attempt for app at now. The first
// matching fault wins. Allocation-free.
func (inj *Injector) Actuation(app string, now time.Duration) ActVerdict {
	for i := range inj.act {
		f := &inj.act[i]
		if !inj.matches(inj.rng, f, app, now, nil) {
			continue
		}
		switch f.Kind {
		case ActReject:
			inj.stats.Rejected++
			return ActVerdict{Reject: true}
		case ActDelay:
			inj.stats.Delayed++
			return ActVerdict{Delay: f.Delay}
		case ActPartial:
			inj.stats.Partial++
			return ActVerdict{Partial: f.Mag}
		}
	}
	return ActVerdict{}
}

// InjectedError is the transient failure returned for a rejected
// actuation; the control loop's retry path recognises it via the
// Transient method.
type InjectedError struct {
	Op  string
	App string
}

// Error implements error.
func (e *InjectedError) Error() string {
	return "chaos: " + e.Op + " rejected for " + e.App + " (injected fault)"
}

// Transient marks the error retryable (see control.IsTransient).
func (e *InjectedError) Transient() bool { return true }

// Rejected returns the injected-rejection error for an actuation.
func Rejected(op, app string) error { return &InjectedError{Op: op, App: app} }
