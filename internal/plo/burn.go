package plo

// Error-budget burn accounting, in the SRE sense: an objective with a
// budget fraction b tolerates b of the observed wall (here: virtual)
// time in violation. The burn rate is the ratio of violation-seconds
// consumed to the budget-seconds earned so far — 1.0 means "spending
// the budget exactly as fast as it accrues", anything sustained above
// 1.0 means the objective will be missed over the window. The tracker
// is pure integer/float accumulation of deterministic inputs, so runs
// at any shard count produce bit-identical burn trajectories.

// DefaultErrorBudget is the violation fraction an application may spend
// before its objective is considered missed: 1% of observed time.
const DefaultErrorBudget = 0.01

// BurnTracker accumulates violation-seconds against an error budget.
type BurnTracker struct {
	budget  float64 // allowed violation fraction of observed time
	elapsed float64 // observed seconds
	violSec float64 // seconds spent in violation
}

// NewBurnTracker returns a tracker with the given budget fraction
// (<= 0 means DefaultErrorBudget).
func NewBurnTracker(budget float64) *BurnTracker {
	if budget <= 0 {
		budget = DefaultErrorBudget
	}
	return &BurnTracker{budget: budget}
}

// Budget returns the budget fraction.
func (b *BurnTracker) Budget() float64 { return b.budget }

// Observe accounts one interval of dt seconds, violated or not.
func (b *BurnTracker) Observe(violated bool, dt float64) {
	if dt <= 0 {
		return
	}
	b.elapsed += dt
	if violated {
		b.violSec += dt
	}
}

// ViolationSeconds returns the violation time consumed.
func (b *BurnTracker) ViolationSeconds() float64 { return b.violSec }

// ObservedSeconds returns the total time accounted.
func (b *BurnTracker) ObservedSeconds() float64 { return b.elapsed }

// BudgetSeconds returns the budget earned so far (budget × observed).
func (b *BurnTracker) BudgetSeconds() float64 { return b.budget * b.elapsed }

// BurnRate returns violation-seconds consumed per budget-second earned
// (0 before any time is observed). 1.0 is the sustainable ceiling.
func (b *BurnTracker) BurnRate() float64 {
	bs := b.BudgetSeconds()
	if bs <= 0 {
		return 0
	}
	return b.violSec / bs
}

// BudgetRemaining returns the unspent budget fraction: 1 at a clean
// slate, 0 when exactly exhausted, negative once overspent.
func (b *BurnTracker) BudgetRemaining() float64 {
	bs := b.BudgetSeconds()
	if bs <= 0 {
		return 1
	}
	return 1 - b.violSec/bs
}

// Burn returns the tracker's burn accounting, creating it on first use
// (with DefaultErrorBudget) so existing Tracker constructions get burn
// accounting without a signature change.
func (t *Tracker) Burn() *BurnTracker {
	if t.burn == nil {
		t.burn = NewBurnTracker(0)
	}
	return t.burn
}

// ObserveFor is Observe plus burn accounting: the sample is taken to
// represent dt seconds of service time. Returns whether it violated.
func (t *Tracker) ObserveFor(measured, dt float64) bool {
	v := t.Observe(measured)
	t.Burn().Observe(v, dt)
	return v
}
