// Package plo defines performance-level objectives (PLOs) — the user-facing
// contract the EVOLVE autoscaler enforces — plus the violation accounting
// used throughout the evaluation. A PLO expresses "what performance the
// application needs" (a latency bound or a throughput floor) so the user is
// removed from the resource-allocation loop entirely.
package plo

import (
	"fmt"
	"time"
)

// Metric identifies which service-level indicator a PLO constrains.
type Metric int

const (
	// MeanLatency bounds the mean request latency from above.
	MeanLatency Metric = iota
	// P99Latency bounds the 99th-percentile request latency from above.
	P99Latency
	// Throughput bounds delivered operations per second from below.
	Throughput
)

// String returns the canonical metric name.
func (m Metric) String() string {
	switch m {
	case MeanLatency:
		return "mean-latency"
	case P99Latency:
		return "p99-latency"
	case Throughput:
		return "throughput"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// PLO is one performance-level objective.
type PLO struct {
	Metric Metric
	// Target is the bound: seconds for latency metrics, ops/second for
	// throughput.
	Target float64
	// Margin widens the violation boundary: a sample only counts as a
	// violation beyond Target*(1+Margin) for latency or below
	// Target*(1-Margin) for throughput. Typical values 0.05–0.2.
	Margin float64
}

// Latency returns a mean-latency PLO with the given bound.
func Latency(bound time.Duration) PLO {
	return PLO{Metric: MeanLatency, Target: bound.Seconds(), Margin: 0.1}
}

// TailLatency returns a p99-latency PLO with the given bound.
func TailLatency(bound time.Duration) PLO {
	return PLO{Metric: P99Latency, Target: bound.Seconds(), Margin: 0.1}
}

// MinThroughput returns a throughput-floor PLO in ops/second.
func MinThroughput(opsPerSec float64) PLO {
	return PLO{Metric: Throughput, Target: opsPerSec, Margin: 0.1}
}

// Validate reports configuration errors.
func (p PLO) Validate() error {
	if p.Target <= 0 {
		return fmt.Errorf("plo: non-positive target %v for %v", p.Target, p.Metric)
	}
	if p.Margin < 0 || p.Margin >= 1 {
		return fmt.Errorf("plo: margin %v outside [0,1)", p.Margin)
	}
	return nil
}

// Error returns the normalised control error for a measured SLI value:
// positive when the application is missing the objective (needs more
// resources), negative when it over-performs. For latency the error is
// (measured-target)/target; for throughput it is (target-measured)/target.
// The result is clamped to [-1, 4] so pathological samples cannot slam the
// controller.
func (p PLO) Error(measured float64) float64 {
	var e float64
	switch p.Metric {
	case Throughput:
		e = (p.Target - measured) / p.Target
	default:
		e = (measured - p.Target) / p.Target
	}
	if e > 4 {
		e = 4
	}
	if e < -1 {
		e = -1
	}
	return e
}

// Violated reports whether a measured SLI value breaches the objective
// beyond its margin.
func (p PLO) Violated(measured float64) bool {
	switch p.Metric {
	case Throughput:
		return measured < p.Target*(1-p.Margin)
	default:
		return measured > p.Target*(1+p.Margin)
	}
}

// String renders the PLO for logs and tables.
func (p PLO) String() string {
	switch p.Metric {
	case Throughput:
		return fmt.Sprintf("%s>=%.1fop/s", p.Metric, p.Target)
	default:
		return fmt.Sprintf("%s<=%.0fms", p.Metric, p.Target*1000)
	}
}

// Tracker accumulates violation statistics for one application.
type Tracker struct {
	plo        PLO
	samples    int
	violations int
	// consecutive violation run-length tracking: long runs hurt users
	// more than scattered blips.
	curRun, worstRun int
	totalErr         float64
	// burn is the error-budget accounting (burn.go), lazily created by
	// Burn()/ObserveFor so plain Observe callers pay nothing.
	burn *BurnTracker
}

// NewTracker returns a tracker for the given objective.
func NewTracker(p PLO) *Tracker { return &Tracker{plo: p} }

// PLO returns the tracked objective.
func (t *Tracker) PLO() PLO { return t.plo }

// Observe records one SLI sample and returns whether it violated.
func (t *Tracker) Observe(measured float64) bool {
	t.samples++
	t.totalErr += t.plo.Error(measured)
	if t.plo.Violated(measured) {
		t.violations++
		t.curRun++
		if t.curRun > t.worstRun {
			t.worstRun = t.curRun
		}
		return true
	}
	t.curRun = 0
	return false
}

// Samples returns the number of observations.
func (t *Tracker) Samples() int { return t.samples }

// Violations returns the number of violating observations.
func (t *Tracker) Violations() int { return t.violations }

// ViolationFraction returns violations/samples (0 when empty).
func (t *Tracker) ViolationFraction() float64 {
	if t.samples == 0 {
		return 0
	}
	return float64(t.violations) / float64(t.samples)
}

// WorstRun returns the longest streak of consecutive violations.
func (t *Tracker) WorstRun() int { return t.worstRun }

// MeanError returns the average normalised PLO error over all samples.
func (t *Tracker) MeanError() float64 {
	if t.samples == 0 {
		return 0
	}
	return t.totalErr / float64(t.samples)
}
