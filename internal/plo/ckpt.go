package plo

import "evolve/internal/ckpt"

// Checkpoint serialisation. The objective itself is construction-time
// configuration; only the accumulated violation accounting is state.

// CkptSave writes the tracker's accumulated statistics.
func (t *Tracker) CkptSave(w *ckpt.Writer) {
	w.Int(t.samples)
	w.Int(t.violations)
	w.Int(t.curRun)
	w.Int(t.worstRun)
	w.F64(t.totalErr)
	if t.burn != nil {
		w.Bool(true)
		w.F64(t.burn.budget)
		w.F64(t.burn.elapsed)
		w.F64(t.burn.violSec)
	} else {
		w.Bool(false)
	}
}

// CkptLoad restores the tracker's accumulated statistics. The burn
// tracker's lazily-created-ness is part of the state: a checkpoint of a
// tracker that never burned restores to one that still hasn't.
func (t *Tracker) CkptLoad(r *ckpt.Reader) error {
	t.samples = r.Int()
	t.violations = r.Int()
	t.curRun = r.Int()
	t.worstRun = r.Int()
	t.totalErr = r.F64()
	if r.Bool() {
		if t.burn == nil {
			t.burn = &BurnTracker{}
		}
		t.burn.budget = r.F64()
		t.burn.elapsed = r.F64()
		t.burn.violSec = r.F64()
	} else {
		t.burn = nil
	}
	return r.Err()
}
