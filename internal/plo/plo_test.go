package plo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstructors(t *testing.T) {
	l := Latency(200 * time.Millisecond)
	if l.Metric != MeanLatency || math.Abs(l.Target-0.2) > 1e-12 {
		t.Errorf("Latency = %+v", l)
	}
	p := TailLatency(time.Second)
	if p.Metric != P99Latency || p.Target != 1 {
		t.Errorf("TailLatency = %+v", p)
	}
	th := MinThroughput(500)
	if th.Metric != Throughput || th.Target != 500 {
		t.Errorf("MinThroughput = %+v", th)
	}
	for _, o := range []PLO{l, p, th} {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", o, err)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (PLO{Metric: MeanLatency, Target: 0}).Validate(); err == nil {
		t.Error("zero target should fail")
	}
	if err := (PLO{Metric: MeanLatency, Target: 1, Margin: -0.1}).Validate(); err == nil {
		t.Error("negative margin should fail")
	}
	if err := (PLO{Metric: MeanLatency, Target: 1, Margin: 1}).Validate(); err == nil {
		t.Error("margin >= 1 should fail")
	}
}

func TestLatencyError(t *testing.T) {
	p := Latency(100 * time.Millisecond)
	if e := p.Error(0.1); math.Abs(e) > 1e-12 {
		t.Errorf("on-target error = %v", e)
	}
	if e := p.Error(0.2); math.Abs(e-1) > 1e-12 {
		t.Errorf("2x latency error = %v, want 1", e)
	}
	if e := p.Error(0.05); math.Abs(e+0.5) > 1e-12 {
		t.Errorf("half latency error = %v, want -0.5", e)
	}
	// Clamping.
	if e := p.Error(1000); e != 4 {
		t.Errorf("huge latency error = %v, want clamp 4", e)
	}
	if e := p.Error(-100); e != -1 {
		t.Errorf("negative measurement error = %v, want clamp -1", e)
	}
}

func TestThroughputError(t *testing.T) {
	p := MinThroughput(1000)
	if e := p.Error(1000); e != 0 {
		t.Errorf("on-target = %v", e)
	}
	if e := p.Error(500); math.Abs(e-0.5) > 1e-12 {
		t.Errorf("half throughput = %v, want +0.5 (needs more)", e)
	}
	if e := p.Error(2000); math.Abs(e+1) > 1e-12 {
		t.Errorf("double throughput = %v, want -1", e)
	}
}

func TestViolatedMargins(t *testing.T) {
	p := PLO{Metric: MeanLatency, Target: 0.1, Margin: 0.1}
	if p.Violated(0.105) {
		t.Error("within margin should not violate")
	}
	if !p.Violated(0.12) {
		t.Error("beyond margin should violate")
	}
	th := PLO{Metric: Throughput, Target: 100, Margin: 0.1}
	if th.Violated(95) {
		t.Error("within margin should not violate")
	}
	if !th.Violated(80) {
		t.Error("below margin should violate")
	}
}

func TestMetricString(t *testing.T) {
	for m, want := range map[Metric]string{MeanLatency: "mean-latency", P99Latency: "p99-latency", Throughput: "throughput"} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	if Metric(9).String() != "metric(9)" {
		t.Error("unknown metric string")
	}
	if s := Latency(time.Second).String(); s != "mean-latency<=1000ms" {
		t.Errorf("PLO string = %q", s)
	}
	if s := MinThroughput(42).String(); s != "throughput>=42.0op/s" {
		t.Errorf("PLO string = %q", s)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(PLO{Metric: MeanLatency, Target: 0.1, Margin: 0})
	seq := []float64{0.05, 0.2, 0.3, 0.05, 0.2, 0.2, 0.2, 0.05}
	for _, v := range seq {
		tr.Observe(v)
	}
	if tr.Samples() != 8 {
		t.Errorf("Samples = %d", tr.Samples())
	}
	if tr.Violations() != 5 {
		t.Errorf("Violations = %d, want 5", tr.Violations())
	}
	if f := tr.ViolationFraction(); math.Abs(f-0.625) > 1e-12 {
		t.Errorf("fraction = %v", f)
	}
	if tr.WorstRun() != 3 {
		t.Errorf("WorstRun = %d, want 3", tr.WorstRun())
	}
	if tr.PLO().Target != 0.1 {
		t.Error("PLO accessor wrong")
	}
}

func TestTrackerEmpty(t *testing.T) {
	tr := NewTracker(Latency(time.Second))
	if tr.ViolationFraction() != 0 || tr.MeanError() != 0 {
		t.Error("empty tracker should report zeros")
	}
}

func TestTrackerMeanError(t *testing.T) {
	tr := NewTracker(PLO{Metric: MeanLatency, Target: 1, Margin: 0})
	tr.Observe(2) // err +1
	tr.Observe(0) // err -1
	if e := tr.MeanError(); math.Abs(e) > 1e-12 {
		t.Errorf("MeanError = %v, want 0", e)
	}
}

// Property: error sign agrees with violation direction (beyond margin).
func TestErrorSignProperty(t *testing.T) {
	prop := func(rawTarget, rawMeasured uint16) bool {
		target := float64(rawTarget%1000) + 1
		measured := float64(rawMeasured % 4000)
		p := PLO{Metric: MeanLatency, Target: target, Margin: 0.1}
		if p.Violated(measured) && p.Error(measured) <= 0 {
			return false
		}
		q := PLO{Metric: Throughput, Target: target, Margin: 0.1}
		if q.Violated(measured) && q.Error(measured) <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: error is always within [-1, 4].
func TestErrorClampProperty(t *testing.T) {
	prop := func(rawTarget uint16, measured float64) bool {
		p := PLO{Metric: MeanLatency, Target: float64(rawTarget%100) + 0.5}
		e := p.Error(measured)
		return e >= -1 && e <= 4
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
