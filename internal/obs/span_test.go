package obs

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func mkSpan(kind SpanKind, app, object string, start, end time.Duration) Span {
	return Span{Kind: kind, App: app, Object: object, Start: start, End: end}
}

func TestSpanDisabledTracer(t *testing.T) {
	for _, tr := range []*Tracer{nil, Nop()} {
		if id := tr.RecordSpan(mkSpan(SpanLifecycle, "web", "web-1", 0, time.Minute)); id != 0 {
			t.Fatalf("disabled RecordSpan returned id %d, want 0", id)
		}
		if got := tr.SpanSnapshot(SpanFilter{}); got != nil {
			t.Fatalf("disabled SpanSnapshot = %v, want nil", got)
		}
		if tr.Spans() != 0 || tr.SpansDropped() != 0 || tr.SpanLen() != 0 {
			t.Fatal("disabled tracer has span state")
		}
		tr.ObserveLatency(LatencySchedule, 1, 0) // must not panic
		if got := tr.LatencySnapshot(); got != nil {
			t.Fatalf("disabled LatencySnapshot = %v, want nil", got)
		}
	}
}

func TestSpanRecordAndIDs(t *testing.T) {
	tr := New(8)
	for i := 0; i < 5; i++ {
		id := tr.RecordSpan(mkSpan(SpanPending, "web", "web-1", 0, time.Duration(i)*time.Second))
		if id != uint64(i+1) {
			t.Fatalf("span %d assigned id %d, want %d", i, id, i+1)
		}
	}
	sps := tr.SpanSnapshot(SpanFilter{})
	if len(sps) != 5 {
		t.Fatalf("got %d spans, want 5", len(sps))
	}
	for i, sp := range sps {
		if sp.ID != uint64(i+1) {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, sp.ID, i+1)
		}
	}
	if tr.SpanLen() != 5 || tr.Spans() != 5 || tr.SpansDropped() != 0 {
		t.Fatalf("SpanLen/Spans/SpansDropped = %d/%d/%d, want 5/5/0",
			tr.SpanLen(), tr.Spans(), tr.SpansDropped())
	}
}

func TestSpanRingWrap(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.RecordSpan(mkSpan(SpanSegment, "web", "web-1", 0, time.Duration(i)*time.Second))
	}
	if tr.SpanLen() != 4 {
		t.Fatalf("SpanLen = %d, want 4", tr.SpanLen())
	}
	if tr.SpansDropped() != 6 {
		t.Fatalf("SpansDropped = %d, want 6", tr.SpansDropped())
	}
	sps := tr.SpanSnapshot(SpanFilter{})
	for i, sp := range sps {
		if want := uint64(7 + i); sp.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
	// The event ring is independent: wrapping spans drops no events.
	if tr.Dropped() != 0 {
		t.Fatalf("event Dropped = %d after span wrap, want 0", tr.Dropped())
	}
}

func TestSpanFilter(t *testing.T) {
	tr := New(32)
	tr.RecordSpan(mkSpan(SpanLifecycle, "web", "web-1", 0, 10*time.Minute))
	tr.RecordSpan(mkSpan(SpanPending, "web", "web-1", 0, time.Minute))
	tr.RecordSpan(mkSpan(SpanLifecycle, "api", "api-1", 5*time.Minute, 20*time.Minute))
	tr.RecordSpan(mkSpan(SpanDecision, "api", "api", 6*time.Minute, 6*time.Minute))
	for _, tc := range []struct {
		name string
		f    SpanFilter
		want int
	}{
		{"all", SpanFilter{}, 4},
		{"app", SpanFilter{App: "web"}, 2},
		{"object", SpanFilter{Object: "api-1"}, 1},
		{"kind", SpanFilter{Kind: "lifecycle"}, 2},
		{"window", SpanFilter{From: 2 * time.Minute, To: 4 * time.Minute}, 1},
		{"limit", SpanFilter{Lim: 2}, 2},
		{"none", SpanFilter{App: "web", Kind: "decision"}, 0},
	} {
		if got := len(tr.SpanSnapshot(tc.f)); got != tc.want {
			t.Errorf("%s: %d spans, want %d", tc.name, got, tc.want)
		}
	}
	// Lim keeps the most recent matches.
	sps := tr.SpanSnapshot(SpanFilter{Lim: 2})
	if sps[0].ID != 3 || sps[1].ID != 4 {
		t.Errorf("limit kept IDs %d,%d, want 3,4", sps[0].ID, sps[1].ID)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	in := []Span{
		{ID: 1, Kind: SpanDecision, App: "web", Object: "web", Detail: "replicas=4",
			Shard: 2, Start: time.Minute, End: time.Minute},
		{ID: 2, Parent: 1, Kind: SpanLifecycle, App: "web", Object: `web-"3"`,
			Node: "node-1", Shard: -1, Start: time.Minute, End: 3 * time.Minute},
		{ID: 3, Kind: SpanPhase, Object: "p2", Shard: -1,
			Start: 2 * time.Minute, End: 2 * time.Minute, WallNs: 12345},
	}
	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, in); err != nil {
		t.Fatalf("WriteSpansJSONL: %v", err)
	}
	out, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("span %d round-trip mismatch:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
}

func TestSpanSinkTeeAndErrorLatch(t *testing.T) {
	tr := New(4)
	var buf bytes.Buffer
	tr.SetSpanSink(&buf)
	want := mkSpan(SpanGang, "hpc", "job-1", time.Minute, time.Minute)
	want.Detail = "ranks=8"
	id := tr.RecordSpan(want)
	sps, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil || len(sps) != 1 {
		t.Fatalf("sink stream: %d spans, err %v", len(sps), err)
	}
	want.ID = id
	if sps[0] != want {
		t.Fatalf("sink span = %+v, want %+v", sps[0], want)
	}
	if tr.SpanSinkErr() != nil {
		t.Fatalf("SpanSinkErr = %v, want nil", tr.SpanSinkErr())
	}

	// A failing sink latches its first error and stops the tee; the ring
	// keeps recording.
	fw := &failWriter{}
	tr.SetSpanSink(fw)
	tr.RecordSpan(want)
	tr.RecordSpan(want)
	if got := tr.SpanSinkErr(); !errors.Is(got, errWriteFailed) {
		t.Fatalf("SpanSinkErr = %v, want %v", got, errWriteFailed)
	}
	if fw.n != 1 {
		t.Fatalf("sink written %d times after latch, want 1", fw.n)
	}
	if tr.SpanLen() != 3 {
		t.Fatalf("SpanLen = %d after sink failure, want 3", tr.SpanLen())
	}
	// The event sink's error state is untouched.
	if tr.SinkErr() != nil {
		t.Fatalf("event SinkErr = %v after span sink failure, want nil", tr.SinkErr())
	}
}

func TestSpanKindNamesRoundTrip(t *testing.T) {
	for _, name := range SpanKindNames() {
		k, ok := ParseSpanKind(name)
		if !ok {
			t.Fatalf("ParseSpanKind(%q) not ok", name)
		}
		if k.String() != name {
			t.Fatalf("kind %q round-trips to %q", name, k.String())
		}
	}
	if _, ok := ParseSpanKind("bogus"); ok {
		t.Fatal("ParseSpanKind accepted a bogus name")
	}
	if SpanKind(250).String() != "unknown" {
		t.Fatal("out-of-range kind should stringify to unknown")
	}
}

// podSpanFixture is a pod's causal chain as the cluster emits it: a
// decision span, the lifecycle root parented to it, pending + startup
// children, and a later evict segment + re-pend.
func podSpanFixture() []Span {
	return []Span{
		{ID: 1, Kind: SpanDecision, App: "web", Object: "web", Detail: "replicas=4",
			Start: time.Minute, End: time.Minute},
		{ID: 2, Parent: 1, Kind: SpanLifecycle, App: "web", Object: "web-3", Node: "node-1",
			Start: time.Minute, End: 4 * time.Minute},
		{ID: 3, Parent: 2, Kind: SpanPending, App: "web", Object: "web-3",
			Start: time.Minute, End: 2 * time.Minute},
		{ID: 4, Parent: 2, Kind: SpanStartup, App: "web", Object: "web-3", Node: "node-1",
			Start: 2 * time.Minute, End: 4 * time.Minute},
		{ID: 5, Parent: 2, Kind: SpanSegment, App: "web", Object: "web-3", Node: "node-1",
			Detail: "node-failure", Start: 2 * time.Minute, End: 30 * time.Minute},
		{ID: 6, Kind: SpanLifecycle, App: "api", Object: "api-1",
			Start: 0, End: time.Minute},
	}
}

func TestPodChain(t *testing.T) {
	spans := podSpanFixture()
	chain := PodChain(spans, "web-3")
	if chain == nil {
		t.Fatal("PodChain returned nil for a pod with a lifecycle span")
	}
	wantIDs := []uint64{1, 2, 3, 4, 5}
	if len(chain) != len(wantIDs) {
		t.Fatalf("chain has %d spans, want %d", len(chain), len(wantIDs))
	}
	for i, want := range wantIDs {
		if chain[i].ID != want {
			t.Errorf("chain[%d].ID = %d, want %d", i, chain[i].ID, want)
		}
	}
	// Parent links: cause ← root ← children.
	if chain[1].Parent != chain[0].ID {
		t.Errorf("root parent = %d, want cause span %d", chain[1].Parent, chain[0].ID)
	}
	for i := 2; i < len(chain); i++ {
		if chain[i].Parent != chain[1].ID {
			t.Errorf("chain[%d].Parent = %d, want root %d", i, chain[i].Parent, chain[1].ID)
		}
	}
	if PodChain(spans, "no-such-pod") != nil {
		t.Fatal("PodChain returned a chain for an unknown pod")
	}
}

func TestExplainPodReady(t *testing.T) {
	var buf bytes.Buffer
	if err := ExplainPodReady(&buf, podSpanFixture(), "web-3"); err != nil {
		t.Fatalf("ExplainPodReady: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"pod web-3 (app web)", "3m0s to ready", "on node-1",
		"caused by decision web", "pending", "startup", "node-failure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
	if err := ExplainPodReady(&buf, podSpanFixture(), "nope"); err == nil {
		t.Fatal("ExplainPodReady succeeded for an unknown pod")
	}
}

func TestWriteTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, podSpanFixture(), 0, 0); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "6 spans") {
		t.Errorf("timeline header missing span count:\n%s", out)
	}
	// Children render indented beneath the lifecycle root.
	rootAt := strings.Index(out, "lifecycle web/web-3")
	childAt := strings.Index(out, "  pending")
	if rootAt < 0 || childAt < 0 || childAt < rootAt {
		t.Errorf("timeline nesting wrong (root@%d child@%d):\n%s", rootAt, childAt, out)
	}

	// A window excludes non-overlapping spans.
	buf.Reset()
	if err := WriteTimeline(&buf, podSpanFixture(), 10*time.Minute, 20*time.Minute); err != nil {
		t.Fatalf("WriteTimeline(window): %v", err)
	}
	if !strings.Contains(buf.String(), "1 spans") {
		t.Errorf("window kept wrong spans:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteTimeline(&buf, nil, 0, 0); err != nil {
		t.Fatalf("WriteTimeline(empty): %v", err)
	}
	if !strings.Contains(buf.String(), "no spans in window") {
		t.Errorf("empty timeline output: %q", buf.String())
	}
}

func TestSummariseSpans(t *testing.T) {
	var buf bytes.Buffer
	spans := podSpanFixture()
	spans = append(spans, Span{ID: 7, Kind: SpanPhase, Object: "p2", WallNs: 5e6,
		Start: time.Minute, End: time.Minute})
	SummariseSpans(&buf, spans)
	out := buf.String()
	for _, want := range []string{"lifecycle", "pending", "phase", "#2 web-3", "5ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestSpanConcurrentAccess races writers (events, spans, latency
// observations) against readers (snapshots, counters) — the -race gate
// for the tracer's span and histogram surfaces.
func TestSpanConcurrentAccess(t *testing.T) {
	tr := New(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(mkEvent(i, KindSched, VerbBind, "web"))
				tr.RecordSpan(mkSpan(SpanPending, "web", "web-1",
					time.Duration(i)*time.Second, time.Duration(i+1)*time.Second))
				tr.ObserveLatency(LatencySchedule, float64(i%10), uint64(i))
				tr.ObservePhaseLatency(w, "p1", float64(i)*1e-6, uint64(i))
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Snapshot(Filter{App: "web"})
			tr.SpanSnapshot(SpanFilter{Kind: "pending"})
			tr.LatencySnapshot()
			_ = tr.Spans() + uint64(tr.SpanLen()) + tr.SpansDropped()
			_ = tr.SpanSinkErr()
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if got := tr.Spans(); got != 4*500 {
		t.Fatalf("Spans = %d, want %d", got, 4*500)
	}
	if tr.Events() != 4*500 {
		t.Fatalf("Events = %d, want %d", tr.Events(), 4*500)
	}
}
