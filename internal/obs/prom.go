package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"evolve/internal/metrics"
	"evolve/internal/resource"
)

// Prometheus text exposition (format version 0.0.4) of a metrics
// registry. The internal naming scheme maps onto metric families plus
// labels so dashboards aggregate naturally:
//
//	app/web/latency-mean      → evolve_app_latency_mean{app="web"}
//	app/web/alloc/cpu         → evolve_app_alloc{app="web",resource="cpu"}
//	cluster/usage/memory      → evolve_cluster_usage{resource="memory"}
//	plo/web/violations        → evolve_plo_violations_total{app="web"}
//	evictions/preempted       → evolve_evictions_total{reason="preempted"}
//	app/web/sli-hist          → evolve_app_sli_hist_bucket{app="web",le="…"}
//
// Series expose their most recent sample as a gauge; counters gain the
// conventional _total suffix; histograms expose cumulative buckets, sum
// and count. Families and label sets are emitted sorted, so the output
// is deterministic and diffable.

// WriteMetrics writes the registry (and, when tr is enabled, the
// tracer's own meters) in Prometheus text format.
func WriteMetrics(w io.Writer, reg *metrics.Registry, tr *Tracer) error {
	fams := map[string]*promFamily{}
	add := func(name, typ string, sample string) {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{typ: typ}
			fams[name] = f
		}
		f.samples = append(f.samples, sample)
	}

	for _, name := range reg.SeriesNames() {
		s := reg.Series(name)
		last, ok := s.Last()
		if !ok {
			continue
		}
		fam, labels := promName(name)
		add(fam, "gauge", fam+labels+" "+formatValue(last.Value))
	}
	for _, name := range reg.CounterNames() {
		fam, labels := promName(name)
		fam += "_total"
		add(fam, "counter", fam+labels+" "+strconv.FormatUint(reg.Counter(name).Value(), 10))
	}
	for _, name := range reg.HistogramNames() {
		h, ok := reg.GetHistogram(name)
		if !ok {
			continue
		}
		fam, labels := promName(name)
		h.Buckets(func(le float64, cum uint64) {
			add(fam, "histogram", fam+"_bucket"+mergeLabels(labels, `le="`+formatValue(le)+`"`)+" "+strconv.FormatUint(cum, 10))
		})
		add(fam, "histogram", fam+"_bucket"+mergeLabels(labels, `le="+Inf"`)+" "+strconv.FormatUint(h.Count(), 10))
		add(fam, "histogram", fam+"_sum"+labels+" "+formatValue(h.Sum()))
		add(fam, "histogram", fam+"_count"+labels+" "+strconv.FormatUint(h.Count(), 10))
	}
	if tr.Enabled() {
		add("evolve_trace_events_total", "counter",
			"evolve_trace_events_total "+strconv.FormatUint(tr.Events(), 10))
		add("evolve_trace_dropped_total", "counter",
			"evolve_trace_dropped_total "+strconv.FormatUint(tr.Dropped(), 10))
		add("evolve_trace_spans_total", "counter",
			"evolve_trace_spans_total "+strconv.FormatUint(tr.Spans(), 10))
		add("evolve_trace_span_dropped_total", "counter",
			"evolve_trace_span_dropped_total "+strconv.FormatUint(tr.SpansDropped(), 10))
		// Sink health: silent trace loss as a scrapeable gauge (1 = the
		// JSONL tee latched an error and stopped writing).
		add("evolve_trace_sink_error", "gauge",
			"evolve_trace_sink_error "+boolGauge(tr.SinkErr() != nil))
		add("evolve_trace_span_sink_error", "gauge",
			"evolve_trace_span_sink_error "+boolGauge(tr.SpanSinkErr() != nil))
		// Tracer-owned latency histograms, with the worst span's ID as an
		// exemplar gauge (the 0.0.4 text format has no exemplar syntax).
		for _, h := range tr.LatencySnapshot() {
			fam := "evolve_latency_" + mangle(h.Name) + "_seconds"
			var cum uint64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				add(fam, "histogram", fam+`_bucket{le="`+formatValue(bound)+`"} `+strconv.FormatUint(cum, 10))
			}
			add(fam, "histogram", fam+`_bucket{le="+Inf"} `+strconv.FormatUint(h.Count, 10))
			add(fam, "histogram", fam+"_sum "+formatValue(h.Sum))
			add(fam, "histogram", fam+"_count "+strconv.FormatUint(h.Count, 10))
			add(fam+"_max", "gauge", fam+"_max "+formatValue(h.Max))
			if h.Exemplar != 0 {
				add(fam+"_worst_span", "gauge", fam+"_worst_span "+strconv.FormatUint(h.Exemplar, 10))
			}
		}
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.typ); err != nil {
			return err
		}
		// Histogram sample order (buckets ascending, then sum/count) is
		// already canonical; other families sort their label sets.
		if f.typ != "histogram" {
			sort.Strings(f.samples)
		}
		for _, s := range f.samples {
			if _, err := io.WriteString(w, s+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

type promFamily struct {
	typ     string
	samples []string
}

// promName maps an internal metric name onto (family, label-block). The
// label block is "" or "{k=\"v\",…}".
func promName(name string) (string, string) {
	segs := strings.Split(name, "/")
	var labels []string
	if len(segs) >= 3 && (segs[0] == "app" || segs[0] == "plo") {
		labels = append(labels, `app="`+escapeLabel(segs[1])+`"`)
		segs = append(segs[:1], segs[2:]...)
	}
	if len(segs) == 2 && segs[0] == "evictions" {
		labels = append(labels, `reason="`+escapeLabel(segs[1])+`"`)
		segs = segs[:1]
	}
	if len(segs) > 1 {
		if _, err := resource.ParseKind(segs[len(segs)-1]); err == nil {
			labels = append(labels, `resource="`+escapeLabel(segs[len(segs)-1])+`"`)
			segs = segs[:len(segs)-1]
		}
	}
	fam := "evolve_" + mangle(strings.Join(segs, "_"))
	if len(labels) == 0 {
		return fam, ""
	}
	sort.Strings(labels)
	return fam, "{" + strings.Join(labels, ",") + "}"
}

// mergeLabels inserts an extra label into an existing label block.
func mergeLabels(block, extra string) string {
	if block == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(block, "}") + "," + extra + "}"
}

// mangle rewrites a name into the Prometheus identifier charset
// [a-zA-Z0-9_].
func mangle(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a float sample value; NaN and ±Inf are legal in
// the exposition format and strconv renders them canonically.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// boolGauge renders a boolean as a 0/1 gauge value.
func boolGauge(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
