package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// JSON codec for spans, mirroring the event codec (json.go): hand-rolled
// encode into a reused buffer on the sink path, encoding/json mirror
// structs on the read path, the two held byte-identical by a round-trip
// test. Optional fields are present iff non-zero — except "shard",
// whose zero value (shard 0) is meaningful and whose absent value is -1
// (unsharded), so it is present iff >= 0.

// AppendSpanJSON appends the span as one compact JSON object (no
// trailing newline) and returns the extended buffer.
func AppendSpanJSON(buf []byte, sp *Span) []byte {
	buf = append(buf, `{"id":`...)
	buf = strconv.AppendUint(buf, sp.ID, 10)
	if sp.Parent != 0 {
		buf = append(buf, `,"parent":`...)
		buf = strconv.AppendUint(buf, sp.Parent, 10)
	}
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, sp.Kind.String()...)
	buf = append(buf, `","t0":`...)
	buf = appendFloat(buf, sp.Start.Seconds())
	buf = append(buf, `,"t1":`...)
	buf = appendFloat(buf, sp.End.Seconds())

	buf = appendStrField(buf, "app", sp.App)
	buf = appendStrField(buf, "object", sp.Object)
	buf = appendStrField(buf, "node", sp.Node)
	buf = appendStrField(buf, "detail", sp.Detail)

	if sp.Shard >= 0 {
		buf = append(buf, `,"shard":`...)
		buf = strconv.AppendInt(buf, int64(sp.Shard), 10)
	}
	if sp.WallNs != 0 {
		buf = append(buf, `,"wall_ns":`...)
		buf = strconv.AppendInt(buf, sp.WallNs, 10)
	}
	return append(buf, '}')
}

type jsonSpan struct {
	ID     uint64  `json:"id"`
	Parent uint64  `json:"parent"`
	Kind   string  `json:"kind"`
	T0     float64 `json:"t0"`
	T1     float64 `json:"t1"`
	App    string  `json:"app"`
	Object string  `json:"object"`
	Node   string  `json:"node"`
	Detail string  `json:"detail"`
	Shard  *int32  `json:"shard"`
	WallNs int64   `json:"wall_ns"`
}

// ParseSpan decodes one JSON line produced by AppendSpanJSON.
func ParseSpan(line []byte) (Span, error) {
	var m jsonSpan
	if err := json.Unmarshal(line, &m); err != nil {
		return Span{}, fmt.Errorf("obs: bad span line: %w", err)
	}
	kind, ok := ParseSpanKind(m.Kind)
	if !ok {
		return Span{}, fmt.Errorf("obs: unknown span kind %q", m.Kind)
	}
	sp := Span{
		ID:     m.ID,
		Parent: m.Parent,
		Kind:   kind,
		App:    m.App,
		Object: m.Object,
		Node:   m.Node,
		Detail: m.Detail,
		Shard:  -1,
		Start:  time.Duration(math.Round(m.T0 * float64(time.Second))),
		End:    time.Duration(math.Round(m.T1 * float64(time.Second))),
		WallNs: m.WallNs,
	}
	if m.Shard != nil {
		sp.Shard = *m.Shard
	}
	return sp, nil
}

// ReadSpans decodes a whole JSONL span stream, skipping blank lines.
func ReadSpans(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		sp, err := ParseSpan(b)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteSpansJSONL writes spans as one JSON object per line.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	var buf []byte
	for i := range spans {
		buf = AppendSpanJSON(buf[:0], &spans[i])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
