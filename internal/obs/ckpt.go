package obs

import (
	"fmt"

	"evolve/internal/ckpt"
)

// SaveControlTrace writes a controller decision decomposition; the
// controllers' StateSaver implementations carry their lastTrace through
// checkpoints with it.
func SaveControlTrace(w *ckpt.Writer, t ControlTrace) {
	w.Str(t.Stage)
	w.F64(t.UtilTarget)
	w.Int(t.Adaptations)
	w.Int(t.FlooredKinds)
	for _, term := range t.Terms {
		w.F64(term.Err)
		w.F64(term.P)
		w.F64(term.I)
		w.F64(term.D)
		w.F64(term.Out)
		w.Bool(term.Clamped)
	}
	for _, g := range t.Gains {
		w.F64(g.Kp)
		w.F64(g.Ki)
		w.F64(g.Kd)
	}
}

// LoadControlTrace reads a ControlTrace written by SaveControlTrace.
func LoadControlTrace(r *ckpt.Reader) ControlTrace {
	var t ControlTrace
	t.Stage = r.Str()
	t.UtilTarget = r.F64()
	t.Adaptations = r.Int()
	t.FlooredKinds = r.Int()
	for k := range t.Terms {
		t.Terms[k] = PIDTerm{Err: r.F64(), P: r.F64(), I: r.F64(), D: r.F64(), Out: r.F64(), Clamped: r.Bool()}
	}
	for k := range t.Gains {
		t.Gains[k] = GainSet{Kp: r.F64(), Ki: r.F64(), Kd: r.F64()}
	}
	return t
}

func saveLatHist(w *ckpt.Writer, h *LatencyHistogram) {
	w.Str(h.Name)
	w.Int(len(h.Counts))
	for _, c := range h.Counts {
		w.U64(c)
	}
	w.U64(h.Count)
	w.F64(h.Sum)
	w.F64(h.Max)
	w.U64(h.Exemplar)
}

// loadLatHist reads a histogram written by saveLatHist into h, which
// must already carry the right bounds (bounds are configuration: the
// tracer's built-in kinds and phase histograms share package defaults).
func loadLatHist(r *ckpt.Reader, h *LatencyHistogram) error {
	name := r.Str()
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if h.Counts == nil {
		// A phase histogram materialised on first use: reconstruct it.
		*h = NewLatencyHistogram(name, DefaultWallBuckets)
	}
	if n != len(h.Counts) {
		return fmt.Errorf("obs: ckpt: histogram %s has %d buckets, checkpoint %d", h.Name, len(h.Counts), n)
	}
	if name != h.Name {
		return fmt.Errorf("obs: ckpt: histogram name %q, checkpoint %q", h.Name, name)
	}
	for i := range h.Counts {
		h.Counts[i] = r.U64()
	}
	h.Count = r.U64()
	h.Sum = r.F64()
	h.Max = r.F64()
	h.Exemplar = r.U64()
	return r.Err()
}

// CkptSave writes the tracer's full state: both rings (as the same JSONL
// encoding the sinks receive — it round-trips exactly), sequence and
// drop counters, and the latency histograms. Sinks and their latched
// errors are caller-owned wiring and deliberately excluded.
func (t *Tracer) CkptSave(w *ckpt.Writer) {
	w.Begin("tracer")
	w.Bool(t.Enabled())
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w.Int(len(t.buf))
	w.U64(t.seq)
	w.U64(t.dropped)
	var n int
	if t.wrapped {
		n = len(t.buf)
	} else {
		n = t.next
	}
	w.Int(n)
	var enc []byte
	emit := func(evs []Event) {
		for i := range evs {
			enc = AppendJSON(enc[:0], &evs[i])
			w.Bytes(enc)
		}
	}
	if t.wrapped {
		emit(t.buf[t.next:])
	}
	emit(t.buf[:t.next])

	w.Int(len(t.spans))
	w.U64(t.spanSeq)
	w.U64(t.spanDropped)
	if t.spanWrapped {
		n = len(t.spans)
	} else {
		n = t.spanNext
	}
	w.Int(n)
	emitSpans := func(sps []Span) {
		for i := range sps {
			enc = AppendSpanJSON(enc[:0], &sps[i])
			w.Bytes(enc)
		}
	}
	if t.spanWrapped {
		emitSpans(t.spans[t.spanNext:])
	}
	emitSpans(t.spans[:t.spanNext])

	for k := range t.lat {
		saveLatHist(w, &t.lat[k])
	}
	w.Int(len(t.phase))
	for i := range t.phase {
		present := t.phase[i].Counts != nil
		w.Bool(present)
		if present {
			saveLatHist(w, &t.phase[i])
		}
	}
}

// CkptLoad restores state written by CkptSave into a tracer constructed
// with the same capacity. The ring is rebuilt in canonical rotation
// (oldest at index 0) — rotation is unobservable through Snapshot and
// subsequent records. Sinks should be attached after the load.
func (t *Tracer) CkptLoad(r *ckpt.Reader) error {
	r.Begin("tracer")
	enabled := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if enabled != t.Enabled() {
		return fmt.Errorf("obs: ckpt: tracer enabled=%v, checkpoint %v", t.Enabled(), enabled)
	}
	if !enabled {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := r.Int(); c != len(t.buf) {
		return fmt.Errorf("obs: ckpt: event ring capacity %d, checkpoint %d", len(t.buf), c)
	}
	t.seq = r.U64()
	t.dropped = r.U64()
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n < 0 || n > len(t.buf) {
		return fmt.Errorf("obs: ckpt: event count %d exceeds ring %d", n, len(t.buf))
	}
	for i := range t.buf {
		t.buf[i] = Event{}
	}
	for i := 0; i < n; i++ {
		ev, err := ParseEvent(r.Bytes())
		if r.Err() != nil {
			return r.Err()
		}
		if err != nil {
			return err
		}
		t.buf[i] = ev
	}
	t.wrapped = n == len(t.buf)
	if t.wrapped {
		t.next = 0
	} else {
		t.next = n
	}

	if c := r.Int(); c != len(t.spans) {
		return fmt.Errorf("obs: ckpt: span ring capacity %d, checkpoint %d", len(t.spans), c)
	}
	t.spanSeq = r.U64()
	t.spanDropped = r.U64()
	n = r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n < 0 || n > len(t.spans) {
		return fmt.Errorf("obs: ckpt: span count %d exceeds ring %d", n, len(t.spans))
	}
	for i := range t.spans {
		t.spans[i] = Span{}
	}
	for i := 0; i < n; i++ {
		sp, err := ParseSpan(r.Bytes())
		if r.Err() != nil {
			return r.Err()
		}
		if err != nil {
			return err
		}
		t.spans[i] = sp
	}
	t.spanWrapped = n == len(t.spans)
	if t.spanWrapped {
		t.spanNext = 0
	} else {
		t.spanNext = n
	}

	for k := range t.lat {
		if err := loadLatHist(r, &t.lat[k]); err != nil {
			return err
		}
	}
	np := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if np < 0 || np > 1<<16 {
		return fmt.Errorf("obs: ckpt: phase histogram count %d out of range", np)
	}
	t.phase = t.phase[:0]
	for i := 0; i < np; i++ {
		t.phase = append(t.phase, LatencyHistogram{})
		if r.Bool() {
			if err := loadLatHist(r, &t.phase[i]); err != nil {
				return err
			}
		}
	}
	return r.Err()
}
