package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"evolve/internal/resource"
)

// JSON codec for trace events.
//
// Encoding is hand-rolled (AppendJSON) so the tracer's sink path reuses
// one buffer and never allocates per event; decoding (ParseEvent) goes
// through encoding/json mirror structs. The two halves are kept honest
// by a round-trip test over every event kind, and ControlTrace exposes
// the same form through MarshalJSON so encoding/json consumers (the
// /debug/controllers endpoint) emit identical bytes.
//
// Optional fields follow one rule: a field is present iff it is
// non-zero, which makes decode-of-absent and zero indistinguishable — by
// construction, since recorders leave irrelevant fields zero.

// AppendJSON appends the event as one compact JSON object (no trailing
// newline) and returns the extended buffer.
func AppendJSON(buf []byte, ev *Event) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendUint(buf, ev.Seq, 10)
	buf = append(buf, `,"t":`...)
	buf = appendFloat(buf, ev.At.Seconds())
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, ev.Kind.String()...)
	buf = append(buf, `","verb":`...)
	buf = appendString(buf, ev.Verb)

	buf = appendStrField(buf, "app", ev.App)
	buf = appendStrField(buf, "object", ev.Object)
	buf = appendStrField(buf, "node", ev.Node)
	buf = appendStrField(buf, "detail", ev.Detail)

	buf = appendNumField(buf, "perf_err", ev.PerfErr)
	buf = appendNumField(buf, "sli", ev.SLI)
	buf = appendNumField(buf, "objective", ev.Objective)
	buf = appendNumField(buf, "offered", ev.Offered)

	buf = appendIntField(buf, "replicas", ev.Replicas)
	buf = appendIntField(buf, "ready", ev.Ready)
	buf = appendIntField(buf, "new_replicas", ev.NewReplicas)

	buf = appendVecField(buf, "alloc", ev.Alloc)
	buf = appendVecField(buf, "new_alloc", ev.NewAlloc)
	buf = appendVecField(buf, "util", ev.Util)

	if ev.HasCtrl {
		buf = append(buf, `,"ctrl":`...)
		buf = appendCtrl(buf, &ev.Ctrl)
	}
	return append(buf, '}')
}

func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendString appends a JSON string literal, escaping the characters
// event fields can realistically carry (quotes, backslashes, control
// bytes from error messages).
func appendString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			buf = append(buf, fmt.Sprintf(`\u%04x`, c)...)
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

func appendStrField(buf []byte, key, v string) []byte {
	if v == "" {
		return buf
	}
	buf = append(buf, ',', '"')
	buf = append(buf, key...)
	buf = append(buf, '"', ':')
	return appendString(buf, v)
}

func appendNumField(buf []byte, key string, v float64) []byte {
	if v == 0 {
		return buf
	}
	buf = append(buf, ',', '"')
	buf = append(buf, key...)
	buf = append(buf, '"', ':')
	return appendFloat(buf, v)
}

func appendIntField(buf []byte, key string, v int) []byte {
	if v == 0 {
		return buf
	}
	buf = append(buf, ',', '"')
	buf = append(buf, key...)
	buf = append(buf, '"', ':')
	return strconv.AppendInt(buf, int64(v), 10)
}

// appendVec appends a resource vector as {"cpu":…,"memory":…,…}.
func appendVec(buf []byte, v resource.Vector) []byte {
	buf = append(buf, '{')
	for i := 0; i < int(resource.NumKinds); i++ {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, resource.Kind(i).String()...)
		buf = append(buf, '"', ':')
		buf = appendFloat(buf, v[i])
	}
	return append(buf, '}')
}

func appendVecField(buf []byte, key string, v resource.Vector) []byte {
	if v.IsZero() {
		return buf
	}
	buf = append(buf, ',', '"')
	buf = append(buf, key...)
	buf = append(buf, '"', ':')
	return appendVec(buf, v)
}

// appendCtrl appends a ControlTrace object.
func appendCtrl(buf []byte, ct *ControlTrace) []byte {
	buf = append(buf, `{"stage":`...)
	buf = appendString(buf, ct.Stage)
	buf = append(buf, `,"util_target":`...)
	buf = appendFloat(buf, ct.UtilTarget)
	buf = append(buf, `,"adaptations":`...)
	buf = strconv.AppendInt(buf, int64(ct.Adaptations), 10)
	buf = append(buf, `,"floored":`...)
	buf = strconv.AppendInt(buf, int64(ct.FlooredKinds), 10)
	buf = append(buf, `,"terms":{`...)
	for i := 0; i < int(resource.NumKinds); i++ {
		if i > 0 {
			buf = append(buf, ',')
		}
		t := &ct.Terms[i]
		buf = append(buf, '"')
		buf = append(buf, resource.Kind(i).String()...)
		buf = append(buf, `":{"err":`...)
		buf = appendFloat(buf, t.Err)
		buf = append(buf, `,"p":`...)
		buf = appendFloat(buf, t.P)
		buf = append(buf, `,"i":`...)
		buf = appendFloat(buf, t.I)
		buf = append(buf, `,"d":`...)
		buf = appendFloat(buf, t.D)
		buf = append(buf, `,"out":`...)
		buf = appendFloat(buf, t.Out)
		if t.Clamped {
			buf = append(buf, `,"clamped":true`...)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, `},"gains":{`...)
	for i := 0; i < int(resource.NumKinds); i++ {
		if i > 0 {
			buf = append(buf, ',')
		}
		g := &ct.Gains[i]
		buf = append(buf, '"')
		buf = append(buf, resource.Kind(i).String()...)
		buf = append(buf, `":{"kp":`...)
		buf = appendFloat(buf, g.Kp)
		buf = append(buf, `,"ki":`...)
		buf = appendFloat(buf, g.Ki)
		buf = append(buf, `,"kd":`...)
		buf = appendFloat(buf, g.Kd)
		buf = append(buf, '}')
	}
	return append(buf, `}}`...)
}

// MarshalJSON renders the trace in the same canonical form AppendJSON
// uses inside events, so encoding/json consumers agree with the tracer.
func (ct ControlTrace) MarshalJSON() ([]byte, error) {
	return appendCtrl(nil, &ct), nil
}

// UnmarshalJSON decodes the canonical form.
func (ct *ControlTrace) UnmarshalJSON(data []byte) error {
	var m jsonCtrl
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*ct = m.toCtrl()
	return nil
}

// Mirror structs for decoding. Field tags track AppendJSON exactly; the
// round-trip test in json_test.go fails if either side drifts.

type jsonVec struct {
	CPU    float64 `json:"cpu"`
	Memory float64 `json:"memory"`
	DiskIO float64 `json:"diskio"`
	NetIO  float64 `json:"netio"`
}

func (v *jsonVec) toVector() resource.Vector {
	if v == nil {
		return resource.Vector{}
	}
	return resource.Vector{v.CPU, v.Memory, v.DiskIO, v.NetIO}
}

type jsonTerm struct {
	Err     float64 `json:"err"`
	P       float64 `json:"p"`
	I       float64 `json:"i"`
	D       float64 `json:"d"`
	Out     float64 `json:"out"`
	Clamped bool    `json:"clamped"`
}

type jsonGains struct {
	Kp float64 `json:"kp"`
	Ki float64 `json:"ki"`
	Kd float64 `json:"kd"`
}

type jsonCtrl struct {
	Stage       string               `json:"stage"`
	UtilTarget  float64              `json:"util_target"`
	Adaptations int                  `json:"adaptations"`
	Floored     int                  `json:"floored"`
	Terms       map[string]jsonTerm  `json:"terms"`
	Gains       map[string]jsonGains `json:"gains"`
}

func (m *jsonCtrl) toCtrl() ControlTrace {
	ct := ControlTrace{
		Stage:        m.Stage,
		UtilTarget:   m.UtilTarget,
		Adaptations:  m.Adaptations,
		FlooredKinds: m.Floored,
	}
	for name, t := range m.Terms {
		k, err := resource.ParseKind(name)
		if err != nil {
			continue
		}
		ct.Terms[k] = PIDTerm{Err: t.Err, P: t.P, I: t.I, D: t.D, Out: t.Out, Clamped: t.Clamped}
	}
	for name, g := range m.Gains {
		k, err := resource.ParseKind(name)
		if err != nil {
			continue
		}
		ct.Gains[k] = GainSet{Kp: g.Kp, Ki: g.Ki, Kd: g.Kd}
	}
	return ct
}

type jsonEvent struct {
	Seq         uint64    `json:"seq"`
	T           float64   `json:"t"`
	Kind        string    `json:"kind"`
	Verb        string    `json:"verb"`
	App         string    `json:"app"`
	Object      string    `json:"object"`
	Node        string    `json:"node"`
	Detail      string    `json:"detail"`
	PerfErr     float64   `json:"perf_err"`
	SLI         float64   `json:"sli"`
	Objective   float64   `json:"objective"`
	Offered     float64   `json:"offered"`
	Replicas    int       `json:"replicas"`
	Ready       int       `json:"ready"`
	NewReplicas int       `json:"new_replicas"`
	Alloc       *jsonVec  `json:"alloc"`
	NewAlloc    *jsonVec  `json:"new_alloc"`
	Util        *jsonVec  `json:"util"`
	Ctrl        *jsonCtrl `json:"ctrl"`
}

// ParseEvent decodes one JSON line produced by AppendJSON.
func ParseEvent(line []byte) (Event, error) {
	var m jsonEvent
	if err := json.Unmarshal(line, &m); err != nil {
		return Event{}, fmt.Errorf("obs: bad trace line: %w", err)
	}
	kind, ok := ParseEventKind(m.Kind)
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown event kind %q", m.Kind)
	}
	ev := Event{
		Seq: m.Seq,
		// Round instead of truncating: the seconds value went through a
		// float64 division on encode.
		At:          time.Duration(math.Round(m.T * float64(time.Second))),
		Kind:        kind,
		Verb:        m.Verb,
		App:         m.App,
		Object:      m.Object,
		Node:        m.Node,
		Detail:      m.Detail,
		PerfErr:     m.PerfErr,
		SLI:         m.SLI,
		Objective:   m.Objective,
		Offered:     m.Offered,
		Replicas:    m.Replicas,
		Ready:       m.Ready,
		NewReplicas: m.NewReplicas,
		Alloc:       m.Alloc.toVector(),
		NewAlloc:    m.NewAlloc.toVector(),
		Util:        m.Util.toVector(),
	}
	if m.Ctrl != nil {
		ev.HasCtrl = true
		ev.Ctrl = m.Ctrl.toCtrl()
	}
	return ev, nil
}

// ReadTrace decodes a whole JSONL trace stream, skipping blank lines.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		ev, err := ParseEvent(b)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteJSONL writes events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	var buf []byte
	for i := range events {
		buf = AppendJSON(buf[:0], &events[i])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
