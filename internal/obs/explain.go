package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"evolve/internal/resource"
)

// Decision-chain reconstruction: given a trace and a question of the
// form "why did <app> look like this at <t>?", Explain finds the
// controller decision in effect and gathers the evidence around it —
// the PID decomposition it acted on, the gain adaptations leading up to
// it, the scheduler outcomes that actuated it, and the PLO transitions
// it caused or reacted to. evolve-explain is a thin CLI over this.

// Chain is one reconstructed decision chain.
type Chain struct {
	App string
	// At is the queried time; Decision the controller event in effect.
	At       time.Duration
	Decision Event
	// Gains holds adaptive-gain changes in the window before the
	// decision, Sched the scheduler outcomes for the app after it, PLO
	// the violation transitions around it. All oldest-first.
	Gains []Event
	Sched []Event
	PLO   []Event
}

// Explain reconstructs the decision chain for (app, at) from a trace.
// The decision is the last control event for the app at or before the
// queried time (falling back to the first one after it when the query
// predates the trace); window bounds how far around the decision the
// supporting events are gathered.
func Explain(events []Event, app string, at, window time.Duration) (*Chain, error) {
	if window <= 0 {
		window = 5 * time.Minute
	}
	decIdx := -1
	for i := range events {
		ev := &events[i]
		if ev.Kind != KindControl || ev.App != app {
			continue
		}
		if ev.At <= at {
			decIdx = i // keep the latest at-or-before
		} else if decIdx < 0 {
			decIdx = i // earliest after, only if nothing before
			break
		}
	}
	if decIdx < 0 {
		return nil, fmt.Errorf("obs: no control decision for app %q in trace (have %d events)", app, len(events))
	}
	ch := &Chain{App: app, At: at, Decision: events[decIdx]}
	dt := ch.Decision.At
	for i := range events {
		ev := &events[i]
		if ev.App != app && ev.Kind != KindSched {
			continue
		}
		switch ev.Kind {
		case KindGain:
			if ev.App == app && ev.At >= dt-window && ev.At <= dt {
				ch.Gains = append(ch.Gains, *ev)
			}
		case KindSched:
			if ev.App == app && ev.At >= dt && ev.At <= dt+window {
				ch.Sched = append(ch.Sched, *ev)
			}
		case KindPLO:
			if ev.At >= dt-window && ev.At <= dt+window {
				ch.PLO = append(ch.PLO, *ev)
			}
		}
	}
	return ch, nil
}

// Format renders the chain for terminals.
func (c *Chain) Format(w io.Writer) {
	d := &c.Decision
	fmt.Fprintf(w, "decision for %s at %v (seq %d)\n", c.App, d.At, d.Seq)
	fmt.Fprintf(w, "  observed: sli=%.4g objective=%.4g perf_err=%+.3f offered=%.1f op/s replicas=%d ready=%d\n",
		d.SLI, d.Objective, d.PerfErr, d.Offered, d.Replicas, d.Ready)
	if !d.Util.IsZero() {
		fmt.Fprintf(w, "  utilisation: %s\n", utilString(d.Util))
	}
	if d.HasCtrl {
		ct := &d.Ctrl
		fmt.Fprintf(w, "  pid terms (util target %.2f):\n", ct.UtilTarget)
		for _, k := range resource.Kinds() {
			t := ct.Terms[k]
			clamp := ""
			if t.Clamped {
				clamp = "  [clamped, anti-windup engaged]"
			}
			fmt.Fprintf(w, "    %-7s err=%+.3f p=%+.3f i=%+.3f d=%+.3f out=%+.3f%s\n",
				k, t.Err, t.P, t.I, t.D, t.Out, clamp)
		}
		fmt.Fprintf(w, "  gains:")
		for _, k := range resource.Kinds() {
			g := ct.Gains[k]
			fmt.Fprintf(w, " %s(kp=%.2f ki=%.2f kd=%.2f)", k, g.Kp, g.Ki, g.Kd)
		}
		fmt.Fprintf(w, "  [%d adaptations so far]\n", ct.Adaptations)
		if ct.FlooredKinds > 0 {
			fmt.Fprintf(w, "  feedforward floor raised %d dimension(s)\n", ct.FlooredKinds)
		}
		fmt.Fprintf(w, "  stage: %s\n", ct.Stage)
	}
	fmt.Fprintf(w, "  decided: replicas %d→%d, alloc %s\n", d.Replicas, d.NewReplicas, d.NewAlloc)
	if d.Detail != "" {
		fmt.Fprintf(w, "  rationale: %s\n", d.Detail)
	}
	if len(c.Gains) > 0 {
		fmt.Fprintf(w, "gain adaptations before the decision:\n")
		for _, ev := range c.Gains {
			fmt.Fprintf(w, "  %8v adaptation #%d\n", ev.At, ev.Ctrl.Adaptations)
		}
	}
	if len(c.Sched) > 0 {
		fmt.Fprintf(w, "scheduler outcomes after the decision:\n")
		for _, ev := range c.Sched {
			fmt.Fprintf(w, "  %8v %-8s %-16s", ev.At, ev.Verb, ev.Object)
			if ev.Node != "" {
				fmt.Fprintf(w, " node=%s", ev.Node)
			}
			if ev.Detail != "" {
				fmt.Fprintf(w, " (%s)", ev.Detail)
			}
			fmt.Fprintln(w)
		}
	}
	if len(c.PLO) > 0 {
		fmt.Fprintf(w, "plo transitions around the decision:\n")
		for _, ev := range c.PLO {
			fmt.Fprintf(w, "  %8v %-6s sli=%.4g objective=%.4g\n", ev.At, ev.Verb, ev.SLI, ev.Objective)
		}
	}
}

func utilString(v resource.Vector) string {
	out := ""
	for _, k := range resource.Kinds() {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%.2f", k, v[k])
	}
	return out
}

// DecisionSummary is one line of the per-app decision overview: a
// control event that changed the replica count or was clamp-driven.
type DecisionSummary struct {
	App   string
	Event Event
}

// Summarise lists the interesting decisions of a trace — every control
// event that changed replicas, plus PLO onsets — so a user can find the
// (app, time) worth explaining. Sorted by time.
func Summarise(events []Event) []DecisionSummary {
	var out []DecisionSummary
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindControl:
			if ev.NewReplicas != ev.Replicas {
				out = append(out, DecisionSummary{App: ev.App, Event: *ev})
			}
		case KindPLO:
			if ev.Verb == VerbOnset {
				out = append(out, DecisionSummary{App: ev.App, Event: *ev})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Event.At < out[j].Event.At })
	return out
}
