package obs

import (
	"io"
	"time"
)

// The span layer. Events (obs.go) answer "what happened"; spans answer
// "how long did it take and what caused it". A Span is a completed
// interval of virtual time with a parent link, recorded only once its
// end is known — the simulation is deterministic, so a bind already
// knows when the pod will be ready, and a span never exists in a
// half-open state. Spans live in their own ring with their own JSONL
// sink so the event stream's byte layout (which the determinism suite
// fingerprints) is untouched by span emission.
//
// Shard attribution: Span.Shard names the kernel shard that owns the
// span's subject (-1 when unsharded or not shard-local). It is the ONE
// field allowed to vary between runs at different shard counts; every
// other field — IDs, parents, times, names — must be byte-identical,
// and the determinism suite compares span streams with Shard masked.

// SpanKind classifies a span.
type SpanKind uint8

const (
	// SpanLifecycle is a pod's root span: created → ready. Its parent is
	// the decision or gang-admission span that caused the pod, when one
	// exists. Children cover the pending/startup/running segments.
	SpanLifecycle SpanKind = iota
	// SpanPending covers one pending segment: creation (or eviction)
	// until the bind that ended it.
	SpanPending
	// SpanStartup covers a service replica's bind → ready warm-up.
	SpanStartup
	// SpanSegment covers one running segment: bind until eviction or
	// completion; Detail carries the reason ("preempted", "node-failure",
	// "killed", "migrated", "completed").
	SpanSegment
	// SpanDecision marks one applied control decision (instant in virtual
	// time); lifecycle spans of the pods it created parent to it.
	SpanDecision
	// SpanGang marks one all-or-nothing gang admission; the rank pods'
	// lifecycle spans parent to it.
	SpanGang
	// SpanPhase is one kernel tick phase (p1, p2, flush_apps, …): an
	// instant in virtual time whose WallNs carries the measured wall
	// clock. Emitted only when phase timing is enabled.
	SpanPhase
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	"lifecycle", "pending", "startup", "segment", "decision", "gang", "phase",
}

// String returns the canonical span-kind name.
func (k SpanKind) String() string {
	if k >= numSpanKinds {
		return "unknown"
	}
	return spanKindNames[k]
}

// ParseSpanKind maps a canonical name back to a SpanKind.
func ParseSpanKind(s string) (SpanKind, bool) {
	for i, n := range spanKindNames {
		if n == s {
			return SpanKind(i), true
		}
	}
	return 0, false
}

// EventKindNames returns the canonical event-kind names in kind order.
func EventKindNames() []string {
	out := make([]string, numKinds)
	copy(out, kindNames[:])
	return out
}

// SpanKindNames returns the canonical span-kind names in kind order.
func SpanKindNames() []string {
	out := make([]string, numSpanKinds)
	copy(out, spanKindNames[:])
	return out
}

// Span is one completed causal interval. It is a flat value type:
// recording copies it into the ring without touching the heap.
type Span struct {
	// ID is assigned by RecordSpan (1-based, dense). Parent links to the
	// causally enclosing span, 0 for roots.
	ID     uint64
	Parent uint64
	Kind   SpanKind
	// App/Object/Node locate the subject (app name, pod/job/phase name,
	// placement node); Detail is a free-form qualifier (evict reason …).
	App    string
	Object string
	Node   string
	Detail string
	// Shard is the owning kernel shard, -1 when unsharded. See the
	// package comment: the only field that may vary with shard count.
	Shard int32
	// Start and End bound the interval in virtual time (Start == End for
	// instant spans).
	Start time.Duration
	End   time.Duration
	// WallNs is measured wall-clock nanoseconds for phase spans, 0
	// elsewhere (virtual-time spans have no wall identity).
	WallNs int64
}

// Duration returns the span's virtual-time extent.
func (s *Span) Duration() time.Duration { return s.End - s.Start }

// RecordSpan stores one span, assigning and returning its ID (0 when
// the tracer is disabled). On a full ring the oldest span is dropped.
// When a span sink is installed the span is also appended as one JSON
// line; the first sink error latches (SpanSinkErr) and stops the tee.
func (t *Tracer) RecordSpan(sp Span) uint64 {
	if !t.Enabled() {
		return 0
	}
	t.mu.Lock()
	t.spanSeq++
	sp.ID = t.spanSeq
	if t.spanWrapped {
		t.spanDropped++
	}
	t.spans[t.spanNext] = sp
	t.spanNext++
	if t.spanNext == len(t.spans) {
		t.spanNext = 0
		t.spanWrapped = true
	}
	if t.spanSink != nil && t.spanSinkErr == nil {
		t.spanEncBuf = AppendSpanJSON(t.spanEncBuf[:0], &sp)
		t.spanEncBuf = append(t.spanEncBuf, '\n')
		if _, err := t.spanSink.Write(t.spanEncBuf); err != nil {
			t.spanSinkErr = err
		}
	}
	id := t.spanSeq
	t.mu.Unlock()
	return id
}

// SetSpanSink installs a writer that receives every subsequent span as
// one JSON line. Callers own buffering and closing; pass nil to detach.
func (t *Tracer) SetSpanSink(w io.Writer) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.spanSink = w
	t.spanSinkErr = nil
	t.mu.Unlock()
}

// SpanSinkErr returns the first span-sink write error, if any.
func (t *Tracer) SpanSinkErr() error {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spanSinkErr
}

// Spans returns the total number of spans recorded (including any the
// ring has since dropped).
func (t *Tracer) Spans() uint64 {
	if !t.Enabled() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spanSeq
}

// SpansDropped returns how many spans the ring has overwritten.
func (t *Tracer) SpansDropped() uint64 {
	if !t.Enabled() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spanDropped
}

// SpanLen returns the number of spans currently held in the ring.
func (t *Tracer) SpanLen() int {
	if !t.Enabled() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spanWrapped {
		return len(t.spans)
	}
	return t.spanNext
}

// SpanFilter selects spans from a snapshot. Zero fields match
// everything; Kind is a span-kind name ("lifecycle", "phase", …). A
// span matches the window if its interval overlaps [From, To] (To == 0
// means no upper bound). Lim > 0 keeps only the most recent matches.
type SpanFilter struct {
	App    string
	Object string
	Kind   string
	From   time.Duration
	To     time.Duration
	Lim    int
}

// Match reports whether the span passes the filter (Lim excluded).
func (f SpanFilter) Match(sp *Span) bool {
	if f.App != "" && sp.App != f.App {
		return false
	}
	if f.Object != "" && sp.Object != f.Object {
		return false
	}
	if f.Kind != "" && sp.Kind.String() != f.Kind {
		return false
	}
	if sp.End < f.From {
		return false
	}
	if f.To > 0 && sp.Start > f.To {
		return false
	}
	return true
}

// SpanSnapshot returns the matching spans oldest-first.
func (t *Tracer) SpanSnapshot(f SpanFilter) []Span {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	appendMatch := func(sps []Span) {
		for i := range sps {
			if f.Match(&sps[i]) {
				out = append(out, sps[i])
			}
		}
	}
	if t.spanWrapped {
		appendMatch(t.spans[t.spanNext:])
	}
	appendMatch(t.spans[:t.spanNext])
	if f.Lim > 0 && len(out) > f.Lim {
		out = out[len(out)-f.Lim:]
	}
	return out
}
