// Package obs is the observability layer of the EVOLVE control plane: a
// ring-buffered tracer that records typed decision events — PID term
// decompositions, gain adaptations, scheduler outcomes, registry deltas
// and PLO violation transitions — plus a Prometheus text exposition of
// the metrics registry and the decision-chain reconstruction behind the
// evolve-explain command.
//
// The tracer is allocation-conscious by design: the hot simulation paths
// run with the shared no-op tracer (Nop) and pay one predicted branch per
// potential event; an enabled tracer preallocates its ring at creation
// and records events by value, so steady-state recording performs no
// heap allocations either (the obs benchmarks and the cluster's traced
// alloc gate enforce this). Record and Snapshot are safe for concurrent
// use — the HTTP debug endpoints read the ring while a paused simulation
// owns it.
package obs

import (
	"io"
	"sync"
	"time"

	"evolve/internal/resource"
)

// Kind classifies a trace event.
type Kind uint8

// The event taxonomy. Every event carries the fields relevant to its
// kind and leaves the rest zero (omitted in JSON).
const (
	// KindControl is one controller decision: observation in, decision
	// out, with the PID decomposition attached when the policy exposes it.
	KindControl Kind = iota
	// KindGain is an adaptive-gain change detected after a decision.
	KindGain
	// KindSched is a scheduler outcome: bind, reject, preempt, evict,
	// migrate, cap, node-failed, node-restored.
	KindSched
	// KindRegistry is an object-store topology delta (added/deleted).
	KindRegistry
	// KindPLO is a violation transition: onset or clear.
	KindPLO
	// KindFault is a robustness event: an injected fault, an absorbed
	// internal fault (registry/bind failure), a degraded-mode transition
	// or an actuation retry.
	KindFault
	numKinds
)

var kindNames = [numKinds]string{"control", "gain", "sched", "registry", "plo", "fault"}

// String returns the canonical kind name.
func (k Kind) String() string {
	if k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// ParseEventKind maps a canonical name back to a Kind.
func ParseEventKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Canonical event verbs. Events may carry other verbs; these are the ones
// the built-in recorders emit and Explain understands.
const (
	VerbDecide       = "decide"
	VerbAdapt        = "adapt"
	VerbBind         = "bind"
	VerbReject       = "reject"
	VerbPreempt      = "preempt"
	VerbEvict        = "evict"
	VerbMigrate      = "migrate"
	VerbCap          = "cap"
	VerbNodeFailed   = "node-failed"
	VerbNodeRestored = "node-restored"
	VerbAdded        = "added"
	VerbDeleted      = "deleted"
	VerbOnset        = "onset"
	VerbClear        = "clear"

	// KindFault verbs: an injected chaos fault landing, an internal fault
	// absorbed instead of crashing, a controller entering/leaving
	// degraded mode, and the actuation retry ladder.
	VerbInject    = "inject"
	VerbFault     = "fault"
	VerbDegraded  = "degraded"
	VerbRecovered = "recovered"
	VerbRetry     = "retry"
	VerbAbandon   = "abandon"
)

// PIDTerm is the decomposition of one PID controller update: the shaped
// error it saw, the proportional/integral/derivative contributions, the
// clamped output and whether the output limiter (and therefore the
// anti-windup back-calculation) engaged.
type PIDTerm struct {
	Err     float64
	P       float64
	I       float64
	D       float64
	Out     float64
	Clamped bool
}

// GainSet is one controller's gains at decision time.
type GainSet struct {
	Kp, Ki, Kd float64
}

// ControlTrace is the controller-internal decomposition of one decision,
// attached to KindControl events by policies that expose it.
type ControlTrace struct {
	// Stage names what drove the decision: "scale-out", "scale-in",
	// "floor", "grow", "steady" or "hold".
	Stage string
	// UtilTarget is the adaptive utilisation setpoint in effect.
	UtilTarget float64
	// Adaptations is the cumulative gain-adaptation count.
	Adaptations int
	// FlooredKinds counts dimensions raised by the feedforward floor.
	FlooredKinds int
	// Terms and Gains hold the per-resource PID state.
	Terms [resource.NumKinds]PIDTerm
	Gains [resource.NumKinds]GainSet
}

// Event is one trace record. It is a flat value type — recording an
// event copies it into the ring without touching the heap. Fields beyond
// the header are kind-dependent and zero elsewhere.
type Event struct {
	// Seq is the global sequence number, assigned by Record (1-based).
	Seq uint64
	// At is the virtual time of the event.
	At time.Duration
	// Kind and Verb classify the event ("sched"/"bind", "plo"/"onset" …).
	Kind Kind
	Verb string

	// App is the application concerned; Object the pod/node/key; Node the
	// placement target; Detail a free-form reason.
	App    string
	Object string
	Node   string
	Detail string

	// Control and PLO telemetry.
	PerfErr   float64
	SLI       float64
	Objective float64
	Offered   float64

	// Replica counts: current desired, currently ready, newly decided.
	Replicas    int
	Ready       int
	NewReplicas int

	// Alloc is the current (or requested) per-replica allocation;
	// NewAlloc the decided/granted one; Util the observed utilisation.
	Alloc    resource.Vector
	NewAlloc resource.Vector
	Util     resource.Vector

	// Ctrl carries the PID decomposition when HasCtrl is set.
	HasCtrl bool
	Ctrl    ControlTrace
}

// DefaultCapacity is the ring size used when none is given: at one
// decision event per app per 15s control period plus scheduler churn,
// 16k events cover several simulated hours of a busy cluster.
const DefaultCapacity = 16384

// Tracer records events into a fixed-capacity ring, optionally teeing
// each event to a JSONL sink. The zero value (and Nop) is a disabled
// tracer whose Record is a no-op; Enabled never changes after
// construction, so call sites may cache it.
//
// Tracer is safe for concurrent use: the simulation records while HTTP
// handlers snapshot between Run calls, and the race detector runs over
// exactly this boundary in CI.
type Tracer struct {
	enabled bool

	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	seq     uint64
	dropped uint64

	sink    io.Writer
	sinkErr error
	encBuf  []byte

	// The span layer (span.go): its own ring, sequence and sink so span
	// emission never perturbs the event stream's bytes.
	spans       []Span
	spanNext    int
	spanWrapped bool
	spanSeq     uint64
	spanDropped uint64
	spanSink    io.Writer
	spanSinkErr error
	spanEncBuf  []byte

	// Latency histograms with span exemplars (hist.go).
	lat   [NumLatencyKinds]LatencyHistogram
	phase []LatencyHistogram
}

// nop is the shared disabled tracer.
var nop = &Tracer{}

// Nop returns the shared no-op tracer: Enabled is false and Record
// returns immediately. Components default to it so tracing costs one
// branch when off.
func Nop() *Tracer { return nop }

// New returns an enabled tracer with the given ring capacity (<= 0 means
// DefaultCapacity). The event and span rings are allocated up front so
// Record and RecordSpan never allocate.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{
		enabled: true,
		buf:     make([]Event, capacity),
		spans:   make([]Span, capacity),
	}
	for k := LatencyKind(0); k < NumLatencyKinds; k++ {
		t.lat[k] = NewLatencyHistogram(k.String(), DefaultLatencyBuckets)
	}
	return t
}

// Enabled reports whether Record stores events. It is immutable after
// construction and safe to read without locking.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// Record stores one event, assigning its sequence number. On a full ring
// the oldest event is dropped. When a sink is installed the event is
// also appended to it as one JSON line; the first sink error latches
// (see SinkErr) and stops further sink writes.
func (t *Tracer) Record(ev Event) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.recordLocked(ev)
	t.mu.Unlock()
}

// RecordBatch stores a slice of events under one lock acquisition,
// preserving their order. Equivalent to calling Record per event; the
// sharded tick uses it to emit a barrier's worth of trace events
// without taking the mutex per app.
func (t *Tracer) RecordBatch(evs []Event) {
	if !t.Enabled() || len(evs) == 0 {
		return
	}
	t.mu.Lock()
	for _, ev := range evs {
		t.recordLocked(ev)
	}
	t.mu.Unlock()
}

// recordLocked is Record's body; t.mu must be held.
func (t *Tracer) recordLocked(ev Event) {
	t.seq++
	ev.Seq = t.seq
	if t.wrapped {
		t.dropped++
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
	if t.sink != nil && t.sinkErr == nil {
		t.encBuf = AppendJSON(t.encBuf[:0], &ev)
		t.encBuf = append(t.encBuf, '\n')
		if _, err := t.sink.Write(t.encBuf); err != nil {
			t.sinkErr = err
		}
	}
}

// SetSink installs a writer that receives every subsequent event as one
// JSON line. Callers own buffering and closing; pass nil to detach.
func (t *Tracer) SetSink(w io.Writer) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.sink = w
	t.sinkErr = nil
	t.mu.Unlock()
}

// SinkErr returns the first sink write error, if any.
func (t *Tracer) SinkErr() error {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Events returns the total number of events recorded (including any the
// ring has since dropped).
func (t *Tracer) Events() uint64 {
	if !t.Enabled() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if !t.Enabled() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of events currently held in the ring.
func (t *Tracer) Len() int {
	if !t.Enabled() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		return len(t.buf)
	}
	return t.next
}

// Filter selects events from a snapshot. Zero fields match everything;
// Kind is a kind name ("control", "sched", …). To == 0 means no upper
// bound. Limit > 0 keeps only the most recent matches.
type Filter struct {
	App  string
	Kind string
	Verb string
	From time.Duration
	To   time.Duration
	Lim  int
}

// Match reports whether the event passes the filter (Lim excluded).
func (f Filter) Match(ev *Event) bool {
	if f.App != "" && ev.App != f.App {
		return false
	}
	if f.Kind != "" && ev.Kind.String() != f.Kind {
		return false
	}
	if f.Verb != "" && ev.Verb != f.Verb {
		return false
	}
	if ev.At < f.From {
		return false
	}
	if f.To > 0 && ev.At > f.To {
		return false
	}
	return true
}

// Snapshot returns the matching events oldest-first.
func (t *Tracer) Snapshot(f Filter) []Event {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	appendMatch := func(evs []Event) {
		for i := range evs {
			if f.Match(&evs[i]) {
				out = append(out, evs[i])
			}
		}
	}
	if t.wrapped {
		appendMatch(t.buf[t.next:])
	}
	appendMatch(t.buf[:t.next])
	if f.Lim > 0 && len(out) > f.Lim {
		out = out[len(out)-f.Lim:]
	}
	return out
}
