package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Timeline reconstruction over a span stream: the library half of
// cmd/evolve-timeline and the /debug/timeline route. Everything here
// works on a plain []Span — from a SpanSnapshot or a ReadSpans of a
// sink file — so the end-to-end "why was this pod slow?" path is
// testable without HTTP or a CLI.

// PodChain returns the spans that explain one pod, in causal order: the
// decision/gang span that caused it (if present in the stream), the
// pod's root lifecycle span, then its child segments sorted by start
// time (ID breaks ties). Returns nil when the stream holds no lifecycle
// span for the pod.
func PodChain(spans []Span, pod string) []Span {
	byID := make(map[uint64]*Span, len(spans))
	var root *Span
	for i := range spans {
		sp := &spans[i]
		byID[sp.ID] = sp
		if sp.Kind == SpanLifecycle && sp.Object == pod && root == nil {
			root = sp
		}
	}
	if root == nil {
		return nil
	}
	var out []Span
	if cause, ok := byID[root.Parent]; ok && root.Parent != 0 {
		out = append(out, *cause)
	}
	out = append(out, *root)
	var kids []Span
	for i := range spans {
		if spans[i].Parent == root.ID {
			kids = append(kids, spans[i])
		}
	}
	sort.Slice(kids, func(i, j int) bool {
		if kids[i].Start != kids[j].Start {
			return kids[i].Start < kids[j].Start
		}
		return kids[i].ID < kids[j].ID
	})
	return append(out, kids...)
}

// ExplainPodReady writes the answer to "why was this pod slow to become
// ready?": the pod's created→ready chain with its causal parent and the
// pending/startup breakdown, followed by any later lifecycle segments
// (evictions, re-binds, completion). Returns an error when the stream
// holds no lifecycle span for the pod.
func ExplainPodReady(w io.Writer, spans []Span, pod string) error {
	chain := PodChain(spans, pod)
	if chain == nil {
		return fmt.Errorf("obs: no lifecycle span for pod %q", pod)
	}
	var root *Span
	for i := range chain {
		if chain[i].Kind == SpanLifecycle {
			root = &chain[i]
			break
		}
	}
	ttr := root.Duration()
	fmt.Fprintf(w, "pod %s (app %s): created %s, ready %s — %s to ready",
		pod, root.App, fmtT(root.Start), fmtT(root.End), fmtD(ttr))
	if root.Node != "" {
		fmt.Fprintf(w, " on %s", root.Node)
	}
	fmt.Fprintln(w)
	if chain[0].ID == root.Parent && root.Parent != 0 {
		c := &chain[0]
		fmt.Fprintf(w, "  caused by %s %s at %s (span #%d)\n", c.Kind, c.Object, fmtT(c.Start), c.ID)
	} else if root.Parent != 0 {
		fmt.Fprintf(w, "  caused by span #%d (not in this stream)\n", root.Parent)
	}
	for i := range chain {
		sp := &chain[i]
		if sp.Kind != SpanPending && sp.Kind != SpanStartup || sp.Start > root.End {
			continue
		}
		share := ""
		if ttr > 0 {
			share = fmt.Sprintf("  (%2.0f%% of time-to-ready)", 100*float64(sp.Duration())/float64(ttr))
		}
		fmt.Fprintf(w, "  %s → %s  %8s  %-8s%s\n",
			fmtT(sp.Start), fmtT(sp.End), fmtD(sp.Duration()), sp.Kind, share)
	}
	later := false
	for i := range chain {
		sp := &chain[i]
		if sp.Kind == SpanSegment || (sp.Kind == SpanPending && sp.Start > root.End) {
			if !later {
				fmt.Fprintln(w, "after ready:")
				later = true
			}
			detail := sp.Detail
			if detail == "" {
				detail = sp.Kind.String()
			}
			fmt.Fprintf(w, "  %s → %s  %8s  %-8s %s", fmtT(sp.Start), fmtT(sp.End), fmtD(sp.Duration()), sp.Kind, detail)
			if sp.Node != "" {
				fmt.Fprintf(w, " @%s", sp.Node)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// WriteTimeline renders the spans overlapping [from, to] as an indented
// text timeline: roots (and orphans whose parents fall outside the
// stream) chronologically, children nested beneath their parents, each
// line carrying interval, kind, subject and a proportional bar across
// the window. to == 0 means no upper bound.
func WriteTimeline(w io.Writer, spans []Span, from, to time.Duration) error {
	var win []Span
	f := SpanFilter{From: from, To: to}
	for i := range spans {
		if f.Match(&spans[i]) {
			win = append(win, spans[i])
		}
	}
	if len(win) == 0 {
		_, err := fmt.Fprintln(w, "no spans in window")
		return err
	}
	lo, hi := win[0].Start, win[0].End
	present := make(map[uint64]bool, len(win))
	for i := range win {
		if win[i].Start < lo {
			lo = win[i].Start
		}
		if win[i].End > hi {
			hi = win[i].End
		}
		present[win[i].ID] = true
	}
	kids := make(map[uint64][]int, len(win))
	var roots []int
	for i := range win {
		if win[i].Parent != 0 && present[win[i].Parent] {
			kids[win[i].Parent] = append(kids[win[i].Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	order := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			if win[idx[a]].Start != win[idx[b]].Start {
				return win[idx[a]].Start < win[idx[b]].Start
			}
			return win[idx[a]].ID < win[idx[b]].ID
		})
	}
	order(roots)
	for _, c := range kids {
		order(c)
	}
	fmt.Fprintf(w, "timeline %s → %s (%d spans)\n", fmtT(lo), fmtT(hi), len(win))
	var render func(i, depth int) error
	render = func(i, depth int) error {
		sp := &win[i]
		subject := sp.Object
		if sp.App != "" && sp.App != sp.Object {
			subject = sp.App + "/" + sp.Object
		}
		extra := ""
		if sp.Node != "" {
			extra += " @" + sp.Node
		}
		if sp.Detail != "" {
			extra += " (" + sp.Detail + ")"
		}
		if sp.WallNs != 0 {
			extra += fmt.Sprintf(" wall=%s", time.Duration(sp.WallNs))
		}
		if _, err := fmt.Fprintf(w, "%9s %9s  %s  %*s%-9s %s%s\n",
			fmtT(sp.Start), fmtD(sp.Duration()), bar(sp, lo, hi),
			2*depth, "", sp.Kind, subject, extra); err != nil {
			return err
		}
		for _, c := range kids[sp.ID] {
			if err := render(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := render(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// barWidth is the proportional-bar gutter width in WriteTimeline.
const barWidth = 24

// bar renders the span's position inside [lo, hi] as a fixed-width
// ASCII gutter.
func bar(sp *Span, lo, hi time.Duration) string {
	b := make([]byte, barWidth+2)
	b[0], b[barWidth+1] = '[', ']'
	for i := 1; i <= barWidth; i++ {
		b[i] = ' '
	}
	span := float64(hi - lo)
	if span <= 0 {
		span = 1
	}
	s := int(float64(sp.Start-lo) / span * barWidth)
	e := int(float64(sp.End-lo) / span * barWidth)
	if s < 0 {
		s = 0
	}
	if e >= barWidth {
		e = barWidth - 1
	}
	if e < s {
		e = s
	}
	for i := s; i <= e; i++ {
		b[i+1] = '#'
	}
	return string(b)
}

// kindAgg is one row of the SummariseSpans aggregate.
type kindAgg struct {
	kind         SpanKind
	count        int
	total        time.Duration
	max          time.Duration
	maxID        uint64
	wall, maxNs  int64
	worstSubject string
}

// SummariseSpans writes a per-kind duration aggregate — the flamegraph
// view of a span stream: how many spans of each kind, where the virtual
// time (or, for phase spans, the wall time) went, and which span was
// worst.
func SummariseSpans(w io.Writer, spans []Span) {
	aggs := make([]kindAgg, numSpanKinds)
	for i := range spans {
		sp := &spans[i]
		a := &aggs[sp.Kind%numSpanKinds]
		a.kind = sp.Kind
		a.count++
		d := sp.Duration()
		a.total += d
		a.wall += sp.WallNs
		worse := d > a.max || (d == a.max && a.maxID == 0)
		if sp.Kind == SpanPhase {
			worse = sp.WallNs > a.maxNs
		}
		if worse {
			a.max, a.maxNs, a.maxID = d, sp.WallNs, sp.ID
			a.worstSubject = sp.Object
		}
	}
	fmt.Fprintf(w, "%-10s %8s %12s %12s %12s  %s\n", "kind", "count", "total", "mean", "worst", "worst span")
	for i := range aggs {
		a := &aggs[i]
		if a.count == 0 {
			continue
		}
		total, mean, worst := a.total, a.total/time.Duration(a.count), a.max
		if a.kind == SpanPhase {
			total = time.Duration(a.wall)
			mean = time.Duration(a.wall / int64(a.count))
			worst = time.Duration(a.maxNs)
		}
		fmt.Fprintf(w, "%-10s %8d %12s %12s %12s  #%d %s\n",
			a.kind, a.count, fmtD(total), fmtD(mean), fmtD(worst), a.maxID, a.worstSubject)
	}
}

// fmtT renders a virtual timestamp compactly.
func fmtT(t time.Duration) string {
	return t.Truncate(time.Millisecond).String()
}

// fmtD renders a duration compactly.
func fmtD(d time.Duration) string {
	return d.Truncate(time.Millisecond).String()
}
