package obs

import (
	"strings"
	"testing"
	"time"
)

func explainTrace() []Event {
	return []Event{
		{Seq: 1, At: 40 * time.Minute, Kind: KindGain, Verb: VerbAdapt, App: "web", HasCtrl: true, Ctrl: ControlTrace{Adaptations: 3}},
		{Seq: 2, At: 41 * time.Minute, Kind: KindControl, Verb: VerbDecide, App: "web", Replicas: 6, NewReplicas: 6},
		{Seq: 3, At: 42 * time.Minute, Kind: KindPLO, Verb: VerbOnset, App: "web", SLI: 0.2, Objective: 0.1},
		{
			Seq: 4, At: 43 * time.Minute, Kind: KindControl, Verb: VerbDecide, App: "web",
			Replicas: 6, NewReplicas: 7, SLI: 0.18, Objective: 0.1, PerfErr: 0.8,
			Detail: "scale out 6→7", HasCtrl: true,
			Ctrl: ControlTrace{Stage: "scale-out", UtilTarget: 0.7, Adaptations: 4},
		},
		{Seq: 5, At: 43*time.Minute + 5*time.Second, Kind: KindSched, Verb: VerbBind, App: "web", Object: "web-7", Node: "node-2"},
		{Seq: 6, At: 44 * time.Minute, Kind: KindPLO, Verb: VerbClear, App: "web", SLI: 0.05, Objective: 0.1},
		{Seq: 7, At: 43 * time.Minute, Kind: KindControl, Verb: VerbDecide, App: "db", Replicas: 2, NewReplicas: 2},
		{Seq: 8, At: 50 * time.Minute, Kind: KindControl, Verb: VerbDecide, App: "web", Replicas: 7, NewReplicas: 7},
	}
}

func TestExplainPicksDecisionInEffect(t *testing.T) {
	events := explainTrace()
	ch, err := Explain(events, "web", 45*time.Minute, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Decision.Seq != 4 {
		t.Fatalf("decision seq = %d, want 4 (latest at-or-before the query)", ch.Decision.Seq)
	}
	if len(ch.Gains) != 1 || ch.Gains[0].Seq != 1 {
		t.Fatalf("gains = %+v, want the seq-1 adaptation", ch.Gains)
	}
	if len(ch.Sched) != 1 || ch.Sched[0].Object != "web-7" {
		t.Fatalf("sched = %+v, want the web-7 bind", ch.Sched)
	}
	if len(ch.PLO) != 2 {
		t.Fatalf("plo = %+v, want onset+clear", ch.PLO)
	}
	for _, ev := range append(append([]Event{ch.Decision}, ch.Gains...), ch.Sched...) {
		if ev.App != "web" {
			t.Errorf("chain leaked event for app %q", ev.App)
		}
	}
}

func TestExplainFallsForwardWhenQueryPredatesTrace(t *testing.T) {
	ch, err := Explain(explainTrace(), "web", 0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Decision.Seq != 2 {
		t.Fatalf("decision seq = %d, want 2 (earliest control event)", ch.Decision.Seq)
	}
}

func TestExplainUnknownApp(t *testing.T) {
	if _, err := Explain(explainTrace(), "nope", time.Hour, time.Minute); err == nil {
		t.Fatal("Explain succeeded for an app absent from the trace")
	}
}

func TestChainFormat(t *testing.T) {
	ch, err := Explain(explainTrace(), "web", 43*time.Minute, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	ch.Format(&sb)
	out := sb.String()
	for _, want := range []string{
		"decision for web at 43m0s",
		"stage: scale-out",
		"replicas 6→7",
		"scale out 6→7",
		"web-7",
		"onset",
		"clear",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted chain missing %q\n---\n%s", want, out)
		}
	}
}

func TestSummarise(t *testing.T) {
	sums := Summarise(explainTrace())
	// Replica change at 43m plus the PLO onset at 42m; steady decisions
	// and other apps' no-ops are excluded.
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2: %+v", len(sums), sums)
	}
	if sums[0].Event.Seq != 3 || sums[1].Event.Seq != 4 {
		t.Fatalf("summaries out of order or wrong: %+v", sums)
	}
}
