package obs

import (
	"math/rand"
	"testing"
)

func TestLatencyHistogramObserve(t *testing.T) {
	h := NewLatencyHistogram("schedule", DefaultLatencyBuckets)
	h.Observe(0.3, 7)  // bucket 0 (≤0.5)
	h.Observe(42, 9)   // bucket 7 (≤45)
	h.Observe(1e6, 11) // overflow bucket
	if h.Count != 3 {
		t.Fatalf("Count = %d, want 3", h.Count)
	}
	if h.Counts[0] != 1 || h.Counts[7] != 1 || h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("bucket placement wrong: %v", h.Counts)
	}
	if h.Max != 1e6 || h.Exemplar != 11 {
		t.Fatalf("Max/Exemplar = %v/%d, want 1e6/11", h.Max, h.Exemplar)
	}
	if got := h.Mean(); got < 3e5 || got > 4e5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestLatencyHistogramExemplarTies(t *testing.T) {
	h := NewLatencyHistogram("x", DefaultLatencyBuckets)
	h.Observe(5, 30)
	h.Observe(5, 10) // same value, smaller span ID wins the tie
	if h.Exemplar != 10 {
		t.Fatalf("Exemplar = %d, want 10", h.Exemplar)
	}
	h.Observe(5, 40) // larger ID does not displace
	if h.Exemplar != 10 {
		t.Fatalf("Exemplar = %d after larger-ID tie, want 10", h.Exemplar)
	}
	h.Observe(6, 0) // larger value wins even without a span
	if h.Max != 6 || h.Exemplar != 0 {
		t.Fatalf("Max/Exemplar = %v/%d, want 6/0", h.Max, h.Exemplar)
	}
	h.Observe(6, 99) // a tie with a span beats the empty exemplar
	if h.Exemplar != 99 {
		t.Fatalf("Exemplar = %d, want 99", h.Exemplar)
	}
}

func TestLatencyHistogramQuantile(t *testing.T) {
	h := NewLatencyHistogram("x", DefaultLatencyBuckets)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.4, 0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50, 0)
	}
	if got := h.Quantile(0.5); got != 0.5 {
		t.Fatalf("p50 = %v, want bucket bound 0.5", got)
	}
	if got := h.Quantile(0.95); got != 50 {
		t.Fatalf("p95 = %v, want 50 (bucket bound 60 clamped to max)", got)
	}
	if got := h.Quantile(1); got != 50 {
		t.Fatalf("p100 = %v, want 50", got)
	}
}

// TestLatencyHistogramMergeOrderIndependent is the property test behind
// the sharded exemplar guarantee: folding the same observations through
// any partition, in any merge order, yields identical Counts, Count,
// Max and Exemplar (Sum is excluded — float addition order). With
// span-ID ties broken toward the smaller ID, exemplar selection is a
// deterministic function of the observation multiset.
func TestLatencyHistogramMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	type obs struct {
		v    float64
		span uint64
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		all := make([]obs, n)
		for i := range all {
			// Coarse values force Max ties; span 0 sometimes, duplicate
			// span IDs sometimes.
			all[i] = obs{v: float64(rng.Intn(8)) * 7.5, span: uint64(rng.Intn(6))}
		}

		// Reference: observe everything sequentially.
		ref := NewLatencyHistogram("x", DefaultLatencyBuckets)
		for _, o := range all {
			ref.Observe(o.v, o.span)
		}

		for perm := 0; perm < 8; perm++ {
			// Random partition into up to 5 shards, random observation
			// order within each, random merge order across them.
			parts := make([]LatencyHistogram, 1+rng.Intn(5))
			for i := range parts {
				parts[i] = NewLatencyHistogram("x", DefaultLatencyBuckets)
			}
			for _, i := range rng.Perm(n) {
				o := all[i]
				parts[rng.Intn(len(parts))].Observe(o.v, o.span)
			}
			got := NewLatencyHistogram("x", DefaultLatencyBuckets)
			for _, i := range rng.Perm(len(parts)) {
				got.Merge(&parts[i])
			}

			if got.Count != ref.Count {
				t.Fatalf("trial %d perm %d: Count %d, want %d", trial, perm, got.Count, ref.Count)
			}
			for b := range ref.Counts {
				if got.Counts[b] != ref.Counts[b] {
					t.Fatalf("trial %d perm %d: bucket %d = %d, want %d",
						trial, perm, b, got.Counts[b], ref.Counts[b])
				}
			}
			if got.Max != ref.Max {
				t.Fatalf("trial %d perm %d: Max %v, want %v", trial, perm, got.Max, ref.Max)
			}
			if got.Exemplar != ref.Exemplar {
				t.Fatalf("trial %d perm %d: Exemplar %d, want %d (Max %v)",
					trial, perm, got.Exemplar, ref.Exemplar, ref.Max)
			}
		}
	}
}

func TestTracerLatencySnapshot(t *testing.T) {
	tr := New(8)
	tr.ObserveLatency(LatencySchedule, 3, 5)
	tr.ObserveLatency(LatencySchedule, 9, 6)
	tr.ObservePhaseLatency(2, "flush_apps", 0.002, 0)
	snap := tr.LatencySnapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d histograms, want 2 (empty kinds skipped)", len(snap))
	}
	if snap[0].Name != "schedule" || snap[0].Count != 2 || snap[0].Exemplar != 6 {
		t.Fatalf("schedule histogram wrong: %+v", snap[0])
	}
	if snap[1].Name != "phase_flush_apps" || snap[1].Count != 1 {
		t.Fatalf("phase histogram wrong: %+v", snap[1])
	}
	// Snapshots are deep copies: mutating one must not leak back.
	snap[0].Counts[0] = 999
	if tr.LatencySnapshot()[0].Counts[0] == 999 {
		t.Fatal("LatencySnapshot shares Counts with the tracer")
	}
	// Out-of-range kinds are dropped, not panics.
	tr.ObserveLatency(NumLatencyKinds, 1, 0)
	tr.ObservePhaseLatency(-1, "x", 1, 0)
}

func BenchmarkObserveLatency(b *testing.B) {
	tr := New(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ObserveLatency(LatencySchedule, float64(i%60), uint64(i))
	}
}
