package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"evolve/internal/ckpt"
	"evolve/internal/metrics"
)

// flakyWriter succeeds for the first ok writes, then fails every call.
type flakyWriter struct {
	ok   int
	n    int
	fail int
	buf  bytes.Buffer
}

var errDiskFull = errors.New("disk full")

func (f *flakyWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > f.ok {
		f.fail++
		return 0, errDiskFull
	}
	return f.buf.Write(p)
}

// TestSinkFailureMidRun: a sink that dies mid-run keeps the lines it
// already accepted, latches the first error, and is never written again
// — while the ring keeps recording unaffected.
func TestSinkFailureMidRun(t *testing.T) {
	tr := New(64)
	fw := &flakyWriter{ok: 3}
	tr.SetSink(fw)
	for i := 0; i < 8; i++ {
		tr.Record(Event{At: time.Duration(i) * time.Second, Kind: KindSched, Verb: VerbBind, App: "web"})
	}
	if got := tr.SinkErr(); !errors.Is(got, errDiskFull) {
		t.Fatalf("SinkErr = %v, want %v", got, errDiskFull)
	}
	if fw.fail != 1 {
		t.Fatalf("sink failed %d times, want 1 (latched after first)", fw.fail)
	}
	evs, err := ReadTrace(bytes.NewReader(fw.buf.Bytes()))
	if err != nil || len(evs) != 3 {
		t.Fatalf("sink kept %d parseable events (err %v), want the 3 pre-failure lines", len(evs), err)
	}
	if tr.Len() != 8 || tr.Events() != 8 {
		t.Fatalf("ring Len/Events = %d/%d after sink death, want 8/8", tr.Len(), tr.Events())
	}
}

// TestSpanSinkFailureMidRun: the span tee latches independently of the
// event tee; a dead span sink does not stop event sink writes.
func TestSpanSinkFailureMidRun(t *testing.T) {
	tr := New(64)
	var events bytes.Buffer
	fw := &flakyWriter{ok: 2}
	tr.SetSink(&events)
	tr.SetSpanSink(fw)
	for i := 0; i < 6; i++ {
		d := time.Duration(i) * time.Second
		tr.RecordSpan(Span{Kind: SpanPending, App: "web", Object: "web-1", Shard: -1, Start: d, End: d + time.Second})
		tr.Record(Event{At: d, Kind: KindSched, Verb: VerbBind, App: "web"})
	}
	if got := tr.SpanSinkErr(); !errors.Is(got, errDiskFull) {
		t.Fatalf("SpanSinkErr = %v, want %v", got, errDiskFull)
	}
	if tr.SinkErr() != nil {
		t.Fatalf("event SinkErr = %v, want nil (independent tees)", tr.SinkErr())
	}
	sps, err := ReadSpans(bytes.NewReader(fw.buf.Bytes()))
	if err != nil || len(sps) != 2 {
		t.Fatalf("span sink kept %d spans (err %v), want 2", len(sps), err)
	}
	if evs, err := ReadTrace(bytes.NewReader(events.Bytes())); err != nil || len(evs) != 6 {
		t.Fatalf("event sink kept %d events (err %v), want all 6", len(evs), err)
	}
}

// TestMetricsSurfaceSinkHealth: /metrics exposes latched sink errors and
// ring drop counters, so silent trace loss is scrapeable.
func TestMetricsSurfaceSinkHealth(t *testing.T) {
	tr := New(4) // tiny rings: force drops
	tr.SetSink(&flakyWriter{ok: 0})
	tr.SetSpanSink(&flakyWriter{ok: 1})
	for i := 0; i < 10; i++ {
		d := time.Duration(i) * time.Second
		tr.Record(Event{At: d, Kind: KindSched, Verb: VerbBind, App: "web"})
		tr.RecordSpan(Span{Kind: SpanPending, App: "web", Shard: -1, Start: d, End: d})
	}
	if tr.Dropped() != 6 || tr.SpansDropped() != 6 {
		t.Fatalf("Dropped/SpansDropped = %d/%d, want 6/6", tr.Dropped(), tr.SpansDropped())
	}
	var out bytes.Buffer
	if err := WriteMetrics(&out, metrics.NewRegistry(), tr); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	for _, want := range []string{
		"evolve_trace_dropped_total 6",
		"evolve_trace_span_dropped_total 6",
		"evolve_trace_sink_error 1",
		"evolve_trace_span_sink_error 1",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestTracerCkptRoundTrip: a tracer's rings, counters and histograms
// survive CkptSave/CkptLoad into a same-capacity tracer — including a
// wrapped ring, whose snapshot order and drop accounting must be
// preserved bit-for-bit.
func TestTracerCkptRoundTrip(t *testing.T) {
	tr := New(8)
	for i := 0; i < 13; i++ { // wraps the 8-slot rings
		d := time.Duration(i) * time.Second
		tr.Record(Event{At: d, Kind: KindSched, Verb: VerbBind, App: "web", Object: "web-1", Replicas: i})
		tr.RecordSpan(Span{Kind: SpanPending, App: "web", Object: "web-1", Shard: -1, Start: d, End: d + time.Second})
		tr.ObserveLatency(LatencyTimeToReady, float64(i), uint64(i+1))
		tr.ObservePhaseLatency(0, "p1", float64(i)*1e-4, 0)
	}

	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	tr.CkptSave(w)
	if err := w.Close(); err != nil {
		t.Fatalf("save: %v", err)
	}

	tr2 := New(8)
	r, err := ckpt.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if err := tr2.CkptLoad(r); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	if tr2.Events() != tr.Events() || tr2.Dropped() != tr.Dropped() {
		t.Errorf("Events/Dropped = %d/%d, want %d/%d", tr2.Events(), tr2.Dropped(), tr.Events(), tr.Dropped())
	}
	if tr2.Spans() != tr.Spans() || tr2.SpansDropped() != tr.SpansDropped() {
		t.Errorf("Spans/SpansDropped = %d/%d, want %d/%d", tr2.Spans(), tr2.SpansDropped(), tr.Spans(), tr.SpansDropped())
	}
	a, b := tr.Snapshot(Filter{}), tr2.Snapshot(Filter{})
	if len(a) != len(b) {
		t.Fatalf("snapshot lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	sa, sb := tr.SpanSnapshot(SpanFilter{}), tr2.SpanSnapshot(SpanFilter{})
	if len(sa) != len(sb) {
		t.Fatalf("span snapshot lengths %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Errorf("span %d: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	ha, hb := tr.LatencySnapshot(), tr2.LatencySnapshot()
	if len(ha) != len(hb) {
		t.Fatalf("histogram counts %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i].Name != hb[i].Name || ha[i].Count != hb[i].Count || ha[i].Sum != hb[i].Sum ||
			ha[i].Max != hb[i].Max || ha[i].Exemplar != hb[i].Exemplar {
			t.Errorf("histogram %s diverged: %+v vs %+v", ha[i].Name, ha[i], hb[i])
		}
	}

	// Continued recording behaves identically: same seqs, same evictions.
	next := Event{At: 99 * time.Second, Kind: KindSched, Verb: VerbBind, App: "web"}
	tr.Record(next)
	tr2.Record(next)
	a, b = tr.Snapshot(Filter{}), tr2.Snapshot(Filter{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post-restore event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}
