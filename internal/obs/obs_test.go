package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"evolve/internal/resource"
)

func mkEvent(seqHint int, kind Kind, verb, app string) Event {
	return Event{
		At:   time.Duration(seqHint) * time.Second,
		Kind: kind,
		Verb: verb,
		App:  app,
	}
}

func TestNopTracer(t *testing.T) {
	tr := Nop()
	if tr.Enabled() {
		t.Fatal("Nop tracer reports enabled")
	}
	tr.Record(mkEvent(1, KindControl, VerbDecide, "web")) // must not panic
	if got := tr.Snapshot(Filter{}); got != nil {
		t.Fatalf("Nop snapshot = %v, want nil", got)
	}
	if tr.Len() != 0 || tr.Events() != 0 || tr.Dropped() != 0 {
		t.Fatal("Nop tracer has state")
	}
	var nilTr *Tracer
	if nilTr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	nilTr.Record(Event{}) // must not panic
}

func TestTracerRecordAndSeq(t *testing.T) {
	tr := New(8)
	for i := 0; i < 5; i++ {
		tr.Record(mkEvent(i, KindSched, VerbBind, "web"))
	}
	evs := tr.Snapshot(Filter{})
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if tr.Len() != 5 || tr.Events() != 5 || tr.Dropped() != 0 {
		t.Fatalf("Len/Events/Dropped = %d/%d/%d, want 5/5/0", tr.Len(), tr.Events(), tr.Dropped())
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Record(mkEvent(i, KindSched, VerbBind, "web"))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Snapshot(Filter{})
	if len(evs) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(evs))
	}
	// Oldest-first: the survivors are seq 7..10.
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestSnapshotFilter(t *testing.T) {
	tr := New(64)
	tr.Record(Event{At: 10 * time.Second, Kind: KindControl, Verb: VerbDecide, App: "web"})
	tr.Record(Event{At: 20 * time.Second, Kind: KindSched, Verb: VerbBind, App: "web"})
	tr.Record(Event{At: 30 * time.Second, Kind: KindSched, Verb: VerbBind, App: "db"})
	tr.Record(Event{At: 40 * time.Second, Kind: KindPLO, Verb: VerbOnset, App: "web"})
	tr.Record(Event{At: 50 * time.Second, Kind: KindPLO, Verb: VerbClear, App: "web"})

	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", Filter{}, 5},
		{"app", Filter{App: "web"}, 4},
		{"kind", Filter{Kind: "sched"}, 2},
		{"verb", Filter{Verb: VerbOnset}, 1},
		{"from", Filter{From: 30 * time.Second}, 3},
		{"to", Filter{To: 20 * time.Second}, 2},
		{"range", Filter{From: 20 * time.Second, To: 40 * time.Second}, 3},
		{"limit", Filter{Lim: 2}, 2},
		{"app+kind", Filter{App: "web", Kind: "plo"}, 2},
		{"nothing", Filter{App: "absent"}, 0},
	}
	for _, c := range cases {
		if got := len(tr.Snapshot(c.f)); got != c.want {
			t.Errorf("%s: got %d events, want %d", c.name, got, c.want)
		}
	}
	// Lim keeps the most recent matches.
	lim := tr.Snapshot(Filter{App: "web", Lim: 2})
	if len(lim) != 2 || lim[0].Verb != VerbOnset || lim[1].Verb != VerbClear {
		t.Fatalf("limited snapshot = %+v, want the two most recent web events", lim)
	}
}

func TestTracerSink(t *testing.T) {
	tr := New(16)
	var buf bytes.Buffer
	tr.SetSink(&buf)
	tr.Record(Event{At: time.Second, Kind: KindSched, Verb: VerbBind, App: "web", Object: "web-1", Node: "node-0"})
	tr.Record(Event{At: 2 * time.Second, Kind: KindPLO, Verb: VerbOnset, App: "web", SLI: 0.42})
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink holds %d lines, want 2", len(lines))
	}
	evs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadTrace over sink output: %v", err)
	}
	if len(evs) != 2 || evs[0].Object != "web-1" || evs[1].SLI != 0.42 {
		t.Fatalf("decoded sink events %+v do not match recorded", evs)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errWriteFailed
}

var errWriteFailed = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "write failed" }

func TestTracerSinkErrorLatches(t *testing.T) {
	tr := New(16)
	fw := &failWriter{}
	tr.SetSink(fw)
	tr.Record(mkEvent(1, KindSched, VerbBind, "web"))
	tr.Record(mkEvent(2, KindSched, VerbBind, "web"))
	if tr.SinkErr() == nil {
		t.Fatal("sink error did not latch")
	}
	if fw.n != 1 {
		t.Fatalf("sink written %d times after error, want 1", fw.n)
	}
	// Ring recording continues regardless.
	if tr.Len() != 2 {
		t.Fatalf("ring holds %d events, want 2", tr.Len())
	}
}

// TestTracerConcurrency drives Record and Snapshot from separate
// goroutines; run with -race this verifies the lock discipline the HTTP
// debug endpoints rely on.
func TestTracerConcurrency(t *testing.T) {
	tr := New(128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				tr.Record(mkEvent(i, KindSched, VerbBind, "web"))
			}
		}
	}()
	for i := 0; i < 50; i++ {
		evs := tr.Snapshot(Filter{App: "web"})
		for j := 1; j < len(evs); j++ {
			if evs[j].Seq != evs[j-1].Seq+1 {
				t.Errorf("snapshot not contiguous: seq %d follows %d", evs[j].Seq, evs[j-1].Seq)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestRecordDoesNotAllocate is the package-level half of the traced
// steady-state guarantee: recording a fully populated event into the
// ring (no sink) must not touch the heap.
func TestRecordDoesNotAllocate(t *testing.T) {
	tr := New(1024)
	ev := Event{
		At: time.Minute, Kind: KindControl, Verb: VerbDecide, App: "web",
		PerfErr: 0.5, SLI: 0.1, Objective: 0.1, Offered: 300,
		Replicas: 3, Ready: 3, NewReplicas: 4,
		Alloc:   resource.Vector{1, 2, 3, 4},
		Util:    resource.Vector{0.5, 0.5, 0.5, 0.5},
		HasCtrl: true,
		Ctrl:    ControlTrace{Stage: "grow", UtilTarget: 0.7},
	}
	allocs := testing.AllocsPerRun(200, func() { tr.Record(ev) })
	if allocs > 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

func BenchmarkRecord(b *testing.B) {
	tr := New(DefaultCapacity)
	ev := Event{
		At: time.Minute, Kind: KindControl, Verb: VerbDecide, App: "web",
		PerfErr: 0.5, SLI: 0.1, Objective: 0.1, Offered: 300,
		Replicas: 3, Ready: 3, NewReplicas: 4, HasCtrl: true,
		Ctrl: ControlTrace{Stage: "grow", UtilTarget: 0.7},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(ev)
	}
}

func BenchmarkRecordWithSink(b *testing.B) {
	tr := New(DefaultCapacity)
	var sink bytes.Buffer
	sink.Grow(64 << 20)
	tr.SetSink(&sink)
	ev := Event{
		At: time.Minute, Kind: KindControl, Verb: VerbDecide, App: "web",
		PerfErr: 0.5, SLI: 0.1, Objective: 0.1, Offered: 300,
		Replicas: 3, Ready: 3, NewReplicas: 4, HasCtrl: true,
		Ctrl: ControlTrace{Stage: "grow", UtilTarget: 0.7},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			sink.Reset()
		}
		tr.Record(ev)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := ParseEventKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseEventKind(%q) = %v,%v, want %v,true", k.String(), got, ok, k)
		}
	}
	if _, ok := ParseEventKind("bogus"); ok {
		t.Error("ParseEventKind accepted bogus kind")
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind did not stringify as unknown")
	}
}

// RecordBatch must be byte-equivalent to per-event Record calls: same
// sequence numbers, same ring content, same sink stream.
func TestRecordBatchMatchesRecord(t *testing.T) {
	one, bat := New(8), New(8)
	var oneSink, batSink bytes.Buffer
	one.SetSink(&oneSink)
	bat.SetSink(&batSink)

	evs := make([]Event, 5)
	for i := range evs {
		evs[i] = mkEvent(i, KindPLO, VerbOnset, "web")
	}
	for _, ev := range evs {
		one.Record(ev)
	}
	bat.RecordBatch(evs)

	if oneSink.String() != batSink.String() {
		t.Errorf("sink streams diverged:\n one: %q\n bat: %q", oneSink.String(), batSink.String())
	}
	a, b := one.Snapshot(Filter{}), bat.Snapshot(Filter{})
	if len(a) != len(b) {
		t.Fatalf("snapshot lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Batch must not have mutated the caller's slice (Seq is stamped on
	// the copy).
	for i, ev := range evs {
		if ev.Seq != 0 {
			t.Errorf("RecordBatch stamped Seq=%d into caller's event %d", ev.Seq, i)
		}
	}
	// Empty and nop cases are no-ops.
	bat.RecordBatch(nil)
	if bat.Events() != 5 {
		t.Errorf("empty batch changed Events to %d", bat.Events())
	}
	Nop().RecordBatch(evs)
}
