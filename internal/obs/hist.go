package obs

// Fixed-bucket latency histograms with span exemplars. The metrics
// registry's log-bucketed Histogram serves the always-on surfaces; this
// type exists for the tracer: every observation names the span that
// produced it, and the histogram keeps a link to the worst one — so
// "p99 time-to-ready regressed" leads directly to the pod whose span
// chain explains it.
//
// Merge is commutative and associative on everything except the
// floating-point Sum (addition order): bucket counts and the exemplar
// rule (larger value wins; on an exact tie the smaller span ID) are
// order-independent, which the property test in hist_test.go pins.

// LatencyKind indexes the tracer's built-in latency histograms.
type LatencyKind uint8

const (
	// LatencyTimeToReady is pod created → ready (first bind only).
	LatencyTimeToReady LatencyKind = iota
	// LatencySchedule is one pending segment: pending → bound.
	LatencySchedule
	// LatencyDecisionEffect is control decision → first bind it caused.
	LatencyDecisionEffect
	NumLatencyKinds
)

var latencyKindNames = [NumLatencyKinds]string{
	"time_to_ready", "schedule", "decision_to_effect",
}

// String returns the canonical histogram name.
func (k LatencyKind) String() string {
	if k >= NumLatencyKinds {
		return "unknown"
	}
	return latencyKindNames[k]
}

// DefaultLatencyBuckets bound virtual-time latencies in seconds: from
// sub-tick binds to the half-hour tail of a starved queue.
var DefaultLatencyBuckets = []float64{
	0.5, 1, 2.5, 5, 10, 15, 30, 45, 60, 120, 300, 600, 1800,
}

// DefaultWallBuckets bound per-phase wall time in seconds: from a
// microsecond flush to a one-second stalled barrier.
var DefaultWallBuckets = []float64{
	1e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1,
}

// LatencyHistogram is a fixed-bucket histogram whose worst observation
// keeps an exemplar link to the span that produced it.
type LatencyHistogram struct {
	Name string
	// Bounds are inclusive upper bucket bounds, ascending; an implicit
	// +Inf bucket follows. Counts has len(Bounds)+1 entries.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
	// Max is the worst observed value; Exemplar the ID of the span that
	// produced it (0 when the observation had no span).
	Max      float64
	Exemplar uint64
}

// NewLatencyHistogram returns an empty histogram over the bounds. The
// bounds slice is referenced, not copied; callers share the package
// defaults.
func NewLatencyHistogram(name string, bounds []float64) LatencyHistogram {
	return LatencyHistogram{Name: name, Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value with its producing span (0 for none).
func (h *LatencyHistogram) Observe(v float64, span uint64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Count++
	h.Sum += v
	if h.Count == 1 || v > h.Max || (v == h.Max && (h.Exemplar == 0 || (span != 0 && span < h.Exemplar))) {
		h.Max = v
		h.Exemplar = span
	}
}

// Merge folds o into h. Both must share the same bounds. Counts and the
// exemplar are order-independent under any merge tree; Sum is exact up
// to float addition order.
func (h *LatencyHistogram) Merge(o *LatencyHistogram) {
	if o.Count == 0 {
		return
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	wasEmpty := h.Count == 0
	h.Count += o.Count
	h.Sum += o.Sum
	if wasEmpty || o.Max > h.Max ||
		(o.Max == h.Max && (h.Exemplar == 0 || (o.Exemplar != 0 && o.Exemplar < h.Exemplar))) {
		h.Max = o.Max
		h.Exemplar = o.Exemplar
	}
}

// Clone returns a deep copy (Counts is the only mutable reference;
// Bounds is shared by construction).
func (h *LatencyHistogram) Clone() LatencyHistogram {
	c := *h
	c.Counts = append([]uint64(nil), h.Counts...)
	return c
}

// Mean returns the mean observed value.
func (h *LatencyHistogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// bound of the bucket holding that rank, clamped to the observed Max.
func (h *LatencyHistogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i == len(h.Bounds) {
				return h.Max
			}
			if h.Bounds[i] > h.Max {
				return h.Max
			}
			return h.Bounds[i]
		}
	}
	return h.Max
}

// ObserveLatency records one observation (seconds) into the tracer's
// built-in histogram k, with the producing span (0 for none). No-op
// when the tracer is disabled; never allocates.
func (t *Tracer) ObserveLatency(k LatencyKind, seconds float64, span uint64) {
	if !t.Enabled() || k >= NumLatencyKinds {
		return
	}
	t.mu.Lock()
	t.lat[k].Observe(seconds, span)
	t.mu.Unlock()
}

// ObservePhaseLatency records one kernel-phase wall-time observation
// (seconds) into the phase histogram at idx, growing the phase set on
// first use (emitters pass a stable idx/name mapping — the cluster uses
// perf.PhaseNames — so growth happens once, not per tick).
func (t *Tracer) ObservePhaseLatency(idx int, name string, seconds float64, span uint64) {
	if !t.Enabled() || idx < 0 {
		return
	}
	t.mu.Lock()
	for len(t.phase) <= idx {
		t.phase = append(t.phase, LatencyHistogram{})
	}
	if t.phase[idx].Counts == nil {
		t.phase[idx] = NewLatencyHistogram("phase_"+name, DefaultWallBuckets)
	}
	t.phase[idx].Observe(seconds, span)
	t.mu.Unlock()
}

// LatencySnapshot returns deep copies of every non-empty latency
// histogram: the built-in kinds in kind order, then the phase
// histograms in phase order.
func (t *Tracer) LatencySnapshot() []LatencyHistogram {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]LatencyHistogram, 0, int(NumLatencyKinds)+len(t.phase))
	for k := range t.lat {
		if t.lat[k].Count > 0 {
			out = append(out, t.lat[k].Clone())
		}
	}
	for i := range t.phase {
		if t.phase[i].Count > 0 {
			out = append(out, t.phase[i].Clone())
		}
	}
	return out
}
