package obs

import (
	"strings"
	"testing"
	"time"

	"evolve/internal/metrics"
)

func TestWriteMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Series("app/web/latency-mean").Add(time.Second, 0.02)
	reg.Series("app/web/latency-mean").Add(2*time.Second, 0.05)
	reg.Series("app/web/alloc/cpu").Add(time.Second, 4000)
	reg.Series("cluster/usage/memory").Add(time.Second, 0.42)
	reg.Counter("sched/binds").Inc()
	reg.Counter("sched/binds").Inc()
	reg.Counter("plo/web/violations").Inc()
	reg.Counter("evictions/preempted").Inc()
	h := reg.Histogram("app/web/sli-hist", 1e-4, 1e3, 10)
	h.Observe(0.01)
	h.Observe(0.02)
	h.Observe(0.5)

	tr := New(8)
	tr.Record(Event{Kind: KindSched, Verb: VerbBind})

	var sb strings.Builder
	if err := WriteMetrics(&sb, reg, tr); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE evolve_app_latency_mean gauge",
		`evolve_app_latency_mean{app="web"} 0.05`, // latest sample, not the first
		`evolve_app_alloc{app="web",resource="cpu"} 4000`,
		`evolve_cluster_usage{resource="memory"} 0.42`,
		"# TYPE evolve_sched_binds_total counter",
		"evolve_sched_binds_total 2",
		`evolve_plo_violations_total{app="web"} 1`,
		`evolve_evictions_total{reason="preempted"} 1`,
		"# TYPE evolve_app_sli_hist histogram",
		`le="+Inf"} 3`,
		`evolve_app_sli_hist_count{app="web"} 3`,
		`evolve_app_sli_hist_sum{app="web"} 0.53`,
		"evolve_trace_events_total 1",
		"evolve_trace_dropped_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Structural checks: every non-comment line is "name[{labels}] value",
	// every family has exactly one TYPE line, output is deterministic.
	types := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			types[parts[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
	for fam, n := range types {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines", fam, n)
		}
	}
	var sb2 strings.Builder
	if err := WriteMetrics(&sb2, reg, tr); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("exposition is not deterministic across calls")
	}
}

func TestWriteMetricsDisabledTracer(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Series("cluster/pods").Add(time.Second, 3)
	var sb strings.Builder
	if err := WriteMetrics(&sb, reg, Nop()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "evolve_trace_") {
		t.Error("disabled tracer leaked trace meters into the exposition")
	}
	if !strings.Contains(sb.String(), "evolve_cluster_pods 3") {
		t.Errorf("missing series gauge:\n%s", sb.String())
	}
}

func TestPromName(t *testing.T) {
	cases := []struct {
		in, fam, labels string
	}{
		{"app/web/latency-mean", "evolve_app_latency_mean", `{app="web"}`},
		{"app/web/alloc/cpu", "evolve_app_alloc", `{app="web",resource="cpu"}`},
		{"cluster/usage/memory", "evolve_cluster_usage", `{resource="memory"}`},
		{"plo/web/violations", "evolve_plo_violations", `{app="web"}`},
		{"evictions/preempted", "evolve_evictions", `{reason="preempted"}`},
		{"sched/binds", "evolve_sched_binds", ""},
		{"cluster/pods", "evolve_cluster_pods", ""},
		{"batch/makespan", "evolve_batch_makespan", ""},
	}
	for _, c := range cases {
		fam, labels := promName(c.in)
		if fam != c.fam || labels != c.labels {
			t.Errorf("promName(%q) = %q,%q; want %q,%q", c.in, fam, labels, c.fam, c.labels)
		}
	}
}
