package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"evolve/internal/resource"
)

// fullCtrl returns a ControlTrace with every field set to a value that
// survives the non-zero-iff-present encoding rule.
func fullCtrl() ControlTrace {
	ct := ControlTrace{Stage: "scale-out", UtilTarget: 0.65, Adaptations: 7, FlooredKinds: 2}
	for k := 0; k < int(resource.NumKinds); k++ {
		ct.Terms[k] = PIDTerm{Err: 0.5 + float64(k), P: 0.1, I: 0.2, D: 0.05, Out: 0.35, Clamped: k%2 == 0}
		ct.Gains[k] = GainSet{Kp: 0.5, Ki: 0.1, Kd: 0.05}
	}
	return ct
}

// TestEventJSONRoundTrip keeps the hand-rolled encoder and the mirror
// decoder honest: one representative event per kind must survive
// encode→decode byte-exactly (reflect.DeepEqual on the struct).
func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		{
			Seq: 1, At: 43*time.Minute + 1500*time.Millisecond, Kind: KindControl, Verb: VerbDecide,
			App: "web", Detail: `scale out 6→7: PLO err +0.42 with "ceiling" saturated`,
			PerfErr: 0.42, SLI: 0.131, Objective: 0.1, Offered: 812.5,
			Replicas: 6, Ready: 6, NewReplicas: 7,
			Alloc:    resource.Vector{4000, 2 << 30, 5e6, 1.4e7},
			NewAlloc: resource.Vector{4400, 2.2 * (1 << 30), 5.5e6, 1.5e7},
			Util:     resource.Vector{0.91, 0.55, 0.3, 0.3},
			HasCtrl:  true, Ctrl: fullCtrl(),
		},
		{Seq: 2, At: 44 * time.Minute, Kind: KindGain, Verb: VerbAdapt, App: "web", HasCtrl: true, Ctrl: fullCtrl()},
		{
			Seq: 3, At: 44*time.Minute + 5*time.Second, Kind: KindSched, Verb: VerbBind,
			App: "web", Object: "web-42", Node: "node-3",
			Alloc: resource.Vector{4400, 2.2 * (1 << 30), 5.5e6, 1.5e7},
		},
		{
			Seq: 4, At: 45 * time.Minute, Kind: KindSched, Verb: VerbReject,
			App: "web", Object: "web-43", Detail: "no node fits cpu request\nwith newline\tand tab",
		},
		{Seq: 5, At: 46 * time.Minute, Kind: KindRegistry, Verb: VerbAdded, Object: "pod/web-44"},
		{
			Seq: 6, At: 47 * time.Minute, Kind: KindPLO, Verb: VerbOnset,
			App: "web", SLI: 0.25, Objective: 0.1, PerfErr: 1.5,
		},
		{
			Seq: 7, At: 48 * time.Minute, Kind: KindFault, Verb: VerbDegraded,
			App: "web", Detail: "blind for 5 periods: holding last safe allocation",
			Replicas: 6, Ready: 4,
		},
		// Minimal event: nothing but the header survives.
		{Seq: 8, At: 0, Kind: KindSched, Verb: VerbEvict},
	}
	for i, ev := range events {
		line := AppendJSON(nil, &ev)
		got, err := ParseEvent(line)
		if err != nil {
			t.Fatalf("event %d (%s/%s): decode: %v\nline: %s", i, ev.Kind, ev.Verb, err, line)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Errorf("event %d (%s/%s) did not round-trip:\n got %+v\nwant %+v\nline %s",
				i, ev.Kind, ev.Verb, got, ev, line)
		}
	}
}

// TestAppendJSONIsValidJSON runs the hand-rolled output through the
// standard decoder: every line must parse and escape correctly.
func TestAppendJSONIsValidJSON(t *testing.T) {
	ev := Event{
		Seq: 9, At: time.Second, Kind: KindSched, Verb: VerbReject,
		App: "we\"b", Detail: "quote \" backslash \\ newline \n tab \t bell \x07 done",
	}
	line := AppendJSON(nil, &ev)
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, line)
	}
	if m["detail"] != ev.Detail {
		t.Fatalf("detail mangled: %q", m["detail"])
	}
	if m["app"] != ev.App {
		t.Fatalf("app mangled: %q", m["app"])
	}
}

// TestControlTraceMarshalSymmetry: encoding/json on a ControlTrace (the
// /debug/controllers path) must produce exactly the canonical bytes the
// tracer's sink writes, and decode back to the same struct.
func TestControlTraceMarshalSymmetry(t *testing.T) {
	ct := fullCtrl()
	viaStd, err := json.Marshal(ct)
	if err != nil {
		t.Fatal(err)
	}
	direct := appendCtrl(nil, &ct)
	if string(viaStd) != string(direct) {
		t.Fatalf("encoding/json and appendCtrl disagree:\n std %s\n raw %s", viaStd, direct)
	}
	var back ControlTrace
	if err := json.Unmarshal(viaStd, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ct) {
		t.Fatalf("ControlTrace did not round-trip:\n got %+v\nwant %+v", back, ct)
	}
}

func TestReadTraceSkipsBlankAndFailsOnGarbage(t *testing.T) {
	good := AppendJSON(nil, &Event{Seq: 1, Kind: KindSched, Verb: VerbBind})
	in := string(good) + "\n\n" + string(good) + "\n"
	evs, err := ReadTrace(strings.NewReader(in))
	if err != nil || len(evs) != 2 {
		t.Fatalf("ReadTrace = %d events, %v; want 2, nil", len(evs), err)
	}
	if _, err := ReadTrace(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("ReadTrace accepted garbage")
	}
	if _, err := ReadTrace(strings.NewReader(`{"seq":1,"t":0,"kind":"bogus","verb":"x"}` + "\n")); err == nil {
		t.Fatal("ReadTrace accepted unknown kind")
	}
}

func TestWriteJSONLMatchesReadTrace(t *testing.T) {
	events := []Event{
		{Seq: 1, At: time.Second, Kind: KindControl, Verb: VerbDecide, App: "a", Replicas: 1, NewReplicas: 2},
		{Seq: 2, At: 2 * time.Second, Kind: KindPLO, Verb: VerbClear, App: "a", SLI: 0.01},
	}
	var sb strings.Builder
	if err := WriteJSONL(&sb, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Fatalf("WriteJSONL→ReadTrace drift:\n got %+v\nwant %+v", back, events)
	}
}

// TestTimestampPrecision guards the seconds-float encoding: durations
// with nanosecond residue must survive the round-trip via rounding.
func TestTimestampPrecision(t *testing.T) {
	for _, at := range []time.Duration{
		0, time.Nanosecond * 1500, time.Second / 3, 12345 * time.Millisecond,
		2 * time.Hour, 100*time.Hour + 7*time.Nanosecond,
	} {
		ev := Event{Seq: 1, At: at, Kind: KindSched, Verb: VerbBind}
		got, err := ParseEvent(AppendJSON(nil, &ev))
		if err != nil {
			t.Fatal(err)
		}
		if diff := got.At - at; diff < -time.Nanosecond || diff > time.Nanosecond {
			t.Errorf("At=%v round-tripped to %v (diff %v)", at, got.At, diff)
		}
	}
}
