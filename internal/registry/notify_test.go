package registry

import (
	"testing"
)

// TestNotifyDoesNotAllocate guards the dispatch rewrite: mutating an
// object with live (and a few cancelled) subscriptions must not touch
// the heap beyond the mutation itself.
func TestNotifyDoesNotAllocate(t *testing.T) {
	s := NewStore()
	w := newWidget("a", 1)
	if err := s.Create(w); err != nil {
		t.Fatal(err)
	}
	var seen int
	for i := 0; i < 4; i++ {
		s.Watch("widget", func(Event) { seen++ })
	}
	cancel := s.Watch("widget", func(Event) { seen++ })
	cancel()
	// One Update to let the compaction settle, then measure.
	if err := s.Update(w); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Update(w); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Update with subscribers allocates %.1f objects/run, want 0", allocs)
	}
	if seen == 0 {
		t.Fatal("handlers never ran")
	}
}

// TestSubscribeDuringDispatch: a handler that registers a new watch
// mid-dispatch must not see the in-flight event delivered to the new
// subscription, but the next mutation reaches it.
func TestSubscribeDuringDispatch(t *testing.T) {
	s := NewStore()
	w := newWidget("a", 1)
	if err := s.Create(w); err != nil {
		t.Fatal(err)
	}
	var late []EventType
	subscribed := false
	s.Watch("widget", func(ev Event) {
		// Skip the replayed Added delivered at Watch time: the point is
		// to subscribe from inside a genuine notify dispatch.
		if subscribed || ev.Type != Modified {
			return
		}
		subscribed = true
		s.Watch("widget", func(inner Event) {
			late = append(late, inner.Type)
		})
		// The inner Watch replays the existing object synchronously;
		// drop that so the assertion sees only dispatched events.
		late = late[:0]
	})
	if err := s.Update(w); err != nil { // triggers the inner subscribe
		t.Fatal(err)
	}
	if len(late) != 0 {
		t.Fatalf("new subscription saw the in-flight event: %v", late)
	}
	if err := s.Update(w); err != nil {
		t.Fatal(err)
	}
	if len(late) != 1 || late[0] != Modified {
		t.Fatalf("new subscription missed the next event: %v", late)
	}
}

// TestCancelDuringDispatch: a handler cancelling a later subscription
// mid-dispatch prevents that subscription from seeing the same event.
func TestCancelDuringDispatch(t *testing.T) {
	s := NewStore()
	w := newWidget("a", 1)
	if err := s.Create(w); err != nil {
		t.Fatal(err)
	}
	var cancelLater func()
	victimRan := 0
	s.Watch("widget", func(Event) {
		if cancelLater != nil {
			cancelLater()
		}
	})
	cancelLater = s.Watch("widget", func(Event) { victimRan++ })
	victimRan = 0 // discard the replay delivery
	if err := s.Update(w); err != nil {
		t.Fatal(err)
	}
	if victimRan != 0 {
		t.Fatalf("cancelled subscription still ran %d times", victimRan)
	}
	if err := s.Update(w); err != nil {
		t.Fatal(err)
	}
	if victimRan != 0 {
		t.Fatal("cancelled subscription resurrected on a later event")
	}
}
