// Package registry is the miniature API-server at the centre of the EVOLVE
// control plane: a versioned, typed object store with optimistic
// concurrency and synchronous watch subscriptions. Controllers (the
// scheduler, the autoscaler driver, the replica reconciler) follow the
// Kubernetes pattern — observe declarative objects, react to changes —
// without any of the networking: the simulation is single-threaded, so
// watch handlers run synchronously at mutation time and the whole control
// plane stays deterministic.
package registry

import (
	"fmt"
	"sort"
)

// Meta is the common header every stored object embeds.
type Meta struct {
	Kind string
	Name string
	// ResourceVersion implements optimistic concurrency: Update fails
	// unless the caller presents the current version.
	ResourceVersion uint64
	Labels          map[string]string

	// key caches Kind+"/"+Name: objects are updated every tick and the
	// concatenation would otherwise be the tick's last per-pod
	// allocation. Kind and Name are immutable after creation.
	key string
}

// Key returns the unique store key.
func (m *Meta) Key() string {
	if m.key == "" {
		m.key = m.Kind + "/" + m.Name
	}
	return m.key
}

// Object is anything the registry can store.
type Object interface {
	GetMeta() *Meta
}

// EventType classifies a watch event.
type EventType int

const (
	Added EventType = iota
	Modified
	Deleted
)

// String returns the canonical event-type name.
func (t EventType) String() string {
	switch t {
	case Added:
		return "added"
	case Modified:
		return "modified"
	case Deleted:
		return "deleted"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event describes one object mutation.
type Event struct {
	Type   EventType
	Object Object
}

// Handler consumes watch events.
type Handler func(Event)

// Conflict is returned when an Update presents a stale ResourceVersion.
type Conflict struct {
	Key            string
	Presented, Has uint64
}

func (c *Conflict) Error() string {
	return fmt.Sprintf("registry: conflict on %s: presented version %d, store has %d", c.Key, c.Presented, c.Has)
}

// NotFound is returned when an object does not exist.
type NotFound struct{ Key string }

func (n *NotFound) Error() string { return "registry: not found: " + n.Key }

// AlreadyExists is returned by Create for duplicate keys.
type AlreadyExists struct{ Key string }

func (a *AlreadyExists) Error() string { return "registry: already exists: " + a.Key }

type subscription struct {
	kind    string
	handler Handler
	dead    bool
}

// Store is the object store. Not safe for concurrent use — the simulation
// is single-threaded by design.
type Store struct {
	objects map[string]Object
	version uint64
	subs    []*subscription
	// depth guards against unbounded handler→mutation→handler recursion.
	depth int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{objects: make(map[string]Object)}
}

// Create inserts a new object and notifies watchers. The object's
// ResourceVersion is overwritten.
func (s *Store) Create(obj Object) error {
	m := obj.GetMeta()
	if m.Kind == "" || m.Name == "" {
		return fmt.Errorf("registry: object must have kind and name, got %q/%q", m.Kind, m.Name)
	}
	key := m.Key()
	if _, ok := s.objects[key]; ok {
		return &AlreadyExists{key}
	}
	s.version++
	m.ResourceVersion = s.version
	s.objects[key] = obj
	s.notify(Event{Added, obj})
	return nil
}

// Update replaces an existing object; the presented object must carry the
// stored ResourceVersion or the call fails with *Conflict.
func (s *Store) Update(obj Object) error {
	m := obj.GetMeta()
	key := m.Key()
	cur, ok := s.objects[key]
	if !ok {
		return &NotFound{key}
	}
	if have := cur.GetMeta().ResourceVersion; have != m.ResourceVersion {
		return &Conflict{Key: key, Presented: m.ResourceVersion, Has: have}
	}
	s.version++
	m.ResourceVersion = s.version
	s.objects[key] = obj
	s.notify(Event{Modified, obj})
	return nil
}

// ApplyBatch applies updates in the caller's order exactly as that many
// sequential Update calls would — same version trajectory, same
// conflict rules, same notifications — but in one tight loop with the
// per-call overhead hoisted out. The sharded kernel's barrier uses it
// to commit mutations buffered during a parallel tick phase in
// canonical entity order. It stops at the first error, returning the
// number of updates applied before it.
func (s *Store) ApplyBatch(objs []Object) (int, error) {
	if len(s.subs) == 0 && s.depth == 0 {
		// No watchers: version stamping is the whole job.
		for i, obj := range objs {
			m := obj.GetMeta()
			key := m.Key()
			cur, ok := s.objects[key]
			if !ok {
				return i, &NotFound{key}
			}
			if have := cur.GetMeta().ResourceVersion; have != m.ResourceVersion {
				return i, &Conflict{Key: key, Presented: m.ResourceVersion, Has: have}
			}
			s.version++
			m.ResourceVersion = s.version
			s.objects[key] = obj
		}
		return len(objs), nil
	}
	for i, obj := range objs {
		if err := s.Update(obj); err != nil {
			return i, err
		}
	}
	return len(objs), nil
}

// ApplyOwned applies buffered updates to objects the caller OWNS: each
// obj must be the live stored instance for its key (the same pointer
// Create inserted), which the cluster's indexes guarantee by
// construction. Under that precondition a lookup cannot miss and a
// version conflict cannot occur, so with no watchers the whole job is
// stamping fresh versions in order — the same version trajectory as
// that many Updates at a fraction of the cost (no key building, no map
// traffic). With watchers (or from inside a handler) it falls back to
// sequential Updates so notifications fire exactly as they always did,
// stopping at the first error like ApplyBatch. Passing an object that
// is not the stored instance corrupts the store's view; don't.
func (s *Store) ApplyOwned(objs []Object) (int, error) {
	if len(s.subs) == 0 && s.depth == 0 {
		for _, obj := range objs {
			s.version++
			obj.GetMeta().ResourceVersion = s.version
		}
		return len(objs), nil
	}
	for i, obj := range objs {
		if err := s.Update(obj); err != nil {
			return i, err
		}
	}
	return len(objs), nil
}

// Quiescent reports whether the store currently has no live watcher and
// no notification in flight: no subscriber to notify, no handler on the
// stack observing per-object versions. Dead-but-uncompacted
// subscriptions (cancelled watches awaiting the next notify) do not
// count. The cluster's dense tick path keys off this — when quiescent,
// per-object version stamping on owned objects is unobservable (a
// conflict check compares the stored instance against itself), so it
// may be replaced by AdvanceVersion.
func (s *Store) Quiescent() bool {
	if s.depth != 0 {
		return false
	}
	for _, sub := range s.subs {
		if !sub.dead {
			return false
		}
	}
	return true
}

// AdvanceVersion bumps the store's version counter by n without
// touching any object, standing in for n owned-object Updates whose
// per-object stamps nobody can observe. Only meaningful while
// Quiescent; the version trajectory of subsequent Creates/Updates
// continues as if the n stamps had happened.
func (s *Store) AdvanceVersion(n int) {
	if n > 0 {
		s.version += uint64(n)
	}
}

// Delete removes an object and notifies watchers.
func (s *Store) Delete(kind, name string) error {
	key := kind + "/" + name
	obj, ok := s.objects[key]
	if !ok {
		return &NotFound{key}
	}
	delete(s.objects, key)
	s.notify(Event{Deleted, obj})
	return nil
}

// Get fetches an object by kind and name.
func (s *Store) Get(kind, name string) (Object, error) {
	obj, ok := s.objects[kind+"/"+name]
	if !ok {
		return nil, &NotFound{kind + "/" + name}
	}
	return obj, nil
}

// List returns all objects of a kind, sorted by name for determinism.
func (s *Store) List(kind string) []Object {
	var out []Object
	for _, obj := range s.objects {
		if obj.GetMeta().Kind == kind {
			out = append(out, obj)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].GetMeta().Name < out[j].GetMeta().Name
	})
	return out
}

// Len returns the total number of stored objects.
func (s *Store) Len() int { return len(s.objects) }

// Watch subscribes handler to all mutations of the given kind; the empty
// kind matches everything. Existing objects are replayed as Added events
// first, so informer-style controllers need no separate list step.
// The returned cancel function detaches the subscription.
func (s *Store) Watch(kind string, handler Handler) func() {
	for _, obj := range s.List(kind) {
		handler(Event{Added, obj})
	}
	if kind == "" {
		// Replay for the match-all case covers every kind.
		// (List("") returns nothing, so do it explicitly.)
		keys := make([]string, 0, len(s.objects))
		for k := range s.objects {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			handler(Event{Added, s.objects[k]})
		}
	}
	sub := &subscription{kind: kind, handler: handler}
	s.subs = append(s.subs, sub)
	return func() { sub.dead = true }
}

func (s *Store) notify(ev Event) {
	s.depth++
	if s.depth > 64 {
		panic("registry: watch handler recursion exceeded 64 levels; controller feedback loop?")
	}
	defer func() { s.depth-- }()

	// Compact dead subscriptions in place, but only at the outermost
	// dispatch level: an inner (reentrant) notify must not shuffle
	// entries out from under an outer iteration.
	if s.depth == 1 {
		live := s.subs[:0]
		for _, sub := range s.subs {
			if !sub.dead {
				live = append(live, sub)
			}
		}
		for i := len(live); i < len(s.subs); i++ {
			s.subs[i] = nil
		}
		s.subs = live
	}

	kind := ev.Object.GetMeta().Kind
	// Iterate a local slice header instead of an allocated snapshot:
	// handlers that subscribe mid-dispatch append to s.subs (possibly
	// growing a new backing array), so they are not notified for the
	// event already in flight; cancellations are honoured via the dead
	// flag either way. This keeps per-mutation dispatch allocation-free.
	subs := s.subs
	for _, sub := range subs {
		if sub.dead || (sub.kind != "" && sub.kind != kind) {
			continue
		}
		sub.handler(ev)
	}
}
