package registry

import "fmt"

// Checkpoint-restore hooks. Restoring a world rewinds the store to a
// snapshot by surgically patching objects: these operations bypass
// version stamping and watch notification, because the restore path
// reconstructs watcher-side state (tracer rings, indexes) wholesale
// afterwards — replaying notifications would double-apply it.

// Version returns the store's current version counter.
func (s *Store) Version() uint64 { return s.version }

// SetVersion rewinds (or advances) the version counter to v. Restore
// calls it last, after object surgery, so the post-restore version
// trajectory continues exactly where the checkpoint left off.
func (s *Store) SetVersion(v uint64) { s.version = v }

// Inject inserts obj preserving its ResourceVersion, with no version
// bump and no watch notification. The key must be vacant.
func (s *Store) Inject(obj Object) error {
	m := obj.GetMeta()
	if m.Kind == "" || m.Name == "" {
		return fmt.Errorf("registry: inject: object must have kind and name, got %q/%q", m.Kind, m.Name)
	}
	key := m.Key()
	if _, ok := s.objects[key]; ok {
		return &AlreadyExists{key}
	}
	s.objects[key] = obj
	return nil
}

// Forget removes an object with no watch notification; the silent dual
// of Inject. Missing keys error, as with Delete.
func (s *Store) Forget(kind, name string) error {
	key := kind + "/" + name
	if _, ok := s.objects[key]; !ok {
		return &NotFound{key}
	}
	delete(s.objects, key)
	return nil
}
