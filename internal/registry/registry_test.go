package registry

import (
	"errors"
	"testing"
)

type widget struct {
	Meta
	Size int
}

func (w *widget) GetMeta() *Meta { return &w.Meta }

func newWidget(name string, size int) *widget {
	return &widget{Meta: Meta{Kind: "widget", Name: name}, Size: size}
}

func TestCreateGet(t *testing.T) {
	s := NewStore()
	w := newWidget("a", 1)
	if err := s.Create(w); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if w.ResourceVersion == 0 {
		t.Error("Create should assign a version")
	}
	got, err := s.Get("widget", "a")
	if err != nil || got.(*widget).Size != 1 {
		t.Errorf("Get = %v, %v", got, err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestCreateValidation(t *testing.T) {
	s := NewStore()
	if err := s.Create(&widget{}); err == nil {
		t.Error("missing kind/name should fail")
	}
	w := newWidget("a", 1)
	if err := s.Create(w); err != nil {
		t.Fatal(err)
	}
	var exists *AlreadyExists
	if err := s.Create(newWidget("a", 2)); !errors.As(err, &exists) {
		t.Errorf("duplicate Create = %v, want AlreadyExists", err)
	}
}

func TestUpdateOptimisticConcurrency(t *testing.T) {
	s := NewStore()
	w := newWidget("a", 1)
	if err := s.Create(w); err != nil {
		t.Fatal(err)
	}
	v1 := w.ResourceVersion
	w.Size = 2
	if err := s.Update(w); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if w.ResourceVersion <= v1 {
		t.Error("Update should bump version")
	}
	// Stale version must conflict.
	stale := newWidget("a", 3)
	stale.ResourceVersion = v1
	var conflict *Conflict
	if err := s.Update(stale); !errors.As(err, &conflict) {
		t.Errorf("stale Update = %v, want Conflict", err)
	}
	var notFound *NotFound
	if err := s.Update(newWidget("zzz", 0)); !errors.As(err, &notFound) {
		t.Errorf("Update missing = %v, want NotFound", err)
	}
}

func TestDelete(t *testing.T) {
	s := NewStore()
	if err := s.Create(newWidget("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("widget", "a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	var notFound *NotFound
	if _, err := s.Get("widget", "a"); !errors.As(err, &notFound) {
		t.Errorf("Get after delete = %v", err)
	}
	if err := s.Delete("widget", "a"); !errors.As(err, &notFound) {
		t.Errorf("double Delete = %v", err)
	}
}

func TestListSortedAndFiltered(t *testing.T) {
	s := NewStore()
	for _, n := range []string{"c", "a", "b"} {
		if err := s.Create(newWidget(n, 0)); err != nil {
			t.Fatal(err)
		}
	}
	other := &widget{Meta: Meta{Kind: "gadget", Name: "x"}}
	if err := s.Create(other); err != nil {
		t.Fatal(err)
	}
	ws := s.List("widget")
	if len(ws) != 3 {
		t.Fatalf("List = %d items", len(ws))
	}
	for i, want := range []string{"a", "b", "c"} {
		if ws[i].GetMeta().Name != want {
			t.Errorf("List[%d] = %q, want %q", i, ws[i].GetMeta().Name, want)
		}
	}
}

func TestWatchReceivesMutations(t *testing.T) {
	s := NewStore()
	var events []Event
	s.Watch("widget", func(e Event) { events = append(events, e) })

	w := newWidget("a", 1)
	if err := s.Create(w); err != nil {
		t.Fatal(err)
	}
	w.Size = 2
	if err := s.Update(w); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("widget", "a"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	wantTypes := []EventType{Added, Modified, Deleted}
	for i, want := range wantTypes {
		if events[i].Type != want {
			t.Errorf("event %d type = %v, want %v", i, events[i].Type, want)
		}
	}
}

func TestWatchReplaysExisting(t *testing.T) {
	s := NewStore()
	if err := s.Create(newWidget("b", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(newWidget("a", 1)); err != nil {
		t.Fatal(err)
	}
	var names []string
	s.Watch("widget", func(e Event) {
		if e.Type == Added {
			names = append(names, e.Object.GetMeta().Name)
		}
	})
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("replay = %v, want sorted [a b]", names)
	}
}

func TestWatchKindFilter(t *testing.T) {
	s := NewStore()
	count := 0
	s.Watch("gadget", func(e Event) { count++ })
	if err := s.Create(newWidget("a", 1)); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Error("widget event leaked to gadget watcher")
	}
}

func TestWatchCancel(t *testing.T) {
	s := NewStore()
	count := 0
	cancel := s.Watch("widget", func(e Event) { count++ })
	cancel()
	if err := s.Create(newWidget("a", 1)); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Error("cancelled watcher still notified")
	}
}

func TestWatchAllKinds(t *testing.T) {
	s := NewStore()
	if err := s.Create(newWidget("a", 1)); err != nil {
		t.Fatal(err)
	}
	var seen []string
	s.Watch("", func(e Event) { seen = append(seen, e.Object.GetMeta().Key()) })
	if len(seen) != 1 || seen[0] != "widget/a" {
		t.Errorf("match-all replay = %v", seen)
	}
	g := &widget{Meta: Meta{Kind: "gadget", Name: "g"}}
	if err := s.Create(g); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Errorf("match-all did not see gadget: %v", seen)
	}
}

func TestHandlerMayMutateStore(t *testing.T) {
	s := NewStore()
	// A controller that creates a shadow object for every widget.
	s.Watch("widget", func(e Event) {
		if e.Type == Added {
			shadow := &widget{Meta: Meta{Kind: "shadow", Name: e.Object.GetMeta().Name}}
			if err := s.Create(shadow); err != nil {
				t.Errorf("shadow create: %v", err)
			}
		}
	})
	if err := s.Create(newWidget("a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("shadow", "a"); err != nil {
		t.Errorf("shadow not created: %v", err)
	}
}

func TestRunawayRecursionPanics(t *testing.T) {
	s := NewStore()
	n := 0
	s.Watch("widget", func(e Event) {
		n++
		w := newWidget(string(rune('a'+n%26))+string(rune('0'+n/26)), n)
		_ = s.Create(w) // each event creates another widget: infinite loop
	})
	defer func() {
		if recover() == nil {
			t.Error("runaway controller recursion should panic")
		}
	}()
	_ = s.Create(newWidget("seed", 0))
}

func TestErrorStrings(t *testing.T) {
	if (&Conflict{Key: "k", Presented: 1, Has: 2}).Error() == "" {
		t.Error("empty conflict message")
	}
	if (&NotFound{"k"}).Error() == "" || (&AlreadyExists{"k"}).Error() == "" {
		t.Error("empty error messages")
	}
	if Added.String() != "added" || Modified.String() != "modified" || Deleted.String() != "deleted" {
		t.Error("event type strings wrong")
	}
	if EventType(7).String() != "event(7)" {
		t.Error("unknown event type string")
	}
}
