package registry

import "testing"

// TestApplyBatchMatchesSequentialUpdates pins the batch contract: the
// version trajectory equals that of the same Updates issued one by one.
func TestApplyBatchMatchesSequentialUpdates(t *testing.T) {
	seq, bat := NewStore(), NewStore()
	var seqW, batW []*widget
	for _, name := range []string{"a", "b", "c"} {
		ws, wb := newWidget(name, 1), newWidget(name, 1)
		if err := seq.Create(ws); err != nil {
			t.Fatal(err)
		}
		if err := bat.Create(wb); err != nil {
			t.Fatal(err)
		}
		seqW, batW = append(seqW, ws), append(batW, wb)
	}
	for _, w := range seqW {
		if err := seq.Update(w); err != nil {
			t.Fatal(err)
		}
	}
	objs := make([]Object, len(batW))
	for i, w := range batW {
		objs[i] = w
	}
	if n, err := bat.ApplyBatch(objs); n != len(objs) || err != nil {
		t.Fatalf("ApplyBatch = %d, %v", n, err)
	}
	for i := range seqW {
		if seqW[i].ResourceVersion != batW[i].ResourceVersion {
			t.Errorf("widget %d: batch version %d, sequential %d",
				i, batW[i].ResourceVersion, seqW[i].ResourceVersion)
		}
	}
}

// TestApplyOwnedStampsSameTrajectory pins ApplyOwned's contract for
// owned (pointer-shared) objects: same versions as sequential Updates,
// no watcher notifications missed when watchers exist.
func TestApplyOwnedStampsSameTrajectory(t *testing.T) {
	seq, own := NewStore(), NewStore()
	var seqW, ownW []*widget
	for _, name := range []string{"a", "b", "c"} {
		ws, wo := newWidget(name, 1), newWidget(name, 1)
		if err := seq.Create(ws); err != nil {
			t.Fatal(err)
		}
		if err := own.Create(wo); err != nil {
			t.Fatal(err)
		}
		seqW, ownW = append(seqW, ws), append(ownW, wo)
	}
	for _, w := range seqW {
		if err := seq.Update(w); err != nil {
			t.Fatal(err)
		}
	}
	objs := make([]Object, len(ownW))
	for i, w := range ownW {
		objs[i] = w
	}
	if n, err := own.ApplyOwned(objs); n != len(objs) || err != nil {
		t.Fatalf("ApplyOwned = %d, %v", n, err)
	}
	for i := range seqW {
		if seqW[i].ResourceVersion != ownW[i].ResourceVersion {
			t.Errorf("widget %d: owned version %d, sequential %d",
				i, ownW[i].ResourceVersion, seqW[i].ResourceVersion)
		}
		got, err := own.Get("widget", ownW[i].Name)
		if err != nil || got.(*widget) != ownW[i] {
			t.Errorf("widget %d: store lost the owned instance: %v, %v", i, got, err)
		}
	}
}

// TestApplyOwnedNotifiesWatchers: with a watcher installed, ApplyOwned
// must fall back to the notifying path — one Modified event per object.
func TestApplyOwnedNotifiesWatchers(t *testing.T) {
	s := NewStore()
	w := newWidget("a", 1)
	if err := s.Create(w); err != nil {
		t.Fatal(err)
	}
	var mods int
	s.Watch("widget", func(ev Event) {
		if ev.Type == Modified {
			mods++
		}
	})
	if n, err := s.ApplyOwned([]Object{w, w}); n != 2 || err != nil {
		t.Fatalf("ApplyOwned = %d, %v", n, err)
	}
	if mods != 2 {
		t.Errorf("Modified notifications = %d, want 2", mods)
	}
}

// TestQuiescentAndAdvanceVersion pins the dense-path contract: a store
// with no live watcher is quiescent, AdvanceVersion stands in for n
// owned-object stamps, and the version trajectory of later writes
// continues as if those stamps had happened.
func TestQuiescentAndAdvanceVersion(t *testing.T) {
	s := NewStore()
	if !s.Quiescent() {
		t.Fatal("fresh store not quiescent")
	}
	w := newWidget("a", 1)
	if err := s.Create(w); err != nil {
		t.Fatal(err)
	}
	v0 := w.ResourceVersion

	cancel := s.Watch("", func(Event) {})
	if s.Quiescent() {
		t.Error("store with a live watch reports quiescent")
	}
	cancel()
	if !s.Quiescent() {
		t.Error("store not quiescent after the only watch is cancelled")
	}

	// Three phantom stamps, then a real update: the update's version must
	// land exactly where three Updates plus one more would have put it.
	s.AdvanceVersion(3)
	if err := s.Update(w); err != nil {
		t.Fatal(err)
	}
	if want := v0 + 4; w.ResourceVersion != want {
		t.Errorf("version after AdvanceVersion(3)+Update = %d, want %d", w.ResourceVersion, want)
	}
	s.AdvanceVersion(0)
	s.AdvanceVersion(-5) // non-positive advances are no-ops
	prev := w.ResourceVersion
	if err := s.Update(w); err != nil {
		t.Fatal(err)
	}
	if w.ResourceVersion != prev+1 {
		t.Errorf("non-positive AdvanceVersion moved the counter: %d -> %d", prev, w.ResourceVersion)
	}
}

// Quiescent must also be false while a notification is on the stack —
// a handler observing the store mid-dispatch is an observer.
func TestQuiescentFalseInsideHandler(t *testing.T) {
	s := NewStore()
	fired, sawQuiescent := 0, false
	cancel := s.Watch("widget", func(Event) {
		fired++
		if s.Quiescent() {
			sawQuiescent = true
		}
	})
	defer cancel()
	if err := s.Create(newWidget("a", 1)); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("watch handler never fired")
	}
	if sawQuiescent {
		t.Error("Quiescent reported true inside a watch handler")
	}
}
