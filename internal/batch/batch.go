// Package batch is the big-data substrate: DAG-structured analytics jobs
// (stages of parallel tasks with dependency barriers, à la Spark) executed
// on the simulated cluster. The runner submits stage tasks as low-priority
// pods, retries tasks killed by preemption or node failure, and tracks
// per-job makespan — the metrics the converged-cluster experiments report.
package batch

import (
	"fmt"
	"time"

	"evolve/internal/cluster"
	"evolve/internal/perf"
	"evolve/internal/resource"
)

// Stage is one layer of a DAG job: Tasks parallel tasks, all with the
// same shape, runnable once every dependency stage has finished.
type Stage struct {
	Name      string
	Tasks     int
	Model     perf.TaskModel
	Requests  resource.Vector
	DependsOn []string
	// NodeSelector restricts the stage's tasks to labeled nodes.
	NodeSelector map[string]string
}

// JobSpec declares a DAG job.
type JobSpec struct {
	Name     string
	Stages   []Stage
	Priority int // pod priority; batch work usually runs below services
	// MaxRetries bounds per-task retries after evictions (default 3).
	MaxRetries int
}

// Validate checks the DAG: unique stage names, existing dependencies,
// acyclicity, positive task counts.
func (j JobSpec) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("batch: job needs a name")
	}
	if len(j.Stages) == 0 {
		return fmt.Errorf("batch: job %s has no stages", j.Name)
	}
	byName := make(map[string]*Stage, len(j.Stages))
	for i := range j.Stages {
		s := &j.Stages[i]
		if s.Name == "" {
			return fmt.Errorf("batch: job %s: stage %d needs a name", j.Name, i)
		}
		if _, dup := byName[s.Name]; dup {
			return fmt.Errorf("batch: job %s: duplicate stage %s", j.Name, s.Name)
		}
		if s.Tasks <= 0 {
			return fmt.Errorf("batch: job %s: stage %s has %d tasks", j.Name, s.Name, s.Tasks)
		}
		if s.Requests.IsZero() {
			return fmt.Errorf("batch: job %s: stage %s has zero requests", j.Name, s.Name)
		}
		byName[s.Name] = s
	}
	// Cycle check via DFS colouring.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int, len(j.Stages))
	var visit func(name string) error
	visit = func(name string) error {
		switch colour[name] {
		case grey:
			return fmt.Errorf("batch: job %s: dependency cycle through %s", j.Name, name)
		case black:
			return nil
		}
		colour[name] = grey
		for _, dep := range byName[name].DependsOn {
			if _, ok := byName[dep]; !ok {
				return fmt.Errorf("batch: job %s: stage %s depends on unknown %s", j.Name, name, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		colour[name] = black
		return nil
	}
	for name := range byName {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// stageState tracks one stage's progress.
type stageState struct {
	spec      *Stage
	launched  bool
	remaining int
	retries   map[string]int
}

// jobState tracks one job's progress.
type jobState struct {
	spec        JobSpec
	stages      map[string]*stageState
	submittedAt time.Duration
	finishedAt  time.Duration
	done        bool
}

// taskRef locates an in-flight task pod's place in a job's DAG, so a
// checkpoint can rebuild its completion callback (pod names alone are
// not parseable: stage and job names may contain the separator).
type taskRef struct {
	job   string
	stage string
	idx   int
}

// Runner executes DAG jobs on a cluster.
type Runner struct {
	c      *cluster.Cluster
	jobs   map[string]*jobState
	onDone func(job string, makespan time.Duration)
	// inflight maps live task pod names to their DAG position; see
	// taskRef and ReattachTask.
	inflight map[string]taskRef
	taskSeq  uint64
}

// NewRunner returns a runner bound to the cluster.
func NewRunner(c *cluster.Cluster) *Runner {
	return &Runner{c: c, jobs: make(map[string]*jobState), inflight: make(map[string]taskRef)}
}

// OnJobDone installs a completion callback.
func (r *Runner) OnJobDone(fn func(job string, makespan time.Duration)) { r.onDone = fn }

// Submit validates and starts a job: all dependency-free stages launch
// immediately (their tasks queue in the cluster's pending set).
func (r *Runner) Submit(spec JobSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, ok := r.jobs[spec.Name]; ok {
		return fmt.Errorf("batch: job %s already submitted", spec.Name)
	}
	if spec.MaxRetries <= 0 {
		spec.MaxRetries = 3
	}
	js := &jobState{
		spec:        spec,
		stages:      make(map[string]*stageState, len(spec.Stages)),
		submittedAt: r.c.Engine().Now(),
	}
	for i := range spec.Stages {
		s := &spec.Stages[i]
		js.stages[s.Name] = &stageState{spec: s, remaining: s.Tasks, retries: make(map[string]int)}
	}
	r.jobs[spec.Name] = js
	r.launchReady(js)
	return nil
}

// launchReady submits tasks for every stage whose dependencies finished.
func (r *Runner) launchReady(js *jobState) {
	for _, stage := range js.spec.Stages {
		st := js.stages[stage.Name]
		if st.launched {
			continue
		}
		ready := true
		for _, dep := range stage.DependsOn {
			if js.stages[dep].remaining > 0 {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		st.launched = true
		for i := 0; i < stage.Tasks; i++ {
			r.submitTask(js, st, i)
		}
	}
}

func (r *Runner) submitTask(js *jobState, st *stageState, idx int) {
	r.taskSeq++
	name := fmt.Sprintf("%s-%s-%d-r%d", js.spec.Name, st.spec.Name, idx, r.taskSeq)
	r.inflight[name] = taskRef{job: js.spec.Name, stage: st.spec.Name, idx: idx}
	spec := cluster.TaskSpec{
		Name:         name,
		Job:          js.spec.Name,
		Model:        st.spec.Model,
		Requests:     st.spec.Requests,
		Priority:     js.spec.Priority,
		NodeSelector: st.spec.NodeSelector,
		OnDone:       r.onDoneFor(name, js, st, idx),
	}
	if err := r.c.SubmitTask(spec); err != nil {
		panic(fmt.Sprintf("batch: task submit: %v", err))
	}
}

// onDoneFor builds the completion callback for a task pod; ReattachTask
// rebuilds the same callback after a checkpoint restore.
func (r *Runner) onDoneFor(name string, js *jobState, st *stageState, idx int) func(string, bool) {
	taskKey := fmt.Sprintf("%s-%d", st.spec.Name, idx)
	return func(_ string, failed bool) {
		delete(r.inflight, name)
		r.taskDone(js, st, taskKey, idx, failed)
	}
}

// ReattachTask returns the completion callback for a restored in-flight
// task pod. The cluster restorer calls it for every live task pod owned
// by this runner's jobs.
func (r *Runner) ReattachTask(pod string) (func(string, bool), error) {
	ref, ok := r.inflight[pod]
	if !ok {
		return nil, fmt.Errorf("batch: task pod %s not in checkpoint inflight set", pod)
	}
	js, ok := r.jobs[ref.job]
	if !ok {
		return nil, fmt.Errorf("batch: task pod %s references unknown job %s", pod, ref.job)
	}
	st, ok := js.stages[ref.stage]
	if !ok {
		return nil, fmt.Errorf("batch: task pod %s references unknown stage %s/%s", pod, ref.job, ref.stage)
	}
	return r.onDoneFor(pod, js, st, ref.idx), nil
}

func (r *Runner) taskDone(js *jobState, st *stageState, taskKey string, idx int, failed bool) {
	if failed {
		st.retries[taskKey]++
		if st.retries[taskKey] > js.spec.MaxRetries {
			// Give up on the task; count the stage as progressing so the
			// job cannot hang forever, but record the abandonment.
			r.c.Metrics().Counter("batch/tasks-abandoned").Inc()
		} else {
			r.c.Metrics().Counter("batch/task-retries").Inc()
			r.submitTask(js, st, idx)
			return
		}
	}
	st.remaining--
	if st.remaining > 0 {
		return
	}
	// Stage complete: unlock dependants, maybe the whole job.
	r.launchReady(js)
	for _, s := range js.stages {
		if s.remaining > 0 {
			return
		}
	}
	if js.done {
		return
	}
	js.done = true
	js.finishedAt = r.c.Engine().Now()
	r.c.Metrics().Counter("batch/jobs-completed").Inc()
	makespan := js.finishedAt - js.submittedAt
	r.c.Metrics().Series("batch/makespan").Add(js.finishedAt, makespan.Seconds())
	if r.onDone != nil {
		r.onDone(js.spec.Name, makespan)
	}
}

// Done reports whether the job finished, and its makespan when it has.
func (r *Runner) Done(job string) (time.Duration, bool) {
	js, ok := r.jobs[job]
	if !ok || !js.done {
		return 0, false
	}
	return js.finishedAt - js.submittedAt, true
}

// Pending returns the number of unfinished jobs.
func (r *Runner) Pending() int {
	n := 0
	for _, js := range r.jobs {
		if !js.done {
			n++
		}
	}
	return n
}

// TeraSortLike returns a canonical 3-stage DAG (map → shuffle/sort →
// reduce) sized by a scale factor; the examples and mixes use it as the
// representative analytics job.
func TeraSortLike(name string, scale float64, priority int) JobSpec {
	if scale <= 0 {
		scale = 1
	}
	mapTasks := int(8 * scale)
	if mapTasks < 1 {
		mapTasks = 1
	}
	reduceTasks := int(4 * scale)
	if reduceTasks < 1 {
		reduceTasks = 1
	}
	return JobSpec{
		Name:     name,
		Priority: priority,
		Stages: []Stage{
			{
				Name:  "map",
				Tasks: mapTasks,
				Model: perf.TaskModel{
					Work:   resource.New(30000, 0, 2e9, 200e6), // CPU+disk heavy
					MemSet: 1 << 30,
				},
				Requests: resource.New(2000, 2<<30, 80e6, 20e6),
			},
			{
				Name:      "sort",
				Tasks:     reduceTasks,
				DependsOn: []string{"map"},
				Model: perf.TaskModel{
					Work:   resource.New(20000, 0, 4e9, 1e9), // shuffle: net+disk
					MemSet: 3 << 30,
				},
				Requests: resource.New(1500, 4<<30, 120e6, 80e6),
			},
			{
				Name:      "reduce",
				Tasks:     reduceTasks,
				DependsOn: []string{"sort"},
				Model: perf.TaskModel{
					Work:   resource.New(15000, 0, 1e9, 100e6),
					MemSet: 2 << 30,
				},
				Requests: resource.New(1000, 3<<30, 60e6, 20e6),
			},
		},
	}
}
