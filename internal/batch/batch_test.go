package batch

import (
	"testing"
	"time"

	"evolve/internal/cluster"
	"evolve/internal/perf"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

func newCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := cluster.DefaultConfig()
	cfg.MeasurementNoise = 0
	c := cluster.New(eng, cfg)
	if err := c.AddNodes("n", nodes, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
		t.Fatal(err)
	}
	c.Start()
	return c
}

func tinyJob(name string) JobSpec {
	task := perf.TaskModel{Work: resource.New(10000, 0, 0, 0), MemSet: 1 << 30}
	req := resource.New(2000, 2<<30, 10e6, 10e6) // 10000 mc·s / 2000m = 5s
	return JobSpec{
		Name: name,
		Stages: []Stage{
			{Name: "a", Tasks: 2, Model: task, Requests: req},
			{Name: "b", Tasks: 1, Model: task, Requests: req, DependsOn: []string{"a"}},
		},
	}
}

func TestValidateDAG(t *testing.T) {
	good := tinyJob("j")
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	cases := []func(*JobSpec){
		func(j *JobSpec) { j.Name = "" },
		func(j *JobSpec) { j.Stages = nil },
		func(j *JobSpec) { j.Stages[0].Name = "" },
		func(j *JobSpec) { j.Stages[1].Name = "a" },
		func(j *JobSpec) { j.Stages[0].Tasks = 0 },
		func(j *JobSpec) { j.Stages[0].Requests = resource.Vector{} },
		func(j *JobSpec) { j.Stages[1].DependsOn = []string{"zzz"} },
		func(j *JobSpec) { // cycle a->b->a
			j.Stages[0].DependsOn = []string{"b"}
		},
	}
	for i, mutate := range cases {
		j := tinyJob("j")
		mutate(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	// Self-cycle.
	self := JobSpec{Name: "s", Stages: []Stage{{Name: "a", Tasks: 1, Requests: resource.New(1, 1, 1, 1), DependsOn: []string{"a"}}}}
	if err := self.Validate(); err == nil {
		t.Error("self-cycle should fail")
	}
}

func TestJobRunsStagesInOrder(t *testing.T) {
	c := newCluster(t, 2)
	r := NewRunner(c)
	var doneJob string
	var makespan time.Duration
	r.OnJobDone(func(job string, m time.Duration) { doneJob, makespan = job, m })

	if err := r.Submit(tinyJob("j1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(tinyJob("j1")); err == nil {
		t.Error("duplicate job should fail")
	}
	if r.Pending() != 1 {
		t.Errorf("Pending = %d", r.Pending())
	}
	// Stage a: 2 tasks of 5s (placed on first tick at 5s, finish 10s);
	// stage b launches then, finishes ~20s.
	c.Engine().Run(time.Minute)
	if doneJob != "j1" {
		t.Fatal("job did not complete")
	}
	if m, ok := r.Done("j1"); !ok || m != makespan {
		t.Errorf("Done = %v, %v", m, ok)
	}
	if makespan <= 10*time.Second || makespan > 40*time.Second {
		t.Errorf("makespan = %v, want ≈15-25s", makespan)
	}
	if r.Pending() != 0 {
		t.Errorf("Pending after completion = %d", r.Pending())
	}
	if c.Metrics().Counter("batch/jobs-completed").Value() != 1 {
		t.Error("completion counter wrong")
	}
	if _, ok := r.Done("unknown"); ok {
		t.Error("unknown job should not be done")
	}
}

func TestStageBarrier(t *testing.T) {
	c := newCluster(t, 4)
	r := NewRunner(c)
	if err := r.Submit(tinyJob("j")); err != nil {
		t.Fatal(err)
	}
	// After the first tick both stage-a tasks run, but no stage-b pod may
	// exist yet.
	c.Engine().Run(6 * time.Second)
	for _, p := range c.Pods() {
		if p.App == "j" && p.Task != nil && p.Phase == cluster.Running {
			if name := p.Name; len(name) > 4 && name[2] == 'b' {
				t.Errorf("stage b pod %s running before barrier", name)
			}
		}
	}
	bCount := 0
	for _, p := range c.Pods() {
		if p.App == "j" && stageOf(p.Name) == "b" {
			bCount++
		}
	}
	if bCount != 0 {
		t.Error("stage b launched before stage a finished")
	}
}

// stageOf extracts the stage from "job-stage-idx-rN" pod names.
func stageOf(podName string) string {
	// names look like j-a-0-r1
	parts := []rune(podName)
	_ = parts
	var fields []string
	start := 0
	for i, r := range podName {
		if r == '-' {
			fields = append(fields, podName[start:i])
			start = i + 1
		}
	}
	fields = append(fields, podName[start:])
	if len(fields) >= 2 {
		return fields[1]
	}
	return ""
}

func TestTaskRetryAfterNodeFailure(t *testing.T) {
	c := newCluster(t, 2)
	r := NewRunner(c)
	job := tinyJob("j")
	job.Stages = job.Stages[:1] // single stage, 2 tasks
	if err := r.Submit(job); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(6 * time.Second) // tasks placed and running
	// Kill one node: its task fails and must be resubmitted.
	var victim string
	for _, p := range c.Pods() {
		if p.Phase == cluster.Running {
			victim = p.Node
			break
		}
	}
	if victim == "" {
		t.Fatal("no running task found")
	}
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(time.Minute)
	if _, ok := r.Done("j"); !ok {
		t.Fatal("job should complete despite node failure")
	}
	if c.Metrics().Counter("batch/task-retries").Value() == 0 {
		t.Error("retry not counted")
	}
}

func TestTeraSortLikeValid(t *testing.T) {
	j := TeraSortLike("ts", 1, 0)
	if err := j.Validate(); err != nil {
		t.Fatalf("TeraSortLike invalid: %v", err)
	}
	if len(j.Stages) != 3 {
		t.Errorf("stages = %d", len(j.Stages))
	}
	// Scale shrinks/grows task counts but never below 1.
	small := TeraSortLike("s", 0.01, 0)
	for _, st := range small.Stages {
		if st.Tasks < 1 {
			t.Errorf("stage %s has %d tasks", st.Name, st.Tasks)
		}
	}
	big := TeraSortLike("b", 4, 0)
	if big.Stages[0].Tasks != 32 {
		t.Errorf("scaled map tasks = %d, want 32", big.Stages[0].Tasks)
	}
	if TeraSortLike("z", -1, 0).Stages[0].Tasks != 8 {
		t.Error("non-positive scale should default to 1")
	}
}

func TestTeraSortRunsEndToEnd(t *testing.T) {
	c := newCluster(t, 6)
	r := NewRunner(c)
	if err := r.Submit(TeraSortLike("ts", 1, 0)); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(30 * time.Minute)
	m, ok := r.Done("ts")
	if !ok {
		t.Fatal("terasort did not finish in 30 virtual minutes")
	}
	if m <= 0 {
		t.Errorf("makespan = %v", m)
	}
	if c.Metrics().Series("batch/makespan").Len() != 1 {
		t.Error("makespan series missing")
	}
}
