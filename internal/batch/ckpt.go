package batch

import (
	"fmt"
	"sort"

	"evolve/internal/ckpt"
	"evolve/internal/perf"
	"evolve/internal/resource"
)

const maxCkptItems = 1 << 20

func saveSpec(w *ckpt.Writer, spec *JobSpec) {
	w.Str(spec.Name)
	w.Int(spec.Priority)
	w.Int(spec.MaxRetries)
	w.Int(len(spec.Stages))
	for i := range spec.Stages {
		s := &spec.Stages[i]
		w.Str(s.Name)
		w.Int(s.Tasks)
		s.Model.Work.CkptSave(w)
		w.F64(s.Model.MemSet)
		s.Requests.CkptSave(w)
		w.Int(len(s.DependsOn))
		for _, d := range s.DependsOn {
			w.Str(d)
		}
		keys := make([]string, 0, len(s.NodeSelector))
		for k := range s.NodeSelector {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.Int(len(keys))
		for _, k := range keys {
			w.Str(k)
			w.Str(s.NodeSelector[k])
		}
	}
}

func loadSpec(r *ckpt.Reader) (JobSpec, error) {
	var spec JobSpec
	spec.Name = r.Str()
	spec.Priority = r.Int()
	spec.MaxRetries = r.Int()
	ns := r.Int()
	if r.Err() != nil {
		return spec, r.Err()
	}
	if ns < 0 || ns > maxCkptItems {
		return spec, fmt.Errorf("batch: ckpt: stage count %d out of range", ns)
	}
	spec.Stages = make([]Stage, ns)
	for i := range spec.Stages {
		s := &spec.Stages[i]
		s.Name = r.Str()
		s.Tasks = r.Int()
		s.Model = perf.TaskModel{Work: resource.LoadVector(r), MemSet: r.F64()}
		s.Requests = resource.LoadVector(r)
		nd := r.Int()
		if r.Err() != nil {
			return spec, r.Err()
		}
		if nd < 0 || nd > maxCkptItems {
			return spec, fmt.Errorf("batch: ckpt: dependency count %d out of range", nd)
		}
		for j := 0; j < nd; j++ {
			s.DependsOn = append(s.DependsOn, r.Str())
		}
		nl := r.Int()
		if r.Err() != nil {
			return spec, r.Err()
		}
		if nl < 0 || nl > maxCkptItems {
			return spec, fmt.Errorf("batch: ckpt: selector count %d out of range", nl)
		}
		if nl > 0 {
			s.NodeSelector = make(map[string]string, nl)
			for j := 0; j < nl; j++ {
				k := r.Str()
				s.NodeSelector[k] = r.Str()
			}
		}
	}
	return spec, r.Err()
}

// CkptSave writes the runner's full state: job specs (the submission
// timers that delivered them have already fired by checkpoint time, so
// the restored world cannot re-derive them), DAG progress, per-task
// retry counts and the in-flight task pod set.
func (r *Runner) CkptSave(w *ckpt.Writer) {
	w.Begin("batch")
	w.U64(r.taskSeq)
	names := make([]string, 0, len(r.jobs))
	for n := range r.jobs {
		names = append(names, n)
	}
	sort.Strings(names)
	w.Int(len(names))
	for _, n := range names {
		js := r.jobs[n]
		saveSpec(w, &js.spec)
		w.Dur(js.submittedAt)
		w.Dur(js.finishedAt)
		w.Bool(js.done)
		for i := range js.spec.Stages {
			st := js.stages[js.spec.Stages[i].Name]
			w.Bool(st.launched)
			w.Int(st.remaining)
			keys := make([]string, 0, len(st.retries))
			for k := range st.retries {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			w.Int(len(keys))
			for _, k := range keys {
				w.Str(k)
				w.Int(st.retries[k])
			}
		}
	}
	pods := make([]string, 0, len(r.inflight))
	for p := range r.inflight {
		pods = append(pods, p)
	}
	sort.Strings(pods)
	w.Int(len(pods))
	for _, p := range pods {
		ref := r.inflight[p]
		w.Str(p)
		w.Str(ref.job)
		w.Str(ref.stage)
		w.Int(ref.idx)
	}
}

// CkptLoad restores state written by CkptSave into a fresh runner bound
// to the restored cluster. Task completion callbacks are reattached
// separately: the cluster restorer calls ReattachTask per live task pod.
func (r *Runner) CkptLoad(cr *ckpt.Reader) error {
	cr.Begin("batch")
	r.taskSeq = cr.U64()
	nj := cr.Int()
	if cr.Err() != nil {
		return cr.Err()
	}
	if nj < 0 || nj > maxCkptItems {
		return fmt.Errorf("batch: ckpt: job count %d out of range", nj)
	}
	r.jobs = make(map[string]*jobState, nj)
	for i := 0; i < nj; i++ {
		spec, err := loadSpec(cr)
		if err != nil {
			return err
		}
		js := &jobState{
			spec:        spec,
			stages:      make(map[string]*stageState, len(spec.Stages)),
			submittedAt: cr.Dur(),
			finishedAt:  cr.Dur(),
			done:        cr.Bool(),
		}
		for si := range spec.Stages {
			s := &spec.Stages[si]
			st := &stageState{spec: s, retries: make(map[string]int)}
			st.launched = cr.Bool()
			st.remaining = cr.Int()
			nr := cr.Int()
			if cr.Err() != nil {
				return cr.Err()
			}
			if nr < 0 || nr > maxCkptItems {
				return fmt.Errorf("batch: ckpt: retry count %d out of range", nr)
			}
			for j := 0; j < nr; j++ {
				k := cr.Str()
				st.retries[k] = cr.Int()
			}
			js.stages[s.Name] = st
		}
		r.jobs[spec.Name] = js
	}
	np := cr.Int()
	if cr.Err() != nil {
		return cr.Err()
	}
	if np < 0 || np > maxCkptItems {
		return fmt.Errorf("batch: ckpt: inflight count %d out of range", np)
	}
	r.inflight = make(map[string]taskRef, np)
	for i := 0; i < np; i++ {
		p := cr.Str()
		r.inflight[p] = taskRef{job: cr.Str(), stage: cr.Str(), idx: cr.Int()}
	}
	return cr.Err()
}
