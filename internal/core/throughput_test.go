package core

import (
	"testing"
	"time"

	"evolve/internal/cluster"
	"evolve/internal/plo"
	"evolve/internal/resource"
	"evolve/internal/sim"
	"evolve/internal/workload"
)

// TestThroughputPLOClosedLoop verifies the controller handles
// throughput-floor objectives end-to-end: a streaming-style service whose
// PLO is "deliver at least the offered rate" must be grown out of an
// under-provisioned start until it stops shedding load, and must not be
// shrunk back into violation afterwards.
func TestThroughputPLOClosedLoop(t *testing.T) {
	eng := sim.NewEngine(77)
	cfg := cluster.DefaultConfig()
	cfg.MeasurementNoise = 0.02
	c := cluster.New(eng, cfg)
	if err := c.AddNodes("n", 4, resource.New(32000, 128<<30, 2e9, 4e9)); err != nil {
		t.Fatal(err)
	}
	spec := workload.Service(workload.Web, "stream", 500, 2)
	// Throughput floor at the offered rate; start with capacity for only
	// ~40% of it so the loop must grow.
	spec.PLO = plo.MinThroughput(500)
	spec.InitialAlloc = spec.Model.DemandFor(200, 2, 0.7).Max(spec.MinAlloc)
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("stream", workload.Constant(500).Rate); err != nil {
		t.Fatal(err)
	}
	ctrl := New("stream", DefaultConfig())
	c.Start()
	eng.Every(15*time.Second, func() {
		obs, err := c.Observe("stream")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ApplyDecision("stream", ctrl.Decide(obs)); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run(40 * time.Minute)

	// Steady state: delivered throughput at the floor.
	thr := c.Metrics().Series("app/stream/throughput")
	tail := thr.WindowStats(30*time.Minute, 40*time.Minute)
	if tail.Mean < 500*0.95 {
		t.Errorf("steady throughput = %v, want ≈500", tail.Mean)
	}
	// Violations confined to the initial under-provisioned stretch.
	viol := c.Metrics().Series("app/stream/violation").TimeWeightedMean(10*time.Minute, 40*time.Minute)
	if viol > 0.05 {
		t.Errorf("violation fraction after convergence = %v", viol)
	}
}

// TestThroughputPLODoesNotOverShrink: once the floor is met, slack
// reclamation must stop above the floor rather than cutting back into
// shedding.
func TestThroughputPLODoesNotOverShrink(t *testing.T) {
	eng := sim.NewEngine(78)
	cfg := cluster.DefaultConfig()
	cfg.MeasurementNoise = 0
	c := cluster.New(eng, cfg)
	if err := c.AddNodes("n", 4, resource.New(32000, 128<<30, 2e9, 4e9)); err != nil {
		t.Fatal(err)
	}
	spec := workload.Service(workload.Web, "stream", 300, 2)
	spec.PLO = plo.MinThroughput(300)
	// Start over-provisioned 4x.
	spec.InitialAlloc = spec.Model.DemandFor(1200, 2, 0.7).Max(spec.MinAlloc)
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("stream", workload.Constant(300).Rate); err != nil {
		t.Fatal(err)
	}
	ctrl := New("stream", DefaultConfig())
	c.Start()
	eng.Every(15*time.Second, func() {
		obs, err := c.Observe("stream")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ApplyDecision("stream", ctrl.Decide(obs)); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run(time.Hour)

	// Allocation must have been reclaimed substantially…
	alloc := c.Metrics().Series("app/stream/alloc/cpu")
	first := alloc.Samples()[0].Value
	last, _ := alloc.Last()
	if last.Value > first*0.6 {
		t.Errorf("slack not reclaimed: %v -> %v", first, last.Value)
	}
	// …without sustained shedding in the second half.
	viol := c.Metrics().Series("app/stream/violation").TimeWeightedMean(30*time.Minute, time.Hour)
	if viol > 0.05 {
		t.Errorf("reclamation caused shedding: violation fraction %v", viol)
	}
}
