package core

import (
	"math"
	"testing"
	"time"

	"evolve/internal/cluster"
	"evolve/internal/control"
	"evolve/internal/metrics"
	"evolve/internal/plo"
	"evolve/internal/resource"
	"evolve/internal/sim"
	"evolve/internal/workload"
)

// newRig builds a cluster with one archetype service under a load pattern
// and wires the given controller into a 15s control loop.
func newRig(t *testing.T, a workload.Archetype, baseRate float64, pattern workload.Pattern, ctrl control.Controller) *cluster.Cluster {
	t.Helper()
	eng := sim.NewEngine(101)
	cfg := cluster.DefaultConfig()
	cfg.MeasurementNoise = 0.02
	c := cluster.New(eng, cfg)
	if err := c.AddNodes("n", 6, resource.New(32000, 128<<30, 2e9, 4e9)); err != nil {
		t.Fatal(err)
	}
	spec := workload.Service(a, "svc", baseRate, 2)
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("svc", pattern.Rate); err != nil {
		t.Fatal(err)
	}
	c.Start()
	eng.Every(15*time.Second, func() {
		obs, err := c.Observe("svc")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ApplyDecision("svc", ctrl.Decide(obs)); err != nil {
			t.Fatal(err)
		}
	})
	return c
}

func TestDemandModelLearnsPerOpCosts(t *testing.T) {
	m := NewDemandModel(0.3)
	if m.Ready() {
		t.Error("fresh model should not be ready")
	}
	obs := control.Observation{
		ReadyReplicas: 2,
		Throughput:    200, // 100 op/s per replica
		Usage:         resource.New(1000, 512<<20, 2e6, 5e6),
	}
	for i := 0; i < 5; i++ {
		m.Observe(obs)
	}
	if !m.Ready() {
		t.Fatal("model should be ready after 5 samples")
	}
	// Per-op CPU = 1000 mc / 100 op/s = 10 mc·s.
	if got := m.PerOp()[resource.CPU]; math.Abs(got-10) > 0.5 {
		t.Errorf("per-op cpu = %v, want ≈10", got)
	}
	if got := m.Mem(); math.Abs(got-float64(512<<20)) > 1e6 {
		t.Errorf("mem = %v, want ≈512Mi", got)
	}
	// Floor at 400 op/s over 2 replicas, util 0.7: cpu = 10*200/0.7.
	floor := m.Floor(400, 2, 0.7)
	if math.Abs(floor[resource.CPU]-10*200/0.7) > 10 {
		t.Errorf("floor cpu = %v", floor[resource.CPU])
	}
	// Zero-replica and unready guards.
	if !(NewDemandModel(0.3).Floor(100, 1, 0.7)).IsZero() {
		t.Error("unready model floor should be zero")
	}
}

func TestDemandModelIgnoresGarbage(t *testing.T) {
	m := NewDemandModel(0.3)
	m.Observe(control.Observation{ReadyReplicas: 0, Throughput: 100})
	if m.Samples() != 0 {
		t.Error("zero replicas should be skipped")
	}
	m.Observe(control.Observation{ReadyReplicas: 1, Throughput: 0, Usage: resource.New(1, 1, 1, 1)})
	// Throughput 0: rate kinds skipped, memory still absorbed.
	if m.Samples() != 1 || m.PerOp()[resource.CPU] != 0 {
		t.Errorf("samples=%d perOp=%v", m.Samples(), m.PerOp())
	}
}

func TestDemandModelReplicasFor(t *testing.T) {
	m := NewDemandModel(0.3)
	for i := 0; i < 5; i++ {
		m.Observe(control.Observation{
			ReadyReplicas: 1,
			Throughput:    100,
			Usage:         resource.New(1000, 1<<30, 0, 0), // 10 mc·s/op
		})
	}
	maxAlloc := resource.New(2000, 8<<30, 1e9, 1e9)
	// Capacity per replica = 2000*0.7/10 = 140 op/s.
	if n := m.ReplicasFor(100, maxAlloc, 0.7); n != 1 {
		t.Errorf("ReplicasFor(100) = %d, want 1", n)
	}
	if n := m.ReplicasFor(500, maxAlloc, 0.7); n != 4 {
		t.Errorf("ReplicasFor(500) = %d, want 4", n)
	}
	if n := NewDemandModel(0.3).ReplicasFor(500, maxAlloc, 0.7); n != 1 {
		t.Errorf("unready model should say 1, got %d", n)
	}
}

func TestDecideHoldsOnZeroInterval(t *testing.T) {
	a := New("svc", DefaultConfig())
	obs := control.Observation{Replicas: 3, Alloc: resource.New(500, 1<<30, 1e6, 1e6)}
	d := a.Decide(obs)
	if d.Replicas != 3 || d.Alloc != obs.Alloc {
		t.Errorf("zero-interval decision = %+v", d)
	}
	if a.Name() != "evolve" {
		t.Error("name wrong")
	}
}

func TestDecideGrowsUnderPLOViolation(t *testing.T) {
	a := New("svc", DefaultConfig())
	obs := control.Observation{
		App:      "svc",
		Interval: 15 * time.Second,
		PLO:      plo.Latency(100 * time.Millisecond),
		SLI:      0.4, // 4x over target
		Replicas: 2, ReadyReplicas: 2,
		Alloc:       resource.New(1000, 1<<30, 50e6, 50e6),
		Usage:       resource.New(950, 900<<20, 10e6, 10e6),
		Utilisation: resource.New(0.95, 0.88, 0.2, 0.2),
		OfferedLoad: 300,
		Throughput:  200,
		Limits:      control.Limits{MinReplicas: 1, MaxReplicas: 10, MinAlloc: resource.New(50, 64<<20, 1e6, 1e6), MaxAlloc: resource.New(16000, 64<<30, 1e9, 1e9)},
	}
	d := a.Decide(obs)
	if d.Alloc[resource.CPU] <= obs.Alloc[resource.CPU] {
		t.Errorf("cpu should grow: %v -> %v", obs.Alloc[resource.CPU], d.Alloc[resource.CPU])
	}
	// CPU (util 0.95) must grow proportionally more than disk (util 0.2).
	cpuGrow := d.Alloc[resource.CPU] / obs.Alloc[resource.CPU]
	diskGrow := d.Alloc[resource.DiskIO] / obs.Alloc[resource.DiskIO]
	if cpuGrow <= diskGrow {
		t.Errorf("bottleneck cpu grew %vx vs disk %vx", cpuGrow, diskGrow)
	}
}

func TestClosedLoopMeetsPLOUnderRamp(t *testing.T) {
	ctrl := New("svc", DefaultConfig())
	// Load triples over 20 minutes.
	pattern := workload.Ramp{From: 200, To: 600, Start: 10 * time.Minute, Length: 20 * time.Minute}
	c := newRig(t, workload.Web, 200, pattern, ctrl)
	c.Engine().Run(45 * time.Minute)

	tr, err := c.Tracker("svc")
	if err != nil {
		t.Fatal(err)
	}
	if f := tr.ViolationFraction(); f > 0.10 {
		t.Errorf("violation fraction = %.3f, want <= 0.10 under a 3x ramp", f)
	}
	// Allocation must have followed the load up.
	alloc := c.Metrics().Series("app/svc/alloc/cpu")
	first := alloc.Samples()[0].Value
	last, _ := alloc.Last()
	app, _ := c.App("svc")
	grown := last.Value*float64(app.DesiredReplicas) > first*1.5
	if !grown {
		t.Errorf("total cpu did not track the ramp: %v x1 -> %v x%d", first, last.Value, app.DesiredReplicas)
	}
}

func TestClosedLoopReclaimsSlackAfterPeak(t *testing.T) {
	ctrl := New("svc", DefaultConfig())
	// Load spikes then returns to a low plateau.
	pattern := workload.Func(func(at time.Duration) float64 {
		switch {
		case at < 10*time.Minute:
			return 500
		default:
			return 100
		}
	})
	c := newRig(t, workload.Web, 500, pattern, ctrl)
	c.Engine().Run(60 * time.Minute)

	// In the final stretch the controller must have shrunk total CPU
	// well below the peak-era allocation.
	allocSeries := c.Metrics().Series("app/svc/alloc/cpu")
	repSeries := c.Metrics().Series("app/svc/replicas")
	peakTotal := 0.0
	for _, s := range allocSeries.Window(0, 10*time.Minute) {
		// replicas at same timestamp
		r := valueAt(repSeries, s.At)
		if tot := s.Value * r; tot > peakTotal {
			peakTotal = tot
		}
	}
	endAlloc, _ := allocSeries.Last()
	endRep, _ := repSeries.Last()
	endTotal := endAlloc.Value * endRep.Value
	if endTotal > peakTotal*0.55 {
		t.Errorf("slack not reclaimed: end total cpu %v vs peak %v", endTotal, peakTotal)
	}
	// And the PLO must still hold at the end.
	tr, _ := c.Tracker("svc")
	if f := tr.ViolationFraction(); f > 0.12 {
		t.Errorf("violations = %.3f", f)
	}
}

func valueAt(s *metrics.Series, at time.Duration) float64 {
	w := s.Window(at-time.Second, at)
	if len(w) == 0 {
		return 1
	}
	return w[len(w)-1].Value
}

func TestScaleOutWhenCeilingSaturated(t *testing.T) {
	cfg := DefaultConfig()
	a := New("svc", cfg)
	// Train the model: 10 mc·s/op.
	for i := 0; i < 5; i++ {
		a.model.Observe(control.Observation{
			ReadyReplicas: 2, Throughput: 300,
			Usage: resource.New(1500, 1<<30, 1e6, 1e6),
		})
	}
	obs := control.Observation{
		Interval: 15 * time.Second,
		PLO:      plo.Latency(100 * time.Millisecond),
		SLI:      0.5,
		Replicas: 2, ReadyReplicas: 2,
		Alloc:       resource.New(1950, 1<<30, 50e6, 50e6), // at ceiling
		Usage:       resource.New(1900, 800<<20, 1e6, 1e6),
		Utilisation: resource.New(0.97, 0.8, 0.02, 0.02),
		OfferedLoad: 800,
		Throughput:  350,
		Limits: control.Limits{
			MinReplicas: 1, MaxReplicas: 20,
			MinAlloc: resource.New(50, 64<<20, 1e6, 1e6),
			MaxAlloc: resource.New(2000, 8<<30, 1e9, 1e9),
		},
	}
	d := a.Decide(obs)
	if d.Replicas <= 2 {
		t.Errorf("replicas = %d, want scale-out beyond 2", d.Replicas)
	}
	// Model-guided: 800 op/s * 10 mc·s / (2000*0.7) ≈ 5.7 → 6 replicas.
	if d.Replicas < 5 {
		t.Errorf("replicas = %d, want model-guided jump to ≈6", d.Replicas)
	}
}

func TestScaleInRequiresConsecutiveEligibility(t *testing.T) {
	cfg := DefaultConfig()
	a := New("svc", cfg)
	for i := 0; i < 5; i++ {
		a.model.Observe(control.Observation{
			ReadyReplicas: 4, Throughput: 100,
			Usage: resource.New(250, 1<<30, 1e6, 1e6), // 10 mc·s/op
		})
	}
	obs := control.Observation{
		Interval: 15 * time.Second,
		PLO:      plo.Latency(100 * time.Millisecond),
		SLI:      0.02, // comfortably met
		Replicas: 4, ReadyReplicas: 4,
		Alloc:       resource.New(1000, 1<<30, 50e6, 50e6),
		Usage:       resource.New(100, 500<<20, 1e6, 1e6),
		Utilisation: resource.New(0.1, 0.5, 0.02, 0.02),
		OfferedLoad: 40,
		Throughput:  40,
		Limits: control.Limits{
			MinReplicas: 1, MaxReplicas: 20,
			MinAlloc: resource.New(50, 64<<20, 1e6, 1e6),
			MaxAlloc: resource.New(2000, 8<<30, 1e9, 1e9),
		},
	}
	reps := []int{}
	for i := 0; i < cfg.ScaleInHold; i++ {
		d := a.Decide(obs)
		reps = append(reps, d.Replicas)
	}
	for i := 0; i < cfg.ScaleInHold-1; i++ {
		if reps[i] != 4 {
			t.Errorf("decision %d scaled in too early: %d", i, reps[i])
		}
	}
	// The ScaleInHold-th consecutive eligible decision scales in.
	if last := reps[cfg.ScaleInHold-1]; last >= 4 {
		t.Errorf("never scaled in: %v", reps)
	}
}

func TestSingleResourceOnlyTouchesCPU(t *testing.T) {
	s := NewSingleResource("svc")
	if s.Name() != "pid-cpu-only" {
		t.Error("name wrong")
	}
	obs := control.Observation{
		Interval: 15 * time.Second,
		PLO:      plo.Latency(100 * time.Millisecond),
		SLI:      0.3,
		Replicas: 2, ReadyReplicas: 2,
		Alloc:       resource.New(1000, 1<<30, 50e6, 50e6),
		Utilisation: resource.New(0.5, 0.99, 0.99, 0.99),
		Limits: control.Limits{
			MinReplicas: 1,
			MinAlloc:    resource.New(50, 64<<20, 1e6, 1e6),
			MaxAlloc:    resource.New(16000, 64<<30, 1e9, 1e9),
		},
	}
	d := s.Decide(obs)
	if d.Alloc[resource.CPU] <= obs.Alloc[resource.CPU] {
		t.Error("cpu should grow under violation")
	}
	for _, k := range []resource.Kind{resource.Memory, resource.DiskIO, resource.NetIO} {
		if d.Alloc[k] != obs.Alloc[k] {
			t.Errorf("%v changed: %v -> %v", k, obs.Alloc[k], d.Alloc[k])
		}
	}
	if d2 := s.Decide(control.Observation{Replicas: 1, Alloc: obs.Alloc}); d2.Replicas != 1 {
		t.Error("zero interval should hold")
	}
}

func TestRationaleNarratesDecisions(t *testing.T) {
	a := New("svc", DefaultConfig())
	if a.Rationale() != "" {
		t.Error("rationale should be empty before the first decision")
	}
	obs := control.Observation{
		Interval: 15 * time.Second,
		PLO:      plo.Latency(100 * time.Millisecond),
		SLI:      0.05,
		Replicas: 2, ReadyReplicas: 2,
		Alloc:       resource.New(1000, 1<<30, 50e6, 50e6),
		Usage:       resource.New(700, 700<<20, 10e6, 10e6),
		Utilisation: resource.New(0.7, 0.68, 0.2, 0.2),
		OfferedLoad: 200, Throughput: 200,
		Limits: control.Limits{MinReplicas: 1, MaxReplicas: 10,
			MinAlloc: resource.New(50, 64<<20, 1e6, 1e6),
			MaxAlloc: resource.New(8000, 32<<30, 500e6, 1e9)},
	}
	a.Decide(obs)
	if a.Rationale() == "" {
		t.Error("rationale should be set after Decide")
	}
	// Drive a violation: rationale should mention growth or the floor.
	obs.SLI = 0.4
	obs.Utilisation = resource.New(0.95, 0.6, 0.2, 0.2)
	a.Decide(obs)
	r := a.Rationale()
	if r == "" {
		t.Fatal("empty rationale under violation")
	}
}

func TestAIMDBacksOffUtilTargetUnderViolations(t *testing.T) {
	a := New("svc", DefaultConfig())
	obs := control.Observation{
		Interval: 15 * time.Second,
		PLO:      plo.Latency(100 * time.Millisecond),
		SLI:      0.15, // persistently violating
		Replicas: 2, ReadyReplicas: 2,
		Alloc:       resource.New(1000, 1<<30, 50e6, 50e6),
		Usage:       resource.New(700, 700<<20, 10e6, 10e6),
		Utilisation: resource.New(0.7, 0.68, 0.2, 0.2),
		OfferedLoad: 200, Throughput: 200,
		Limits: control.Limits{MinReplicas: 1, MaxReplicas: 10,
			MinAlloc: resource.New(50, 64<<20, 1e6, 1e6),
			MaxAlloc: resource.New(8000, 32<<30, 500e6, 1e9)},
	}
	start := a.effUtil
	for i := 0; i < 10; i++ {
		a.Decide(obs)
	}
	if a.effUtil >= start {
		t.Errorf("effUtil = %v, should back off from %v under persistent violations", a.effUtil, start)
	}
	if a.effUtil < 0.3 {
		t.Errorf("effUtil = %v fell below the floor", a.effUtil)
	}
	// Comfortable PLO: creeps back up, bounded by the configured target.
	obs.SLI = 0.02
	for i := 0; i < 500; i++ {
		a.Decide(obs)
	}
	if a.effUtil > a.cfg.UtilTarget+1e-9 {
		t.Errorf("effUtil = %v exceeded the configured target %v", a.effUtil, a.cfg.UtilTarget)
	}
	if a.effUtil < 0.5 {
		t.Errorf("effUtil = %v did not recover", a.effUtil)
	}
}

func TestNewClampsBadConfig(t *testing.T) {
	a := New("svc", Config{UtilTarget: 7, ScaleInMargin: 0.1})
	if a.cfg.UtilTarget != DefaultConfig().UtilTarget {
		t.Errorf("UtilTarget = %v", a.cfg.UtilTarget)
	}
	if a.cfg.ScaleInMargin != DefaultConfig().ScaleInMargin {
		t.Errorf("ScaleInMargin = %v", a.cfg.ScaleInMargin)
	}
	if a.cfg.ScaleInHold <= 0 || a.cfg.ScaleOutErr <= 0 {
		t.Error("holds not defaulted")
	}
}

func TestFactoryProducesIndependentControllers(t *testing.T) {
	f := Factory(DefaultConfig())
	a, b := f("a"), f("b")
	if a == b {
		t.Error("factory must build fresh controllers")
	}
	if a.Name() != "evolve" {
		t.Error("factory controller name")
	}
	sf := SingleResourceFactory()
	if sf("x").Name() != "pid-cpu-only" {
		t.Error("single-resource factory name")
	}
}
