package core

import (
	"evolve/internal/ckpt"
	"evolve/internal/obs"
	"evolve/internal/resource"
)

// Checkpoint serialisation for the EVOLVE controllers (the control
// loop's StateSaver hook). Configuration is reconstructed; only state
// accumulated by Decide is written.

// CkptSave implements control.StateSaver.
func (a *Autoscaler) CkptSave(w *ckpt.Writer) {
	a.multi.CkptSave(w)
	a.model.perOp.CkptSave(w)
	w.F64(a.model.mem)
	w.Int(a.model.samples)
	w.Int(a.scaleInStreak)
	w.Int(a.decisions)
	w.Str(a.rationale)
	obs.SaveControlTrace(w, a.lastTrace)
	w.F64(a.effUtil)
}

// CkptLoad implements control.StateSaver.
func (a *Autoscaler) CkptLoad(r *ckpt.Reader) error {
	if err := a.multi.CkptLoad(r); err != nil {
		return err
	}
	a.model.perOp = resource.LoadVector(r)
	a.model.mem = r.F64()
	a.model.samples = r.Int()
	a.scaleInStreak = r.Int()
	a.decisions = r.Int()
	a.rationale = r.Str()
	a.lastTrace = obs.LoadControlTrace(r)
	a.effUtil = r.F64()
	return r.Err()
}

// CkptSave implements control.StateSaver.
func (s *SingleResource) CkptSave(w *ckpt.Writer) {
	s.ctrl.CkptSave(w)
	s.tun.CkptSave(w)
	obs.SaveControlTrace(w, s.lastTrace)
}

// CkptLoad implements control.StateSaver.
func (s *SingleResource) CkptLoad(r *ckpt.Reader) error {
	if err := s.ctrl.CkptLoad(r); err != nil {
		return err
	}
	if err := s.tun.CkptLoad(r); err != nil {
		return err
	}
	s.lastTrace = obs.LoadControlTrace(r)
	return r.Err()
}
