package core

import (
	"testing"
	"time"

	"evolve/internal/control"
	"evolve/internal/obs"
	"evolve/internal/plo"
	"evolve/internal/resource"
)

var (
	_ control.Traceable = (*Autoscaler)(nil)
	_ control.Traceable = (*SingleResource)(nil)
)

func violationObs() control.Observation {
	return control.Observation{
		App:      "svc",
		Interval: 15 * time.Second,
		PLO:      plo.Latency(100 * time.Millisecond),
		SLI:      0.4,
		Replicas: 2, ReadyReplicas: 2,
		Alloc:       resource.New(1000, 1<<30, 50e6, 50e6),
		Usage:       resource.New(950, 900<<20, 10e6, 10e6),
		Utilisation: resource.New(0.95, 0.88, 0.2, 0.2),
		OfferedLoad: 300,
		Throughput:  200,
		Limits:      control.Limits{MinReplicas: 1, MaxReplicas: 10, MinAlloc: resource.New(50, 64<<20, 1e6, 1e6), MaxAlloc: resource.New(16000, 64<<30, 1e9, 1e9)},
	}
}

func TestAutoscalerDecisionTrace(t *testing.T) {
	a := New("svc", DefaultConfig())
	if tr := a.DecisionTrace(); tr != (obs.ControlTrace{}) {
		t.Fatalf("fresh autoscaler trace = %+v, want zero", tr)
	}
	o := violationObs()
	a.Decide(o)
	tr := a.DecisionTrace()
	if tr.Stage == "" {
		t.Fatal("trace stage empty after Decide")
	}
	if tr.UtilTarget <= 0 || tr.UtilTarget > 1 {
		t.Fatalf("util target = %v", tr.UtilTarget)
	}
	// Every resource loop ran: each kind has gains, and the bottleneck
	// (CPU at 0.95 utilisation against a 4x PLO overshoot) saw a
	// positive control error.
	for k := resource.Kind(0); k < resource.NumKinds; k++ {
		if tr.Gains[k] == (obs.GainSet{}) {
			t.Errorf("gains for %v are zero", k)
		}
	}
	cpu := tr.Terms[resource.CPU]
	if cpu.Err <= 0 || cpu.Out <= 0 {
		t.Fatalf("cpu term %+v, want positive error and output under violation", cpu)
	}
	// The decomposition invariant carries through from pid.Term.
	if sum := cpu.P + cpu.I + cpu.D; sum != cpu.Out {
		t.Fatalf("cpu P+I+D = %v, Out = %v", sum, cpu.Out)
	}
}

func TestSingleResourceDecisionTrace(t *testing.T) {
	s := NewSingleResource("svc")
	o := violationObs()
	s.Decide(o)
	tr := s.DecisionTrace()
	if tr.Stage == "" {
		t.Fatal("trace stage empty after Decide")
	}
	if tr.Terms[resource.CPU] == (obs.PIDTerm{}) {
		t.Fatal("cpu term not populated")
	}
	if tr.Gains[resource.CPU] == (obs.GainSet{}) {
		t.Fatal("cpu gains not populated")
	}
	// Single-resource controller must leave every other kind untouched.
	for k := resource.Kind(1); k < resource.NumKinds; k++ {
		if tr.Terms[k] != (obs.PIDTerm{}) || tr.Gains[k] != (obs.GainSet{}) {
			t.Errorf("kind %v leaked into a cpu-only trace", k)
		}
	}
}
