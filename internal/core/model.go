// Package core implements the EVOLVE resource controller — the paper's
// primary contribution: a per-application, multi-resource, adaptive PID
// autoscaler that maps a performance-level objective (PLO) to CPU, memory,
// disk-I/O and network allocations, building a demand model on the fly and
// combining in-place vertical resizing with horizontal replica scaling.
package core

import (
	"math"

	"evolve/internal/control"
	"evolve/internal/resource"
)

// DemandModel learns, online, how much of each resource one operation of
// the application consumes, plus the per-replica memory working set. It
// is the "model built on the fly" that turns the controller from purely
// reactive into predictive: when the offered load swings, the model
// provides an allocation floor before the PID loop has even seen the
// resulting latency.
type DemandModel struct {
	alpha float64 // EWMA smoothing factor

	perOp   resource.Vector // per-op usage of rate resources (CPU mc·s, bytes)
	mem     float64         // per-replica working set estimate (bytes)
	samples int
}

// NewDemandModel returns a model with the given smoothing factor
// (0 < alpha <= 1; typical 0.25).
func NewDemandModel(alpha float64) *DemandModel {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	return &DemandModel{alpha: alpha}
}

// Samples returns how many observations the model has absorbed.
func (m *DemandModel) Samples() int { return m.samples }

// PerOp returns the current per-operation demand estimate (Memory
// component is zero; see Mem).
func (m *DemandModel) PerOp() resource.Vector { return m.perOp }

// Mem returns the per-replica working-set estimate in bytes.
func (m *DemandModel) Mem() float64 { return m.mem }

// Observe absorbs one control-period observation. Only meaningful when
// the application actually served load during the period; saturated
// periods are skipped entirely, because a saturated replica pegs its CPU
// and inflates its queue working set — learning per-op costs from that
// state would corrupt the model exactly when it matters most.
func (m *DemandModel) Observe(obs control.Observation) {
	if obs.ReadyReplicas <= 0 || obs.Saturated {
		return
	}
	perReplicaRate := obs.Throughput / float64(obs.ReadyReplicas)
	if perReplicaRate > 1e-9 {
		for _, k := range []resource.Kind{resource.CPU, resource.DiskIO, resource.NetIO} {
			sample := obs.Usage[k] / perReplicaRate
			if sample < 0 || math.IsNaN(sample) || math.IsInf(sample, 0) {
				continue
			}
			if m.samples == 0 {
				m.perOp[k] = sample
			} else {
				m.perOp[k] += m.alpha * (sample - m.perOp[k])
			}
		}
	}
	if ws := obs.Usage[resource.Memory]; ws > 0 {
		if m.samples == 0 {
			m.mem = ws
		} else {
			m.mem += m.alpha * (ws - m.mem)
		}
	}
	m.samples++
}

// Ready reports whether the model has seen enough data to be trusted.
func (m *DemandModel) Ready() bool { return m.samples >= 3 }

// Floor predicts the per-replica allocation needed to serve the offered
// load over the given replica count at the target utilisation. Returns
// the zero vector until the model is Ready.
func (m *DemandModel) Floor(offered float64, replicas int, utilTarget float64) resource.Vector {
	if !m.Ready() || replicas < 1 {
		return resource.Vector{}
	}
	if utilTarget <= 0 || utilTarget > 1 {
		utilTarget = 0.7
	}
	perReplica := offered / float64(replicas)
	var floor resource.Vector
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO, resource.NetIO} {
		floor[k] = m.perOp[k] * perReplica / utilTarget
	}
	floor[resource.Memory] = m.mem / utilTarget
	return floor
}

// ReplicasFor returns the minimum replica count able to serve the
// offered load with each replica staying within maxAlloc at the target
// utilisation. Returns 1 until the model is Ready.
func (m *DemandModel) ReplicasFor(offered float64, maxAlloc resource.Vector, utilTarget float64) int {
	if !m.Ready() || offered <= 0 {
		return 1
	}
	if utilTarget <= 0 || utilTarget > 1 {
		utilTarget = 0.7
	}
	need := 1.0
	for _, k := range []resource.Kind{resource.CPU, resource.DiskIO, resource.NetIO} {
		if maxAlloc[k] <= 0 || m.perOp[k] <= 0 {
			continue
		}
		capacityPerReplica := maxAlloc[k] * utilTarget / m.perOp[k] // ops/s
		if capacityPerReplica <= 0 {
			continue
		}
		if n := offered / capacityPerReplica; n > need {
			need = n
		}
	}
	return int(math.Ceil(need - 1e-9))
}
