package core

import (
	"fmt"
	"math"
	"time"

	"evolve/internal/control"
	"evolve/internal/obs"
	"evolve/internal/pid"
	"evolve/internal/resource"
)

// Config parameterises the EVOLVE controller. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Multi configures the multi-resource adaptive PID stage.
	Multi pid.MultiConfig

	// UtilTarget is the per-resource utilisation the controller steers
	// allocations towards (shared with the PID slack stage).
	UtilTarget float64

	// Feedforward enables the learned demand-model floor, which
	// pre-provisions for observed load before latency degrades.
	Feedforward bool
	// ModelAlpha is the demand-model EWMA factor.
	ModelAlpha float64

	// Horizontal enables replica scaling. When vertical scaling
	// saturates against the per-replica ceiling, replicas are added;
	// when the model says fewer replicas suffice, they are removed
	// after ScaleInHold consecutive eligible decisions.
	Horizontal bool
	// ScaleOutErr is the PLO error above which a ceiling-saturated
	// application scales out immediately.
	ScaleOutErr float64
	// ScaleInHold is the number of consecutive scale-in-eligible
	// decisions required before removing replicas (flap damping).
	ScaleInHold int
	// ScaleInMargin inflates the modelled replica requirement before
	// scale-in so the system keeps headroom (e.g. 1.25).
	ScaleInMargin float64
}

// DefaultConfig returns the configuration used across the evaluation.
func DefaultConfig() Config {
	mc := pid.DefaultMultiConfig()
	mc.Controller.OutMin = -0.25
	mc.Controller.OutMax = 1.0
	mc.Controller.Gains = pid.Gains{Kp: 0.6, Ki: 0.15, Kd: 0.05}
	mc.Controller.DerivativeTau = 10 * time.Second
	return Config{
		Multi:         mc,
		UtilTarget:    0.7,
		Feedforward:   true,
		ModelAlpha:    0.25,
		Horizontal:    true,
		ScaleOutErr:   0.1,
		ScaleInHold:   3,
		ScaleInMargin: 1.25,
	}
}

// Autoscaler is the EVOLVE controller for one application. It implements
// control.Controller.
type Autoscaler struct {
	app   string
	cfg   Config
	multi *pid.Multi
	model *DemandModel

	scaleInStreak int
	decisions     int
	rationale     string
	lastTrace     obs.ControlTrace
	// effUtil is the adaptive utilisation setpoint: it starts at
	// cfg.UtilTarget and backs off (AIMD) whenever running that hot
	// violates the PLO — tail-latency objectives bound the feasible
	// utilisation, and the bound is discovered, not configured.
	effUtil float64
}

// New builds an autoscaler for the application. Out-of-range tuning
// fields fall back to their defaults, so a partially-filled Config is
// always safe to use.
func New(app string, cfg Config) *Autoscaler {
	def := DefaultConfig()
	if cfg.UtilTarget <= 0 || cfg.UtilTarget >= 1 {
		cfg.UtilTarget = def.UtilTarget
	}
	if cfg.ScaleOutErr <= 0 {
		cfg.ScaleOutErr = def.ScaleOutErr
	}
	if cfg.ScaleInHold <= 0 {
		cfg.ScaleInHold = def.ScaleInHold
	}
	if cfg.ScaleInMargin < 1 {
		cfg.ScaleInMargin = def.ScaleInMargin
	}
	if cfg.Multi.Controller.OutMax <= cfg.Multi.Controller.OutMin {
		cfg.Multi = def.Multi
	}
	cfg.Multi.UtilTarget = cfg.UtilTarget
	return &Autoscaler{
		app:     app,
		cfg:     cfg,
		multi:   pid.MustMulti(cfg.Multi),
		model:   NewDemandModel(cfg.ModelAlpha),
		effUtil: cfg.UtilTarget,
	}
}

// Factory returns a control.Factory for this configuration.
func Factory(cfg Config) control.Factory {
	return func(app string) control.Controller { return New(app, cfg) }
}

// Name implements control.Controller.
func (a *Autoscaler) Name() string { return "evolve" }

// Model exposes the learned demand model (tests, introspection).
func (a *Autoscaler) Model() *DemandModel { return a.model }

// Adaptations returns the cumulative PID gain adaptations.
func (a *Autoscaler) Adaptations() int { return a.multi.Adaptations() }

// Rationale explains the most recent decision in one line — what the
// controller saw and which stage drove the change. Empty until the first
// Decide.
func (a *Autoscaler) Rationale() string { return a.rationale }

// Decide implements control.Controller: one full control step.
func (a *Autoscaler) Decide(o control.Observation) control.Decision {
	if o.Interval <= 0 {
		return control.Hold(o)
	}
	a.decisions++
	a.model.Observe(o)

	perfErr := o.PerfError()
	alloc := o.Alloc

	// Stage 0 — adapt the utilisation setpoint (AIMD): back off
	// multiplicatively while the PLO is missed, creep back additively
	// while it is comfortably met. The steady-state setpoint is the
	// highest utilisation this application's objective tolerates.
	switch {
	case perfErr > 0.05:
		a.effUtil = math.Max(0.3, a.effUtil*0.93)
	case perfErr < -0.3:
		a.effUtil = math.Min(a.cfg.UtilTarget, a.effUtil+0.005)
	}
	a.multi.SetUtilTarget(a.effUtil)

	// Stage 1 — multi-resource adaptive PID on the PLO error.
	out := a.multi.Update(perfErr, o.Utilisation, o.Interval)
	grewKind, grewMax := resource.CPU, 0.0
	for _, k := range resource.Kinds() {
		alloc[k] *= 1 + out[k]
		if out[k] > grewMax {
			grewKind, grewMax = k, out[k]
		}
	}

	// Stage 2 — feedforward floor from the learned demand model: never
	// allocate below what the observed load is known to need. This is
	// what lets the controller ride a load ramp without waiting for the
	// PLO to degrade first.
	flooredKinds := 0
	if a.cfg.Feedforward {
		floor := a.model.Floor(o.OfferedLoad, maxInt(o.ReadyReplicas, 1), a.effUtil)
		for _, k := range resource.Kinds() {
			if floor[k] > alloc[k] {
				flooredKinds++
			}
		}
		alloc = alloc.Max(floor)
	}

	replicas := o.Replicas

	// Stage 3 — horizontal scaling.
	if a.cfg.Horizontal {
		replicas = a.horizontal(o, alloc, perfErr)
	}

	// Capacity-preserving scale-in: the surviving replicas must be sized
	// for the whole load *before* their siblings disappear, or the next
	// period starts with a self-inflicted saturation spike.
	if replicas < o.Replicas {
		floor := a.model.Floor(o.OfferedLoad*a.cfg.ScaleInMargin, replicas, a.effUtil)
		alloc = alloc.Max(floor)
	}

	d := o.Limits.Clamp(control.Decision{Replicas: replicas, Alloc: alloc})
	stage, rationale := a.explain(o, d, perfErr, grewKind, grewMax, flooredKinds)
	a.rationale = rationale
	a.lastTrace = obs.ControlTrace{
		Stage:        stage,
		UtilTarget:   a.effUtil,
		Adaptations:  a.multi.Adaptations(),
		FlooredKinds: flooredKinds,
	}
	terms := a.multi.LastTerms()
	gains := a.multi.LastGains()
	for k := range terms {
		t, g := terms[k], gains[k]
		a.lastTrace.Terms[k] = obs.PIDTerm{Err: t.Err, P: t.P, I: t.I, D: t.D, Out: t.Out, Clamped: t.Clamped}
		a.lastTrace.Gains[k] = obs.GainSet{Kp: g.Kp, Ki: g.Ki, Kd: g.Kd}
	}
	return d
}

// DecisionTrace implements control.Traceable.
func (a *Autoscaler) DecisionTrace() obs.ControlTrace { return a.lastTrace }

// horizontal decides the replica count: scale out when vertical room is
// exhausted and the PLO is suffering, scale in when the demand model says
// fewer replicas comfortably suffice.
func (a *Autoscaler) horizontal(obs control.Observation, wantAlloc resource.Vector, perfErr float64) int {
	replicas := obs.Replicas
	max := obs.Limits.MaxAlloc

	// Ceiling saturation: any dimension of the desired allocation at or
	// beyond ~95% of the per-replica ceiling.
	saturated := false
	for _, k := range resource.Kinds() {
		if max[k] > 0 && wantAlloc[k] >= 0.95*max[k] {
			saturated = true
			break
		}
	}
	if saturated && perfErr > a.cfg.ScaleOutErr {
		a.scaleInStreak = 0
		// Prefer the model's estimate when available; otherwise step.
		if n := a.model.ReplicasFor(obs.OfferedLoad, max, a.effUtil); n > replicas {
			return n
		}
		return replicas + 1
	}

	// Scale-in: the model must say that (replicas-1) suffices with
	// margin, and the PLO must currently be comfortably met.
	if replicas > obs.Limits.MinReplicas && perfErr < 0 && a.model.Ready() {
		needed := a.model.ReplicasFor(obs.OfferedLoad*a.cfg.ScaleInMargin, max, a.effUtil)
		if needed < replicas {
			a.scaleInStreak++
			if a.scaleInStreak >= a.cfg.ScaleInHold {
				a.scaleInStreak = 0
				return maxInt(needed, obs.Limits.MinReplicas)
			}
		} else {
			a.scaleInStreak = 0
		}
	} else {
		a.scaleInStreak = 0
	}
	return replicas
}

// explain summarises one control step for the event journal and names
// the stage that drove it for the decision trace.
func (a *Autoscaler) explain(o control.Observation, d control.Decision, perfErr float64, grewKind resource.Kind, grewMax float64, flooredKinds int) (stage, rationale string) {
	switch {
	case d.Replicas > o.Replicas:
		return "scale-out", fmt.Sprintf("scale out %d→%d: PLO err %+.2f with per-replica ceiling saturated", o.Replicas, d.Replicas, perfErr)
	case d.Replicas < o.Replicas:
		return "scale-in", fmt.Sprintf("scale in %d→%d: model says %d replicas suffice at %.0f op/s", o.Replicas, d.Replicas, d.Replicas, o.OfferedLoad)
	case flooredKinds > 0:
		return "floor", fmt.Sprintf("feedforward floor raised %d dim(s) for %.0f op/s (PLO err %+.2f)", flooredKinds, o.OfferedLoad, perfErr)
	case grewMax > 0.02:
		return "grow", fmt.Sprintf("grew %s %.0f%%: PLO err %+.2f, util %.2f", grewKind, grewMax*100, perfErr, o.Utilisation[grewKind])
	case perfErr <= 0:
		return "steady", fmt.Sprintf("steady: PLO met (err %+.2f), regulating utilisation at %.2f", perfErr, a.effUtil)
	default:
		return "hold", fmt.Sprintf("holding: PLO err %+.2f within deadband", perfErr)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SingleResource is the scalar-PID ablation: the same adaptive PID loop
// applied to CPU only, with the other dimensions frozen at their initial
// allocation. It isolates the contribution of the multi-resource
// extension (Table 2).
type SingleResource struct {
	app       string
	ctrl      *pid.Controller
	tun       *pid.Tuner
	lastTrace obs.ControlTrace
}

// NewSingleResource builds the ablation controller.
func NewSingleResource(app string) *SingleResource {
	cfg := DefaultConfig().Multi.Controller
	ctrl := pid.MustController(cfg)
	return &SingleResource{
		app:  app,
		ctrl: ctrl,
		tun:  pid.NewTuner(ctrl, pid.DefaultTunerConfig()),
	}
}

// SingleResourceFactory returns a control.Factory for the ablation.
func SingleResourceFactory() control.Factory {
	return func(app string) control.Controller { return NewSingleResource(app) }
}

// Name implements control.Controller.
func (s *SingleResource) Name() string { return "pid-cpu-only" }

// Decide implements control.Controller.
func (s *SingleResource) Decide(o control.Observation) control.Decision {
	if o.Interval <= 0 {
		return control.Hold(o)
	}
	// Same error shaping as the multi-resource loop — PLO error gated by
	// utilisation, plus slack/headroom regulation — but applied to the
	// CPU dimension alone.
	e := o.PerfError()
	cpuUtil := o.Utilisation[resource.CPU]
	if e < 0 && cpuUtil >= 0.7 {
		e = 0
	}
	if dev := cpuUtil - 0.7; dev > 0 || e <= 0.1 {
		e += 0.25 * math.Max(dev, -1)
	}
	out := s.ctrl.Update(0, -e, o.Interval)
	s.tun.Observe(e)
	alloc := o.Alloc
	alloc[resource.CPU] *= 1 + out

	stage := "steady"
	switch {
	case out > 0:
		stage = "grow"
	case out < 0:
		stage = "scale-in"
	}
	s.lastTrace = obs.ControlTrace{Stage: stage, UtilTarget: 0.7, Adaptations: s.tun.Adaptations()}
	t, g := s.ctrl.LastTerm(), s.ctrl.Gains()
	s.lastTrace.Terms[resource.CPU] = obs.PIDTerm{Err: t.Err, P: t.P, I: t.I, D: t.D, Out: t.Out, Clamped: t.Clamped}
	s.lastTrace.Gains[resource.CPU] = obs.GainSet{Kp: g.Kp, Ki: g.Ki, Kd: g.Kd}

	return o.Limits.Clamp(control.Decision{Replicas: o.Replicas, Alloc: alloc})
}

// DecisionTrace implements control.Traceable.
func (s *SingleResource) DecisionTrace() obs.ControlTrace { return s.lastTrace }
