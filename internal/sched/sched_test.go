package sched

import (
	"errors"
	"strings"
	"testing"

	"evolve/internal/resource"
)

func node(name string, capMilli float64, allocMilli float64) NodeInfo {
	return NodeInfo{
		Name:        name,
		Allocatable: resource.New(capMilli, 16<<30, 500e6, 1e9),
		Allocated:   resource.New(allocMilli, 0, 0, 0),
	}
}

func pod(name string, cpuMilli float64) PodInfo {
	return PodInfo{Name: name, App: "app", Requests: resource.New(cpuMilli, 1<<30, 10e6, 10e6)}
}

func TestFitFilter(t *testing.T) {
	f := FitFilter{}
	n := node("n1", 4000, 3500)
	p := pod("p", 400)
	if r := f.Filter(&p, &n); r != ReasonNone {
		t.Errorf("should fit: %v", r)
	}
	p = pod("p", 600)
	r := f.Filter(&p, &n)
	if r == ReasonNone || !strings.Contains(string(r), "cpu") {
		t.Errorf("want insufficient cpu, got %v", r)
	}
	// Multiple shortages named, in canonical kind order.
	tiny := NodeInfo{Name: "tiny", Allocatable: resource.New(100, 1<<20, 1, 1)}
	r = f.Filter(&p, &tiny)
	if r != "insufficient cpu,memory,diskio,netio" {
		t.Errorf("want every shortage named, got %q", r)
	}
}

func TestNodeFree(t *testing.T) {
	n := node("n", 4000, 1000)
	free := n.Free()
	if free[resource.CPU] != 3000 {
		t.Errorf("free cpu = %v", free[resource.CPU])
	}
	// Over-allocated clamps to zero, never negative.
	n.Allocated = n.Allocatable.Scale(2)
	if !n.Free().IsZero() {
		t.Errorf("over-allocated free = %v", n.Free())
	}
}

func TestLeastAllocatedPrefersEmpty(t *testing.T) {
	s := New(PolicySpread)
	nodes := []NodeInfo{node("busy", 4000, 3000), node("empty", 4000, 0)}
	got, err := s.Schedule(pod("p", 500), nodes)
	if err != nil || got != "empty" {
		t.Errorf("Schedule = %q, %v; want empty", got, err)
	}
}

func TestBinPackPrefersBusy(t *testing.T) {
	s := New(PolicyBinPack)
	nodes := []NodeInfo{node("busy", 4000, 3000), node("empty", 4000, 0)}
	got, err := s.Schedule(pod("p", 500), nodes)
	if err != nil || got != "busy" {
		t.Errorf("Schedule = %q, %v; want busy", got, err)
	}
}

func TestScheduleDeterministicTieBreak(t *testing.T) {
	s := New(PolicySpread)
	nodes := []NodeInfo{node("zeta", 4000, 0), node("alpha", 4000, 0)}
	got, err := s.Schedule(pod("p", 500), nodes)
	if err != nil || got != "alpha" {
		t.Errorf("tie-break = %q, want alpha", got)
	}
}

func TestUnschedulableMessage(t *testing.T) {
	s := New(PolicySpread)
	nodes := []NodeInfo{node("n1", 1000, 900), node("n2", 1000, 800)}
	_, err := s.Schedule(pod("p", 5000), nodes)
	var u *Unschedulable
	if !errors.As(err, &u) {
		t.Fatalf("want Unschedulable, got %v", err)
	}
	if u.Total != 2 {
		t.Errorf("Total = %d", u.Total)
	}
	if !strings.Contains(u.Error(), "0/2 nodes available") {
		t.Errorf("message = %q", u.Error())
	}
	empty := &Unschedulable{Pod: "p"}
	if !strings.Contains(empty.Error(), "no nodes") {
		t.Errorf("empty message = %q", empty.Error())
	}
}

func TestAppSpreadAvoidsColocation(t *testing.T) {
	s := New(PolicySpread)
	n1 := node("n1", 4000, 1000)
	n1.Pods = []PodInfo{{Name: "app-0", App: "app"}}
	n2 := node("n2", 4000, 1000)
	got, err := s.Schedule(pod("app-1", 500), []NodeInfo{n1, n2})
	if err != nil || got != "n2" {
		t.Errorf("Schedule = %q, want n2 (spread)", got)
	}
}

func TestBalancedAllocationAvoidsLopsided(t *testing.T) {
	p := BalancedAllocation{}
	// Node A would become CPU-heavy; node B stays balanced.
	a := NodeInfo{Name: "a", Allocatable: resource.New(1000, 1000, 1000, 1000), Allocated: resource.New(800, 100, 100, 100)}
	b := NodeInfo{Name: "b", Allocatable: resource.New(1000, 1000, 1000, 1000), Allocated: resource.New(300, 300, 300, 300)}
	req := PodInfo{Requests: resource.New(100, 100, 100, 100)}
	if p.Score(&req, &a) >= p.Score(&req, &b) {
		t.Error("balanced plugin should prefer the balanced node")
	}
}

func TestNewCustomValidation(t *testing.T) {
	if _, err := NewCustom(nil, nil); err == nil {
		t.Error("no filters should fail")
	}
	s, err := NewCustom([]FilterPlugin{FitFilter{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No scorers: still schedulable, score 0 for all, name tie-break.
	got, err := s.Schedule(pod("p", 100), []NodeInfo{node("b", 4000, 0), node("a", 4000, 0)})
	if err != nil || got != "a" {
		t.Errorf("Schedule = %q, %v", got, err)
	}
}

func TestScheduleGangAllOrNothing(t *testing.T) {
	s := New(PolicySpread)
	nodes := []NodeInfo{node("n1", 4000, 0), node("n2", 4000, 0)}
	var gang []PodInfo
	for _, n := range []string{"g-0", "g-1", "g-2", "g-3"} {
		gang = append(gang, pod(n, 1800))
	}
	got, err := s.ScheduleGang(gang, nodes)
	if err != nil {
		t.Fatalf("gang of 4x1800m should fit 2x4000m: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("assignment = %v", got)
	}
	perNode := map[string]int{}
	for _, n := range got {
		perNode[n]++
	}
	if perNode["n1"] != 2 || perNode["n2"] != 2 {
		t.Errorf("gang packing = %v, want 2+2", perNode)
	}
	// One more member than fits: nothing placed.
	gang = append(gang, pod("g-4", 1800))
	if _, err := s.ScheduleGang(gang, nodes); err == nil {
		t.Error("oversized gang should fail")
	}
}

func TestScheduleGangSeesOwnReservations(t *testing.T) {
	s := New(PolicyBinPack)
	// Single node fits exactly 2 members; a naive scheduler that doesn't
	// track virtual commitments would place all 3 there.
	nodes := []NodeInfo{node("n1", 4000, 0), node("n2", 4000, 0)}
	gang := []PodInfo{pod("g-0", 2000), pod("g-1", 2000), pod("g-2", 2000)}
	got, err := s.ScheduleGang(gang, nodes)
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[string]int{}
	for _, n := range got {
		perNode[n]++
	}
	for name, count := range perNode {
		if count > 2 {
			t.Errorf("node %s over-committed with %d members", name, count)
		}
	}
}

func TestPreemptEvictsLowestPriority(t *testing.T) {
	s := New(PolicySpread)
	n := node("n1", 4000, 4000)
	n.Pods = []PodInfo{
		{Name: "batch-1", App: "b", Requests: resource.New(1500, 1<<30, 0, 0), Priority: 0},
		{Name: "batch-2", App: "b", Requests: resource.New(1500, 1<<30, 0, 0), Priority: 0},
		{Name: "svc-1", App: "s", Requests: resource.New(1000, 1<<30, 0, 0), Priority: 100},
	}
	incoming := PodInfo{Name: "svc-2", App: "s", Requests: resource.New(1200, 1<<30, 0, 0), Priority: 100}
	plan := s.Preempt(incoming, []NodeInfo{n})
	if plan == nil {
		t.Fatal("no preemption plan found")
	}
	if plan.Node != "n1" || len(plan.Victims) != 1 {
		t.Fatalf("plan = %+v, want 1 victim on n1", plan)
	}
	if !strings.HasPrefix(plan.Victims[0], "batch") {
		t.Errorf("victim = %q, want a batch pod", plan.Victims[0])
	}
}

func TestPreemptNeverEvictsEqualOrHigher(t *testing.T) {
	s := New(PolicySpread)
	n := node("n1", 4000, 4000)
	n.Pods = []PodInfo{
		{Name: "svc-1", App: "s", Requests: resource.New(4000, 0, 0, 0), Priority: 100},
	}
	incoming := PodInfo{Name: "svc-2", App: "s", Requests: resource.New(1000, 0, 0, 0), Priority: 100}
	if plan := s.Preempt(incoming, []NodeInfo{n}); plan != nil {
		t.Errorf("equal priority should not be preempted: %+v", plan)
	}
}

func TestPreemptPicksCheapestNode(t *testing.T) {
	s := New(PolicySpread)
	expensive := node("a-expensive", 4000, 4000)
	expensive.Pods = []PodInfo{
		{Name: "mid-1", Requests: resource.New(2000, 0, 0, 0), Priority: 50},
	}
	cheap := node("b-cheap", 4000, 4000)
	cheap.Pods = []PodInfo{
		{Name: "low-1", Requests: resource.New(2000, 0, 0, 0), Priority: 0},
	}
	incoming := PodInfo{Name: "svc", Requests: resource.New(1500, 0, 0, 0), Priority: 100}
	plan := s.Preempt(incoming, []NodeInfo{expensive, cheap})
	if plan == nil || plan.Node != "b-cheap" {
		t.Errorf("plan = %+v, want cheapest victims on b-cheap", plan)
	}
}

func TestPreemptTrimsUnneededVictims(t *testing.T) {
	s := New(PolicySpread)
	n := node("n1", 4000, 4000)
	n.Pods = []PodInfo{
		{Name: "tiny", Requests: resource.New(100, 0, 0, 0), Priority: 0},
		{Name: "big", Requests: resource.New(3000, 0, 0, 0), Priority: 1},
	}
	incoming := PodInfo{Name: "svc", Requests: resource.New(2500, 1<<28, 0, 0), Priority: 100}
	plan := s.Preempt(incoming, []NodeInfo{n})
	if plan == nil {
		t.Fatal("no plan")
	}
	// Evicting "big" suffices; "tiny" must not be a victim.
	for _, v := range plan.Victims {
		if v == "tiny" {
			t.Errorf("unnecessary victim tiny in %v", plan.Victims)
		}
	}
}

func TestSelectorFilter(t *testing.T) {
	f := SelectorFilter{}
	n := node("n1", 4000, 0)
	n.Labels = map[string]string{"pool": "hpc", "disk": "nvme"}
	free := pod("p", 100)
	if r := f.Filter(&free, &n); r != ReasonNone {
		t.Errorf("no selector should match: %v", r)
	}
	sel := pod("p", 100)
	sel.NodeSelector = map[string]string{"pool": "hpc"}
	if r := f.Filter(&sel, &n); r != ReasonNone {
		t.Errorf("matching selector rejected: %v", r)
	}
	sel.NodeSelector = map[string]string{"pool": "hpc", "disk": "nvme"}
	if r := f.Filter(&sel, &n); r != ReasonNone {
		t.Errorf("multi-label selector rejected: %v", r)
	}
	sel.NodeSelector = map[string]string{"pool": "svc"}
	if r := f.Filter(&sel, &n); r == ReasonNone {
		t.Error("mismatched selector should be rejected")
	}
	// The rich per-node message names the smallest unmatched key.
	if msg := f.Explain(&sel, &n); msg != "selector pool=svc unmatched" {
		t.Errorf("Explain = %q", msg)
	}
	sel.NodeSelector = map[string]string{"gpu": "a100"}
	bare := node("bare", 4000, 0)
	if r := f.Filter(&sel, &bare); r == ReasonNone {
		t.Error("selector against unlabeled node should be rejected")
	}
}

func TestScheduleHonoursSelector(t *testing.T) {
	s := New(PolicySpread)
	a := node("a", 4000, 0)
	b := node("b", 4000, 3000) // busier, but the only labeled one
	b.Labels = map[string]string{"pool": "hpc"}
	p := pod("p", 500)
	p.NodeSelector = map[string]string{"pool": "hpc"}
	got, err := s.Schedule(p, []NodeInfo{a, b})
	if err != nil || got != "b" {
		t.Errorf("Schedule = %q, %v; want b", got, err)
	}
	// No matching node: unschedulable with the selector reason counted.
	p.NodeSelector = map[string]string{"pool": "gpu"}
	_, err = s.Schedule(p, []NodeInfo{a, b})
	var u *Unschedulable
	if !errors.As(err, &u) {
		t.Fatalf("want Unschedulable, got %v", err)
	}
	if !strings.Contains(u.Error(), "selector") {
		t.Errorf("reason should mention the selector: %v", u)
	}
}

func TestPreemptKeepsAllNecessaryVictims(t *testing.T) {
	// Regression: the trim pass used to append into the victims slice it
	// was still reading backwards, duplicating one victim and losing
	// another — producing a plan that freed less room than promised.
	s := New(PolicySpread)
	n := node("n1", 4000, 4000)
	n.Pods = []PodInfo{
		{Name: "tiny", Requests: resource.New(1500, 0, 0, 0), Priority: 0},
		{Name: "big", Requests: resource.New(2500, 0, 0, 0), Priority: 1},
	}
	// Needs both victims evicted.
	incoming := PodInfo{Name: "svc", Requests: resource.New(3800, 0, 0, 0), Priority: 100}
	plan := s.Preempt(incoming, []NodeInfo{n})
	if plan == nil {
		t.Fatal("no plan")
	}
	seen := map[string]int{}
	var freed float64
	for _, v := range plan.Victims {
		seen[v]++
		for _, p := range n.Pods {
			if p.Name == v {
				freed += p.Requests[resource.CPU]
			}
		}
	}
	for name, count := range seen {
		if count != 1 {
			t.Errorf("victim %s appears %d times", name, count)
		}
	}
	if freed < 3800 {
		t.Errorf("plan frees only %v cpu, pod needs 3800", freed)
	}
}

func BenchmarkSchedule100Nodes(b *testing.B) {
	s := New(PolicySpread)
	nodes := make([]NodeInfo, 100)
	for i := range nodes {
		nodes[i] = node(nodeName(i), 16000, float64(i%8)*1000)
	}
	p := pod("p", 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(p, nodes); err != nil {
			b.Fatal(err)
		}
	}
}

func nodeName(i int) string {
	return "node-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
