package sched

import (
	"sync"

	"evolve/internal/par"
)

// BatchResult is one pod's outcome from ScheduleBatch: the chosen node,
// or OK=false when no candidate was feasible. The failure path carries
// no error — the caller replays the pod through ScheduleOn against the
// committed snapshot so the Unschedulable message (and any preemption
// that follows) sees the exact state a serial walk would have.
type BatchResult struct {
	Node string
	OK   bool
}

// batchJob scores one batch member on the shared pool. best and cand
// are written by the worker and read by the caller only after Wait;
// the padding keeps adjacent jobs off one cache line while they write.
type batchJob struct {
	s    *Scheduler
	snap *Snapshot
	pod  *PodInfo
	wg   *sync.WaitGroup
	best int32
	cand int
	_    [32]byte
}

// Run implements par.Job.
func (j *batchJob) Run() {
	defer j.wg.Done()
	j.run()
}

func (j *batchJob) run() {
	cand := j.snap.candidates(j.pod)
	j.cand = len(cand)
	j.best, _ = j.s.bestOf(j.pod, j.snap, cand)
}

// ScheduleBatch scores pods concurrently against the snapshot, writing
// results[i] for pods[i]. The caller must have established that the
// pods' candidate prefixes are pairwise disjoint (DisjointCandidates):
// under that precondition each member's feasible set is untouched by
// the others' placements, so the chosen nodes are byte-identical to
// scheduling the pods one at a time with a Commit between — which is
// exactly how the caller must apply the results (in pod order,
// abandoning the remainder after any non-OK result or bind failure).
//
// The workers only read the snapshot and the scheduler's immutable
// plugin configuration; probe statistics are accounted here, serially.
// Probed/Pruned may differ marginally from the serial walk (the index
// is probed pre-commit), which is why they stay out of the
// determinism fingerprint.
func (s *Scheduler) ScheduleBatch(pods []PodInfo, snap *Snapshot, results []BatchResult) {
	if !snap.built {
		snap.Build()
	}
	n := len(pods)
	if n == 0 {
		return
	}
	if cap(s.batchJobs) < n {
		s.batchJobs = make([]batchJob, n)
	}
	jobs := s.batchJobs[:n]
	s.batchWG.Add(n - 1)
	for i := 1; i < n; i++ {
		jobs[i] = batchJob{s: s, snap: snap, pod: &pods[i], wg: &s.batchWG}
		par.Submit(&jobs[i])
	}
	jobs[0] = batchJob{s: s, snap: snap, pod: &pods[0]}
	jobs[0].run()
	if n > 1 {
		s.batchWG.Wait()
	}
	live := uint64(snap.Live())
	for i := range jobs {
		s.stats.Calls++
		s.stats.BatchCalls++
		s.stats.Probed += uint64(jobs[i].cand)
		s.stats.Pruned += live - uint64(jobs[i].cand)
		if jobs[i].best < 0 {
			results[i] = BatchResult{}
			continue
		}
		results[i] = BatchResult{Node: snap.nodes[jobs[i].best].Name, OK: true}
	}
}
