// Package sched implements the placement engine of the EVOLVE control
// plane in the style of the Kubernetes scheduling framework: filter
// plugins rule nodes out, score plugins rank the survivors, and a small
// set of higher-level operations (gang scheduling for HPC jobs, priority
// preemption for latency-critical services) build on the same primitives.
// The package is a pure library over PodInfo/NodeInfo snapshots so it can
// be tested and benchmarked in isolation from the cluster substrate.
package sched

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"evolve/internal/resource"
)

// PodInfo is the scheduler's view of one pod.
type PodInfo struct {
	Name     string
	App      string
	Requests resource.Vector
	// Priority orders preemption: higher-priority pods may evict lower
	// ones. Services typically run at higher priority than batch tasks.
	Priority int
	// NodeSelector restricts placement to nodes carrying all of these
	// labels (Kubernetes nodeSelector semantics). Empty means any node.
	NodeSelector map[string]string
}

// NodeInfo is the scheduler's view of one node.
type NodeInfo struct {
	Name        string
	Allocatable resource.Vector
	Allocated   resource.Vector
	Pods        []PodInfo
	// Labels carry operator-assigned node attributes ("pool=hpc",
	// "disk=nvme") matched against pod NodeSelectors.
	Labels map[string]string
}

// Free returns the unallocated headroom.
func (n NodeInfo) Free() resource.Vector {
	return n.Allocatable.Sub(n.Allocated).ClampMin(0)
}

// withPod returns a copy of n with pod's requests committed.
func (n NodeInfo) withPod(pod PodInfo) NodeInfo {
	n.Allocated = n.Allocated.Add(pod.Requests)
	n.Pods = append(append([]PodInfo(nil), n.Pods...), pod)
	return n
}

// FilterPlugin rules a node in or out for a pod.
type FilterPlugin interface {
	Name() string
	// Filter returns nil when the node can host the pod, or an error
	// explaining why not.
	Filter(pod PodInfo, node NodeInfo) error
}

// ScorePlugin ranks a feasible node for a pod; higher is better. Scores
// should be normalised to [0, 1].
type ScorePlugin interface {
	Name() string
	Score(pod PodInfo, node NodeInfo) float64
	Weight() float64
}

// FitFilter rejects nodes without headroom for the pod's requests.
type FitFilter struct{}

// Name implements FilterPlugin.
func (FitFilter) Name() string { return "fit" }

// Filter implements FilterPlugin.
func (FitFilter) Filter(pod PodInfo, node NodeInfo) error {
	free := node.Free()
	if pod.Requests.Fits(free) {
		return nil
	}
	var short []string
	for _, k := range resource.Kinds() {
		if pod.Requests[k] > free[k] {
			short = append(short, k.String())
		}
	}
	return fmt.Errorf("insufficient %s", strings.Join(short, ","))
}

// SelectorFilter rejects nodes missing any label the pod selects on.
type SelectorFilter struct{}

// Name implements FilterPlugin.
func (SelectorFilter) Name() string { return "selector" }

// Filter implements FilterPlugin.
func (SelectorFilter) Filter(pod PodInfo, node NodeInfo) error {
	for k, v := range pod.NodeSelector {
		if node.Labels[k] != v {
			return fmt.Errorf("selector %s=%s unmatched", k, v)
		}
	}
	return nil
}

// LeastAllocated favours nodes with the most free capacity, spreading
// load — the Kubernetes default.
type LeastAllocated struct{ W float64 }

// Name implements ScorePlugin.
func (LeastAllocated) Name() string { return "least-allocated" }

// Weight implements ScorePlugin.
func (p LeastAllocated) Weight() float64 { return orDefault(p.W) }

// Score implements ScorePlugin.
func (LeastAllocated) Score(pod PodInfo, node NodeInfo) float64 {
	after := node.Allocated.Add(pod.Requests)
	frac, _ := after.DominantShare(node.Allocatable)
	return 1 - math.Min(frac, 1)
}

// MostAllocated favours nodes that are already busy, packing pods tightly
// to keep whole nodes free for gangs and to allow power-down.
type MostAllocated struct{ W float64 }

// Name implements ScorePlugin.
func (MostAllocated) Name() string { return "most-allocated" }

// Weight implements ScorePlugin.
func (p MostAllocated) Weight() float64 { return orDefault(p.W) }

// Score implements ScorePlugin.
func (MostAllocated) Score(pod PodInfo, node NodeInfo) float64 {
	after := node.Allocated.Add(pod.Requests)
	frac, _ := after.DominantShare(node.Allocatable)
	return math.Min(frac, 1)
}

// BalancedAllocation favours placements that keep per-resource usage
// fractions close to each other, avoiding nodes stranded with one
// exhausted dimension.
type BalancedAllocation struct{ W float64 }

// Name implements ScorePlugin.
func (BalancedAllocation) Name() string { return "balanced-allocation" }

// Weight implements ScorePlugin.
func (p BalancedAllocation) Weight() float64 { return orDefault(p.W) }

// Score implements ScorePlugin.
func (BalancedAllocation) Score(pod PodInfo, node NodeInfo) float64 {
	after := node.Allocated.Add(pod.Requests).Div(node.Allocatable)
	mean := after.Mean()
	var variance float64
	for _, k := range resource.Kinds() {
		d := after[k] - mean
		variance += d * d
	}
	variance /= float64(resource.NumKinds)
	return 1 - math.Min(math.Sqrt(variance), 1)
}

// AppSpread favours nodes hosting fewer replicas of the same application,
// for fault isolation.
type AppSpread struct{ W float64 }

// Name implements ScorePlugin.
func (AppSpread) Name() string { return "app-spread" }

// Weight implements ScorePlugin.
func (p AppSpread) Weight() float64 { return orDefault(p.W) }

// Score implements ScorePlugin.
func (AppSpread) Score(pod PodInfo, node NodeInfo) float64 {
	same := 0
	for _, p := range node.Pods {
		if p.App == pod.App {
			same++
		}
	}
	return 1 / (1 + float64(same))
}

func orDefault(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return w
}

// Policy selects a pre-assembled plugin set.
type Policy int

const (
	// PolicySpread is the Kubernetes-like default: least-allocated +
	// balanced + app spread.
	PolicySpread Policy = iota
	// PolicyBinPack packs tightly: most-allocated + balanced.
	PolicyBinPack
)

// Scheduler runs the framework. Configure with New or assemble plugins
// directly.
type Scheduler struct {
	filters []FilterPlugin
	scorers []ScorePlugin
}

// New returns a scheduler with the plugin set for the policy.
func New(p Policy) *Scheduler {
	s := &Scheduler{filters: []FilterPlugin{SelectorFilter{}, FitFilter{}}}
	switch p {
	case PolicyBinPack:
		s.scorers = []ScorePlugin{MostAllocated{W: 2}, BalancedAllocation{W: 1}}
	default:
		s.scorers = []ScorePlugin{LeastAllocated{W: 2}, BalancedAllocation{W: 1}, AppSpread{W: 1}}
	}
	return s
}

// NewCustom returns a scheduler with explicit plugins; filters must
// include at least one plugin (normally FitFilter).
func NewCustom(filters []FilterPlugin, scorers []ScorePlugin) (*Scheduler, error) {
	if len(filters) == 0 {
		return nil, fmt.Errorf("sched: at least one filter plugin required")
	}
	return &Scheduler{filters: filters, scorers: scorers}, nil
}

// Unschedulable reports why no node could host a pod, with per-reason
// node counts in the style of the Kubernetes event message.
type Unschedulable struct {
	Pod     string
	Total   int
	Reasons map[string]int
}

func (u *Unschedulable) Error() string {
	if len(u.Reasons) == 0 {
		return fmt.Sprintf("sched: pod %s unschedulable: no nodes", u.Pod)
	}
	keys := make([]string, 0, len(u.Reasons))
	for k := range u.Reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d %s", u.Reasons[k], k)
	}
	return fmt.Sprintf("sched: 0/%d nodes available for %s: %s", u.Total, u.Pod, strings.Join(parts, "; "))
}

// Schedule picks the best node for the pod, or returns *Unschedulable.
// Ties break lexicographically by node name for determinism.
func (s *Scheduler) Schedule(pod PodInfo, nodes []NodeInfo) (string, error) {
	bestName := ""
	bestScore := math.Inf(-1)
	for _, node := range nodes {
		if s.feasible(pod, node) != nil {
			continue
		}
		score := s.score(pod, node)
		if score > bestScore || (score == bestScore && node.Name < bestName) {
			bestScore, bestName = score, node.Name
		}
	}
	if bestName == "" {
		// Failure path only: re-run the filters to aggregate the
		// per-reason rejection counts for the error message. Keeping the
		// counting off the success path spares every successful call the
		// reasons map and a rejection-string per infeasible node.
		reasons := make(map[string]int)
		for _, node := range nodes {
			if err := s.feasible(pod, node); err != nil {
				reasons[err.Error()]++
			}
		}
		return "", &Unschedulable{Pod: pod.Name, Total: len(nodes), Reasons: reasons}
	}
	return bestName, nil
}

func (s *Scheduler) feasible(pod PodInfo, node NodeInfo) error {
	for _, f := range s.filters {
		if err := f.Filter(pod, node); err != nil {
			return err
		}
	}
	return nil
}

func (s *Scheduler) score(pod PodInfo, node NodeInfo) float64 {
	var total, weight float64
	for _, sc := range s.scorers {
		total += sc.Weight() * sc.Score(pod, node)
		weight += sc.Weight()
	}
	if weight == 0 {
		return 0
	}
	return total / weight
}

// ScheduleGang places all pods or none (rigid HPC jobs). Placements are
// committed virtually as the gang is walked so members see each other's
// reservations; on failure nothing is returned. The result maps pod name
// to node name.
func (s *Scheduler) ScheduleGang(pods []PodInfo, nodes []NodeInfo) (map[string]string, error) {
	// Work on a private copy of node state.
	work := make([]NodeInfo, len(nodes))
	copy(work, nodes)
	idx := make(map[string]int, len(work))
	for i, n := range work {
		idx[n.Name] = i
	}
	// Place the largest members first: hardest to fit. Size is the
	// dominant share against the component-wise max over the gang.
	ref := resource.New(1, 1, 1, 1)
	for _, p := range pods {
		ref = ref.Max(p.Requests)
	}
	order := make([]PodInfo, len(pods))
	copy(order, pods)
	sort.SliceStable(order, func(i, j int) bool {
		si, _ := order[i].Requests.DominantShare(ref)
		sj, _ := order[j].Requests.DominantShare(ref)
		if si != sj {
			return si > sj
		}
		return order[i].Name < order[j].Name
	})
	assignment := make(map[string]string, len(pods))
	for _, pod := range order {
		name, err := s.Schedule(pod, work)
		if err != nil {
			return nil, fmt.Errorf("sched: gang of %d pods does not fit: %w", len(pods), err)
		}
		assignment[pod.Name] = name
		i := idx[name]
		work[i] = work[i].withPod(pod)
	}
	return assignment, nil
}

// Preemption describes a viable eviction plan for a pod.
type Preemption struct {
	Node    string
	Victims []string // pod names to evict, lowest priority first
}

// Preempt finds the node where evicting the fewest, lowest-priority pods
// (all strictly lower priority than the incoming pod) makes room. Returns
// nil when no plan exists.
func (s *Scheduler) Preempt(pod PodInfo, nodes []NodeInfo) *Preemption {
	var best *Preemption
	bestCost := math.Inf(1)
	for _, node := range nodes {
		victims, ok := planVictims(pod, node)
		if !ok {
			continue
		}
		// Cost: total victim priority first, then count, then name.
		cost := 0.0
		for _, v := range victims {
			cost += float64(v.Priority)*1000 + 1
		}
		if cost < bestCost || (cost == bestCost && best != nil && node.Name < best.Node) {
			names := make([]string, len(victims))
			for i, v := range victims {
				names[i] = v.Name
			}
			best = &Preemption{Node: node.Name, Victims: names}
			bestCost = cost
		}
	}
	return best
}

// planVictims greedily selects lowest-priority pods on the node until the
// incoming pod fits. Only strictly lower-priority pods are candidates.
func planVictims(pod PodInfo, node NodeInfo) ([]PodInfo, bool) {
	candidates := make([]PodInfo, 0, len(node.Pods))
	for _, p := range node.Pods {
		if p.Priority < pod.Priority {
			candidates = append(candidates, p)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Priority != candidates[j].Priority {
			return candidates[i].Priority < candidates[j].Priority
		}
		return candidates[i].Name < candidates[j].Name
	})
	free := node.Free()
	var victims []PodInfo
	for _, v := range candidates {
		if pod.Requests.Fits(free) {
			break
		}
		free = free.Add(v.Requests)
		victims = append(victims, v)
	}
	if !pod.Requests.Fits(free) {
		return nil, false
	}
	// Trim victims that turned out unnecessary (greedy overshoot): try to
	// spare each one, preferring to keep the higher-priority pods (the
	// greedy pass added victims lowest-priority first, so walk backwards).
	// kept must be fresh storage: appending into victims[:0] would
	// overwrite entries the backwards walk has yet to read.
	kept := make([]PodInfo, 0, len(victims))
	for i := len(victims) - 1; i >= 0; i-- {
		without := free.Sub(victims[i].Requests)
		if pod.Requests.Fits(without) {
			free = without
			continue
		}
		kept = append(kept, victims[i])
	}
	// Restore lowest-priority-first order for a stable, readable plan.
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Priority != kept[j].Priority {
			return kept[i].Priority < kept[j].Priority
		}
		return kept[i].Name < kept[j].Name
	})
	return kept, true
}
