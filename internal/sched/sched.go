// Package sched implements the placement engine of the EVOLVE control
// plane in the style of the Kubernetes scheduling framework: filter
// plugins rule nodes out, score plugins rank the survivors, and a small
// set of higher-level operations (gang scheduling for HPC jobs, priority
// preemption for latency-critical services) build on the same primitives.
// The package is a pure library over PodInfo/NodeInfo snapshots so it can
// be tested and benchmarked in isolation from the cluster substrate.
//
// Two placement paths share one probe core:
//
//   - Schedule walks a plain []NodeInfo. It is the brute-force reference:
//     every node is probed. Use it for hypothetical queries over ad-hoc
//     snapshots (EASY backfill, examples, tests).
//   - ScheduleOn walks a *Snapshot, whose per-resource feasibility index
//     prunes the probe set to the nodes that can possibly fit the pod
//     (see snapshot.go). The cluster's pending-pod loop uses this path.
//
// Both paths are allocation-free in steady state: filters report typed,
// preallocated Reason values instead of formatted errors, and the rich
// per-node messages of an Unschedulable error are materialised only on
// the failure path. Scoring above a configurable node count can fan out
// over a shared worker pool (SetParallel); the reduction is deterministic,
// so placements are byte-identical with parallelism on or off.
package sched

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"evolve/internal/resource"
)

// PodInfo is the scheduler's view of one pod.
type PodInfo struct {
	Name     string
	App      string
	Requests resource.Vector
	// Priority orders preemption: higher-priority pods may evict lower
	// ones. Services typically run at higher priority than batch tasks.
	Priority int
	// NodeSelector restricts placement to nodes carrying all of these
	// labels (Kubernetes nodeSelector semantics). Empty means any node.
	NodeSelector map[string]string
}

// NodeInfo is the scheduler's view of one node.
type NodeInfo struct {
	Name        string
	Allocatable resource.Vector
	Allocated   resource.Vector
	Pods        []PodInfo
	// Labels carry operator-assigned node attributes ("pool=hpc",
	// "disk=nvme") matched against pod NodeSelectors.
	Labels map[string]string
}

// Free returns the unallocated headroom.
func (n *NodeInfo) Free() resource.Vector {
	return n.Allocatable.Sub(n.Allocated).ClampMin(0)
}

// invAllocatable caches the reciprocal of each allocatable dimension so
// the score hot path multiplies instead of divides. Zero-capacity
// dimensions get a zero reciprocal; the fit filter has already rejected
// any pod demanding capacity there, so the pod's contribution is 0 in
// both formulations. Precondition: Allocated must also be 0 on any
// zero-capacity dimension — a nonzero Allocated there would score as
// share 0 here but dominant share +Inf through Vector.Div in the plugin
// chain. The cluster never produces such nodes, and
// Snapshot.CheckInvariants rejects them.
func invAllocatable(alloc resource.Vector) resource.Vector {
	var inv resource.Vector
	for i := range alloc {
		if alloc[i] > 0 {
			inv[i] = 1 / alloc[i]
		}
	}
	return inv
}

// Reason is a typed, preallocated rejection code returned by filter
// plugins. The empty reason means the node is feasible. Reasons are
// static strings so the probe hot path never formats or allocates;
// plugins that can say more implement Explainer, which is consulted only
// on the Unschedulable aggregation path.
type Reason string

// ReasonNone marks a feasible node.
const ReasonNone Reason = ""

// ReasonSelectorMismatch is SelectorFilter's static rejection code.
const ReasonSelectorMismatch Reason = "selector mismatch"

// fitReasons preallocates one combined "insufficient cpu,memory" style
// reason per shortage bitmask (bit k set = kind k short), in canonical
// kind order — the exact strings FitFilter used to format per rejection.
var fitReasons = func() [1 << resource.NumKinds]Reason {
	var out [1 << resource.NumKinds]Reason
	for mask := 1; mask < len(out); mask++ {
		var parts []string
		for _, k := range resource.Kinds() {
			if mask&(1<<uint(k)) != 0 {
				parts = append(parts, k.String())
			}
		}
		out[mask] = Reason("insufficient " + strings.Join(parts, ","))
	}
	return out
}()

// FilterPlugin rules a node in or out for a pod.
type FilterPlugin interface {
	Name() string
	// Filter returns ReasonNone when the node can host the pod, or a
	// static Reason explaining why not. Implementations must not
	// allocate: probing a node is the scheduler's innermost loop.
	Filter(pod *PodInfo, node *NodeInfo) Reason
}

// Explainer is an optional FilterPlugin extension producing a rich
// per-node rejection message. It is consulted only when a pod turns out
// unschedulable, so it may format and allocate.
type Explainer interface {
	Explain(pod *PodInfo, node *NodeInfo) string
}

// ScorePlugin ranks a feasible node for a pod; higher is better. Scores
// should be normalised to [0, 1]. Weight is read once at scheduler
// construction and cached.
type ScorePlugin interface {
	Name() string
	Score(pod *PodInfo, node *NodeInfo) float64
	Weight() float64
}

// FitFilter rejects nodes without headroom for the pod's requests.
type FitFilter struct{}

// Name implements FilterPlugin.
func (FitFilter) Name() string { return "fit" }

// Filter implements FilterPlugin.
func (FitFilter) Filter(pod *PodInfo, node *NodeInfo) Reason {
	free := node.Free()
	mask := 0
	for i := range pod.Requests {
		if pod.Requests[i] > free[i] {
			mask |= 1 << i
		}
	}
	return fitReasons[mask] // mask 0 is ReasonNone
}

// SelectorFilter rejects nodes missing any label the pod selects on.
type SelectorFilter struct{}

// Name implements FilterPlugin.
func (SelectorFilter) Name() string { return "selector" }

// Filter implements FilterPlugin.
func (SelectorFilter) Filter(pod *PodInfo, node *NodeInfo) Reason {
	for k, v := range pod.NodeSelector {
		if node.Labels[k] != v {
			return ReasonSelectorMismatch
		}
	}
	return ReasonNone
}

// Explain implements Explainer: it names the lexicographically smallest
// unmatched selector key, making the aggregated reason deterministic
// even for multi-key selectors.
func (SelectorFilter) Explain(pod *PodInfo, node *NodeInfo) string {
	bestK, bestV := "", ""
	for k, v := range pod.NodeSelector {
		if node.Labels[k] != v && (bestK == "" || k < bestK) {
			bestK, bestV = k, v
		}
	}
	if bestK == "" {
		return string(ReasonSelectorMismatch)
	}
	return fmt.Sprintf("selector %s=%s unmatched", bestK, bestV)
}

// LeastAllocated favours nodes with the most free capacity, spreading
// load — the Kubernetes default.
type LeastAllocated struct{ W float64 }

// Name implements ScorePlugin.
func (LeastAllocated) Name() string { return "least-allocated" }

// Weight implements ScorePlugin.
func (p LeastAllocated) Weight() float64 { return orDefault(p.W) }

// Score implements ScorePlugin.
func (LeastAllocated) Score(pod *PodInfo, node *NodeInfo) float64 {
	after := node.Allocated.Add(pod.Requests)
	frac, _ := after.DominantShare(node.Allocatable)
	return 1 - math.Min(frac, 1)
}

// MostAllocated favours nodes that are already busy, packing pods tightly
// to keep whole nodes free for gangs and to allow power-down.
type MostAllocated struct{ W float64 }

// Name implements ScorePlugin.
func (MostAllocated) Name() string { return "most-allocated" }

// Weight implements ScorePlugin.
func (p MostAllocated) Weight() float64 { return orDefault(p.W) }

// Score implements ScorePlugin.
func (MostAllocated) Score(pod *PodInfo, node *NodeInfo) float64 {
	after := node.Allocated.Add(pod.Requests)
	frac, _ := after.DominantShare(node.Allocatable)
	return math.Min(frac, 1)
}

// BalancedAllocation favours placements that keep per-resource usage
// fractions close to each other, avoiding nodes stranded with one
// exhausted dimension.
type BalancedAllocation struct{ W float64 }

// Name implements ScorePlugin.
func (BalancedAllocation) Name() string { return "balanced-allocation" }

// Weight implements ScorePlugin.
func (p BalancedAllocation) Weight() float64 { return orDefault(p.W) }

// Score implements ScorePlugin.
func (BalancedAllocation) Score(pod *PodInfo, node *NodeInfo) float64 {
	after := node.Allocated.Add(pod.Requests).Div(node.Allocatable)
	mean := after.Mean()
	var variance float64
	for _, k := range resource.Kinds() {
		d := after[k] - mean
		variance += d * d
	}
	variance /= float64(resource.NumKinds)
	return 1 - math.Min(math.Sqrt(variance), 1)
}

// AppSpread favours nodes hosting fewer replicas of the same application,
// for fault isolation.
type AppSpread struct{ W float64 }

// Name implements ScorePlugin.
func (AppSpread) Name() string { return "app-spread" }

// Weight implements ScorePlugin.
func (p AppSpread) Weight() float64 { return orDefault(p.W) }

// Score implements ScorePlugin.
func (AppSpread) Score(pod *PodInfo, node *NodeInfo) float64 {
	same := 0
	for i := range node.Pods {
		if node.Pods[i].App == pod.App {
			same++
		}
	}
	return 1 / (1 + float64(same))
}

func orDefault(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return w
}

// fusedScore is the single-call scoring kernel of a built-in policy: the
// same arithmetic as the plugin chain, but with the per-dimension share
// vector computed once (via the snapshot's cached allocatable
// reciprocal) and shared across the sub-scores, and no interface
// dispatch per plugin.
type fusedScore func(pod *PodInfo, node *NodeInfo, inv *resource.Vector) float64

// scoreSpread fuses LeastAllocated(W:2) + BalancedAllocation(W:1) +
// AppSpread(W:1), the PolicySpread chain.
func scoreSpread(pod *PodInfo, node *NodeInfo, inv *resource.Vector) float64 {
	var r resource.Vector
	dom := math.Inf(-1)
	for i := range r {
		r[i] = (node.Allocated[i] + pod.Requests[i]) * inv[i]
		if r[i] > dom {
			dom = r[i]
		}
	}
	least := 1 - math.Min(dom, 1)
	sum := 0.0
	for i := range r {
		sum += r[i]
	}
	mean := sum / float64(resource.NumKinds)
	variance := 0.0
	for i := range r {
		d := r[i] - mean
		variance += d * d
	}
	variance /= float64(resource.NumKinds)
	balanced := 1 - math.Min(math.Sqrt(variance), 1)
	same := 0
	for i := range node.Pods {
		if node.Pods[i].App == pod.App {
			same++
		}
	}
	spread := 1 / (1 + float64(same))
	return (2*least + balanced + spread) / 4
}

// scoreBinPack fuses MostAllocated(W:2) + BalancedAllocation(W:1), the
// PolicyBinPack chain.
func scoreBinPack(pod *PodInfo, node *NodeInfo, inv *resource.Vector) float64 {
	var r resource.Vector
	dom := math.Inf(-1)
	for i := range r {
		r[i] = (node.Allocated[i] + pod.Requests[i]) * inv[i]
		if r[i] > dom {
			dom = r[i]
		}
	}
	most := math.Min(dom, 1)
	sum := 0.0
	for i := range r {
		sum += r[i]
	}
	mean := sum / float64(resource.NumKinds)
	variance := 0.0
	for i := range r {
		d := r[i] - mean
		variance += d * d
	}
	variance /= float64(resource.NumKinds)
	balanced := 1 - math.Min(math.Sqrt(variance), 1)
	return (2*most + balanced) / 3
}

// Policy selects a pre-assembled plugin set.
type Policy int

const (
	// PolicySpread is the Kubernetes-like default: least-allocated +
	// balanced + app spread.
	PolicySpread Policy = iota
	// PolicyBinPack packs tightly: most-allocated + balanced.
	PolicyBinPack
)

// Stats counts the scheduler's probe work since the last ResetStats —
// the observability surface for the feasibility index and the parallel
// fan-out.
type Stats struct {
	// Calls counts Schedule/ScheduleOn invocations (gang members included).
	Calls uint64
	// Probed counts nodes that ran the filter/score probe.
	Probed uint64
	// Pruned counts nodes the feasibility index skipped without probing.
	Pruned uint64
	// ParallelCalls counts placements that used the parallel score fan-out.
	ParallelCalls uint64
	// BatchCalls counts placements scored through ScheduleBatch (the
	// drain's disjoint-candidate batching).
	BatchCalls uint64
	// GangCalls and Preempts count the higher-level operations.
	GangCalls uint64
	Preempts  uint64
}

// Scheduler runs the framework. Configure with New or assemble plugins
// directly. A Scheduler owns reusable scratch and is not safe for
// concurrent use; the internal parallel fan-out is synchronous per call.
type Scheduler struct {
	filters []FilterPlugin
	scorers []ScorePlugin
	// weights caches scorers[i].Weight() (and wsum their total) so the
	// generic score loop never re-queries plugins per node.
	weights []float64
	wsum    float64
	// fused is the policy's fused scoring kernel; nil for custom plugin
	// sets, which take the generic loop.
	fused fusedScore
	// stdFilters short-circuits the filter chain when it is exactly
	// {SelectorFilter, FitFilter}: the probe then checks the selector and
	// the cached headroom inline with zero interface dispatch.
	stdFilters bool

	par parallelCfg

	// Reusable scratch (see the respective call sites). The scheduler is
	// single-caller; one buffer of each suffices.
	gangSnap  *Snapshot
	gangOrder []int32
	gangShare []float64
	pCand     []PodInfo
	pVict     []PodInfo
	pKept     []PodInfo
	parPod    PodInfo
	parRes    []shardBest
	parJobs   []shardJob
	parWG     sync.WaitGroup
	batchJobs []batchJob
	batchWG   sync.WaitGroup
	// schedPod/schedInv back the pod and reciprocal-allocatable pointers
	// handed to plugin interfaces and the fused kernel. Escape analysis
	// sends indirect-call pointer arguments to the heap; pointing them at
	// scheduler-owned scratch keeps Schedule/ScheduleOn allocation-free.
	schedPod PodInfo
	schedInv resource.Vector

	stats Stats
}

// New returns a scheduler with the plugin set for the policy.
func New(p Policy) *Scheduler {
	s := &Scheduler{filters: []FilterPlugin{SelectorFilter{}, FitFilter{}}}
	switch p {
	case PolicyBinPack:
		s.scorers = []ScorePlugin{MostAllocated{W: 2}, BalancedAllocation{W: 1}}
		s.fused = scoreBinPack
	default:
		s.scorers = []ScorePlugin{LeastAllocated{W: 2}, BalancedAllocation{W: 1}, AppSpread{W: 1}}
		s.fused = scoreSpread
	}
	s.finish()
	return s
}

// NewCustom returns a scheduler with explicit plugins; filters must
// include at least one plugin (normally FitFilter).
func NewCustom(filters []FilterPlugin, scorers []ScorePlugin) (*Scheduler, error) {
	if len(filters) == 0 {
		return nil, fmt.Errorf("sched: at least one filter plugin required")
	}
	s := &Scheduler{filters: filters, scorers: scorers}
	s.finish()
	return s, nil
}

// finish caches plugin weights and detects the fast-path filter chain.
func (s *Scheduler) finish() {
	s.weights = make([]float64, len(s.scorers))
	for i, sc := range s.scorers {
		s.weights[i] = sc.Weight()
		s.wsum += s.weights[i]
	}
	if len(s.filters) == 2 {
		_, sel := s.filters[0].(SelectorFilter)
		_, fit := s.filters[1].(FitFilter)
		s.stdFilters = sel && fit
	}
}

// Stats returns the probe counters accumulated since the last ResetStats.
func (s *Scheduler) Stats() Stats { return s.stats }

// ResetStats zeroes the probe counters.
func (s *Scheduler) ResetStats() { s.stats = Stats{} }

// Unschedulable reports why no node could host a pod, with per-reason
// node counts in the style of the Kubernetes event message.
type Unschedulable struct {
	Pod     string
	Total   int
	Reasons map[string]int
}

func (u *Unschedulable) Error() string {
	if len(u.Reasons) == 0 {
		return fmt.Sprintf("sched: pod %s unschedulable: no nodes", u.Pod)
	}
	keys := make([]string, 0, len(u.Reasons))
	for k := range u.Reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d %s", u.Reasons[k], k)
	}
	return fmt.Sprintf("sched: 0/%d nodes available for %s: %s", u.Total, u.Pod, strings.Join(parts, "; "))
}

// unschedulable aggregates the per-node rejection reasons. Failure path
// only: the success path never formats a reason, so every successful
// call is spared the map and the message strings.
func (s *Scheduler) unschedulable(pod *PodInfo, nodes []NodeInfo) error {
	reasons := make(map[string]int)
	for i := range nodes {
		node := &nodes[i]
		for _, f := range s.filters {
			if r := f.Filter(pod, node); r != ReasonNone {
				msg := string(r)
				if ex, ok := f.(Explainer); ok {
					msg = ex.Explain(pod, node)
				}
				reasons[msg]++
				break
			}
		}
	}
	return &Unschedulable{Pod: pod.Name, Total: len(nodes), Reasons: reasons}
}

// feasible runs the filter chain. free is the node's cached headroom
// (snapshot path) or freshly computed (slice path); the fast path for
// the standard chain checks it inline.
func (s *Scheduler) feasible(pod *PodInfo, node *NodeInfo, free *resource.Vector) bool {
	if s.stdFilters {
		for k, v := range pod.NodeSelector {
			if node.Labels[k] != v {
				return false
			}
		}
		return pod.Requests.Fits(*free)
	}
	for _, f := range s.filters {
		if f.Filter(pod, node) != ReasonNone {
			return false
		}
	}
	return true
}

// scoreNode scores one feasible node through the fused kernel or the
// generic plugin loop.
func (s *Scheduler) scoreNode(pod *PodInfo, node *NodeInfo, inv *resource.Vector) float64 {
	if s.fused != nil {
		return s.fused(pod, node, inv)
	}
	var total float64
	for i, sc := range s.scorers {
		total += s.weights[i] * sc.Score(pod, node)
	}
	if s.wsum == 0 {
		return 0
	}
	return total / s.wsum
}

// Schedule picks the best node for the pod, or returns *Unschedulable.
// Ties break lexicographically by node name for determinism. This is the
// brute-force reference path: every node is probed. The cluster hot path
// uses ScheduleOn, which prunes through the snapshot's feasibility index;
// both paths pick identical nodes (see the equivalence tests).
func (s *Scheduler) Schedule(pod PodInfo, nodes []NodeInfo) (string, error) {
	s.stats.Calls++
	s.stats.Probed += uint64(len(nodes))
	s.schedPod = pod
	p := &s.schedPod
	best := -1
	bestScore := math.Inf(-1)
	for i := range nodes {
		node := &nodes[i]
		free := node.Free()
		if !s.feasible(p, node, &free) {
			continue
		}
		s.schedInv = invAllocatable(node.Allocatable)
		score := s.scoreNode(p, node, &s.schedInv)
		if best < 0 || score > bestScore || (score == bestScore && node.Name < nodes[best].Name) {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return "", s.unschedulable(p, nodes)
	}
	return nodes[best].Name, nil
}

// ScheduleOn picks the best node for the pod from the snapshot, probing
// only the candidates the feasibility index admits. The choice is
// byte-identical to Schedule over the same node set.
func (s *Scheduler) ScheduleOn(pod PodInfo, snap *Snapshot) (string, error) {
	s.schedPod = pod
	return s.scheduleOn(&s.schedPod, snap)
}

func (s *Scheduler) scheduleOn(pod *PodInfo, snap *Snapshot) (string, error) {
	if !snap.built {
		snap.Build()
	}
	cand := snap.candidates(pod)
	s.stats.Calls++
	s.stats.Probed += uint64(len(cand))
	s.stats.Pruned += uint64(snap.Live() - len(cand))
	var best int32
	switch {
	case s.par.workers > 1 && len(cand) >= s.par.minNodes:
		s.stats.ParallelCalls++
		best = s.parallelBest(pod, snap, cand)
	case len(cand) == len(snap.nodes):
		// The index pruned nothing and no entry is drained: probe in
		// memory order instead of chasing the free-sorted permutation —
		// same candidates, same (score, name) total order, same winner,
		// but sequential loads.
		best, _ = s.bestOfAll(pod, snap)
	default:
		best, _ = s.bestOf(pod, snap, cand)
	}
	if best < 0 {
		return "", s.unschedulable(pod, snap.nodes)
	}
	return snap.nodes[best].Name, nil
}

// fitsFree reports req <= free without copying either vector; small
// enough to inline into the probe loops.
func fitsFree(req, free *resource.Vector) bool {
	for i := range req {
		if req[i] > free[i] {
			return false
		}
	}
	return true
}

// plainProbe reports whether the probe loops can reduce the filter
// chain to a bare headroom compare: standard filters and no selector.
func (s *Scheduler) plainProbe(pod *PodInfo) bool {
	return s.stdFilters && len(pod.NodeSelector) == 0
}

// bestOf probes the candidate entries sequentially, returning the entry
// with the highest (score, then lexicographically-smallest name) and its
// score, or (-1, -Inf) when none is feasible. The common case — standard
// filters, no node selector, built-in policy — is specialised so the
// inner loop carries no interface or indirect calls.
func (s *Scheduler) bestOf(pod *PodInfo, snap *Snapshot, cand []int32) (int32, float64) {
	best := int32(-1)
	bestScore := math.Inf(-1)
	plain := s.plainProbe(pod)
	for _, e := range cand {
		node := &snap.nodes[e]
		if plain {
			if !fitsFree(&pod.Requests, &snap.free[e]) {
				continue
			}
		} else if !s.feasible(pod, node, &snap.free[e]) {
			continue
		}
		score := s.scoreNode(pod, node, &snap.inv[e])
		if best < 0 || score > bestScore || (score == bestScore && node.Name < snap.nodes[best].Name) {
			best, bestScore = e, score
		}
	}
	return best, bestScore
}

// bestOfAll is bestOf over every entry in memory order — the
// no-pruning fast path. Candidate sets equal to the whole entry list
// only arise when every entry is live, so no liveness check is needed.
func (s *Scheduler) bestOfAll(pod *PodInfo, snap *Snapshot) (int32, float64) {
	best := int32(-1)
	bestScore := math.Inf(-1)
	plain := s.plainProbe(pod)
	for e := range snap.nodes {
		node := &snap.nodes[e]
		if plain {
			if !fitsFree(&pod.Requests, &snap.free[e]) {
				continue
			}
		} else if !s.feasible(pod, node, &snap.free[e]) {
			continue
		}
		score := s.scoreNode(pod, node, &snap.inv[e])
		if best < 0 || score > bestScore || (score == bestScore && node.Name < snap.nodes[best].Name) {
			best, bestScore = int32(e), score
		}
	}
	return best, bestScore
}

// ScheduleGang places all pods or none (rigid HPC jobs). Placements are
// committed virtually onto a reusable private snapshot as the gang is
// walked so members see each other's reservations; on failure nothing is
// returned. The result maps pod name to node name.
func (s *Scheduler) ScheduleGang(pods []PodInfo, nodes []NodeInfo) (map[string]string, error) {
	assignment := make(map[string]string, len(pods))
	err := s.scheduleGang(pods, nodes, func(i int, node string) {
		assignment[pods[i].Name] = node
	})
	if err != nil {
		return nil, err
	}
	return assignment, nil
}

// ScheduleGangInto is ScheduleGang without the result map: dst[i]
// receives the node for pods[i]. With a reused dst the call is
// allocation-free in steady state.
func (s *Scheduler) ScheduleGangInto(dst []string, pods []PodInfo, nodes []NodeInfo) error {
	if len(dst) != len(pods) {
		return fmt.Errorf("sched: gang destination holds %d slots for %d pods", len(dst), len(pods))
	}
	return s.scheduleGang(pods, nodes, func(i int, node string) { dst[i] = node })
}

func (s *Scheduler) scheduleGang(pods []PodInfo, nodes []NodeInfo, emit func(i int, node string)) error {
	s.stats.GangCalls++
	if s.gangSnap == nil {
		s.gangSnap = NewSnapshot()
	}
	snap := s.gangSnap
	snap.Reset()
	for i := range nodes {
		snap.AddNode(nodes[i])
	}
	snap.Build()
	// Place the largest members first: hardest to fit. Size is the
	// dominant share against the component-wise max over the gang.
	ref := resource.New(1, 1, 1, 1)
	for i := range pods {
		ref = ref.Max(pods[i].Requests)
	}
	order := s.gangOrder[:0]
	share := s.gangShare[:0]
	for i := range pods {
		f, _ := pods[i].Requests.DominantShare(ref)
		order = append(order, int32(i))
		share = append(share, f)
	}
	s.gangOrder, s.gangShare = order, share
	slices.SortStableFunc(order, func(a, b int32) int {
		if share[a] != share[b] {
			if share[a] > share[b] {
				return -1
			}
			return 1
		}
		return strings.Compare(pods[a].Name, pods[b].Name)
	})
	for _, i := range order {
		name, err := s.scheduleOn(&pods[i], snap)
		if err != nil {
			return fmt.Errorf("sched: gang of %d pods does not fit: %w", len(pods), err)
		}
		snap.Commit(name, pods[i])
		emit(int(i), name)
	}
	return nil
}

// Preemption describes a viable eviction plan for a pod.
type Preemption struct {
	Node    string
	Victims []string // pod names to evict, lowest priority first
}

// Preempt finds the node where evicting the fewest, lowest-priority pods
// (all strictly lower priority than the incoming pod) makes room. Returns
// nil when no plan exists; that path is allocation-free.
func (s *Scheduler) Preempt(pod PodInfo, nodes []NodeInfo) *Preemption {
	s.stats.Preempts++
	var best *Preemption
	bestCost := math.Inf(1)
	for i := range nodes {
		node := &nodes[i]
		victims, ok := s.planVictims(&pod, node)
		if !ok {
			continue
		}
		// Cost: total victim priority first, then count, then name.
		cost := 0.0
		for _, v := range victims {
			cost += float64(v.Priority)*1000 + 1
		}
		if cost < bestCost || (cost == bestCost && best != nil && node.Name < best.Node) {
			names := make([]string, len(victims))
			for j, v := range victims {
				names[j] = v.Name
			}
			best = &Preemption{Node: node.Name, Victims: names}
			bestCost = cost
		}
	}
	return best
}

// cmpVictim orders preemption candidates lowest priority first with a
// name tie-break.
func cmpVictim(a, b PodInfo) int {
	if a.Priority != b.Priority {
		if a.Priority < b.Priority {
			return -1
		}
		return 1
	}
	return strings.Compare(a.Name, b.Name)
}

// planVictims greedily selects lowest-priority pods on the node until the
// incoming pod fits. Only strictly lower-priority pods are candidates.
// The returned slice aliases scheduler scratch: it is valid until the
// next planVictims call.
func (s *Scheduler) planVictims(pod *PodInfo, node *NodeInfo) ([]PodInfo, bool) {
	free := node.Free()
	candidates := s.pCand[:0]
	for i := range node.Pods {
		if node.Pods[i].Priority < pod.Priority {
			candidates = append(candidates, node.Pods[i])
		}
	}
	s.pCand = candidates
	if len(candidates) == 0 && !pod.Requests.Fits(free) {
		return nil, false
	}
	slices.SortFunc(candidates, cmpVictim)
	victims := s.pVict[:0]
	for _, v := range candidates {
		if pod.Requests.Fits(free) {
			break
		}
		free = free.Add(v.Requests)
		victims = append(victims, v)
	}
	s.pVict = victims
	if !pod.Requests.Fits(free) {
		return nil, false
	}
	// Trim victims that turned out unnecessary (greedy overshoot): try to
	// spare each one, preferring to keep the higher-priority pods (the
	// greedy pass added victims lowest-priority first, so walk backwards).
	// kept must be separate storage: appending into victims[:0] would
	// overwrite entries the backwards walk has yet to read.
	kept := s.pKept[:0]
	for i := len(victims) - 1; i >= 0; i-- {
		without := free.Sub(victims[i].Requests)
		if pod.Requests.Fits(without) {
			free = without
			continue
		}
		kept = append(kept, victims[i])
	}
	s.pKept = kept
	// Restore lowest-priority-first order for a stable, readable plan.
	slices.SortFunc(kept, cmpVictim)
	return kept, true
}
