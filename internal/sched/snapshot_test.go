package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"evolve/internal/resource"
)

// randNode builds a node with randomized free capacity in every
// dimension, occasionally labeled.
func randNode(rng *rand.Rand, i int) NodeInfo {
	n := NodeInfo{
		Name:        fmt.Sprintf("node-%03d", i),
		Allocatable: resource.New(16000, 64<<30, 1e9, 2e9),
	}
	n.Allocated = n.Allocatable.Scale(rng.Float64() * 0.9)
	// Skew one random dimension so no single kind dominates the index.
	k := rng.Intn(int(resource.NumKinds))
	n.Allocated[k] = n.Allocatable[k] * rng.Float64()
	if rng.Intn(4) == 0 {
		n.Labels = map[string]string{"pool": "hpc"}
	}
	return n
}

// randPod builds a pod with randomized requests; some oversized, some
// selector-bearing, so both failure modes are exercised.
func randPod(rng *rand.Rand, i int) PodInfo {
	p := PodInfo{
		Name: fmt.Sprintf("pod-%04d", i),
		App:  fmt.Sprintf("app-%d", rng.Intn(5)),
		Requests: resource.New(
			float64(rng.Intn(4000)+100),
			float64(rng.Intn(8)+1)*(1<<30),
			float64(rng.Intn(40)+1)*1e6,
			float64(rng.Intn(40)+1)*1e6,
		),
	}
	if rng.Intn(10) == 0 { // oversized: usually unschedulable
		p.Requests = p.Requests.Scale(50)
	}
	if rng.Intn(8) == 0 {
		p.NodeSelector = map[string]string{"pool": "hpc"}
	}
	return p
}

// TestSnapshotEquivalence drives a snapshot and a plain mirror slice
// through the same randomized bind/fail sequence and demands identical
// decisions from ScheduleOn (index-pruned) and Schedule (brute force) at
// every step — the index must never hide a feasible node or change the
// winner.
func TestSnapshotEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, policy := range []Policy{PolicySpread, PolicyBinPack} {
			t.Run(fmt.Sprintf("seed=%d/policy=%d", seed, policy), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				indexed, brute := New(policy), New(policy)
				snap := NewSnapshot()
				var mirror []NodeInfo
				snap.Reset()
				for i := 0; i < 60; i++ {
					n := randNode(rng, i)
					snap.AddNode(n)
					mirror = append(mirror, n)
				}
				snap.Build()
				for i := 0; i < 400; i++ {
					if rng.Intn(25) == 0 && snap.Live() > 2 {
						// Fail a random live node in both views.
						victim := mirror[rng.Intn(len(mirror))].Name
						if _, live := snap.byName[victim]; live {
							snap.Fail(victim)
							for j := range mirror {
								if mirror[j].Name == victim {
									mirror[j] = NodeInfo{Name: victim}
								}
							}
						}
					}
					p := randPod(rng, i)
					got, errIdx := indexed.ScheduleOn(p, snap)
					want, errBrute := brute.Schedule(p, mirror)
					if (errIdx == nil) != (errBrute == nil) {
						t.Fatalf("step %d: index err=%v, brute err=%v", i, errIdx, errBrute)
					}
					if got != want {
						t.Fatalf("step %d: index chose %q, brute chose %q", i, got, want)
					}
					if errIdx != nil {
						continue
					}
					if !snap.Commit(got, p) {
						t.Fatalf("step %d: commit to %q failed", i, got)
					}
					for j := range mirror {
						if mirror[j].Name == got {
							mirror[j].Allocated = mirror[j].Allocated.Add(p.Requests)
							mirror[j].Pods = append(mirror[j].Pods, p)
						}
					}
					if err := snap.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
				}
				st := indexed.Stats()
				if st.Pruned == 0 {
					t.Error("index pruned nothing over 400 randomized placements")
				}
			})
		}
	}
}

// TestSnapshotCandidatesComplete cross-checks the prefix property
// directly: every node the brute-force filter chain accepts must be in
// the candidate set.
func TestSnapshotCandidatesComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New(PolicySpread)
	snap := NewSnapshot()
	snap.Reset()
	for i := 0; i < 80; i++ {
		snap.AddNode(randNode(rng, i))
	}
	snap.Build()
	for i := 0; i < 300; i++ {
		p := randPod(rng, i)
		cand := snap.candidates(&p)
		inCand := make(map[int32]bool, len(cand))
		for _, e := range cand {
			inCand[e] = true
		}
		for e := range snap.nodes {
			free := snap.nodes[e].Free()
			if s.feasible(&p, &snap.nodes[e], &free) && !inCand[int32(e)] {
				t.Fatalf("pod %d: feasible node %s missing from candidates", i, snap.nodes[e].Name)
			}
		}
	}
}

// TestParallelDeterminism runs the same placement sequence with the
// parallel fan-out off and forced on: every decision must be
// byte-identical regardless of sharding.
func TestParallelDeterminism(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		seq, par := New(PolicySpread), New(PolicySpread)
		par.SetParallel(workers, 1) // engage on every placement
		rng := rand.New(rand.NewSource(23))
		snapSeq, snapPar := NewSnapshot(), NewSnapshot()
		snapSeq.Reset()
		snapPar.Reset()
		for i := 0; i < 700; i++ {
			n := randNode(rng, i)
			snapSeq.AddNode(n)
			snapPar.AddNode(n)
		}
		snapSeq.Build()
		snapPar.Build()
		for i := 0; i < 300; i++ {
			p := randPod(rng, i)
			a, errA := seq.ScheduleOn(p, snapSeq)
			b, errB := par.ScheduleOn(p, snapPar)
			if a != b || (errA == nil) != (errB == nil) {
				t.Fatalf("workers=%d step %d: sequential chose (%q,%v), parallel (%q,%v)",
					workers, i, a, errA, b, errB)
			}
			if errA == nil {
				snapSeq.Commit(a, p)
				snapPar.Commit(b, p)
			}
		}
		if par.Stats().ParallelCalls == 0 {
			t.Fatalf("workers=%d: parallel path never engaged", workers)
		}
	}
}

// TestParallelSmallCandidateSets: worker counts near or above the
// candidate count must not panic and must keep choosing the sequential
// winner. Regression test for the ceil-chunk shard split, where shard
// lo = i*ceil(n/w) could run past the candidate slice (e.g. workers=7,
// 10 candidates ⇒ cand[12:10]).
func TestParallelSmallCandidateSets(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, workers := range []int{2, 3, 7, 10, 16, 64} {
		for nodes := 1; nodes <= 12; nodes++ {
			seq, par := New(PolicySpread), New(PolicySpread)
			par.SetParallel(workers, 1)
			snapSeq, snapPar := NewSnapshot(), NewSnapshot()
			snapSeq.Reset()
			snapPar.Reset()
			for i := 0; i < nodes; i++ {
				n := randNode(rng, i)
				snapSeq.AddNode(n)
				snapPar.AddNode(n)
			}
			snapSeq.Build()
			snapPar.Build()
			for i := 0; i < 20; i++ {
				p := randPod(rng, i)
				a, errA := seq.ScheduleOn(p, snapSeq)
				b, errB := par.ScheduleOn(p, snapPar)
				if a != b || (errA == nil) != (errB == nil) {
					t.Fatalf("workers=%d nodes=%d step %d: sequential (%q,%v), parallel (%q,%v)",
						workers, nodes, i, a, errA, b, errB)
				}
				if errA == nil {
					snapSeq.Commit(a, p)
					snapPar.Commit(b, p)
				}
			}
		}
	}
}

// TestAddNodeDuplicatePanics: a duplicate node name would corrupt the
// byName↔order correspondence, so AddNode must refuse it loudly.
func TestAddNodeDuplicatePanics(t *testing.T) {
	snap := NewSnapshot()
	snap.Reset()
	snap.AddNode(NodeInfo{Name: "node-a", Allocatable: resource.New(1, 1, 1, 1)})
	defer func() {
		if recover() == nil {
			t.Fatal("AddNode accepted a duplicate node name")
		}
	}()
	snap.AddNode(NodeInfo{Name: "node-a", Allocatable: resource.New(2, 2, 2, 2)})
}

// TestParallelThreshold: below minNodes the fan-out must stay off.
func TestParallelThreshold(t *testing.T) {
	s := New(PolicySpread)
	s.SetParallel(4, 0) // 0 → DefaultParallelThreshold
	snap := NewSnapshot()
	snap.Reset()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ { // well under the 512 default
		snap.AddNode(randNode(rng, i))
	}
	snap.Build()
	if _, err := s.ScheduleOn(pod("p", 100), snap); err != nil {
		t.Fatal(err)
	}
	if s.Stats().ParallelCalls != 0 {
		t.Error("fan-out engaged below the node threshold")
	}
}

// TestFusedScoreMatchesPlugins: the fused kernels must agree with the
// generic plugin chain they replace (up to float re-association from the
// cached reciprocal).
func TestFusedScoreMatchesPlugins(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, policy := range []Policy{PolicySpread, PolicyBinPack} {
		s := New(policy)
		for i := 0; i < 200; i++ {
			n := randNode(rng, i)
			n.Pods = []PodInfo{{App: "app-1"}, {App: "app-2"}}
			p := randPod(rng, i)
			inv := invAllocatable(n.Allocatable)
			fused := s.fused(&p, &n, &inv)
			var generic float64
			for j, sc := range s.scorers {
				generic += s.weights[j] * sc.Score(&p, &n)
			}
			generic /= s.wsum
			if diff := fused - generic; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("policy %d node %d: fused %v vs plugins %v", policy, i, fused, generic)
			}
		}
	}
}

// TestSnapshotFailAndTotal: failed entries stay in the node list (error
// totals, like the old drained flat snapshot) but out of the index.
func TestSnapshotFailAndTotal(t *testing.T) {
	s := New(PolicySpread)
	snap := NewSnapshot()
	snap.Reset()
	for i := 0; i < 3; i++ {
		snap.AddNode(node(fmt.Sprintf("node-%d", i), 4000, 0))
	}
	snap.Build()
	snap.Fail("node-1")
	if snap.Live() != 2 || snap.Len() != 3 {
		t.Fatalf("Live=%d Len=%d, want 2/3", snap.Live(), snap.Len())
	}
	if err := snap.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Lookup("node-1"); ok {
		t.Error("failed node still resolvable")
	}
	// Unschedulable totals count the drained entry, as before.
	_, err := s.ScheduleOn(pod("big", 99000), snap)
	u, ok := err.(*Unschedulable)
	if !ok {
		t.Fatalf("want Unschedulable, got %v", err)
	}
	if u.Total != 3 {
		t.Errorf("Total = %d, want 3 (drained entry included)", u.Total)
	}
	// Double-fail and unknown-fail are harmless no-ops.
	if snap.Fail("node-1") || snap.Fail("nope") {
		t.Error("re-failing returned true")
	}
}

// TestScheduleSteadyStateAllocs gates the zero-allocation contract of
// both placement paths (mirrors the cluster's TestTickSteadyStateAllocs).
func TestScheduleSteadyStateAllocs(t *testing.T) {
	s := New(PolicySpread)
	snap := NewSnapshot()
	snap.Reset()
	rng := rand.New(rand.NewSource(1))
	nodes := make([]NodeInfo, 0, 128)
	for i := 0; i < 128; i++ {
		n := randNode(rng, i)
		snap.AddNode(n)
		nodes = append(nodes, n)
	}
	snap.Build()
	p := pod("steady", 500)
	if _, err := s.ScheduleOn(p, snap); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.ScheduleOn(p, snap); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("ScheduleOn steady state allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Schedule(p, nodes); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("Schedule steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestScheduleGangSteadyStateAllocs: the map-free gang path with reused
// destination must not allocate after warm-up.
func TestScheduleGangSteadyStateAllocs(t *testing.T) {
	s := New(PolicySpread)
	nodes := make([]NodeInfo, 16)
	for i := range nodes {
		nodes[i] = node(fmt.Sprintf("node-%02d", i), 16000, 0)
	}
	gang := make([]PodInfo, 8)
	for i := range gang {
		gang[i] = pod(fmt.Sprintf("g-%d", i), 1500)
	}
	dst := make([]string, len(gang))
	if err := s.ScheduleGangInto(dst, gang, nodes); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := s.ScheduleGangInto(dst, gang, nodes); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("ScheduleGangInto steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPreemptSteadyStateAllocs: the no-plan path must not allocate (it
// runs on every pending pod that failed to schedule).
func TestPreemptSteadyStateAllocs(t *testing.T) {
	s := New(PolicySpread)
	n := node("n1", 4000, 4000)
	n.Pods = []PodInfo{
		{Name: "svc-1", Requests: resource.New(2000, 0, 0, 0), Priority: 100},
		{Name: "svc-2", Requests: resource.New(2000, 0, 0, 0), Priority: 100},
	}
	nodes := []NodeInfo{n}
	incoming := PodInfo{Name: "equal", Requests: resource.New(1000, 0, 0, 0), Priority: 100}
	if plan := s.Preempt(incoming, nodes); plan != nil {
		t.Fatalf("unexpected plan %+v", plan)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if plan := s.Preempt(incoming, nodes); plan != nil {
			t.Fatal("plan appeared")
		}
	}); allocs > 0 {
		t.Errorf("Preempt no-plan path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestScheduleGangIntoValidates: dst length must match.
func TestScheduleGangIntoValidates(t *testing.T) {
	s := New(PolicySpread)
	if err := s.ScheduleGangInto(make([]string, 1), make([]PodInfo, 2), nil); err == nil {
		t.Error("mismatched dst accepted")
	}
}

// TestGangEquivalentOnSnapshots: ScheduleGang(map) and ScheduleGangInto
// produce the same assignment.
func TestGangEquivalentOnSnapshots(t *testing.T) {
	s := New(PolicyBinPack)
	nodes := []NodeInfo{node("n1", 4000, 0), node("n2", 4000, 0)}
	gang := []PodInfo{pod("g-0", 2000), pod("g-1", 2000), pod("g-2", 2000)}
	m, err := s.ScheduleGang(gang, nodes)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]string, len(gang))
	if err := s.ScheduleGangInto(dst, gang, nodes); err != nil {
		t.Fatal(err)
	}
	for i, p := range gang {
		if m[p.Name] != dst[i] {
			t.Errorf("member %s: map says %q, into says %q", p.Name, m[p.Name], dst[i])
		}
	}
}

func benchSnapshot(b *testing.B, n int) (*Scheduler, *Snapshot) {
	b.Helper()
	s := New(PolicySpread)
	snap := NewSnapshot()
	snap.Reset()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		snap.AddNode(randNode(rng, i))
	}
	snap.Build()
	return s, snap
}

func BenchmarkScheduleOn(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			s, snap := benchSnapshot(b, n)
			p := pod("p", 500)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ScheduleOn(p, snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScheduleBrute(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			s, snap := benchSnapshot(b, n)
			nodes := append([]NodeInfo(nil), snap.Nodes()...)
			p := pod("p", 500)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(p, nodes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScheduleGangInto(b *testing.B) {
	s := New(PolicySpread)
	nodes := make([]NodeInfo, 64)
	for i := range nodes {
		nodes[i] = node(fmt.Sprintf("node-%02d", i), 16000, 0)
	}
	gang := make([]PodInfo, 16)
	for i := range gang {
		gang[i] = pod(fmt.Sprintf("g-%02d", i), 1500)
	}
	dst := make([]string, len(gang))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ScheduleGangInto(dst, gang, nodes); err != nil {
			b.Fatal(err)
		}
	}
}
