package sched

import (
	"sync"

	"evolve/internal/par"
)

// DefaultParallelThreshold is the candidate count below which a
// parallel-enabled scheduler still scores sequentially: sharding a small
// node set costs more in hand-off than the scoring saves.
const DefaultParallelThreshold = 512

// parallelCfg holds the opt-in parallel score fan-out settings.
type parallelCfg struct {
	workers  int // shards per placement; <=1 disables the fan-out
	minNodes int // minimum candidate count to engage it
}

// SetParallel enables the parallel score fan-out: placements probing at
// least minNodes candidates are split across workers shards scored on a
// shared pool. workers <= 1 disables it; minNodes <= 0 selects
// DefaultParallelThreshold. Placements are byte-identical with the
// fan-out on or off — the per-node scores do not depend on sharding and
// the reduction uses the same (score, name) total order as the
// sequential path.
func (s *Scheduler) SetParallel(workers, minNodes int) {
	if workers < 1 {
		workers = 1
	}
	if minNodes <= 0 {
		minNodes = DefaultParallelThreshold
	}
	s.par = parallelCfg{workers: workers, minNodes: minNodes}
}

// shardJob asks the shared par pool to probe one candidate shard. The
// scheduler and snapshot are only read; the pod lives in scheduler
// scratch so the caller's argument never escapes.
type shardJob struct {
	s    *Scheduler
	snap *Snapshot
	cand []int32
	out  *shardBest
	wg   *sync.WaitGroup
}

// Run implements par.Job: score one shard and record its local best.
func (j *shardJob) Run() {
	j.out.idx, j.out.score = j.s.bestOf(&j.s.parPod, j.snap, j.cand)
	j.wg.Done()
}

// shardBest is one shard's result, padded so adjacent results do not
// share a cache line while workers write them concurrently.
type shardBest struct {
	idx   int32
	score float64
	_     [48]byte
}

// parallelBest is bestOf split across the worker pool: candidates are
// cut into contiguous shards, every shard reports its local best, and
// the reduction walks the shard results with the same strict (score
// desc, name asc) total order the sequential loop uses — node names are
// unique, so the global argmax is unique and the result cannot depend on
// the sharding. The caller scores the first shard itself rather than
// idling on Wait.
func (s *Scheduler) parallelBest(pod *PodInfo, snap *Snapshot, cand []int32) int32 {
	w := s.par.workers
	if w > len(cand) {
		w = len(cand)
	}
	s.parPod = *pod
	if cap(s.parRes) < w {
		s.parRes = make([]shardBest, w)
		s.parJobs = make([]shardJob, w)
	}
	res := s.parRes[:w]
	jobs := s.parJobs[:w]
	// Shard i covers cand[i*n/w : (i+1)*n/w]: the remainder is spread
	// across shards, every shard is non-empty (w <= n), and no bound can
	// run past the slice — ceil-sized chunks would, once w approaches n.
	n := len(cand)
	s.parWG.Add(w - 1)
	for i := 1; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		jobs[i] = shardJob{s: s, snap: snap, cand: cand[lo:hi], out: &res[i], wg: &s.parWG}
		par.Submit(&jobs[i])
	}
	res[0].idx, res[0].score = s.bestOf(&s.parPod, snap, cand[:n/w])
	s.parWG.Wait()
	best, bestScore := res[0].idx, res[0].score
	for i := 1; i < w; i++ {
		e, score := res[i].idx, res[i].score
		if e < 0 {
			continue
		}
		if best < 0 || score > bestScore ||
			(score == bestScore && snap.nodes[e].Name < snap.nodes[best].Name) {
			best, bestScore = e, score
		}
	}
	return best
}
