package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"evolve/internal/resource"
)

// TestScheduleBatchMatchesScheduleOn: a batch is evaluated against one
// frozen snapshot, so each slot must land exactly where ScheduleOn
// would have placed that pod alone — same winner, same infeasibility.
func TestScheduleBatchMatchesScheduleOn(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			batch, solo := New(PolicySpread), New(PolicySpread)
			snap := NewSnapshot()
			snap.Reset()
			for i := 0; i < 60; i++ {
				snap.AddNode(randNode(rng, i))
			}
			snap.Build()
			for round := 0; round < 50; round++ {
				n := rng.Intn(int(resource.NumKinds)) + 1
				pods := make([]PodInfo, n)
				for j := range pods {
					pods[j] = randPod(rng, round*8+j)
				}
				results := make([]BatchResult, n)
				batch.ScheduleBatch(pods, snap, results)
				for j := range pods {
					want, err := solo.ScheduleOn(pods[j], snap)
					if results[j].OK != (err == nil) {
						t.Fatalf("round %d slot %d: batch OK=%v, solo err=%v", round, j, results[j].OK, err)
					}
					if results[j].OK && results[j].Node != want {
						t.Fatalf("round %d slot %d: batch chose %q, solo chose %q", round, j, results[j].Node, want)
					}
				}
			}
			if batch.Stats().BatchCalls == 0 {
				t.Error("BatchCalls not counted")
			}
		})
	}
}

// TestDisjointCandidates cross-checks the disjointness oracle against
// the literal candidate sets: a true answer must mean an empty
// intersection, and pods keyed to the same scarcest kind — whose
// prefixes nest — must always report overlapping.
func TestDisjointCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	snap := NewSnapshot()
	snap.Reset()
	for i := 0; i < 48; i++ {
		snap.AddNode(randNode(rng, i))
	}
	snap.Build()
	checked, disjoint := 0, 0
	for i := 0; i < 400; i++ {
		a, b := randPod(rng, 2*i), randPod(rng, 2*i+1)
		got := snap.DisjointCandidates(&a, &b)
		if got != snap.DisjointCandidates(&b, &a) {
			t.Fatalf("pair %d: DisjointCandidates not symmetric", i)
		}
		ca, cb := snap.candidates(&a), snap.candidates(&b)
		inA := make(map[int32]bool, len(ca))
		for _, e := range ca {
			inA[e] = true
		}
		overlap := false
		for _, e := range cb {
			if inA[e] {
				overlap = true
				break
			}
		}
		ka, _ := snap.candidatePrefix(&a)
		kb, _ := snap.candidatePrefix(&b)
		if got && overlap {
			t.Fatalf("pair %d: reported disjoint but candidates intersect", i)
		}
		if got && ka == kb {
			t.Fatalf("pair %d: same-kind prefixes nest, cannot be disjoint", i)
		}
		checked++
		if got {
			disjoint++
		}
	}
	if checked != 400 {
		t.Fatalf("checked %d pairs, want 400", checked)
	}
	t.Logf("randomized sweep: %d/%d pairs disjoint", disjoint, checked)
}

// TestDisjointCandidatesPolarized pins the positive case on the
// topology the batch drain exists for: CPU-rich/memory-poor nodes next
// to memory-rich/CPU-poor ones, so a CPU-bound pod's candidate prefix
// (top of the CPU order) and a memory-bound pod's (top of the MEM
// order) share no node. The oracle must say so — otherwise the batch
// path is dead code on its motivating workload.
func TestDisjointCandidatesPolarized(t *testing.T) {
	snap := NewSnapshot()
	snap.Reset()
	for i := 0; i < 8; i++ {
		snap.AddNode(NodeInfo{
			Name:        fmt.Sprintf("cpu-%02d", i),
			Allocatable: resource.New(64000, 8<<30, 1e9, 2e9),
		})
		snap.AddNode(NodeInfo{
			Name:        fmt.Sprintf("mem-%02d", i),
			Allocatable: resource.New(2000, 256<<30, 1e9, 2e9),
		})
	}
	snap.Build()
	cpuBound := PodInfo{Name: "cb", App: "a", Requests: resource.New(16000, 1<<30, 1e6, 1e6)}
	memBound := PodInfo{Name: "mb", App: "b", Requests: resource.New(500, 64<<30, 1e6, 1e6)}
	if !snap.DisjointCandidates(&cpuBound, &memBound) {
		t.Fatal("polarized pods reported overlapping")
	}
	// And the oracle's claim must be literally true.
	ca, cb := snap.candidates(&cpuBound), snap.candidates(&memBound)
	inA := make(map[int32]bool, len(ca))
	for _, e := range ca {
		inA[e] = true
	}
	for _, e := range cb {
		if inA[e] {
			t.Fatalf("candidate sets intersect at %s", snap.nodes[e].Name)
		}
	}
	// Pods keyed to the same scarce kind must stay serial.
	cpuBound2 := PodInfo{Name: "cb2", App: "c", Requests: resource.New(8000, 1<<30, 1e6, 1e6)}
	if snap.DisjointCandidates(&cpuBound, &cpuBound2) {
		t.Fatal("two CPU-bound pods reported disjoint (nested prefixes)")
	}
}
