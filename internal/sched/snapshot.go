package sched

import (
	"fmt"
	"slices"
	"strings"

	"evolve/internal/resource"
)

// Snapshot is a reusable scheduling view of the cluster: the node states
// plus derived per-node caches (free headroom, reciprocal allocatable)
// and a per-resource feasibility index that lets ScheduleOn probe only
// the nodes that can possibly fit a pod.
//
// The index keeps, for every resource kind, the live node entries sorted
// by free capacity descending (ties: name ascending). A pod requesting r
// of kind k can only fit on the prefix of order[k] whose free[k] >= r, so
// the candidate set for a pod is the shortest such prefix across its
// requested kinds. Every node feasible for the pod lies in *every*
// kind's prefix, so probing one prefix loses nothing — the equivalence
// with a brute-force scan is exact (see TestSnapshotEquivalence).
//
// Lifecycle: Reset, AddNode (+AddPod) per node, Build, then any mix of
// ScheduleOn / Commit / Fail. Commit and Fail maintain the index
// incrementally; a full rebuild is only needed when node state changes
// behind the snapshot's back. A Snapshot is not safe for concurrent
// mutation; the parallel score fan-out only reads it.
type Snapshot struct {
	nodes []NodeInfo
	free  []resource.Vector
	inv   []resource.Vector
	// byName maps live node name → entry index. Failed entries are
	// removed; len(byName) is the live count.
	byName map[string]int32
	// podBufs[e] is the snapshot-owned pod buffer for entry e. nodes[e].
	// Pods aliases caller memory until the first mutation (owned[e]
	// false), then points into podBufs[e].
	podBufs [][]PodInfo
	owned   []bool
	// order[k] holds the live entries sorted by free[k] descending, name
	// ascending; pos[k][e] is e's position in order[k] (-1 when failed).
	order [resource.NumKinds][]int32
	pos   [resource.NumKinds][]int32
	built bool

	stats SnapshotStats
}

// SnapshotStats counts snapshot maintenance work.
type SnapshotStats struct {
	Builds  uint64 // full index (re)builds
	Commits uint64 // incremental pod commits
	Fails   uint64 // node drains
}

// NewSnapshot returns an empty snapshot ready for Reset/AddNode/Build.
func NewSnapshot() *Snapshot {
	return &Snapshot{byName: make(map[string]int32)}
}

// Reset empties the snapshot, keeping its buffers for reuse.
func (sn *Snapshot) Reset() {
	sn.nodes = sn.nodes[:0]
	sn.free = sn.free[:0]
	sn.inv = sn.inv[:0]
	clear(sn.byName)
	sn.owned = sn.owned[:0]
	for k := range sn.order {
		sn.order[k] = sn.order[k][:0]
		sn.pos[k] = sn.pos[k][:0]
	}
	sn.built = false
}

// AddNode appends a node to the snapshot. info.Pods is aliased until the
// first Commit touches the entry (copy-on-write); callers that keep
// mutating the source slice should pass a copy or use AddPod. Call Build
// after the last AddNode. Node names must be unique: a duplicate would
// silently shadow the earlier entry in byName while both stay probeable
// through the index, so AddNode panics rather than corrupt the snapshot.
func (sn *Snapshot) AddNode(info NodeInfo) {
	if _, dup := sn.byName[info.Name]; dup {
		panic("sched: duplicate node name " + info.Name)
	}
	e := int32(len(sn.nodes))
	sn.nodes = append(sn.nodes, info)
	sn.free = append(sn.free, info.Free())
	sn.inv = append(sn.inv, invAllocatable(info.Allocatable))
	sn.byName[info.Name] = e
	sn.owned = append(sn.owned, false)
	sn.built = false
}

// AddPod appends a pod to the most recently added node, using
// snapshot-owned buffers (the cluster's rebuild path: AddNode with nil
// Pods, then AddPod per running pod).
func (sn *Snapshot) AddPod(p PodInfo) {
	e := len(sn.nodes) - 1
	if e < 0 {
		panic("sched: AddPod before AddNode")
	}
	sn.ensureOwned(e)
	sn.podBufs[e] = append(sn.podBufs[e], p)
	sn.nodes[e].Pods = sn.podBufs[e]
}

// ensureOwned moves entry e's pod list into the snapshot-owned buffer so
// it can be appended to without disturbing caller memory.
func (sn *Snapshot) ensureOwned(e int) {
	for len(sn.podBufs) <= e {
		sn.podBufs = append(sn.podBufs, nil)
	}
	if sn.owned[e] {
		return
	}
	sn.podBufs[e] = append(sn.podBufs[e][:0], sn.nodes[e].Pods...)
	sn.nodes[e].Pods = sn.podBufs[e]
	sn.owned[e] = true
}

// Build (re)computes the feasibility index over the current entries.
// ScheduleOn builds lazily, but calling it explicitly after the AddNode
// loop keeps the build cost out of the first placement.
func (sn *Snapshot) Build() {
	sn.stats.Builds++
	n := len(sn.nodes)
	for k := range sn.order {
		order := sn.order[k][:0]
		for e := range sn.nodes {
			if _, live := sn.byName[sn.nodes[e].Name]; live {
				order = append(order, int32(e))
			}
		}
		kk := k
		slices.SortFunc(order, func(a, b int32) int {
			fa, fb := sn.free[a][kk], sn.free[b][kk]
			if fa != fb {
				if fa > fb {
					return -1
				}
				return 1
			}
			return strings.Compare(sn.nodes[a].Name, sn.nodes[b].Name)
		})
		sn.order[k] = order
		pos := sn.pos[k][:0]
		for len(pos) < n {
			pos = append(pos, -1)
		}
		for i, e := range order {
			pos[e] = int32(i)
		}
		sn.pos[k] = pos
	}
	sn.built = true
}

// Commit applies a pod placement to the snapshot: allocation, headroom,
// pod list, and index position are all updated incrementally (the entry
// only ever moves toward the low-headroom end of each kind's order).
// Returns false when the node is unknown or failed.
func (sn *Snapshot) Commit(node string, p PodInfo) bool {
	e, ok := sn.byName[node]
	if !ok {
		return false
	}
	sn.stats.Commits++
	sn.nodes[e].Allocated = sn.nodes[e].Allocated.Add(p.Requests)
	sn.free[e] = sn.nodes[e].Free()
	sn.ensureOwned(int(e))
	sn.podBufs[e] = append(sn.podBufs[e], p)
	sn.nodes[e].Pods = sn.podBufs[e]
	if !sn.built {
		return true
	}
	for k := range sn.order {
		sn.siftDown(k, e)
	}
	return true
}

// siftDown restores order[k] around entry e after its free capacity
// decreased: bubble it toward the tail while a right neighbour should
// precede it.
func (sn *Snapshot) siftDown(k int, e int32) {
	order, pos := sn.order[k], sn.pos[k]
	i := pos[e]
	for int(i) < len(order)-1 {
		n := order[i+1]
		fe, fn := sn.free[e][k], sn.free[n][k]
		if fn > fe || (fn == fe && sn.nodes[n].Name < sn.nodes[e].Name) {
			order[i], order[i+1] = n, e
			pos[n], pos[e] = i, i+1
			i++
			continue
		}
		break
	}
}

// Fail drains a node in place, exactly like the cluster's FailNode used
// to do on the flat snapshot: the entry keeps its name (so error totals
// and traces stay stable) but loses capacity, pods, and its index slots,
// making it unreachable through candidates().
func (sn *Snapshot) Fail(node string) bool {
	e, ok := sn.byName[node]
	if !ok {
		return false
	}
	sn.stats.Fails++
	delete(sn.byName, node)
	sn.nodes[e] = NodeInfo{Name: node}
	sn.free[e] = resource.Vector{}
	sn.inv[e] = resource.Vector{}
	if int(e) < len(sn.podBufs) {
		sn.podBufs[e] = sn.podBufs[e][:0]
	}
	sn.owned[e] = false
	if !sn.built {
		return true
	}
	for k := range sn.order {
		order, pos := sn.order[k], sn.pos[k]
		i := pos[e]
		copy(order[i:], order[i+1:])
		sn.order[k] = order[:len(order)-1]
		for j := int(i); j < len(sn.order[k]); j++ {
			pos[sn.order[k][j]] = int32(j)
		}
		pos[e] = -1
	}
	return true
}

// Len returns the total entry count, failed entries included — the
// denominator of "0/N nodes available" messages.
func (sn *Snapshot) Len() int { return len(sn.nodes) }

// Live returns the number of schedulable (non-failed) entries.
func (sn *Snapshot) Live() int { return len(sn.byName) }

// Nodes exposes the underlying entries (failed ones drained in place).
// The slice and its contents are owned by the snapshot: read-only,
// valid until the next Reset.
func (sn *Snapshot) Nodes() []NodeInfo { return sn.nodes }

// Lookup returns the live entry for a node name.
func (sn *Snapshot) Lookup(name string) (*NodeInfo, bool) {
	e, ok := sn.byName[name]
	if !ok {
		return nil, false
	}
	return &sn.nodes[e], true
}

// Stats returns the maintenance counters.
func (sn *Snapshot) Stats() SnapshotStats { return sn.stats }

// candidates returns the entries that can possibly fit the pod: the
// shortest per-kind prefix of nodes with enough free capacity in that
// kind. The returned slice aliases the index — read-only, valid until
// the next mutation. A pod with no positive request gets every live
// entry.
func (sn *Snapshot) candidates(pod *PodInfo) []int32 {
	k, n := sn.candidatePrefix(pod)
	return sn.order[k][:n]
}

// candidatePrefix locates the pod's candidate set in the feasibility
// index: the kind whose feasible prefix is shortest, and that prefix's
// length. A pod with no positive request gets kind 0's whole order
// (every live entry).
func (sn *Snapshot) candidatePrefix(pod *PodInfo) (kind, n int) {
	if !sn.built {
		sn.Build()
	}
	bestK, bestLen := -1, 0
	for k := 0; k < int(resource.NumKinds); k++ {
		req := pod.Requests[k]
		if req <= 0 {
			continue
		}
		order := sn.order[k]
		// First position whose free[k] < req; order is free-descending so
		// the feasible prefix is order[:i].
		lo, hi := 0, len(order)
		for lo < hi {
			mid := (lo + hi) / 2
			if sn.free[order[mid]][k] >= req {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if bestK < 0 || lo < bestLen {
			bestK, bestLen = k, lo
		}
	}
	if bestK < 0 {
		return 0, len(sn.order[0])
	}
	return bestK, bestLen
}

// maxDisjointScan bounds the membership scan in DisjointCandidates: the
// check is O(shorter prefix), so past this length the answer is a
// conservative "overlapping" rather than a linear walk per queue pod.
const maxDisjointScan = 32

// DisjointCandidates reports whether the two pods' candidate prefixes
// are provably disjoint. Disjoint candidates mean disjoint feasible
// sets (feasible ⊆ candidates), so committing one pod's placement
// cannot change which node the other would pick — the licence for
// scoring both concurrently against the same snapshot and committing
// in queue order (ScheduleBatch). Conservative: false negatives only.
//
// Two prefixes of the same kind's order always nest, so disjoint pods
// necessarily index through different resource kinds — batches are
// bounded by resource.NumKinds. An empty prefix (unschedulable pod)
// reports overlapping so the caller routes it through the serial path
// and its error message sees the exact committed state.
func (sn *Snapshot) DisjointCandidates(a, b *PodInfo) bool {
	ka, na := sn.candidatePrefix(a)
	kb, nb := sn.candidatePrefix(b)
	if na == 0 || nb == 0 || ka == kb {
		return false
	}
	if na > nb {
		ka, na, kb, nb = kb, nb, ka, na
	}
	if na > maxDisjointScan {
		return false
	}
	pos := sn.pos[kb]
	for _, e := range sn.order[ka][:na] {
		if pos[e] < int32(nb) {
			return false
		}
	}
	return true
}

// CheckInvariants verifies the snapshot's internal consistency: cache
// coherence, index ordering, and the index↔liveness correspondence.
// Test hook; O(kinds × nodes log nodes).
func (sn *Snapshot) CheckInvariants() error {
	for name, e := range sn.byName {
		if int(e) >= len(sn.nodes) || sn.nodes[e].Name != name {
			return fmt.Errorf("sched: byName[%s]=%d does not match entry", name, e)
		}
	}
	for e := range sn.nodes {
		want := sn.nodes[e].Free()
		if sn.free[e] != want {
			return fmt.Errorf("sched: entry %d free cache %v, want %v", e, sn.free[e], want)
		}
		if _, live := sn.byName[sn.nodes[e].Name]; live {
			if want := invAllocatable(sn.nodes[e].Allocatable); sn.inv[e] != want {
				return fmt.Errorf("sched: entry %d inv cache %v, want %v", e, sn.inv[e], want)
			}
			// invAllocatable precondition: no allocation on a zero-capacity
			// dimension, or fused and plugin-chain scores diverge.
			for k := range sn.nodes[e].Allocatable {
				if sn.nodes[e].Allocatable[k] == 0 && sn.nodes[e].Allocated[k] > 0 {
					return fmt.Errorf("sched: entry %d (%s) allocated %v of zero-capacity kind %d",
						e, sn.nodes[e].Name, sn.nodes[e].Allocated[k], k)
				}
			}
		}
	}
	if !sn.built {
		return nil
	}
	for k := range sn.order {
		order, pos := sn.order[k], sn.pos[k]
		if len(order) != len(sn.byName) {
			return fmt.Errorf("sched: order[%d] holds %d entries, %d live", k, len(order), len(sn.byName))
		}
		for i, e := range order {
			if pos[e] != int32(i) {
				return fmt.Errorf("sched: pos[%d][%d]=%d, want %d", k, e, pos[e], i)
			}
			if i == 0 {
				continue
			}
			p := order[i-1]
			fp, fe := sn.free[p][k], sn.free[e][k]
			if fp < fe || (fp == fe && sn.nodes[p].Name >= sn.nodes[e].Name) {
				return fmt.Errorf("sched: order[%d] violated at %d: %s(%v) before %s(%v)",
					k, i, sn.nodes[p].Name, fp, sn.nodes[e].Name, fe)
			}
		}
	}
	return nil
}
