package cluster

import (
	"strings"
	"testing"
	"time"
)

func TestEventLogRecordsLifecycle(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()
	task := testTask("t1", 2000, 10000) // 5s at 2000m
	if err := c.SubmitTask(task); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Engine().Run(30 * time.Second)
	if err := c.FailNode("node-1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreNode("node-1"); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	for _, e := range c.Events() {
		kinds[e.Kind]++
		if e.Object == "" || e.Message == "" {
			t.Errorf("incomplete event: %+v", e)
		}
	}
	for _, want := range []string{"pod-scheduled", "task-completed", "node-failed", "node-restored"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events recorded (got %v)", want, kinds)
		}
	}
	// Events are time-ordered.
	evs := c.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
	if s := evs[0].String(); !strings.Contains(s, evs[0].Kind) {
		t.Errorf("event string = %q", s)
	}
}

func TestEventLogRingWraps(t *testing.T) {
	var l eventLog
	for i := 0; i < eventLogCapacity+10; i++ {
		l.add(Event{At: time.Duration(i), Kind: "k", Object: "o"})
	}
	snap := l.snapshot()
	if len(snap) != eventLogCapacity {
		t.Fatalf("snapshot length = %d", len(snap))
	}
	if l.dropped != 10 {
		t.Errorf("dropped = %d, want 10", l.dropped)
	}
	// Oldest-first after wrap.
	if snap[0].At != time.Duration(10) {
		t.Errorf("first event At = %v, want 10", snap[0].At)
	}
	if snap[len(snap)-1].At != time.Duration(eventLogCapacity+9) {
		t.Errorf("last event At = %v", snap[len(snap)-1].At)
	}
	var empty eventLog
	if empty.snapshot() != nil {
		t.Error("empty log should snapshot nil")
	}
}
