package cluster

import (
	"fmt"

	"evolve/internal/obs"
	"evolve/internal/perf"
	"evolve/internal/registry"
	"evolve/internal/sched"
)

// SubmitTask enqueues one finite-work pod; it is placed on the next tick
// (big-data tasks tolerate queueing).
func (c *Cluster) SubmitTask(spec TaskSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, ok := c.pods[spec.Name]; ok {
		return fmt.Errorf("cluster: pod %s already exists", spec.Name)
	}
	p := c.newTaskPod(spec)
	if err := c.store.Create(p); err != nil {
		return err
	}
	c.pods[p.Name] = p
	c.indexAddPod(p)
	return nil
}

// SubmitGang places an all-or-nothing set of task pods (an HPC job's
// ranks). If the gang does not fit right now, nothing is created and the
// scheduler error is returned — the HPC queue retries later.
func (c *Cluster) SubmitGang(specs []TaskSpec) error {
	if len(specs) == 0 {
		return fmt.Errorf("cluster: empty gang")
	}
	infos := make([]sched.PodInfo, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
		if _, ok := c.pods[s.Name]; ok {
			return fmt.Errorf("cluster: pod %s already exists", s.Name)
		}
		infos[i] = sched.PodInfo{Name: s.Name, App: s.Job, Requests: s.Requests, Priority: s.Priority, NodeSelector: s.NodeSelector}
	}
	assignment, err := c.sch.ScheduleGang(infos, c.nodeInfos())
	if err != nil {
		return err
	}
	// Gang admission is the causal anchor for every rank: the spans of the
	// pods created below parent to it, and their decision→effect samples
	// measure admission→bind lag (zero here — gangs bind synchronously —
	// but the chain still explains *why* each rank exists).
	now := c.now()
	var gangSpan uint64
	if c.tracer.Enabled() {
		gangSpan = c.tracer.RecordSpan(obs.Span{
			Kind: obs.SpanGang, App: specs[0].Job, Object: specs[0].Job,
			Detail: fmt.Sprintf("ranks=%d", len(specs)),
			Shard:  -1, Start: now, End: now,
		})
	}
	// All-or-nothing also on the commit side: if any create or bind fails
	// partway (a node dying between the gang decision and the bind), roll
	// back every rank already placed and report the error — the HPC queue
	// sees the same "does not fit" contract as a failed ScheduleGang.
	created := make([]*PodObject, 0, len(specs))
	rollback := func(cause error) error {
		for _, q := range created {
			c.deletePod(q)
		}
		c.met.Counter("faults/gang-rollback").Inc()
		c.recordEvent("gang-rollback", specs[0].Job, "gang commit failed (%v); %d rank(s) rolled back", cause, len(created))
		return fmt.Errorf("cluster: gang %s aborted: %w", specs[0].Job, cause)
	}
	for _, s := range specs {
		p := c.newTaskPod(s)
		p.causeSpan, p.causeAt = gangSpan, now
		if err := c.store.Create(p); err != nil {
			return rollback(err)
		}
		c.pods[p.Name] = p
		c.indexAddPod(p)
		created = append(created, p)
		if err := c.bind(p, assignment[p.Name]); err != nil {
			return rollback(err)
		}
	}
	c.met.Counter("sched/gangs").Inc()
	return nil
}

func (c *Cluster) newTaskPod(spec TaskSpec) *PodObject {
	specCopy := spec
	return &PodObject{
		Meta:         registry.Meta{Kind: KindPod, Name: spec.Name},
		App:          spec.Job,
		Phase:        Pending,
		Requests:     spec.Requests,
		Priority:     spec.Priority,
		NodeSelector: spec.NodeSelector,
		Task:         &specCopy,
		CreatedAt:    c.now(),
		pendingSince: c.now(),
	}
}

// armTaskCompletion schedules the task's completion event. The duration
// is computed at bind time from the granted allocation and the node's
// current interference; a kill (eviction) before the deadline cancels the
// completion because the pod is gone from the map by then.
func (c *Cluster) armTaskCompletion(p *PodObject) {
	slowdown := 1.0
	if c.cfg.Interference {
		if n, ok := c.nodes[p.Node]; ok {
			pressure, _ := n.Usage.DominantShare(n.Allocatable)
			slowdown = perf.InterferenceSlowdown(pressure)
		}
	}
	d := p.Task.Model.Duration(p.Requests, slowdown)
	p.FinishAt = c.now() + d
	// Tasks consume their full grant while running; that is what the
	// interference model sees.
	p.Usage = p.Requests
	name := p.Name
	boundAt := p.BoundAt
	c.eng.TagNext("task", taskTimerArg(name, boundAt))
	c.eng.After(d, c.taskCompletionFn(name, boundAt))
}

// KillTask evicts a pending or running task pod; its OnDone callback
// fires with failed=true. The HPC queue uses this to tear down the
// surviving ranks of a rigid job that lost one.
func (c *Cluster) KillTask(name string) error {
	p, ok := c.pods[name]
	if !ok {
		return fmt.Errorf("cluster: unknown task %s", name)
	}
	if !p.IsTask() {
		return fmt.Errorf("cluster: pod %s is not a task", name)
	}
	c.evict(p, "killed")
	return nil
}

func (c *Cluster) completeTask(p *PodObject) {
	node := p.Node
	c.release(p)
	p.Phase = Succeeded
	c.update(p)
	done := p.Task.OnDone
	name := p.Name
	c.indexRemovePod(p)
	delete(c.pods, p.Name)
	_ = c.store.Delete(KindPod, p.Name)
	c.met.Counter("tasks/completed").Inc()
	c.recordEvent("task-completed", name, "finished on %s", node)
	if c.tracer.Enabled() {
		c.emitSegmentSpan(p, node, "completed")
	}
	if done != nil {
		done(name, false)
	}
}
