package cluster

import (
	"strings"
	"testing"
	"time"

	"evolve/internal/control"
	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

func newTestCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	eng := sim.NewEngine(42)
	cfg := DefaultConfig()
	cfg.MeasurementNoise = 0 // deterministic assertions
	c := New(eng, cfg)
	if err := c.AddNodes("node", nodes, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
		t.Fatal(err)
	}
	return c
}

func testService(name string) ServiceSpec {
	return ServiceSpec{
		Name: name,
		Model: perf.ServiceModel{
			BaseLatency:      2 * time.Millisecond,
			DemandPerOp:      resource.New(10, 0, 20e3, 50e3),
			MemFixed:         256 << 20,
			MemPerConcurrent: 4 << 20,
			MaxLatency:       30 * time.Second,
		},
		PLO:             plo.Latency(100 * time.Millisecond),
		InitialReplicas: 2,
		InitialAlloc:    resource.New(1000, 1<<30, 50e6, 50e6),
		MinAlloc:        resource.New(100, 128<<20, 1e6, 1e6),
		MaxAlloc:        resource.New(8000, 16<<30, 500e6, 500e6),
		MaxReplicas:     20,
		Priority:        100,
	}
}

func testTask(name string, cpuMilli float64, cpuWork float64) TaskSpec {
	return TaskSpec{
		Name:     name,
		Job:      "job",
		Model:    perf.TaskModel{Work: resource.New(cpuWork, 0, 0, 0), MemSet: 1 << 30},
		Requests: resource.New(cpuMilli, 2<<30, 10e6, 10e6),
	}
}

func TestAddNodeValidation(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.AddNode("node-0", resource.New(1, 1, 1, 1)); err == nil {
		t.Error("duplicate node should fail")
	}
	if err := c.AddNode("bad", resource.Vector{}); err == nil {
		t.Error("zero capacity should fail")
	}
	if len(c.Nodes()) != 1 {
		t.Errorf("Nodes = %d", len(c.Nodes()))
	}
	cap := c.Capacity()
	if cap[resource.CPU] != 16000*0.94 {
		t.Errorf("allocatable cpu = %v, want 94%% of 16000", cap[resource.CPU])
	}
}

func TestCreateServiceAndScheduling(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateService(testService("web")); err == nil {
		t.Error("duplicate service should fail")
	}
	pods := c.appPods("web")
	if len(pods) != 2 {
		t.Fatalf("replicas = %d, want 2", len(pods))
	}
	for _, p := range pods {
		if p.Phase != Pending {
			t.Errorf("pod %s phase = %v before scheduling", p.Name, p.Phase)
		}
	}
	c.SchedulePendingNow()
	for _, p := range c.appPods("web") {
		if p.Phase != Running || p.Node == "" {
			t.Errorf("pod %s not running after scheduling: %v on %q", p.Name, p.Phase, p.Node)
		}
	}
	// Spread policy should put the two replicas on different nodes.
	p := c.appPods("web")
	if p[0].Node == p[1].Node {
		t.Errorf("replicas colocated on %s despite spread policy", p[0].Node)
	}
	// Node accounting.
	n := c.nodes[p[0].Node]
	if n.Allocated[resource.CPU] != 1000 {
		t.Errorf("node allocated cpu = %v", n.Allocated[resource.CPU])
	}
}

func TestServiceSpecValidation(t *testing.T) {
	base := testService("x")
	cases := []func(*ServiceSpec){
		func(s *ServiceSpec) { s.Name = "" },
		func(s *ServiceSpec) { s.InitialReplicas = 0 },
		func(s *ServiceSpec) { s.InitialAlloc = resource.Vector{} },
		func(s *ServiceSpec) { s.PLO.Target = 0 },
		func(s *ServiceSpec) { s.Model.DemandPerOp[resource.CPU] = 0 },
		func(s *ServiceSpec) { s.MaxAlloc = resource.New(1, 1, 1, 1) },
	}
	for i, mutate := range cases {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestTickProducesTelemetry(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("web", func(time.Duration) float64 { return 100 }); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Engine().Run(time.Minute)

	lat := c.Metrics().Series("app/web/latency-mean")
	if lat.Len() != 12 {
		t.Errorf("latency samples = %d, want 12 (5s ticks over 60s)", lat.Len())
	}
	last, _ := lat.Last()
	if last.Value <= 0 || last.Value > 1 {
		t.Errorf("latency = %v, want small positive", last.Value)
	}
	thr := c.Metrics().Series("app/web/throughput")
	if s, _ := thr.Last(); s.Value != 100 {
		t.Errorf("throughput = %v, want offered 100", s.Value)
	}
	if c.Metrics().Series("cluster/usage/cpu").Len() == 0 {
		t.Error("missing cluster usage series")
	}
}

func TestObserveAggregatesAndResets(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("web", func(time.Duration) float64 { return 150 }); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Engine().Run(30 * time.Second)

	obs, err := c.Observe("web")
	if err != nil {
		t.Fatal(err)
	}
	if obs.App != "web" || obs.Replicas != 2 || obs.ReadyReplicas != 2 {
		t.Errorf("obs = %+v", obs)
	}
	if obs.OfferedLoad != 150 {
		t.Errorf("offered = %v", obs.OfferedLoad)
	}
	if obs.SLI <= 0 {
		t.Error("SLI should be positive")
	}
	if obs.Usage[resource.CPU] <= 0 || obs.Utilisation[resource.CPU] <= 0 {
		t.Errorf("usage/util = %v / %v", obs.Usage, obs.Utilisation)
	}
	if obs.Interval != 30*time.Second {
		t.Errorf("interval = %v", obs.Interval)
	}
	// Second observe with no new ticks: empty window.
	obs2, _ := c.Observe("web")
	if obs2.SLI != 0 || obs2.Interval != 0 {
		t.Errorf("window not reset: %+v", obs2)
	}
	if _, err := c.Observe("nope"); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestApplyDecisionHorizontal(t *testing.T) {
	c := newTestCluster(t, 4)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()
	alloc := resource.New(1000, 1<<30, 50e6, 50e6)
	if err := c.ApplyDecision("web", control.Decision{Replicas: 5, Alloc: alloc}); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()
	pods := c.appPods("web")
	if len(pods) != 5 {
		t.Fatalf("replicas = %d, want 5", len(pods))
	}
	// Scale down to 1: newest deleted first, oldest survives.
	oldest := pods[0].Name
	if err := c.ApplyDecision("web", control.Decision{Replicas: 1, Alloc: alloc}); err != nil {
		t.Fatal(err)
	}
	pods = c.appPods("web")
	if len(pods) != 1 || pods[0].Name != oldest {
		t.Errorf("survivor = %v, want %s", pods, oldest)
	}
	// Node accounting consistent: sum of allocated equals pod requests.
	var total resource.Vector
	for _, n := range c.Nodes() {
		total = total.Add(n.Allocated)
	}
	if total[resource.CPU] != 1000 {
		t.Errorf("cluster allocated cpu = %v, want 1000", total[resource.CPU])
	}
}

func TestApplyDecisionVerticalInPlace(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()
	bigger := resource.New(4000, 8<<30, 100e6, 100e6)
	if err := c.ApplyDecision("web", control.Decision{Replicas: 2, Alloc: bigger}); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.appPods("web") {
		if p.Requests[resource.CPU] != 4000 {
			t.Errorf("pod %s cpu = %v after resize", p.Name, p.Requests[resource.CPU])
		}
		if p.Phase != Running {
			t.Errorf("in-place resize should not restart pod: %v", p.Phase)
		}
	}
	if err := c.ApplyDecision("web", control.Decision{Replicas: 1, Alloc: resource.Vector{}}); err == nil {
		t.Error("zero alloc decision should fail")
	}
	if err := c.ApplyDecision("nope", control.Decision{Replicas: 1, Alloc: bigger}); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestResizeThrottledByHeadroomThenMigrates(t *testing.T) {
	c := newTestCluster(t, 1) // single 16-core node
	spec := testService("web")
	spec.InitialReplicas = 1
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	// A fat neighbour takes most of the node.
	if err := c.SubmitTask(testTask("fat", 12000, 1e9)); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()

	// Ask for more CPU than the remaining headroom.
	want := resource.New(8000, 1<<30, 50e6, 50e6)
	if err := c.ApplyDecision("web", control.Decision{Replicas: 1, Alloc: want}); err != nil {
		t.Fatal(err)
	}
	p := c.appPods("web")[0]
	if p.Requests[resource.CPU] >= 8000 {
		t.Errorf("grant = %v, should be throttled below 8000", p.Requests[resource.CPU])
	}
	if c.Metrics().Counter("resize/throttled").Value() == 0 {
		t.Error("throttle not counted")
	}
	// Second throttled decision triggers migration (delete + pending).
	if err := c.ApplyDecision("web", control.Decision{Replicas: 1, Alloc: want}); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().Counter("resize/migrations").Value() == 0 {
		t.Error("expected a migration after persistent throttling")
	}
	pods := c.appPods("web")
	if len(pods) != 1 || pods[0].Phase != Pending {
		t.Errorf("migrated replica should be pending: %+v", pods)
	}
}

func TestTaskLifecycle(t *testing.T) {
	c := newTestCluster(t, 1)
	doneName := ""
	doneFailed := true
	task := testTask("t1", 2000, 60000) // 60000 mc·s at 2000m = 30s
	task.OnDone = func(name string, failed bool) { doneName, doneFailed = name, failed }
	if err := c.SubmitTask(task); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitTask(task); err == nil {
		t.Error("duplicate task should fail")
	}
	c.Start()
	c.Engine().Run(10 * time.Second)
	if p, ok := c.pods["t1"]; !ok || p.Phase != Running {
		t.Fatalf("task should be running: %+v", c.pods["t1"])
	}
	c.Engine().Run(40 * time.Second)
	if _, ok := c.pods["t1"]; ok {
		t.Error("completed task should be gone")
	}
	if doneName != "t1" || doneFailed {
		t.Errorf("OnDone = %q, failed=%v", doneName, doneFailed)
	}
	if c.Metrics().Counter("tasks/completed").Value() != 1 {
		t.Error("completion not counted")
	}
	// Node freed.
	if !c.nodes["node-0"].Allocated.IsZero() {
		t.Errorf("node allocation not released: %v", c.nodes["node-0"].Allocated)
	}
}

func TestTaskValidation(t *testing.T) {
	c := newTestCluster(t, 1)
	if err := c.SubmitTask(TaskSpec{}); err == nil {
		t.Error("empty task should fail")
	}
	if err := c.SubmitTask(TaskSpec{Name: "x"}); err == nil {
		t.Error("zero requests should fail")
	}
}

func TestGangAllOrNothing(t *testing.T) {
	c := newTestCluster(t, 2) // 2 nodes x 15040m allocatable
	var gang []TaskSpec
	for _, n := range []string{"g-0", "g-1", "g-2", "g-3"} {
		gang = append(gang, testTask(n, 7000, 7000*10))
	}
	if err := c.SubmitGang(gang); err != nil {
		t.Fatalf("gang should fit: %v", err)
	}
	for _, name := range []string{"g-0", "g-1", "g-2", "g-3"} {
		p, ok := c.pods[name]
		if !ok || p.Phase != Running {
			t.Errorf("gang member %s not running", name)
		}
	}
	// A second identical gang cannot fit; nothing must be created.
	var gang2 []TaskSpec
	for _, n := range []string{"h-0", "h-1", "h-2", "h-3"} {
		gang2 = append(gang2, testTask(n, 7000, 7000*10))
	}
	if err := c.SubmitGang(gang2); err == nil {
		t.Fatal("second gang should not fit")
	}
	for _, n := range []string{"h-0", "h-1", "h-2", "h-3"} {
		if _, ok := c.pods[n]; ok {
			t.Errorf("failed gang leaked pod %s", n)
		}
	}
	if err := c.SubmitGang(nil); err == nil {
		t.Error("empty gang should fail")
	}
}

func TestPreemptionEvictsBatchForService(t *testing.T) {
	c := newTestCluster(t, 1)
	// Fill the node with low-priority batch work.
	for i := 0; i < 2; i++ {
		task := testTask(strings.Repeat("b", i+1), 7000, 1e8)
		if err := c.SubmitTask(task); err != nil {
			t.Fatal(err)
		}
	}
	c.SchedulePendingNow()
	// High-priority service needing room only preemption can provide.
	spec := testService("web")
	spec.InitialReplicas = 1
	spec.InitialAlloc = resource.New(4000, 8<<30, 50e6, 50e6)
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()
	pods := c.appPods("web")
	if pods[0].Phase != Running {
		t.Fatalf("service pod should have preempted batch work: %v", pods[0].Phase)
	}
	if c.Metrics().Counter("sched/preemptions").Value() == 0 {
		t.Error("preemption not counted")
	}
	if c.Metrics().Counter("evictions/preempted").Value() == 0 {
		t.Error("eviction not counted")
	}
}

func TestNodeFailureReschedulesServicePods(t *testing.T) {
	c := newTestCluster(t, 2)
	spec := testService("web")
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()
	victim := c.appPods("web")[0].Node
	if err := c.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	// The replica on the failed node is pending again.
	pending := c.PendingPods()
	if len(pending) != 1 {
		t.Fatalf("pending after failure = %d, want 1", len(pending))
	}
	c.SchedulePendingNow()
	for _, p := range c.appPods("web") {
		if p.Phase != Running {
			t.Errorf("pod %s not rescheduled: %v", p.Name, p.Phase)
		}
		if p.Node == victim {
			t.Errorf("pod rescheduled onto failed node")
		}
	}
	if err := c.FailNode("nope"); err == nil {
		t.Error("unknown node should fail")
	}
	// Restore makes it usable again.
	if err := c.RestoreNode(victim); err != nil {
		t.Fatal(err)
	}
	if !c.nodes[victim].Ready {
		t.Error("node not restored")
	}
}

func TestNodeFailureFailsTasksAndNotifies(t *testing.T) {
	c := newTestCluster(t, 1)
	failed := false
	task := testTask("t1", 2000, 1e8)
	task.OnDone = func(name string, f bool) { failed = f }
	if err := c.SubmitTask(task); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()
	if err := c.FailNode("node-0"); err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("task OnDone(failed=true) not invoked")
	}
	if _, ok := c.pods["t1"]; ok {
		t.Error("failed task should be removed")
	}
	// The armed completion event must not fire for the dead task.
	c.Engine().Run(24 * time.Hour)
}

func TestUtilisationSummary(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("web", func(time.Duration) float64 { return 100 }); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Engine().Run(2 * time.Minute)
	allocFrac, usageFrac := c.UtilisationSummary(0, 2*time.Minute)
	if allocFrac[resource.CPU] <= 0 || allocFrac[resource.CPU] > 1 {
		t.Errorf("alloc frac = %v", allocFrac[resource.CPU])
	}
	if usageFrac[resource.CPU] <= 0 || usageFrac[resource.CPU] > allocFrac[resource.CPU] {
		t.Errorf("usage frac = %v vs alloc %v", usageFrac[resource.CPU], allocFrac[resource.CPU])
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() float64 {
		eng := sim.NewEngine(7)
		c := New(eng, DefaultConfig()) // noise on: exercises RNG determinism
		if err := c.AddNodes("n", 3, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
			t.Fatal(err)
		}
		if err := c.CreateService(testService("web")); err != nil {
			t.Fatal(err)
		}
		if err := c.SetLoadFunc("web", func(now time.Duration) float64 {
			return 100 + 50*now.Seconds()/60
		}); err != nil {
			t.Fatal(err)
		}
		c.Start()
		eng.Run(5 * time.Minute)
		st := c.Metrics().Series("app/web/latency-mean").AllStats()
		return st.Mean
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay diverged: %v vs %v", a, b)
	}
}

func TestStartupDelayGatesServing(t *testing.T) {
	c := newTestCluster(t, 2)
	spec := testService("web")
	spec.StartupDelay = 30 * time.Second
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("web", func(time.Duration) float64 { return 50 }); err != nil {
		t.Fatal(err)
	}
	c.Start()
	// First tick (5s): pods bind but are still starting — outage-level
	// latency, zero ready.
	c.Engine().Run(6 * time.Second)
	obs, err := c.Observe("web")
	if err != nil {
		t.Fatal(err)
	}
	if obs.ReadyReplicas != 0 {
		t.Errorf("ready = %d during startup, want 0", obs.ReadyReplicas)
	}
	// After the delay they serve.
	c.Engine().Run(time.Minute)
	obs, err = c.Observe("web")
	if err != nil {
		t.Fatal(err)
	}
	if obs.ReadyReplicas != 2 {
		t.Errorf("ready = %d after startup, want 2", obs.ReadyReplicas)
	}
	// The observation window mixes startup-outage ticks with healthy
	// ones; the latest sample must be healthy.
	if last, ok := c.Metrics().Series("app/web/sli").Last(); !ok || last.Value >= 1 {
		t.Errorf("latest SLI = %+v, want healthy", last)
	}
	// Negative delay rejected.
	bad := testService("bad")
	bad.StartupDelay = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative startup delay should fail validation")
	}
}

func TestOutageWhenNoReplicas(t *testing.T) {
	c := newTestCluster(t, 1)
	spec := testService("web")
	spec.InitialReplicas = 1
	spec.InitialAlloc = resource.New(100000, 1<<30, 1e6, 1e6) // cannot fit anywhere
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("web", func(time.Duration) float64 { return 10 }); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Engine().Run(10 * time.Second)
	s, ok := c.Metrics().Series("app/web/latency-mean").Last()
	if !ok || s.Value != spec.Model.MaxLatency.Seconds() {
		t.Errorf("outage latency = %v, want cap", s.Value)
	}
	if v, _ := c.Metrics().Series("app/web/throughput").Last(); v.Value != 0 {
		t.Errorf("outage throughput = %v", v.Value)
	}
	if c.Metrics().Counter("sched/unschedulable").Value() == 0 {
		t.Error("unschedulable not counted")
	}
}
