package cluster

import (
	"testing"
	"time"

	"evolve/internal/control"
	"evolve/internal/obs"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

// newSpanTestCluster builds a small traced cluster: three nodes, one
// web service with a startup delay (so bind ≠ ready and startup spans
// exist), already started and settled for two minutes.
func newSpanTestCluster(t *testing.T) (*Cluster, *sim.Engine, *obs.Tracer) {
	t.Helper()
	eng := sim.NewEngine(3)
	c := New(eng, DefaultConfig())
	tr := obs.New(8192)
	c.SetTracer(tr)
	if err := c.AddNodes("n", 3, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
		t.Fatal(err)
	}
	spec := testService("web")
	spec.StartupDelay = 30 * time.Second
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	c.Start()
	eng.Run(2 * time.Minute)
	return c, eng, tr
}

// TestPodSpansEmitted drives a pod through its whole lifecycle —
// decision → create → pending → bind → startup → ready → eviction —
// and checks the span layer narrates every leg with correct parent
// links, and that the latency histograms carry exemplars pointing at
// the spans that produced them.
func TestPodSpansEmitted(t *testing.T) {
	c, eng, tr := newSpanTestCluster(t)

	// Initial replicas have lifecycle roots with no cause (no decision
	// made them), plus pending and startup children.
	roots := tr.SpanSnapshot(obs.SpanFilter{Kind: "lifecycle", App: "web"})
	if len(roots) != 2 {
		t.Fatalf("got %d lifecycle spans after deployment, want 2", len(roots))
	}
	for _, sp := range roots {
		if sp.Parent != 0 {
			t.Errorf("initial replica %s has cause span %d, want none", sp.Object, sp.Parent)
		}
		if sp.End-sp.Start < 30*time.Second {
			t.Errorf("lifecycle %s spans %v, want ≥ the 30s startup delay", sp.Object, sp.End-sp.Start)
		}
	}

	// A scale-up decision: the new replicas' lifecycle spans must parent
	// to the decision span.
	app, err := c.App("web")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyDecision("web", control.Decision{Replicas: 4, Alloc: app.Alloc}); err != nil {
		t.Fatal(err)
	}
	eng.Run(eng.Now() + 2*time.Minute)

	decs := tr.SpanSnapshot(obs.SpanFilter{Kind: "decision", App: "web"})
	if len(decs) != 1 {
		t.Fatalf("got %d decision spans, want 1", len(decs))
	}
	dec := decs[0]
	if dec.Detail != "replicas=4" || dec.Start != dec.End {
		t.Fatalf("decision span wrong: %+v", dec)
	}
	roots = tr.SpanSnapshot(obs.SpanFilter{Kind: "lifecycle", App: "web"})
	if len(roots) != 4 {
		t.Fatalf("got %d lifecycle spans after scale-up, want 4", len(roots))
	}
	caused := 0
	var causedPod string
	for _, sp := range roots {
		if sp.Parent == dec.ID {
			caused++
			causedPod = sp.Object
		}
	}
	if caused != 2 {
		t.Fatalf("%d lifecycle spans parent to the decision, want 2", caused)
	}

	// Every lifecycle root has a pending child covering creation → bind
	// and a startup child covering bind → ready.
	all := tr.SpanSnapshot(obs.SpanFilter{})
	for _, root := range roots {
		var pend, start bool
		for _, sp := range all {
			if sp.Parent != root.ID {
				continue
			}
			switch sp.Kind {
			case obs.SpanPending:
				pend = true
				if sp.Start != root.Start {
					t.Errorf("pod %s: pending starts at %v, lifecycle at %v", root.Object, sp.Start, root.Start)
				}
			case obs.SpanStartup:
				start = true
				if sp.End != root.End {
					t.Errorf("pod %s: startup ends at %v, lifecycle at %v", root.Object, sp.End, root.End)
				}
			}
		}
		if !pend || !start {
			t.Errorf("pod %s: pending/startup children = %v/%v, want both", root.Object, pend, start)
		}
	}

	// PodChain reconstructs the caused pod's chain: decision first, then
	// the lifecycle root, then its segments.
	chain := obs.PodChain(all, causedPod)
	if chain == nil {
		t.Fatalf("PodChain found no chain for %s", causedPod)
	}
	if chain[0].Kind != obs.SpanDecision || chain[1].Kind != obs.SpanLifecycle {
		t.Fatalf("chain starts %s,%s; want decision,lifecycle", chain[0].Kind, chain[1].Kind)
	}
	if chain[1].Parent != chain[0].ID {
		t.Fatalf("lifecycle parent = %d, want decision %d", chain[1].Parent, chain[0].ID)
	}

	// Kill a node: the evicted pods' running segments close with the
	// reason, parented to their lifecycle spans.
	if err := c.FailNode("n-0"); err != nil {
		t.Fatal(err)
	}
	eng.Run(eng.Now() + time.Minute)
	segs := tr.SpanSnapshot(obs.SpanFilter{Kind: "segment", App: "web"})
	if len(segs) == 0 {
		t.Fatal("no segment spans after a node failure")
	}
	byID := make(map[uint64]obs.Span)
	for _, sp := range all {
		byID[sp.ID] = sp
	}
	for _, sp := range segs {
		if sp.Detail == "" || sp.Node == "" {
			t.Errorf("segment span missing reason/node: %+v", sp)
		}
		if parent, ok := byID[sp.Parent]; ok && parent.Kind != obs.SpanLifecycle {
			t.Errorf("segment parents to %s span, want lifecycle", parent.Kind)
		}
	}

	// The exemplar histograms saw every interval; the worst observation
	// links back to a live span.
	var kinds []string
	for _, h := range tr.LatencySnapshot() {
		kinds = append(kinds, h.Name)
		if h.Count == 0 {
			t.Errorf("histogram %s empty", h.Name)
		}
		if h.Exemplar == 0 {
			t.Errorf("histogram %s has no exemplar", h.Name)
		}
	}
	for _, want := range []string{"time_to_ready", "schedule", "decision_to_effect"} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("latency snapshot missing %s (have %v)", want, kinds)
		}
	}

	// The always-on registry histograms measured the same intervals
	// (they feed Table 7's latency columns even untraced).
	_, readyP95, effectP95 := c.LatencySummary()
	if readyP95 < 30 {
		t.Errorf("ready p95 = %vs, want ≥ the 30s startup delay", readyP95)
	}
	if effectP95 <= 0 {
		t.Errorf("decision-to-effect p95 = %v, want > 0", effectP95)
	}
}

// TestGangSpansEmitted pins gang admission causality: one gang span per
// SubmitGang, every rank's lifecycle span parented to it.
func TestGangSpansEmitted(t *testing.T) {
	c, _, tr := newSpanTestCluster(t)
	specs := []TaskSpec{testTask("rank-0", 1000, 5000), testTask("rank-1", 1000, 5000)}
	if err := c.SubmitGang(specs); err != nil {
		t.Fatal(err)
	}
	gangs := tr.SpanSnapshot(obs.SpanFilter{Kind: "gang"})
	if len(gangs) != 1 {
		t.Fatalf("got %d gang spans, want 1", len(gangs))
	}
	g := gangs[0]
	if g.App != "job" || g.Detail != "ranks=2" {
		t.Fatalf("gang span wrong: %+v", g)
	}
	ranks := tr.SpanSnapshot(obs.SpanFilter{Kind: "lifecycle", App: "job"})
	if len(ranks) != 2 {
		t.Fatalf("got %d rank lifecycle spans, want 2", len(ranks))
	}
	for _, sp := range ranks {
		if sp.Parent != g.ID {
			t.Errorf("rank %s parents to %d, want gang %d", sp.Object, sp.Parent, g.ID)
		}
	}
}

// TestUntracedRunRecordsNoSpans is the inverse gate: with no tracer the
// span bookkeeping fields still advance (they feed the always-on
// histograms) but nothing is recorded and LatencySummary still works.
func TestUntracedRunRecordsNoSpans(t *testing.T) {
	eng := sim.NewEngine(3)
	c := New(eng, DefaultConfig())
	if err := c.AddNodes("n", 2, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
		t.Fatal(err)
	}
	spec := testService("web")
	spec.StartupDelay = 15 * time.Second
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	c.Start()
	eng.Run(2 * time.Minute)
	_, readyP95, _ := c.LatencySummary()
	if readyP95 < 15 {
		t.Errorf("untraced ready p95 = %vs, want ≥ the 15s startup delay", readyP95)
	}
	for _, p := range c.pods {
		if p.spanID != 0 || p.causeSpan != 0 {
			t.Fatalf("untraced pod %s carries span IDs: %d/%d", p.Name, p.spanID, p.causeSpan)
		}
		if p.everBound && p.pendingSince == 0 && p.CreatedAt != 0 {
			t.Fatalf("untraced pod %s lost its pending bookkeeping", p.Name)
		}
	}
}
