package cluster

import (
	"time"

	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/resource"
)

// tick is the cluster's heartbeat: place pending pods, evaluate every
// service against its offered load, refresh usage accounting and record
// the telemetry the controllers and experiments consume.
func (c *Cluster) tick() {
	c.schedulePending()

	// Node interference from last tick's usage (telemetry lag).
	slowdownByNode := make(map[string]float64, len(c.nodes))
	for name, n := range c.nodes {
		s := 1.0
		if c.cfg.Interference && n.Ready {
			pressure, _ := n.Usage.DominantShare(n.Allocatable)
			s = perf.InterferenceSlowdown(pressure)
		}
		slowdownByNode[name] = s
	}

	now := c.now()
	for _, appName := range c.Apps() {
		st := c.apps[appName]
		spec := st.obj.Spec
		lambda := st.loadFn(now)
		if lambda < 0 {
			lambda = 0
		}

		pods := c.appPods(appName)
		var running []*PodObject
		for _, p := range pods {
			// A replica serves only once it has finished starting up.
			if p.Phase == Running && p.ReadyAt <= now {
				running = append(running, p)
			}
		}

		var result perf.Result
		if len(running) == 0 {
			// No capacity at all: total outage, modelled as the latency
			// cap and zero throughput.
			result = perf.Result{
				MeanLatency: spec.Model.MaxLatency,
				P99Latency:  spec.Model.MaxLatency,
				Throughput:  0,
				Saturated:   lambda > 0,
			}
		} else {
			// Effective per-replica allocation: the mean grant; mean
			// slowdown across hosting nodes.
			var alloc resource.Vector
			var slow float64
			for _, p := range running {
				alloc = alloc.Add(p.Requests)
				slow += slowdownByNode[p.Node]
			}
			alloc = alloc.Scale(1 / float64(len(running)))
			slow /= float64(len(running))
			result = spec.Model.Evaluate(lambda, len(running), alloc, slow)
			// Push per-pod usage for next tick's interference.
			for _, p := range running {
				p.Usage = result.Usage
				c.mustUpdate(p)
			}
		}

		// Measurement noise on the SLIs.
		noise := 1.0
		if c.cfg.MeasurementNoise > 0 {
			noise = c.rng.Jitter(1, c.cfg.MeasurementNoise)
		}
		meanLat := result.MeanLatency.Seconds() * noise
		p99Lat := result.P99Latency.Seconds() * noise
		throughput := result.Throughput * noise

		sli := meanLat
		switch spec.PLO.Metric {
		case plo.P99Latency:
			sli = p99Lat
		case plo.Throughput:
			sli = throughput
		}
		st.tracker.Observe(sli)

		st.winSLI = append(st.winSLI, sli)
		st.winMean = append(st.winMean, meanLat)
		st.winP99 = append(st.winP99, p99Lat)
		st.winThroughput = append(st.winThroughput, throughput)
		st.winOffered = append(st.winOffered, lambda)
		st.winUsage = append(st.winUsage, result.Usage)
		st.winUtil = append(st.winUtil, result.Utilisation)
		if result.Saturated {
			st.winSaturated = true
		}

		pfx := "app/" + appName + "/"
		c.met.Series(pfx+"latency-mean").Add(now, meanLat)
		c.met.Series(pfx+"latency-p99").Add(now, p99Lat)
		c.met.Series(pfx+"throughput").Add(now, throughput)
		c.met.Series(pfx+"offered").Add(now, lambda)
		c.met.Series(pfx+"replicas").Add(now, float64(st.obj.DesiredReplicas))
		c.met.Series(pfx+"ready").Add(now, float64(len(running)))
		for _, k := range resource.Kinds() {
			c.met.Series(pfx+"alloc/"+k.String()).Add(now, st.obj.Alloc[k])
			c.met.Series(pfx+"usage/"+k.String()).Add(now, result.Usage[k])
		}
		violated := 0.0
		if st.tracker.PLO().Violated(sli) {
			c.met.Counter("plo/" + appName + "/violations").Inc()
			violated = 1
		}
		c.met.Series(pfx+"sli").Add(now, sli)
		c.met.Series(pfx+"violation").Add(now, violated)
		if sli > 0 {
			c.met.Histogram(pfx+"sli-hist", 1e-4, 1e3, 10).Observe(sli)
		}
	}

	// Refresh node usage sums and cluster-level series.
	var capTotal, allocTotal, usageTotal resource.Vector
	emptyNodes := 0
	for _, n := range c.Nodes() {
		var usage resource.Vector
		running := 0
		for _, p := range c.podsOnNode(n.Name) {
			if p.Phase == Running {
				usage = usage.Add(p.Usage)
				running++
			}
		}
		n.Usage = usage
		c.mustUpdate(n)
		if !n.Ready {
			continue
		}
		if running == 0 {
			emptyNodes++
		}
		capTotal = capTotal.Add(n.Allocatable)
		allocTotal = allocTotal.Add(n.Allocated)
		usageTotal = usageTotal.Add(usage)
	}
	allocFrac := allocTotal.Div(capTotal)
	usageFrac := usageTotal.Div(capTotal)
	for _, k := range resource.Kinds() {
		c.met.Series("cluster/allocated/"+k.String()).Add(now, allocFrac[k])
		c.met.Series("cluster/usage/"+k.String()).Add(now, usageFrac[k])
	}
	c.met.Series("cluster/pods").Add(now, float64(len(c.pods)))
	c.met.Series("cluster/pending").Add(now, float64(len(c.PendingPods())))
	// Consolidation signal: ready nodes hosting nothing could be
	// suspended; the energy model (internal/cost) consumes this.
	c.met.Series("cluster/empty-nodes").Add(now, float64(emptyNodes))
}

// UtilisationSummary returns the time-weighted mean cluster allocation
// and usage fractions (of allocatable capacity, per resource) over
// (from, to] — the headline utilisation numbers of the Table 1
// comparison.
func (c *Cluster) UtilisationSummary(from, to time.Duration) (allocFrac, usageFrac resource.Vector) {
	for _, k := range resource.Kinds() {
		allocFrac[k] = c.met.Series("cluster/allocated/"+k.String()).TimeWeightedMean(from, to)
		usageFrac[k] = c.met.Series("cluster/usage/"+k.String()).TimeWeightedMean(from, to)
	}
	return allocFrac, usageFrac
}
