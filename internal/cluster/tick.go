package cluster

import (
	"time"

	"evolve/internal/chaos"
	"evolve/internal/obs"
	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/resource"
)

// tick is the cluster's heartbeat: place pending pods, evaluate every
// service against its offered load, refresh usage accounting and record
// the telemetry the controllers and experiments consume.
//
// This is the hot path of every simulation. It walks the incremental
// indexes (index.go) instead of re-deriving sorted views, writes through
// cached metric handles (handles.go) instead of by-name lookups, and
// reuses the cluster's scratch buffers — in steady state (nothing
// pending, topology unchanged) a tick performs no allocations
// (TestTickSteadyStateAllocs enforces this).
func (c *Cluster) tick() {
	c.lastTick = TickResult{At: c.now()}
	c.schedulePending()

	if c.co != nil {
		// Sharded kernel: the same work, decomposed into per-node and
		// per-app phases fanned out across the shard engines (shard.go).
		// Byte-identical to the path below for any shard count.
		c.tickSharded()
		return
	}

	// Node interference from last tick's usage (telemetry lag); n.slow
	// is tick scratch on the node object.
	for _, n := range c.nodeList {
		c.nodeSlowdown(n)
	}

	now := c.now()
	for _, st := range c.appList {
		spec := st.obj.Spec
		lambda := st.loadFn(now)
		if lambda < 0 {
			lambda = 0
		}

		pods := c.byApp[spec.Name]
		running := c.scratchRun[:0]
		for _, p := range pods {
			// A replica serves only once it has finished starting up.
			if p.Phase == Running && p.ReadyAt <= now {
				running = append(running, p)
			}
		}
		// Keep the (possibly grown) backing for the next app/tick.
		c.scratchRun = running

		var result perf.Result
		if len(running) == 0 {
			// No capacity at all: total outage, modelled as the latency
			// cap and zero throughput.
			result = perf.Result{
				MeanLatency: spec.Model.MaxLatency,
				P99Latency:  spec.Model.MaxLatency,
				Throughput:  0,
				Saturated:   lambda > 0,
			}
			// With nothing serving, no replica consumes anything: clear
			// usage left over from the last served tick so starting or
			// failed replicas stop feeding stale node interference.
			for _, p := range pods {
				if !p.Usage.IsZero() {
					p.Usage = resource.Vector{}
					c.update(p)
				}
			}
		} else {
			// Effective per-replica allocation: the mean grant; mean
			// slowdown across hosting nodes.
			var alloc resource.Vector
			var slow float64
			for _, p := range running {
				alloc = alloc.Add(p.Requests)
				slow += c.nodes[p.Node].slow
			}
			alloc = alloc.Scale(1 / float64(len(running)))
			slow /= float64(len(running))
			result = spec.Model.Evaluate(lambda, len(running), alloc, slow)
			// Push per-pod usage for next tick's interference.
			for _, p := range running {
				p.Usage = result.Usage
				c.update(p)
			}
		}

		// Measurement noise on the SLIs, drawn from the app's own keyed
		// stream so the value does not depend on app iteration order.
		noise := 1.0
		if c.cfg.MeasurementNoise > 0 {
			noise = st.noise.Jitter(1, c.cfg.MeasurementNoise)
		}
		meanLat := result.MeanLatency.Seconds() * noise
		p99Lat := result.P99Latency.Seconds() * noise
		throughput := result.Throughput * noise

		sli := meanLat
		switch spec.PLO.Metric {
		case plo.P99Latency:
			sli = p99Lat
		case plo.Throughput:
			sli = throughput
		}
		// Each sample stands for one metrics interval of service time; the
		// tracker's burn accounting charges it against the error budget.
		st.tracker.ObserveFor(sli, c.cfg.MetricsInterval.Seconds())

		// Sensor path: what the controllers will see at the next Observe.
		// Chaos interposes here — the ground truth above (PLO tracker,
		// metric series, violation counters) always records reality; only
		// the controller-facing window can lose, freeze or distort samples.
		// With no injector this is the straight-through path plus one
		// counter increment and a nil check.
		st.winTicks++
		s := sensedSample{sli: sli, mean: meanLat, p99: p99Lat, tput: throughput, offered: lambda, usage: result.Usage, util: result.Utilisation}
		deliver, stale := true, false
		if c.chaos != nil {
			switch v, factor := c.chaos.SampleWith(st.chaosRNG, &st.chaosStats, spec.Name, now, c); v {
			case chaos.SampleDrop:
				deliver = false
				c.lastTick.SamplesDropped++
			case chaos.SampleFreeze:
				if st.haveSensed {
					s, stale = st.sensed, true
					c.lastTick.SamplesStale++
				} else {
					// Nothing to freeze to yet: the sample is simply lost.
					deliver = false
					c.lastTick.SamplesDropped++
				}
			default:
				if factor != 1 {
					s.sli *= factor
					s.mean *= factor
					s.p99 *= factor
					s.tput *= factor
				}
			}
		}
		if deliver {
			st.winSLI = append(st.winSLI, s.sli)
			st.winMean = append(st.winMean, s.mean)
			st.winP99 = append(st.winP99, s.p99)
			st.winThroughput = append(st.winThroughput, s.tput)
			st.winOffered = append(st.winOffered, s.offered)
			st.winUsage = append(st.winUsage, s.usage)
			st.winUtil = append(st.winUtil, s.util)
			if stale {
				st.winStale++
			} else {
				st.sensed, st.haveSensed = s, true
			}
		}
		if result.Saturated {
			st.winSaturated = true
		}

		h := st.handles(c.met)
		h.latMean.Add(now, meanLat)
		h.latP99.Add(now, p99Lat)
		h.throughput.Add(now, throughput)
		h.offered.Add(now, lambda)
		h.replicas.Add(now, float64(st.obj.DesiredReplicas))
		h.ready.Add(now, float64(len(running)))
		for _, k := range resource.Kinds() {
			h.alloc[k].Add(now, st.obj.Alloc[k])
			h.usage[k].Add(now, result.Usage[k])
		}
		violated := 0.0
		if st.tracker.PLO().Violated(sli) {
			st.violationsCounter(c.met).Inc()
			violated = 1
		}
		if isViolated := violated == 1; isViolated != st.wasViolated {
			st.wasViolated = isViolated
			if c.tracer.Enabled() {
				verb := obs.VerbClear
				if isViolated {
					verb = obs.VerbOnset
				}
				c.tracer.Record(obs.Event{
					At: now, Kind: obs.KindPLO, Verb: verb, App: spec.Name,
					SLI: sli, Objective: spec.PLO.Target, PerfErr: spec.PLO.Error(sli),
				})
			}
		}
		h.sli.Add(now, sli)
		h.violation.Add(now, violated)
		h.burnRate.Add(now, st.tracker.Burn().BurnRate())
		if sli > 0 {
			st.histogram(c.met).Observe(sli)
		}
		if c.chaos != nil {
			// SampleWith accumulated into the app's private sink (shared
			// shape with the parallel path); fold it into the injector.
			c.chaos.Absorb(st.chaosStats)
			st.chaosStats = chaos.Stats{}
		}
	}

	// Refresh node usage sums and cluster-level series.
	var capTotal, allocTotal, usageTotal resource.Vector
	emptyNodes := 0
	for _, n := range c.nodeList {
		var usage resource.Vector
		running := 0
		for _, p := range c.byNode[n.Name] {
			if p.Phase == Running {
				usage = usage.Add(p.Usage)
				running++
			}
		}
		n.Usage = usage
		c.update(n)
		if !n.Ready {
			continue
		}
		if running == 0 {
			emptyNodes++
		}
		capTotal = capTotal.Add(n.Allocatable)
		allocTotal = allocTotal.Add(n.Allocated)
		usageTotal = usageTotal.Add(usage)
	}
	allocFrac := allocTotal.Div(capTotal)
	usageFrac := usageTotal.Div(capTotal)
	ch := c.clusterSeries()
	for _, k := range resource.Kinds() {
		ch.allocated[k].Add(now, allocFrac[k])
		ch.usage[k].Add(now, usageFrac[k])
	}
	ch.pods.Add(now, float64(len(c.pods)))
	ch.pending.Add(now, float64(len(c.pending)))
	// Consolidation signal: ready nodes hosting nothing could be
	// suspended; the energy model (internal/cost) consumes this.
	ch.emptyNodes.Add(now, float64(emptyNodes))
}

// nodeSlowdown refreshes n.slow — the interference slowdown derived
// from last tick's usage. Shared by the serial tick and phase1 of the
// sharded tick.
func (c *Cluster) nodeSlowdown(n *NodeObject) {
	s := 1.0
	if c.cfg.Interference && n.Ready {
		pressure, _ := n.Usage.DominantShare(n.Allocatable)
		s = perf.InterferenceSlowdown(pressure)
	}
	n.slow = s
}

// phaseNodeUsage re-derives one node's usage sum and running-pod count
// from its bound pods; the sharded tick's P3 calls it per shard, and
// flushNodes consumes n.running for the consolidation signal.
func (c *Cluster) phaseNodeUsage(n *NodeObject) {
	var usage resource.Vector
	running := 0
	for _, p := range c.byNode[n.Name] {
		if p.Phase == Running {
			usage = usage.Add(p.Usage)
			running++
		}
	}
	n.Usage = usage
	n.running = running
}

// UtilisationSummary returns the time-weighted mean cluster allocation
// and usage fractions (of allocatable capacity, per resource) over
// (from, to] — the headline utilisation numbers of the Table 1
// comparison.
func (c *Cluster) UtilisationSummary(from, to time.Duration) (allocFrac, usageFrac resource.Vector) {
	for _, k := range resource.Kinds() {
		allocFrac[k] = c.met.Series("cluster/allocated/"+k.String()).TimeWeightedMean(from, to)
		usageFrac[k] = c.met.Series("cluster/usage/"+k.String()).TimeWeightedMean(from, to)
	}
	return allocFrac, usageFrac
}
