package cluster

import (
	"testing"
	"time"

	"evolve/internal/resource"
)

// TestTickClearsStaleUsageDuringOutage is a regression test for the
// no-capacity branch of tick: when a service has no serving replica,
// any usage still recorded on its pods (from a period when they did
// serve) must be zeroed, otherwise the dead usage keeps feeding node
// interference for every tick of the outage.
func TestTickClearsStaleUsageDuringOutage(t *testing.T) {
	c := newTestCluster(t, 1)
	spec := testService("web")
	spec.InitialReplicas = 1
	spec.StartupDelay = time.Minute // replica binds but stays not-ready
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("web", func(time.Duration) float64 { return 100 }); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Engine().Run(c.cfg.MetricsInterval) // first tick: bound, still starting

	pods := c.byApp["web"]
	if len(pods) != 1 {
		t.Fatalf("pods = %d, want 1", len(pods))
	}
	p := pods[0]
	if p.Phase != Running || p.ReadyAt <= c.now() {
		t.Fatalf("replica should be bound but not ready: phase=%v readyAt=%v now=%v", p.Phase, p.ReadyAt, c.now())
	}
	// Plant the historical bug state: a non-serving replica still carrying
	// usage from an earlier serving period.
	p.Usage = resource.New(500, 1<<30, 1e6, 1e6)
	c.update(p)

	c.Engine().Run(2 * c.cfg.MetricsInterval) // outage tick must clear it

	if !p.Usage.IsZero() {
		t.Errorf("stale usage not cleared during outage: %v", p.Usage)
	}
	if got := c.nodes["node-0"].Usage; !got.IsZero() {
		t.Errorf("node usage should be zero during outage, got %v", got)
	}
}
