package cluster

import "sort"

// Incremental pod/node indexes.
//
// The tick used to re-derive every sorted view it needed — pods by node,
// pods by app, the pending queue — by collecting and sorting all pod
// names, once per node per tick. That made a tick O(nodes × pods log
// pods). Instead the cluster now keeps each view sorted incrementally at
// the mutation points (create, bind, release, evict, delete), so a
// steady-state tick walks pre-sorted slices and the cost of maintaining
// them is O(changes).
//
// Invariants (checked against slow re-derivation in index_test.go):
//   - byName holds every pod in c.pods, ordered by name;
//   - byNode[n] holds exactly the pods bound to node n (p.Node == n),
//     ordered by name;
//   - byApp[a] holds exactly the live service replicas of app a (non-task
//     pods), ordered by (CreatedAt, name) — the appPods order;
//   - pending holds exactly the pods with Phase == Pending, ordered by
//     (priority desc, CreatedAt, name) — the scheduling order;
//   - nodeList holds every node, ordered by name;
//   - appList holds every service's state, ordered by name.
//
// All ordering keys (name, app, creation time, priority) are immutable
// after pod creation, so membership changes are the only maintenance.

// byNameLess is the canonical registry order.
func byNameLess(a, b *PodObject) bool { return a.Name < b.Name }

// byCreationLess orders service replicas oldest-first with a name
// tie-break; ApplyDecision scales down from the tail (newest first).
func byCreationLess(a, b *PodObject) bool {
	if a.CreatedAt != b.CreatedAt {
		return a.CreatedAt < b.CreatedAt
	}
	return a.Name < b.Name
}

// pendingLess orders the pending queue: highest priority first, then
// FIFO by creation time, then name.
func pendingLess(a, b *PodObject) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.CreatedAt != b.CreatedAt {
		return a.CreatedAt < b.CreatedAt
	}
	return a.Name < b.Name
}

// podInsert places p into the slice at its sorted position. The
// comparators above are total orders (they all tie-break on the unique
// pod name), so the position is unambiguous.
func podInsert(s []*PodObject, p *PodObject, less func(a, b *PodObject) bool) []*PodObject {
	i := sort.Search(len(s), func(j int) bool { return less(p, s[j]) })
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = p
	return s
}

// podRemove deletes p from the slice, locating it by binary search.
func podRemove(s []*PodObject, p *PodObject, less func(a, b *PodObject) bool) []*PodObject {
	i := sort.Search(len(s), func(j int) bool { return !less(s[j], p) })
	if i >= len(s) || s[i] != p {
		return s
	}
	copy(s[i:], s[i+1:])
	s[len(s)-1] = nil
	return s[:len(s)-1]
}

// indexAddPod registers a freshly created pod (always Pending) in the
// name, app and pending indexes. Call after inserting into c.pods.
func (c *Cluster) indexAddPod(p *PodObject) {
	c.byName = podInsert(c.byName, p, byNameLess)
	if !p.IsTask() {
		c.byApp[p.App] = podInsert(c.byApp[p.App], p, byCreationLess)
		c.hotDirtyApp(p.App)
	}
	if p.Phase == Pending {
		c.pending = podInsert(c.pending, p, pendingLess)
	}
}

// indexRemovePod unregisters a pod from every index it may appear in.
// Call alongside removal from c.pods; the pod must already be released
// from its node (p.Node == "").
func (c *Cluster) indexRemovePod(p *PodObject) {
	c.byName = podRemove(c.byName, p, byNameLess)
	if !p.IsTask() {
		c.byApp[p.App] = podRemove(c.byApp[p.App], p, byCreationLess)
		c.hotDirtyApp(p.App)
	}
	c.pending = podRemove(c.pending, p, pendingLess)
}

// indexBind moves a pod from the pending queue onto its node's index.
// Call after p.Node is set.
func (c *Cluster) indexBind(p *PodObject) {
	c.pending = podRemove(c.pending, p, pendingLess)
	c.byNode[p.Node] = podInsert(c.byNode[p.Node], p, byNameLess)
	c.hotDirtyNode(p.Node)
	if !p.IsTask() {
		c.hotDirtyApp(p.App)
	}
}

// indexUnbind removes a pod from the node it was bound to. Call before
// p.Node is cleared.
func (c *Cluster) indexUnbind(p *PodObject) {
	c.byNode[p.Node] = podRemove(c.byNode[p.Node], p, byNameLess)
	c.hotDirtyNode(p.Node)
	if !p.IsTask() {
		c.hotDirtyApp(p.App)
	}
}

// indexMarkPending re-queues an evicted service replica.
func (c *Cluster) indexMarkPending(p *PodObject) {
	c.pending = podInsert(c.pending, p, pendingLess)
	c.hotDirtyApp(p.App)
}

// indexAddNode keeps nodeList name-sorted; nodes are never removed.
// When the kernel is sharded, the node also joins its shard's
// partition (stable name hash — see shard.go).
func (c *Cluster) indexAddNode(n *NodeObject) {
	i := sort.Search(len(c.nodeList), func(j int) bool { return c.nodeList[j].Name > n.Name })
	c.nodeList = append(c.nodeList, nil)
	copy(c.nodeList[i+1:], c.nodeList[i:])
	c.nodeList[i] = n
	c.hotAddNode(n)
	if c.shards != nil {
		c.shards[shardOfNode(n.Name, len(c.shards))].addNode(n)
	}
}

// indexAddApp keeps appList name-sorted; services are never removed.
// When the kernel is sharded, the service also joins its shard's
// partition.
func (c *Cluster) indexAddApp(st *appState) {
	name := st.obj.Spec.Name
	i := sort.Search(len(c.appList), func(j int) bool { return c.appList[j].obj.Spec.Name > name })
	c.appList = append(c.appList, nil)
	copy(c.appList[i+1:], c.appList[i:])
	c.appList[i] = st
	c.hotAddApp(st)
	if c.shards != nil {
		c.shards[shardOfApp(name, len(c.shards))].addApp(st)
	}
}
