package cluster

import (
	"fmt"
	"time"

	"evolve/internal/obs"
	"evolve/internal/perf"
	"evolve/internal/sim"
)

// Span emission (the causal layer over the event trace — see
// internal/obs/span.go). All spans are recorded from serial control
// paths — schedulePending/bind, eviction, decision application, gang
// admission, the post-barrier section of the sharded tick — so span IDs
// are assigned in a deterministic order at any shard/worker count. A
// span's Shard field carries the kernel shard that owns its app (-1
// unsharded) and is the only field allowed to differ between runs at
// different shard counts.
//
// Because the simulation is deterministic, intervals are recorded
// completed: a bind already knows ReadyAt, so the root lifecycle span
// is emitted at first bind with its end in the (virtual) future.

// appShard returns the kernel shard that owns an app, -1 unsharded.
func (c *Cluster) appShard(app string) int32 {
	if c.co == nil {
		return -1
	}
	return int32(shardOfApp(app, len(c.shards)))
}

// emitBindSpans records the spans a successful bind completes: on first
// bind the pod's root lifecycle span (created → ready, parented to the
// decision/gang span that caused it), always the pending segment that
// just ended, and a startup segment when readiness lags the bind. The
// matching latency observations land in the tracer's exemplar
// histograms; the always-on registry histograms are observed by bind
// itself so untraced runs measure the same intervals.
func (c *Cluster) emitBindSpans(p *PodObject, first bool) {
	now := c.now()
	shard := c.appShard(p.App)
	if first {
		p.spanID = c.tracer.RecordSpan(obs.Span{
			Kind: obs.SpanLifecycle, Parent: p.causeSpan,
			App: p.App, Object: p.Name, Node: p.Node,
			Shard: shard, Start: p.CreatedAt, End: p.ReadyAt,
		})
	}
	pendID := c.tracer.RecordSpan(obs.Span{
		Kind: obs.SpanPending, Parent: p.spanID,
		App: p.App, Object: p.Name,
		Shard: shard, Start: p.pendingSince, End: now,
	})
	c.tracer.ObserveLatency(obs.LatencySchedule, (now - p.pendingSince).Seconds(), pendID)
	if p.ReadyAt > now {
		c.tracer.RecordSpan(obs.Span{
			Kind: obs.SpanStartup, Parent: p.spanID,
			App: p.App, Object: p.Name, Node: p.Node,
			Shard: shard, Start: now, End: p.ReadyAt,
		})
	}
	if first {
		c.tracer.ObserveLatency(obs.LatencyTimeToReady, (p.ReadyAt - p.CreatedAt).Seconds(), p.spanID)
		if p.causeSpan != 0 {
			c.tracer.ObserveLatency(obs.LatencyDecisionEffect, (now - p.causeAt).Seconds(), p.causeSpan)
		}
	}
}

// emitSegmentSpan records the running segment a pod just completed
// (bind → now), parented to its lifecycle span, with the reason it
// ended ("preempted", "node-failure", "killed", "migrated",
// "completed"). node is passed explicitly because eviction clears
// p.Node before the accounting runs.
func (c *Cluster) emitSegmentSpan(p *PodObject, node, reason string) {
	if p.spanID == 0 || !p.everBound {
		return
	}
	c.tracer.RecordSpan(obs.Span{
		Kind: obs.SpanSegment, Parent: p.spanID,
		App: p.App, Object: p.Name, Node: node, Detail: reason,
		Shard: c.appShard(p.App), Start: p.BoundAt, End: c.now(),
	})
}

// emitPhaseSpans lifts the tick's per-phase wall-time deltas out of the
// perf.PhaseBreakdown as instant spans (WallNs carries the measured
// time) and feeds the tracer's phase histograms. Runs only when phase
// timing AND tracing are both on — a bench/debug configuration, never
// the determinism suites — so the fmt/formatting cost is acceptable.
func (c *Cluster) emitPhaseSpans(now time.Duration, pb *perf.PhaseBreakdown, co *sim.Coordinator) {
	rounds, _ := co.TakeRounds()
	for ph := 0; ph < perf.NumPhases; ph++ {
		total := pb.PhaseTotalNs(ph)
		delta := total - c.phasePrev[ph]
		c.phasePrev[ph] = total
		if delta <= 0 {
			continue
		}
		detail := ""
		if ph == perf.PhaseBarrier && rounds > 0 {
			detail = fmt.Sprintf("rounds=%d", rounds)
		}
		id := c.tracer.RecordSpan(obs.Span{
			Kind: obs.SpanPhase, Object: perf.PhaseNames[ph], Detail: detail,
			Shard: -1, Start: now, End: now, WallNs: delta,
		})
		c.tracer.ObservePhaseLatency(ph, perf.PhaseNames[ph], float64(delta)/1e9, id)
	}
}

// LatencySummary returns p95 upper bounds (seconds) from the always-on
// registry latency histograms: schedule latency (pending → bound),
// time-to-ready (created → first ready) and decision-to-effect lag
// (decision applied → first bind it caused). Zero when no pod has
// bound. These are derived purely from virtual timestamps, so they are
// byte-identical at any shard/worker count.
func (c *Cluster) LatencySummary() (schedP95, readyP95, effectP95 float64) {
	if h, ok := c.met.GetHistogram("sched/latency"); ok {
		schedP95 = h.Quantile(0.95)
	}
	if h, ok := c.met.GetHistogram("sched/time-to-ready"); ok {
		readyP95 = h.Quantile(0.95)
	}
	if h, ok := c.met.GetHistogram("control/decision-effect"); ok {
		effectP95 = h.Quantile(0.95)
	}
	return schedP95, readyP95, effectP95
}
