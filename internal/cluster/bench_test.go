package cluster

import (
	"fmt"
	"math"
	"testing"
	"time"

	"evolve/internal/resource"
	"evolve/internal/sched"
	"evolve/internal/sim"
)

// benchSizes are the pod counts the hot-path benchmarks sweep. 5000 pods
// is the scale the ROADMAP's "production-scale" north star implies; the
// acceptance bar for PR 2 is ≥3x on the 5000-pod tick.
var benchSizes = []int{50, 500, 5000}

// newBenchCluster builds a settled cluster hosting roughly `pods` service
// replicas spread over pods/25 services and pods/8 nodes, with every
// replica bound and serving. The returned cluster is in steady state:
// ticking it performs telemetry and accounting only, no placement churn.
func newBenchCluster(tb testing.TB, pods int) (*Cluster, *sim.Engine) {
	tb.Helper()
	eng := sim.NewEngine(7)
	cfg := Config{
		MetricsInterval:  5 * time.Second,
		Interference:     true,
		SchedulerPolicy:  sched.PolicySpread,
		MeasurementNoise: 0.03,
	}
	c := New(eng, cfg)
	nodes := pods/8 + 1
	if err := c.AddNodes("n", nodes, resource.New(64000, 256<<30, 4e9, 8e9)); err != nil {
		tb.Fatal(err)
	}
	services := pods / 25
	if services == 0 {
		services = 1
	}
	per := pods / services
	if per == 0 {
		per = 1
	}
	for i := 0; i < services; i++ {
		spec := testService(fmt.Sprintf("svc-%d", i))
		spec.InitialReplicas = per
		spec.MaxReplicas = per * 2
		spec.InitialAlloc = resource.New(500, 1<<30, 10e6, 10e6)
		if err := c.CreateService(spec); err != nil {
			tb.Fatal(err)
		}
		if err := c.SetLoadFunc(spec.Name, func(now time.Duration) float64 {
			return 200 + 100*math.Sin(now.Seconds()/300)
		}); err != nil {
			tb.Fatal(err)
		}
	}
	c.Start()
	// Two intervals settle the topology: the first tick binds every
	// replica, the second records steady telemetry.
	eng.Run(2 * cfg.MetricsInterval)
	return c, eng
}

// BenchmarkTick measures one steady-state cluster tick: telemetry,
// interference accounting and SLI evaluation with nothing pending.
func BenchmarkTick(b *testing.B) {
	for _, pods := range benchSizes {
		b.Run(fmt.Sprintf("pods-%d", pods), func(b *testing.B) {
			c, _ := newBenchCluster(b, pods)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.tick()
			}
		})
	}
}

// benchSchedulePending is one BenchmarkSchedulePending case: a backlog
// of `pods` unbound replicas drained in one round over `nodes` nodes.
func benchSchedulePending(b *testing.B, pods, nodes int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := sim.NewEngine(7)
		c := New(eng, DefaultConfig())
		if err := c.AddNodes("n", nodes, resource.New(64000, 256<<30, 4e9, 8e9)); err != nil {
			b.Fatal(err)
		}
		services := pods / 25
		if services == 0 {
			services = 1
		}
		for s := 0; s < services; s++ {
			spec := testService(fmt.Sprintf("svc-%d", s))
			spec.InitialReplicas = pods / services
			spec.MaxReplicas = pods
			spec.InitialAlloc = resource.New(500, 1<<30, 10e6, 10e6)
			if err := c.CreateService(spec); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		c.SchedulePendingNow()
	}
}

// BenchmarkSchedulePending measures draining a full pending backlog: the
// cluster starts with every replica unbound, and one call places them
// all. The nodes-512 case fixes the node count at the parallel-scoring
// threshold scale while the backlog stays at 5000 pods.
func BenchmarkSchedulePending(b *testing.B) {
	for _, pods := range benchSizes {
		b.Run(fmt.Sprintf("pods-%d", pods), func(b *testing.B) {
			benchSchedulePending(b, pods, pods/8+1)
		})
	}
	b.Run("pods-5000/nodes-512", func(b *testing.B) {
		benchSchedulePending(b, 5000, 512)
	})
}

// BenchmarkScheduleGang measures hypothetical all-or-nothing gang
// placement over the public snapshot (the EASY-backfill query path):
// nothing commits, so every iteration answers the same question.
func BenchmarkScheduleGang(b *testing.B) {
	for _, ranks := range []int{8, 64} {
		b.Run(fmt.Sprintf("ranks-%d", ranks), func(b *testing.B) {
			c, _ := newBenchCluster(b, 500)
			infos := c.NodeInfos()
			gang := make([]sched.PodInfo, ranks)
			for i := range gang {
				gang[i] = sched.PodInfo{
					Name:     fmt.Sprintf("rank-%03d", i),
					App:      "mpi",
					Requests: resource.New(2000, 4<<30, 20e6, 20e6),
				}
			}
			dst := make([]string, len(gang))
			s := c.Scheduler()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.ScheduleGangInto(dst, gang, infos); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFullSim measures a complete simulated hour — scheduling, task
// completions, ticks — at each scale, the end-to-end number experiment
// sweeps pay per scenario.
func BenchmarkFullSim(b *testing.B) {
	for _, pods := range benchSizes {
		b.Run(fmt.Sprintf("pods-%d", pods), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, eng := newBenchCluster(b, pods)
				b.StartTimer()
				eng.Run(eng.Now() + time.Hour)
				_ = c
			}
		})
	}
}

// TestTickSteadyStateAllocs is the allocation-regression gate of the PR 2
// tentpole: once the cluster has settled and every series has grown its
// backing array, a tick must not allocate. The only allowed residue is
// the amortised growth of the append-only metric series, which the
// warm-up below pre-pays; the budget is deliberately near-zero.
func TestTickSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is not meaningful under -short")
	}
	c, eng := newBenchCluster(t, 200)
	// Warm up: enough ticks that every per-app and cluster series has
	// capacity headroom beyond the measured runs, then drain the SLI
	// windows so they regrow into existing capacity.
	eng.Run(eng.Now() + 700*c.cfg.MetricsInterval)
	for _, app := range c.Apps() {
		if _, err := c.Observe(app); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() { c.tick() })
	if allocs > 0.5 {
		t.Errorf("steady-state tick allocates %.1f objects/run, want ~0", allocs)
	}
}
