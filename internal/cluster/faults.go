package cluster

import (
	"time"

	"evolve/internal/chaos"
	"evolve/internal/obs"
	"evolve/internal/registry"
)

// TickResult summarises the faults the cluster absorbed since the most
// recent tick began: internal faults it degraded through instead of
// crashing on, and sensor samples chaos withheld from the controllers.
type TickResult struct {
	// At is the virtual time the tick started.
	At time.Duration
	// RegistryFaults counts failed registry writes absorbed by update;
	// BindFailures counts binds that failed after a successful schedule.
	RegistryFaults int
	BindFailures   int
	// SamplesDropped / SamplesStale count sensor samples the chaos
	// injector discarded or froze on the way to the controllers.
	SamplesDropped int
	SamplesStale   int
}

// LastTick returns the fault summary accumulated since the most recent
// tick started (faults absorbed between ticks land on the current
// summary too).
func (c *Cluster) LastTick() TickResult { return c.lastTick }

// SetChaos installs a fault injector on the cluster's sensor and
// actuation paths. Pass nil to remove it. With no injector installed the
// interposer hooks cost one nil check per tick and per actuation — the
// steady-state allocation budget is unaffected.
func (c *Cluster) SetChaos(inj *chaos.Injector) { c.chaos = inj }

// Chaos returns the installed fault injector, if any.
func (c *Cluster) Chaos() *chaos.Injector { return c.chaos }

// AppOnNode reports whether the app currently has a replica bound to the
// node. It implements chaos.HostChecker, scoping node-targeted metric
// faults to the apps actually hosted there.
func (c *Cluster) AppOnNode(app, node string) bool {
	for _, p := range c.byApp[app] {
		if p.Node == node {
			return true
		}
	}
	return false
}

// registryFault absorbs a failed registry write: the in-memory indexes
// remain authoritative, so the cluster counts, journals and traces the
// fault and carries on rather than crashing the control plane.
func (c *Cluster) registryFault(obj registry.Object, err error) {
	c.lastTick.RegistryFaults++
	c.met.Counter("faults/registry").Inc()
	m := obj.GetMeta()
	name := m.Kind + "/" + m.Name
	c.recordEvent("registry-fault", name, "registry write failed: %v", err)
	if c.tracer.Enabled() {
		c.tracer.Record(obs.Event{
			At: c.now(), Kind: obs.KindFault, Verb: obs.VerbFault,
			Object: name, Detail: err.Error(),
		})
	}
}

// bindFault absorbs a bind that failed after the scheduler picked a node
// (the node died between the decision and the bind). The pod stays
// pending and is retried next round.
func (c *Cluster) bindFault(p *PodObject, node string, err error) {
	c.lastTick.BindFailures++
	c.met.Counter("faults/bind").Inc()
	c.recordEvent("bind-fault", p.Name, "bind to %s failed: %v; pod stays pending", node, err)
	if c.tracer.Enabled() {
		c.tracer.Record(obs.Event{
			At: c.now(), Kind: obs.KindFault, Verb: obs.VerbFault,
			App: p.App, Object: p.Name, Node: node, Detail: err.Error(),
		})
	}
}
