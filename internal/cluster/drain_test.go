package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

// drainService builds a service whose replicas request the given
// allocation — the knob that polarizes its candidate prefix.
func drainService(name string, replicas int, alloc resource.Vector) ServiceSpec {
	return ServiceSpec{
		Name: name,
		Model: perf.ServiceModel{
			BaseLatency:      2 * time.Millisecond,
			DemandPerOp:      resource.New(10, 0, 20e3, 50e3),
			MemFixed:         64 << 20,
			MemPerConcurrent: 4 << 20,
			MaxLatency:       30 * time.Second,
		},
		PLO:             plo.Latency(100 * time.Millisecond),
		InitialReplicas: replicas,
		InitialAlloc:    alloc,
		MaxReplicas:     replicas + 2,
		Priority:        100,
	}
}

// drainPlacements stands up a polarized topology — CPU-rich/memory-poor
// nodes next to memory-rich/CPU-poor ones — and interleaves CPU-bound
// and memory-bound services so the pending queue alternates flavors
// with disjoint candidate prefixes. It drains under the given worker
// count and returns every pod's placement plus the batch call count.
func drainPlacements(t *testing.T, workers int) (string, uint64) {
	t.Helper()
	eng := sim.NewEngine(17)
	cfg := DefaultConfig()
	cfg.MeasurementNoise = 0
	cfg.DrainWorkers = workers
	c := New(eng, cfg)
	for i := 0; i < 6; i++ {
		if err := c.AddNode(fmt.Sprintf("cpu-%02d", i), resource.New(64000, 8<<30, 1e9, 2e9)); err != nil {
			t.Fatal(err)
		}
		if err := c.AddNode(fmt.Sprintf("mem-%02d", i), resource.New(2000, 256<<30, 1e9, 2e9)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := c.CreateService(drainService(fmt.Sprintf("cpu-svc-%d", i), 2,
			resource.New(16000, 1<<30, 1e6, 1e6))); err != nil {
			t.Fatal(err)
		}
		if err := c.CreateService(drainService(fmt.Sprintf("mem-svc-%d", i), 2,
			resource.New(500, 64<<30, 1e6, 1e6))); err != nil {
			t.Fatal(err)
		}
	}
	c.SchedulePendingNow()
	var b strings.Builder
	for _, p := range c.Pods() {
		fmt.Fprintf(&b, "%s->%s;", p.Meta.Name, p.Node)
	}
	fmt.Fprintf(&b, "pending=%d", len(c.PendingPods()))
	return b.String(), c.Scheduler().Stats().BatchCalls
}

// TestDrainBatchedMatchesSerial: the batched backlog drain must place
// every pod exactly where the serial loop places it, and must actually
// engage (BatchCalls > 0) on the polarized workload built for it.
func TestDrainBatchedMatchesSerial(t *testing.T) {
	want, serialBatches := drainPlacements(t, 1)
	if serialBatches != 0 {
		t.Errorf("serial drain made %d batch calls, want 0", serialBatches)
	}
	if !strings.Contains(want, "pending=0") {
		t.Fatalf("serial drain left pods pending: %s", want)
	}
	for _, workers := range []int{2, 4} {
		got, batches := drainPlacements(t, workers)
		if got != want {
			t.Errorf("workers=%d: placements diverged\n got: %s\nwant: %s", workers, got, want)
		}
		if batches == 0 {
			t.Errorf("workers=%d: batch drain never engaged on the polarized queue", workers)
		}
	}
}
