package cluster

import (
	"math"
	"time"

	"evolve/internal/chaos"
	"evolve/internal/perf"
	"evolve/internal/resource"
)

// Cache-dense hot state for the sharded tick.
//
// The P1→P2→P3 walk used to chase *Pod/*Node pointers for every replica
// every tick: P2 summed requests and looked node slowdowns up through
// c.nodes[p.Node] per pod, wrote per-pod usage, and staged a registry
// update per pod; P3 re-read every pod's usage back off the heap. At 1M
// pods that is pure memory-hierarchy cost — the 5× ns/pod/tick
// degradation from 10k→1M pods in BENCH_6.
//
// When the registry is quiescent (no live watchers — the untraced bench
// and production configuration), the sharded tick instead runs on dense
// per-cluster arrays that ARE the authoritative hot-loop representation:
//
//	hot.slow[slot]      P1 result per node, indexed by dense node slot
//	hot.appUsage[idx]   P2 result per app (per-replica usage vector)
//	st.rc (appRunCache) per app: the ready replicas' node slots (byApp
//	                    order), their summed requests, count, and the
//	                    earliest future ReadyAt (readiness horizon)
//	n.pc (nodePodCache) per node: its running pods as app indexes (ready
//	                    services, whose usage is appUsage[idx]) or task
//	                    pointers, in byNode order
//
// The caches are exact, not approximate: they hold the same addends the
// serial loop sums, in the same order, so every float result is
// bit-identical to the single-engine tick. They are invalidated at the
// topology mutation points (index.go hooks, resize, eviction) and
// rebuilt lazily at the next phase; readiness transitions need no hook
// because each cache carries the earliest ReadyAt that could change its
// membership and rebuilds when the clock reaches it.
//
// The object graph is synced back lazily: per-pod Usage fields are only
// materialised (syncPodUsage) when something outside the tick actually
// reads them — the Pods() accessor, or the first watched tick after a
// tracer attaches. Per-object registry version stamps are deferred the
// same way: a quiescent store has no observer of per-object versions
// (conflict checks compare an owned object against itself), so the
// flush advances the store's version counter by the batch size in one
// add (registry.AdvanceVersion) instead of touching a million Meta
// fields.

// farFuture is the readiness horizon of a cache with no starting pods.
const farFuture = time.Duration(math.MaxInt64)

// hotState is the dense SoA mirror; non-nil exactly when the kernel is
// sharded (Config.Shards > 1).
type hotState struct {
	slow     []float64         // node slot → interference slowdown (P1)
	appUsage []resource.Vector // app hot index → per-replica usage (P2)

	fast        bool          // this tick runs the dense path (set per tick)
	usageStale  bool          // pod .Usage fields lag appUsage
	lastPhaseAt time.Duration // virtual time of the last fast P2
}

// appRunCache is one app's cached ready-replica aggregate — exactly
// what the serial P2 loop re-derives per tick.
type appRunCache struct {
	ok      bool
	slots   []int32         // node slots of ready running replicas, byApp order
	alloc   resource.Vector // sum of their Requests, byApp order
	ready   int             // len(slots)
	contrib int             // replicas stamped by the last serving tick
	horizon time.Duration   // earliest future ReadyAt among running replicas
}

// nodePodCache is one node's cached running-pod composition for P3.
// entries holds, per pod in byNode order: a service app's hot index
// (usage = hot.appUsage[idx]) or -(k+1) addressing tasks[k] (usage read
// live off the pod, tasks own their usage). Not-yet-ready service pods
// are omitted — their usage is exactly zero, and adding zero vectors to
// the non-negative partial sums is a float identity — but they set the
// readiness horizon so the entry appears the tick they start serving.
type nodePodCache struct {
	ok      bool
	entries []int32
	tasks   []*PodObject
	running int // all Running pods on the node, ready or not
	horizon time.Duration
}

// hotAddNode assigns a dense slot to a new node. Both the incremental
// path (indexAddNode) and ProvisionBulk register through here.
func (c *Cluster) hotAddNode(n *NodeObject) {
	if c.hot == nil {
		return
	}
	n.slot = int32(len(c.hot.slow))
	c.hot.slow = append(c.hot.slow, 1)
}

// hotAddApp assigns a dense usage index to a new service.
func (c *Cluster) hotAddApp(st *appState) {
	if c.hot == nil {
		return
	}
	st.hotIdx = int32(len(c.hot.appUsage))
	c.hot.appUsage = append(c.hot.appUsage, resource.Vector{})
}

// hotDirtyApp invalidates an app's run cache after a membership,
// readiness-anchor or request mutation.
func (c *Cluster) hotDirtyApp(app string) {
	if c.hot == nil {
		return
	}
	if st, ok := c.apps[app]; ok {
		st.rc.ok = false
	}
}

// hotDirtyNode invalidates a node's pod cache after a bind/unbind.
func (c *Cluster) hotDirtyNode(node string) {
	if c.hot == nil {
		return
	}
	if n, ok := c.nodes[node]; ok {
		n.pc.ok = false
	}
}

// rebuildAppCache re-derives the app's ready aggregate from the byApp
// index: the same filter, addends and order as the serial loop, cached
// until topology changes or the readiness horizon passes.
func (c *Cluster) rebuildAppCache(st *appState, now time.Duration) {
	rc := &st.rc
	rc.slots = rc.slots[:0]
	rc.alloc = resource.Vector{}
	rc.horizon = farFuture
	for _, p := range c.byApp[st.obj.Spec.Name] {
		if p.Phase != Running {
			continue
		}
		if p.ReadyAt > now {
			if p.ReadyAt < rc.horizon {
				rc.horizon = p.ReadyAt
			}
			continue
		}
		rc.slots = append(rc.slots, c.nodes[p.Node].slot)
		rc.alloc = rc.alloc.Add(p.Requests)
	}
	rc.ready = len(rc.slots)
	rc.ok = true
}

// phaseAppFast is P2 on the dense path: the cached aggregate replaces
// the per-pod walk, slowdowns gather from hot.slow by slot, the result
// lands in hot.appUsage, and no per-pod usage or registry writes
// happen. The telemetry tail (noise, chaos, windows, handles, PLO) is
// shared with the pointer-walking path, so every observable number is
// identical.
func (c *Cluster) phaseAppFast(st *appState, now time.Duration) {
	spec := st.obj.Spec
	lambda := st.loadFn(now)
	if lambda < 0 {
		lambda = 0
	}
	rc := &st.rc
	if !rc.ok || rc.horizon <= now {
		c.rebuildAppCache(st, now)
	}

	var result perf.Result
	if rc.ready == 0 {
		result = perf.Result{
			MeanLatency: spec.Model.MaxLatency,
			P99Latency:  spec.Model.MaxLatency,
			Throughput:  0,
			Saturated:   lambda > 0,
		}
		// The serial loop would clear each replica's leftover usage once;
		// the dense path clears them all by zeroing appUsage below. Owe
		// the flush the version stamps of that one-time clear.
		st.stamps = rc.contrib
		rc.contrib = 0
	} else {
		var slow float64
		for _, s := range rc.slots {
			slow += c.hot.slow[s]
		}
		alloc := rc.alloc.Scale(1 / float64(rc.ready))
		slow /= float64(rc.ready)
		result = spec.Model.Evaluate(lambda, rc.ready, alloc, slow)
		st.stamps = rc.ready
		rc.contrib = rc.ready
	}
	c.hot.appUsage[st.hotIdx] = result.Usage
	c.phaseAppTail(st, now, lambda, rc.ready, result)
}

// rebuildNodeCache re-derives the node's running-pod composition from
// the byNode index, preserving byNode order so the P3 gather sums the
// same addends in the same order as the serial loop.
func (c *Cluster) rebuildNodeCache(n *NodeObject, now time.Duration) {
	pc := &n.pc
	pc.entries = pc.entries[:0]
	pc.tasks = pc.tasks[:0]
	pc.horizon = farFuture
	running := 0
	for _, p := range c.byNode[n.Name] {
		if p.Phase != Running {
			continue
		}
		running++
		if p.IsTask() {
			pc.entries = append(pc.entries, int32(-len(pc.tasks)-1))
			pc.tasks = append(pc.tasks, p)
			continue
		}
		if p.ReadyAt > now {
			if p.ReadyAt < pc.horizon {
				pc.horizon = p.ReadyAt
			}
			continue
		}
		pc.entries = append(pc.entries, c.apps[p.App].hotIdx)
	}
	pc.running = running
	pc.ok = true
}

// phaseNodeUsageFast is P3 on the dense path: usage gathers from the
// 16-byte-per-app appUsage table (and live task pods) instead of
// walking every pod object.
func (c *Cluster) phaseNodeUsageFast(n *NodeObject, now time.Duration) {
	pc := &n.pc
	if !pc.ok || pc.horizon <= now {
		c.rebuildNodeCache(n, now)
	}
	var usage resource.Vector
	h := c.hot
	for _, e := range pc.entries {
		if e >= 0 {
			usage = usage.Add(h.appUsage[e])
		} else {
			usage = usage.Add(pc.tasks[-e-1].Usage)
		}
	}
	n.Usage = usage
	n.running = pc.running
}

// flushAppsFast is the app-side barrier on the dense path. With no
// watchers there is nothing to notify and no per-object version to
// stamp eagerly: the per-pod registry work collapses to one counter
// advance, leaving an O(apps) residue walk (fault tallies, chaos
// absorption) in appList order.
func (c *Cluster) flushAppsFast() {
	chaosOn := c.chaos != nil
	stamps := 0
	for _, st := range c.appList {
		stamps += st.stamps
		st.stamps = 0
		c.lastTick.SamplesDropped += st.tickDrop
		c.lastTick.SamplesStale += st.tickStale
		st.tickDrop, st.tickStale = 0, 0
		if chaosOn {
			c.chaos.Absorb(st.chaosStats)
			st.chaosStats = chaos.Stats{}
		}
	}
	c.store.AdvanceVersion(stamps)
}

// flushNodesFast is the node-side barrier on the dense path: the same
// totals accumulation in nodeList order (bit-identical sums), minus the
// per-node registry stamping, which becomes one version advance.
func (c *Cluster) flushNodesFast(now time.Duration) {
	var capTotal, allocTotal, usageTotal resource.Vector
	emptyNodes := 0
	for _, n := range c.nodeList {
		if !n.Ready {
			continue
		}
		if n.running == 0 {
			emptyNodes++
		}
		capTotal = capTotal.Add(n.Allocatable)
		allocTotal = allocTotal.Add(n.Allocated)
		usageTotal = usageTotal.Add(n.Usage)
	}
	c.store.AdvanceVersion(len(c.nodeList))
	allocFrac := allocTotal.Div(capTotal)
	usageFrac := usageTotal.Div(capTotal)
	ch := c.clusterSeries()
	for _, k := range resource.Kinds() {
		ch.allocated[k].Add(now, allocFrac[k])
		ch.usage[k].Add(now, usageFrac[k])
	}
	ch.pods.Add(now, float64(len(c.pods)))
	ch.pending.Add(now, float64(len(c.pending)))
	ch.emptyNodes.Add(now, float64(emptyNodes))
}

// syncPodUsage materialises per-pod Usage fields from the dense state.
// A service replica carries its app's last evaluated usage iff it was
// running and ready at the last fast phase (exactly the set the serial
// loop stamps); every other replica's usage is zero — eviction clears
// usage and a replica can only become not-ready by being re-bound,
// which passes through eviction, so a not-ready replica's usage is
// always zero on the serial path too. Task pods own their usage and are
// never touched.
func (c *Cluster) syncPodUsage() {
	h := c.hot
	if h == nil || !h.usageStale {
		return
	}
	for _, st := range c.appList {
		u := h.appUsage[st.hotIdx]
		for _, p := range c.byApp[st.obj.Spec.Name] {
			if p.Phase == Running && p.ReadyAt <= h.lastPhaseAt {
				p.Usage = u
			} else {
				p.Usage = resource.Vector{}
			}
		}
	}
	h.usageStale = false
}
