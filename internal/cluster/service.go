package cluster

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"evolve/internal/chaos"
	"evolve/internal/control"
	"evolve/internal/obs"
	"evolve/internal/plo"
	"evolve/internal/registry"
	"evolve/internal/resource"
)

// CreateService deploys a replicated service. Its replicas start pending
// and are placed on the next tick (or immediately via SchedulePendingNow).
func (c *Cluster) CreateService(spec ServiceSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, ok := c.apps[spec.Name]; ok {
		return fmt.Errorf("cluster: service %s already exists", spec.Name)
	}
	obj := &AppObject{
		Meta:            registry.Meta{Kind: KindApp, Name: spec.Name},
		Spec:            spec,
		DesiredReplicas: spec.InitialReplicas,
		Alloc:           spec.InitialAlloc,
	}
	if err := c.store.Create(obj); err != nil {
		return err
	}
	st := c.newAppState(obj)
	c.apps[spec.Name] = st
	c.indexAddApp(st)
	for i := 0; i < spec.InitialReplicas; i++ {
		c.addReplica(st)
	}
	return nil
}

// newAppState builds the bookkeeping for a created service, including
// its per-app random streams. The streams are keyed by app name, so a
// service observes the same noise and fault draws no matter how many
// other services exist or which shard it lands on.
func (c *Cluster) newAppState(obj *AppObject) *appState {
	name := obj.Spec.Name
	return &appState{
		obj:      obj,
		tracker:  plo.NewTracker(obj.Spec.PLO),
		loadFn:   func(time.Duration) float64 { return 0 },
		noise:    c.prng.Stream("noise/" + name),
		chaosRNG: c.prng.Stream("chaos/" + name),
	}
}

// SetLoadFunc installs the offered-load function (ops/second over virtual
// time) for a service.
func (c *Cluster) SetLoadFunc(app string, fn func(now time.Duration) float64) error {
	st, ok := c.apps[app]
	if !ok {
		return fmt.Errorf("cluster: unknown service %s", app)
	}
	if fn == nil {
		return fmt.Errorf("cluster: nil load function for %s", app)
	}
	st.loadFn = fn
	return nil
}

// Apps returns the names of all services, sorted.
func (c *Cluster) Apps() []string {
	names := make([]string, 0, len(c.appList))
	for _, st := range c.appList {
		names = append(names, st.obj.Spec.Name)
	}
	return names
}

// App returns the registry object for a service.
func (c *Cluster) App(name string) (*AppObject, error) {
	st, ok := c.apps[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown service %s", name)
	}
	return st.obj, nil
}

func (c *Cluster) addReplica(st *appState) *PodObject {
	spec := st.obj.Spec
	p := &PodObject{
		Meta:         registry.Meta{Kind: KindPod, Name: c.nextPodName(spec.Name)},
		App:          spec.Name,
		Phase:        Pending,
		Requests:     st.obj.Alloc,
		Priority:     spec.Priority,
		NodeSelector: spec.NodeSelector,
		CreatedAt:    c.now(),
		pendingSince: c.now(),
		// Causal link to the decision being applied, if any: addReplica is
		// only reached from initial deployment (no cause) or from inside
		// applyDecision/migrateWorstReplica (cause freshly stamped).
		causeAt:   st.decisionAt,
		causeSpan: st.decisionSpan,
	}
	if err := c.store.Create(p); err != nil {
		// Absorb the failed create (the replica simply does not come up
		// this round) rather than crashing the control plane; the next
		// decision retries. Callers tolerate the nil.
		c.registryFault(p, err)
		return nil
	}
	c.pods[p.Name] = p
	c.indexAddPod(p)
	return p
}

// appPods returns the live pods of a service, newest last. The result is
// a copy of the byApp index, safe to hold across mutations; the tick
// reads the index directly instead.
func (c *Cluster) appPods(app string) []*PodObject {
	return append([]*PodObject(nil), c.byApp[app]...)
}

// ApplyDecision actuates a controller decision: horizontal scale to
// d.Replicas and vertical resize of every replica towards d.Alloc.
// Vertical grants are limited by node headroom; a replica that stays
// badly throttled is migrated (delete + recreate pending) so the
// scheduler can find it a roomier node.
func (c *Cluster) ApplyDecision(app string, d control.Decision) error {
	st, ok := c.apps[app]
	if !ok {
		return fmt.Errorf("cluster: unknown service %s", app)
	}
	if c.chaos != nil {
		if v := c.chaos.Actuation(app, c.now()); v != (chaos.ActVerdict{}) {
			return c.chaoticApply(st, d, v)
		}
	}
	return c.applyDecision(st, d)
}

// BeginActuationBatch implements control.BatchActuator: the control
// loop brackets its serial apply walk with Begin/End so per-decision
// work that is invariant for the whole step event can be computed once.
// Today that is the largest-ready-node allocatable cap — O(nodes) per
// decision serially, O(nodes) per control period batched. Topology and
// readiness cannot change inside one engine event, so the cached value
// is bit-exact; chaos-delayed applies and loop retries fire outside the
// window and recompute against the live world.
func (c *Cluster) BeginActuationBatch() {
	c.ctrlBatch = true
	c.ctrlBiggest, c.ctrlBiggestOK = c.largestNodeAllocatable()
}

// EndActuationBatch closes the window opened by BeginActuationBatch.
func (c *Cluster) EndActuationBatch() { c.ctrlBatch = false }

// chaoticApply carries out an actuation under an injected fault verdict:
// reject it (transient error, the loop retries), delay it, or apply only
// a fraction of the decision's delta.
func (c *Cluster) chaoticApply(st *appState, d control.Decision, v chaos.ActVerdict) error {
	app := st.obj.Spec.Name
	switch {
	case v.Reject:
		c.met.Counter("chaos/act-rejected").Inc()
		c.recordEvent("chaos-inject", app, "actuation rejected (injected fault)")
		if c.tracer.Enabled() {
			c.tracer.Record(obs.Event{
				At: c.now(), Kind: obs.KindFault, Verb: obs.VerbInject, App: app,
				Detail: "actuation rejected", NewReplicas: d.Replicas, NewAlloc: d.Alloc,
			})
		}
		return chaos.Rejected("ApplyDecision", app)
	case v.Delay > 0:
		c.met.Counter("chaos/act-delayed").Inc()
		c.recordEvent("chaos-inject", app, fmt.Sprintf("actuation delayed by %v (injected fault)", v.Delay))
		if c.tracer.Enabled() {
			c.tracer.Record(obs.Event{
				At: c.now(), Kind: obs.KindFault, Verb: obs.VerbInject, App: app,
				Detail:      fmt.Sprintf("actuation delayed by %v", v.Delay),
				NewReplicas: d.Replicas, NewAlloc: d.Alloc,
			})
		}
		key := strconv.FormatUint(c.delaySeq, 10)
		c.delaySeq++
		c.pendingApply[key] = delayedApply{app: app, d: d}
		c.eng.TagNext("act-delay", key)
		c.eng.After(v.Delay, func() {
			delete(c.pendingApply, key)
			_ = c.applyDecision(st, d)
		})
		return nil
	default: // partial
		frac := v.Partial
		cur := control.Decision{Replicas: st.obj.DesiredReplicas, Alloc: st.obj.Alloc}
		d.Replicas = cur.Replicas + int(math.Round(float64(d.Replicas-cur.Replicas)*frac))
		d.Alloc = cur.Alloc.Add(d.Alloc.Sub(cur.Alloc).Scale(frac))
		c.met.Counter("chaos/act-partial").Inc()
		c.recordEvent("chaos-inject", app, fmt.Sprintf("actuation applied at %.0f%% (injected fault)", frac*100))
		if c.tracer.Enabled() {
			c.tracer.Record(obs.Event{
				At: c.now(), Kind: obs.KindFault, Verb: obs.VerbInject, App: app,
				Detail:      fmt.Sprintf("actuation applied at %.0f%%", frac*100),
				NewReplicas: d.Replicas, NewAlloc: d.Alloc,
			})
		}
		return c.applyDecision(st, d)
	}
}

// applyDecision is the fault-free actuation body.
func (c *Cluster) applyDecision(st *appState, d control.Decision) error {
	app := st.obj.Spec.Name
	if d.Replicas < 1 {
		d.Replicas = 1
	}
	if !d.Alloc.NonNegative() || d.Alloc.IsZero() {
		return fmt.Errorf("cluster: invalid allocation %v for %s", d.Alloc, app)
	}
	// A per-replica allocation larger than the biggest ready node can
	// host would create permanently unschedulable pods; clamp it, the
	// way an admission LimitRange would. Inside an actuation batch the
	// cap was computed once for the whole control period.
	biggest, ok := c.ctrlBiggest, c.ctrlBiggestOK
	if !c.ctrlBatch {
		biggest, ok = c.largestNodeAllocatable()
	}
	if ok {
		capped := d.Alloc.Min(biggest)
		if capped != d.Alloc {
			c.met.Counter("resize/node-capped").Inc()
			if c.tracer.Enabled() {
				c.tracer.Record(obs.Event{
					At: c.now(), Kind: obs.KindSched, Verb: obs.VerbCap,
					App: app, Alloc: d.Alloc, NewAlloc: capped,
					Detail: "per-replica allocation capped to largest node",
				})
			}
			d.Alloc = capped
		}
	}
	// Stamp the causal anchor before any pods are created: replicas added
	// below inherit this instant (and span) so the decision→effect lag —
	// decision applied to first caused bind — is measurable, traced or not.
	st.decisionAt = c.now()
	if c.tracer.Enabled() {
		st.decisionSpan = c.tracer.RecordSpan(obs.Span{
			Kind: obs.SpanDecision, App: app, Object: app,
			Detail: fmt.Sprintf("replicas=%d", d.Replicas),
			Shard:  c.appShard(app), Start: c.now(), End: c.now(),
		})
	} else {
		st.decisionSpan = 0
	}
	st.obj.DesiredReplicas = d.Replicas
	st.obj.Alloc = d.Alloc
	c.update(st.obj)

	pods := c.appPods(app)
	// Horizontal: add or remove replicas (newest first on the way down).
	for len(pods) < d.Replicas {
		p := c.addReplica(st)
		if p == nil {
			break // create absorbed as a registry fault; retried next period
		}
		pods = append(pods, p)
	}
	for len(pods) > d.Replicas {
		last := pods[len(pods)-1]
		c.deletePod(last)
		c.met.Counter("scale/down-deletes").Inc()
		pods = pods[:len(pods)-1]
	}

	// Vertical: in-place resize where headroom allows. A replica already
	// at the desired allocation is left untouched: with Free() >= 0 on
	// every dimension the grant would be exactly the current requests, so
	// the resize is a no-op — skipping it avoids re-deriving the node's
	// Allocated sum (and its float dust) plus two registry updates per
	// steady-state replica per period.
	throttled := false
	for _, p := range pods {
		if p.Phase == Pending {
			if p.Requests != d.Alloc {
				p.Requests = d.Alloc
				c.update(p)
			}
			continue
		}
		if p.Requests == d.Alloc {
			if _, ok := c.nodes[p.Node]; ok {
				continue
			}
		}
		granted := c.resizeInPlace(p, d.Alloc)
		if !granted {
			throttled = true
		}
	}
	if throttled {
		st.migrateDebt++
		c.met.Counter("resize/throttled").Inc()
	} else {
		st.migrateDebt = 0
	}
	// Persistent throttling: migrate the most-throttled replica.
	if st.migrateDebt >= 2 {
		c.migrateWorstReplica(st, d.Alloc)
		st.migrateDebt = 0
	}
	return nil
}

// resizeInPlace grants as much of the desired allocation as the node's
// headroom allows. Returns true when fully granted on all dimensions.
func (c *Cluster) resizeInPlace(p *PodObject, desired resource.Vector) bool {
	n, ok := c.nodes[p.Node]
	if !ok {
		return false
	}
	headroom := n.Free().Add(p.Requests) // room available to this pod
	granted := desired.Min(headroom)
	// Never shrink below what the pod already uses minus a safety margin
	// is the controller's job; the substrate just applies the grant.
	n.Allocated = snapDust(n.Allocated.Sub(p.Requests).Add(granted).ClampMin(0))
	p.Requests = granted
	c.hotDirtyApp(p.App)
	c.update(p)
	c.update(n)
	full := true
	for _, k := range resource.Kinds() {
		if granted[k] < desired[k]*0.999 {
			full = false
		}
	}
	return full
}

// migrateWorstReplica deletes the replica whose grant is furthest from
// desired and recreates it pending, letting the scheduler relocate it.
func (c *Cluster) migrateWorstReplica(st *appState, desired resource.Vector) {
	pods := c.appPods(st.obj.Name)
	var worst *PodObject
	worstGap := 0.0
	for _, p := range pods {
		if p.Phase != Running {
			continue
		}
		gap, _ := desired.Sub(p.Requests).ClampMin(0).DominantShare(desired.ClampMin(1))
		if gap > worstGap {
			worst, worstGap = p, gap
		}
	}
	if worst == nil || worstGap < 0.05 {
		return
	}
	fromNode := worst.Node
	if c.tracer.Enabled() {
		c.emitSegmentSpan(worst, fromNode, "migrated")
	}
	c.deletePod(worst)
	c.addReplica(st)
	c.met.Counter("resize/migrations").Inc()
	c.recordEvent("pod-migrated", worst.Name, "replica of %s re-queued for a roomier node", st.obj.Name)
	if c.tracer.Enabled() {
		c.tracer.Record(obs.Event{
			At: c.now(), Kind: obs.KindSched, Verb: obs.VerbMigrate,
			App: st.obj.Name, Object: worst.Name, Node: fromNode,
			Detail: "persistently throttled resize; re-queued for a roomier node",
		})
	}
}

// SchedulePendingNow runs one placement round outside the tick; tests and
// setup code use it to avoid waiting a metrics interval.
func (c *Cluster) SchedulePendingNow() { c.schedulePending() }

// Observe aggregates the service's telemetry since the previous Observe
// call into a controller observation.
func (c *Cluster) Observe(app string) (control.Observation, error) {
	st, ok := c.apps[app]
	if !ok {
		return control.Observation{}, fmt.Errorf("cluster: unknown service %s", app)
	}
	now := c.now()
	spec := st.obj.Spec
	ready := 0
	for _, p := range c.byApp[app] {
		if p.Phase == Running && p.ReadyAt <= now {
			ready++
		}
	}
	obs := control.Observation{
		App:           app,
		Now:           now,
		Interval:      now - st.lastObserve,
		PLO:           spec.PLO,
		Replicas:      st.obj.DesiredReplicas,
		ReadyReplicas: ready,
		Alloc:         st.obj.Alloc,
		Limits: control.Limits{
			MinAlloc:    spec.MinAlloc,
			MaxAlloc:    orVector(spec.MaxAlloc, st.obj.Alloc.Scale(1000)),
			MinReplicas: 1,
			MaxReplicas: spec.MaxReplicas,
		},
	}
	obs.SLI = meanOf(st.winSLI)
	obs.MeanLatency = meanOf(st.winMean)
	obs.P99Latency = meanOf(st.winP99)
	obs.Throughput = meanOf(st.winThroughput)
	obs.OfferedLoad = meanOf(st.winOffered)
	obs.Usage = meanVec(st.winUsage)
	obs.Utilisation = meanVec(st.winUtil)
	obs.Saturated = st.winSaturated
	obs.Samples = len(st.winSLI)
	obs.ExpectedSamples = st.winTicks
	obs.StaleSamples = st.winStale

	st.winTicks = 0
	st.winStale = 0
	st.winSLI = st.winSLI[:0]
	st.winMean = st.winMean[:0]
	st.winP99 = st.winP99[:0]
	st.winThroughput = st.winThroughput[:0]
	st.winOffered = st.winOffered[:0]
	st.winUsage = st.winUsage[:0]
	st.winUtil = st.winUtil[:0]
	st.winSaturated = false
	st.lastObserve = now
	return obs, nil
}

// Tracker returns the PLO violation tracker for a service.
func (c *Cluster) Tracker(app string) (*plo.Tracker, error) {
	st, ok := c.apps[app]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown service %s", app)
	}
	return st.tracker, nil
}

func meanOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func meanVec(vs []resource.Vector) resource.Vector {
	var out resource.Vector
	if len(vs) == 0 {
		return out
	}
	for _, v := range vs {
		out = out.Add(v)
	}
	return out.Scale(1 / float64(len(vs)))
}

func orVector(v, fallback resource.Vector) resource.Vector {
	if v.IsZero() {
		return fallback
	}
	return v
}
