package cluster

import (
	"testing"
	"time"

	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

func provisionSpec(name string, replicas int) ServiceSpec {
	return ServiceSpec{
		Name: name,
		Model: perf.ServiceModel{
			BaseLatency:      2 * time.Millisecond,
			DemandPerOp:      resource.New(10, 0, 20e3, 50e3),
			MemFixed:         256 << 20,
			MemPerConcurrent: 4 << 20,
			MaxLatency:       30 * time.Second,
		},
		PLO:             plo.Latency(100 * time.Millisecond),
		InitialReplicas: replicas,
		InitialAlloc:    resource.New(500, 1<<30, 50e6, 50e6),
		MaxReplicas:     1 << 20,
		Priority:        100,
	}
}

// TestProvisionBulkMatchesIndexInvariants stands up a sharded topology
// in one pass and checks every incremental index against its slow
// re-derivation — the same oracle the mutation paths are tested with.
func TestProvisionBulkMatchesIndexInvariants(t *testing.T) {
	eng := sim.NewEngine(7)
	cfg := DefaultConfig()
	cfg.Shards = 4
	c := New(eng, cfg)
	err := c.ProvisionBulk(Provision{
		NodePrefix:   "bn",
		Nodes:        40,
		NodeCapacity: resource.New(16000, 64<<30, 1e9, 2e9),
		Services: []ServiceSpec{
			provisionSpec("prov-a", 60),
			provisionSpec("prov-b", 37),
			provisionSpec("prov-c", 11),
		},
	})
	if err != nil {
		t.Fatalf("ProvisionBulk: %v", err)
	}
	checkIndexes(t, c, 0)

	if got := len(c.Pods()); got != 108 {
		t.Fatalf("pods = %d, want 108", got)
	}
	if got := len(c.PendingPods()); got != 0 {
		t.Fatalf("pending = %d, want 0 (everything fits)", got)
	}
	for _, p := range c.Pods() {
		if p.Phase != Running || p.Node == "" {
			t.Fatalf("pod %s: phase=%v node=%q, want bound and Running", p.Name, p.Phase, p.Node)
		}
	}
	// Shard partitions must cover exactly the global index, in order.
	nodes, apps := 0, 0
	for _, sh := range c.shards {
		nodes += len(sh.nodes)
		apps += len(sh.apps)
		for i := 1; i < len(sh.nodes); i++ {
			if sh.nodes[i-1].Name >= sh.nodes[i].Name {
				t.Fatalf("shard node partition out of order at %s", sh.nodes[i].Name)
			}
		}
	}
	if nodes != len(c.nodeList) || apps != len(c.appList) {
		t.Fatalf("shard partitions cover %d nodes / %d apps, want %d / %d",
			nodes, apps, len(c.nodeList), len(c.appList))
	}

	// The provisioned cluster must tick and keep ticking: run a short
	// horizon and require node allocation to be visible in the summary.
	for _, st := range c.appList {
		st.loadFn = func(time.Duration) float64 { return 50 }
	}
	c.Start()
	c.Run(2 * time.Minute)
	alloc, _ := c.UtilisationSummary(0, 2*time.Minute)
	if alloc[resource.CPU] <= 0 {
		t.Fatalf("allocated CPU fraction = %v, want > 0", alloc[resource.CPU])
	}
}

// TestProvisionBulkOverflowStaysPending over-commits the fleet and
// expects the overflow replicas to queue rather than vanish.
func TestProvisionBulkOverflowStaysPending(t *testing.T) {
	eng := sim.NewEngine(7)
	c := New(eng, DefaultConfig())
	// One node fits 30 replicas of 500m within 16 cores * 0.94.
	err := c.ProvisionBulk(Provision{
		NodePrefix:   "bn",
		Nodes:        1,
		NodeCapacity: resource.New(16000, 64<<30, 1e9, 2e9),
		Services:     []ServiceSpec{provisionSpec("prov-over", 40)},
	})
	if err != nil {
		t.Fatalf("ProvisionBulk: %v", err)
	}
	checkIndexes(t, c, 0)
	if got := len(c.PendingPods()); got == 0 {
		t.Fatal("expected overflow replicas to stay pending")
	}
	if got := c.Metrics().Counter("provision/unplaced").Value(); got == 0 {
		t.Fatal("expected provision/unplaced > 0")
	}
}

// TestProvisionBulkAfterStartRefused pins the setup-time-only contract.
func TestProvisionBulkAfterStartRefused(t *testing.T) {
	eng := sim.NewEngine(7)
	c := New(eng, DefaultConfig())
	c.Start()
	if err := c.ProvisionBulk(Provision{Nodes: 1, NodePrefix: "n", NodeCapacity: resource.New(1000, 1<<30, 1e6, 1e6)}); err == nil {
		t.Fatal("ProvisionBulk after Start must fail")
	}
}
