// Package cluster is the simulated Kubernetes-style substrate the EVOLVE
// stack runs on: nodes with multi-resource capacities, pods with granted
// allocations, replicated service applications driven by queueing-model
// performance curves, and batch/HPC task pods with bottleneck-law
// durations. The cluster exposes the same control surface a real
// controller would use — metrics observations in, resize/scale/placement
// decisions out — while remaining a deterministic discrete-event
// simulation (see DESIGN.md for the substitution rationale).
package cluster

import (
	"fmt"
	"time"

	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/registry"
	"evolve/internal/resource"
)

// Object kinds in the registry.
const (
	KindNode = "node"
	KindPod  = "pod"
	KindApp  = "app"
)

// Phase is a pod lifecycle phase.
type Phase int

// Pod lifecycle phases.
const (
	Pending Phase = iota
	Running
	Succeeded
	Failed
)

// String returns the canonical phase name.
func (p Phase) String() string {
	switch p {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// NodeObject is the registry representation of a node.
type NodeObject struct {
	registry.Meta
	Capacity resource.Vector
	// Allocatable is capacity minus the system reservation.
	Allocatable resource.Vector
	Ready       bool

	// Allocated is the sum of granted pod requests (maintained by the
	// cluster, not persisted input).
	Allocated resource.Vector
	// Usage is the lagged sum of pod usage, used for interference.
	Usage resource.Vector

	// Tick scratch, owned by the node's shard during parallel phases:
	// slow is the interference slowdown computed from last tick's usage,
	// running the bound-and-running pod count from the usage refresh.
	slow    float64
	running int

	// Sharded-kernel hot state (hotstate.go): slot is the node's index
	// into the cluster's dense arrays, pc the cached running-pod
	// composition P3 gathers from. Unused on the single-engine path.
	slot int32
	pc   nodePodCache
}

// GetMeta implements registry.Object.
func (n *NodeObject) GetMeta() *registry.Meta { return &n.Meta }

// Free returns unallocated headroom on the node.
func (n *NodeObject) Free() resource.Vector {
	return n.Allocatable.Sub(n.Allocated).ClampMin(0)
}

// PodObject is the registry representation of a pod. Service replicas and
// batch/HPC tasks share the type; Task is nil for service replicas.
type PodObject struct {
	registry.Meta
	App      string
	Node     string // empty while pending
	Phase    Phase
	Requests resource.Vector
	Priority int

	// Usage is the most recent per-pod resource usage (lagged one tick).
	Usage resource.Vector

	// NodeSelector restricts which nodes may host this pod.
	NodeSelector map[string]string

	// Task describes a finite-work pod; nil for service replicas.
	Task *TaskSpec

	CreatedAt time.Duration
	BoundAt   time.Duration
	// ReadyAt is when a service replica starts serving (bind time plus
	// the application's startup delay); tasks are ready at bind.
	ReadyAt  time.Duration
	FinishAt time.Duration // tasks: scheduled completion

	// Span bookkeeping (spans.go). pendingSince marks the start of the
	// current pending segment (creation, or the eviction that re-queued
	// the pod) and everBound whether a first bind has happened; both are
	// maintained unconditionally so untraced latency histograms see the
	// same intervals traced spans do. causeAt is when the decision or
	// gang admission that created this pod was applied (zero for initial
	// deployment). spanID is the pod's root lifecycle span and causeSpan
	// its causal parent; both stay zero when tracing is off.
	pendingSince time.Duration
	causeAt      time.Duration
	everBound    bool
	spanID       uint64
	causeSpan    uint64
}

// GetMeta implements registry.Object.
func (p *PodObject) GetMeta() *registry.Meta { return &p.Meta }

// IsTask reports whether the pod runs finite work.
func (p *PodObject) IsTask() bool { return p.Task != nil }

// AppObject is the registry representation of a service application.
type AppObject struct {
	registry.Meta
	Spec            ServiceSpec
	DesiredReplicas int
	// Alloc is the desired per-replica allocation.
	Alloc resource.Vector
}

// GetMeta implements registry.Object.
func (a *AppObject) GetMeta() *registry.Meta { return &a.Meta }

// ServiceSpec declares one replicated, latency- or throughput-sensitive
// service application.
type ServiceSpec struct {
	Name  string
	Model perf.ServiceModel
	PLO   plo.PLO

	InitialReplicas int
	InitialAlloc    resource.Vector

	// MinAlloc/MaxAlloc bound vertical scaling; MaxReplicas bounds
	// horizontal scaling (0 = unbounded).
	MinAlloc    resource.Vector
	MaxAlloc    resource.Vector
	MaxReplicas int

	// Priority relative to other pods (services usually > tasks).
	Priority int

	// StartupDelay is how long a freshly placed replica takes before it
	// serves traffic (image pull, init, warmup). Zero means instant.
	// In-place vertical resizes are never delayed — that asymmetry is
	// why the controller prefers them.
	StartupDelay time.Duration

	// NodeSelector restricts replicas to nodes carrying these labels.
	NodeSelector map[string]string
}

// Validate reports spec errors.
func (s ServiceSpec) Validate() error {
	if s.StartupDelay < 0 {
		return fmt.Errorf("cluster: service %s: negative startup delay", s.Name)
	}
	if s.Name == "" {
		return fmt.Errorf("cluster: service needs a name")
	}
	if err := s.Model.Validate(); err != nil {
		return fmt.Errorf("cluster: service %s: %w", s.Name, err)
	}
	if err := s.PLO.Validate(); err != nil {
		return fmt.Errorf("cluster: service %s: %w", s.Name, err)
	}
	if s.InitialReplicas < 1 {
		return fmt.Errorf("cluster: service %s: needs at least one replica", s.Name)
	}
	if s.InitialAlloc.IsZero() {
		return fmt.Errorf("cluster: service %s: zero initial allocation", s.Name)
	}
	if !s.MinAlloc.IsZero() && !s.MaxAlloc.IsZero() && !s.MaxAlloc.Dominates(s.MinAlloc) {
		return fmt.Errorf("cluster: service %s: MaxAlloc must dominate MinAlloc", s.Name)
	}
	return nil
}

// TaskSpec declares one finite-work pod (a big-data task or an HPC rank).
type TaskSpec struct {
	Name     string
	Job      string
	Model    perf.TaskModel
	Requests resource.Vector
	Priority int
	// NodeSelector restricts this task to nodes carrying these labels.
	NodeSelector map[string]string
	// OnDone is invoked when the task finishes; failed is true when the
	// pod was killed (node failure or preemption) rather than completing.
	OnDone func(name string, failed bool)
}

// Validate reports spec errors.
func (t TaskSpec) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("cluster: task needs a name")
	}
	if t.Requests.IsZero() {
		return fmt.Errorf("cluster: task %s: zero requests", t.Name)
	}
	return nil
}
