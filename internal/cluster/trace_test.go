package cluster

import (
	"fmt"
	"testing"
	"time"

	"evolve/internal/control"
	"evolve/internal/obs"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

// TestTraceEventsEmitted wires a tracer before Start and checks the
// cluster narrates its lifecycle: registry adds, scheduler binds, PLO
// onsets when an app drowns, and node-failure markers.
func TestTraceEventsEmitted(t *testing.T) {
	eng := sim.NewEngine(3)
	c := New(eng, DefaultConfig())
	tr := obs.New(4096)
	c.SetTracer(tr)
	if c.Tracer() != tr {
		t.Fatal("Tracer() does not return the installed tracer")
	}
	if err := c.AddNodes("n", 3, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
		t.Fatal(err)
	}
	spec := testService("web")
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	// Offered load far beyond what two starved replicas can serve: the
	// SLI blows through the PLO target and an onset must be recorded.
	if err := c.SetLoadFunc("web", func(time.Duration) float64 { return 5000 }); err != nil {
		t.Fatal(err)
	}
	c.Start()
	eng.Run(2 * time.Minute)
	if err := c.FailNode("n-0"); err != nil {
		t.Fatal(err)
	}
	eng.Run(3 * time.Minute)

	count := func(f obs.Filter) int { return len(tr.Snapshot(f)) }
	if n := count(obs.Filter{Kind: "registry", Verb: obs.VerbAdded}); n == 0 {
		t.Error("no registry added events")
	}
	if n := count(obs.Filter{Kind: "sched", Verb: obs.VerbBind, App: "web"}); n < int(spec.InitialReplicas) {
		t.Errorf("got %d bind events, want at least %d", n, spec.InitialReplicas)
	}
	if n := count(obs.Filter{Kind: "plo", Verb: obs.VerbOnset, App: "web"}); n == 0 {
		t.Error("no PLO onset despite a drowning service")
	}
	if n := count(obs.Filter{Kind: "sched", Verb: obs.VerbNodeFailed}); n != 1 {
		t.Errorf("got %d node-failed events, want 1", n)
	}
	// Every bind names a pod and a node.
	for _, ev := range tr.Snapshot(obs.Filter{Verb: obs.VerbBind}) {
		if ev.Object == "" || ev.Node == "" {
			t.Fatalf("bind event missing object/node: %+v", ev)
		}
	}
	// Onsets carry the SLI and the objective it violated.
	for _, ev := range tr.Snapshot(obs.Filter{Verb: obs.VerbOnset}) {
		if ev.SLI <= ev.Objective || ev.PerfErr <= 0 {
			t.Fatalf("onset event lacks violation evidence: %+v", ev)
		}
	}
}

// TestTickTracedAllocsBudget is the traced half of the steady-state
// guarantee: with a tracer installed — which enables the span layer
// too — a settled tick may only touch the heap for the rare events it
// records: the budget is a couple of objects per tick, not per pod.
// Spans cost nothing here by construction: they are emitted at binds,
// decisions and evictions, none of which a steady-state tick performs.
func TestTickTracedAllocsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is not meaningful under -short")
	}
	c, eng := newBenchCluster(t, 200)
	tr := obs.New(obs.DefaultCapacity)
	c.SetTracer(tr)
	eng.Run(eng.Now() + 700*c.cfg.MetricsInterval)
	for _, app := range c.Apps() {
		if _, err := c.Observe(app); err != nil {
			t.Fatal(err)
		}
	}
	spansBefore := tr.Spans()
	allocs := testing.AllocsPerRun(100, func() { c.tick() })
	if allocs > 2 {
		t.Errorf("traced steady-state tick allocates %.1f objects/run, want ≤2", allocs)
	}
	if got := tr.Spans(); got != spansBefore {
		t.Errorf("steady-state ticks recorded %d spans, want 0", got-spansBefore)
	}
	// The span path is live, not disabled: a bind-producing mutation
	// records lifecycle spans on the very same cluster.
	app, err := c.App(c.Apps()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyDecision(app.Spec.Name, control.Decision{
		Replicas: app.DesiredReplicas + 1, Alloc: app.Alloc,
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run(eng.Now() + 3*c.cfg.MetricsInterval)
	if tr.Spans() == spansBefore {
		t.Error("scale-up recorded no spans on the traced cluster")
	}
}

// BenchmarkTickTraced is BenchmarkTick with tracing enabled — the pair
// quantifies the observability overhead documented in DESIGN.md.
func BenchmarkTickTraced(b *testing.B) {
	for _, pods := range benchSizes {
		b.Run(fmt.Sprintf("pods-%d", pods), func(b *testing.B) {
			c, _ := newBenchCluster(b, pods)
			c.SetTracer(obs.New(obs.DefaultCapacity))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.tick()
			}
		})
	}
}
