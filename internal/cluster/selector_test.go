package cluster

import (
	"testing"
	"time"

	"evolve/internal/resource"
	"evolve/internal/sim"
)

// newPooledCluster builds a cluster with two labeled pools: 2 "pool=svc"
// nodes and 2 "pool=hpc" nodes.
func newPooledCluster(t *testing.T) *Cluster {
	t.Helper()
	eng := sim.NewEngine(5)
	cfg := DefaultConfig()
	cfg.MeasurementNoise = 0
	c := New(eng, cfg)
	shape := resource.New(16000, 64<<30, 1e9, 2e9)
	for i := 0; i < 2; i++ {
		if err := c.AddLabeledNode(nodeName("svc", i), shape, map[string]string{"pool": "svc"}); err != nil {
			t.Fatal(err)
		}
		if err := c.AddLabeledNode(nodeName("hpc", i), shape, map[string]string{"pool": "hpc"}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func nodeName(pool string, i int) string {
	return pool + "-node-" + string(rune('0'+i))
}

func TestServiceNodeSelectorConfinesReplicas(t *testing.T) {
	c := newPooledCluster(t)
	spec := testService("web")
	spec.NodeSelector = map[string]string{"pool": "svc"}
	spec.InitialReplicas = 4
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()
	for _, p := range c.appPods("web") {
		if p.Phase != Running {
			t.Fatalf("pod %s not placed", p.Name)
		}
		if c.nodes[p.Node].Meta.Labels["pool"] != "svc" {
			t.Errorf("pod %s landed on %s outside the svc pool", p.Name, p.Node)
		}
	}
}

func TestTaskSelectorUnschedulableWhenPoolFull(t *testing.T) {
	c := newPooledCluster(t)
	// Fill the hpc pool completely.
	for i := 0; i < 2; i++ {
		task := testTask("filler-"+string(rune('a'+i)), 15000, 1e9)
		task.NodeSelector = map[string]string{"pool": "hpc"}
		if err := c.SubmitTask(task); err != nil {
			t.Fatal(err)
		}
	}
	c.SchedulePendingNow()
	// A further hpc-bound task must stay pending even though the svc
	// pool has room.
	task := testTask("stuck", 8000, 1e9)
	task.NodeSelector = map[string]string{"pool": "hpc"}
	if err := c.SubmitTask(task); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()
	p := c.pods["stuck"]
	if p.Phase != Pending {
		t.Errorf("selector-bound task placed on %s despite full pool", p.Node)
	}
}

func TestGangSelectorSpansOnlyPool(t *testing.T) {
	c := newPooledCluster(t)
	var gang []TaskSpec
	for i := 0; i < 2; i++ {
		ts := testTask("rank-"+string(rune('0'+i)), 7000, 140000)
		ts.NodeSelector = map[string]string{"pool": "hpc"}
		gang = append(gang, ts)
	}
	if err := c.SubmitGang(gang); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rank-0", "rank-1"} {
		p := c.pods[name]
		if c.nodes[p.Node].Meta.Labels["pool"] != "hpc" {
			t.Errorf("rank %s on %s outside the hpc pool", name, p.Node)
		}
	}
	// A 5-rank gang cannot fit in the 2-node pool (2 ranks/node max at
	// 7000m): all-or-nothing must refuse it even though svc nodes idle.
	var big []TaskSpec
	for i := 0; i < 5; i++ {
		ts := testTask("big-"+string(rune('0'+i)), 7000, 140000)
		ts.NodeSelector = map[string]string{"pool": "hpc"}
		big = append(big, ts)
	}
	if err := c.SubmitGang(big); err == nil {
		t.Error("oversized pool-bound gang should fail")
	}
}

func TestSelectorEventAndRetryAfterPoolGrows(t *testing.T) {
	c := newPooledCluster(t)
	task := testTask("waiting", 8000, 50000)
	task.NodeSelector = map[string]string{"pool": "gpu"} // no such pool yet
	if err := c.SubmitTask(task); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Engine().Run(20 * time.Second)
	if c.pods["waiting"].Phase != Pending {
		t.Fatal("task should wait for a matching node")
	}
	// The pool appears; the pending task gets placed on the next tick.
	if err := c.AddLabeledNode("gpu-node-0", resource.New(16000, 64<<30, 1e9, 2e9), map[string]string{"pool": "gpu"}); err != nil {
		t.Fatal(err)
	}
	c.Engine().Run(40 * time.Second)
	p, ok := c.pods["waiting"]
	if ok && p.Phase == Pending {
		t.Error("task not placed after the pool appeared")
	}
}
