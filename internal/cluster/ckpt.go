package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"evolve/internal/ckpt"
	"evolve/internal/control"
	"evolve/internal/resource"
)

// Checkpoint layer for the cluster substrate. CkptSave serialises the
// full mutable world — nodes, apps, pods, per-app windows and random
// stream positions, the event journal, tick fault counters and the
// metrics registry — at a tick barrier. CkptLoad patches a freshly
// constructed world (same topology, same specs) back to that state:
// node and app objects are patched in place (they are the very pointers
// the registry and the metric handles hold), while the pod set is
// replaced wholesale, because pods are born and die at runtime and the
// fresh world's initial replicas are not the checkpoint's pods.
//
// Everything derivable is deliberately not serialised: the sorted
// indexes are rebuilt by insertion, the scheduler snapshot and the
// dense hot-state caches rebuild lazily on the next tick, and node
// scratch (slow, running) is recomputed by the tick phases before
// anything reads it. The one non-derivable cache field is rc.contrib —
// phaseAppFast reads it when an app's ready count drops to zero, and
// the lazy rebuild does not set it — so it rides along per app.

// maxCkptItems bounds checkpointed collection sizes (the 1M-pod kernel
// fits with headroom); a corrupt length prefix fails loudly instead of
// allocating unbounded memory.
const maxCkptItems = 1 << 24

// delayedApply is one chaos-delayed decision still waiting for its
// timer; the checkpoint records it so restore can rebuild the timer's
// closure (see RebuildTimer).
type delayedApply struct {
	app string
	d   control.Decision
}

// taskTimerArg is the TimerTag argument of a task completion timer. The
// bind time disambiguates restarted tasks: a re-submitted pod with the
// same name arms a new timer under a new tag.
func taskTimerArg(name string, boundAt time.Duration) string {
	return name + "@" + strconv.FormatInt(int64(boundAt), 10)
}

// taskCompletionFn is the completion callback armTaskCompletion
// schedules; RebuildTimer re-creates the identical closure on restore.
func (c *Cluster) taskCompletionFn(name string, boundAt time.Duration) func() {
	return func() {
		cur, ok := c.pods[name]
		if !ok || cur.Phase != Running || cur.BoundAt != boundAt {
			return // pod was evicted/restarted meanwhile
		}
		c.completeTask(cur)
	}
}

// RebuildTimer reconstructs the callback of a checkpointed cluster
// timer that the freshly constructed world did not re-arm: task
// completions and chaos-delayed actuations. Both rebuild from state
// CkptLoad restored, so the world restorer must load the cluster before
// restoring timers.
func (c *Cluster) RebuildTimer(kind, arg string) (func(), error) {
	switch kind {
	case "task":
		i := strings.LastIndex(arg, "@")
		if i < 0 {
			return nil, fmt.Errorf("cluster: malformed task timer arg %q", arg)
		}
		boundAt, err := strconv.ParseInt(arg[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: malformed task timer arg %q: %v", arg, err)
		}
		return c.taskCompletionFn(arg[:i], time.Duration(boundAt)), nil
	case "act-delay":
		pa, ok := c.pendingApply[arg]
		if !ok {
			return nil, fmt.Errorf("cluster: delayed apply %q not in checkpoint", arg)
		}
		st, ok := c.apps[pa.app]
		if !ok {
			return nil, fmt.Errorf("cluster: delayed apply %q references unknown service %s", arg, pa.app)
		}
		key, d := arg, pa.d
		return func() {
			delete(c.pendingApply, key)
			_ = c.applyDecision(st, d)
		}, nil
	}
	return nil, fmt.Errorf("cluster: no rebuilder for timer kind %q", kind)
}

func saveFloats(w *ckpt.Writer, s []float64) {
	w.Int(len(s))
	for _, v := range s {
		w.F64(v)
	}
}

func loadFloats(r *ckpt.Reader, dst []float64) ([]float64, error) {
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n < 0 || n > maxCkptItems {
		return nil, fmt.Errorf("cluster: ckpt: float slice length %d out of range", n)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, r.F64())
	}
	return dst, r.Err()
}

func saveVectors(w *ckpt.Writer, s []resource.Vector) {
	w.Int(len(s))
	for _, v := range s {
		v.CkptSave(w)
	}
}

func loadVectors(r *ckpt.Reader, dst []resource.Vector) ([]resource.Vector, error) {
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n < 0 || n > maxCkptItems {
		return nil, fmt.Errorf("cluster: ckpt: vector slice length %d out of range", n)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, resource.LoadVector(r))
	}
	return dst, r.Err()
}

func saveSelector(w *ckpt.Writer, sel map[string]string) {
	keys := make([]string, 0, len(sel))
	for k := range sel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Str(k)
		w.Str(sel[k])
	}
}

func loadSelector(r *ckpt.Reader) (map[string]string, error) {
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n < 0 || n > maxCkptItems {
		return nil, fmt.Errorf("cluster: ckpt: selector length %d out of range", n)
	}
	if n == 0 {
		return nil, nil
	}
	sel := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.Str()
		sel[k] = r.Str()
	}
	return sel, r.Err()
}

func savePod(w *ckpt.Writer, p *PodObject) {
	w.Str(p.Name)
	w.U64(p.Meta.ResourceVersion)
	w.Str(p.App)
	w.Str(p.Node)
	w.Int(int(p.Phase))
	p.Requests.CkptSave(w)
	w.Int(p.Priority)
	p.Usage.CkptSave(w)
	saveSelector(w, p.NodeSelector)
	w.Bool(p.Task != nil)
	if p.Task != nil {
		t := p.Task
		w.Str(t.Name)
		w.Str(t.Job)
		t.Model.Work.CkptSave(w)
		w.F64(t.Model.MemSet)
		t.Requests.CkptSave(w)
		w.Int(t.Priority)
		saveSelector(w, t.NodeSelector)
	}
	w.Dur(p.CreatedAt)
	w.Dur(p.BoundAt)
	w.Dur(p.ReadyAt)
	w.Dur(p.FinishAt)
	w.Dur(p.pendingSince)
	w.Dur(p.causeAt)
	w.Bool(p.everBound)
	w.U64(p.spanID)
	w.U64(p.causeSpan)
}

func loadPod(r *ckpt.Reader) (*PodObject, error) {
	p := &PodObject{}
	p.Meta.Kind = KindPod
	p.Meta.Name = r.Str()
	p.Meta.ResourceVersion = r.U64()
	p.App = r.Str()
	p.Node = r.Str()
	p.Phase = Phase(r.Int())
	p.Requests = resource.LoadVector(r)
	p.Priority = r.Int()
	p.Usage = resource.LoadVector(r)
	sel, err := loadSelector(r)
	if err != nil {
		return nil, err
	}
	p.NodeSelector = sel
	if r.Bool() {
		t := &TaskSpec{}
		t.Name = r.Str()
		t.Job = r.Str()
		t.Model.Work = resource.LoadVector(r)
		t.Model.MemSet = r.F64()
		t.Requests = resource.LoadVector(r)
		t.Priority = r.Int()
		if t.NodeSelector, err = loadSelector(r); err != nil {
			return nil, err
		}
		p.Task = t
	}
	p.CreatedAt = r.Dur()
	p.BoundAt = r.Dur()
	p.ReadyAt = r.Dur()
	p.FinishAt = r.Dur()
	p.pendingSince = r.Dur()
	p.causeAt = r.Dur()
	p.everBound = r.Bool()
	p.spanID = r.U64()
	p.causeSpan = r.U64()
	return p, r.Err()
}

func (c *Cluster) saveAppState(w *ckpt.Writer, st *appState) {
	w.Str(st.obj.Spec.Name)
	w.U64(st.obj.Meta.ResourceVersion)
	w.Int(st.obj.DesiredReplicas)
	st.obj.Alloc.CkptSave(w)
	st.tracker.CkptSave(w)
	saveFloats(w, st.winSLI)
	saveFloats(w, st.winMean)
	saveFloats(w, st.winP99)
	saveFloats(w, st.winThroughput)
	saveFloats(w, st.winOffered)
	saveVectors(w, st.winUsage)
	saveVectors(w, st.winUtil)
	w.Bool(st.winSaturated)
	w.Int(st.winTicks)
	w.Int(st.winStale)
	w.Bool(st.haveSensed)
	w.F64(st.sensed.sli)
	w.F64(st.sensed.mean)
	w.F64(st.sensed.p99)
	w.F64(st.sensed.tput)
	w.F64(st.sensed.offered)
	st.sensed.usage.CkptSave(w)
	st.sensed.util.CkptSave(w)
	w.Dur(st.lastObserve)
	w.Int(st.migrateDebt)
	w.Bool(st.wasViolated)
	w.Dur(st.decisionAt)
	w.U64(st.decisionSpan)
	w.U64(st.noise.Draws())
	w.U64(st.chaosRNG.Draws())
	w.Int(st.rc.contrib)
}

func (c *Cluster) loadAppState(r *ckpt.Reader, st *appState) error {
	name := r.Str()
	if r.Err() != nil {
		return r.Err()
	}
	if name != st.obj.Spec.Name {
		return fmt.Errorf("cluster: ckpt: service %q, fresh world has %q (topology drift)", name, st.obj.Spec.Name)
	}
	st.obj.Meta.ResourceVersion = r.U64()
	st.obj.DesiredReplicas = r.Int()
	st.obj.Alloc = resource.LoadVector(r)
	if err := st.tracker.CkptLoad(r); err != nil {
		return err
	}
	var err error
	if st.winSLI, err = loadFloats(r, st.winSLI); err != nil {
		return err
	}
	if st.winMean, err = loadFloats(r, st.winMean); err != nil {
		return err
	}
	if st.winP99, err = loadFloats(r, st.winP99); err != nil {
		return err
	}
	if st.winThroughput, err = loadFloats(r, st.winThroughput); err != nil {
		return err
	}
	if st.winOffered, err = loadFloats(r, st.winOffered); err != nil {
		return err
	}
	if st.winUsage, err = loadVectors(r, st.winUsage); err != nil {
		return err
	}
	if st.winUtil, err = loadVectors(r, st.winUtil); err != nil {
		return err
	}
	st.winSaturated = r.Bool()
	st.winTicks = r.Int()
	st.winStale = r.Int()
	st.haveSensed = r.Bool()
	st.sensed.sli = r.F64()
	st.sensed.mean = r.F64()
	st.sensed.p99 = r.F64()
	st.sensed.tput = r.F64()
	st.sensed.offered = r.F64()
	st.sensed.usage = resource.LoadVector(r)
	st.sensed.util = resource.LoadVector(r)
	st.lastObserve = r.Dur()
	st.migrateDebt = r.Int()
	st.wasViolated = r.Bool()
	st.decisionAt = r.Dur()
	st.decisionSpan = r.U64()
	st.noise.Burn(r.U64())
	st.chaosRNG.Burn(r.U64())
	st.rc.contrib = r.Int()
	st.rc.ok = false
	return r.Err()
}

// CkptSave serialises the cluster's full mutable state. Must be called
// at a tick barrier (no tick in progress); the facade's checkpoint
// timer guarantees that.
func (c *Cluster) CkptSave(w *ckpt.Writer) {
	c.syncPodUsage()
	w.Begin("cluster")
	w.Int(c.cfg.Shards)
	w.U64(c.podSeq)
	w.U64(c.delaySeq)

	keys := make([]string, 0, len(c.pendingApply))
	for k := range c.pendingApply {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		pa := c.pendingApply[k]
		w.Str(k)
		w.Str(pa.app)
		w.Int(pa.d.Replicas)
		pa.d.Alloc.CkptSave(w)
	}

	w.Int(len(c.nodeList))
	for _, n := range c.nodeList {
		w.Str(n.Name)
		w.U64(n.Meta.ResourceVersion)
		w.Bool(n.Ready)
		n.Allocated.CkptSave(w)
		n.Usage.CkptSave(w)
	}

	w.Int(len(c.appList))
	for _, st := range c.appList {
		c.saveAppState(w, st)
	}

	w.Int(len(c.byName))
	for _, p := range c.byName {
		savePod(w, p)
	}

	w.U64(c.events.dropped)
	evs := c.events.snapshot()
	w.Int(len(evs))
	for _, e := range evs {
		w.Dur(e.At)
		w.Str(e.Kind)
		w.Str(e.Object)
		w.Str(e.Message)
	}

	w.Dur(c.lastTick.At)
	w.Int(c.lastTick.RegistryFaults)
	w.Int(c.lastTick.BindFailures)
	w.Int(c.lastTick.SamplesDropped)
	w.Int(c.lastTick.SamplesStale)

	w.Bool(c.hot != nil)
	if c.hot != nil {
		w.Dur(c.hot.lastPhaseAt)
	}

	c.met.CkptSave(w)
	w.U64(c.store.Version())
}

// CkptLoad restores state written by CkptSave into a freshly
// constructed cluster with identical configuration and topology (same
// nodes, same services; the initial replicas the fresh construction
// created are discarded and the checkpoint's pod set injected).
// reattach supplies the completion callback for restored task pods —
// the world restorer routes each pod to its owning batch runner or HPC
// queue. A nil reattach leaves task callbacks unset (tests only).
func (c *Cluster) CkptLoad(r *ckpt.Reader, reattach func(p *PodObject) (func(string, bool), error)) error {
	r.Begin("cluster")
	if shards := r.Int(); r.Err() == nil && shards != c.cfg.Shards {
		return fmt.Errorf("cluster: ckpt: checkpoint has %d shards, this world %d", shards, c.cfg.Shards)
	}
	c.podSeq = r.U64()
	c.delaySeq = r.U64()

	npa := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if npa < 0 || npa > maxCkptItems {
		return fmt.Errorf("cluster: ckpt: delayed-apply count %d out of range", npa)
	}
	c.pendingApply = make(map[string]delayedApply, npa)
	for i := 0; i < npa; i++ {
		k := r.Str()
		app := r.Str()
		d := control.Decision{Replicas: r.Int(), Alloc: resource.LoadVector(r)}
		c.pendingApply[k] = delayedApply{app: app, d: d}
	}

	// Drop the fresh world's pods before patching nodes: releasing a
	// bound pod rewinds its node's Allocated, which the checkpoint
	// values below then overwrite. Forget (not Delete) keeps the store
	// version and watchers out of it — the checkpointed version counter
	// is restored at the end.
	for _, p := range append([]*PodObject(nil), c.byName...) {
		c.release(p)
		c.indexRemovePod(p)
		delete(c.pods, p.Name)
		if err := c.store.Forget(KindPod, p.Name); err != nil {
			return fmt.Errorf("cluster: ckpt: dropping fresh pod %s: %w", p.Name, err)
		}
	}

	nn := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if nn != len(c.nodeList) {
		return fmt.Errorf("cluster: ckpt: checkpoint has %d nodes, this world %d (topology drift)", nn, len(c.nodeList))
	}
	for i := 0; i < nn; i++ {
		name := r.Str()
		if r.Err() != nil {
			return r.Err()
		}
		n := c.nodeList[i]
		if n.Name != name {
			return fmt.Errorf("cluster: ckpt: node %q, fresh world has %q (topology drift)", name, n.Name)
		}
		n.Meta.ResourceVersion = r.U64()
		n.Ready = r.Bool()
		n.Allocated = resource.LoadVector(r)
		n.Usage = resource.LoadVector(r)
		n.pc.ok = false
	}

	na := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if na != len(c.appList) {
		return fmt.Errorf("cluster: ckpt: checkpoint has %d services, this world %d (topology drift)", na, len(c.appList))
	}
	for i := 0; i < na; i++ {
		if err := c.loadAppState(r, c.appList[i]); err != nil {
			return err
		}
	}

	np := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if np < 0 || np > maxCkptItems {
		return fmt.Errorf("cluster: ckpt: pod count %d out of range", np)
	}
	for i := 0; i < np; i++ {
		p, err := loadPod(r)
		if err != nil {
			return err
		}
		if p.Task != nil && reattach != nil {
			fn, err := reattach(p)
			if err != nil {
				return err
			}
			p.Task.OnDone = fn
		}
		if _, dup := c.pods[p.Name]; dup {
			return fmt.Errorf("cluster: ckpt: duplicate pod %s", p.Name)
		}
		c.pods[p.Name] = p
		c.byName = podInsert(c.byName, p, byNameLess)
		if !p.IsTask() {
			c.byApp[p.App] = podInsert(c.byApp[p.App], p, byCreationLess)
		}
		switch {
		case p.Node != "":
			c.byNode[p.Node] = podInsert(c.byNode[p.Node], p, byNameLess)
		case p.Phase == Pending:
			c.pending = podInsert(c.pending, p, pendingLess)
		}
		if err := c.store.Inject(p); err != nil {
			return fmt.Errorf("cluster: ckpt: injecting pod %s: %w", p.Name, err)
		}
	}

	dropped := r.U64()
	ne := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if ne < 0 || ne > eventLogCapacity {
		return fmt.Errorf("cluster: ckpt: event count %d out of range", ne)
	}
	c.events = eventLog{}
	for i := 0; i < ne; i++ {
		c.events.add(Event{At: r.Dur(), Kind: r.Str(), Object: r.Str(), Message: r.Str()})
	}
	c.events.dropped = dropped

	c.lastTick = TickResult{
		At:             r.Dur(),
		RegistryFaults: r.Int(),
		BindFailures:   r.Int(),
		SamplesDropped: r.Int(),
		SamplesStale:   r.Int(),
	}

	if r.Bool() {
		if c.hot == nil {
			return fmt.Errorf("cluster: ckpt: checkpoint is sharded, this world is not")
		}
		c.hot.lastPhaseAt = r.Dur()
		c.hot.usageStale = false
	} else if c.hot != nil {
		return fmt.Errorf("cluster: ckpt: checkpoint is unsharded, this world is sharded")
	}

	if err := c.met.CkptLoad(r); err != nil {
		return err
	}
	c.store.SetVersion(r.U64())
	return r.Err()
}
