package cluster

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"evolve/internal/control"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

// Slow reference derivations of every incremental index, built the way
// the pre-index code did: collect, filter, sort from scratch. The
// randomized test below asserts the live indexes always match them.

func slowByName(c *Cluster) []*PodObject {
	names := make([]string, 0, len(c.pods))
	for n := range c.pods {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*PodObject, len(names))
	for i, n := range names {
		out[i] = c.pods[n]
	}
	return out
}

func slowByNode(c *Cluster, node string) []*PodObject {
	var out []*PodObject
	for _, p := range slowByName(c) {
		if p.Node == node {
			out = append(out, p)
		}
	}
	return out
}

func slowByApp(c *Cluster, app string) []*PodObject {
	var out []*PodObject
	for _, p := range slowByName(c) {
		if p.App == app && !p.IsTask() {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return byCreationLess(out[i], out[j]) })
	return out
}

func slowPending(c *Cluster) []*PodObject {
	var out []*PodObject
	for _, p := range slowByName(c) {
		if p.Phase == Pending {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return pendingLess(out[i], out[j]) })
	return out
}

func samePods(a, b []*PodObject) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func podNames(pods []*PodObject) []string {
	out := make([]string, len(pods))
	for i, p := range pods {
		out[i] = fmt.Sprintf("%s(%v)", p.Name, p.Phase)
	}
	return out
}

// checkIndexes asserts every incremental index equals its slow
// re-derivation.
func checkIndexes(t *testing.T, c *Cluster, step int) {
	t.Helper()
	if want := slowByName(c); !samePods(c.byName, want) {
		t.Fatalf("step %d: byName %v != derived %v", step, podNames(c.byName), podNames(want))
	}
	if want := slowPending(c); !samePods(c.pending, want) {
		t.Fatalf("step %d: pending %v != derived %v", step, podNames(c.pending), podNames(want))
	}
	for name := range c.nodes {
		if want := slowByNode(c, name); !samePods(c.byNode[name], want) {
			t.Fatalf("step %d: byNode[%s] %v != derived %v", step, name, podNames(c.byNode[name]), podNames(want))
		}
	}
	for app := range c.apps {
		if want := slowByApp(c, app); !samePods(c.byApp[app], want) {
			t.Fatalf("step %d: byApp[%s] %v != derived %v", step, app, podNames(c.byApp[app]), podNames(want))
		}
	}
	for i, n := range c.nodeList {
		if i > 0 && c.nodeList[i-1].Name >= n.Name {
			t.Fatalf("step %d: nodeList out of order at %d: %s >= %s", step, i, c.nodeList[i-1].Name, n.Name)
		}
	}
	if len(c.nodeList) != len(c.nodes) {
		t.Fatalf("step %d: nodeList has %d nodes, map has %d", step, len(c.nodeList), len(c.nodes))
	}
	for i, st := range c.appList {
		if i > 0 && c.appList[i-1].obj.Spec.Name >= st.obj.Spec.Name {
			t.Fatalf("step %d: appList out of order at %d", step, i)
		}
	}
	if len(c.appList) != len(c.apps) {
		t.Fatalf("step %d: appList has %d apps, map has %d", step, len(c.appList), len(c.apps))
	}
}

// TestIndexesMatchDerivedViews drives the cluster through long random
// sequences of every mutating operation — scaling decisions, task and
// gang submissions, node failures/restores, kills, resizes, time — and
// checks after each step that the incremental pods-by-node, pods-by-app,
// pending and by-name indexes equal the slow from-scratch derivations
// the old code used.
func TestIndexesMatchDerivedViews(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			eng := sim.NewEngine(seed)
			rng := sim.NewRNG(seed + 500)
			c := New(eng, DefaultConfig())
			if err := c.AddNodes("n", 4, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				spec := testService(fmt.Sprintf("svc%d", i))
				if i == 1 {
					// One service with a startup delay exercises the
					// starting-replica paths.
					spec.StartupDelay = 20 * time.Second
				}
				if err := c.CreateService(spec); err != nil {
					t.Fatal(err)
				}
				if err := c.SetLoadFunc(spec.Name, func(time.Duration) float64 { return 150 }); err != nil {
					t.Fatal(err)
				}
			}
			c.Start()

			taskSeq := 0
			for step := 0; step < 400; step++ {
				switch rng.Intn(9) {
				case 0, 1:
					app := fmt.Sprintf("svc%d", rng.Intn(3))
					d := control.Decision{
						Replicas: 1 + rng.Intn(6),
						Alloc: resource.New(
							rng.Uniform(100, 6000),
							rng.Uniform(128<<20, 8<<30),
							rng.Uniform(1e6, 100e6),
							rng.Uniform(1e6, 100e6),
						),
					}
					if err := c.ApplyDecision(app, d); err != nil {
						t.Fatal(err)
					}
				case 2:
					taskSeq++
					task := testTask(fmt.Sprintf("task%d", taskSeq), 1000+float64(rng.Intn(4000)), 20000)
					task.Priority = rng.Intn(3) - 1 // some negative, some preemptible
					if err := c.SubmitTask(task); err != nil {
						t.Fatal(err)
					}
				case 3:
					taskSeq++
					var gang []TaskSpec
					for r := 0; r < 2+rng.Intn(3); r++ {
						gang = append(gang, testTask(fmt.Sprintf("gang%d-%d", taskSeq, r), 4000, 40000))
					}
					_ = c.SubmitGang(gang) // may legitimately not fit
				case 4:
					_ = c.FailNode(fmt.Sprintf("n-%d", rng.Intn(4)))
				case 5:
					_ = c.RestoreNode(fmt.Sprintf("n-%d", rng.Intn(4)))
				case 6:
					for _, p := range c.Pods() {
						if p.IsTask() {
							_ = c.KillTask(p.Name)
							break
						}
					}
				case 7:
					c.SchedulePendingNow()
				case 8:
					eng.Run(eng.Now() + time.Duration(1+rng.Intn(30))*time.Second)
				}
				checkIndexes(t, c, step)
				checkInvariants(t, c, step)
			}
			// Drain: restore a node, let completions and ticks run out.
			_ = c.RestoreNode("n-0")
			eng.Run(eng.Now() + time.Hour)
			checkIndexes(t, c, 401)
			checkInvariants(t, c, 401)
		})
	}
}
