package cluster

import (
	"fmt"
	"sort"
	"time"

	"evolve/internal/metrics"
	"evolve/internal/plo"
	"evolve/internal/registry"
	"evolve/internal/resource"
	"evolve/internal/sched"
	"evolve/internal/sim"
)

// Config parameterises the cluster substrate.
type Config struct {
	// MetricsInterval is the telemetry/actuation tick (default 5s).
	MetricsInterval time.Duration
	// Interference enables node-level contention slowdowns.
	Interference bool
	// SchedulerPolicy selects the placement policy.
	SchedulerPolicy sched.Policy
	// MeasurementNoise adds multiplicative jitter to SLI measurements
	// (fraction, e.g. 0.05); real telemetry is never clean.
	MeasurementNoise float64
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{
		MetricsInterval:  5 * time.Second,
		Interference:     true,
		SchedulerPolicy:  sched.PolicySpread,
		MeasurementNoise: 0.03,
	}
}

// appState is the cluster-internal bookkeeping for one service.
type appState struct {
	obj    *AppObject
	loadFn func(now time.Duration) float64

	tracker *plo.Tracker

	// Rolling aggregates since the last Observe call.
	winSLI        []float64
	winMean       []float64
	winP99        []float64
	winThroughput []float64
	winOffered    []float64
	winUsage      []resource.Vector
	winUtil       []resource.Vector
	winSaturated  bool

	lastObserve time.Duration
	migrateDebt int // consecutive ticks with throttled resize
}

// Cluster is the simulated substrate. Not safe for concurrent use; all
// access happens on the simulation goroutine.
type Cluster struct {
	eng   *sim.Engine
	rng   *sim.RNG
	store *registry.Store
	met   *metrics.Registry
	cfg   Config
	sch   *sched.Scheduler

	nodes map[string]*NodeObject
	pods  map[string]*PodObject
	apps  map[string]*appState

	podSeq  uint64
	started bool
	events  eventLog
}

// New builds a cluster on the given engine.
func New(eng *sim.Engine, cfg Config) *Cluster {
	if cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = 5 * time.Second
	}
	return &Cluster{
		eng:   eng,
		rng:   eng.RNG().Fork(),
		store: registry.NewStore(),
		met:   metrics.NewRegistry(),
		cfg:   cfg,
		sch:   sched.New(cfg.SchedulerPolicy),
		nodes: make(map[string]*NodeObject),
		pods:  make(map[string]*PodObject),
		apps:  make(map[string]*appState),
	}
}

// Engine returns the simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Store returns the object registry.
func (c *Cluster) Store() *registry.Store { return c.store }

// Metrics returns the metrics registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.met }

// Config returns the active configuration.
func (c *Cluster) Config() Config { return c.cfg }

// now is shorthand for the current virtual time.
func (c *Cluster) now() time.Duration { return c.eng.Now() }

// AddNode registers a node; 6% of capacity is reserved for the system,
// mirroring kubelet reservations.
func (c *Cluster) AddNode(name string, capacity resource.Vector) error {
	return c.AddLabeledNode(name, capacity, nil)
}

// AddLabeledNode registers a node carrying operator labels ("pool=hpc")
// that pod node-selectors can match against.
func (c *Cluster) AddLabeledNode(name string, capacity resource.Vector, labels map[string]string) error {
	if _, ok := c.nodes[name]; ok {
		return fmt.Errorf("cluster: node %s already exists", name)
	}
	if !capacity.NonNegative() || capacity.IsZero() {
		return fmt.Errorf("cluster: node %s has invalid capacity %v", name, capacity)
	}
	n := &NodeObject{
		Meta:        registry.Meta{Kind: KindNode, Name: name, Labels: copyLabels(labels)},
		Capacity:    capacity,
		Allocatable: capacity.Scale(0.94),
		Ready:       true,
	}
	if err := c.store.Create(n); err != nil {
		return err
	}
	c.nodes[name] = n
	return nil
}

func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// AddNodes registers count identical nodes named prefix-0..count-1.
func (c *Cluster) AddNodes(prefix string, count int, capacity resource.Vector) error {
	for i := 0; i < count; i++ {
		if err := c.AddNode(fmt.Sprintf("%s-%d", prefix, i), capacity); err != nil {
			return err
		}
	}
	return nil
}

// Nodes returns all nodes sorted by name.
func (c *Cluster) Nodes() []*NodeObject {
	names := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*NodeObject, len(names))
	for i, n := range names {
		out[i] = c.nodes[n]
	}
	return out
}

// Capacity returns the summed allocatable capacity of ready nodes.
func (c *Cluster) Capacity() resource.Vector {
	var total resource.Vector
	for _, n := range c.Nodes() {
		if n.Ready {
			total = total.Add(n.Allocatable)
		}
	}
	return total
}

// largestNodeAllocatable returns the component-wise maximum allocatable
// vector over ready nodes — the biggest pod shape that can possibly be
// hosted. ok is false when no node is ready.
func (c *Cluster) largestNodeAllocatable() (resource.Vector, bool) {
	var biggest resource.Vector
	any := false
	for _, n := range c.nodes {
		if !n.Ready {
			continue
		}
		biggest = biggest.Max(n.Allocatable)
		any = true
	}
	return biggest, any
}

// NodeInfos returns the scheduler's view of the ready nodes — public so
// queueing layers (e.g. EASY backfill reservations) can reason about
// placement hypothetically without mutating anything.
func (c *Cluster) NodeInfos() []sched.NodeInfo { return c.nodeInfos() }

// Scheduler returns the cluster's placement engine for hypothetical
// queries (Schedule/ScheduleGang on snapshots never mutate state).
func (c *Cluster) Scheduler() *sched.Scheduler { return c.sch }

// nodeInfos snapshots ready nodes for the scheduler, sorted by name.
func (c *Cluster) nodeInfos() []sched.NodeInfo {
	nodes := c.Nodes()
	infos := make([]sched.NodeInfo, 0, len(nodes))
	for _, n := range nodes {
		if !n.Ready {
			continue
		}
		info := sched.NodeInfo{
			Name:        n.Name,
			Allocatable: n.Allocatable,
			Allocated:   n.Allocated,
			Labels:      n.Meta.Labels,
		}
		for _, p := range c.podsOnNode(n.Name) {
			info.Pods = append(info.Pods, sched.PodInfo{
				Name: p.Name, App: p.App, Requests: p.Requests, Priority: p.Priority,
			})
		}
		infos = append(infos, info)
	}
	return infos
}

func (c *Cluster) podsOnNode(node string) []*PodObject {
	var out []*PodObject
	for _, name := range c.sortedPodNames() {
		p := c.pods[name]
		if p.Node == node && (p.Phase == Running || p.Phase == Pending) {
			out = append(out, p)
		}
	}
	return out
}

func (c *Cluster) sortedPodNames() []string {
	names := make([]string, 0, len(c.pods))
	for n := range c.pods {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Pods returns all live pods sorted by name.
func (c *Cluster) Pods() []*PodObject {
	var out []*PodObject
	for _, n := range c.sortedPodNames() {
		out = append(out, c.pods[n])
	}
	return out
}

// PendingPods returns pods awaiting placement, sorted by priority
// (descending) then creation time then name.
func (c *Cluster) PendingPods() []*PodObject {
	var out []*PodObject
	for _, n := range c.sortedPodNames() {
		if p := c.pods[n]; p.Phase == Pending {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		if out[i].CreatedAt != out[j].CreatedAt {
			return out[i].CreatedAt < out[j].CreatedAt
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Start arms the periodic telemetry/actuation tick. Call once after the
// initial topology is in place.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.eng.Every(c.cfg.MetricsInterval, c.tick)
}

// bind grants a pod to a node and updates accounting.
func (c *Cluster) bind(p *PodObject, nodeName string) error {
	n, ok := c.nodes[nodeName]
	if !ok || !n.Ready {
		return fmt.Errorf("cluster: bind %s to unknown/unready node %s", p.Name, nodeName)
	}
	p.Node = nodeName
	p.Phase = Running
	p.BoundAt = c.now()
	p.ReadyAt = c.now()
	if !p.IsTask() {
		if st, ok := c.apps[p.App]; ok {
			p.ReadyAt = c.now() + st.obj.Spec.StartupDelay
		}
	}
	n.Allocated = n.Allocated.Add(p.Requests)
	c.met.Counter("sched/binds").Inc()
	c.recordEvent("pod-scheduled", p.Name, "bound to %s (%s)", nodeName, p.Requests)
	c.mustUpdate(p)
	c.mustUpdate(n)
	if p.IsTask() {
		c.armTaskCompletion(p)
	}
	return nil
}

// release frees a pod's node allocation (if bound).
func (c *Cluster) release(p *PodObject) {
	if p.Node == "" {
		return
	}
	if n, ok := c.nodes[p.Node]; ok {
		n.Allocated = snapDust(n.Allocated.Sub(p.Requests).ClampMin(0))
		c.mustUpdate(n)
	}
	p.Node = ""
}

// snapDust zeroes float residue left by repeated add/sub cycles; real
// allocations are never below a millicore or a kilobyte, so anything
// under 1e-3 is arithmetic dust.
func snapDust(v resource.Vector) resource.Vector {
	for i := range v {
		if v[i] < 1e-3 {
			v[i] = 0
		}
	}
	return v
}

// deletePod removes a pod entirely.
func (c *Cluster) deletePod(p *PodObject) {
	c.release(p)
	delete(c.pods, p.Name)
	_ = c.store.Delete(KindPod, p.Name)
}

// evict returns a running pod to the pending queue (service replica) or
// fails it (task); used by preemption and node failure.
func (c *Cluster) evict(p *PodObject, reason string) {
	c.release(p)
	if p.IsTask() {
		p.Phase = Failed
		c.mustUpdate(p)
		done := p.Task.OnDone
		name := p.Name
		delete(c.pods, p.Name)
		_ = c.store.Delete(KindPod, p.Name)
		c.met.Counter("evictions/" + reason).Inc()
		c.recordEvent("task-killed", name, "task failed (%s)", reason)
		if done != nil {
			done(name, true)
		}
		return
	}
	p.Phase = Pending
	p.Usage = resource.Vector{}
	c.met.Counter("evictions/" + reason).Inc()
	c.recordEvent("pod-evicted", p.Name, "back to pending queue (%s)", reason)
	c.mustUpdate(p)
}

// schedulePending attempts placement of every pending pod; pods that do
// not fit stay pending (retried next tick). High-priority pods may
// preempt strictly lower-priority ones when no node fits.
func (c *Cluster) schedulePending() {
	for _, p := range c.PendingPods() {
		info := sched.PodInfo{Name: p.Name, App: p.App, Requests: p.Requests, Priority: p.Priority, NodeSelector: p.NodeSelector}
		nodeName, err := c.sch.Schedule(info, c.nodeInfos())
		if err == nil {
			if err := c.bind(p, nodeName); err != nil {
				panic(fmt.Sprintf("cluster: bind after successful schedule: %v", err))
			}
			continue
		}
		c.met.Counter("sched/unschedulable").Inc()
		if p.Priority <= 0 {
			continue
		}
		if plan := c.sch.Preempt(info, c.nodeInfos()); plan != nil {
			for _, victim := range plan.Victims {
				if vp, ok := c.pods[victim]; ok {
					c.evict(vp, "preempted")
				}
			}
			c.met.Counter("sched/preemptions").Inc()
			c.recordEvent("preemption", p.Name, "evicted %v on %s", plan.Victims, plan.Node)
			if err := c.bind(p, plan.Node); err != nil {
				panic(fmt.Sprintf("cluster: bind after preemption: %v", err))
			}
		}
	}
}

// FailNode marks a node unready and evicts its pods; service replicas
// return to the pending queue, tasks fail.
func (c *Cluster) FailNode(name string) error {
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("cluster: unknown node %s", name)
	}
	if !n.Ready {
		return nil
	}
	n.Ready = false
	for _, p := range c.podsOnNode(name) {
		c.evict(p, "node-failure")
	}
	n.Allocated = resource.Vector{}
	n.Usage = resource.Vector{}
	c.mustUpdate(n)
	c.met.Counter("nodes/failures").Inc()
	c.recordEvent("node-failed", name, "node marked unready; pods evicted")
	return nil
}

// RestoreNode brings a failed node back.
func (c *Cluster) RestoreNode(name string) error {
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("cluster: unknown node %s", name)
	}
	if n.Ready {
		return nil
	}
	n.Ready = true
	c.mustUpdate(n)
	c.recordEvent("node-restored", name, "node ready again")
	return nil
}

func (c *Cluster) mustUpdate(obj registry.Object) {
	if err := c.store.Update(obj); err != nil {
		panic(fmt.Sprintf("cluster: registry update: %v", err))
	}
}

func (c *Cluster) nextPodName(prefix string) string {
	c.podSeq++
	return fmt.Sprintf("%s-%d", prefix, c.podSeq)
}
