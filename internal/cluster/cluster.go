package cluster

import (
	"fmt"
	"time"

	"evolve/internal/chaos"
	"evolve/internal/metrics"
	"evolve/internal/obs"
	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/registry"
	"evolve/internal/resource"
	"evolve/internal/sched"
	"evolve/internal/sim"
)

// Config parameterises the cluster substrate.
type Config struct {
	// MetricsInterval is the telemetry/actuation tick (default 5s).
	MetricsInterval time.Duration
	// Interference enables node-level contention slowdowns.
	Interference bool
	// SchedulerPolicy selects the placement policy.
	SchedulerPolicy sched.Policy
	// MeasurementNoise adds multiplicative jitter to SLI measurements
	// (fraction, e.g. 0.05); real telemetry is never clean.
	MeasurementNoise float64
	// ScoreWorkers opts placement scoring into the parallel fan-out: the
	// given number of shards score concurrently once a single placement
	// probes at least ScoreThreshold candidate nodes. 0 or 1 keeps
	// scoring sequential. Placements are byte-identical either way.
	ScoreWorkers int
	// ScoreThreshold is the candidate count that engages the fan-out
	// (default sched.DefaultParallelThreshold).
	ScoreThreshold int
	// Shards splits the tick's per-node and per-app phases across this
	// many shard engines driven by a sim.Coordinator under the primary
	// engine's clock. 0 or 1 keeps the single-engine path. Entities are
	// assigned to shards by stable name hash, and all cross-shard
	// effects are applied at phase barriers in canonical entity order,
	// so results are byte-identical for every shard count.
	Shards int
	// ShardWorkers bounds how many same-timestamp shard events execute
	// concurrently on the shared worker pool (0 = min(Shards, GOMAXPROCS);
	// 1 keeps rounds serial). Results are identical either way.
	ShardWorkers int
	// BatchedRounds lets each shard drain all its events at the shared
	// timestamp in one coordinator round (sim.Engine.ProcessEventsAt)
	// instead of one event per round, collapsing barrier count per tick
	// from O(events) to O(1). The cluster's phase discipline posts no
	// cross-shard mail mid-timestamp, so results are byte-identical in
	// either mode; off reproduces the PR 6 round protocol exactly.
	BatchedRounds bool
	// DrainWorkers opts the pending-backlog scheduling drain into batched
	// placement: pods whose feasibility-index candidate prefixes are
	// provably disjoint are scored concurrently on the shared worker pool
	// and committed in queue order. 0 or 1 keeps the exact serial per-pod
	// loop. Placements are byte-identical either way (see sched.ScheduleBatch).
	DrainWorkers int
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{
		MetricsInterval:  5 * time.Second,
		Interference:     true,
		SchedulerPolicy:  sched.PolicySpread,
		MeasurementNoise: 0.03,
		BatchedRounds:    true,
	}
}

// appState is the cluster-internal bookkeeping for one service.
type appState struct {
	obj    *AppObject
	loadFn func(now time.Duration) float64

	tracker *plo.Tracker

	// Rolling aggregates since the last Observe call.
	winSLI        []float64
	winMean       []float64
	winP99        []float64
	winThroughput []float64
	winOffered    []float64
	winUsage      []resource.Vector
	winUtil       []resource.Vector
	winSaturated  bool

	// Sensor-path health since the last Observe: winTicks counts the
	// metric ticks the window spanned (expected samples), winStale the
	// frozen substitutes delivered. sensed caches the last sample that
	// actually reached the sensor path, for freeze faults to replay.
	winTicks   int
	winStale   int
	sensed     sensedSample
	haveSensed bool

	lastObserve time.Duration
	migrateDebt int  // consecutive ticks with throttled resize
	wasViolated bool // PLO state last tick, for onset/clear trace events

	// Causal anchor of the most recent applied decision (spans.go):
	// replicas created while applying it inherit both so their bind can
	// report the decision→effect lag. decisionSpan stays zero untraced.
	decisionAt   time.Duration
	decisionSpan uint64

	// h caches the per-service metric handles (see handles.go); nil
	// until the first tick resolves them.
	h *appHandles

	// Per-app random streams (sim.PartitionedRNG): noise drives the
	// measurement jitter, chaosRNG the injector's probability draws.
	// Keying them by app — instead of drawing from one shared stream in
	// app order — is what makes a tick's randomness independent of how
	// apps are partitioned across shards.
	noise    *sim.RNG
	chaosRNG *sim.RNG

	// Parallel-phase buffers (shard.go): writes that must not land
	// in-place from a shard goroutine are staged here and applied at
	// the phase barrier in appList order. The single-shard path never
	// touches them.
	updBuf     []registry.Object // pending registry updates, pod order
	traceEv    obs.Event         // buffered PLO onset/clear event
	traceSet   bool
	tickDrop   int // SamplesDropped owed to lastTick
	tickStale  int // SamplesStale owed to lastTick
	chaosStats chaos.Stats

	// Sharded-kernel hot state (hotstate.go): hotIdx is the app's index
	// into the dense appUsage array, rc the cached ready-replica
	// aggregate, stamps the deferred registry version stamps owed to the
	// flush. Unused on the single-engine path.
	hotIdx int32
	rc     appRunCache
	stamps int
}

// sensedSample is one telemetry sample as the sensor path saw it (after
// any chaos distortion) — what a freeze fault replays.
type sensedSample struct {
	sli, mean, p99, tput, offered float64
	usage, util                   resource.Vector
}

// Cluster is the simulated substrate. Not safe for concurrent use; all
// access happens on the simulation goroutine.
type Cluster struct {
	eng   *sim.Engine
	prng  *sim.PartitionedRNG // per-entity stable streams (noise, chaos)
	store *registry.Store
	met   *metrics.Registry
	cfg   Config
	sch   *sched.Scheduler

	nodes map[string]*NodeObject
	pods  map[string]*PodObject
	apps  map[string]*appState

	// Incremental indexes — kept sorted at every mutation so hot paths
	// never re-derive views (see index.go for the invariants).
	byName   []*PodObject            // every live pod, name order
	byNode   map[string][]*PodObject // bound pods per node, name order
	byApp    map[string][]*PodObject // live service replicas per app, (CreatedAt, name) order
	pending  []*PodObject            // pending pods: priority desc, FIFO, name
	nodeList []*NodeObject           // every node, name order
	appList  []*appState             // services, name order

	// Reusable scratch. The simulation is single-threaded and the tick
	// never re-enters itself, so one buffer of each suffices; reuse is
	// what makes the steady-state tick allocation-free. snap is the
	// reusable scheduling view with its feasibility index (see
	// sched.Snapshot): rebuilt once per scheduling round, patched in
	// place on every bind, drained in place on node failure.
	snap         *sched.Snapshot
	scratchQueue []*PodObject
	scratchRun   []*PodObject
	nodeUpd      []registry.Object // sharded path: buffered node updates
	batchPods    []sched.PodInfo   // drain batching: current batch's views
	batchRes     []sched.BatchResult
	h            *clusterHandles

	// Sharded kernel (nil / empty on the single-engine path). co drives
	// the shard engines under the primary clock; shards holds each
	// shard's partition of nodes and apps (see shard.go); hot is the
	// dense SoA mirror the quiescent-store tick runs on (hotstate.go).
	co     *sim.Coordinator
	shards []*shardState
	hot    *hotState

	// phases, when non-nil, accumulates the per-tick phase timing
	// breakdown (EnablePhaseTiming); traceBuf stages PLO trace events
	// for batch emission at the flush barrier. phasePrev remembers each
	// phase's cumulative total at the last emitted phase span so
	// emitPhaseSpans (spans.go) can lift per-tick deltas out of it.
	phases    *perf.PhaseBreakdown
	traceBuf  []obs.Event
	phasePrev [perf.NumPhases]int64

	podSeq  uint64
	started bool
	events  eventLog
	tracer  *obs.Tracer

	// Delayed-actuation bookkeeping (ckpt.go): chaos-delayed decision
	// applies still in flight, keyed by a monotonic sequence so a
	// checkpoint can rebuild their timers. Empty when chaos is off.
	delaySeq     uint64
	pendingApply map[string]delayedApply

	// chaos is the optional fault injector on the sensor/actuation paths
	// (nil when off); lastTick accumulates the faults absorbed since the
	// most recent tick began (see faults.go).
	chaos    *chaos.Injector
	lastTick TickResult

	// Control-period actuation batch (service.go): while the control
	// loop's serial apply walk is inside Begin/EndActuationBatch, the
	// per-decision largest-node cap is served from this cache instead of
	// rescanning nodeList per app. Topology and readiness cannot change
	// within one engine event, so the cached vector is bit-exact.
	ctrlBatch     bool
	ctrlBiggest   resource.Vector
	ctrlBiggestOK bool
}

// New builds a cluster on the given engine.
func New(eng *sim.Engine, cfg Config) *Cluster {
	if cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = 5 * time.Second
	}
	sch := sched.New(cfg.SchedulerPolicy)
	if cfg.ScoreWorkers > 1 {
		sch.SetParallel(cfg.ScoreWorkers, cfg.ScoreThreshold)
	}
	c := &Cluster{
		eng: eng,
		// One engine draw seeds every per-entity stream; taken here, in
		// New, so the derived streams do not depend on cluster topology
		// or shard count.
		prng:  sim.NewPartitionedRNG(eng.RNG().Int63()),
		store: registry.NewStore(),
		met:   metrics.NewRegistry(),
		cfg:   cfg,
		sch:   sch,
		nodes: make(map[string]*NodeObject),
		pods:  make(map[string]*PodObject),
		apps:  make(map[string]*appState),

		byNode: make(map[string][]*PodObject),
		byApp:  make(map[string][]*PodObject),
		snap:   sched.NewSnapshot(),
		tracer: obs.Nop(),

		pendingApply: make(map[string]delayedApply),
	}
	if cfg.Shards > 1 {
		c.initShards(cfg.Shards, cfg.ShardWorkers)
	}
	return c
}

// Coordinator returns the shard coordinator, or nil on the
// single-engine path.
func (c *Cluster) Coordinator() *sim.Coordinator { return c.co }

// EnablePhaseTiming switches on the per-tick phase breakdown and
// returns the accumulator the tick records into (see internal/perf).
// On the sharded path the coordinator's barrier/mailbox timers are
// enabled too. Call before Run; the breakdown can be Reset between
// measurement windows.
func (c *Cluster) EnablePhaseTiming() *perf.PhaseBreakdown {
	n := 1
	if c.co != nil {
		n = c.co.NumShards()
		c.co.SetTiming(true)
	}
	c.phases = perf.NewPhaseBreakdown(n)
	c.phasePrev = [perf.NumPhases]int64{}
	return c.phases
}

// Run advances the simulation until the shared clock reaches the
// absolute time until: through the coordinator when sharded, directly
// on the engine otherwise. It returns the number of events executed.
func (c *Cluster) Run(until time.Duration) uint64 {
	if c.co != nil {
		return c.co.Run(until)
	}
	return c.eng.Run(until)
}

// Tracer returns the cluster's decision tracer (the shared no-op tracer
// until SetTracer installs a real one).
func (c *Cluster) Tracer() *obs.Tracer { return c.tracer }

// SetTracer installs a decision tracer. When the tracer is enabled the
// cluster also mirrors registry add/delete deltas onto it (Modified
// events are skipped — they fire for every pod every tick and would
// drown the ring and the steady-state allocation budget).
func (c *Cluster) SetTracer(t *obs.Tracer) {
	if t == nil {
		t = obs.Nop()
	}
	c.tracer = t
	if !t.Enabled() {
		return
	}
	c.store.Watch("", func(ev registry.Event) {
		if ev.Type != registry.Added && ev.Type != registry.Deleted {
			return
		}
		verb := obs.VerbAdded
		if ev.Type == registry.Deleted {
			verb = obs.VerbDeleted
		}
		c.tracer.Record(obs.Event{
			At:     c.now(),
			Kind:   obs.KindRegistry,
			Verb:   verb,
			Object: ev.Object.GetMeta().Kind + "/" + ev.Object.GetMeta().Name,
		})
	})
}

// Engine returns the simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Store returns the object registry.
func (c *Cluster) Store() *registry.Store { return c.store }

// Metrics returns the metrics registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.met }

// Config returns the active configuration.
func (c *Cluster) Config() Config { return c.cfg }

// now is shorthand for the current virtual time.
func (c *Cluster) now() time.Duration { return c.eng.Now() }

// AddNode registers a node; 6% of capacity is reserved for the system,
// mirroring kubelet reservations.
func (c *Cluster) AddNode(name string, capacity resource.Vector) error {
	return c.AddLabeledNode(name, capacity, nil)
}

// AddLabeledNode registers a node carrying operator labels ("pool=hpc")
// that pod node-selectors can match against.
func (c *Cluster) AddLabeledNode(name string, capacity resource.Vector, labels map[string]string) error {
	if _, ok := c.nodes[name]; ok {
		return fmt.Errorf("cluster: node %s already exists", name)
	}
	if !capacity.NonNegative() || capacity.IsZero() {
		return fmt.Errorf("cluster: node %s has invalid capacity %v", name, capacity)
	}
	n := &NodeObject{
		Meta:        registry.Meta{Kind: KindNode, Name: name, Labels: copyLabels(labels)},
		Capacity:    capacity,
		Allocatable: capacity.Scale(0.94),
		Ready:       true,
	}
	if err := c.store.Create(n); err != nil {
		return err
	}
	c.nodes[name] = n
	c.indexAddNode(n)
	return nil
}

func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// AddNodes registers count identical nodes named prefix-0..count-1.
func (c *Cluster) AddNodes(prefix string, count int, capacity resource.Vector) error {
	for i := 0; i < count; i++ {
		if err := c.AddNode(fmt.Sprintf("%s-%d", prefix, i), capacity); err != nil {
			return err
		}
	}
	return nil
}

// Nodes returns all nodes sorted by name.
func (c *Cluster) Nodes() []*NodeObject {
	return append([]*NodeObject(nil), c.nodeList...)
}

// Capacity returns the summed allocatable capacity of ready nodes.
func (c *Cluster) Capacity() resource.Vector {
	var total resource.Vector
	for _, n := range c.nodeList {
		if n.Ready {
			total = total.Add(n.Allocatable)
		}
	}
	return total
}

// largestNodeAllocatable returns the component-wise maximum allocatable
// vector over ready nodes — the biggest pod shape that can possibly be
// hosted. ok is false when no node is ready.
func (c *Cluster) largestNodeAllocatable() (resource.Vector, bool) {
	var biggest resource.Vector
	any := false
	for _, n := range c.nodeList {
		if !n.Ready {
			continue
		}
		biggest = biggest.Max(n.Allocatable)
		any = true
	}
	return biggest, any
}

// NodeInfos returns the scheduler's view of the ready nodes — public so
// queueing layers (e.g. EASY backfill reservations) can reason about
// placement hypothetically without mutating anything.
func (c *Cluster) NodeInfos() []sched.NodeInfo { return c.nodeInfos() }

// Scheduler returns the cluster's placement engine for hypothetical
// queries (Schedule/ScheduleGang on snapshots never mutate state).
func (c *Cluster) Scheduler() *sched.Scheduler { return c.sch }

// nodeInfos snapshots ready nodes for the scheduler, sorted by name.
// Each call returns freshly allocated slices, so callers (gang
// scheduling, the public NodeInfos, queueing layers) may hold the result
// across cluster mutations; the pending-pod loop uses the reusable
// indexed snapshot in refreshSnapshot instead.
func (c *Cluster) nodeInfos() []sched.NodeInfo {
	infos := make([]sched.NodeInfo, 0, len(c.nodeList))
	for _, n := range c.nodeList {
		if !n.Ready {
			continue
		}
		info := sched.NodeInfo{
			Name:        n.Name,
			Allocatable: n.Allocatable,
			Allocated:   n.Allocated,
			Labels:      n.Meta.Labels,
		}
		for _, p := range c.byNode[n.Name] {
			info.Pods = append(info.Pods, sched.PodInfo{
				Name: p.Name, App: p.App, Requests: p.Requests, Priority: p.Priority,
			})
		}
		infos = append(infos, info)
	}
	return infos
}

// podsOnNode returns the index slice of pods bound to the node, in name
// order. Callers must not mutate it, and must copy it first if they
// evict or delete while iterating.
func (c *Cluster) podsOnNode(node string) []*PodObject {
	return c.byNode[node]
}

// Pods returns all live pods sorted by name. On the dense sharded path
// per-pod usage is materialised lazily; this accessor syncs it first,
// so callers always see the same usage the serial tick would have
// written.
func (c *Cluster) Pods() []*PodObject {
	c.syncPodUsage()
	return append([]*PodObject(nil), c.byName...)
}

// PendingPods returns pods awaiting placement, sorted by priority
// (descending) then creation time then name.
func (c *Cluster) PendingPods() []*PodObject {
	return append([]*PodObject(nil), c.pending...)
}

// Start arms the periodic telemetry/actuation tick. Call once after the
// initial topology is in place.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.eng.TagNext("tick", "")
	c.eng.Every(c.cfg.MetricsInterval, c.tick)
}

// bind grants a pod to a node and updates accounting.
func (c *Cluster) bind(p *PodObject, nodeName string) error {
	n, ok := c.nodes[nodeName]
	if !ok || !n.Ready {
		return fmt.Errorf("cluster: bind %s to unknown/unready node %s", p.Name, nodeName)
	}
	p.Node = nodeName
	p.Phase = Running
	p.BoundAt = c.now()
	p.ReadyAt = c.now()
	if !p.IsTask() {
		if st, ok := c.apps[p.App]; ok {
			p.ReadyAt = c.now() + st.obj.Spec.StartupDelay
		}
	}
	n.Allocated = n.Allocated.Add(p.Requests)
	c.indexBind(p)
	c.met.Counter("sched/binds").Inc()
	c.recordEvent("pod-scheduled", p.Name, "bound to %s (%s)", nodeName, p.Requests)
	if c.tracer.Enabled() {
		c.tracer.Record(obs.Event{
			At: c.now(), Kind: obs.KindSched, Verb: obs.VerbBind,
			App: p.App, Object: p.Name, Node: nodeName, Alloc: p.Requests,
		})
	}
	// Latency accounting and span emission. The registry histograms are
	// always on — untraced harness runs measure the same intervals the
	// span layer annotates — and first-bind detection keys the pod's root
	// lifecycle span plus the created→ready and decision→effect samples.
	first := !p.everBound
	p.everBound = true
	lh := c.bindLatency()
	lh.schedLat.Observe((c.now() - p.pendingSince).Seconds())
	if first {
		lh.readyLat.Observe((p.ReadyAt - p.CreatedAt).Seconds())
		if p.causeAt != 0 {
			lh.effectLat.Observe((c.now() - p.causeAt).Seconds())
		}
	}
	if c.tracer.Enabled() {
		c.emitBindSpans(p, first)
	}
	c.update(p)
	c.update(n)
	if p.IsTask() {
		c.armTaskCompletion(p)
	}
	return nil
}

// release frees a pod's node allocation (if bound).
func (c *Cluster) release(p *PodObject) {
	if p.Node == "" {
		return
	}
	c.indexUnbind(p)
	if n, ok := c.nodes[p.Node]; ok {
		n.Allocated = snapDust(n.Allocated.Sub(p.Requests).ClampMin(0))
		c.update(n)
	}
	p.Node = ""
}

// snapDust zeroes float residue left by repeated add/sub cycles; real
// allocations are never below a millicore or a kilobyte, so anything
// under 1e-3 is arithmetic dust.
func snapDust(v resource.Vector) resource.Vector {
	for i := range v {
		if v[i] < 1e-3 {
			v[i] = 0
		}
	}
	return v
}

// deletePod removes a pod entirely.
func (c *Cluster) deletePod(p *PodObject) {
	c.release(p)
	c.indexRemovePod(p)
	delete(c.pods, p.Name)
	_ = c.store.Delete(KindPod, p.Name)
}

// evict returns a running pod to the pending queue (service replica) or
// fails it (task); used by preemption and node failure.
func (c *Cluster) evict(p *PodObject, reason string) {
	node := p.Node // release clears it; spans attribute the lost segment
	c.release(p)
	if p.IsTask() {
		p.Phase = Failed
		c.update(p)
		done := p.Task.OnDone
		name := p.Name
		c.indexRemovePod(p)
		delete(c.pods, p.Name)
		_ = c.store.Delete(KindPod, p.Name)
		c.met.Counter("evictions/" + reason).Inc()
		c.recordEvent("task-killed", name, "task failed (%s)", reason)
		if c.tracer.Enabled() {
			c.tracer.Record(obs.Event{
				At: c.now(), Kind: obs.KindSched, Verb: obs.VerbEvict,
				App: p.App, Object: name, Detail: reason,
			})
			c.emitSegmentSpan(p, node, reason)
		}
		if done != nil {
			done(name, true)
		}
		return
	}
	p.Phase = Pending
	p.Usage = resource.Vector{}
	p.pendingSince = c.now() // next bind measures the re-queue wait
	c.indexMarkPending(p)
	c.met.Counter("evictions/" + reason).Inc()
	c.recordEvent("pod-evicted", p.Name, "back to pending queue (%s)", reason)
	if c.tracer.Enabled() {
		c.tracer.Record(obs.Event{
			At: c.now(), Kind: obs.KindSched, Verb: obs.VerbEvict,
			App: p.App, Object: p.Name, Detail: reason,
		})
		c.emitSegmentSpan(p, node, reason)
	}
	c.update(p)
}

// schedulePending attempts placement of every pending pod; pods that do
// not fit stay pending (retried next tick). High-priority pods may
// preempt strictly lower-priority ones when no node fits.
//
// The loop iterates a snapshot of the pending queue (binds remove from
// the live queue, preemption evictions insert into it) against the
// reusable scheduler snapshot: built once per round and patched after
// each bind, instead of re-deriving every node's pod list per pod.
func (c *Cluster) schedulePending() {
	if len(c.pending) == 0 {
		return
	}
	var t0 time.Time
	if c.phases != nil {
		t0 = time.Now()
	}
	queue := append(c.scratchQueue[:0], c.pending...)
	c.scratchQueue = queue
	c.refreshSnapshot()
	if c.cfg.DrainWorkers > 1 {
		c.drainBatched(queue)
	} else {
		for _, p := range queue {
			c.schedOne(p)
		}
	}
	if c.phases != nil {
		c.phases.Add(perf.PhaseSchedDrain, time.Since(t0).Nanoseconds())
	}
}

// schedOne is the serial per-pod placement step of the drain: schedule,
// bind, patch the snapshot; absorb bind faults; on rejection count it,
// trace it, and try priority preemption.
func (c *Cluster) schedOne(p *PodObject) {
	info := sched.PodInfo{Name: p.Name, App: p.App, Requests: p.Requests, Priority: p.Priority, NodeSelector: p.NodeSelector}
	nodeName, err := c.sch.ScheduleOn(info, c.snap)
	if err == nil {
		if berr := c.bind(p, nodeName); berr != nil {
			// The node vanished between the placement decision and the
			// bind (mid-round failure). Absorb the fault, rebuild the
			// snapshot without the dead node, and leave the pod pending.
			c.bindFault(p, nodeName, berr)
			c.refreshSnapshot()
			return
		}
		c.snap.Commit(nodeName, info)
		return
	}
	c.met.Counter("sched/unschedulable").Inc()
	if c.tracer.Enabled() {
		// Rejections are rare (the pod stays pending) so the error
		// formatting stays off the steady-state path.
		c.tracer.Record(obs.Event{
			At: c.now(), Kind: obs.KindSched, Verb: obs.VerbReject,
			App: p.App, Object: p.Name, Detail: err.Error(), Alloc: p.Requests,
		})
	}
	if p.Priority <= 0 {
		return
	}
	if plan := c.sch.Preempt(info, c.snap.Nodes()); plan != nil {
		for _, victim := range plan.Victims {
			if vp, ok := c.pods[victim]; ok {
				c.evict(vp, "preempted")
			}
		}
		c.met.Counter("sched/preemptions").Inc()
		c.recordEvent("preemption", p.Name, "evicted %v on %s", plan.Victims, plan.Node)
		if c.tracer.Enabled() {
			c.tracer.Record(obs.Event{
				At: c.now(), Kind: obs.KindSched, Verb: obs.VerbPreempt,
				App: p.App, Object: p.Name, Node: plan.Node,
				Detail: fmt.Sprintf("victims %v", plan.Victims),
			})
		}
		if berr := c.bind(p, plan.Node); berr != nil {
			c.bindFault(p, plan.Node, berr)
		}
		// Evictions touched several nodes; rebuild rather than patch.
		c.refreshSnapshot()
	}
}

// drainBatched walks the queue like the serial loop but, where a run of
// consecutive pods has pairwise-disjoint candidate prefixes in the
// feasibility index, scores them concurrently through
// sched.ScheduleBatch before binding in queue order. Disjointness
// proves each member's feasible set is untouched by the others'
// commits, so the chosen nodes — and every bind-side event, counter,
// and latency sample, emitted in the same queue order — are
// byte-identical to the serial walk. Any non-OK result or bind fault
// abandons the rest of its batch and the pod re-enters the exact
// serial step, reproducing unschedulable messages and preemption
// behaviour against the same committed state a serial walk would see.
func (c *Cluster) drainBatched(queue []*PodObject) {
	i := 0
	for i < len(queue) {
		n := c.batchRun(queue[i:])
		if n < 2 {
			c.schedOne(queue[i])
			i++
			continue
		}
		batch := c.batchPods[:n]
		if cap(c.batchRes) < n {
			c.batchRes = make([]sched.BatchResult, n)
		}
		res := c.batchRes[:n]
		c.sch.ScheduleBatch(batch, c.snap, res)
		done := 0
		for j := 0; j < n; j++ {
			if !res[j].OK {
				// Unschedulable through the batch: stop here and let the
				// serial step replay it for the exact error and preemption.
				break
			}
			p := queue[i+j]
			if berr := c.bind(p, res[j].Node); berr != nil {
				c.bindFault(p, res[j].Node, berr)
				c.refreshSnapshot()
				// The fault invalidated the batch's pre-scored results;
				// the remaining members re-enter the loop fresh.
				done = j + 1
				break
			}
			c.snap.Commit(res[j].Node, batch[j])
			done = j + 1
		}
		if done == 0 {
			// First member failed: place it serially so progress is made.
			c.schedOne(queue[i])
			done = 1
		}
		i += done
	}
}

// batchRun measures the longest prefix of queue whose members have
// pairwise-disjoint candidate prefixes, filling c.batchPods with their
// scheduler views. Bounded by resource.NumKinds: same-kind prefixes
// nest, so disjoint members necessarily index through different
// resource kinds.
func (c *Cluster) batchRun(queue []*PodObject) int {
	limit := len(queue)
	if limit > int(resource.NumKinds) {
		limit = int(resource.NumKinds)
	}
	pods := c.batchPods[:0]
	for _, p := range queue[:limit] {
		info := sched.PodInfo{Name: p.Name, App: p.App, Requests: p.Requests, Priority: p.Priority, NodeSelector: p.NodeSelector}
		disjoint := true
		for j := range pods {
			if !c.snap.DisjointCandidates(&pods[j], &info) {
				disjoint = false
				break
			}
		}
		if !disjoint {
			break
		}
		pods = append(pods, info)
	}
	c.batchPods = pods
	return len(pods)
}

// refreshSnapshot rebuilds the reusable scheduling snapshot (and its
// feasibility index) from the incremental indexes: O(nodes + bound pods)
// to load plus O(kinds · nodes log nodes) to index, no steady-state
// allocation. Binds patch the snapshot incrementally via Commit; only
// multi-node changes (preemption evictions, mid-round bind faults) pay
// for a rebuild.
func (c *Cluster) refreshSnapshot() {
	c.snap.Reset()
	for _, n := range c.nodeList {
		if !n.Ready {
			continue
		}
		c.snap.AddNode(sched.NodeInfo{
			Name:        n.Name,
			Allocatable: n.Allocatable,
			Allocated:   n.Allocated,
			Labels:      n.Meta.Labels,
		})
		for _, p := range c.byNode[n.Name] {
			c.snap.AddPod(sched.PodInfo{Name: p.Name, App: p.App, Requests: p.Requests, Priority: p.Priority})
		}
	}
	c.snap.Build()
}

// FailNode marks a node unready and evicts its pods; service replicas
// return to the pending queue, tasks fail.
func (c *Cluster) FailNode(name string) error {
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("cluster: unknown node %s", name)
	}
	if !n.Ready {
		return nil
	}
	n.Ready = false
	// Copy the index slice: each evict mutates byNode[name] underneath.
	for _, p := range append([]*PodObject(nil), c.byNode[name]...) {
		c.evict(p, "node-failure")
	}
	n.Allocated = resource.Vector{}
	n.Usage = resource.Vector{}
	// Drain the node from the reusable scheduling snapshot in place: the
	// entry keeps its name (error totals stay stable) but loses all
	// capacity and its feasibility-index slots, so nothing schedules onto
	// it this round. Without this a failure landing mid-round could
	// re-bind the just-evicted pods onto the dead node via the stale
	// snapshot.
	c.snap.Fail(name)
	c.update(n)
	c.met.Counter("nodes/failures").Inc()
	c.recordEvent("node-failed", name, "node marked unready; pods evicted")
	if c.tracer.Enabled() {
		c.tracer.Record(obs.Event{At: c.now(), Kind: obs.KindSched, Verb: obs.VerbNodeFailed, Node: name})
	}
	return nil
}

// RestoreNode brings a failed node back.
func (c *Cluster) RestoreNode(name string) error {
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("cluster: unknown node %s", name)
	}
	if n.Ready {
		return nil
	}
	n.Ready = true
	c.update(n)
	c.recordEvent("node-restored", name, "node ready again")
	if c.tracer.Enabled() {
		c.tracer.Record(obs.Event{At: c.now(), Kind: obs.KindSched, Verb: obs.VerbNodeRestored, Node: name})
	}
	return nil
}

// update persists an object mutation to the registry. A failed write is
// absorbed as a registry fault (counted, journaled, traced) instead of
// crashing the control plane: the in-memory indexes are authoritative,
// and a dropped write only makes the registry view momentarily stale.
func (c *Cluster) update(obj registry.Object) {
	if err := c.store.Update(obj); err != nil {
		c.registryFault(obj, err)
	}
}

// applyUpdates commits a batch of buffered mutations in slice order with
// the same absorb-on-fault semantics as that many update calls: the
// registry's version trajectory and fault accounting are identical, the
// per-call overhead is paid once. The sharded tick's barriers use it.
// The buffered objects always come out of the cluster's own indexes —
// the very pointers the store holds — which is what licenses the
// ApplyOwned fast path.
func (c *Cluster) applyUpdates(objs []registry.Object) {
	for len(objs) > 0 {
		n, err := c.store.ApplyOwned(objs)
		if err == nil {
			return
		}
		c.registryFault(objs[n], err)
		objs = objs[n+1:]
	}
}

func (c *Cluster) nextPodName(prefix string) string {
	c.podSeq++
	return fmt.Sprintf("%s-%d", prefix, c.podSeq)
}
