package cluster

import (
	"evolve/internal/metrics"
	"evolve/internal/resource"
)

// Cached metric handles.
//
// The tick used to resolve every series it touches by name — roughly 15
// string concatenations plus registry map lookups per app per tick. The
// handles below are resolved once and then reused, which together with
// the incremental indexes makes the steady-state tick allocation-free.
//
// Resolution is lazy (first tick for apps, first tick for the cluster)
// so the set of series and counters a run creates — and therefore every
// snapshot — is exactly what the name-resolving code produced: a series
// exists once the first sample lands, the SLI histogram once the first
// positive SLI lands, the violations counter once the first violation
// lands.

// appHandles caches the per-service series the tick writes.
type appHandles struct {
	latMean, latP99 *metrics.Series
	throughput      *metrics.Series
	offered         *metrics.Series
	replicas, ready *metrics.Series
	sli, violation  *metrics.Series
	burnRate        *metrics.Series
	alloc, usage    [resource.NumKinds]*metrics.Series

	// hist and violations stay nil until first needed; see above.
	hist       *metrics.Histogram
	violations *metrics.Counter
}

// handles resolves (once) and returns the app's cached series.
func (st *appState) handles(met *metrics.Registry) *appHandles {
	if st.h != nil {
		return st.h
	}
	pfx := "app/" + st.obj.Spec.Name + "/"
	h := &appHandles{
		latMean:    met.Series(pfx + "latency-mean"),
		latP99:     met.Series(pfx + "latency-p99"),
		throughput: met.Series(pfx + "throughput"),
		offered:    met.Series(pfx + "offered"),
		replicas:   met.Series(pfx + "replicas"),
		ready:      met.Series(pfx + "ready"),
		sli:        met.Series(pfx + "sli"),
		violation:  met.Series(pfx + "violation"),
		// Burn rate lives under plo/ so the Prometheus mapping labels it
		// evolve_plo_burn_rate{app="…"} next to the violation counters.
		burnRate: met.Series("plo/" + st.obj.Spec.Name + "/burn-rate"),
	}
	for _, k := range resource.Kinds() {
		h.alloc[k] = met.Series(pfx + "alloc/" + k.String())
		h.usage[k] = met.Series(pfx + "usage/" + k.String())
	}
	st.h = h
	return h
}

// histogram resolves (once) the SLI histogram; only called with sli > 0,
// preserving the lazy creation of the by-name code.
func (st *appState) histogram(met *metrics.Registry) *metrics.Histogram {
	if st.h.hist == nil {
		st.h.hist = met.Histogram("app/"+st.obj.Spec.Name+"/sli-hist", 1e-4, 1e3, 10)
	}
	return st.h.hist
}

// violationsCounter resolves (once) the violations counter; only called
// on an actual violation.
func (st *appState) violationsCounter(met *metrics.Registry) *metrics.Counter {
	if st.h.violations == nil {
		st.h.violations = met.Counter("plo/" + st.obj.Spec.Name + "/violations")
	}
	return st.h.violations
}

// clusterHandles caches the cluster-level series the tick writes.
type clusterHandles struct {
	allocated, usage [resource.NumKinds]*metrics.Series
	pods             *metrics.Series
	pending          *metrics.Series
	emptyNodes       *metrics.Series

	// Always-on latency histograms, observed at bind time (never on the
	// steady-state tick): pending→bound wait, created→ready time, and
	// decision-applied→first-bind lag. Lazily resolved on first bind so
	// runs that never bind a pod carry no empty histograms.
	schedLat, readyLat, effectLat *metrics.Histogram
}

// clusterSeries resolves (once) and returns the cluster-level handles.
func (c *Cluster) clusterSeries() *clusterHandles {
	if c.h != nil {
		return c.h
	}
	h := &clusterHandles{
		pods:       c.met.Series("cluster/pods"),
		pending:    c.met.Series("cluster/pending"),
		emptyNodes: c.met.Series("cluster/empty-nodes"),
	}
	for _, k := range resource.Kinds() {
		h.allocated[k] = c.met.Series("cluster/allocated/" + k.String())
		h.usage[k] = c.met.Series("cluster/usage/" + k.String())
	}
	c.h = h
	return h
}

// bindLatency resolves (once) the bind-time latency histograms. Bounds
// cover one sub-tick decimal decade down to hours-scale waits; values
// outside clamp to the end buckets and quantiles clamp to the observed
// max, so the p95 summaries stay honest at both extremes.
func (c *Cluster) bindLatency() *clusterHandles {
	h := c.clusterSeries()
	if h.schedLat == nil {
		h.schedLat = c.met.Histogram("sched/latency", 1, 1e5, 10)
		h.readyLat = c.met.Histogram("sched/time-to-ready", 1, 1e5, 10)
		h.effectLat = c.met.Histogram("control/decision-effect", 1, 1e5, 10)
	}
	return h
}
